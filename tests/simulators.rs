//! Cross-simulator equivalence: the CHP tableau, the dense state vector
//! and the noise-free trajectory executor must agree wherever their
//! domains overlap.

use adapt_suite::prelude::*;
use machine::NoiseToggles;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Random Clifford + measurement circuit.
fn random_clifford(n: usize, depth: usize, seed: u64) -> Circuit {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut c = Circuit::new(n);
    let one_q = [
        Gate::H,
        Gate::S,
        Gate::Sdg,
        Gate::X,
        Gate::Y,
        Gate::Z,
        Gate::SX,
        Gate::SXdg,
    ];
    for _ in 0..depth {
        if rng.gen::<f64>() < 0.35 && n >= 2 {
            let a = rng.gen_range(0..n as u32);
            let mut b = rng.gen_range(0..n as u32);
            while b == a {
                b = rng.gen_range(0..n as u32);
            }
            match rng.gen_range(0..3) {
                0 => c.cx(a, b),
                1 => c.cz(a, b),
                _ => c.swap(a, b),
            };
        } else {
            let g = one_q[rng.gen_range(0..one_q.len())];
            c.gate(g, &[rng.gen_range(0..n as u32)]);
        }
    }
    c.measure_all();
    c
}

#[test]
fn chp_and_statevec_agree_on_random_clifford_circuits() {
    for seed in 0..30 {
        let n = 2 + (seed as usize) % 5;
        let c = random_clifford(n, 25, seed);
        let chp = stab::exact_distribution(&c).expect("Clifford circuit");
        let dense = statevec::ideal_distribution(&c).expect("dense");
        assert_eq!(chp.len(), dense.len(), "seed {seed}: support mismatch");
        for (k, v) in &dense {
            let w = chp.get(k).copied().unwrap_or(0.0);
            assert!((v - w).abs() < 1e-9, "seed {seed}, outcome {k}: {v} vs {w}");
        }
    }
}

#[test]
fn chp_sampling_converges_to_exact_distribution() {
    let c = random_clifford(4, 30, 99);
    let exact = stab::exact_distribution(&c).expect("Clifford");
    let mut rng = StdRng::seed_from_u64(7);
    let counts = stab::sample_counts(&c, 8000, &mut rng).expect("sampling");
    for (&k, &p) in &exact {
        let emp = counts.probability(k);
        assert!(
            (emp - p).abs() < 0.03,
            "outcome {k}: empirical {emp} vs exact {p}"
        );
    }
}

#[test]
fn noise_free_executor_agrees_with_statevec_sampler() {
    // Non-Clifford circuit: compare the trajectory executor (noise off)
    // against the dense ideal distribution.
    let mut c = Circuit::new(3);
    c.h(0)
        .t(0)
        .cx(0, 1)
        .ry(0.9, 2)
        .cx(1, 2)
        .rz(0.4, 1)
        .measure_all();
    let ideal = statevec::ideal_distribution(&c).expect("ideal");
    let dev = Device::ibmq_rome(1);
    let m = Machine::with_toggles(dev, NoiseToggles::none());
    let counts = m
        .execute(
            &c,
            &ExecutionConfig {
                shots: 20_000,
                trajectories: 4,
                seed: 3,
                threads: 1,
            },
        )
        .expect("execution");
    for (&k, &p) in &ideal {
        let emp = counts.probability(k);
        assert!((emp - p).abs() < 0.02, "outcome {k}: {emp} vs {p}");
    }
}

#[test]
fn stabilizer_conversion_roundtrips_through_decoys() {
    // Any Clifford-angle physical circuit must convert and agree.
    let mut c = Circuit::new(4);
    let mut rng = StdRng::seed_from_u64(11);
    for _ in 0..40 {
        match rng.gen_range(0..4) {
            0 => {
                let q = rng.gen_range(0..4u32);
                let quarters = rng.gen_range(0..4) as f64;
                c.rz(quarters * std::f64::consts::FRAC_PI_2, q);
            }
            1 => {
                c.sx(rng.gen_range(0..4u32));
            }
            2 => {
                c.x(rng.gen_range(0..4u32));
            }
            _ => {
                let a = rng.gen_range(0..4u32);
                let b = (a + rng.gen_range(1..4u32)) % 4;
                c.cx(a, b);
            }
        }
    }
    c.measure_all();
    let converted = adapt::decoy::to_stabilizer_circuit(&c).expect("Clifford angles");
    let chp = stab::exact_distribution(&converted).expect("Clifford");
    let dense = statevec::ideal_distribution(&c).expect("dense");
    for (k, v) in &dense {
        let w = chp.get(k).copied().unwrap_or(0.0);
        assert!((v - w).abs() < 1e-9, "outcome {k}: {v} vs {w}");
    }
}
