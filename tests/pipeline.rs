//! Cross-crate integration tests: the full compile → (DD-insert) →
//! execute pipeline, checked end-to-end against noise-free references.

use adapt::dd::{insert_dd, DdConfig, DdMask, DdProtocol};
use adapt_suite::prelude::*;
use machine::NoiseToggles;
use std::collections::BTreeMap;

fn noise_free_exec() -> ExecutionConfig {
    ExecutionConfig {
        shots: 256,
        trajectories: 2,
        seed: 1,
        threads: 1,
    }
}

/// Counts must land exactly on the ideal support for a deterministic
/// benchmark when all noise is off.
fn assert_exact(ideal: &BTreeMap<u64, f64>, counts: &Counts) {
    for (outcome, n) in counts.iter() {
        assert!(
            ideal.get(&outcome).copied().unwrap_or(0.0) > 1e-12,
            "outcome {outcome:#b} (x{n}) outside ideal support {ideal:?}"
        );
    }
}

#[test]
fn every_benchmark_transpiles_and_executes_exactly_on_every_machine() {
    let devices = [
        Device::ibmq_guadalupe(11),
        Device::ibmq_paris(11),
        Device::ibmq_toronto(11),
    ];
    for dev in devices {
        for bench in benchmarks::paper_suite() {
            let t = transpile(&bench.circuit, &dev, &TranspileOptions::default());
            let m = Machine::with_toggles(dev.clone(), NoiseToggles::none());
            let counts = m
                .execute_timed(&t.timed, &noise_free_exec())
                .unwrap_or_else(|e| panic!("{} on {}: {e}", bench.name, dev.name()));
            let ideal = statevec::ideal_distribution(&bench.circuit).expect("ideal");
            assert_exact(&ideal, &counts);
        }
    }
}

#[test]
fn dd_insertion_is_an_identity_transformation_noise_free() {
    // DD sequences compose to identity: with noise off, any mask leaves
    // the output distribution untouched.
    let dev = Device::ibmq_toronto(5);
    let bench = benchmarks::qft_bench(5, 9);
    let t = transpile(&bench, &dev, &TranspileOptions::default());
    let m = Machine::with_toggles(dev.clone(), NoiseToggles::none());
    let ideal = statevec::ideal_distribution(&bench).expect("ideal");
    for protocol in [DdProtocol::Xy4, DdProtocol::IbmqDd, DdProtocol::Cpmg] {
        for mask_bits in [0b10101u64, 0b11111] {
            let mask = DdMask::from_bits(mask_bits, 5);
            let wires: Vec<u32> = adapt::dd::mask_to_wires(mask, &t.initial_layout);
            let inserted = insert_dd(&t.timed, &dev, &wires, &DdConfig::for_protocol(protocol));
            let counts = m
                .execute_timed(&inserted.timed, &noise_free_exec())
                .expect("execution");
            assert_exact(&ideal, &counts);
            if mask_bits == 0b11111 {
                assert!(inserted.pulse_count > 0, "{protocol} inserted nothing");
            }
        }
    }
}

#[test]
fn decoys_preserve_schedule_across_benchmarks() {
    use adapt::decoy::{make_decoy, DecoyKind};
    let dev = Device::ibmq_guadalupe(7);
    for bench in benchmarks::paper_suite().into_iter().take(6) {
        let t = transpile(&bench.circuit, &dev, &TranspileOptions::default());
        for kind in [
            DecoyKind::Clifford,
            DecoyKind::Seeded { max_seed_qubits: 4 },
        ] {
            let decoy = make_decoy(&t.timed, kind).expect("decoy");
            assert_eq!(
                decoy.timed.two_qubit_activity(),
                t.timed.two_qubit_activity(),
                "{}: {kind:?} altered the CNOT schedule",
                bench.name
            );
            assert!(
                (decoy.timed.total_ns() - t.timed.total_ns()).abs() < 1e-6,
                "{}: {kind:?} altered the makespan",
                bench.name
            );
            let total: f64 = decoy.ideal.values().sum();
            assert!((total - 1.0).abs() < 1e-9);
        }
    }
}

#[test]
fn clifford_decoy_ideal_matches_dense_simulation() {
    // The CHP path and the dense path must agree on CDC outputs.
    let dev = Device::ibmq_guadalupe(3);
    let bench = benchmarks::qft_bench(5, 7);
    let t = transpile(&bench, &dev, &TranspileOptions::default());
    let decoy = adapt::decoy::make_decoy(&t.timed, DecoyKind::Clifford).expect("decoy");
    let circuit = decoy.timed.to_circuit();
    let (compact, _) = circuit.compacted();
    let dense = statevec::ideal_distribution(&compact).expect("dense");
    assert_eq!(decoy.ideal.len(), dense.len());
    for (k, v) in &dense {
        let w = decoy.ideal.get(k).copied().unwrap_or(0.0);
        assert!((v - w).abs() < 1e-9, "outcome {k}: {v} vs {w}");
    }
}

#[test]
fn full_adapt_run_is_deterministic_and_bounded() {
    let framework = Adapt::new(Machine::new(Device::ibmq_guadalupe(23)));
    let program = benchmarks::bernstein_vazirani(5, 0b1011);
    let cfg = AdaptConfig {
        search_exec: ExecutionConfig {
            shots: 300,
            trajectories: 12,
            seed: 2,
            threads: 1,
        },
        final_exec: ExecutionConfig {
            shots: 600,
            trajectories: 20,
            seed: 3,
            threads: 1,
        },
        ..Default::default()
    };
    let a = framework
        .run_policy(&program, Policy::Adapt, &cfg)
        .expect("run");
    let b = framework
        .run_policy(&program, Policy::Adapt, &cfg)
        .expect("run");
    assert_eq!(a.mask, b.mask);
    assert_eq!(a.counts, b.counts);
    // ≤ 4·N localized budget plus the 3-run referee step.
    assert!(
        a.search_runs <= 4 * 5 + 3,
        "search not linear: {}",
        a.search_runs
    );
    assert!((0.0..=1.0).contains(&a.fidelity));
}

#[test]
fn adapt_beats_no_dd_on_idle_dominated_workload() {
    // QFT-6 on Toronto is the paper's best case for DD; at these budgets
    // ADAPT must recover a large factor over the no-DD baseline.
    let framework = Adapt::new(Machine::new(Device::ibmq_toronto(2021)));
    let program = benchmarks::qft_bench(6, 42);
    let cfg = AdaptConfig {
        search_exec: ExecutionConfig {
            shots: 1024,
            trajectories: 32,
            seed: 5,
            threads: 1,
        },
        final_exec: ExecutionConfig {
            shots: 2048,
            trajectories: 48,
            seed: 6,
            threads: 1,
        },
        ..Default::default()
    };
    let no_dd = framework
        .run_policy(&program, Policy::NoDd, &cfg)
        .expect("NoDD");
    let ad = framework
        .run_policy(&program, Policy::Adapt, &cfg)
        .expect("ADAPT");
    assert!(
        ad.fidelity > 2.0 * no_dd.fidelity,
        "ADAPT {} should far exceed baseline {}",
        ad.fidelity,
        no_dd.fidelity
    );
}

#[test]
fn counts_respect_shot_budget_through_the_whole_stack() {
    let framework = Adapt::new(Machine::new(Device::ibmq_rome(2)));
    let program = benchmarks::adder4(true, false, true);
    let cfg = AdaptConfig {
        final_exec: ExecutionConfig {
            shots: 777,
            trajectories: 13,
            seed: 9,
            threads: 1,
        },
        search_exec: ExecutionConfig {
            shots: 100,
            trajectories: 5,
            seed: 10,
            threads: 1,
        },
        ..Default::default()
    };
    for policy in [Policy::NoDd, Policy::AllDd, Policy::Adapt] {
        let run = framework.run_policy(&program, policy, &cfg).expect("run");
        assert_eq!(run.counts.total(), 777, "{policy}");
    }
}
