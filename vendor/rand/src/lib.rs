//! Offline vendored stand-in for the `rand` 0.8 API surface this workspace
//! uses.
//!
//! The build environment has no network access and no registry cache, so
//! the real `rand` crate cannot be fetched. This crate re-implements the
//! (small) subset the ADAPT stack relies on — `Rng::gen`, `Rng::gen_range`,
//! `Rng::gen_bool`, `SeedableRng::seed_from_u64`, `rngs::StdRng` and
//! `seq::SliceRandom::choose` — on top of a xoshiro256** generator seeded
//! via SplitMix64.
//!
//! Streams are deterministic under a fixed seed (the property every test
//! and experiment in this repository depends on) but are **not** bit-equal
//! to upstream `rand`'s `StdRng` (upstream makes no cross-version stream
//! guarantees either).

/// A low-level source of random 64-bit words.
pub trait RngCore {
    /// The next 64 uniformly random bits.
    fn next_u64(&mut self) -> u64;

    /// The next 32 uniformly random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    /// Fills `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        for chunk in dest.chunks_mut(8) {
            let bytes = self.next_u64().to_le_bytes();
            chunk.copy_from_slice(&bytes[..chunk.len()]);
        }
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// Types that can be sampled from a uniform bit stream (the `Standard`
/// distribution of upstream `rand`).
pub trait StandardSample: Sized {
    /// Draws one value.
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

macro_rules! impl_standard_int {
    ($($t:ty),*) => {$(
        impl StandardSample for $t {
            fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl StandardSample for u128 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() as u128) << 64 | rng.next_u64() as u128
    }
}

impl StandardSample for bool {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl StandardSample for f64 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 uniform bits in [0, 1), matching upstream's Standard for f64.
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl StandardSample for f32 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

/// Ranges that can produce a uniform sample (`Rng::gen_range` argument).
pub trait SampleRange<T> {
    /// Draws one value from the range.
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

/// Integers that [`SampleRange`] can sample. A single generic impl over
/// this trait (rather than one impl per integer type) is what lets type
/// inference resolve `rng.gen_range(0..n)` the way upstream `rand` does.
pub trait UniformInt: Copy {
    /// Widens to `i128` (lossless for every integer type up to 64 bits).
    fn to_i128(self) -> i128;
    /// Narrows from `i128`; callers guarantee the value is in range.
    fn from_i128(v: i128) -> Self;
}

macro_rules! impl_uniform_int {
    ($($t:ty),*) => {$(
        impl UniformInt for $t {
            fn to_i128(self) -> i128 {
                self as i128
            }
            fn from_i128(v: i128) -> Self {
                v as $t
            }
        }
    )*};
}
impl_uniform_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl<T: UniformInt> SampleRange<T> for core::ops::Range<T> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        let (lo, hi) = (self.start.to_i128(), self.end.to_i128());
        assert!(lo < hi, "cannot sample empty range");
        let span = (hi - lo) as u128;
        // Modulo with a 64-bit draw: bias is < 2^-32 for every span used
        // in this workspace (all far below 2^32).
        let off = (rng.next_u64() as u128 % span) as i128;
        T::from_i128(lo + off)
    }
}

impl<T: UniformInt> SampleRange<T> for core::ops::RangeInclusive<T> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        let (lo, hi) = (self.start().to_i128(), self.end().to_i128());
        assert!(lo <= hi, "cannot sample empty range");
        let span = (hi - lo) as u128 + 1;
        let off = (rng.next_u64() as u128 % span) as i128;
        T::from_i128(lo + off)
    }
}

macro_rules! impl_range_float {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let unit = <$t as StandardSample>::sample_standard(rng);
                self.start + (self.end - self.start) * unit
            }
        }
    )*};
}
impl_range_float!(f32, f64);

/// The user-facing sampling interface (upstream `rand::Rng`).
pub trait Rng: RngCore {
    /// Samples a value of an inferred type from the uniform distribution.
    fn gen<T: StandardSample>(&mut self) -> T {
        T::sample_standard(self)
    }

    /// Samples uniformly from a range.
    ///
    /// # Panics
    ///
    /// Panics when the range is empty.
    fn gen_range<T, Rge: SampleRange<T>>(&mut self, range: Rge) -> T {
        range.sample_single(self)
    }

    /// Returns `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        f64::sample_standard(self) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Construction of generators from seeds (upstream `rand::SeedableRng`).
pub trait SeedableRng: Sized {
    /// Builds a generator from a 64-bit seed, expanding it to full state.
    fn seed_from_u64(state: u64) -> Self;
}

/// Named generator types.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The workspace's standard generator: xoshiro256** with SplitMix64
    /// seed expansion. Deterministic for a fixed seed; not reproducible
    /// against upstream `rand`'s `StdRng` (which guarantees nothing across
    /// versions anyway).
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct StdRng {
        s: [u64; 4],
    }

    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut sm = seed;
            let mut s = [0u64; 4];
            for w in &mut s {
                *w = splitmix64(&mut sm);
            }
            // xoshiro must not start from the all-zero state.
            if s == [0, 0, 0, 0] {
                s[0] = 0x9E37_79B9_7F4A_7C15;
            }
            StdRng { s }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

/// Sequence-related helpers (upstream `rand::seq`).
pub mod seq {
    use super::{RngCore, SampleRange};

    /// Random selection from slices.
    pub trait SliceRandom {
        /// Element type.
        type Item;

        /// A uniformly random element, or `None` when empty.
        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&Self::Item>;
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                let i = (0..self.len()).sample_single(rng);
                Some(&self[i])
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::seq::SliceRandom;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_streams() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.gen::<u64>(), b.gen::<u64>());
        }
        let mut c = StdRng::seed_from_u64(43);
        assert_ne!(a.gen::<u64>(), c.gen::<u64>());
    }

    #[test]
    fn unit_floats_in_range() {
        let mut r = StdRng::seed_from_u64(7);
        for _ in 0..10_000 {
            let x: f64 = r.gen();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn unit_float_mean_is_half() {
        let mut r = StdRng::seed_from_u64(11);
        let n = 100_000;
        let mean: f64 = (0..n).map(|_| r.gen::<f64>()).sum::<f64>() / n as f64;
        assert!((mean - 0.5).abs() < 0.01, "mean {mean}");
    }

    #[test]
    fn gen_range_respects_bounds() {
        let mut r = StdRng::seed_from_u64(3);
        for _ in 0..10_000 {
            let x = r.gen_range(3u32..17);
            assert!((3..17).contains(&x));
            let y = r.gen_range(-5i32..5);
            assert!((-5..5).contains(&y));
            let z = r.gen_range(0.25f64..0.75);
            assert!((0.25..0.75).contains(&z));
        }
    }

    #[test]
    fn gen_range_covers_all_values() {
        let mut r = StdRng::seed_from_u64(5);
        let mut seen = [false; 4];
        for _ in 0..1000 {
            seen[r.gen_range(0usize..4)] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn gen_bool_tracks_probability() {
        let mut r = StdRng::seed_from_u64(9);
        let hits = (0..100_000).filter(|_| r.gen_bool(0.3)).count();
        let frac = hits as f64 / 100_000.0;
        assert!((frac - 0.3).abs() < 0.01, "frac {frac}");
    }

    #[test]
    fn choose_is_uniform_ish() {
        let mut r = StdRng::seed_from_u64(1);
        let items = [1, 2, 3];
        let mut counts = [0usize; 3];
        for _ in 0..3000 {
            counts[*items.choose(&mut r).unwrap() - 1] += 1;
        }
        for c in counts {
            assert!(c > 800, "{counts:?}");
        }
        let empty: [u8; 0] = [];
        assert!(empty.choose(&mut r).is_none());
    }
}
