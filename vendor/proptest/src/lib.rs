//! Offline vendored stand-in for the `proptest` API surface this workspace
//! uses.
//!
//! The build environment cannot fetch crates, so this crate provides a
//! compatible mini property-testing framework: the [`proptest!`] macro,
//! [`Strategy`] with `prop_map`, range/tuple/[`Just`] strategies,
//! [`collection::vec`], [`prop_oneof!`], [`any`], and the
//! `prop_assert*` macros.
//!
//! Differences from upstream: cases are generated from a seed derived from
//! the test's module path and name (fully deterministic, no persistence
//! files), and failing cases are reported by the underlying assertion
//! rather than shrunk to a minimal counterexample.

use rand::rngs::StdRng;
use rand::SeedableRng;

pub mod collection;
pub mod strategy;

pub use strategy::{Just, Strategy, Union};

/// Per-test-suite configuration (`#![proptest_config(...)]`).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ProptestConfig {
    /// Number of random cases each property runs.
    pub cases: u32,
}

impl ProptestConfig {
    /// A configuration running `cases` random cases per property.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        // Upstream defaults to 256; this stand-in keeps the debug-profile
        // test suite fast while still exploring a meaningful sample.
        ProptestConfig { cases: 64 }
    }
}

/// The deterministic generator driving case generation.
pub type TestRng = StdRng;

/// Derives the case-generation RNG for a named property test.
pub fn test_rng(name: &str) -> TestRng {
    let hash = name.bytes().fold(0xcbf2_9ce4_8422_2325u64, |h, b| {
        (h ^ b as u64).wrapping_mul(0x1000_0000_01b3)
    });
    StdRng::seed_from_u64(hash)
}

/// Types with a canonical "any value" strategy ([`any`]).
pub trait Arbitrary: Sized {
    /// The strategy type returned by [`any`].
    type Strategy: Strategy<Value = Self>;

    /// The canonical full-range strategy.
    fn arbitrary() -> Self::Strategy;
}

/// The canonical strategy for `A` (upstream `proptest::prelude::any`).
pub fn any<A: Arbitrary>() -> A::Strategy {
    A::arbitrary()
}

impl Arbitrary for bool {
    type Strategy = strategy::AnyValue<bool>;
    fn arbitrary() -> Self::Strategy {
        strategy::AnyValue::new()
    }
}

macro_rules! impl_arbitrary_std {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            type Strategy = strategy::AnyValue<$t>;
            fn arbitrary() -> Self::Strategy {
                strategy::AnyValue::new()
            }
        }
    )*};
}
impl_arbitrary_std!(u8, u16, u32, u64, usize, i8, i16, i32, i64, f32, f64);

/// Everything a property-test module normally imports.
pub mod prelude {
    pub use crate::{any, prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest};
    pub use crate::{Just, ProptestConfig, Strategy};

    /// Namespaced re-exports matching upstream's `prelude::prop`.
    pub mod prop {
        pub use crate::collection;
    }
}

/// Defines property tests: each `fn name(arg in strategy, ...)` body runs
/// for `cases` deterministic pseudo-random inputs.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { @cfg($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! { @cfg($crate::ProptestConfig::default()) $($rest)* }
    };
}

/// Implementation detail of [`proptest!`].
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (@cfg($cfg:expr) $(
        $(#[$meta:meta])+
        fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block
    )*) => {$(
        $(#[$meta])+
        fn $name() {
            let cfg: $crate::ProptestConfig = $cfg;
            let mut rng = $crate::test_rng(concat!(module_path!(), "::", stringify!($name)));
            for __case in 0..cfg.cases {
                $(let $arg = $crate::Strategy::sample(&$strat, &mut rng);)+
                $body
            }
        }
    )*};
}

/// Asserts a property-test condition (maps onto `assert!`).
#[macro_export]
macro_rules! prop_assert {
    ($($tt:tt)*) => { assert!($($tt)*) };
}

/// Asserts property-test equality (maps onto `assert_eq!`).
#[macro_export]
macro_rules! prop_assert_eq {
    ($($tt:tt)*) => { assert_eq!($($tt)*) };
}

/// Asserts property-test inequality (maps onto `assert_ne!`).
#[macro_export]
macro_rules! prop_assert_ne {
    ($($tt:tt)*) => { assert_ne!($($tt)*) };
}

/// Picks among strategies, optionally weighted: `prop_oneof![2 => a, 1 => b]`.
#[macro_export]
macro_rules! prop_oneof {
    ($($weight:expr => $strat:expr),+ $(,)?) => {
        $crate::Union::new(vec![
            $(($weight as u32, $crate::strategy::boxed($strat))),+
        ])
    };
    ($($strat:expr),+ $(,)?) => {
        $crate::prop_oneof![$(1 => $strat),+]
    };
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        #[test]
        fn ranges_stay_in_bounds(x in 3u32..10, y in -2.5..2.5f64, b in any::<bool>()) {
            prop_assert!((3..10).contains(&x));
            prop_assert!((-2.5..2.5).contains(&y));
            #[allow(clippy::overly_complex_bool_expr)] // tautology exercises prop_assert
            {
                prop_assert!(b || !b);
            }
        }

        #[test]
        fn vec_strategy_sizes(v in crate::collection::vec(0u8..4, 2..6)) {
            prop_assert!((2..6).contains(&v.len()));
            prop_assert!(v.iter().all(|&x| x < 4));
        }

        #[test]
        fn prop_map_and_tuple(p in (0u8..4, 1u8..5).prop_map(|(a, b)| (a, a + b))) {
            prop_assert!(p.1 > p.0);
        }

        #[test]
        fn oneof_selects_both_arms(x in prop_oneof![2 => 0u8..1, 1 => 10u8..11]) {
            prop_assert!(x == 0 || x == 10);
        }

        #[test]
        fn just_yields_constant(x in Just(17u8)) {
            prop_assert_eq!(x, 17);
        }
    }

    #[test]
    fn cases_are_deterministic() {
        let mut a = crate::test_rng("x");
        let mut b = crate::test_rng("x");
        let s = 0u64..100;
        for _ in 0..10 {
            assert_eq!(
                crate::Strategy::sample(&s, &mut a),
                crate::Strategy::sample(&s, &mut b)
            );
        }
    }
}
