//! Value-generation strategies: the [`Strategy`] trait and its core
//! combinators (ranges, tuples, [`Just`], [`Union`], `prop_map`).

use crate::TestRng;
use rand::{Rng, SampleRange, StandardSample};
use std::marker::PhantomData;

/// Generates pseudo-random values for property tests.
///
/// Unlike upstream proptest there is no value tree / shrinking: a strategy
/// is just a deterministic function of the test RNG state.
pub trait Strategy {
    /// The generated type.
    type Value;

    /// Draws one value.
    fn sample(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<O, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, f }
    }
}

impl<S: Strategy + ?Sized> Strategy for &S {
    type Value = S::Value;
    fn sample(&self, rng: &mut TestRng) -> Self::Value {
        (**self).sample(rng)
    }
}

impl<S: Strategy + ?Sized> Strategy for Box<S> {
    type Value = S::Value;
    fn sample(&self, rng: &mut TestRng) -> Self::Value {
        (**self).sample(rng)
    }
}

/// Boxes a strategy as a trait object (used by [`crate::prop_oneof!`]).
pub fn boxed<S: Strategy + 'static>(s: S) -> Box<dyn Strategy<Value = S::Value>> {
    Box::new(s)
}

/// Strategy yielding a constant.
#[derive(Debug, Clone, Copy)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn sample(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// The `prop_map` combinator.
#[derive(Debug, Clone, Copy)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;
    fn sample(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.sample(rng))
    }
}

/// Full-range strategy for a primitive type ([`crate::any`]).
#[derive(Debug, Clone, Copy)]
pub struct AnyValue<T> {
    _marker: PhantomData<T>,
}

impl<T> AnyValue<T> {
    /// Creates the strategy.
    pub fn new() -> Self {
        AnyValue {
            _marker: PhantomData,
        }
    }
}

impl<T> Default for AnyValue<T> {
    fn default() -> Self {
        Self::new()
    }
}

impl<T: StandardSample> Strategy for AnyValue<T> {
    type Value = T;
    fn sample(&self, rng: &mut TestRng) -> T {
        rng.gen()
    }
}

/// Weighted choice among boxed strategies ([`crate::prop_oneof!`]).
pub struct Union<T> {
    arms: Vec<(u32, Box<dyn Strategy<Value = T>>)>,
    total_weight: u64,
}

impl<T> Union<T> {
    /// Builds a union from `(weight, strategy)` arms.
    ///
    /// # Panics
    ///
    /// Panics when `arms` is empty or all weights are zero.
    pub fn new(arms: Vec<(u32, Box<dyn Strategy<Value = T>>)>) -> Self {
        let total_weight: u64 = arms.iter().map(|(w, _)| *w as u64).sum();
        assert!(
            total_weight > 0,
            "prop_oneof! needs a positive total weight"
        );
        Union { arms, total_weight }
    }
}

impl<T> Strategy for Union<T> {
    type Value = T;
    fn sample(&self, rng: &mut TestRng) -> T {
        let mut pick = rng.gen_range(0..self.total_weight);
        for (w, s) in &self.arms {
            if pick < *w as u64 {
                return s.sample(rng);
            }
            pick -= *w as u64;
        }
        unreachable!("weighted pick within total weight")
    }
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for core::ops::Range<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                self.clone().sample_single(rng)
            }
        }
        impl Strategy for core::ops::RangeInclusive<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                self.clone().sample_single(rng)
            }
        }
    )*};
}
impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_float_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for core::ops::Range<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                self.clone().sample_single(rng)
            }
        }
    )*};
}
impl_float_range_strategy!(f32, f64);

macro_rules! impl_tuple_strategy {
    ($($name:ident),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            #[allow(non_snake_case)]
            fn sample(&self, rng: &mut TestRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.sample(rng),)+)
            }
        }
    };
}
impl_tuple_strategy!(A);
impl_tuple_strategy!(A, B);
impl_tuple_strategy!(A, B, C);
impl_tuple_strategy!(A, B, C, D);
impl_tuple_strategy!(A, B, C, D, E);
impl_tuple_strategy!(A, B, C, D, E, F);
