//! Offline vendored stand-in for the `criterion` API surface this
//! workspace's benches use.
//!
//! The build environment cannot fetch crates, so this crate provides a
//! minimal timing harness with the same shape: [`Criterion`],
//! [`BenchmarkId`], benchmark groups, `bench_function` /
//! `bench_with_input`, and the [`criterion_group!`] / [`criterion_main!`]
//! macros. Each benchmark body is timed over a modest fixed number of
//! iterations and the mean is printed — enough to compare before/after
//! locally, with none of upstream's statistics machinery.

use std::fmt::Display;
use std::time::Instant;

/// Re-export for code that imports `criterion::black_box`.
pub use std::hint::black_box;

/// Number of timed iterations per benchmark (after one warm-up).
const ITERS: u32 = 10;

/// A benchmark identifier: function name plus parameter.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BenchmarkId {
    label: String,
}

impl BenchmarkId {
    /// Builds an id from a function name and a parameter value.
    pub fn new(function: impl Display, parameter: impl Display) -> Self {
        BenchmarkId {
            label: format!("{function}/{parameter}"),
        }
    }

    /// Builds an id from a parameter value alone.
    pub fn from_parameter(parameter: impl Display) -> Self {
        BenchmarkId {
            label: parameter.to_string(),
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        BenchmarkId {
            label: s.to_string(),
        }
    }
}

impl From<String> for BenchmarkId {
    fn from(s: String) -> Self {
        BenchmarkId { label: s }
    }
}

/// Passed to benchmark closures; runs and times the body.
#[derive(Debug, Default)]
pub struct Bencher {
    nanos_per_iter: f64,
}

impl Bencher {
    /// Times `routine` over a fixed number of iterations.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        black_box(routine()); // warm-up
        let t0 = Instant::now();
        for _ in 0..ITERS {
            black_box(routine());
        }
        self.nanos_per_iter = t0.elapsed().as_nanos() as f64 / ITERS as f64;
    }
}

/// A named collection of related benchmarks.
pub struct BenchmarkGroup<'a> {
    name: String,
    _criterion: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Accepted for API compatibility; sampling is fixed in this stand-in.
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    /// Runs and reports one benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        id: impl Into<BenchmarkId>,
        mut f: F,
    ) -> &mut Self {
        let id = id.into();
        let mut b = Bencher::default();
        f(&mut b);
        report(&self.name, &id.label, b.nanos_per_iter);
        self
    }

    /// Runs and reports one parameterized benchmark.
    pub fn bench_with_input<I: ?Sized, F: FnMut(&mut Bencher, &I)>(
        &mut self,
        id: impl Into<BenchmarkId>,
        input: &I,
        mut f: F,
    ) -> &mut Self {
        let id = id.into();
        let mut b = Bencher::default();
        f(&mut b, input);
        report(&self.name, &id.label, b.nanos_per_iter);
        self
    }

    /// Ends the group (no-op; matches upstream's API).
    pub fn finish(self) {}
}

/// The benchmark harness entry point.
#[derive(Debug, Default)]
pub struct Criterion;

impl Criterion {
    /// Starts a named group of benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            _criterion: self,
        }
    }

    /// Runs and reports one ungrouped benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        id: impl Into<BenchmarkId>,
        mut f: F,
    ) -> &mut Self {
        let id = id.into();
        let mut b = Bencher::default();
        f(&mut b);
        report("bench", &id.label, b.nanos_per_iter);
        self
    }
}

fn report(group: &str, label: &str, nanos: f64) {
    if nanos >= 1e6 {
        println!("{group}/{label}: {:.3} ms/iter", nanos / 1e6);
    } else if nanos >= 1e3 {
        println!("{group}/{label}: {:.3} µs/iter", nanos / 1e3);
    } else {
        println!("{group}/{label}: {nanos:.0} ns/iter");
    }
}

/// Declares a function that runs the listed benchmark functions.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Declares `main` running the listed [`criterion_group!`]s.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}
