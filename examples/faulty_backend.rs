//! ADAPT on an unreliable machine: the Guadalupe-16 model behind seeded
//! fault injection (the `lossy` profile: ≥10% transient job failures,
//! timeouts, truncated shot batches, readout dropouts, and one mid-run
//! calibration-staleness event) with automatic retry/backoff.
//!
//! The pipeline completes anyway — neighborhoods whose decoy runs outlast
//! the retry budget degrade to all-DD instead of aborting — and the
//! example ends with the retry/degradation ledger.
//!
//! ```sh
//! cargo run --release --example faulty_backend
//! ```

use adapt_suite::prelude::*;
use std::sync::Arc;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let seed = 2021;
    let machine = Machine::new(Device::ibmq_guadalupe(seed));
    println!("machine: {}", machine.device());

    // Wrap the machine in a deterministic fault injector, then wrap THAT
    // in the retrying executor. Keeping our own handle to the executor
    // lets us read its fault ledger after the run.
    let profile = FaultProfile::lossy();
    println!(
        "faults:  lossy ({}% job failures, {}% timeouts, {}% truncated batches)",
        (profile.transient_failure * 100.0) as u32,
        (profile.timeout * 100.0) as u32,
        (profile.shot_truncation * 100.0) as u32,
    );
    let faulty = FaultyBackend::new(machine, profile, seed ^ 0xFA17);
    let exec = Arc::new(ResilientExecutor::with_policy(
        Arc::new(faulty),
        RetryPolicy {
            max_attempts: 6,
            ..RetryPolicy::default()
        },
    ));
    let framework = Adapt::with_backend(exec.clone());

    let program = benchmarks::qft_bench(5, 3);
    println!(
        "program: QFT-5, {} gates, depth {}\n",
        program.gate_count(),
        program.depth()
    );

    let cfg = AdaptConfig::default();
    for policy in [Policy::NoDd, Policy::AllDd, Policy::Adapt] {
        let run = framework.run_policy(&program, policy, &cfg)?;
        println!(
            "{:12}  fidelity {:.3}   mask {}   ({} DD pulses, {} decoy runs)",
            run.policy.to_string(),
            run.fidelity,
            run.mask,
            run.pulse_count,
            run.search_runs,
        );
        for group in &run.degraded {
            println!("              [degraded] {group}");
        }
    }

    let stats = exec.stats();
    println!("\n== retry/degradation summary ==");
    println!("{stats}");
    println!(
        "({} requests took {} attempts; {:.0} ms of backoff charged)",
        stats.requests, stats.attempts, stats.total_backoff_ms
    );
    Ok(())
}
