//! Walk through ADAPT's full pipeline on the workload that benefits most
//! from it: a deep QFT on the 27-qubit IBMQ-Toronto model. Shows the
//! compiled schedule (Gate Sequence Table), the decoy circuit, the
//! localized search trace, and the final fidelity comparison.
//!
//! ```sh
//! cargo run --release --example qft_on_toronto
//! ```

use adapt::decoy::{make_decoy, DecoyKind};
use adapt::gst::GateSequenceTable;
use adapt_suite::prelude::*;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let machine = Machine::new(Device::ibmq_toronto(2021));
    let framework = Adapt::new(machine);
    let program = benchmarks::qft_bench(6, 42);
    let cfg = AdaptConfig::default();

    // 1. Compile: decompose → noise-adaptive layout → route → schedule.
    let compiled = framework.compile(&program, &cfg);
    println!(
        "compiled: {} instructions, makespan {:.1} us, {} SWAPs inserted",
        compiled.circuit.len(),
        compiled.timed.total_ns() / 1000.0,
        compiled.swap_count
    );

    // 2. The Gate Sequence Table exposes every idle window.
    let gst = GateSequenceTable::build(&compiled.timed);
    println!("\nidle fractions of the program qubits:");
    for p in 0..6u32 {
        let wire = compiled.initial_layout.phys_of(p);
        println!(
            "  q{p} on wire {wire:2}: {:5.1}% idle ({} eligible DD windows)",
            gst.row(wire).idle_fraction * 100.0,
            gst.dd_eligible_windows(wire, 180.0).len()
        );
    }

    // 3. The seeded Clifford decoy: same schedule, known answer.
    let decoy = make_decoy(&compiled.timed, DecoyKind::default())?;
    println!(
        "\ndecoy: {} non-Clifford seeds kept, ideal output has {} outcomes",
        decoy.non_clifford_count,
        decoy.ideal.len()
    );

    // 4. Localized search over DD masks (≤ 4·N decoy circuits).
    let search = framework.choose_mask(&compiled, 6, &cfg)?;
    println!(
        "search: {} decoy runs, best mask {}",
        search.decoy_runs(),
        search.best
    );
    for score in search.ranked().iter().take(5) {
        println!(
            "  mask {}  decoy fidelity {:.3}",
            score.mask, score.fidelity
        );
    }

    // 5. Final comparison.
    println!();
    for policy in [Policy::NoDd, Policy::AllDd, Policy::Adapt] {
        let run = framework.run_policy(&program, policy, &cfg)?;
        println!(
            "{:8}  fidelity {:.3}  (mask {})",
            run.policy.to_string(),
            run.fidelity,
            run.mask
        );
    }
    Ok(())
}
