//! Reproduce the paper's §3 device characterization on a simulated
//! machine: how badly does an idle qubit decay, how much worse is it when
//! CNOTs fire next door, and how much does dynamical decoupling recover?
//!
//! ```sh
//! cargo run --release --example characterize_idling
//! ```

use adapt::dd::{insert_dd, DdConfig, DdProtocol};
use adapt_suite::prelude::*;
use benchmarks::characterization::{idle_probe, idle_probe_with_cnots, theta_grid};
use transpiler::{decompose_circuit, schedule};

fn run_probe(
    machine: &Machine,
    circuit: &qcirc::Circuit,
    probe: u32,
    dd: Option<DdProtocol>,
    exec: &ExecutionConfig,
) -> Result<f64, Box<dyn std::error::Error>> {
    let physical = decompose_circuit(circuit);
    let timed = schedule(&physical, machine.device(), SchedulePolicy::Asap);
    let timed = match dd {
        None => timed,
        Some(p) => {
            insert_dd(
                &timed,
                machine.device(),
                &[probe],
                &DdConfig::for_protocol(p),
            )
            .timed
        }
    };
    let counts = machine.execute_timed(&timed, exec)?;
    Ok(counts.probability(0))
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let dev = Device::ibmq_london(7);
    let machine = Machine::new(dev.clone());
    let exec = ExecutionConfig {
        shots: 2000,
        trajectories: 80,
        seed: 11,
        threads: 0,
    };

    println!("-- free evolution vs XY4, 5 states, 8us idle --");
    for theta in theta_grid(5) {
        let probe = idle_probe(5, 0, theta, 8000.0);
        let free = run_probe(&machine, &probe, 0, None, &exec)?;
        let dd = run_probe(&machine, &probe, 0, Some(DdProtocol::Xy4), &exec)?;
        println!("  theta {theta:4.2}: free {free:.3}   XY4 {dd:.3}");
    }

    // Find the spectator/link pair with the strongest crosstalk coupling.
    let mut best = (0u32, device::LinkId(0), 0.0f64);
    for q in 0..dev.num_qubits() as u32 {
        for (l, chi) in dev.calibration().crosstalk_on(q) {
            if chi.abs() > best.2.abs() {
                best = (q, l, chi);
            }
        }
    }
    let (victim, link, chi) = best;
    let (a, b) = dev.topology().link_endpoints(link);
    println!("\n-- crosstalk: spectator q{victim} vs CNOTs on {a}-{b} (chi {chi:+.2} rad/us) --");
    for theta in theta_grid(5) {
        let probe = idle_probe_with_cnots(5, victim, theta, a, b, 6);
        let free = run_probe(&machine, &probe, victim, None, &exec)?;
        let dd = run_probe(&machine, &probe, victim, Some(DdProtocol::Xy4), &exec)?;
        println!("  theta {theta:4.2}: free {free:.3}   XY4 {dd:.3}");
    }
    Ok(())
}
