//! Quickstart: compile a program for a simulated IBMQ machine and compare
//! the four DD policies of the ADAPT paper.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use adapt_suite::prelude::*;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // A noisy 16-qubit machine modeled after IBMQ-Guadalupe. The seed
    // fixes the calibration snapshot and every stochastic process.
    let machine = Machine::new(Device::ibmq_guadalupe(42));
    println!("machine: {}", machine.device());

    // A 5-qubit QFT benchmark whose correct answer is |11⟩ = 3.
    let program = benchmarks::qft_bench(5, 3);
    println!(
        "program: QFT-5, {} gates, depth {}",
        program.gate_count(),
        program.depth()
    );

    let framework = Adapt::new(machine);
    let cfg = AdaptConfig::default();

    for policy in [Policy::NoDd, Policy::AllDd, Policy::Adapt] {
        let run = framework.run_policy(&program, policy, &cfg)?;
        println!(
            "{:12}  fidelity {:.3}   mask {}   ({} DD pulses, {} decoy runs)",
            run.policy.to_string(),
            run.fidelity,
            run.mask,
            run.pulse_count,
            run.search_runs,
        );
    }
    Ok(())
}
