//! Using the stack below the ADAPT framework: build your own DD study by
//! inserting different pulse protocols into a hand-written schedule and
//! executing them on the noisy machine. Reproduces a miniature version of
//! the paper's Fig. 16 protocol comparison, including the CPMG extension.
//!
//! ```sh
//! cargo run --release --example custom_dd_protocol
//! ```

use adapt::dd::{insert_dd, DdConfig, DdProtocol};
use adapt_suite::prelude::*;
use transpiler::{decompose_circuit, schedule};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let dev = Device::ibmq_guadalupe(9);
    let machine = Machine::new(dev.clone());
    let exec = ExecutionConfig {
        shots: 3000,
        trajectories: 100,
        seed: 17,
        threads: 0,
    };

    // As in the paper's Fig. 16, the probe idles while CNOTs repeatedly
    // fire on a link it is crosstalk-coupled to. Pick the strongest pair.
    let mut best = (0u32, device::LinkId(0), 0.0f64);
    for q in 0..dev.num_qubits() as u32 {
        for (l, chi) in dev.calibration().crosstalk_on(q) {
            if chi.abs() > best.2.abs() {
                best = (q, l, chi);
            }
        }
    }
    let (probe_q, link, chi) = best;
    let (a, b) = dev.topology().link_endpoints(link);
    println!("probe q{probe_q}, CNOTs on {a}-{b} (chi {chi:+.2} rad/us)\n");

    println!("idle(us)   free     XY4      IBMQ-DD  CPMG");
    for idle_us in [1.0f64, 2.0, 4.0, 8.0, 16.0] {
        let reps = (idle_us * 1000.0 / dev.link(link).dur_ns).round().max(1.0) as usize;
        let probe = benchmarks::characterization::idle_probe_with_cnots(
            16,
            probe_q,
            std::f64::consts::FRAC_PI_2,
            a,
            b,
            reps,
        );
        let physical = decompose_circuit(&probe);
        let timed = schedule(&physical, &dev, SchedulePolicy::Asap);

        let mut row = format!("{idle_us:7.0}  ");
        // Free evolution first, then each protocol.
        let free = machine.execute_timed(&timed, &exec)?.probability(0);
        row.push_str(&format!(" {free:.3}   "));
        for protocol in [DdProtocol::Xy4, DdProtocol::IbmqDd, DdProtocol::Cpmg] {
            let inserted = insert_dd(&timed, &dev, &[probe_q], &DdConfig::for_protocol(protocol));
            let fid = machine
                .execute_timed(&inserted.timed, &exec)?
                .probability(0);
            row.push_str(&format!(" {fid:.3}   "));
        }
        println!("{row}");
    }
    println!("\nXY4 stays dense at long idle times; the sparse two-pulse");
    println!("sequences leave gaps longer than the noise correlation time.");
    Ok(())
}
