//! The mask-recommendation service end to end: two devices
//! (Guadalupe-16 and Toronto-27), a small program mix, and the cache
//! provenance of every response.
//!
//! The first request for each `(device, circuit)` pays a fresh localized
//! search; repeats are cache hits with identical masks. A calibration
//! drift tick on Guadalupe then invalidates its epoch-0 masks, so the
//! same program searches again at epoch 1 — often settling on a
//! different mask, because the drifted calibration moved the idle-error
//! hotspots.
//!
//! The service publishes `adapt_service_*` metrics into the process-wide
//! [`adapt_obs`] registry (alongside the `adapt_machine_*` and
//! `adapt_search_*` metrics its backends record there), and the example
//! prints the Prometheus exposition at the end.
//!
//! ```sh
//! cargo run --release --example mask_service
//! ```

use adapt_suite::adapt_obs;
use adapt_suite::prelude::*;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let service = MaskService::start(ServiceConfig {
        devices: vec![DeviceId::Guadalupe, DeviceId::Toronto],
        workers: 4,
        seed: 2021,
        // A realistic serving floor: transient faults with retry.
        fault_profile: FaultProfile::flaky(),
        // Export into the global registry (the default is a private
        // per-service registry).
        registry: adapt_obs::global(),
        ..ServiceConfig::default()
    });
    println!("serving guadalupe + toronto with 4 workers (flaky faults)\n");

    let programs = [
        ("QFT-5", benchmarks::qft_bench(5, 11)),
        ("QFT-6A", benchmarks::qft_bench(6, 5)),
        ("BV-7", benchmarks::bernstein_vazirani(7, 0b101101)),
    ];
    let budget = SearchBudget {
        shots: 256,
        trajectories: 8,
        neighborhood: 4,
        tier: TierPolicy::default(),
    };

    let show = |label: &str, name: &str, circuit: &Circuit, device: DeviceId| {
        let response = service.call(Request::RecommendMask {
            circuit: circuit.clone(),
            device,
            protocol: DdProtocol::Xy4,
            budget,
            deadline_ms: None,
            tenancy: Default::default(),
        });
        match response {
            Ok(Response::Mask(rec)) => println!(
                "{label:10} {name:8} on {:10} epoch {}  mask {}  decoy fid {:.3}  [{}] {:.1} ms",
                device.name(),
                rec.key.epoch,
                rec.mask,
                rec.decoy_fidelity,
                rec.provenance,
                rec.timing.total_us() as f64 / 1000.0,
            ),
            Ok(Response::Execution(_)) => unreachable!("recommendations return masks"),
            Err(e) => println!("{label:10} {name:8} on {:10} failed: {e}", device.name()),
        }
    };

    // First pass: every key is a fresh search.
    for (name, circuit) in &programs {
        show("search", name, circuit, DeviceId::Guadalupe);
    }
    show("search", programs[0].0, &programs[0].1, DeviceId::Toronto);

    // Second pass: everything is served from cache, bit-identically.
    println!();
    for (name, circuit) in &programs {
        show("repeat", name, circuit, DeviceId::Guadalupe);
    }
    show("repeat", programs[0].0, &programs[0].1, DeviceId::Toronto);

    // Calibration drift: Guadalupe's epoch-0 masks are now stale.
    let epoch = service.advance_epoch(DeviceId::Guadalupe)?;
    println!("\ndrift tick: guadalupe recalibrated to epoch {epoch}\n");
    for (name, circuit) in &programs {
        show("re-search", name, circuit, DeviceId::Guadalupe);
    }
    // Toronto did not drift — still a cache hit.
    show("repeat", programs[0].0, &programs[0].1, DeviceId::Toronto);

    let cache = service.cache_stats();
    let stats = service.shutdown();
    println!(
        "\n{} requests, {} searches, cache {} hits / {} misses ({:.0}% hit rate), \
         {} invalidated by drift, {} worker panics",
        stats.completed,
        stats.searches,
        cache.hits,
        cache.misses,
        cache.hit_rate() * 100.0,
        cache.invalidated,
        stats.worker_panics,
    );

    // Everything above is also in the metrics registry — one scrape
    // covers the service, its mask cache, and the machine/search layers
    // underneath. (Filtered to counters here; the full exposition also
    // carries gauges and latency histograms.)
    println!("\n# Prometheus exposition (counters):");
    for line in adapt_obs::global().render_prometheus().lines() {
        if line.ends_with("_total 0") || line.starts_with('#') {
            continue;
        }
        if line.contains("_total ") {
            println!("{line}");
        }
    }
    Ok(())
}
