//! # adapt-suite — the ADAPT reproduction, in one crate
//!
//! Umbrella crate re-exporting every layer of the stack so downstream
//! users can depend on a single package:
//!
//! - [`qcirc`]: circuit IR, gates, Clifford machinery;
//! - [`stab`]: CHP / extended stabilizer simulators;
//! - [`statevec`]: dense state-vector simulator;
//! - [`device`]: IBMQ machine models (topology, calibration, crosstalk);
//! - [`transpiler`]: decompose → layout → route → optimize → schedule;
//! - [`machine`]: noisy Monte-Carlo trajectory executor;
//! - [`adapt`]: the paper's contribution — GST, DD protocols, decoy
//!   circuits, localized search, policies;
//! - [`adapt_service`]: the serving layer — device registry with
//!   calibration epochs, epoch-keyed mask cache, bounded worker pool;
//! - [`adapt_fleet`]: horizontal scale-out — length-prefixed wire
//!   protocol over TCP, rendezvous-hash shard router with cross-shard
//!   cache-fill forwarding, per-shard breakers, fleet-wide metrics
//!   aggregation;
//! - [`adapt_obs`]: dependency-free metrics facade — counters, gauges,
//!   latency histograms and span timers behind a [`adapt_obs::Registry`]
//!   with Prometheus/JSON exposition;
//! - [`benchmarks`]: BV/QFT/QAOA/Adder/QPE generators and probes.
//!
//! # Quick start
//!
//! ```
//! use adapt_suite::prelude::*;
//!
//! let machine = Machine::new(Device::ibmq_guadalupe(42));
//! let framework = Adapt::new(machine);
//! let program = benchmarks::qft_bench(4, 6);
//! let cfg = AdaptConfig::default();
//! let compiled = framework.compile(&program, &cfg);
//! // ADAPT's localized search needs at most 4·N decoy circuits
//! // (plus a 3-run referee pass; see the adapt crate docs).
//! let choice = framework.choose_mask(&compiled, 4, &cfg).unwrap();
//! assert!(choice.decoy_runs() <= 4 * 4 + 3);
//! ```

#![warn(missing_docs)]

pub use adapt;
pub use adapt_fleet;
pub use adapt_obs;
pub use adapt_service;
pub use benchmarks;
pub use device;
pub use machine;
pub use qcirc;
pub use stab;
pub use statevec;
pub use transpiler;

/// The names most programs need.
pub mod prelude {
    pub use adapt::{
        Adapt, AdaptConfig, DdConfig, DdMask, DdProtocol, DecoyKind, Policy, PolicyRun,
    };
    pub use adapt_service::{
        DeviceId, MaskService, Provenance, Request, Response, SearchBudget, ServiceConfig,
        ServiceError, TierConfig, TierPolicy,
    };
    pub use benchmarks::{self, BenchmarkSpec};
    pub use device::{Device, SeedSpawner, Topology};
    pub use machine::{
        Backend, ExecError, ExecutionConfig, FaultProfile, FaultStats, FaultyBackend, Machine,
        NoiseToggles, ResilientExecutor, RetryPolicy,
    };
    pub use qcirc::{Circuit, Counts, Gate, Qubit};
    pub use transpiler::{transpile, SchedulePolicy, TranspileOptions};
}
