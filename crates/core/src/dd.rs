//! Dynamical-decoupling protocols and pulse insertion (§4.4.3).
//!
//! Two protocols from the paper plus a CPMG extension:
//!
//! - **XY4**: continuous repetition of X–Y–X–Y with a 10 ns free-evolution
//!   buffer after each pulse; inserted back-to-back while the idle window
//!   has room (Fig. 12a/b).
//! - **IBMQ-DD**: two X(π)/X(−π) pulses placed evenly in the window with
//!   delay slots `τ/4 – X – τ/2 – X – τ/4` (Fig. 12c/d, Eq. 4); long
//!   windows are split into segments so the pulse spacing stays bounded
//!   (the "conservative manner" of §6.4).
//! - **CPMG**: the classic two-pulse Y echo, same placement as IBMQ-DD —
//!   an extension beyond the paper's two protocols.
//!
//! Pulses are inserted *at exact timestamps* into the scheduled circuit,
//! so the trajectory executor sees precisely the pulse spacing each
//! protocol produces — which is what differentiates them under
//! finite-correlation-time noise.

use crate::gst::GateSequenceTable;
use device::Device;
use qcirc::{Gate, Instruction, Qubit};
use std::fmt;
use transpiler::{Layout, TimedCircuit, TimedInstruction};

/// A DD pulse protocol.
///
/// XY4 and IBMQ-DD are the paper's two protocols; CPMG, XY8 and UDD are
/// extensions in the direction of its "other DD sequences" future work.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum DdProtocol {
    /// Continuous X–Y–X–Y repetition.
    #[default]
    Xy4,
    /// IBM's evenly-spaced X(π)–X(−π) pair.
    IbmqDd,
    /// Evenly-spaced Y–Y echo pair (extension).
    Cpmg,
    /// Continuous X–Y–X–Y–Y–X–Y–X repetition: XY4 followed by its
    /// reflection, canceling pulse-error accumulation to first order
    /// (extension).
    Xy8,
    /// Uhrig DD: `pulses` X pulses at the sin² positions
    /// `t_j = T·sin²(πj / (2N+2))`, optimal against noise with a sharp
    /// high-frequency cutoff (extension).
    Udd {
        /// Number of pulses per idle window (must be even so the window
        /// composes to identity).
        pulses: u32,
    },
}

impl fmt::Display for DdProtocol {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DdProtocol::Xy4 => write!(f, "XY4"),
            DdProtocol::IbmqDd => write!(f, "IBMQ-DD"),
            DdProtocol::Cpmg => write!(f, "CPMG"),
            DdProtocol::Xy8 => write!(f, "XY8"),
            DdProtocol::Udd { pulses } => write!(f, "UDD-{pulses}"),
        }
    }
}

/// Insertion parameters.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DdConfig {
    /// Pulse protocol.
    pub protocol: DdProtocol,
    /// Free-evolution buffer after each pulse (10 ns on IBM systems, per
    /// Pokharel et al.).
    pub buffer_ns: f64,
    /// Maximum segment length for the two-pulse protocols; longer windows
    /// are split so pulse spacing stays bounded (§6.4).
    pub segment_ns: f64,
}

impl Default for DdConfig {
    fn default() -> Self {
        DdConfig {
            protocol: DdProtocol::Xy4,
            buffer_ns: 10.0,
            segment_ns: 2000.0,
        }
    }
}

impl DdConfig {
    /// Config for a specific protocol with paper-default parameters.
    pub fn for_protocol(protocol: DdProtocol) -> Self {
        DdConfig {
            protocol,
            ..Default::default()
        }
    }

    /// Rejects insertion parameters no protocol can compose an identity
    /// window from: a UDD pulse count that is odd or zero, or non-finite
    /// / non-positive timing parameters.
    ///
    /// # Errors
    ///
    /// The first violation found, as a typed [`DdConfigError`].
    pub fn validate(&self) -> Result<(), DdConfigError> {
        self.protocol.validate()?;
        if !self.buffer_ns.is_finite() || self.buffer_ns < 0.0 {
            return Err(DdConfigError::BadBuffer {
                buffer_ns: self.buffer_ns,
            });
        }
        if !self.segment_ns.is_finite() || self.segment_ns <= 0.0 {
            return Err(DdConfigError::BadSegment {
                segment_ns: self.segment_ns,
            });
        }
        Ok(())
    }
}

/// A [`DdConfig`] (or bare [`DdProtocol`]) that cannot produce a valid
/// identity-composing pulse sequence.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum DdConfigError {
    /// `Udd { pulses }` with an odd count: an odd number of X pulses
    /// leaves a net X on the idle qubit instead of composing to
    /// identity.
    OddUddPulses {
        /// The rejected pulse count.
        pulses: u32,
    },
    /// `Udd { pulses: 0 }`: the protocol would insert nothing while
    /// claiming to protect the window.
    ZeroUddPulses,
    /// Non-finite or negative free-evolution buffer.
    BadBuffer {
        /// The rejected buffer length.
        buffer_ns: f64,
    },
    /// Non-finite or non-positive segment bound.
    BadSegment {
        /// The rejected segment length.
        segment_ns: f64,
    },
}

impl fmt::Display for DdConfigError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DdConfigError::OddUddPulses { pulses } => write!(
                f,
                "UDD pulse count {pulses} is odd: the idle window would compose \
                 to a net X instead of identity"
            ),
            DdConfigError::ZeroUddPulses => {
                write!(f, "UDD pulse count 0 would insert no pulses at all")
            }
            DdConfigError::BadBuffer { buffer_ns } => {
                write!(
                    f,
                    "pulse buffer of {buffer_ns} ns is not a finite non-negative length"
                )
            }
            DdConfigError::BadSegment { segment_ns } => {
                write!(
                    f,
                    "segment bound of {segment_ns} ns is not a finite positive length"
                )
            }
        }
    }
}

impl std::error::Error for DdConfigError {}

impl DdProtocol {
    /// Rejects protocol parameters that cannot compose an idle window to
    /// identity. Only [`DdProtocol::Udd`] carries parameters today: its
    /// pulse count must be even (documented on the variant) and
    /// non-zero; everything else is parameter-free and always valid.
    ///
    /// # Errors
    ///
    /// A typed [`DdConfigError`] naming the violation.
    pub fn validate(&self) -> Result<(), DdConfigError> {
        match *self {
            DdProtocol::Udd { pulses: 0 } => Err(DdConfigError::ZeroUddPulses),
            DdProtocol::Udd { pulses } if pulses % 2 == 1 => {
                Err(DdConfigError::OddUddPulses { pulses })
            }
            _ => Ok(()),
        }
    }
}

/// Which program qubits receive DD — the paper's bit-vector notation
/// where combination `000…0` is no DD and `111…1` is DD on every qubit.
///
/// # Examples
///
/// ```
/// use adapt::dd::DdMask;
/// let m: DdMask = "0101".parse().unwrap();
/// assert!(m.is_set(1) && m.is_set(3));
/// assert!(!m.is_set(0));
/// assert_eq!(m.to_string(), "0101");
/// assert_eq!(m.count_ones(), 2);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct DdMask {
    bits: u64,
    num_qubits: usize,
}

impl DdMask {
    /// Mask with no qubit selected.
    pub fn none(num_qubits: usize) -> Self {
        assert!(num_qubits <= 64);
        DdMask {
            bits: 0,
            num_qubits,
        }
    }

    /// Mask with every qubit selected (the All-DD policy).
    pub fn all(num_qubits: usize) -> Self {
        assert!(num_qubits <= 64);
        let bits = if num_qubits == 64 {
            u64::MAX
        } else {
            (1u64 << num_qubits) - 1
        };
        DdMask { bits, num_qubits }
    }

    /// Mask from raw bits (bit `i` = program qubit `i`).
    pub fn from_bits(bits: u64, num_qubits: usize) -> Self {
        assert!(num_qubits <= 64);
        let cap = if num_qubits == 64 {
            u64::MAX
        } else {
            (1u64 << num_qubits) - 1
        };
        DdMask {
            bits: bits & cap,
            num_qubits,
        }
    }

    /// The raw bits.
    pub fn bits(self) -> u64 {
        self.bits
    }

    /// Number of program qubits the mask ranges over.
    pub fn num_qubits(self) -> usize {
        self.num_qubits
    }

    /// Whether program qubit `i` receives DD.
    pub fn is_set(self, i: usize) -> bool {
        self.bits >> i & 1 == 1
    }

    /// Returns a copy with qubit `i` set/cleared.
    pub fn with(self, i: usize, on: bool) -> Self {
        assert!(i < self.num_qubits);
        let bits = if on {
            self.bits | 1 << i
        } else {
            self.bits & !(1 << i)
        };
        DdMask { bits, ..self }
    }

    /// Number of selected qubits.
    pub fn count_ones(self) -> u32 {
        self.bits.count_ones()
    }

    /// Bitwise OR — the paper's conservative top-2 merge (§4.3: best
    /// predictions "1001" and "1011" merge to "1011").
    pub fn union(self, other: DdMask) -> DdMask {
        assert_eq!(self.num_qubits, other.num_qubits);
        DdMask {
            bits: self.bits | other.bits,
            num_qubits: self.num_qubits,
        }
    }

    /// Iterates over the selected qubit indices.
    pub fn iter_set(self) -> impl Iterator<Item = usize> {
        (0..self.num_qubits).filter(move |&i| self.is_set(i))
    }

    /// All `2^n` masks over `n` qubits in numeric order.
    ///
    /// # Panics
    ///
    /// Panics for `n > 20` (guard against accidental exponential loops).
    pub fn enumerate_all(num_qubits: usize) -> Vec<DdMask> {
        assert!(num_qubits <= 20, "enumerate_all over {num_qubits} qubits");
        (0..(1u64 << num_qubits))
            .map(|b| DdMask::from_bits(b, num_qubits))
            .collect()
    }
}

impl fmt::Display for DdMask {
    /// Renders as the paper's bit-string notation: character `j` is
    /// program qubit `j` (so "010100" selects qubits 1 and 3).
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for i in 0..self.num_qubits {
            write!(f, "{}", if self.is_set(i) { '1' } else { '0' })?;
        }
        Ok(())
    }
}

impl std::str::FromStr for DdMask {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        if s.is_empty() || s.len() > 64 {
            return Err(format!("mask length {} not in 1..=64", s.len()));
        }
        let mut bits = 0u64;
        for (i, ch) in s.chars().enumerate() {
            match ch {
                '1' => bits |= 1 << i,
                '0' => {}
                other => return Err(format!("invalid mask character {other:?}")),
            }
        }
        Ok(DdMask {
            bits,
            num_qubits: s.len(),
        })
    }
}

/// Result of DD insertion.
#[derive(Debug, Clone)]
pub struct InsertedDd {
    /// The schedule with pulses spliced in.
    pub timed: TimedCircuit,
    /// Number of physical pulses added.
    pub pulse_count: usize,
}

/// Maps a program-qubit mask to the physical wires that host those
/// program qubits under `layout`.
pub fn mask_to_wires(mask: DdMask, layout: &Layout) -> Vec<u32> {
    mask.iter_set().map(|p| layout.phys_of(p as u32)).collect()
}

/// The mask-independent part of DD insertion, computed once per
/// schedule: the [`GateSequenceTable`] scan, the protocol's minimum
/// window length and every wire's eligible idle windows.
///
/// Splitting this out of [`insert_dd`] matters in the search hot loop,
/// where a neighborhood scores 16 masks against the *same* decoy
/// schedule: the schedule scan happens once via
/// [`analyze_idle_windows`], and each mask pays only the cheap
/// per-masked-wire padding pass of [`insert_dd_prepared`].
#[derive(Debug, Clone)]
pub struct IdleAnalysis {
    config: DdConfig,
    pulse_ns: f64,
    min_window_ns: f64,
    /// Per physical wire: eligible `(start_ns, end_ns)` windows.
    windows: Vec<Vec<(f64, f64)>>,
}

impl IdleAnalysis {
    /// The insertion parameters the analysis was built for.
    pub fn config(&self) -> &DdConfig {
        &self.config
    }

    /// Minimum idle-window length (ns) that fits one repetition of the
    /// protocol.
    pub fn min_window_ns(&self) -> f64 {
        self.min_window_ns
    }

    /// The eligible `(start_ns, end_ns)` windows of one physical wire.
    pub fn eligible_windows(&self, wire: u32) -> &[(f64, f64)] {
        &self.windows[wire as usize]
    }
}

/// Scans a schedule once for the idle windows eligible under `config`:
/// interior and trailing windows long enough to hold at least one
/// repetition of the protocol. Leading windows (qubit still `|0⟩`) are
/// skipped.
///
/// The result is valid for any DD mask over the same schedule — pass it
/// to [`insert_dd_prepared`] repeatedly.
pub fn analyze_idle_windows(
    timed: &TimedCircuit,
    device: &Device,
    config: &DdConfig,
) -> IdleAnalysis {
    let gst = GateSequenceTable::build(timed);
    let pulse_ns = device.calibration().sq_dur_ns;
    let min_window_ns = match config.protocol {
        DdProtocol::Xy4 => 4.0 * (pulse_ns + config.buffer_ns),
        DdProtocol::Xy8 => 8.0 * (pulse_ns + config.buffer_ns),
        DdProtocol::IbmqDd | DdProtocol::Cpmg => 2.0 * pulse_ns + 4.0 * config.buffer_ns,
        DdProtocol::Udd { pulses } => (pulses.max(2) as f64) * (pulse_ns + config.buffer_ns),
    };
    let windows = (0..timed.num_qubits() as u32)
        .map(|q| {
            gst.dd_eligible_windows(q, min_window_ns)
                .iter()
                .map(|w| (w.start_ns, w.end_ns))
                .collect()
        })
        .collect();
    IdleAnalysis {
        config: *config,
        pulse_ns,
        min_window_ns,
        windows,
    }
}

/// Pads the given wires' pre-analyzed idle windows with the configured
/// protocol — the cheap per-mask half of DD insertion. Only the masked
/// wires are touched; nothing is rescanned.
///
/// `analysis` must come from [`analyze_idle_windows`] over the same
/// `timed` schedule.
///
/// # Panics
///
/// Panics when a wire index exceeds the analyzed schedule's register.
pub fn insert_dd_prepared(
    timed: &TimedCircuit,
    analysis: &IdleAnalysis,
    wires: &[u32],
) -> InsertedDd {
    let mut events: Vec<TimedInstruction> = timed.events().to_vec();
    let mut pulse_count = 0usize;
    for &wire in wires {
        for &(start, end) in analysis.eligible_windows(wire) {
            pulse_count += fill_window(
                &mut events,
                wire,
                start,
                end,
                analysis.pulse_ns,
                &analysis.config,
            );
        }
    }
    InsertedDd {
        timed: TimedCircuit::from_events(timed.num_qubits(), timed.num_clbits(), events),
        pulse_count,
    }
}

/// Inserts the configured DD sequence into every eligible idle window of
/// the given physical wires.
///
/// Windows are taken from the [`GateSequenceTable`]: interior and trailing
/// idle periods long enough to hold at least one repetition of the
/// protocol. Leading windows (qubit still `|0⟩`) are skipped.
///
/// One-shot convenience over [`analyze_idle_windows`] +
/// [`insert_dd_prepared`]; callers inserting many masks into one
/// schedule should hold the analysis and call the prepared variant.
pub fn insert_dd(
    timed: &TimedCircuit,
    device: &Device,
    wires: &[u32],
    config: &DdConfig,
) -> InsertedDd {
    insert_dd_prepared(timed, &analyze_idle_windows(timed, device, config), wires)
}

/// Fills one idle window with the configured protocol; returns the number
/// of pulses placed.
fn fill_window(
    events: &mut Vec<TimedInstruction>,
    wire: u32,
    start: f64,
    end: f64,
    pulse_ns: f64,
    config: &DdConfig,
) -> usize {
    let mut placed = 0usize;
    let mut push = |gate: Gate, at: f64| {
        events.push(TimedInstruction {
            instr: Instruction::gate(gate, vec![Qubit::new(wire)]),
            start_ns: at,
            end_ns: at + pulse_ns,
        });
    };
    match config.protocol {
        DdProtocol::Xy4 | DdProtocol::Xy8 => {
            let pattern: &[Gate] = if config.protocol == DdProtocol::Xy4 {
                &[Gate::X, Gate::Y, Gate::X, Gate::Y]
            } else {
                &[
                    Gate::X,
                    Gate::Y,
                    Gate::X,
                    Gate::Y,
                    Gate::Y,
                    Gate::X,
                    Gate::Y,
                    Gate::X,
                ]
            };
            let rep = pattern.len() as f64 * (pulse_ns + config.buffer_ns);
            let mut t = start;
            while t + rep <= end + 1e-9 {
                for &gate in pattern {
                    push(gate, t);
                    t += pulse_ns + config.buffer_ns;
                    placed += 1;
                }
            }
        }
        DdProtocol::Udd { pulses } => {
            // Even pulse count keeps the window an identity; Uhrig spacing
            // t_j = T·sin²(πj / (2N+2)), pulse centered at t_j.
            let n_pulses = (pulses.max(2) & !1) as usize;
            let duration = end - start;
            if duration < n_pulses as f64 * (pulse_ns + config.buffer_ns) {
                return 0;
            }
            for j in 1..=n_pulses {
                let frac = (std::f64::consts::PI * j as f64 / (2.0 * n_pulses as f64 + 2.0))
                    .sin()
                    .powi(2);
                let center = start + frac * duration;
                let at = (center - pulse_ns / 2.0).max(start).min(end - pulse_ns);
                push(Gate::X, at);
                placed += 1;
            }
        }
        DdProtocol::IbmqDd | DdProtocol::Cpmg => {
            let gate = if config.protocol == DdProtocol::Cpmg {
                Gate::Y
            } else {
                Gate::X
            };
            let duration = end - start;
            let segments = (duration / config.segment_ns).ceil().max(1.0) as usize;
            let seg_len = duration / segments as f64;
            if seg_len < 2.0 * pulse_ns + 4.0 * config.buffer_ns {
                return 0;
            }
            for s in 0..segments {
                let s0 = start + s as f64 * seg_len;
                // Eq. 4: delay(τ/4) with τ = segment − 2 pulses.
                let tau4 = (seg_len - 2.0 * pulse_ns) / 4.0;
                // τ/4 – X(π) – τ/2 – X(−π) – τ/4. X(−π) equals X(π) up to
                // global phase; the distinction matters only for pulse-level
                // calibration robustness, which the gate-level model folds
                // into err_1q.
                push(gate, s0 + tau4);
                push(gate, s0 + tau4 + pulse_ns + 2.0 * tau4);
                placed += 2;
            }
        }
    }
    placed
}

#[cfg(test)]
mod tests {
    use super::*;
    use device::Device;
    use qcirc::{Circuit, OpKind};
    use transpiler::{transpile, TranspileOptions};

    fn timed_with_idle(idle_ns: f64) -> (Device, TimedCircuit) {
        let dev = Device::ibmq_rome(1);
        let mut c = Circuit::new(2);
        // q1 busy-idles between two X gates.
        c.x(1);
        c.delay(idle_ns, 1);
        c.x(1).measure(1, 1);
        let t = transpile(
            &c,
            &dev,
            &TranspileOptions {
                layout: transpiler::LayoutStrategy::Trivial,
                scheduling: transpiler::SchedulePolicy::Asap,
                skip_optimization: true,
            },
        );
        (dev, t.timed)
    }

    #[test]
    fn mask_roundtrip_and_paper_notation() {
        let m: DdMask = "010100".parse().unwrap();
        assert_eq!(m.num_qubits(), 6);
        assert_eq!(m.iter_set().collect::<Vec<_>>(), vec![1, 3]);
        assert_eq!(m.to_string(), "010100");
        assert_eq!(DdMask::all(6).to_string(), "111111");
        assert_eq!(DdMask::none(6).to_string(), "000000");
    }

    #[test]
    fn mask_parse_rejects_garbage() {
        assert!("01x1".parse::<DdMask>().is_err());
        assert!("".parse::<DdMask>().is_err());
    }

    #[test]
    fn conservative_merge_matches_paper_example() {
        // §4.3: "if the two best predictions are 1001 and 1011, the chosen
        // sequence is 1011".
        let a: DdMask = "1001".parse().unwrap();
        let b: DdMask = "1011".parse().unwrap();
        assert_eq!(a.union(b).to_string(), "1011");
    }

    #[test]
    fn enumerate_all_covers_space() {
        let all = DdMask::enumerate_all(4);
        assert_eq!(all.len(), 16);
        assert_eq!(all[0], DdMask::none(4));
        assert_eq!(all[15], DdMask::all(4));
    }

    #[test]
    fn xy4_fills_long_window_continuously() {
        let (dev, timed) = timed_with_idle(2000.0);
        let out = insert_dd(&timed, &dev, &[1], &DdConfig::default());
        // 2000ns window, 180ns per rep → 11 reps → 44 pulses.
        let reps = (2000.0f64 / (4.0 * 45.0)).floor() as usize;
        assert_eq!(out.pulse_count, 4 * reps);
        // Pulses alternate X and Y.
        let pulses: Vec<Gate> = out
            .timed
            .events()
            .iter()
            .filter(|e| {
                matches!(e.instr.kind, OpKind::Gate(Gate::X | Gate::Y))
                    && e.start_ns >= 35.0 - 1e-9
                    && e.end_ns < 2030.0
            })
            .map(|e| e.instr.as_gate().unwrap())
            .collect();
        assert!(pulses.len() >= 4);
        assert_eq!(pulses[0], Gate::X);
        assert_eq!(pulses[1], Gate::Y);
    }

    #[test]
    fn short_window_gets_no_pulses() {
        let (dev, timed) = timed_with_idle(100.0);
        let out = insert_dd(&timed, &dev, &[1], &DdConfig::default());
        assert_eq!(out.pulse_count, 0);
        assert_eq!(out.timed.events().len(), timed.events().len());
    }

    #[test]
    fn unselected_wire_untouched() {
        let (dev, timed) = timed_with_idle(2000.0);
        let out = insert_dd(&timed, &dev, &[0], &DdConfig::default());
        // Wire 0 never operates (Unused window) → nothing eligible.
        assert_eq!(out.pulse_count, 0);
    }

    #[test]
    fn ibmq_dd_places_two_pulses_per_segment_evenly() {
        let (dev, timed) = timed_with_idle(1000.0);
        let out = insert_dd(
            &timed,
            &dev,
            &[1],
            &DdConfig::for_protocol(DdProtocol::IbmqDd),
        );
        assert_eq!(out.pulse_count, 2);
        let pulses: Vec<&TimedInstruction> = out
            .timed
            .events()
            .iter()
            .filter(|e| {
                e.instr.as_gate() == Some(Gate::X) && e.start_ns > 35.0 && e.start_ns < 1030.0
            })
            .collect();
        assert_eq!(pulses.len(), 2);
        // Eq. 4 spacing: gap between pulses = τ/2 = 2·τ/4.
        let tau4 = (1000.0 - 70.0) / 4.0;
        let gap = pulses[1].start_ns - pulses[0].end_ns;
        assert!((gap - 2.0 * tau4).abs() < 1.0, "gap {gap}");
    }

    #[test]
    fn ibmq_dd_segments_long_windows() {
        let (dev, timed) = timed_with_idle(7000.0);
        let out = insert_dd(
            &timed,
            &dev,
            &[1],
            &DdConfig::for_protocol(DdProtocol::IbmqDd),
        );
        // 7000ns / 2000ns → 4 segments → 8 pulses.
        assert_eq!(out.pulse_count, 8);
    }

    #[test]
    fn validate_rejects_odd_udd_pulses() {
        let err = DdProtocol::Udd { pulses: 5 }.validate().unwrap_err();
        assert_eq!(err, DdConfigError::OddUddPulses { pulses: 5 });
        let err = DdConfig::for_protocol(DdProtocol::Udd { pulses: 3 })
            .validate()
            .unwrap_err();
        assert_eq!(err, DdConfigError::OddUddPulses { pulses: 3 });
    }

    #[test]
    fn validate_rejects_zero_udd_pulses() {
        assert_eq!(
            DdProtocol::Udd { pulses: 0 }.validate(),
            Err(DdConfigError::ZeroUddPulses)
        );
    }

    #[test]
    fn validate_accepts_even_udd_and_parameter_free_protocols() {
        for protocol in [
            DdProtocol::Xy4,
            DdProtocol::IbmqDd,
            DdProtocol::Cpmg,
            DdProtocol::Xy8,
            DdProtocol::Udd { pulses: 2 },
            DdProtocol::Udd { pulses: 8 },
        ] {
            assert_eq!(protocol.validate(), Ok(()));
            assert_eq!(DdConfig::for_protocol(protocol).validate(), Ok(()));
        }
    }

    #[test]
    fn validate_rejects_bad_timing_parameters() {
        let cfg = DdConfig {
            buffer_ns: -1.0,
            ..DdConfig::default()
        };
        assert!(matches!(
            cfg.validate(),
            Err(DdConfigError::BadBuffer { .. })
        ));
        let cfg = DdConfig {
            segment_ns: 0.0,
            ..DdConfig::default()
        };
        assert!(matches!(
            cfg.validate(),
            Err(DdConfigError::BadSegment { .. })
        ));
    }

    #[test]
    fn cpmg_uses_y_pulses() {
        let (dev, timed) = timed_with_idle(1000.0);
        let out = insert_dd(
            &timed,
            &dev,
            &[1],
            &DdConfig::for_protocol(DdProtocol::Cpmg),
        );
        assert_eq!(out.pulse_count, 2);
        let y_count = out
            .timed
            .events()
            .iter()
            .filter(|e| e.instr.as_gate() == Some(Gate::Y))
            .count();
        assert_eq!(y_count, 2);
    }

    #[test]
    fn pulses_stay_inside_their_window() {
        let (dev, timed) = timed_with_idle(3000.0);
        for protocol in [DdProtocol::Xy4, DdProtocol::IbmqDd, DdProtocol::Cpmg] {
            let out = insert_dd(&timed, &dev, &[1], &DdConfig::for_protocol(protocol));
            let x_start = 35.0; // first X ends at 35; window starts there
            for e in out.timed.events() {
                if matches!(e.instr.kind, OpKind::Gate(Gate::X | Gate::Y))
                    && e.instr.qubits[0].index() == 1
                    && e.start_ns > x_start
                    && e.start_ns < 3035.0
                {
                    assert!(e.start_ns >= x_start - 1e-9);
                    assert!(e.end_ns <= 3035.0 + 1e-9, "pulse leaks at {}", e.end_ns);
                }
            }
        }
    }

    #[test]
    fn xy8_pattern_is_xy4_plus_reflection() {
        let (dev, timed) = timed_with_idle(1000.0);
        let out = insert_dd(&timed, &dev, &[1], &DdConfig::for_protocol(DdProtocol::Xy8));
        // 1000ns window, 8·45ns rep → 2 reps → 16 pulses.
        assert_eq!(out.pulse_count, 16);
        let pulses: Vec<Gate> = out
            .timed
            .events()
            .iter()
            .filter(|e| {
                matches!(e.instr.kind, OpKind::Gate(Gate::X | Gate::Y))
                    && e.start_ns >= 35.0 - 1e-9
                    && e.end_ns < 1035.0
            })
            .map(|e| e.instr.as_gate().unwrap())
            .collect();
        assert_eq!(
            &pulses[..8],
            &[
                Gate::X,
                Gate::Y,
                Gate::X,
                Gate::Y,
                Gate::Y,
                Gate::X,
                Gate::Y,
                Gate::X
            ]
        );
    }

    #[test]
    fn udd_places_even_pulses_at_sin_squared_positions() {
        let (dev, timed) = timed_with_idle(2000.0);
        let out = insert_dd(
            &timed,
            &dev,
            &[1],
            &DdConfig::for_protocol(DdProtocol::Udd { pulses: 6 }),
        );
        assert_eq!(out.pulse_count, 6);
        let starts: Vec<f64> = out
            .timed
            .events()
            .iter()
            .filter(|e| {
                e.instr.as_gate() == Some(Gate::X) && e.start_ns >= 35.0 - 1e-9 && e.end_ns < 2035.0
            })
            .map(|e| e.start_ns)
            .collect();
        assert_eq!(starts.len(), 6);
        // Strictly increasing and non-uniform (Uhrig spacing bunches
        // pulses toward the window edges).
        for w in starts.windows(2) {
            assert!(w[1] > w[0]);
        }
        let first_gap = starts[1] - starts[0];
        let mid_gap = starts[3] - starts[2];
        assert!(
            mid_gap > first_gap,
            "UDD gaps should widen toward the middle: {first_gap} vs {mid_gap}"
        );
    }

    #[test]
    fn udd_odd_request_rounds_down_to_even() {
        let (dev, timed) = timed_with_idle(2000.0);
        let out = insert_dd(
            &timed,
            &dev,
            &[1],
            &DdConfig::for_protocol(DdProtocol::Udd { pulses: 5 }),
        );
        assert_eq!(out.pulse_count, 4);
    }

    #[test]
    fn mask_to_wires_follows_layout() {
        let layout = Layout::from_assignment(vec![3, 1, 4], 5);
        let m: DdMask = "101".parse().unwrap();
        assert_eq!(mask_to_wires(m, &layout), vec![3, 4]);
    }

    #[test]
    fn total_makespan_unchanged_by_insertion() {
        let (dev, timed) = timed_with_idle(2000.0);
        let before = timed.total_ns();
        let out = insert_dd(&timed, &dev, &[1], &DdConfig::default());
        assert!((out.timed.total_ns() - before).abs() < 1e-6);
    }

    #[test]
    fn prepared_insertion_matches_one_shot_for_every_protocol() {
        let (dev, timed) = timed_with_idle(3000.0);
        for protocol in [
            DdProtocol::Xy4,
            DdProtocol::Xy8,
            DdProtocol::IbmqDd,
            DdProtocol::Cpmg,
            DdProtocol::Udd { pulses: 6 },
        ] {
            let config = DdConfig::for_protocol(protocol);
            let analysis = analyze_idle_windows(&timed, &dev, &config);
            for wires in [vec![], vec![0], vec![1], vec![0, 1]] {
                let one_shot = insert_dd(&timed, &dev, &wires, &config);
                let prepared = insert_dd_prepared(&timed, &analysis, &wires);
                assert_eq!(prepared.pulse_count, one_shot.pulse_count, "{protocol}");
                assert_eq!(prepared.timed, one_shot.timed, "{protocol} wires {wires:?}");
            }
        }
    }

    #[test]
    fn analysis_exposes_windows_and_threshold() {
        let (dev, timed) = timed_with_idle(2000.0);
        let config = DdConfig::default();
        let analysis = analyze_idle_windows(&timed, &dev, &config);
        // XY4 on Rome: 4 · (35 + 10) = 180 ns minimum.
        assert!((analysis.min_window_ns() - 180.0).abs() < 1e-9);
        assert_eq!(analysis.config().protocol, DdProtocol::Xy4);
        // Wire 1 has the 2000 ns interior window (plus any trailing one);
        // wire 0 never operates, so nothing is eligible.
        assert!(!analysis.eligible_windows(1).is_empty());
        assert!(analysis.eligible_windows(0).is_empty());
        for &(s, e) in analysis.eligible_windows(1) {
            assert!(e - s >= analysis.min_window_ns());
        }
    }
}
