//! Decoy circuits (§4.2 of the paper).
//!
//! A decoy circuit is structurally identical to the compiled program —
//! same CNOTs on the same links at the same times, same idle windows — but
//! classically simulable, so its correct output is known and DD masks can
//! be scored against it on the noisy machine.
//!
//! Because the transpiled physical basis is {RZ, SX, X, CX} and only RZ
//! carries a free angle (and RZ is *virtual*, zero duration), nearest-
//! Clifford replacement degenerates to rounding every RZ angle to the
//! nearest multiple of π/2 — which provably preserves the schedule
//! exactly. Three variants:
//!
//! - [`DecoyKind::Clifford`] (CDC): round every RZ;
//! - [`DecoyKind::CnotOnly`]: strip all single-qubit gates (Fig. 10c's
//!   strawman — fails to track phase errors);
//! - [`DecoyKind::Seeded`] (SDC): keep the first non-Clifford RZ on a few
//!   high-idle qubits so the output distribution develops bias (low
//!   entropy) while the rest of the circuit stays Clifford (§4.2.3).

use crate::gst::GateSequenceTable;
use qcirc::{Circuit, Gate, Instruction, OpKind};
use statevec::SimError;
use std::collections::BTreeMap;
use std::f64::consts::FRAC_PI_2;
use transpiler::{TimedCircuit, TimedInstruction};

/// Decoy construction strategy.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum DecoyKind {
    /// Clifford Decoy Circuit: every gate rounded to Clifford.
    Clifford,
    /// Only the CNOT skeleton is kept (baseline from Fig. 10).
    CnotOnly,
    /// Seeded Clifford Decoy Circuit: up to `max_seed_qubits` early
    /// non-Clifford gates survive.
    Seeded {
        /// Maximum number of qubits that keep one non-Clifford gate.
        max_seed_qubits: usize,
    },
}

impl Default for DecoyKind {
    fn default() -> Self {
        DecoyKind::Seeded { max_seed_qubits: 4 }
    }
}

/// Errors raised while constructing a decoy.
#[derive(Debug, Clone, PartialEq)]
pub enum DecoyError {
    /// A gate outside the physical basis (or not Clifford) was found; run
    /// the transpiler first.
    UnsupportedGate(Gate),
    /// Ideal simulation of the decoy failed.
    Sim(SimError),
}

impl std::fmt::Display for DecoyError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DecoyError::UnsupportedGate(g) => {
                write!(
                    f,
                    "gate {g} not supported in decoy construction (transpile first)"
                )
            }
            DecoyError::Sim(e) => write!(f, "decoy ideal simulation failed: {e}"),
        }
    }
}

impl std::error::Error for DecoyError {}

impl From<SimError> for DecoyError {
    fn from(e: SimError) -> Self {
        DecoyError::Sim(e)
    }
}

/// A constructed decoy with its known-correct output.
#[derive(Debug, Clone)]
pub struct Decoy {
    /// The decoy schedule (identical timing to the input program).
    pub timed: TimedCircuit,
    /// Construction strategy used.
    pub kind: DecoyKind,
    /// Exact noise-free output distribution over classical bits.
    pub ideal: BTreeMap<u64, f64>,
    /// Number of non-Clifford gates that survived (0 for CDC/CnotOnly).
    pub non_clifford_count: usize,
}

impl Decoy {
    /// True when every gate in the decoy is Clifford.
    ///
    /// Fully Clifford decoys are eligible for the machine's CHP routing
    /// fast path: after DD-mask insertion (X/Y pulses are Clifford) the
    /// noisy execution runs on the stabilizer tableau instead of the dense
    /// state vector, which is what makes high-throughput mask search
    /// possible. Seeded decoys with surviving non-Clifford phases always
    /// fall back to the state-vector engine.
    pub fn is_clifford(&self) -> bool {
        self.non_clifford_count == 0
    }
}

/// True when the angle is a multiple of π/2 within `tol`.
fn is_clifford_angle(theta: f64, tol: f64) -> bool {
    let r = theta.rem_euclid(FRAC_PI_2);
    r < tol || FRAC_PI_2 - r < tol
}

/// Rounds an angle to the nearest multiple of π/2 — the operator-norm
/// nearest Clifford for a phase gate (§4.2.1: "the U1 gate is either
/// replaced by Z or S gates").
pub fn round_to_clifford_angle(theta: f64) -> f64 {
    (theta / FRAC_PI_2).round() * FRAC_PI_2
}

/// Builds a decoy from a transpiled, scheduled circuit.
///
/// # Errors
///
/// Returns [`DecoyError::UnsupportedGate`] when the schedule contains a
/// non-Clifford gate other than RZ (i.e. it was not produced by the
/// transpiler), or a wrapped simulation error if the ideal output cannot
/// be computed.
pub fn make_decoy(timed: &TimedCircuit, kind: DecoyKind) -> Result<Decoy, DecoyError> {
    const TOL: f64 = 1e-9;
    // Validate gate set and find candidate seed positions.
    for e in timed.events() {
        if let OpKind::Gate(g) = &e.instr.kind {
            match g {
                Gate::RZ(_) => {}
                _ if g.is_clifford() => {}
                other => return Err(DecoyError::UnsupportedGate(*other)),
            }
        }
    }

    // Choose seed events for SDC: on the qubits with the most idle time,
    // keep the first non-Clifford RZ that occurs after the qubit has been
    // touched by a pulse (so it acts on a superposition, not on |0⟩).
    let seeds: Vec<usize> = match kind {
        DecoyKind::Seeded { max_seed_qubits } => {
            let gst = GateSequenceTable::build(timed);
            let priority = gst.qubits_by_idle_time();
            let mut chosen = Vec::new();
            for &q in &priority {
                if chosen.len() >= max_seed_qubits {
                    break;
                }
                if let Some(idx) = first_seedable_rz(timed, q, TOL) {
                    chosen.push(idx);
                }
            }
            chosen
        }
        _ => Vec::new(),
    };

    let mut events: Vec<TimedInstruction> = Vec::with_capacity(timed.events().len());
    let mut non_clifford = 0usize;
    for (i, e) in timed.events().iter().enumerate() {
        let new_instr = match &e.instr.kind {
            OpKind::Gate(Gate::RZ(theta)) => {
                if seeds.contains(&i) && !is_clifford_angle(*theta, TOL) {
                    non_clifford += 1;
                    e.instr.clone()
                } else if matches!(kind, DecoyKind::CnotOnly) {
                    continue;
                } else {
                    Instruction::gate(
                        Gate::RZ(round_to_clifford_angle(*theta)),
                        e.instr.qubits.clone(),
                    )
                }
            }
            OpKind::Gate(g) if g.arity() == 1 && matches!(kind, DecoyKind::CnotOnly) => {
                let _ = g;
                continue;
            }
            _ => e.instr.clone(),
        };
        events.push(TimedInstruction {
            instr: new_instr,
            start_ns: e.start_ns,
            end_ns: e.end_ns,
        });
    }
    let decoy_timed = TimedCircuit::from_events(timed.num_qubits(), timed.num_clbits(), events);
    let ideal = decoy_ideal_distribution(&decoy_timed)?;
    Ok(Decoy {
        timed: decoy_timed,
        kind,
        ideal,
        non_clifford_count: non_clifford,
    })
}

/// Index (into the event list) of the first non-Clifford RZ on wire `q`
/// occurring after the wire's first amplitude-mixing pulse.
fn first_seedable_rz(timed: &TimedCircuit, q: u32, tol: f64) -> Option<usize> {
    let mut touched = false;
    for (i, e) in timed.events().iter().enumerate() {
        if e.instr.qubits.iter().all(|x| x.index() != q as usize) {
            continue;
        }
        match &e.instr.kind {
            OpKind::Gate(Gate::RZ(theta)) if touched && !is_clifford_angle(*theta, tol) => {
                return Some(i);
            }
            OpKind::Gate(Gate::RZ(_)) => {}
            OpKind::Gate(_) => touched = true,
            _ => {}
        }
    }
    None
}

/// Computes the exact ideal output distribution of a decoy schedule.
///
/// Pure-Clifford decoys go through the stabilizer simulator (polynomial in
/// qubits — this is what makes 100-qubit decoys tractable). Seeded decoys
/// are compacted onto their active qubits and solved densely when small
/// enough; larger seeded decoys fall back to the Heisenberg-picture
/// extended stabilizer (exact up to `2^seeds` Pauli branching, measured
/// register ≤ [`stab::heisenberg::MAX_MEASURED`] qubits).
///
/// # Errors
///
/// Returns a wrapped [`SimError`] when the seeded decoy exceeds both the
/// dense simulator and the Heisenberg path's measured-register limit.
pub fn decoy_ideal_distribution(timed: &TimedCircuit) -> Result<BTreeMap<u64, f64>, DecoyError> {
    let circuit = timed.to_circuit();
    if let Some(clifford) = to_stabilizer_circuit(&circuit) {
        return Ok(stab::chp::exact_distribution(&clifford).expect("converted circuit is Clifford"));
    }
    let (compact, _) = circuit.compacted();
    if compact.num_qubits() <= statevec::MAX_QUBITS {
        return Ok(statevec::ideal_distribution(&compact)?);
    }
    let measured = compact
        .iter()
        .filter(|i| matches!(i.kind, OpKind::Measure(_)))
        .count();
    if measured <= stab::heisenberg::MAX_MEASURED {
        return Ok(stab::heisenberg::output_distribution(&compact)
            .expect("decoys contain only Clifford + diagonal gates"));
    }
    Err(DecoyError::Sim(SimError::TooManyQubits {
        requested: compact.num_qubits(),
        limit: statevec::MAX_QUBITS,
    }))
}

/// Rewrites a circuit whose rotations all sit at Clifford angles into the
/// named Clifford gate set the tableau simulator accepts. Returns `None`
/// when any gate is genuinely non-Clifford.
pub fn to_stabilizer_circuit(circuit: &Circuit) -> Option<Circuit> {
    const TOL: f64 = 1e-9;
    let mut out = Circuit::with_clbits(circuit.num_qubits(), circuit.num_clbits());
    for instr in circuit.iter() {
        match &instr.kind {
            OpKind::Gate(Gate::RZ(theta)) | OpKind::Gate(Gate::P(theta)) => {
                if !is_clifford_angle(*theta, TOL) {
                    return None;
                }
                let quarter = ((theta / FRAC_PI_2).round() as i64).rem_euclid(4);
                let gate = match quarter {
                    0 => None,
                    1 => Some(Gate::S),
                    2 => Some(Gate::Z),
                    3 => Some(Gate::Sdg),
                    _ => unreachable!("rem_euclid(4) ∈ 0..4"),
                };
                if let Some(g) = gate {
                    out.push(Instruction::gate(g, instr.qubits.clone()));
                }
            }
            OpKind::Gate(g) if g.is_clifford() => {
                out.push(instr.clone());
            }
            OpKind::Gate(_) => return None,
            _ => {
                out.push(instr.clone());
            }
        }
    }
    Some(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::entropy_bits;
    use device::Device;
    use transpiler::{transpile, TranspileOptions};

    /// A QFT-like program: plenty of non-Clifford phases.
    fn qft_like(n: usize) -> Circuit {
        let mut c = Circuit::new(n);
        c.x(0);
        for i in 0..n as u32 {
            c.h(i);
            for j in (i + 1)..n as u32 {
                let angle = std::f64::consts::PI / (1 << (j - i)) as f64;
                c.p(angle / 2.0, i);
                c.cx(j, i);
                c.p(-angle / 2.0, i);
                c.cx(j, i);
                c.p(angle / 2.0, j);
            }
        }
        c.measure_all();
        c
    }

    fn transpiled(n: usize) -> (Device, TimedCircuit) {
        let dev = Device::ibmq_guadalupe(11);
        let t = transpile(&qft_like(n), &dev, &TranspileOptions::default());
        (dev, t.timed)
    }

    #[test]
    fn clifford_angle_rounding() {
        assert_eq!(round_to_clifford_angle(0.1), 0.0);
        assert!((round_to_clifford_angle(1.0) - FRAC_PI_2).abs() < 1e-12);
        assert!((round_to_clifford_angle(3.0) - std::f64::consts::PI).abs() < 1e-12);
        assert!((round_to_clifford_angle(-0.9) + FRAC_PI_2).abs() < 1e-12);
    }

    #[test]
    fn cdc_is_fully_clifford_with_identical_schedule() {
        let (_, timed) = transpiled(4);
        let decoy = make_decoy(&timed, DecoyKind::Clifford).unwrap();
        assert_eq!(decoy.non_clifford_count, 0);
        assert!(to_stabilizer_circuit(&decoy.timed.to_circuit()).is_some());
        // Identical event count and timing.
        assert_eq!(decoy.timed.events().len(), timed.events().len());
        for (a, b) in decoy.timed.events().iter().zip(timed.events()) {
            assert_eq!(a.start_ns, b.start_ns);
            assert_eq!(a.end_ns, b.end_ns);
            assert_eq!(a.instr.qubits, b.instr.qubits);
        }
        assert!((decoy.timed.total_ns() - timed.total_ns()).abs() < 1e-9);
    }

    #[test]
    fn cdc_preserves_cnot_structure() {
        let (_, timed) = transpiled(4);
        let decoy = make_decoy(&timed, DecoyKind::Clifford).unwrap();
        let orig: Vec<_> = timed.two_qubit_activity();
        let dec: Vec<_> = decoy.timed.two_qubit_activity();
        assert_eq!(orig, dec, "CNOT placement must be identical");
    }

    #[test]
    fn sdc_keeps_bounded_seeds() {
        let (_, timed) = transpiled(5);
        let decoy = make_decoy(&timed, DecoyKind::Seeded { max_seed_qubits: 3 }).unwrap();
        assert!(decoy.non_clifford_count <= 3);
        assert!(decoy.non_clifford_count >= 1, "QFT has seedable phases");
        // Schedule still identical.
        assert_eq!(decoy.timed.events().len(), timed.events().len());
    }

    #[test]
    fn clifford_flag_tracks_surviving_seeds() {
        let (_, timed) = transpiled(5);
        let cdc = make_decoy(&timed, DecoyKind::Clifford).unwrap();
        assert!(cdc.is_clifford(), "CDC must be CHP-eligible");
        let cnot = make_decoy(&timed, DecoyKind::CnotOnly).unwrap();
        assert!(cnot.is_clifford());
        let sdc = make_decoy(&timed, DecoyKind::Seeded { max_seed_qubits: 3 }).unwrap();
        assert!(!sdc.is_clifford(), "surviving seeds force the dense engine");
    }

    #[test]
    fn sdc_with_zero_seeds_equals_cdc() {
        let (_, timed) = transpiled(4);
        let sdc = make_decoy(&timed, DecoyKind::Seeded { max_seed_qubits: 0 }).unwrap();
        let cdc = make_decoy(&timed, DecoyKind::Clifford).unwrap();
        assert_eq!(sdc.non_clifford_count, 0);
        assert_eq!(sdc.ideal, cdc.ideal);
    }

    #[test]
    fn cnot_only_strips_single_qubit_gates() {
        let (_, timed) = transpiled(4);
        let decoy = make_decoy(&timed, DecoyKind::CnotOnly).unwrap();
        for e in decoy.timed.events() {
            if let OpKind::Gate(g) = &e.instr.kind {
                assert_eq!(g.arity(), 2, "1q gate {g} survived CnotOnly");
            }
        }
        // CNOT skeleton intact.
        assert_eq!(decoy.timed.two_qubit_activity(), timed.two_qubit_activity());
        // All qubits start in |0⟩ and CX preserves that: output is the
        // all-zeros point mass.
        assert_eq!(decoy.ideal.len(), 1);
    }

    #[test]
    fn ideal_distributions_normalized() {
        let (_, timed) = transpiled(5);
        for kind in [
            DecoyKind::Clifford,
            DecoyKind::CnotOnly,
            DecoyKind::Seeded { max_seed_qubits: 4 },
        ] {
            let decoy = make_decoy(&timed, kind).unwrap();
            let total: f64 = decoy.ideal.values().sum();
            assert!((total - 1.0).abs() < 1e-9, "{kind:?} not normalized");
        }
    }

    #[test]
    fn sdc_entropy_at_most_cdc_scale() {
        // The seeded decoy must not *increase* entropy beyond the CDC's
        // uniform-over-subspace output, and for QFT-like circuits it
        // should bias the distribution (strictly lower entropy).
        let (_, timed) = transpiled(5);
        let cdc = make_decoy(&timed, DecoyKind::Clifford).unwrap();
        let sdc = make_decoy(&timed, DecoyKind::Seeded { max_seed_qubits: 4 }).unwrap();
        let h_cdc = entropy_bits(&cdc.ideal);
        let h_sdc = entropy_bits(&sdc.ideal);
        assert!(
            h_sdc <= h_cdc + 1e-9,
            "SDC entropy {h_sdc} should not exceed CDC entropy {h_cdc}"
        );
    }

    #[test]
    fn stabilizer_conversion_handles_all_quarter_angles() {
        let mut c = Circuit::new(1);
        c.h(0)
            .rz(FRAC_PI_2, 0)
            .rz(std::f64::consts::PI, 0)
            .rz(-FRAC_PI_2, 0)
            .rz(0.0, 0)
            .rz(2.0 * std::f64::consts::PI, 0)
            .h(0)
            .measure(0, 0);
        let conv = to_stabilizer_circuit(&c).unwrap();
        // RZ(0) and RZ(2π) vanish; others map to S/Z/Sdg.
        let p_stab = stab::chp::exact_distribution(&conv).unwrap();
        let p_dense = statevec::ideal_distribution(&c).unwrap();
        for (k, v) in &p_dense {
            assert!((v - p_stab.get(k).copied().unwrap_or(0.0)).abs() < 1e-9);
        }
    }

    #[test]
    fn stabilizer_conversion_rejects_non_clifford() {
        let mut c = Circuit::new(1);
        c.rz(0.3, 0);
        assert!(to_stabilizer_circuit(&c).is_none());
        let mut c = Circuit::new(1);
        c.t(0);
        assert!(to_stabilizer_circuit(&c).is_none());
    }

    #[test]
    fn unsupported_gate_rejected() {
        use qcirc::Qubit;
        let e = TimedInstruction {
            instr: Instruction::gate(Gate::T, vec![Qubit::new(0)]),
            start_ns: 0.0,
            end_ns: 0.0,
        };
        let timed = TimedCircuit::from_events(1, 1, vec![e]);
        let err = make_decoy(&timed, DecoyKind::Clifford).unwrap_err();
        assert_eq!(err, DecoyError::UnsupportedGate(Gate::T));
    }

    #[test]
    fn large_seeded_decoy_uses_heisenberg_path() {
        // 30 active qubits (beyond the dense limit) with non-Clifford
        // seeds and a small measured register: only the Heisenberg path
        // can solve this, and the result must be a valid distribution.
        use qcirc::Qubit;
        let n = 30;
        let mut events = Vec::new();
        let mut t = 0.0;
        let push = |g: Gate, qs: Vec<u32>, t: &mut f64, events: &mut Vec<TimedInstruction>| {
            let dur = if g.arity() == 2 { 300.0 } else { 35.0 };
            events.push(TimedInstruction {
                instr: Instruction::gate(g, qs.into_iter().map(Qubit::new).collect()),
                start_ns: *t,
                end_ns: *t + dur,
            });
            *t += dur;
        };
        push(Gate::H, vec![0], &mut t, &mut events);
        for q in 0..(n - 1) as u32 {
            push(Gate::CX, vec![q, q + 1], &mut t, &mut events);
        }
        push(Gate::RZ(0.9), vec![2], &mut t, &mut events);
        push(Gate::RZ(0.4), vec![17], &mut t, &mut events);
        for q in 0..8u32 {
            events.push(TimedInstruction {
                instr: Instruction {
                    kind: OpKind::Measure(qcirc::Clbit::new(q)),
                    qubits: vec![Qubit::new(q)],
                },
                start_ns: t,
                end_ns: t + 1000.0,
            });
        }
        let timed = TimedCircuit::from_events(n, n, events);
        let dist = decoy_ideal_distribution(&timed).unwrap();
        let total: f64 = dist.values().sum();
        assert!((total - 1.0).abs() < 1e-9);
        // GHZ-like: mass sits on all-zeros / all-ones of the measured set.
        assert!(dist.get(&0).copied().unwrap_or(0.0) > 0.4);
        assert!(dist.get(&0xFF).copied().unwrap_or(0.0) > 0.4);
    }

    #[test]
    fn large_clifford_decoy_uses_stabilizer_path() {
        // 20 active qubits would be heavy densely; all-Clifford goes via
        // the tableau.
        let mut c = Circuit::new(24);
        c.h(0);
        for q in 0..23 {
            c.cx(q, q + 1);
        }
        c.measure_all();
        let dev = Device::all_to_all(24, 1);
        let t = transpile(&c, &dev, &TranspileOptions::default());
        let decoy = make_decoy(&t.timed, DecoyKind::Clifford).unwrap();
        assert_eq!(decoy.ideal.len(), 2); // GHZ: two outcomes
    }
}
