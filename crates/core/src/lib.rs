//! # adapt — Adaptive Dynamical Decoupling
//!
//! Rust reproduction of **ADAPT** (Das, Tannu, Dangwal, Qureshi —
//! MICRO 2021): a post-compile framework that mitigates idling errors by
//! applying dynamical-decoupling sequences to exactly the subset of qubits
//! that benefit from them.
//!
//! The pipeline, mirroring Fig. 7/11 of the paper:
//!
//! 1. transpile the program (external: the `transpiler` crate);
//! 2. build the [`gst::GateSequenceTable`] to locate idle windows;
//! 3. construct a [`decoy`] circuit with a known ideal output;
//! 4. run the localized [`search`] over DD masks on the decoy;
//! 5. [`dd::insert_dd`] the winning mask into the real program and run it.
//!
//! The four competing policies of §5.6 are available through
//! [`Policy`] / [`Adapt::run_policy`].
//!
//! # Examples
//!
//! ```no_run
//! use adapt::{Adapt, AdaptConfig, Policy};
//! use device::Device;
//! use machine::Machine;
//! use qcirc::Circuit;
//!
//! let machine = Machine::new(Device::ibmq_guadalupe(42));
//! let adapt = Adapt::new(machine);
//! let mut program = Circuit::new(4);
//! program.h(0).cx(0, 1).t(1).cx(1, 2).cx(2, 3).measure_all();
//! let cfg = AdaptConfig::default();
//! let run = adapt.run_policy(&program, Policy::Adapt, &cfg)?;
//! println!("mask {} fidelity {:.3}", run.mask, run.fidelity);
//! # Ok::<(), adapt::AdaptError>(())
//! ```

#![warn(missing_docs)]
#![cfg_attr(not(test), deny(clippy::unwrap_used))]

pub mod dd;
pub mod decoy;
pub mod gst;
pub mod heuristic;
pub mod metrics;
pub mod search;

pub use dd::{DdConfig, DdConfigError, DdMask, DdProtocol, IdleAnalysis};
pub use decoy::{Decoy, DecoyKind};
pub use gst::GateSequenceTable;
pub use heuristic::{heuristic_mask, HeuristicConfig, HeuristicMask, QubitAssessment};
pub use search::{DegradedGroup, MaskScore, SearchError, SearchResult, EXHAUSTIVE_MAX_QUBITS};

use device::Device;
use machine::{Backend, Deadline, ExecError, ExecutionConfig, Machine};
use qcirc::{Circuit, Counts};
use statevec::SimError;
use std::collections::BTreeMap;
use std::sync::Arc;
use transpiler::{transpile, TranspileOptions, TranspiledCircuit};

/// Largest program (in qubits) [`Policy::RuntimeBest`] will sweep. The
/// oracle runs all `2^N` masks on the *real* program, so it is held to a
/// tighter bound than the decoy-only [`EXHAUSTIVE_MAX_QUBITS`].
pub const RUNTIME_BEST_MAX_QUBITS: usize = 16;

/// The competing DD policies of §5.6.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Policy {
    /// Baseline: no DD anywhere.
    NoDd,
    /// DD on every program qubit in every idle window.
    AllDd,
    /// ADAPT: decoy-driven localized search for the best subset.
    Adapt,
    /// Oracle: exhaustive sweep of all `2^N` masks on the *real* program,
    /// keeping the best. Requires the true answer, so it is an upper
    /// bound, not a deployable policy.
    RuntimeBest,
}

impl std::fmt::Display for Policy {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Policy::NoDd => write!(f, "No-DD"),
            Policy::AllDd => write!(f, "All-DD"),
            Policy::Adapt => write!(f, "ADAPT"),
            Policy::RuntimeBest => write!(f, "Runtime-Best"),
        }
    }
}

/// Errors from the framework.
#[derive(Debug, Clone, PartialEq)]
pub enum AdaptError {
    /// Machine execution failed.
    Exec(ExecError),
    /// Decoy construction failed.
    Decoy(decoy::DecoyError),
    /// Ideal-output simulation failed.
    Sim(SimError),
    /// A mask sweep was rejected (oversized request).
    Search(SearchError),
}

impl std::fmt::Display for AdaptError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            AdaptError::Exec(e) => write!(f, "execution failed: {e}"),
            AdaptError::Decoy(e) => write!(f, "decoy construction failed: {e}"),
            AdaptError::Sim(e) => write!(f, "ideal simulation failed: {e}"),
            AdaptError::Search(e) => write!(f, "mask search failed: {e}"),
        }
    }
}

impl std::error::Error for AdaptError {}

impl From<ExecError> for AdaptError {
    fn from(e: ExecError) -> Self {
        AdaptError::Exec(e)
    }
}

impl From<decoy::DecoyError> for AdaptError {
    fn from(e: decoy::DecoyError) -> Self {
        AdaptError::Decoy(e)
    }
}

impl From<SimError> for AdaptError {
    fn from(e: SimError) -> Self {
        AdaptError::Sim(e)
    }
}

impl From<SearchError> for AdaptError {
    fn from(e: SearchError) -> Self {
        // Plain execution failures keep their established variant so
        // existing `AdaptError::Exec` matchers (retry loops, availability
        // checks) continue to work unchanged.
        match e {
            SearchError::Exec(e) => AdaptError::Exec(e),
            other => AdaptError::Search(other),
        }
    }
}

/// Framework configuration.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AdaptConfig {
    /// DD protocol and insertion parameters.
    pub dd: DdConfig,
    /// Decoy construction strategy (SDC with 4 seeds by default).
    pub decoy_kind: DecoyKind,
    /// Localized-search neighborhood size (4 in the paper).
    pub neighborhood: usize,
    /// Commit the OR of the top-2 neighborhood masks (§4.3).
    pub top2_merge: bool,
    /// Execution budget per decoy evaluation.
    pub search_exec: ExecutionConfig,
    /// Execution budget for the final program run.
    pub final_exec: ExecutionConfig,
    /// Compiler options.
    pub transpile: TranspileOptions,
}

impl Default for AdaptConfig {
    fn default() -> Self {
        AdaptConfig {
            dd: DdConfig::default(),
            decoy_kind: DecoyKind::default(),
            neighborhood: 4,
            top2_merge: true,
            search_exec: ExecutionConfig {
                shots: 2048,
                trajectories: 48,
                seed: 0xDEC0,
                threads: 0,
            },
            final_exec: ExecutionConfig {
                shots: 8192,
                trajectories: 96,
                seed: 0xF1DE,
                threads: 0,
            },
            transpile: TranspileOptions::default(),
        }
    }
}

impl AdaptConfig {
    /// Default configuration with a specific DD protocol.
    pub fn with_protocol(protocol: DdProtocol) -> Self {
        AdaptConfig {
            dd: DdConfig::for_protocol(protocol),
            ..Default::default()
        }
    }
}

/// Result of running a program under one policy.
#[derive(Debug, Clone)]
pub struct PolicyRun {
    /// Which policy produced this run.
    pub policy: Policy,
    /// The DD mask that was applied.
    pub mask: DdMask,
    /// Measured output histogram.
    pub counts: Counts,
    /// Program fidelity (1 − TVD against the ideal output).
    pub fidelity: f64,
    /// DD pulses inserted into the final program.
    pub pulse_count: usize,
    /// Decoy/oracle executions attempted while finding the mask —
    /// scored runs plus runs lost to backend availability (see
    /// [`SearchResult::decoy_runs`]).
    pub search_runs: usize,
    /// Neighborhoods that fell back to all-DD during the search because
    /// the backend was unavailable (always empty for non-ADAPT policies
    /// and healthy backends).
    pub degraded: Vec<DegradedGroup>,
}

/// The ADAPT framework bound to an execution backend.
///
/// The backend may be a pristine [`Machine`], a fault-injecting
/// [`machine::FaultyBackend`], or a [`machine::ResilientExecutor`]
/// retrying around one — the pipeline is identical. The device view used
/// for compilation and DD timing is snapshotted at construction, exactly
/// as a compiler on real hardware works from the calibration data of its
/// era even if the device drifts mid-run.
#[derive(Clone)]
pub struct Adapt {
    backend: Arc<dyn Backend>,
    device: Device,
}

impl std::fmt::Debug for Adapt {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Adapt")
            .field("device", &self.device)
            .finish_non_exhaustive()
    }
}

impl Adapt {
    /// Creates the framework over a pristine machine.
    pub fn new(machine: Machine) -> Self {
        Adapt::with_backend(Arc::new(machine))
    }

    /// Creates the framework over any backend (faulty, resilient, ...).
    pub fn with_backend(backend: Arc<dyn Backend>) -> Self {
        let device = backend.device_snapshot();
        Adapt { backend, device }
    }

    /// The backend programs execute on.
    pub fn backend(&self) -> &dyn Backend {
        self.backend.as_ref()
    }

    /// The compile-time device snapshot.
    pub fn device(&self) -> &Device {
        &self.device
    }

    /// Exact noise-free output distribution of a logical program.
    ///
    /// # Errors
    ///
    /// Fails when the program's active set exceeds the dense simulator.
    pub fn ideal_output(&self, program: &Circuit) -> Result<BTreeMap<u64, f64>, AdaptError> {
        let (compact, _) = program.compacted();
        Ok(statevec::ideal_distribution(&compact)?)
    }

    /// Transpiles a program for this backend's device snapshot.
    pub fn compile(&self, program: &Circuit, cfg: &AdaptConfig) -> TranspiledCircuit {
        transpile(program, &self.device, &cfg.transpile)
    }

    /// Runs the decoy-driven localized search and returns the chosen mask
    /// (steps ①–③ of Fig. 7).
    ///
    /// # Errors
    ///
    /// Propagates decoy-construction and execution failures.
    pub fn choose_mask(
        &self,
        compiled: &TranspiledCircuit,
        num_program_qubits: usize,
        cfg: &AdaptConfig,
    ) -> Result<SearchResult, AdaptError> {
        let decoy = decoy::make_decoy(&compiled.timed, cfg.decoy_kind)?;
        self.choose_mask_with_decoy(compiled, &decoy, num_program_qubits, cfg)
    }

    /// [`Self::choose_mask`] with a caller-supplied decoy.
    ///
    /// Decoy construction is deterministic per compiled program, so a
    /// caching layer that already holds the decoy (a warm service path
    /// re-searching after an epoch invalidation, say) can skip rebuilding
    /// it and still get bit-identical results.
    ///
    /// # Errors
    ///
    /// Propagates execution failures.
    pub fn choose_mask_with_decoy(
        &self,
        compiled: &TranspiledCircuit,
        decoy: &decoy::Decoy,
        num_program_qubits: usize,
        cfg: &AdaptConfig,
    ) -> Result<SearchResult, AdaptError> {
        self.choose_mask_with_decoy_deadline(
            compiled,
            decoy,
            num_program_qubits,
            cfg,
            Deadline::none(),
        )
    }

    /// [`Self::choose_mask_with_decoy`] under a request [`Deadline`].
    ///
    /// The deadline is checked between neighborhoods, between decoy
    /// batches and before the referee step. When it expires (or the
    /// request is cancelled) the search stops early and returns its
    /// conservative partial result — completed neighborhoods keep their
    /// OR-merged bits, unvisited qubits fall back to all-DD — with
    /// [`SearchResult::partial`] set. A partial result never has the
    /// referee's mask substitution applied: the conservative committed
    /// mask stands.
    ///
    /// # Errors
    ///
    /// Propagates execution failures; an interruption before *any*
    /// evaluation completes surfaces as the typed
    /// [`ExecError::DeadlineExceeded`]/[`ExecError::Cancelled`].
    pub fn choose_mask_with_decoy_deadline(
        &self,
        compiled: &TranspiledCircuit,
        decoy: &decoy::Decoy,
        num_program_qubits: usize,
        cfg: &AdaptConfig,
        deadline: Deadline,
    ) -> Result<SearchResult, AdaptError> {
        let ctx = search::SearchContext::new(
            self.backend.as_ref(),
            self.device.clone(),
            decoy,
            &compiled.initial_layout,
            cfg.dd,
            cfg.search_exec,
            num_program_qubits,
        )
        .with_deadline(deadline.clone());
        // Order program qubits most-idle-first (on their physical wires).
        let gst = GateSequenceTable::build(&compiled.timed);
        let mut order: Vec<u32> = (0..num_program_qubits as u32).collect();
        order.sort_by(|&a, &b| {
            let ia = gst.total_idle_ns(compiled.initial_layout.phys_of(a));
            let ib = gst.total_idle_ns(compiled.initial_layout.phys_of(b));
            ib.partial_cmp(&ia).expect("idle times are finite")
        });
        let mut result = search::localized_search(&ctx, &order, cfg.neighborhood, cfg.top2_merge)?;
        // Referee step: localized commitment can lock in a bad early
        // decision (it evaluates each neighborhood with later qubits
        // unprotected). Score the committed mask against the two global
        // extremes on the decoy — one batch of three runs on top of the
        // ≤ 4·N search budget — and keep the best. An extreme whose run
        // is unavailable simply drops out of the contest; if even the
        // committed mask cannot be re-scored, it stands as selected.
        // Skipped entirely on an interrupted search (or a deadline that
        // expired right after it): the referee is an optimization, and
        // the conservative committed mask must stand.
        if result.partial || deadline.check().is_err() {
            result.partial = true;
            return Ok(result);
        }
        let mut best: Option<MaskScore> = None;
        for outcome in ctx.score_batch(&[
            result.best,
            DdMask::all(num_program_qubits),
            DdMask::none(num_program_qubits),
        ]) {
            match outcome {
                Ok(score) => {
                    result.evaluations.push(score);
                    if best.is_none_or(|b| score.fidelity > b.fidelity) {
                        best = Some(score);
                    }
                }
                // Interrupted mid-referee: keep the search's mask.
                Err(e) if e.is_interruption() => {
                    result.partial = true;
                    best = None;
                    break;
                }
                Err(e) if search::is_availability(&e) => result.unavailable_runs += 1,
                Err(e) => return Err(e.into()),
            }
        }
        if let Some(best) = best {
            result.best = best.mask;
        }
        Ok(result)
    }

    /// Inserts `mask`'s DD into a compiled program and executes it,
    /// scoring fidelity against `ideal`.
    ///
    /// # Errors
    ///
    /// Propagates execution failures.
    pub fn run_with_mask(
        &self,
        compiled: &TranspiledCircuit,
        ideal: &BTreeMap<u64, f64>,
        mask: DdMask,
        cfg: &AdaptConfig,
    ) -> Result<(Counts, f64, usize), AdaptError> {
        let wires = dd::mask_to_wires(mask, &compiled.initial_layout);
        let inserted = dd::insert_dd(&compiled.timed, &self.device, &wires, &cfg.dd);
        let batch = self
            .backend
            .execute_timed(&inserted.timed, &cfg.final_exec)?;
        let fidelity = metrics::fidelity(ideal, &batch.counts);
        Ok((batch.counts, fidelity, inserted.pulse_count))
    }

    /// Compiles and executes a program under one policy (§5.6), returning
    /// the applied mask, output counts and fidelity.
    ///
    /// # Errors
    ///
    /// Propagates compilation/decoy/execution failures. Returns
    /// [`SearchError::TooLarge`] (wrapped in [`AdaptError::Search`]) when
    /// `Policy::RuntimeBest` is requested for programs larger than
    /// [`RUNTIME_BEST_MAX_QUBITS`] qubits (the oracle sweep is
    /// exponential).
    pub fn run_policy(
        &self,
        program: &Circuit,
        policy: Policy,
        cfg: &AdaptConfig,
    ) -> Result<PolicyRun, AdaptError> {
        let n = program.num_qubits();
        let compiled = self.compile(program, cfg);
        let ideal = self.ideal_output(program)?;
        let (mask, search_runs, degraded) = match policy {
            Policy::NoDd => (DdMask::none(n), 0, Vec::new()),
            Policy::AllDd => (DdMask::all(n), 0, Vec::new()),
            Policy::Adapt => {
                let result = self.choose_mask(&compiled, n, cfg)?;
                let runs = result.decoy_runs();
                (result.best, runs, result.degraded)
            }
            Policy::RuntimeBest => {
                if n > RUNTIME_BEST_MAX_QUBITS {
                    return Err(SearchError::TooLarge {
                        qubits: n,
                        limit: RUNTIME_BEST_MAX_QUBITS,
                    }
                    .into());
                }
                let mut best: Option<(DdMask, f64)> = None;
                let mut runs = 0;
                let mut last_unavailable = None;
                for mask in DdMask::enumerate_all(n) {
                    match self.run_with_mask(
                        &compiled,
                        &ideal,
                        mask,
                        &AdaptConfig {
                            final_exec: cfg.search_exec,
                            ..*cfg
                        },
                    ) {
                        Ok((_, fidelity, _)) => {
                            runs += 1;
                            if best.is_none_or(|b| fidelity > b.1) {
                                best = Some((mask, fidelity));
                            }
                        }
                        // An unavailable mask drops out of the oracle
                        // sweep; the rest still compete.
                        Err(AdaptError::Exec(e)) if search::is_availability(&e) => {
                            last_unavailable = Some(e);
                        }
                        Err(e) => return Err(e),
                    }
                }
                match best {
                    Some((mask, _)) => (mask, runs, Vec::new()),
                    None => {
                        return Err(AdaptError::Exec(last_unavailable.unwrap_or(
                            ExecError::JobFailed {
                                job: 0,
                                reason: "no masks to sweep".to_string(),
                            },
                        )))
                    }
                }
            }
        };
        let (counts, fidelity, pulse_count) = self.run_with_mask(&compiled, &ideal, mask, cfg)?;
        Ok(PolicyRun {
            policy,
            mask,
            counts,
            fidelity,
            pulse_count,
            search_runs,
            degraded,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use device::Device;

    fn small_cfg() -> AdaptConfig {
        AdaptConfig {
            search_exec: ExecutionConfig {
                shots: 400,
                trajectories: 16,
                seed: 3,
                threads: 1,
            },
            final_exec: ExecutionConfig {
                shots: 800,
                trajectories: 24,
                seed: 4,
                threads: 1,
            },
            ..Default::default()
        }
    }

    fn program() -> Circuit {
        let mut c = Circuit::new(3);
        c.h(0)
            .t(0)
            .cx(0, 1)
            .t(1)
            .cx(1, 2)
            .t(2)
            .cx(0, 1)
            .measure_all();
        c
    }

    #[test]
    fn policies_produce_expected_masks() {
        let adapt = Adapt::new(Machine::new(Device::ibmq_guadalupe(17)));
        let cfg = small_cfg();
        let c = program();
        let no_dd = adapt.run_policy(&c, Policy::NoDd, &cfg).unwrap();
        assert_eq!(no_dd.mask, DdMask::none(3));
        assert_eq!(no_dd.pulse_count, 0);
        assert_eq!(no_dd.search_runs, 0);
        let all_dd = adapt.run_policy(&c, Policy::AllDd, &cfg).unwrap();
        assert_eq!(all_dd.mask, DdMask::all(3));
        let ad = adapt.run_policy(&c, Policy::Adapt, &cfg).unwrap();
        assert!(ad.search_runs > 0 && ad.search_runs <= 4 * 3);
    }

    #[test]
    fn fidelities_are_probabilities() {
        let adapt = Adapt::new(Machine::new(Device::ibmq_guadalupe(17)));
        let cfg = small_cfg();
        let c = program();
        for policy in [Policy::NoDd, Policy::AllDd, Policy::Adapt] {
            let run = adapt.run_policy(&c, policy, &cfg).unwrap();
            assert!(
                (0.0..=1.0).contains(&run.fidelity),
                "{policy}: fidelity {}",
                run.fidelity
            );
            assert_eq!(run.counts.total(), cfg.final_exec.shots);
        }
    }

    #[test]
    fn runtime_best_sweeps_the_mask_space() {
        let adapt = Adapt::new(Machine::new(Device::ibmq_london(29)));
        let mut cfg = small_cfg();
        cfg.search_exec.shots = 300;
        cfg.search_exec.trajectories = 12;
        let mut c = Circuit::new(2);
        c.h(0).t(0).cx(0, 1).cx(0, 1).cx(0, 1).measure_all();
        let rb = adapt.run_policy(&c, Policy::RuntimeBest, &cfg).unwrap();
        assert_eq!(rb.search_runs, 4); // 2^2 masks swept
    }

    #[test]
    fn deterministic_end_to_end() {
        let adapt = Adapt::new(Machine::new(Device::ibmq_guadalupe(17)));
        let cfg = small_cfg();
        let c = program();
        let a = adapt.run_policy(&c, Policy::Adapt, &cfg).unwrap();
        let b = adapt.run_policy(&c, Policy::Adapt, &cfg).unwrap();
        assert_eq!(a.mask, b.mask);
        assert_eq!(a.fidelity, b.fidelity);
    }

    #[test]
    fn ideal_output_matches_statevec_on_logical_circuit() {
        let adapt = Adapt::new(Machine::new(Device::ibmq_guadalupe(17)));
        let c = program();
        let ideal = adapt.ideal_output(&c).unwrap();
        let direct = statevec::ideal_distribution(&c).unwrap();
        assert_eq!(ideal.len(), direct.len());
        for (k, v) in &direct {
            assert!((v - ideal[k]).abs() < 1e-12);
        }
    }
}
