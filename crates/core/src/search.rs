//! DD-mask search (§4.3 of the paper).
//!
//! The mask space is `2^N` for an `N`-qubit program. ADAPT avoids the
//! exponential sweep with a **localized search**: qubits are processed in
//! neighborhoods of 4, each neighborhood's 16 combinations are evaluated
//! exhaustively on the decoy circuit, and the top-2 masks are merged
//! bitwise-OR (the "conservative estimate") before moving on — at most
//! `4·N` decoy executions overall, linear in qubits.
//!
//! Both searches score a candidate mask by inserting the DD sequence into
//! the *decoy* schedule, executing it on the noisy machine, and measuring
//! fidelity against the decoy's known ideal output. All candidates share
//! one execution seed (common random numbers), so scores differ by mask
//! effect rather than by sampling luck.
//!
//! # Execution-plan pipeline
//!
//! Scoring is built on three layers of reuse so the hot loop pays only
//! per-mask marginal cost:
//!
//! 1. the decoy's idle-window analysis ([`crate::dd::IdleAnalysis`]) is
//!    computed once per [`SearchContext`] and shared by every mask;
//! 2. each neighborhood's masks are submitted as **one batch** through
//!    [`Backend::execute_batch`], which pristine machines execute with
//!    scoped worker threads;
//! 3. the machine's plan cache recognizes repeated circuit structures,
//!    so recompilation is skipped across retries and repeated searches.
//!
//! Batching is bit-identical to serial scoring by the
//! [`Backend::execute_batch`] determinism contract.
//!
//! On top of the batching, the machine's simulator-routing layer gives
//! the search its biggest constant factor: a fully Clifford decoy
//! ([`Decoy::is_clifford`]) stays Clifford after DD-mask insertion (the
//! inserted pulses are X/Y), so every candidate-mask execution routes to
//! the CHP stabilizer engine — polynomial per trajectory instead of
//! `O(2^n)`. Seeded decoys keep their surviving non-Clifford phases and
//! score on the dense state-vector engine instead; the search logic is
//! identical either way, only throughput differs.

use crate::dd::{
    analyze_idle_windows, insert_dd_prepared, mask_to_wires, DdConfig, DdMask, IdleAnalysis,
};
use crate::decoy::Decoy;
use device::Device;
use machine::{Backend, Deadline, ExecError, ExecutionConfig, JobSpec};
use std::sync::OnceLock;
use transpiler::Layout;

/// Pre-resolved handles into the global metrics registry
/// (`adapt_search_<name>`). Observational only: the seeded search path
/// never reads these back.
struct SearchMetrics {
    searches: adapt_obs::Counter,
    decoy_runs_scored: adapt_obs::Counter,
    decoy_runs_unavailable: adapt_obs::Counter,
    degraded_groups: adapt_obs::Counter,
    /// Searches stopped early by deadline expiry or cancellation.
    searches_interrupted: adapt_obs::Counter,
    neighborhood_us: adapt_obs::Histogram,
}

fn search_metrics() -> &'static SearchMetrics {
    static M: OnceLock<SearchMetrics> = OnceLock::new();
    M.get_or_init(|| {
        let r = adapt_obs::global();
        SearchMetrics {
            searches: r.counter("adapt_search_searches_total"),
            decoy_runs_scored: r.counter("adapt_search_decoy_runs_scored_total"),
            decoy_runs_unavailable: r.counter("adapt_search_decoy_runs_unavailable_total"),
            degraded_groups: r.counter("adapt_search_degraded_groups_total"),
            searches_interrupted: r.counter("adapt_search_interrupted_total"),
            neighborhood_us: r.histogram("adapt_search_neighborhood_us"),
        }
    })
}

/// One scored mask.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MaskScore {
    /// The candidate mask.
    pub mask: DdMask,
    /// Decoy fidelity achieved with it.
    pub fidelity: f64,
}

/// A neighborhood whose decoy evaluations could not complete within the
/// backend's availability (transient failures that outlasted every
/// retry). The search degrades gracefully: such a group falls back to
/// the conservative all-DD assignment instead of aborting the run.
#[derive(Debug, Clone, PartialEq)]
pub struct DegradedGroup {
    /// The program qubits of the unavailable neighborhood.
    pub qubits: Vec<u32>,
    /// The backend error that degraded the group (the first unavailable
    /// run, when several failed).
    pub reason: String,
}

impl std::fmt::Display for DegradedGroup {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "neighborhood {:?} fell back to all-DD: {}",
            self.qubits, self.reason
        )
    }
}

/// Search output.
#[derive(Debug, Clone)]
pub struct SearchResult {
    /// The selected mask.
    pub best: DdMask,
    /// Every evaluated mask with its decoy fidelity, in evaluation order.
    pub evaluations: Vec<MaskScore>,
    /// Neighborhoods that fell back to all-DD because the backend was
    /// unavailable for their decoy runs (empty on a healthy backend).
    pub degraded: Vec<DegradedGroup>,
    /// Decoy evaluations abandoned for backend availability (each one
    /// consumed retry budget but produced no score).
    pub unavailable_runs: usize,
    /// The search was interrupted (deadline expired or cancelled) before
    /// every neighborhood was evaluated. The mask is still valid and
    /// conservative: bits committed by completed neighborhoods are kept
    /// (their bitwise-OR merge), every unvisited qubit falls back to
    /// all-DD, and the unvisited groups are listed in
    /// [`SearchResult::degraded`].
    pub partial: bool,
}

impl SearchResult {
    /// Number of decoy executions the search *attempted*: scored runs
    /// plus runs abandoned for backend availability. The paper's
    /// "≤ 4·N decoy executions" budget (§4.3) is about work spent, and
    /// an unavailable run spends its execution (and retry) budget even
    /// though it produces no score — so it counts.
    pub fn decoy_runs(&self) -> usize {
        self.evaluations.len() + self.unavailable_runs
    }

    /// Whether any neighborhood degraded to its all-DD fallback.
    pub fn is_degraded(&self) -> bool {
        !self.degraded.is_empty()
    }

    /// The evaluations sorted best-first.
    pub fn ranked(&self) -> Vec<MaskScore> {
        let mut v = self.evaluations.clone();
        v.sort_by(|a, b| {
            b.fidelity
                .partial_cmp(&a.fidelity)
                .expect("fidelities are finite")
        });
        v
    }
}

/// Largest program (in qubits) [`exhaustive_search`] will sweep: the
/// `2^N` enumeration would not terminate in reasonable time beyond this.
pub const EXHAUSTIVE_MAX_QUBITS: usize = 20;

/// Errors from a mask search.
///
/// Splits request-shaped failures (the sweep is infeasible for this many
/// qubits) from backend failures, so long-running callers — worker pools,
/// services — can reject an oversized request instead of crashing.
#[derive(Debug, Clone, PartialEq)]
pub enum SearchError {
    /// The requested sweep is infeasible for this many program qubits.
    TooLarge {
        /// Program qubits in the request.
        qubits: usize,
        /// Largest supported program for this sweep.
        limit: usize,
    },
    /// Backend execution failed.
    Exec(ExecError),
}

impl std::fmt::Display for SearchError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SearchError::TooLarge { qubits, limit } => write!(
                f,
                "mask sweep over {qubits} program qubits exceeds the {limit}-qubit limit"
            ),
            SearchError::Exec(e) => write!(f, "search execution failed: {e}"),
        }
    }
}

impl std::error::Error for SearchError {}

impl From<ExecError> for SearchError {
    fn from(e: ExecError) -> Self {
        SearchError::Exec(e)
    }
}

/// Whether an execution error means "the backend is (currently)
/// unavailable" as opposed to "this request can never work". Transient
/// errors and exhausted retry budgets degrade the search; permanent
/// errors abort it.
pub(crate) fn is_availability(e: &ExecError) -> bool {
    e.is_transient() || matches!(e, ExecError::RetriesExhausted { .. })
}

/// Everything needed to score a mask on the decoy.
///
/// Construct with [`SearchContext::new`]. The context owns the
/// once-per-decoy idle-window analysis: the first score computes it,
/// every later mask (serial or batched) reuses it.
pub struct SearchContext<'a> {
    backend: &'a dyn Backend,
    device: Device,
    decoy: &'a Decoy,
    layout: &'a Layout,
    dd: DdConfig,
    exec: ExecutionConfig,
    num_program_qubits: usize,
    /// The request deadline searches through this context check at their
    /// cancellation points. Defaults to [`Deadline::none`].
    deadline: Deadline,
    /// Lazily-built idle-window analysis of the decoy schedule, shared
    /// by every mask scored through this context.
    idle: OnceLock<IdleAnalysis>,
}

impl std::fmt::Debug for SearchContext<'_> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SearchContext")
            .field("dd", &self.dd)
            .field("exec", &self.exec)
            .field("num_program_qubits", &self.num_program_qubits)
            .finish_non_exhaustive()
    }
}

impl<'a> SearchContext<'a> {
    /// Binds a search to a backend, decoy and execution budget.
    ///
    /// `device` is the view used for DD insertion timing — deliberately
    /// the *compile-time* calibration under staleness, as on real
    /// hardware. `layout` maps mask bits (program qubits) to physical
    /// wires; `num_program_qubits` is the mask width.
    pub fn new(
        backend: &'a dyn Backend,
        device: Device,
        decoy: &'a Decoy,
        layout: &'a Layout,
        dd: DdConfig,
        exec: ExecutionConfig,
        num_program_qubits: usize,
    ) -> Self {
        SearchContext {
            backend,
            device,
            decoy,
            layout,
            dd,
            exec,
            num_program_qubits,
            deadline: Deadline::none(),
            idle: OnceLock::new(),
        }
    }

    /// Binds a request deadline: [`localized_search`] checks it between
    /// neighborhoods, [`exhaustive_search`] between batches, and both
    /// stop early (returning a conservative partial result) when it
    /// expires or is cancelled.
    pub fn with_deadline(mut self, deadline: Deadline) -> Self {
        self.deadline = deadline;
        self
    }

    /// The bound deadline ([`Deadline::none`] unless set).
    pub fn deadline(&self) -> &Deadline {
        &self.deadline
    }

    /// The backend decoy runs execute on.
    pub fn backend(&self) -> &dyn Backend {
        self.backend
    }

    /// The device view used for DD insertion timing.
    pub fn device(&self) -> &Device {
        &self.device
    }

    /// The decoy circuit being scored against.
    pub fn decoy(&self) -> &Decoy {
        self.decoy
    }

    /// The program's initial layout.
    pub fn layout(&self) -> &Layout {
        self.layout
    }

    /// DD protocol/parameters being inserted.
    pub fn dd(&self) -> &DdConfig {
        &self.dd
    }

    /// Execution budget per decoy run.
    pub fn exec(&self) -> &ExecutionConfig {
        &self.exec
    }

    /// Number of program qubits (mask width).
    pub fn num_program_qubits(&self) -> usize {
        self.num_program_qubits
    }

    /// The decoy's idle-window analysis, built on first use.
    fn analysis(&self) -> &IdleAnalysis {
        self.idle
            .get_or_init(|| analyze_idle_windows(&self.decoy.timed, &self.device, &self.dd))
    }

    /// Builds the decoy schedule with `mask`'s DD pulses spliced in.
    fn prepare(&self, mask: DdMask) -> transpiler::TimedCircuit {
        let wires = mask_to_wires(mask, self.layout);
        insert_dd_prepared(&self.decoy.timed, self.analysis(), &wires).timed
    }

    /// Scores one mask: decoy fidelity under that DD assignment. Partial
    /// batches are scored as delivered — their counts are weighted by
    /// the shots that actually arrived.
    ///
    /// # Errors
    ///
    /// Propagates backend execution failures.
    pub fn score(&self, mask: DdMask) -> Result<MaskScore, ExecError> {
        let timed = self.prepare(mask);
        let batch = self.backend.execute_timed(&timed, &self.exec)?;
        let fidelity = crate::metrics::fidelity(&self.decoy.ideal, &batch.counts);
        Ok(MaskScore { mask, fidelity })
    }

    /// Scores a slice of masks as one backend batch, returning one
    /// result per mask in input order.
    ///
    /// Every job carries the context's execution config (common random
    /// numbers across candidates). By the [`Backend::execute_batch`]
    /// determinism contract the results are bit-identical to calling
    /// [`SearchContext::score`] on each mask in order.
    pub fn score_batch(&self, masks: &[DdMask]) -> Vec<Result<MaskScore, ExecError>> {
        let prepared: Vec<transpiler::TimedCircuit> =
            masks.iter().map(|&m| self.prepare(m)).collect();
        let jobs: Vec<JobSpec<'_>> = prepared
            .iter()
            .map(|timed| JobSpec {
                timed,
                config: self.exec,
            })
            .collect();
        self.backend
            .execute_batch(&jobs)
            .into_iter()
            .zip(masks)
            .map(|(r, &mask)| {
                r.map(|batch| MaskScore {
                    mask,
                    fidelity: crate::metrics::fidelity(&self.decoy.ideal, &batch.counts),
                })
            })
            .collect()
    }
}

/// How many masks to submit per backend batch in the exhaustive sweep —
/// bounds peak memory (each in-flight mask holds a pulse-padded copy of
/// the decoy schedule) while keeping workers saturated.
const EXHAUSTIVE_BATCH: usize = 64;

/// Exhaustively scores all `2^N` masks (the Runtime-Best oracle uses the
/// same sweep on the real circuit). Masks are submitted in batches of
/// [`EXHAUSTIVE_BATCH`], which pristine machines score in parallel.
///
/// # Errors
///
/// Returns [`SearchError::TooLarge`] for more than
/// [`EXHAUSTIVE_MAX_QUBITS`] program qubits (the sweep would not
/// terminate in reasonable time), and propagates machine execution
/// failures — a typed rejection either way, so a worker pool serving
/// search requests never crashes on an oversized program.
pub fn exhaustive_search(ctx: &SearchContext<'_>) -> Result<SearchResult, SearchError> {
    let n = ctx.num_program_qubits;
    if n > EXHAUSTIVE_MAX_QUBITS {
        return Err(SearchError::TooLarge {
            qubits: n,
            limit: EXHAUSTIVE_MAX_QUBITS,
        });
    }
    let mtr = search_metrics();
    mtr.searches.inc();
    let mut evaluations = Vec::new();
    let mut unavailable_runs = 0;
    let mut last_unavailable = None;
    let mut interruption: Option<ExecError> = None;
    'sweep: for chunk in DdMask::enumerate_all(n).chunks(EXHAUSTIVE_BATCH) {
        // Cooperative cancellation point between batch submissions.
        if let Err(e) = ctx.deadline.check() {
            interruption = Some(e);
            break;
        }
        for outcome in ctx.score_batch(chunk) {
            match outcome {
                Ok(score) => {
                    mtr.decoy_runs_scored.inc();
                    evaluations.push(score);
                }
                // The deadline tripped mid-batch: keep what scored,
                // stop sweeping.
                Err(e) if e.is_interruption() => {
                    interruption = Some(e);
                    break 'sweep;
                }
                // A mask whose runs outlasted the retry budget drops out
                // of the sweep; the remaining candidates still compete.
                Err(e) if is_availability(&e) => {
                    unavailable_runs += 1;
                    mtr.decoy_runs_unavailable.inc();
                    last_unavailable = Some(e);
                }
                Err(e) => return Err(e.into()),
            }
        }
    }
    if let Some(ref e) = interruption {
        mtr.searches_interrupted.inc();
        // Nothing scored before the interruption: there is no mask to
        // stand behind, so the interruption propagates as an error.
        if evaluations.is_empty() {
            return Err(SearchError::Exec(e.clone()));
        }
    }
    if evaluations.is_empty() {
        return Err(SearchError::Exec(last_unavailable.unwrap_or(
            ExecError::JobFailed {
                job: 0,
                reason: "no masks to evaluate".to_string(),
            },
        )));
    }
    // First-evaluated wins ties, matching the stable ranking used by the
    // localized search.
    let mut best = evaluations[0];
    for e in &evaluations[1..] {
        if e.fidelity > best.fidelity {
            best = *e;
        }
    }
    Ok(SearchResult {
        best: best.mask,
        evaluations,
        degraded: Vec::new(),
        unavailable_runs,
        partial: interruption.is_some(),
    })
}

/// ADAPT's localized search.
///
/// `qubit_order` determines how program qubits are grouped into
/// neighborhoods of `neighborhood` qubits (the paper uses 4); pass the
/// GST's most-idle-first order for the default behaviour. When
/// `top2_merge` is set, each neighborhood commits the bitwise OR of its
/// two best local masks (§4.3), otherwise just the best.
///
/// Each neighborhood's `2^|group|` candidate masks are submitted as one
/// [`Backend::execute_batch`] — pristine machines score them with
/// worker threads; stateful backends (fault injectors, retry wrappers)
/// run them serially in order. Either way the scores are bit-identical
/// to a serial mask-by-mask loop.
///
/// # Errors
///
/// Propagates machine execution failures.
///
/// # Panics
///
/// Panics when `neighborhood` is 0 or exceeds 16 bits.
///
/// # Graceful degradation
///
/// A neighborhood with *any* decoy run lost to backend availability
/// (transient errors that outlast every retry) does not abort the
/// search: its qubits fall back to the conservative all-DD assignment —
/// protection is never *silently* dropped by a flaky backend — and the
/// group is reported in [`SearchResult::degraded`]. Every mask of the
/// group is still attempted (they are submitted together as one batch),
/// so completed evaluations are reported and every lost run is counted
/// in [`SearchResult::unavailable_runs`]. Permanent errors still
/// propagate.
pub fn localized_search(
    ctx: &SearchContext<'_>,
    qubit_order: &[u32],
    neighborhood: usize,
    top2_merge: bool,
) -> Result<SearchResult, ExecError> {
    assert!(neighborhood > 0 && neighborhood <= 16, "neighborhood size");
    let mtr = search_metrics();
    mtr.searches.inc();
    let n = ctx.num_program_qubits;
    let mut committed = DdMask::none(n);
    let mut evaluations = Vec::new();
    let mut degraded = Vec::new();
    let mut unavailable_runs = 0;
    let mut interruption: Option<ExecError> = None;

    let groups: Vec<&[u32]> = qubit_order.chunks(neighborhood).collect();
    let mut visited = 0;
    while visited < groups.len() {
        let group = groups[visited];
        // Cooperative cancellation point: checked before each
        // neighborhood's batch is submitted.
        if let Err(e) = ctx.deadline.check() {
            interruption = Some(e);
            break;
        }
        let _neighborhood_span = mtr.neighborhood_us.time();
        // All 2^|group| settings of this neighborhood's bits, with
        // already-committed bits fixed and future bits at 0, scored as
        // one batch.
        let masks: Vec<DdMask> = (0u64..(1 << group.len()))
            .map(|combo| {
                let mut mask = committed;
                for (bit_pos, &q) in group.iter().enumerate() {
                    mask = mask.with(q as usize, combo >> bit_pos & 1 == 1);
                }
                mask
            })
            .collect();
        let mut local: Vec<MaskScore> = Vec::with_capacity(masks.len());
        let mut group_outage: Option<String> = None;
        for outcome in ctx.score_batch(&masks) {
            match outcome {
                Ok(score) => {
                    mtr.decoy_runs_scored.inc();
                    local.push(score);
                    evaluations.push(score);
                }
                // The deadline tripped mid-batch: this neighborhood is
                // incomplete and falls into the all-DD sweep below.
                Err(e) if e.is_interruption() => {
                    interruption = Some(e);
                    break;
                }
                Err(e) if is_availability(&e) => {
                    unavailable_runs += 1;
                    mtr.decoy_runs_unavailable.inc();
                    if group_outage.is_none() {
                        group_outage = Some(e.to_string());
                    }
                }
                Err(e) => return Err(e),
            }
        }
        if interruption.is_some() {
            break;
        }
        visited += 1;
        if let Some(reason) = group_outage {
            // Degrade this neighborhood: all-DD fallback.
            mtr.degraded_groups.inc();
            for &q in group {
                committed = committed.with(q as usize, true);
            }
            degraded.push(DegradedGroup {
                qubits: group.to_vec(),
                reason,
            });
            continue;
        }
        local.sort_by(|a, b| {
            b.fidelity
                .partial_cmp(&a.fidelity)
                .expect("fidelities are finite")
        });
        let mut winner = local[0].mask;
        if top2_merge && local.len() > 1 {
            winner = winner.union(local[1].mask);
        }
        // Commit only this neighborhood's bits.
        for &q in group {
            committed = committed.with(q as usize, winner.is_set(q as usize));
        }
    }

    // Interrupted: the committed mask (the OR-merge of every completed
    // neighborhood) stands, and every unvisited qubit falls back to the
    // conservative all-DD assignment — a cancelled search never silently
    // drops protection.
    if let Some(ref e) = interruption {
        mtr.searches_interrupted.inc();
        for group in &groups[visited..] {
            mtr.degraded_groups.inc();
            for &q in *group {
                committed = committed.with(q as usize, true);
            }
            degraded.push(DegradedGroup {
                qubits: group.to_vec(),
                reason: format!("search interrupted: {e}"),
            });
        }
    }

    Ok(SearchResult {
        best: committed,
        evaluations,
        degraded,
        unavailable_runs,
        partial: interruption.is_some(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::decoy::{make_decoy, DecoyKind};
    use device::Device;
    use machine::Machine;
    use qcirc::Circuit;
    use transpiler::{transpile, TranspileOptions};

    /// Builds a small program with real idle structure on Guadalupe.
    fn context_fixture() -> (Machine, Decoy, Layout, usize) {
        let dev = Device::ibmq_guadalupe(31);
        let mut c = Circuit::new(3);
        c.h(0).t(1).cx(0, 1).t(0).cx(1, 2).cx(0, 1).measure_all();
        let t = transpile(&c, &dev, &TranspileOptions::default());
        let decoy = make_decoy(&t.timed, DecoyKind::Seeded { max_seed_qubits: 2 }).unwrap();
        let machine = Machine::new(dev);
        (machine, decoy, t.initial_layout, 3)
    }

    fn exec() -> ExecutionConfig {
        ExecutionConfig {
            shots: 600,
            trajectories: 24,
            seed: 5,
            threads: 1,
        }
    }

    fn ctx_over<'a>(
        backend: &'a dyn Backend,
        device: Device,
        decoy: &'a Decoy,
        layout: &'a Layout,
        n: usize,
    ) -> SearchContext<'a> {
        SearchContext::new(
            backend,
            device,
            decoy,
            layout,
            DdConfig::default(),
            exec(),
            n,
        )
    }

    #[test]
    fn exhaustive_covers_all_masks_and_picks_argmax() {
        let (machine, decoy, layout, n) = context_fixture();
        let ctx = ctx_over(&machine, machine.device().clone(), &decoy, &layout, n);
        let r = exhaustive_search(&ctx).unwrap();
        assert_eq!(r.decoy_runs(), 8);
        let max_fid = r
            .evaluations
            .iter()
            .map(|e| e.fidelity)
            .fold(f64::MIN, f64::max);
        let best_fid = r
            .evaluations
            .iter()
            .find(|e| e.mask == r.best)
            .expect("best was evaluated")
            .fidelity;
        assert_eq!(best_fid, max_fid);
    }

    #[test]
    fn exhaustive_rejects_oversized_programs_with_typed_error() {
        let (machine, decoy, layout, _) = context_fixture();
        let ctx = ctx_over(&machine, machine.device().clone(), &decoy, &layout, 21);
        let err = exhaustive_search(&ctx).unwrap_err();
        assert_eq!(
            err,
            SearchError::TooLarge {
                qubits: 21,
                limit: EXHAUSTIVE_MAX_QUBITS
            }
        );
        // The guard fires before any decoy execution is attempted.
        assert!(err.to_string().contains("21 program qubits"));
    }

    #[test]
    fn scores_are_deterministic_given_seed() {
        let (machine, decoy, layout, n) = context_fixture();
        let ctx = ctx_over(&machine, machine.device().clone(), &decoy, &layout, n);
        let a = ctx.score(DdMask::all(n)).unwrap();
        let b = ctx.score(DdMask::all(n)).unwrap();
        assert_eq!(a.fidelity, b.fidelity);
    }

    #[test]
    fn score_batch_is_bit_identical_to_serial_scoring() {
        let (machine, decoy, layout, n) = context_fixture();
        let ctx = ctx_over(&machine, machine.device().clone(), &decoy, &layout, n);
        let masks = DdMask::enumerate_all(n);
        let batched = ctx.score_batch(&masks);
        for (outcome, &mask) in batched.iter().zip(&masks) {
            let serial = ctx.score(mask).unwrap();
            let got = outcome.as_ref().unwrap();
            assert_eq!(got.mask, serial.mask);
            assert_eq!(got.fidelity, serial.fidelity, "mask {mask}");
        }
    }

    #[test]
    fn score_batch_parallel_workers_match_serial() {
        // Explicit threads > 1 routes the batch through the machine's
        // scoped-worker pool; scores must not move by a single bit.
        let (machine, decoy, layout, n) = context_fixture();
        let par = SearchContext::new(
            &machine,
            machine.device().clone(),
            &decoy,
            &layout,
            DdConfig::default(),
            ExecutionConfig {
                threads: 4,
                ..exec()
            },
            n,
        );
        let ser = ctx_over(&machine, machine.device().clone(), &decoy, &layout, n);
        let masks = DdMask::enumerate_all(n);
        for (p, s) in par.score_batch(&masks).iter().zip(ser.score_batch(&masks)) {
            assert_eq!(p.as_ref().unwrap().fidelity, s.unwrap().fidelity);
        }
    }

    #[test]
    fn localized_search_is_linear_in_qubits() {
        let (machine, decoy, layout, n) = context_fixture();
        let ctx = ctx_over(&machine, machine.device().clone(), &decoy, &layout, n);
        let order: Vec<u32> = (0..n as u32).collect();
        // Neighborhood 2 over 3 qubits: 4 + 2·... chunks of [2,1] → 4+2=6.
        let r = localized_search(&ctx, &order, 2, true).unwrap();
        assert_eq!(r.decoy_runs(), 6);
        // Neighborhood 4 (single chunk of 3): 8 evaluations ≤ 4·N = 12.
        let r4 = localized_search(&ctx, &order, 4, true).unwrap();
        assert_eq!(r4.decoy_runs(), 8);
        assert!(r4.decoy_runs() <= 4 * n);
    }

    #[test]
    fn localized_with_full_neighborhood_matches_exhaustive_best_score() {
        let (machine, decoy, layout, n) = context_fixture();
        let ctx = ctx_over(&machine, machine.device().clone(), &decoy, &layout, n);
        let order: Vec<u32> = (0..n as u32).collect();
        let ex = exhaustive_search(&ctx).unwrap();
        let loc = localized_search(&ctx, &order, 4, false).unwrap();
        // One neighborhood spanning everything without merge = exhaustive.
        assert_eq!(loc.best, ex.best);
    }

    #[test]
    fn top2_merge_is_superset_of_best() {
        let (machine, decoy, layout, n) = context_fixture();
        let ctx = ctx_over(&machine, machine.device().clone(), &decoy, &layout, n);
        let order: Vec<u32> = (0..n as u32).collect();
        let plain = localized_search(&ctx, &order, 4, false).unwrap();
        let merged = localized_search(&ctx, &order, 4, true).unwrap();
        // The merged mask contains every bit of the locally-best mask.
        assert_eq!(merged.best.bits() & plain.best.bits(), plain.best.bits());
    }

    /// A backend that fails (transiently) on scripted call indices.
    struct ScriptedFailures {
        inner: Machine,
        calls: std::sync::atomic::AtomicU64,
        fail_calls: std::ops::Range<u64>,
        permanent: bool,
    }

    impl machine::Backend for ScriptedFailures {
        fn execute(
            &self,
            circuit: &qcirc::Circuit,
            config: &ExecutionConfig,
        ) -> Result<machine::ShotBatch, ExecError> {
            let timed = transpiler::schedule(
                circuit,
                self.inner.device(),
                transpiler::SchedulePolicy::Alap,
            );
            self.execute_timed(&timed, config)
        }

        fn execute_timed(
            &self,
            timed: &transpiler::TimedCircuit,
            config: &ExecutionConfig,
        ) -> Result<machine::ShotBatch, ExecError> {
            let i = self.calls.fetch_add(1, std::sync::atomic::Ordering::SeqCst);
            if self.fail_calls.contains(&i) {
                if self.permanent {
                    return Err(ExecError::TooManyActiveQubits {
                        active: 99,
                        limit: 25,
                    });
                }
                return Err(ExecError::JobFailed {
                    job: i,
                    reason: "scripted outage".to_string(),
                });
            }
            machine::Backend::execute_timed(&self.inner, timed, config)
        }

        fn device_snapshot(&self) -> Device {
            self.inner.device().clone()
        }
    }

    #[test]
    fn unavailable_neighborhood_degrades_to_all_dd() {
        let (machine, decoy, layout, n) = context_fixture();
        let backend = ScriptedFailures {
            inner: machine.clone(),
            calls: std::sync::atomic::AtomicU64::new(0),
            fail_calls: 0..1, // first decoy run of the first group fails
            permanent: false,
        };
        let ctx = ctx_over(&backend, machine.device().clone(), &decoy, &layout, n);
        let order: Vec<u32> = (0..n as u32).collect();
        let r = localized_search(&ctx, &order, 2, true).unwrap();
        // Group [0, 1] degraded: its bits fall back to all-DD.
        assert!(r.is_degraded());
        assert_eq!(r.degraded.len(), 1);
        assert_eq!(r.degraded[0].qubits, vec![0, 1]);
        assert!(r.best.is_set(0) && r.best.is_set(1));
        assert_eq!(r.unavailable_runs, 1);
        // The whole batch was attempted: the degraded group's other 3
        // masks still scored, plus the second group's ([2]) 2 runs.
        assert_eq!(r.evaluations.len(), 5);
        assert_eq!(r.decoy_runs(), 6);
    }

    #[test]
    fn degraded_search_still_covers_every_qubit() {
        // Even a total outage yields a valid (all-DD) mask, never a panic.
        let (machine, decoy, layout, n) = context_fixture();
        let backend = ScriptedFailures {
            inner: machine.clone(),
            calls: std::sync::atomic::AtomicU64::new(0),
            fail_calls: 0..u64::MAX,
            permanent: false,
        };
        let ctx = ctx_over(&backend, machine.device().clone(), &decoy, &layout, n);
        let order: Vec<u32> = (0..n as u32).collect();
        let r = localized_search(&ctx, &order, 2, true).unwrap();
        assert_eq!(r.degraded.len(), 2);
        for q in 0..n {
            assert!(r.best.is_set(q), "qubit {q} must keep DD protection");
        }
        // Every one of the 4 + 2 attempted runs was lost to availability.
        assert!(r.evaluations.is_empty());
        assert_eq!(r.unavailable_runs, 6);
        assert_eq!(r.decoy_runs(), 6);
    }

    #[test]
    fn permanent_errors_abort_the_search() {
        let (machine, decoy, layout, n) = context_fixture();
        let backend = ScriptedFailures {
            inner: machine.clone(),
            calls: std::sync::atomic::AtomicU64::new(0),
            fail_calls: 0..u64::MAX,
            permanent: true,
        };
        let ctx = ctx_over(&backend, machine.device().clone(), &decoy, &layout, n);
        let order: Vec<u32> = (0..n as u32).collect();
        let err = localized_search(&ctx, &order, 2, true).unwrap_err();
        assert!(matches!(err, ExecError::TooManyActiveQubits { .. }));
    }

    #[test]
    fn exhaustive_skips_unavailable_masks() {
        let (machine, decoy, layout, n) = context_fixture();
        let backend = ScriptedFailures {
            inner: machine.clone(),
            calls: std::sync::atomic::AtomicU64::new(0),
            fail_calls: 2..4, // two of the eight masks unavailable
            permanent: false,
        };
        let ctx = ctx_over(&backend, machine.device().clone(), &decoy, &layout, n);
        let r = exhaustive_search(&ctx).unwrap();
        assert_eq!(r.evaluations.len(), 6);
        assert_eq!(r.unavailable_runs, 2);
        // Attempted = scored + unavailable: the full 2^3 sweep.
        assert_eq!(r.decoy_runs(), 8);
    }

    /// A backend that charges a fixed virtual cost per decoy run against
    /// a shared deadline and refuses to run once it has expired — the
    /// shape a `ResilientExecutor` bound to the same deadline presents.
    struct DeadlineCharging {
        inner: Machine,
        deadline: Deadline,
        charge_ms: f64,
    }

    impl machine::Backend for DeadlineCharging {
        fn execute(
            &self,
            circuit: &qcirc::Circuit,
            config: &ExecutionConfig,
        ) -> Result<machine::ShotBatch, ExecError> {
            let timed = transpiler::schedule(
                circuit,
                self.inner.device(),
                transpiler::SchedulePolicy::Alap,
            );
            self.execute_timed(&timed, config)
        }

        fn execute_timed(
            &self,
            timed: &transpiler::TimedCircuit,
            config: &ExecutionConfig,
        ) -> Result<machine::ShotBatch, ExecError> {
            self.deadline.check()?;
            self.deadline.charge_ms(self.charge_ms);
            machine::Backend::execute_timed(&self.inner, timed, config)
        }

        fn device_snapshot(&self) -> Device {
            self.inner.device().clone()
        }
    }

    fn deadline_ctx<'a>(
        machine: &Machine,
        backend: &'a dyn Backend,
        decoy: &'a Decoy,
        layout: &'a Layout,
        n: usize,
        deadline: &Deadline,
    ) -> SearchContext<'a> {
        ctx_over(backend, machine.device().clone(), decoy, layout, n)
            .with_deadline(deadline.clone())
    }

    #[test]
    fn deadline_between_neighborhoods_keeps_completed_merge() {
        // 10 ms per decoy run against a 35 ms budget: the first group's
        // 4 runs complete (charges hit 40 ms), the second group is never
        // visited and falls back to all-DD.
        let (machine, decoy, layout, n) = context_fixture();
        let deadline = Deadline::virtual_only(35);
        let backend = DeadlineCharging {
            inner: machine.clone(),
            deadline: deadline.clone(),
            charge_ms: 10.0,
        };
        let ctx = deadline_ctx(&machine, &backend, &decoy, &layout, n, &deadline);
        let order: Vec<u32> = (0..n as u32).collect();
        let r = localized_search(&ctx, &order, 2, true).unwrap();
        assert!(r.partial);
        assert_eq!(r.evaluations.len(), 4, "first neighborhood completed");
        assert_eq!(r.degraded.len(), 1);
        assert_eq!(r.degraded[0].qubits, vec![2]);
        assert!(r.degraded[0].reason.contains("interrupted"));
        assert!(r.best.is_set(2), "unvisited qubit keeps DD protection");

        // The completed neighborhood's commitment matches an
        // uninterrupted run of the same group (same seed).
        let clean = ctx_over(&machine, machine.device().clone(), &decoy, &layout, n);
        let full = localized_search(&clean, &order, 2, true).unwrap();
        for q in 0..2 {
            assert_eq!(r.best.is_set(q), full.best.is_set(q));
        }
    }

    #[test]
    fn deadline_mid_batch_degrades_the_open_neighborhood() {
        // 25 ms budget: the check before the first group's 4th run trips
        // at 30 ms charged. Both the open group and the unvisited one
        // fall back to all-DD.
        let (machine, decoy, layout, n) = context_fixture();
        let deadline = Deadline::virtual_only(25);
        let backend = DeadlineCharging {
            inner: machine.clone(),
            deadline: deadline.clone(),
            charge_ms: 10.0,
        };
        let ctx = deadline_ctx(&machine, &backend, &decoy, &layout, n, &deadline);
        let order: Vec<u32> = (0..n as u32).collect();
        let r = localized_search(&ctx, &order, 2, true).unwrap();
        assert!(r.partial);
        assert_eq!(r.evaluations.len(), 3, "three runs scored before expiry");
        assert_eq!(r.degraded.len(), 2);
        for q in 0..n {
            assert!(r.best.is_set(q), "qubit {q} must keep DD protection");
        }
    }

    #[test]
    fn cancelled_search_returns_all_dd_without_executing() {
        let (machine, decoy, layout, n) = context_fixture();
        let deadline = Deadline::none();
        deadline.cancel();
        let ctx = ctx_over(&machine, machine.device().clone(), &decoy, &layout, n)
            .with_deadline(deadline);
        let order: Vec<u32> = (0..n as u32).collect();
        let r = localized_search(&ctx, &order, 2, true).unwrap();
        assert!(r.partial);
        assert!(r.evaluations.is_empty());
        for q in 0..n {
            assert!(r.best.is_set(q));
        }
    }

    #[test]
    fn interrupted_searches_are_deterministic_in_virtual_time() {
        let (machine, decoy, layout, n) = context_fixture();
        let run = || {
            let deadline = Deadline::virtual_only(25);
            let backend = DeadlineCharging {
                inner: machine.clone(),
                deadline: deadline.clone(),
                charge_ms: 10.0,
            };
            let ctx = deadline_ctx(&machine, &backend, &decoy, &layout, n, &deadline);
            let order: Vec<u32> = (0..n as u32).collect();
            localized_search(&ctx, &order, 2, true).unwrap()
        };
        let a = run();
        let b = run();
        assert_eq!(a.best, b.best);
        assert_eq!(a.evaluations, b.evaluations);
        assert_eq!(a.degraded, b.degraded);
        assert_eq!(a.partial, b.partial);
    }

    #[test]
    fn exhaustive_keeps_scored_masks_on_interruption() {
        let (machine, decoy, layout, n) = context_fixture();
        let deadline = Deadline::virtual_only(45);
        let backend = DeadlineCharging {
            inner: machine.clone(),
            deadline: deadline.clone(),
            charge_ms: 10.0,
        };
        let ctx = deadline_ctx(&machine, &backend, &decoy, &layout, n, &deadline);
        let r = exhaustive_search(&ctx).unwrap();
        assert!(r.partial);
        assert_eq!(r.evaluations.len(), 5, "five of eight masks scored");

        // Born-expired: nothing scored, so the interruption propagates.
        let dead = Deadline::virtual_only(0);
        let backend = DeadlineCharging {
            inner: machine.clone(),
            deadline: dead.clone(),
            charge_ms: 10.0,
        };
        let ctx = deadline_ctx(&machine, &backend, &decoy, &layout, n, &dead);
        let err = exhaustive_search(&ctx).unwrap_err();
        assert!(matches!(
            err,
            SearchError::Exec(ExecError::DeadlineExceeded { .. })
        ));
    }

    #[test]
    fn ranked_is_sorted() {
        let (machine, decoy, layout, n) = context_fixture();
        let ctx = ctx_over(&machine, machine.device().clone(), &decoy, &layout, n);
        let r = exhaustive_search(&ctx).unwrap();
        let ranked = r.ranked();
        for w in ranked.windows(2) {
            assert!(w[0].fidelity >= w[1].fidelity);
        }
    }
}
