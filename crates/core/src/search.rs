//! DD-mask search (§4.3 of the paper).
//!
//! The mask space is `2^N` for an `N`-qubit program. ADAPT avoids the
//! exponential sweep with a **localized search**: qubits are processed in
//! neighborhoods of 4, each neighborhood's 16 combinations are evaluated
//! exhaustively on the decoy circuit, and the top-2 masks are merged
//! bitwise-OR (the "conservative estimate") before moving on — at most
//! `4·N` decoy executions overall, linear in qubits.
//!
//! Both searches score a candidate mask by inserting the DD sequence into
//! the *decoy* schedule, executing it on the noisy machine, and measuring
//! fidelity against the decoy's known ideal output. All candidates share
//! one execution seed (common random numbers), so scores differ by mask
//! effect rather than by sampling luck.

use crate::dd::{insert_dd, mask_to_wires, DdConfig, DdMask};
use crate::decoy::Decoy;
use machine::{ExecError, ExecutionConfig, Machine};
use transpiler::Layout;

/// One scored mask.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MaskScore {
    /// The candidate mask.
    pub mask: DdMask,
    /// Decoy fidelity achieved with it.
    pub fidelity: f64,
}

/// Search output.
#[derive(Debug, Clone)]
pub struct SearchResult {
    /// The selected mask.
    pub best: DdMask,
    /// Every evaluated mask with its decoy fidelity, in evaluation order.
    pub evaluations: Vec<MaskScore>,
}

impl SearchResult {
    /// Number of decoy executions the search spent.
    pub fn decoy_runs(&self) -> usize {
        self.evaluations.len()
    }

    /// The evaluations sorted best-first.
    pub fn ranked(&self) -> Vec<MaskScore> {
        let mut v = self.evaluations.clone();
        v.sort_by(|a, b| {
            b.fidelity
                .partial_cmp(&a.fidelity)
                .expect("fidelities are finite")
        });
        v
    }
}

/// Everything needed to score a mask on the decoy.
#[derive(Debug)]
pub struct SearchContext<'a> {
    /// The noisy machine.
    pub machine: &'a Machine,
    /// The decoy circuit (schedule + known ideal output).
    pub decoy: &'a Decoy,
    /// Initial layout of the program (maps mask bits to physical wires).
    pub layout: &'a Layout,
    /// DD protocol/parameters to insert.
    pub dd: DdConfig,
    /// Execution budget per decoy run.
    pub exec: ExecutionConfig,
    /// Number of program qubits (mask width).
    pub num_program_qubits: usize,
}

impl SearchContext<'_> {
    /// Scores one mask: decoy fidelity under that DD assignment.
    ///
    /// # Errors
    ///
    /// Propagates machine execution failures.
    pub fn score(&self, mask: DdMask) -> Result<MaskScore, ExecError> {
        let wires = mask_to_wires(mask, self.layout);
        let inserted = insert_dd(&self.decoy.timed, self.machine.device(), &wires, &self.dd);
        let counts = self.machine.execute_timed(&inserted.timed, &self.exec)?;
        let fidelity = crate::metrics::fidelity(&self.decoy.ideal, &counts);
        Ok(MaskScore { mask, fidelity })
    }
}

/// Exhaustively scores all `2^N` masks (the Runtime-Best oracle uses the
/// same sweep on the real circuit).
///
/// # Errors
///
/// Propagates machine execution failures.
///
/// # Panics
///
/// Panics for more than 20 program qubits (the sweep would not terminate
/// in reasonable time).
pub fn exhaustive_search(ctx: &SearchContext<'_>) -> Result<SearchResult, ExecError> {
    let mut evaluations = Vec::new();
    for mask in DdMask::enumerate_all(ctx.num_program_qubits) {
        evaluations.push(ctx.score(mask)?);
    }
    // First-evaluated wins ties, matching the stable ranking used by the
    // localized search.
    let mut best = evaluations[0];
    for e in &evaluations[1..] {
        if e.fidelity > best.fidelity {
            best = *e;
        }
    }
    Ok(SearchResult {
        best: best.mask,
        evaluations,
    })
}

/// ADAPT's localized search.
///
/// `qubit_order` determines how program qubits are grouped into
/// neighborhoods of `neighborhood` qubits (the paper uses 4); pass the
/// GST's most-idle-first order for the default behaviour. When
/// `top2_merge` is set, each neighborhood commits the bitwise OR of its
/// two best local masks (§4.3), otherwise just the best.
///
/// # Errors
///
/// Propagates machine execution failures.
///
/// # Panics
///
/// Panics when `neighborhood` is 0 or exceeds 16 bits.
pub fn localized_search(
    ctx: &SearchContext<'_>,
    qubit_order: &[u32],
    neighborhood: usize,
    top2_merge: bool,
) -> Result<SearchResult, ExecError> {
    assert!(neighborhood > 0 && neighborhood <= 16, "neighborhood size");
    let n = ctx.num_program_qubits;
    let mut committed = DdMask::none(n);
    let mut evaluations = Vec::new();

    for group in qubit_order.chunks(neighborhood) {
        // Score all 2^|group| settings of this neighborhood's bits, with
        // already-committed bits fixed and future bits at 0.
        let mut local: Vec<MaskScore> = Vec::with_capacity(1 << group.len());
        for combo in 0u64..(1 << group.len()) {
            let mut mask = committed;
            for (bit_pos, &q) in group.iter().enumerate() {
                mask = mask.with(q as usize, combo >> bit_pos & 1 == 1);
            }
            let score = ctx.score(mask)?;
            local.push(score);
            evaluations.push(score);
        }
        local.sort_by(|a, b| {
            b.fidelity
                .partial_cmp(&a.fidelity)
                .expect("fidelities are finite")
        });
        let mut winner = local[0].mask;
        if top2_merge && local.len() > 1 {
            winner = winner.union(local[1].mask);
        }
        // Commit only this neighborhood's bits.
        for &q in group {
            committed = committed.with(q as usize, winner.is_set(q as usize));
        }
    }

    Ok(SearchResult {
        best: committed,
        evaluations,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::decoy::{make_decoy, DecoyKind};
    use device::Device;
    use qcirc::Circuit;
    use transpiler::{transpile, TranspileOptions};

    /// Builds a small program with real idle structure on Guadalupe.
    fn context_fixture() -> (Machine, Decoy, Layout, usize) {
        let dev = Device::ibmq_guadalupe(31);
        let mut c = Circuit::new(3);
        c.h(0).t(1).cx(0, 1).t(0).cx(1, 2).cx(0, 1).measure_all();
        let t = transpile(&c, &dev, &TranspileOptions::default());
        let decoy = make_decoy(&t.timed, DecoyKind::Seeded { max_seed_qubits: 2 }).unwrap();
        let machine = Machine::new(dev);
        (machine, decoy, t.initial_layout, 3)
    }

    fn exec() -> ExecutionConfig {
        ExecutionConfig {
            shots: 600,
            trajectories: 24,
            seed: 5,
            threads: 1,
        }
    }

    #[test]
    fn exhaustive_covers_all_masks_and_picks_argmax() {
        let (machine, decoy, layout, n) = context_fixture();
        let ctx = SearchContext {
            machine: &machine,
            decoy: &decoy,
            layout: &layout,
            dd: DdConfig::default(),
            exec: exec(),
            num_program_qubits: n,
        };
        let r = exhaustive_search(&ctx).unwrap();
        assert_eq!(r.decoy_runs(), 8);
        let max_fid = r
            .evaluations
            .iter()
            .map(|e| e.fidelity)
            .fold(f64::MIN, f64::max);
        let best_fid = r
            .evaluations
            .iter()
            .find(|e| e.mask == r.best)
            .expect("best was evaluated")
            .fidelity;
        assert_eq!(best_fid, max_fid);
    }

    #[test]
    fn scores_are_deterministic_given_seed() {
        let (machine, decoy, layout, n) = context_fixture();
        let ctx = SearchContext {
            machine: &machine,
            decoy: &decoy,
            layout: &layout,
            dd: DdConfig::default(),
            exec: exec(),
            num_program_qubits: n,
        };
        let a = ctx.score(DdMask::all(n)).unwrap();
        let b = ctx.score(DdMask::all(n)).unwrap();
        assert_eq!(a.fidelity, b.fidelity);
    }

    #[test]
    fn localized_search_is_linear_in_qubits() {
        let (machine, decoy, layout, n) = context_fixture();
        let ctx = SearchContext {
            machine: &machine,
            decoy: &decoy,
            layout: &layout,
            dd: DdConfig::default(),
            exec: exec(),
            num_program_qubits: n,
        };
        let order: Vec<u32> = (0..n as u32).collect();
        // Neighborhood 2 over 3 qubits: 4 + 2·... chunks of [2,1] → 4+2=6.
        let r = localized_search(&ctx, &order, 2, true).unwrap();
        assert_eq!(r.decoy_runs(), 6);
        // Neighborhood 4 (single chunk of 3): 8 evaluations ≤ 4·N = 12.
        let r4 = localized_search(&ctx, &order, 4, true).unwrap();
        assert_eq!(r4.decoy_runs(), 8);
        assert!(r4.decoy_runs() <= 4 * n);
    }

    #[test]
    fn localized_with_full_neighborhood_matches_exhaustive_best_score() {
        let (machine, decoy, layout, n) = context_fixture();
        let ctx = SearchContext {
            machine: &machine,
            decoy: &decoy,
            layout: &layout,
            dd: DdConfig::default(),
            exec: exec(),
            num_program_qubits: n,
        };
        let order: Vec<u32> = (0..n as u32).collect();
        let ex = exhaustive_search(&ctx).unwrap();
        let loc = localized_search(&ctx, &order, 4, false).unwrap();
        // One neighborhood spanning everything without merge = exhaustive.
        assert_eq!(loc.best, ex.best);
    }

    #[test]
    fn top2_merge_is_superset_of_best() {
        let (machine, decoy, layout, n) = context_fixture();
        let ctx = SearchContext {
            machine: &machine,
            decoy: &decoy,
            layout: &layout,
            dd: DdConfig::default(),
            exec: exec(),
            num_program_qubits: n,
        };
        let order: Vec<u32> = (0..n as u32).collect();
        let plain = localized_search(&ctx, &order, 4, false).unwrap();
        let merged = localized_search(&ctx, &order, 4, true).unwrap();
        // The merged mask contains every bit of the locally-best mask.
        assert_eq!(
            merged.best.bits() & plain.best.bits(),
            plain.best.bits()
        );
    }

    #[test]
    fn ranked_is_sorted() {
        let (machine, decoy, layout, n) = context_fixture();
        let ctx = SearchContext {
            machine: &machine,
            decoy: &decoy,
            layout: &layout,
            dd: DdConfig::default(),
            exec: exec(),
            num_program_qubits: n,
        };
        let r = exhaustive_search(&ctx).unwrap();
        let ranked = r.ranked();
        for w in ranked.windows(2) {
            assert!(w[0].fidelity >= w[1].fidelity);
        }
    }
}
