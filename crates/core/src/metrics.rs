//! Reliability metrics (§5.4 of the paper).
//!
//! Program fidelity is `1 − TVD(P, Q)` between the ideal output
//! distribution `P` and the measured distribution `Q`. Decoy quality is
//! assessed with Spearman's rank correlation between real-circuit and
//! decoy-circuit fidelities across DD masks (§4.2.2); summaries use the
//! geometric mean (Table 5).

use qcirc::Counts;
use std::collections::BTreeMap;

/// Total Variation Distance between an exact distribution and an empirical
/// histogram (Eq. 2).
///
/// # Examples
///
/// ```
/// use adapt::metrics::{fidelity, tvd};
/// use qcirc::Counts;
/// use std::collections::BTreeMap;
///
/// let ideal: BTreeMap<u64, f64> = [(0b00, 0.5), (0b11, 0.5)].into();
/// let mut counts = Counts::new(2);
/// counts.record_many(0b00, 50);
/// counts.record_many(0b11, 50);
/// assert!(tvd(&ideal, &counts) < 1e-12);
/// assert!((fidelity(&ideal, &counts) - 1.0).abs() < 1e-12);
/// ```
pub fn tvd(ideal: &BTreeMap<u64, f64>, measured: &Counts) -> f64 {
    let mut d = 0.0;
    for (&k, &p) in ideal {
        d += (p - measured.probability(k)).abs();
    }
    for (k, _) in measured.iter() {
        if !ideal.contains_key(&k) {
            d += measured.probability(k);
        }
    }
    d / 2.0
}

/// Program fidelity `1 − TVD` (Eq. 3). 1 means identical distributions.
pub fn fidelity(ideal: &BTreeMap<u64, f64>, measured: &Counts) -> f64 {
    1.0 - tvd(ideal, measured)
}

/// Fidelity of a set of (possibly partial) shot batches against the ideal
/// distribution.
///
/// Resilient pipelines accumulate results across retries: a 2048-shot
/// request may arrive as a 1200-shot truncated batch plus an 848-shot
/// top-up. Merging the histograms before scoring weights each batch by
/// the shots it actually delivered — a batch that delivered 60% of the
/// total shots contributes 60% of the probability mass, not half.
///
/// # Panics
///
/// Panics when `batches` is empty or the batches' bit widths differ.
pub fn weighted_fidelity(ideal: &BTreeMap<u64, f64>, batches: &[machine::ShotBatch]) -> f64 {
    assert!(!batches.is_empty(), "no batches to score");
    let mut merged = Counts::new(batches[0].counts.num_bits());
    for batch in batches {
        merged.merge(&batch.counts);
    }
    fidelity(ideal, &merged)
}

/// TVD between two exact distributions.
pub fn tvd_dist(p: &BTreeMap<u64, f64>, q: &BTreeMap<u64, f64>) -> f64 {
    let mut d = 0.0;
    for (&k, &pv) in p {
        d += (pv - q.get(&k).copied().unwrap_or(0.0)).abs();
    }
    for (&k, &qv) in q {
        if !p.contains_key(&k) {
            d += qv;
        }
    }
    d / 2.0
}

/// Fractional ranks (average rank for ties), 1-based.
fn ranks(xs: &[f64]) -> Vec<f64> {
    let n = xs.len();
    let mut order: Vec<usize> = (0..n).collect();
    order.sort_by(|&a, &b| xs[a].partial_cmp(&xs[b]).expect("finite values"));
    let mut r = vec![0.0; n];
    let mut i = 0;
    while i < n {
        let mut j = i;
        while j + 1 < n && xs[order[j + 1]] == xs[order[i]] {
            j += 1;
        }
        let avg = (i + j) as f64 / 2.0 + 1.0;
        for &k in &order[i..=j] {
            r[k] = avg;
        }
        i = j + 1;
    }
    r
}

/// Spearman's rank correlation coefficient.
///
/// Returns 0 for degenerate inputs (length < 2 or zero variance in either
/// series).
///
/// # Panics
///
/// Panics when the slices have different lengths.
pub fn spearman(xs: &[f64], ys: &[f64]) -> f64 {
    assert_eq!(xs.len(), ys.len(), "series must have equal length");
    if xs.len() < 2 {
        return 0.0;
    }
    let rx = ranks(xs);
    let ry = ranks(ys);
    pearson(&rx, &ry)
}

/// Pearson correlation on raw values (used on ranks by [`spearman`]).
pub fn pearson(xs: &[f64], ys: &[f64]) -> f64 {
    assert_eq!(xs.len(), ys.len(), "series must have equal length");
    let n = xs.len() as f64;
    if xs.len() < 2 {
        return 0.0;
    }
    let mx = xs.iter().sum::<f64>() / n;
    let my = ys.iter().sum::<f64>() / n;
    let mut cov = 0.0;
    let mut vx = 0.0;
    let mut vy = 0.0;
    for (x, y) in xs.iter().zip(ys) {
        cov += (x - mx) * (y - my);
        vx += (x - mx) * (x - mx);
        vy += (y - my) * (y - my);
    }
    if vx <= 0.0 || vy <= 0.0 {
        return 0.0;
    }
    cov / (vx.sqrt() * vy.sqrt())
}

/// Geometric mean of positive values; zero/negative entries are clamped to
/// a small floor so a single catastrophic benchmark cannot zero the
/// summary (matches common practice for relative-fidelity tables).
pub fn geomean(xs: &[f64]) -> f64 {
    if xs.is_empty() {
        return 0.0;
    }
    let log_sum: f64 = xs.iter().map(|&x| x.max(1e-6).ln()).sum();
    (log_sum / xs.len() as f64).exp()
}

/// Shannon entropy (bits) of an exact distribution.
pub fn entropy_bits(dist: &BTreeMap<u64, f64>) -> f64 {
    -dist
        .values()
        .filter(|&&p| p > 0.0)
        .map(|&p| p * p.log2())
        .sum::<f64>()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn dist(pairs: &[(u64, f64)]) -> BTreeMap<u64, f64> {
        pairs.iter().copied().collect()
    }

    #[test]
    fn tvd_identical_and_disjoint() {
        let p = dist(&[(0, 0.5), (3, 0.5)]);
        let mut c = Counts::new(2);
        c.record_many(0, 5);
        c.record_many(3, 5);
        assert!(tvd(&p, &c) < 1e-12);

        let mut d = Counts::new(2);
        d.record_many(1, 10);
        assert!((tvd(&p, &d) - 1.0).abs() < 1e-12);
        assert!(fidelity(&p, &d).abs() < 1e-12);
    }

    #[test]
    fn tvd_partial_overlap() {
        let p = dist(&[(0, 1.0)]);
        let mut c = Counts::new(1);
        c.record_many(0, 75);
        c.record_many(1, 25);
        assert!((tvd(&p, &c) - 0.25).abs() < 1e-12);
    }

    #[test]
    fn tvd_dist_symmetry() {
        let p = dist(&[(0, 0.7), (1, 0.3)]);
        let q = dist(&[(0, 0.4), (2, 0.6)]);
        assert!((tvd_dist(&p, &q) - tvd_dist(&q, &p)).abs() < 1e-12);
        assert!(tvd_dist(&p, &p) < 1e-12);
    }

    #[test]
    fn spearman_perfect_and_inverse() {
        let xs = [1.0, 2.0, 3.0, 4.0];
        let up = [10.0, 20.0, 30.0, 40.0];
        let down = [4.0, 3.0, 2.0, 1.0];
        assert!((spearman(&xs, &up) - 1.0).abs() < 1e-12);
        assert!((spearman(&xs, &down) + 1.0).abs() < 1e-12);
    }

    #[test]
    fn spearman_is_rank_based() {
        // Monotone nonlinear map preserves ρ = 1.
        let xs = [1.0, 2.0, 3.0, 4.0, 5.0];
        let ys: Vec<f64> = xs.iter().map(|x: &f64| x.exp()).collect();
        assert!((spearman(&xs, &ys) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn spearman_handles_ties() {
        let xs = [1.0, 1.0, 2.0, 3.0];
        let ys = [1.0, 1.0, 2.0, 3.0];
        assert!((spearman(&xs, &ys) - 1.0).abs() < 1e-12);
        let zs = [5.0, 5.0, 5.0, 5.0];
        assert_eq!(spearman(&xs, &zs), 0.0);
    }

    #[test]
    fn spearman_near_zero_for_uncorrelated() {
        // Deterministic scrambled series.
        let xs: Vec<f64> = (0..100).map(|i| i as f64).collect();
        let ys: Vec<f64> = (0..100).map(|i| ((i * 7919) % 100) as f64).collect();
        assert!(spearman(&xs, &ys).abs() < 0.25);
    }

    #[test]
    fn geomean_basics() {
        assert!((geomean(&[2.0, 8.0]) - 4.0).abs() < 1e-12);
        assert!((geomean(&[1.0, 1.0, 1.0]) - 1.0).abs() < 1e-12);
        assert_eq!(geomean(&[]), 0.0);
        // Floored, not zeroed.
        assert!(geomean(&[0.0, 4.0]) > 0.0);
    }

    #[test]
    fn entropy_of_point_and_uniform() {
        assert!(entropy_bits(&dist(&[(0, 1.0)])) < 1e-12);
        let u = dist(&[(0, 0.25), (1, 0.25), (2, 0.25), (3, 0.25)]);
        assert!((entropy_bits(&u) - 2.0).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "equal length")]
    fn spearman_length_mismatch_panics() {
        spearman(&[1.0], &[1.0, 2.0]);
    }

    #[test]
    fn weighted_fidelity_weights_by_delivered_shots() {
        use machine::ShotBatch;
        let p = dist(&[(0, 1.0)]);
        // A truncated batch (60 shots, all correct) plus a 40-shot top-up
        // that is only half correct.
        let mut a = Counts::new(1);
        a.record_many(0, 60);
        let mut b = Counts::new(1);
        b.record_many(0, 20);
        b.record_many(1, 20);
        let batches = [ShotBatch::complete(a, 100), ShotBatch::complete(b, 40)];
        // Merged: 80/100 correct → TVD 0.2 → fidelity 0.8. A naive
        // unweighted average of the per-batch fidelities (1.0 and 0.5)
        // would give 0.75.
        let f = weighted_fidelity(&p, &batches);
        assert!((f - 0.8).abs() < 1e-12);
    }

    #[test]
    fn weighted_fidelity_of_single_complete_batch_matches_fidelity() {
        use machine::ShotBatch;
        let p = dist(&[(0, 0.5), (1, 0.5)]);
        let mut c = Counts::new(1);
        c.record_many(0, 30);
        c.record_many(1, 70);
        let direct = fidelity(&p, &c);
        let weighted = weighted_fidelity(&p, &[ShotBatch::complete(c, 100)]);
        assert_eq!(direct, weighted);
    }

    #[test]
    #[should_panic(expected = "no batches")]
    fn weighted_fidelity_rejects_empty() {
        weighted_fidelity(&dist(&[(0, 1.0)]), &[]);
    }
}
