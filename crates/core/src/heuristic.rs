//! Calibration-only DD mask heuristic — the zero-decoy tier-0 answer.
//!
//! ADAPT's decoy search (§4) finds the best mask but costs up to 4·N
//! decoy executions, far too slow for a cold cache miss under a tight
//! serving deadline. Calibration data alone, however, already predicts
//! *where* DD helps: a qubit benefits from decoupling when it idles for
//! a significant fraction of its dephasing time, and DD pulses earn
//! their keep where crosstalk keeps pushing the qubit off resonance.
//! That is the insertion strategy studied by Niu & Todri-Sanial
//! (arXiv:2204.14251): gate each qubit on its `T_idle/T2` ratio and on
//! a crosstalk-density band.
//!
//! [`heuristic_mask`] reproduces that strategy as a deterministic
//! `O(qubits + links)` pass over the compiled schedule and the device
//! calibration — no execution, no randomness, no search:
//!
//! 1. **Idle-ratio gate** — program qubit `p` (on physical wire
//!    `layout.phys_of(p)`) is a DD candidate only when its DD-eligible
//!    idle time (interior + trailing windows, the same windows
//!    [`insert_dd`](crate::dd::insert_dd) would pad) is at least
//!    [`HeuristicConfig::t2_threshold_ratio`] of the wire's `T2`.
//!    Qubits that barely idle, or idle only in leading `|0⟩` windows,
//!    gain nothing from pulses.
//! 2. **Crosstalk-density band** — the candidate survives only when the
//!    mean |crosstalk| across the wire's incident links falls inside
//!    `[crosstalk_min_density, crosstalk_max_density]`. The defaults
//!    leave the band wide open; a deployment can close it to skip
//!    isolated qubits (DD adds pulse error but removes little) or
//!    extremely coupled ones (pulses themselves crosstalk).
//!
//! The result is strictly better than the all-DD fallback a deadline
//! would otherwise force — it never pulses a qubit with no eligible
//! idle window — and is served by the mask service as
//! [`Provenance::Heuristic`](../../adapt_service/enum.Provenance.html)
//! whenever the deadline cannot fit a search.

use crate::gst::GateSequenceTable;
use crate::DdMask;
use device::Device;
use transpiler::TranspiledCircuit;

/// Thresholds of the calibration-only heuristic.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct HeuristicConfig {
    /// Minimum `T_idle/T2` ratio for applying DD to a qubit (0.001 in
    /// the insertion-strategy study: a qubit idling for ≥ 0.1 % of its
    /// dephasing time is worth decoupling).
    pub t2_threshold_ratio: f64,
    /// Lower edge of the admissible crosstalk-density band (mean
    /// |crosstalk| over the wire's incident links).
    pub crosstalk_min_density: f64,
    /// Upper edge of the admissible crosstalk-density band.
    pub crosstalk_max_density: f64,
    /// Idle windows shorter than this (ns) are ignored when summing a
    /// wire's DD-eligible idle time — too short to host even one pulse
    /// pair.
    pub min_idle_window_ns: f64,
}

impl Default for HeuristicConfig {
    fn default() -> Self {
        HeuristicConfig {
            t2_threshold_ratio: 0.001,
            crosstalk_min_density: 0.0,
            crosstalk_max_density: f64::INFINITY,
            min_idle_window_ns: 1.0,
        }
    }
}

impl HeuristicConfig {
    /// Rejects threshold combinations that can never admit a qubit or
    /// are numerically meaningless. Returns the first violation as a
    /// human-readable reason (mirroring `BreakerConfig::validate`).
    ///
    /// # Errors
    ///
    /// A description of the first violation found.
    pub fn validate(&self) -> Result<(), String> {
        if !self.t2_threshold_ratio.is_finite() || self.t2_threshold_ratio < 0.0 {
            return Err(format!(
                "t2_threshold_ratio = {} is invalid: must be finite and >= 0",
                self.t2_threshold_ratio
            ));
        }
        if self.crosstalk_min_density.is_nan() || self.crosstalk_min_density < 0.0 {
            return Err(format!(
                "crosstalk_min_density = {} is invalid: must be >= 0",
                self.crosstalk_min_density
            ));
        }
        if self.crosstalk_max_density.is_nan()
            || self.crosstalk_max_density < self.crosstalk_min_density
        {
            return Err(format!(
                "crosstalk density band [{}, {}] is contradictory: min exceeds max",
                self.crosstalk_min_density, self.crosstalk_max_density
            ));
        }
        if !self.min_idle_window_ns.is_finite() || self.min_idle_window_ns < 0.0 {
            return Err(format!(
                "min_idle_window_ns = {} is invalid: must be finite and >= 0",
                self.min_idle_window_ns
            ));
        }
        Ok(())
    }
}

/// Per-qubit evidence behind one heuristic decision.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct QubitAssessment {
    /// Program qubit index.
    pub program_qubit: u32,
    /// Physical wire hosting it (initial layout).
    pub physical_qubit: u32,
    /// DD-eligible idle time (ns) on the wire.
    pub idle_ns: f64,
    /// `T_idle/T2` ratio the idle-ratio gate compared.
    pub idle_t2_ratio: f64,
    /// Mean |crosstalk| over the wire's incident links.
    pub crosstalk_density: f64,
    /// Whether the qubit made it into the mask.
    pub dd: bool,
}

/// A heuristic mask with its per-qubit evidence.
#[derive(Debug, Clone, PartialEq)]
pub struct HeuristicMask {
    /// The selected program-qubit mask.
    pub mask: DdMask,
    /// One assessment per program qubit, in qubit order.
    pub assessments: Vec<QubitAssessment>,
}

/// Computes the tier-0 mask for `compiled` on `device` (see module
/// docs). Deterministic: the result is a pure function of the compiled
/// schedule and the device calibration, so two runs — or two replicas —
/// always agree bit-for-bit.
pub fn heuristic_mask(
    compiled: &TranspiledCircuit,
    device: &Device,
    num_program_qubits: usize,
    cfg: &HeuristicConfig,
) -> HeuristicMask {
    let gst = GateSequenceTable::build(&compiled.timed);
    let cal = device.calibration();
    let topo = device.topology();
    let mut mask = DdMask::none(num_program_qubits);
    let mut assessments = Vec::with_capacity(num_program_qubits);
    for p in 0..num_program_qubits as u32 {
        let q = compiled.initial_layout.phys_of(p);
        let idle_ns: f64 = gst
            .dd_eligible_windows(q, cfg.min_idle_window_ns)
            .iter()
            .map(|w| w.duration_ns())
            .sum();
        let t2_ns = cal.qubit(q).t2_us * 1_000.0;
        let idle_t2_ratio = if t2_ns > 0.0 { idle_ns / t2_ns } else { 0.0 };
        let incident = cal.crosstalk_on(q);
        let crosstalk_density = if incident.is_empty() {
            0.0
        } else {
            incident.iter().map(|(_, x)| x.abs()).sum::<f64>() / incident.len() as f64
        };
        debug_assert!(q < topo.num_qubits() as u32, "layout maps inside topology");
        let dd = idle_t2_ratio >= cfg.t2_threshold_ratio
            && crosstalk_density >= cfg.crosstalk_min_density
            && crosstalk_density <= cfg.crosstalk_max_density;
        if dd {
            mask = mask.with(p as usize, true);
        }
        assessments.push(QubitAssessment {
            program_qubit: p,
            physical_qubit: q,
            idle_ns,
            idle_t2_ratio,
            crosstalk_density,
            dd,
        });
    }
    HeuristicMask { mask, assessments }
}

#[cfg(test)]
mod tests {
    use super::*;
    use transpiler::{transpile, TranspileOptions};

    fn compiled_on(dev: &Device, c: &qcirc::Circuit) -> TranspiledCircuit {
        transpile(c, dev, &TranspileOptions::default())
    }

    /// A GHZ chain leaves early qubits idling while the entanglement
    /// front moves on — the classic ADAPT victim circuit.
    fn ghz(n: usize) -> qcirc::Circuit {
        let mut c = qcirc::Circuit::new(n);
        c.h(0);
        for q in 0..n as u32 - 1 {
            c.cx(q, q + 1);
        }
        c.measure_all();
        c
    }

    #[test]
    fn idle_heavy_qubits_get_dd_and_busy_ones_do_not() {
        let dev = Device::ibmq_guadalupe(7);
        let c = ghz(6);
        let h = heuristic_mask(&compiled_on(&dev, &c), &dev, 6, &HeuristicConfig::default());
        assert_eq!(h.mask.num_qubits(), 6);
        assert!(
            h.mask.count_ones() >= 1,
            "a GHZ chain idles long enough for the default ratio gate: {:?}",
            h.assessments
        );
        // Evidence rows agree with the mask bit for bit.
        for a in &h.assessments {
            assert_eq!(h.mask.is_set(a.program_qubit as usize), a.dd);
            assert!(a.idle_ns >= 0.0 && a.idle_t2_ratio >= 0.0);
        }
    }

    #[test]
    fn is_deterministic() {
        let dev = Device::ibmq_toronto(3);
        let c = ghz(5);
        let a = heuristic_mask(&compiled_on(&dev, &c), &dev, 5, &HeuristicConfig::default());
        let b = heuristic_mask(&compiled_on(&dev, &c), &dev, 5, &HeuristicConfig::default());
        assert_eq!(a, b);
    }

    #[test]
    fn raising_the_ratio_threshold_shrinks_the_mask_monotonically() {
        let dev = Device::ibmq_rome(11);
        let c = ghz(5);
        let compiled = compiled_on(&dev, &c);
        let mut prev = u32::MAX;
        for ratio in [0.0, 0.0005, 0.001, 0.01, 0.1, 10.0] {
            let cfg = HeuristicConfig {
                t2_threshold_ratio: ratio,
                ..HeuristicConfig::default()
            };
            let h = heuristic_mask(&compiled, &dev, 5, &cfg);
            assert!(
                h.mask.count_ones() <= prev,
                "mask must shrink as the gate tightens"
            );
            prev = h.mask.count_ones();
        }
    }

    #[test]
    fn impossible_crosstalk_band_empties_the_mask() {
        let dev = Device::ibmq_london(5);
        let c = ghz(4);
        let cfg = HeuristicConfig {
            crosstalk_min_density: f64::MAX,
            crosstalk_max_density: f64::INFINITY,
            ..HeuristicConfig::default()
        };
        let h = heuristic_mask(&compiled_on(&dev, &c), &dev, 4, &cfg);
        assert_eq!(h.mask.count_ones(), 0);
    }

    #[test]
    fn validate_rejects_contradictory_bands() {
        assert!(HeuristicConfig::default().validate().is_ok());
        let bad = HeuristicConfig {
            crosstalk_min_density: 0.5,
            crosstalk_max_density: 0.1,
            ..HeuristicConfig::default()
        };
        assert!(bad.validate().unwrap_err().contains("contradictory"));
        let neg = HeuristicConfig {
            t2_threshold_ratio: -1.0,
            ..HeuristicConfig::default()
        };
        assert!(neg.validate().is_err());
    }
}
