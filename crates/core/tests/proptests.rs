//! Property tests for the ADAPT framework layers: masks, DD insertion
//! invariants, decoy schedule preservation, metric laws, and search
//! robustness under fault injection.

use adapt::dd::{insert_dd, DdConfig, DdMask, DdProtocol};
use adapt::decoy::{make_decoy, DecoyKind};
use adapt::metrics;
use adapt::{Adapt, AdaptConfig};
use device::Device;
use machine::{
    ExecutionConfig, FaultProfile, FaultyBackend, Machine, ResilientExecutor, RetryPolicy,
};
use proptest::prelude::*;
use qcirc::{Circuit, OpKind};
use std::sync::Arc;
use transpiler::{transpile, TranspileOptions};

fn arb_mask(n: usize) -> impl Strategy<Value = DdMask> {
    (0u64..(1 << n)).prop_map(move |bits| DdMask::from_bits(bits, n))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn mask_display_parse_roundtrip(m in arb_mask(8)) {
        let s = m.to_string();
        let parsed: DdMask = s.parse().expect("well-formed");
        prop_assert_eq!(parsed, m);
        prop_assert_eq!(s.len(), 8);
    }

    #[test]
    fn mask_union_is_monotone_and_idempotent(a in arb_mask(8), b in arb_mask(8)) {
        let u = a.union(b);
        prop_assert_eq!(u.bits() & a.bits(), a.bits());
        prop_assert_eq!(u.bits() & b.bits(), b.bits());
        prop_assert_eq!(u.union(u), u);
        prop_assert_eq!(a.union(b), b.union(a));
        prop_assert!(u.count_ones() >= a.count_ones().max(b.count_ones()));
    }

    #[test]
    fn mask_with_and_is_set_agree(m in arb_mask(8), i in 0usize..8, on in any::<bool>()) {
        let m2 = m.with(i, on);
        prop_assert_eq!(m2.is_set(i), on);
        for j in 0..8 {
            if j != i {
                prop_assert_eq!(m2.is_set(j), m.is_set(j));
            }
        }
    }

    #[test]
    fn tvd_is_a_bounded_metric_against_counts(
        ps in proptest::collection::vec(0.0..1.0f64, 4),
        shots in proptest::collection::vec(0u64..100, 4),
    ) {
        let total: f64 = ps.iter().sum::<f64>().max(1e-9);
        let ideal: std::collections::BTreeMap<u64, f64> =
            ps.iter().enumerate().map(|(i, &p)| (i as u64, p / total)).collect();
        let mut counts = qcirc::Counts::new(2);
        for (i, &s) in shots.iter().enumerate() {
            counts.record_many(i as u64, s);
        }
        let d = metrics::tvd(&ideal, &counts);
        prop_assert!((-1e-12..=1.0 + 1e-12).contains(&d));
        let f = metrics::fidelity(&ideal, &counts);
        prop_assert!((f + d - 1.0).abs() < 1e-12);
    }

    #[test]
    fn spearman_bounded_and_self_correlated(
        xs in proptest::collection::vec(-100.0..100.0f64, 3..20)
    ) {
        let rho = metrics::spearman(&xs, &xs);
        // 1 unless constant (then 0 by convention).
        prop_assert!(rho == 0.0 || (rho - 1.0).abs() < 1e-9);
        let ys: Vec<f64> = xs.iter().rev().copied().collect();
        let r2 = metrics::spearman(&xs, &ys);
        prop_assert!((-1.0 - 1e-9..=1.0 + 1e-9).contains(&r2));
    }
}

// DD-insertion invariants are checked on a grid (device + benchmarks are
// heavyweight for proptest's shrinking, and a seeded grid covers the same
// input space deterministically).
#[test]
fn dd_insertion_invariants_over_mask_grid() {
    let dev = Device::ibmq_guadalupe(13);
    let mut program = Circuit::new(4);
    program
        .h(0)
        .t(1)
        .cx(0, 1)
        .cx(1, 2)
        .t(2)
        .cx(2, 3)
        .cx(0, 1)
        .measure_all();
    let t = transpile(&program, &dev, &TranspileOptions::default());

    for protocol in [DdProtocol::Xy4, DdProtocol::IbmqDd, DdProtocol::Cpmg] {
        for mask in DdMask::enumerate_all(4) {
            let wires = adapt::dd::mask_to_wires(mask, &t.initial_layout);
            let out = insert_dd(&t.timed, &dev, &wires, &DdConfig::for_protocol(protocol));
            // 1. Makespan unchanged.
            assert!((out.timed.total_ns() - t.timed.total_ns()).abs() < 1e-6);
            // 2. Original events all survive.
            assert_eq!(
                out.timed.events().len(),
                t.timed.events().len() + out.pulse_count
            );
            // 3. No pulse overlaps any original busy interval on its wire.
            for &wire in &wires {
                let busy = t.timed.busy_intervals(wire);
                for e in out.timed.events() {
                    let is_pulse = matches!(e.instr.kind, OpKind::Gate(_))
                        && e.instr.qubits.len() == 1
                        && e.instr.qubits[0].index() == wire as usize
                        && !busy.iter().any(|b| {
                            (b.start_ns - e.start_ns).abs() < 1e-9
                                && (b.end_ns - e.end_ns).abs() < 1e-9
                        });
                    if is_pulse {
                        for b in &busy {
                            let overlap =
                                e.start_ns < b.end_ns - 1e-9 && b.start_ns < e.end_ns - 1e-9;
                            assert!(
                                !overlap,
                                "{protocol}: pulse [{}, {}] overlaps busy [{}, {}] on wire {wire}",
                                e.start_ns, e.end_ns, b.start_ns, b.end_ns
                            );
                        }
                    }
                }
            }
            // 4. Monotone: more qubits → at least as many pulses.
            let all_out = insert_dd(
                &t.timed,
                &dev,
                &adapt::dd::mask_to_wires(DdMask::all(4), &t.initial_layout),
                &DdConfig::for_protocol(protocol),
            );
            assert!(all_out.pulse_count >= out.pulse_count);
        }
    }
}

/// One full ADAPT mask search on a faulty 5-qubit backend, with retry.
fn faulty_search(profile: FaultProfile, fault_seed: u64) -> (usize, adapt::SearchResult) {
    let machine = Machine::new(Device::ibmq_rome(23));
    let faulty = FaultyBackend::new(machine, profile, fault_seed);
    let policy = RetryPolicy {
        max_attempts: 6,
        ..RetryPolicy::default()
    };
    let adapt = Adapt::with_backend(Arc::new(ResilientExecutor::with_policy(
        Arc::new(faulty),
        policy,
    )));

    let mut program = Circuit::new(3);
    program.h(0).cx(0, 1).t(1).cx(1, 2).h(2).measure_all();
    let cfg = AdaptConfig {
        search_exec: ExecutionConfig {
            shots: 256,
            trajectories: 8,
            seed: 0xDEC0,
            threads: 1,
        },
        ..AdaptConfig::default()
    };
    let compiled = adapt.compile(&program, &cfg);
    let n = 3;
    let result = adapt
        .choose_mask(&compiled, n, &cfg)
        .expect("search under transient faults must complete via degradation");
    (n, result)
}

proptest! {
    // The search is the expensive part of the pipeline, so only a handful
    // of cases — each one is a full localized search under fault injection.
    #![proptest_config(ProptestConfig::with_cases(6))]

    /// Whatever the fault schedule does, the search must return a mask
    /// (and candidate evaluations) defined over exactly the program's
    /// qubits, with degradations confined to in-range qubit indices —
    /// and it must be deterministic in the fault seed.
    #[test]
    fn faulty_search_always_yields_valid_mask(
        fault_seed in 0u64..1_000_000,
        profile_idx in 0usize..3,
    ) {
        let profile = [
            FaultProfile::flaky(),
            FaultProfile::lossy(),
            FaultProfile::brutal(),
        ][profile_idx];
        let (n, result) = faulty_search(profile, fault_seed);

        prop_assert_eq!(result.best.num_qubits(), n);
        prop_assert!(result.best.bits() < (1 << n));
        prop_assert!(!result.evaluations.is_empty());
        for score in &result.evaluations {
            prop_assert_eq!(score.mask.num_qubits(), n);
            prop_assert!(score.fidelity.is_finite());
            prop_assert!((-1e-9..=1.0 + 1e-9).contains(&score.fidelity));
        }
        for group in &result.degraded {
            prop_assert!(!group.qubits.is_empty());
            prop_assert!(group.qubits.iter().all(|&q| (q as usize) < n));
        }

        // Same fault seed → byte-identical search outcome.
        let (_, again) = faulty_search(profile, fault_seed);
        prop_assert_eq!(again.best, result.best);
        prop_assert_eq!(again.evaluations.len(), result.evaluations.len());
        prop_assert_eq!(again.unavailable_runs, result.unavailable_runs);
    }
}

/// One full ADAPT mask search (batched scoring inside) with an explicit
/// executor thread count, on a clean or fault-injected backend.
fn searched(
    profile: Option<FaultProfile>,
    fault_seed: u64,
    exec_seed: u64,
    threads: usize,
) -> adapt::SearchResult {
    let machine = Machine::new(Device::ibmq_rome(23));
    let adapt = match profile {
        None => Adapt::new(machine),
        Some(p) => {
            let faulty = FaultyBackend::new(machine, p, fault_seed);
            let policy = RetryPolicy {
                max_attempts: 6,
                ..RetryPolicy::default()
            };
            Adapt::with_backend(Arc::new(ResilientExecutor::with_policy(
                Arc::new(faulty),
                policy,
            )))
        }
    };
    let mut program = Circuit::new(3);
    program.h(0).cx(0, 1).t(1).cx(1, 2).h(2).measure_all();
    let cfg = AdaptConfig {
        search_exec: ExecutionConfig {
            shots: 256,
            trajectories: 8,
            seed: exec_seed,
            threads,
        },
        ..AdaptConfig::default()
    };
    let compiled = adapt.compile(&program, &cfg);
    adapt
        .choose_mask(&compiled, 3, &cfg)
        .expect("search must complete, degrading if necessary")
}

proptest! {
    // Each case runs two full localized searches; keep the count small.
    #![proptest_config(ProptestConfig::with_cases(5))]

    /// The batch-scoring contract: submitting a neighborhood's masks as
    /// one batch (and letting the backend run jobs on worker threads)
    /// must yield a bit-identical `SearchResult` to a single-threaded
    /// run — across execution seeds and fault profiles.
    #[test]
    fn batched_search_is_bit_identical_to_serial(
        fault_seed in 0u64..1_000_000,
        exec_seed in 0u64..1_000_000,
        profile_idx in 0usize..4,
    ) {
        let profile = [
            None,
            Some(FaultProfile::flaky()),
            Some(FaultProfile::lossy()),
            Some(FaultProfile::brutal()),
        ][profile_idx];
        let serial = searched(profile, fault_seed, exec_seed, 1);
        let parallel = searched(profile, fault_seed, exec_seed, 4);

        prop_assert_eq!(parallel.best, serial.best);
        prop_assert_eq!(parallel.unavailable_runs, serial.unavailable_runs);
        prop_assert_eq!(parallel.evaluations.len(), serial.evaluations.len());
        for (p, s) in parallel.evaluations.iter().zip(&serial.evaluations) {
            prop_assert_eq!(p.mask, s.mask);
            prop_assert_eq!(p.fidelity.to_bits(), s.fidelity.to_bits());
        }
        prop_assert_eq!(parallel.degraded.len(), serial.degraded.len());
        for (p, s) in parallel.degraded.iter().zip(&serial.degraded) {
            prop_assert_eq!(&p.qubits, &s.qubits);
            prop_assert_eq!(&p.reason, &s.reason);
        }
    }
}

#[test]
fn decoy_schedule_preservation_over_kind_grid() {
    let dev = Device::ibmq_guadalupe(17);
    for (i, bench) in benchmarks::paper_suite().into_iter().take(4).enumerate() {
        let t = transpile(&bench.circuit, &dev, &TranspileOptions::default());
        for kind in [
            DecoyKind::Clifford,
            DecoyKind::CnotOnly,
            DecoyKind::Seeded { max_seed_qubits: i },
        ] {
            let d = make_decoy(&t.timed, kind).expect("decoy");
            assert_eq!(d.timed.two_qubit_activity(), t.timed.two_qubit_activity());
            let total: f64 = d.ideal.values().sum();
            assert!((total - 1.0).abs() < 1e-9, "{}: {kind:?}", bench.name);
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Tier-0 heuristic masks are valid for the device across all five
    /// hardware presets: the mask covers exactly the program qubits, the
    /// layout maps every assessed qubit onto a distinct physical wire
    /// inside the topology, evidence rows agree with the mask bit for
    /// bit, every set bit clears the configured ratio gate, and the
    /// whole computation replays bit-identically.
    #[test]
    fn heuristic_masks_are_valid_on_every_preset(
        preset in 0usize..5,
        seed in 0u64..10_000,
        n in 2usize..=5,
        ratio in 0.0..0.01f64,
    ) {
        let dev = [
            Device::ibmq_guadalupe as fn(u64) -> Device,
            Device::ibmq_paris,
            Device::ibmq_toronto,
            Device::ibmq_rome,
            Device::ibmq_london,
        ][preset](seed);
        let mut c = Circuit::new(n);
        c.h(0);
        for q in 1..n as u32 {
            c.cx(q - 1, q);
        }
        c.measure_all();
        let compiled = transpile(&c, &dev, &TranspileOptions::default());
        let cfg = adapt::heuristic::HeuristicConfig {
            t2_threshold_ratio: ratio,
            ..adapt::heuristic::HeuristicConfig::default()
        };
        let h = adapt::heuristic::heuristic_mask(&compiled, &dev, n, &cfg);

        prop_assert_eq!(h.mask.num_qubits(), n);
        prop_assert_eq!(h.assessments.len(), n);
        let topo_qubits = dev.topology().num_qubits() as u32;
        let mut wires = std::collections::HashSet::new();
        for a in &h.assessments {
            prop_assert!(
                a.physical_qubit < topo_qubits,
                "qubit {} mapped outside the {}-wire topology",
                a.program_qubit, topo_qubits
            );
            prop_assert!(wires.insert(a.physical_qubit), "layout must be injective");
            prop_assert_eq!(h.mask.is_set(a.program_qubit as usize), a.dd);
            prop_assert!(a.idle_ns >= 0.0 && a.crosstalk_density >= 0.0);
            if a.dd {
                prop_assert!(
                    a.idle_t2_ratio >= cfg.t2_threshold_ratio,
                    "set bit must clear the ratio gate: {} < {}",
                    a.idle_t2_ratio, cfg.t2_threshold_ratio
                );
            }
        }
        let replay = adapt::heuristic::heuristic_mask(&compiled, &dev, n, &cfg);
        prop_assert_eq!(replay, h);
    }
}
