//! Per-device circuit breakers and health tracking.
//!
//! A sick device must not drag healthy ones down: without a breaker,
//! every request aimed at a flapping device climbs the full retry
//! ladder, holding a worker for the whole climb. The [`HealthTracker`]
//! watches a sliding window of backend-touching outcomes per device and
//! runs the classic three-state machine:
//!
//! ```text
//!             failure fraction ≥ threshold
//!            (with ≥ min_samples outcomes)
//!   Closed ────────────────────────────────▶ Open
//!     ▲                                        │
//!     │ probe succeeds            cooldown_requests admissions
//!     │                                        ▼
//!     └──────────────────────────────────  HalfOpen
//!                   probe fails ──▶ Open  (one probe at a time)
//! ```
//!
//! # Determinism
//!
//! All breaker decisions are functions of the *sequence of admissions
//! and outcomes* — the open→half-open cooldown is counted in denied
//! admissions, not wall time. Under a single worker and a seeded fault
//! schedule, two identical runs therefore produce identical transition
//! logs (asserted by the chaos harness). The breaker is **off by
//! default** ([`BreakerConfig::disabled`]): its admission decisions
//! couple requests to each other, which intentionally trades the
//! service's pure per-key determinism for failure isolation — opt in
//! where that trade is wanted.

use crate::registry::DeviceId;
use std::collections::{HashMap, VecDeque};
use std::sync::Mutex;

/// What an open breaker serves instead of real work.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BreakerFallback {
    /// Fail fast with [`crate::ServiceError::DeviceUnhealthy`] so the
    /// client can retarget or back off.
    FailFast,
    /// Serve the cached mask when one exists, otherwise the conservative
    /// all-DD mask, tagged [`crate::Provenance::BreakerFallback`] — the
    /// client gets *a* safe answer without the sick backend being
    /// touched.
    ConservativeMask,
}

/// Circuit-breaker tuning. See the module docs for the state machine.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BreakerConfig {
    /// Master switch; when false the tracker admits everything and
    /// records nothing.
    pub enabled: bool,
    /// Sliding-window length of per-device outcomes.
    pub window: usize,
    /// Failure fraction (within the window) at which a closed breaker
    /// trips open.
    pub failure_threshold: f64,
    /// Minimum outcomes in the window before the breaker may trip.
    pub min_samples: usize,
    /// Denied admissions an open breaker waits before moving to
    /// half-open (request-count cooldown keeps transitions
    /// deterministic; wall time would not be).
    pub cooldown_requests: u64,
    /// `retry_after_ms` hint attached to fail-fast rejections while
    /// open.
    pub open_retry_hint_ms: u64,
    /// What to serve while open.
    pub fallback: BreakerFallback,
}

impl BreakerConfig {
    /// Breaker disabled (the default): every request is admitted.
    pub fn disabled() -> Self {
        BreakerConfig {
            enabled: false,
            ..Self::enabled()
        }
    }

    /// An enabled breaker with production-shaped defaults.
    pub fn enabled() -> Self {
        BreakerConfig {
            enabled: true,
            window: 16,
            failure_threshold: 0.5,
            min_samples: 8,
            cooldown_requests: 8,
            open_retry_hint_ms: 250,
            fallback: BreakerFallback::ConservativeMask,
        }
    }

    /// Rejects configurations that cannot express a sane breaker.
    ///
    /// # Errors
    ///
    /// Returns a human-readable description of the first violation.
    pub fn validate(&self) -> Result<(), String> {
        if !self.enabled {
            return Ok(());
        }
        if self.window == 0 {
            return Err("breaker.window must be at least 1".to_string());
        }
        if self.min_samples == 0 || self.min_samples > self.window {
            return Err(format!(
                "breaker.min_samples = {} must be within [1, window = {}]",
                self.min_samples, self.window
            ));
        }
        if !self.failure_threshold.is_finite() || !(0.0..=1.0).contains(&self.failure_threshold) {
            return Err(format!(
                "breaker.failure_threshold = {} must be within [0, 1]",
                self.failure_threshold
            ));
        }
        if self.cooldown_requests == 0 {
            return Err("breaker.cooldown_requests must be at least 1".to_string());
        }
        Ok(())
    }
}

impl Default for BreakerConfig {
    fn default() -> Self {
        Self::disabled()
    }
}

/// The three breaker states.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BreakerState {
    /// Healthy: requests flow, outcomes are recorded.
    Closed,
    /// Tripped: requests fail fast or get the conservative fallback.
    Open,
    /// Cooling down: exactly one probe request runs for real; its
    /// outcome decides Closed vs Open.
    HalfOpen,
}

impl BreakerState {
    /// Stable gauge encoding: 0 = closed, 1 = open, 2 = half-open.
    pub fn gauge_value(self) -> i64 {
        match self {
            BreakerState::Closed => 0,
            BreakerState::Open => 1,
            BreakerState::HalfOpen => 2,
        }
    }
}

impl std::fmt::Display for BreakerState {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            BreakerState::Closed => write!(f, "closed"),
            BreakerState::Open => write!(f, "open"),
            BreakerState::HalfOpen => write!(f, "half-open"),
        }
    }
}

/// The tracker's verdict for one admission.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Admission {
    /// Breaker closed (or disabled): run the request normally.
    Proceed,
    /// Breaker half-open and this request won the probe slot: run it for
    /// real; its outcome closes or re-opens the breaker.
    Probe,
    /// Breaker open with [`BreakerFallback::FailFast`]: reject with the
    /// given hint.
    FailFast {
        /// Suggested client backoff.
        retry_after_ms: u64,
    },
    /// Breaker open with [`BreakerFallback::ConservativeMask`] (or
    /// half-open with the probe slot taken): serve the cached/all-DD
    /// fallback without touching the backend.
    Fallback,
}

/// One recorded state transition, in global sequence order.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Transition {
    /// Global sequence number (0-based) across all devices.
    pub seq: u64,
    /// Device whose breaker moved.
    pub device: DeviceId,
    /// State before.
    pub from: BreakerState,
    /// State after.
    pub to: BreakerState,
}

impl std::fmt::Display for Transition {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "#{} {}: {} -> {}",
            self.seq, self.device, self.from, self.to
        )
    }
}

struct DeviceHealth {
    state: BreakerState,
    /// Sliding window of outcomes; `true` = failure.
    window: VecDeque<bool>,
    /// Admissions denied since the breaker opened (cooldown counter).
    denied_since_open: u64,
    /// A half-open probe is currently in flight.
    probe_in_flight: bool,
    state_gauge: adapt_obs::Gauge,
}

/// Aggregate breaker counters, mirrored into `adapt_service_breaker_*`.
struct BreakerMetrics {
    trips: adapt_obs::Counter,
    probes: adapt_obs::Counter,
    recoveries: adapt_obs::Counter,
    fallbacks: adapt_obs::Counter,
    fail_fast: adapt_obs::Counter,
}

/// Everything guarded by one lock: per-device health plus the
/// transition log (kept together so the log order matches the decisions
/// exactly).
struct TrackerState {
    devices: HashMap<DeviceId, DeviceHealth>,
    transitions: Vec<Transition>,
}

/// Per-device circuit breakers (see module docs).
pub struct HealthTracker {
    config: BreakerConfig,
    state: Mutex<TrackerState>,
    metrics: BreakerMetrics,
}

impl std::fmt::Debug for HealthTracker {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("HealthTracker")
            .field("config", &self.config)
            .finish_non_exhaustive()
    }
}

impl HealthTracker {
    /// Builds a tracker for `devices`, publishing per-device state
    /// gauges (`adapt_service_breaker_state_<device>`: 0 = closed,
    /// 1 = open, 2 = half-open) and aggregate counters into `registry`.
    pub fn new(
        config: BreakerConfig,
        devices: &[DeviceId],
        registry: &adapt_obs::Registry,
    ) -> Self {
        let devices = devices
            .iter()
            .map(|&id| {
                let state_gauge =
                    registry.gauge(&format!("adapt_service_breaker_state_{}", id.name()));
                state_gauge.set(BreakerState::Closed.gauge_value());
                (
                    id,
                    DeviceHealth {
                        state: BreakerState::Closed,
                        window: VecDeque::new(),
                        denied_since_open: 0,
                        probe_in_flight: false,
                        state_gauge,
                    },
                )
            })
            .collect();
        HealthTracker {
            config,
            state: Mutex::new(TrackerState {
                devices,
                transitions: Vec::new(),
            }),
            metrics: BreakerMetrics {
                trips: registry.counter("adapt_service_breaker_trips_total"),
                probes: registry.counter("adapt_service_breaker_probes_total"),
                recoveries: registry.counter("adapt_service_breaker_recoveries_total"),
                fallbacks: registry.counter("adapt_service_breaker_fallbacks_total"),
                fail_fast: registry.counter("adapt_service_breaker_fail_fast_total"),
            },
        }
    }

    /// The configured behaviour.
    pub fn config(&self) -> &BreakerConfig {
        &self.config
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, TrackerState> {
        self.state.lock().unwrap_or_else(|e| e.into_inner())
    }

    fn transition(ts: &mut TrackerState, device: DeviceId, to: BreakerState) {
        let seq = ts.transitions.len() as u64;
        let health = ts.devices.get_mut(&device).expect("registered device");
        let from = health.state;
        if from == to {
            return;
        }
        health.state = to;
        health.state_gauge.set(to.gauge_value());
        ts.transitions.push(Transition {
            seq,
            device,
            from,
            to,
        });
    }

    /// Admission decision for one request aimed at `device`. Unknown
    /// devices (not in this tracker) always proceed — the service
    /// rejects them later as not-served.
    pub fn admit(&self, device: DeviceId) -> Admission {
        if !self.config.enabled {
            return Admission::Proceed;
        }
        let mut ts = self.lock();
        let Some(health) = ts.devices.get_mut(&device) else {
            return Admission::Proceed;
        };
        match health.state {
            BreakerState::Closed => Admission::Proceed,
            BreakerState::Open => {
                health.denied_since_open += 1;
                if health.denied_since_open >= self.config.cooldown_requests {
                    health.probe_in_flight = true;
                    Self::transition(&mut ts, device, BreakerState::HalfOpen);
                    self.metrics.probes.inc();
                    return Admission::Probe;
                }
                self.denied(device)
            }
            BreakerState::HalfOpen => {
                if health.probe_in_flight {
                    self.denied(device)
                } else {
                    health.probe_in_flight = true;
                    self.metrics.probes.inc();
                    Admission::Probe
                }
            }
        }
    }

    /// The open-breaker response per the configured fallback.
    fn denied(&self, _device: DeviceId) -> Admission {
        match self.config.fallback {
            BreakerFallback::FailFast => {
                self.metrics.fail_fast.inc();
                Admission::FailFast {
                    retry_after_ms: self.config.open_retry_hint_ms,
                }
            }
            BreakerFallback::ConservativeMask => {
                self.metrics.fallbacks.inc();
                Admission::Fallback
            }
        }
    }

    /// Records the outcome of a normally-admitted ([`Admission::Proceed`])
    /// backend-touching request. `failure` means a typed error *or* a
    /// search that degraded to the all-DD fallback — both are symptoms
    /// of a device that cannot serve its decoy runs.
    pub fn record(&self, device: DeviceId, failure: bool) {
        if !self.config.enabled {
            return;
        }
        let mut ts = self.lock();
        let Some(health) = ts.devices.get_mut(&device) else {
            return;
        };
        if health.state != BreakerState::Closed {
            // A pre-trip request finishing late must not double-trip.
            return;
        }
        health.window.push_back(failure);
        while health.window.len() > self.config.window {
            health.window.pop_front();
        }
        let samples = health.window.len();
        let failures = health.window.iter().filter(|&&f| f).count();
        if samples >= self.config.min_samples
            && failures as f64 / samples as f64 >= self.config.failure_threshold
        {
            health.denied_since_open = 0;
            health.window.clear();
            Self::transition(&mut ts, device, BreakerState::Open);
            self.metrics.trips.inc();
        }
    }

    /// Records the outcome of an [`Admission::Probe`] request: success
    /// closes the breaker, failure re-opens it (with a fresh cooldown).
    pub fn record_probe(&self, device: DeviceId, failure: bool) {
        if !self.config.enabled {
            return;
        }
        let mut ts = self.lock();
        let Some(health) = ts.devices.get_mut(&device) else {
            return;
        };
        health.probe_in_flight = false;
        if failure {
            health.denied_since_open = 0;
            Self::transition(&mut ts, device, BreakerState::Open);
        } else {
            health.window.clear();
            Self::transition(&mut ts, device, BreakerState::Closed);
            self.metrics.recoveries.inc();
        }
    }

    /// Releases the probe slot without a verdict (the probe was
    /// interrupted by its deadline, or could not reach a conclusion):
    /// the breaker stays half-open and the next admission probes again.
    pub fn probe_inconclusive(&self, device: DeviceId) {
        if !self.config.enabled {
            return;
        }
        let mut ts = self.lock();
        if let Some(health) = ts.devices.get_mut(&device) {
            health.probe_in_flight = false;
        }
    }

    /// Current state of `device`'s breaker (None for unknown devices).
    pub fn state(&self, device: DeviceId) -> Option<BreakerState> {
        self.lock().devices.get(&device).map(|h| h.state)
    }

    /// The `retry_after_ms` hint a request for `device` should carry
    /// while its breaker is not closed (0 when closed/unknown/disabled).
    pub fn retry_hint_ms(&self, device: DeviceId) -> u64 {
        if !self.config.enabled {
            return 0;
        }
        match self.state(device) {
            Some(BreakerState::Open | BreakerState::HalfOpen) => self.config.open_retry_hint_ms,
            _ => 0,
        }
    }

    /// The full transition log, in decision order.
    pub fn transitions(&self) -> Vec<Transition> {
        self.lock().transitions.clone()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tracker(config: BreakerConfig) -> HealthTracker {
        HealthTracker::new(
            config,
            &[DeviceId::Guadalupe, DeviceId::Rome],
            &adapt_obs::Registry::new(),
        )
    }

    fn small() -> BreakerConfig {
        BreakerConfig {
            window: 4,
            min_samples: 4,
            failure_threshold: 0.5,
            cooldown_requests: 3,
            ..BreakerConfig::enabled()
        }
    }

    #[test]
    fn disabled_tracker_admits_everything_and_never_trips() {
        let t = tracker(BreakerConfig::disabled());
        for _ in 0..100 {
            assert_eq!(t.admit(DeviceId::Rome), Admission::Proceed);
            t.record(DeviceId::Rome, true);
        }
        assert_eq!(t.state(DeviceId::Rome), Some(BreakerState::Closed));
        assert!(t.transitions().is_empty());
    }

    #[test]
    fn breaker_trips_after_windowed_failures_and_recovers_via_probe() {
        let t = tracker(small());
        let dev = DeviceId::Rome;
        // Four failures fill the window and trip the breaker.
        for _ in 0..4 {
            assert_eq!(t.admit(dev), Admission::Proceed);
            t.record(dev, true);
        }
        assert_eq!(t.state(dev), Some(BreakerState::Open));
        // Denied admissions count down the cooldown; default fallback
        // serves the conservative mask.
        assert_eq!(t.admit(dev), Admission::Fallback);
        assert_eq!(t.admit(dev), Admission::Fallback);
        // Third denied admission converts to the half-open probe.
        assert_eq!(t.admit(dev), Admission::Probe);
        assert_eq!(t.state(dev), Some(BreakerState::HalfOpen));
        // While the probe is out, others still get the fallback.
        assert_eq!(t.admit(dev), Admission::Fallback);
        // Probe succeeds: closed again, window reset.
        t.record_probe(dev, false);
        assert_eq!(t.state(dev), Some(BreakerState::Closed));
        assert_eq!(t.admit(dev), Admission::Proceed);
        // The other device never moved.
        assert_eq!(t.state(DeviceId::Guadalupe), Some(BreakerState::Closed));
        let log = t.transitions();
        assert_eq!(log.len(), 3);
        assert_eq!(
            log.iter().map(|tr| tr.to).collect::<Vec<_>>(),
            vec![
                BreakerState::Open,
                BreakerState::HalfOpen,
                BreakerState::Closed
            ]
        );
    }

    #[test]
    fn failed_probe_reopens_with_fresh_cooldown() {
        let t = tracker(small());
        let dev = DeviceId::Rome;
        for _ in 0..4 {
            t.admit(dev);
            t.record(dev, true);
        }
        for _ in 0..2 {
            t.admit(dev);
        }
        assert_eq!(t.admit(dev), Admission::Probe);
        t.record_probe(dev, true);
        assert_eq!(t.state(dev), Some(BreakerState::Open));
        // Cooldown restarts: two more denials before the next probe.
        assert_eq!(t.admit(dev), Admission::Fallback);
        assert_eq!(t.admit(dev), Admission::Fallback);
        assert_eq!(t.admit(dev), Admission::Probe);
    }

    #[test]
    fn inconclusive_probe_keeps_half_open_and_reprobes() {
        let t = tracker(small());
        let dev = DeviceId::Rome;
        for _ in 0..4 {
            t.admit(dev);
            t.record(dev, true);
        }
        for _ in 0..2 {
            t.admit(dev);
        }
        assert_eq!(t.admit(dev), Admission::Probe);
        t.probe_inconclusive(dev);
        assert_eq!(t.state(dev), Some(BreakerState::HalfOpen));
        assert_eq!(t.admit(dev), Admission::Probe);
    }

    #[test]
    fn fail_fast_fallback_carries_the_hint() {
        let t = tracker(BreakerConfig {
            fallback: BreakerFallback::FailFast,
            open_retry_hint_ms: 777,
            ..small()
        });
        let dev = DeviceId::Rome;
        for _ in 0..4 {
            t.admit(dev);
            t.record(dev, true);
        }
        assert_eq!(
            t.admit(dev),
            Admission::FailFast {
                retry_after_ms: 777
            }
        );
        assert_eq!(t.retry_hint_ms(dev), 777);
        assert_eq!(t.retry_hint_ms(DeviceId::Guadalupe), 0);
    }

    #[test]
    fn mixed_outcomes_below_threshold_never_trip() {
        let t = tracker(small());
        let dev = DeviceId::Guadalupe;
        // Alternate success/failure: 25-50% failures in a 4-window, but
        // the fraction only reaches 0.5 when min_samples is met AND two
        // of the last four failed — alternate 1-in-4 to stay below.
        for i in 0..64 {
            assert_eq!(t.admit(dev), Admission::Proceed);
            t.record(dev, i % 4 == 0);
        }
        assert_eq!(t.state(dev), Some(BreakerState::Closed));
        assert!(t.transitions().is_empty());
    }

    #[test]
    fn validate_rejects_nonsense() {
        assert!(BreakerConfig::disabled().validate().is_ok());
        assert!(BreakerConfig::enabled().validate().is_ok());
        assert!(BreakerConfig {
            window: 0,
            ..BreakerConfig::enabled()
        }
        .validate()
        .is_err());
        assert!(BreakerConfig {
            min_samples: 20,
            window: 10,
            ..BreakerConfig::enabled()
        }
        .validate()
        .is_err());
        assert!(BreakerConfig {
            failure_threshold: f64::NAN,
            ..BreakerConfig::enabled()
        }
        .validate()
        .is_err());
        assert!(BreakerConfig {
            cooldown_requests: 0,
            ..BreakerConfig::enabled()
        }
        .validate()
        .is_err());
    }
}
