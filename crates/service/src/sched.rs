//! Deadline-aware multi-tenant scheduling for the worker pool.
//!
//! [`TenantScheduler`] replaces the old FIFO `VecDeque`:
//!
//! - **Strict class priority.** Work in a higher [`PriorityClass`] is
//!   always served before any lower class; the refine lane (owned by
//!   the service, not this type) sits below all three.
//! - **Weighted-fair round-robin across tenants.** Within a class,
//!   tenants take turns in a deterministic ring; a tenant with weight
//!   `w` may take up to `w` consecutive dequeues per turn before the
//!   ring rotates. A tenant whose lane empties leaves the ring and
//!   re-enters at the back on its next push, so an idle tenant costs
//!   nothing and a backlogged one cannot be starved: with total active
//!   weight `W`, any queued item is served within `W` dequeues of its
//!   tenant reaching the ring front.
//! - **EDF within a tenant's lane.** Each lane is a min-heap on
//!   (`edf_key_us`, submit sequence): earliest absolute deadline first,
//!   ties broken by admission order, so equal-deadline ordering is
//!   deterministic and unbounded requests queue FIFO behind bounded
//!   ones.
//!
//! All state transitions are pure functions of the push/pop sequence —
//! no clocks, no randomness — which is what lets the trace-replay
//! harness assert bit-identical schedules across runs.

use crate::tenancy::{PriorityClass, TenancyConfig, TenantId};
use std::collections::{BTreeMap, BinaryHeap, VecDeque};

/// A queued item: EDF key + admission sequence + payload.
#[derive(Debug)]
struct Entry<T> {
    /// Microsecond EDF key (smaller = more urgent; `u64::MAX` =
    /// unbounded).
    key_us: u64,
    /// Global admission sequence number — the deterministic tie-break.
    seq: u64,
    payload: T,
}

// BinaryHeap is a max-heap; reverse the ordering to pop the smallest
// (key, seq) first. Payloads never participate in ordering.
impl<T> PartialEq for Entry<T> {
    fn eq(&self, other: &Self) -> bool {
        self.key_us == other.key_us && self.seq == other.seq
    }
}
impl<T> Eq for Entry<T> {}
impl<T> PartialOrd for Entry<T> {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl<T> Ord for Entry<T> {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        (other.key_us, other.seq).cmp(&(self.key_us, self.seq))
    }
}

/// One class's tenant lanes plus the round-robin ring over them.
#[derive(Debug)]
struct ClassQueue<T> {
    lanes: BTreeMap<TenantId, BinaryHeap<Entry<T>>>,
    /// Tenants with queued work, in service order. The front tenant is
    /// currently "holding the token".
    ring: VecDeque<TenantId>,
    /// Dequeues the front tenant has left in its current turn.
    credits: u32,
    len: usize,
}

impl<T> ClassQueue<T> {
    fn new() -> Self {
        ClassQueue {
            lanes: BTreeMap::new(),
            ring: VecDeque::new(),
            credits: 0,
            len: 0,
        }
    }

    fn push(&mut self, tenant: TenantId, entry: Entry<T>) {
        let lane = self.lanes.entry(tenant).or_default();
        if lane.is_empty() && !self.ring.contains(&tenant) {
            self.ring.push_back(tenant);
        }
        lane.push(entry);
        self.len += 1;
    }

    fn pop(&mut self, config: &TenancyConfig) -> Option<(TenantId, T)> {
        loop {
            let &tenant = self.ring.front()?;
            if self.credits == 0 {
                self.credits = config.weight(tenant).max(1);
            }
            let Some(lane) = self.lanes.get_mut(&tenant) else {
                // Lane vanished (drained earlier turn); drop from ring.
                self.ring.pop_front();
                self.credits = 0;
                continue;
            };
            let Some(entry) = lane.pop() else {
                self.lanes.remove(&tenant);
                self.ring.pop_front();
                self.credits = 0;
                continue;
            };
            self.len -= 1;
            self.credits -= 1;
            if lane.is_empty() {
                // Tenant is done: leave the ring entirely; it re-enters
                // at the back on its next push.
                self.lanes.remove(&tenant);
                self.ring.pop_front();
                self.credits = 0;
            } else if self.credits == 0 {
                // Turn over: rotate to the back with work still queued.
                self.ring.rotate_left(1);
            }
            return Some((tenant, entry.payload));
        }
    }
}

/// The multi-tenant, deadline-aware ready queue. See the module docs
/// for the scheduling discipline.
#[derive(Debug)]
pub struct TenantScheduler<T> {
    classes: [ClassQueue<T>; 3],
    next_seq: u64,
}

impl<T> Default for TenantScheduler<T> {
    fn default() -> Self {
        Self::new()
    }
}

impl<T> TenantScheduler<T> {
    /// An empty scheduler.
    pub fn new() -> Self {
        TenantScheduler {
            classes: [ClassQueue::new(), ClassQueue::new(), ClassQueue::new()],
            next_seq: 0,
        }
    }

    /// Total queued items across all classes and tenants.
    pub fn len(&self) -> usize {
        self.classes.iter().map(|c| c.len).sum()
    }

    /// Whether nothing is queued.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Enqueues `payload` for `tenant` in `class` with EDF key
    /// `key_us` (use [`machine::Deadline::edf_key_us`]). Admission
    /// order within equal keys is preserved via an internal sequence
    /// counter.
    pub fn push(&mut self, tenant: TenantId, class: PriorityClass, key_us: u64, payload: T) {
        let seq = self.next_seq;
        self.next_seq += 1;
        self.classes[class.index()].push(
            tenant,
            Entry {
                key_us,
                seq,
                payload,
            },
        );
    }

    /// Dequeues the next item: highest non-empty class, weighted-fair
    /// tenant within it, earliest deadline within that tenant's lane.
    /// `config` supplies the fairness weights.
    pub fn pop(&mut self, config: &TenancyConfig) -> Option<(TenantId, T)> {
        self.classes.iter_mut().find_map(|c| c.pop(config))
    }

    /// Drains every queued item (shutdown path). Order follows the
    /// same discipline as [`TenantScheduler::pop`] with default
    /// weights.
    pub fn drain(&mut self) -> Vec<T> {
        let config = TenancyConfig::default();
        let mut out = Vec::with_capacity(self.len());
        while let Some((_, payload)) = self.pop(&config) {
            out.push(payload);
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tenancy::TenantSpec;

    fn weights(pairs: &[(u32, u32)]) -> TenancyConfig {
        let mut cfg = TenancyConfig::default();
        for &(tenant, weight) in pairs {
            cfg.tenants.insert(
                TenantId(tenant),
                TenantSpec {
                    weight,
                    quota: None,
                },
            );
        }
        cfg
    }

    #[test]
    fn strict_class_priority() {
        let mut s = TenantScheduler::new();
        let cfg = TenancyConfig::default();
        s.push(TenantId(0), PriorityClass::Batch, 0, "batch");
        s.push(TenantId(0), PriorityClass::Standard, 0, "std");
        s.push(TenantId(0), PriorityClass::Interactive, u64::MAX, "inter");
        // Interactive wins even with the loosest deadline.
        assert_eq!(s.pop(&cfg).unwrap().1, "inter");
        assert_eq!(s.pop(&cfg).unwrap().1, "std");
        assert_eq!(s.pop(&cfg).unwrap().1, "batch");
        assert!(s.pop(&cfg).is_none());
    }

    #[test]
    fn edf_within_lane_ties_broken_by_sequence() {
        let mut s = TenantScheduler::new();
        let cfg = TenancyConfig::default();
        let t = TenantId(1);
        s.push(t, PriorityClass::Standard, 500, "a");
        s.push(t, PriorityClass::Standard, 100, "b");
        s.push(t, PriorityClass::Standard, 100, "c");
        s.push(t, PriorityClass::Standard, u64::MAX, "d");
        assert_eq!(s.pop(&cfg).unwrap().1, "b"); // earliest key, first in
        assert_eq!(s.pop(&cfg).unwrap().1, "c"); // equal key, later seq
        assert_eq!(s.pop(&cfg).unwrap().1, "a");
        assert_eq!(s.pop(&cfg).unwrap().1, "d");
    }

    #[test]
    fn round_robin_alternates_equal_weight_tenants() {
        let mut s = TenantScheduler::new();
        let cfg = TenancyConfig::default();
        for i in 0..3 {
            s.push(TenantId(1), PriorityClass::Standard, 0, format!("a{i}"));
            s.push(TenantId(2), PriorityClass::Standard, 0, format!("b{i}"));
        }
        let order: Vec<TenantId> = std::iter::from_fn(|| s.pop(&cfg).map(|(t, _)| t)).collect();
        assert_eq!(
            order,
            [1, 2, 1, 2, 1, 2].map(TenantId),
            "equal weights alternate"
        );
    }

    #[test]
    fn weights_grant_consecutive_dequeues() {
        let mut s = TenantScheduler::new();
        let cfg = weights(&[(1, 3), (2, 1)]);
        for i in 0..6 {
            s.push(TenantId(1), PriorityClass::Standard, 0, format!("a{i}"));
        }
        for i in 0..2 {
            s.push(TenantId(2), PriorityClass::Standard, 0, format!("b{i}"));
        }
        let order: Vec<TenantId> = std::iter::from_fn(|| s.pop(&cfg).map(|(t, _)| t)).collect();
        assert_eq!(
            order,
            [1, 1, 1, 2, 1, 1, 1, 2].map(TenantId),
            "weight-3 tenant takes 3 per turn"
        );
    }

    #[test]
    fn idle_tenant_reenters_at_ring_back() {
        let mut s = TenantScheduler::new();
        let cfg = TenancyConfig::default();
        s.push(TenantId(1), PriorityClass::Standard, 0, "a0");
        s.push(TenantId(2), PriorityClass::Standard, 0, "b0");
        assert_eq!(s.pop(&cfg).unwrap().0, TenantId(1));
        // Tenant 1 drained and left the ring; new work re-enters behind 2.
        s.push(TenantId(1), PriorityClass::Standard, 0, "a1");
        assert_eq!(s.pop(&cfg).unwrap().0, TenantId(2));
        assert_eq!(s.pop(&cfg).unwrap().0, TenantId(1));
    }

    #[test]
    fn drain_empties_everything() {
        let mut s = TenantScheduler::new();
        for i in 0..5u32 {
            s.push(
                TenantId(i % 2),
                PriorityClass::ALL[(i % 3) as usize],
                i as u64,
                i,
            );
        }
        assert_eq!(s.len(), 5);
        let drained = s.drain();
        assert_eq!(drained.len(), 5);
        assert!(s.is_empty());
    }
}
