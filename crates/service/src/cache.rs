//! Epoch-keyed mask cache with LRU bounds and single-flight
//! deduplication.
//!
//! ADAPT's value proposition is amortization: a mask search costs ≤ 4·N
//! decoy executions (PAPER §4.3), but the resulting mask stays valid for
//! a whole calibration epoch, so a serving layer should pay the search
//! once per `(device, epoch, circuit, protocol, decoy)` and answer every
//! later request from memory. The [`MaskCache`] implements exactly that
//! contract:
//!
//! - **Key**: [`MaskKey`] — device id, calibration epoch, *compiled*
//!   circuit structural hash, DD protocol and decoy mode. The structural
//!   hash covers the full timed event stream, so two programs share a
//!   mask only when their scheduled circuits are identical on this
//!   device+epoch.
//! - **LRU bounds**: a fixed capacity with least-recently-*used* eviction
//!   (mirroring the [`PlanCache`](machine::PlanCache) idiom one layer
//!   down).
//! - **Epoch invalidation**: when a device drifts to a new calibration
//!   epoch, [`MaskCache::invalidate_before`] drops every entry of older
//!   epochs — stale masks must never be served (§6.4 shows they decay).
//! - **Single-flight**: [`MaskCache::lookup`] returns a [`SearchTicket`]
//!   to exactly one caller per missing key; concurrent requests for the
//!   same key block until that searcher completes (or abandons) instead
//!   of launching duplicate searches. An abandoned ticket (worker error
//!   or panic) wakes the waiters and the next one becomes the searcher.

use crate::registry::DeviceId;
use adapt::{DdMask, DdProtocol, DecoyKind};
use std::collections::{HashMap, HashSet};
use std::sync::{Arc, Condvar, Mutex, MutexGuard};

/// Default number of masks a [`MaskCache`] retains.
pub const DEFAULT_MASK_CACHE_CAPACITY: usize = 256;

/// Cache key: everything the chosen mask depends on.
///
/// The request's search *budget* is deliberately absent: the first
/// searcher's budget decides the cached entry, and later requests with a
/// different budget still share it (a mask is a mask — re-searching the
/// same circuit at a different budget would defeat amortization).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct MaskKey {
    /// Target device.
    pub device: DeviceId,
    /// Calibration epoch of the device at request time.
    pub epoch: u64,
    /// [`machine::structural_hash`] of the compiled (timed) circuit.
    pub circuit_hash: u64,
    /// DD protocol the mask will be realized with.
    pub protocol: DdProtocol,
    /// Decoy construction mode used by the search.
    pub decoy: DecoyKind,
}

impl MaskKey {
    /// Stable 64-bit fingerprint, identical across processes and runs.
    ///
    /// Seeds the per-request backend stack: deriving the search seed from
    /// this fingerprint makes a fresh search a pure function of the key,
    /// which is what lets the service promise bit-identical responses
    /// whether a key is served from cache or recomputed.
    pub fn fingerprint(&self) -> u64 {
        let decoy_tag = match self.decoy {
            DecoyKind::Clifford => 1,
            DecoyKind::CnotOnly => 2,
            DecoyKind::Seeded { max_seed_qubits } => 0x100 | max_seed_qubits as u64,
        };
        let protocol_tag = format!("{:?}", self.protocol)
            .bytes()
            .fold(0xcbf2_9ce4_8422_2325u64, |h, b| {
                (h ^ b as u64).wrapping_mul(0x1000_0000_01b3)
            });
        let mut h = 0x9e37_79b9_7f4a_7c15u64;
        for word in [
            self.device.name().len() as u64 ^ protocol_tag,
            self.epoch,
            self.circuit_hash,
            decoy_tag,
        ] {
            h ^= word;
            h = h.wrapping_mul(0xff51_afd7_ed55_8ccd);
            h ^= h >> 33;
            h = h.wrapping_mul(0xc4ce_b9fe_1a85_ec53);
            h ^= h >> 33;
        }
        h
    }
}

/// A cached search outcome.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CachedMask {
    /// The selected mask.
    pub mask: DdMask,
    /// Decoy fidelity the selected mask scored during the search.
    pub decoy_fidelity: f64,
    /// Decoy executions the search attempted (≤ 4·N budget accounting).
    pub decoy_runs: usize,
    /// Whether any neighborhood degraded to its all-DD fallback.
    pub degraded: bool,
}

/// Effectiveness counters of a [`MaskCache`].
///
/// Accounting invariant: every [`MaskCache::lookup`] call resolves as
/// exactly one hit or one miss (coalesced waiters eventually resolve
/// too — as a hit when the searcher published, or as the promoted
/// searcher's miss when it abandoned), so at quiescence
/// `hits + misses == lookups`.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct MaskCacheStats {
    /// Lookup calls received (counted at entry; a lookup currently
    /// blocked behind an in-flight search is counted here but not yet
    /// in `hits`/`misses`).
    pub lookups: u64,
    /// Lookups answered from the cache.
    pub hits: u64,
    /// Lookups that became a search (one per single-flight group).
    pub misses: u64,
    /// Lookups that blocked behind an in-flight identical search instead
    /// of duplicating it.
    pub coalesced: u64,
    /// Entries evicted by the LRU bound.
    pub evictions: u64,
    /// Entries dropped by epoch invalidation.
    pub invalidated: u64,
    /// Entries currently resident.
    pub len: usize,
    /// Maximum resident entries.
    pub capacity: usize,
}

impl MaskCacheStats {
    /// Fraction of resolved lookups served without a fresh search.
    /// Coalesced waiters count as served-from-cache: they did not pay for
    /// a search.
    pub fn hit_rate(&self) -> f64 {
        let served = self.hits + self.coalesced;
        let total = served + self.misses;
        if total == 0 {
            0.0
        } else {
            served as f64 / total as f64
        }
    }
}

#[derive(Debug)]
struct Entry {
    value: CachedMask,
    last_used: u64,
}

#[derive(Debug, Default)]
struct Inner {
    map: HashMap<MaskKey, Entry>,
    inflight: HashSet<MaskKey>,
    tick: u64,
    lookups: u64,
    hits: u64,
    misses: u64,
    coalesced: u64,
    evictions: u64,
    invalidated: u64,
}

/// Observability mirrors of the cache counters (noop unless the cache
/// was built with [`MaskCache::with_registry`]).
#[derive(Default)]
struct CacheMetrics {
    lookups: adapt_obs::Counter,
    hits: adapt_obs::Counter,
    misses: adapt_obs::Counter,
    singleflight_waits: adapt_obs::Counter,
    evictions: adapt_obs::Counter,
    invalidated: adapt_obs::Counter,
    len: adapt_obs::Gauge,
}

impl CacheMetrics {
    fn for_registry(r: &adapt_obs::Registry) -> Self {
        CacheMetrics {
            lookups: r.counter("adapt_service_cache_lookups_total"),
            hits: r.counter("adapt_service_cache_hits_total"),
            misses: r.counter("adapt_service_cache_misses_total"),
            singleflight_waits: r.counter("adapt_service_cache_singleflight_waits_total"),
            evictions: r.counter("adapt_service_cache_evictions_total"),
            invalidated: r.counter("adapt_service_cache_invalidated_total"),
            len: r.gauge("adapt_service_cache_len"),
        }
    }
}

/// The shared mask cache (see module docs).
pub struct MaskCache {
    inner: Mutex<Inner>,
    /// Signalled when an in-flight search completes or abandons.
    resolved: Condvar,
    capacity: usize,
    metrics: CacheMetrics,
}

impl std::fmt::Debug for MaskCache {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("MaskCache")
            .field("capacity", &self.capacity)
            .finish_non_exhaustive()
    }
}

/// Outcome of [`MaskCache::lookup`].
#[derive(Debug)]
pub enum Lookup {
    /// The key is cached (possibly after waiting out an in-flight search
    /// for it).
    Hit(CachedMask),
    /// This caller owns the search for the key. Every concurrent lookup
    /// of the same key now blocks until the ticket is completed or
    /// dropped.
    Miss(SearchTicket),
}

/// Exclusive right (and obligation) to resolve one missing [`MaskKey`].
///
/// Call [`SearchTicket::complete`] with the search outcome; dropping the
/// ticket instead (error paths, panics) releases the key so a blocked
/// waiter can retry as the new searcher. Either way the waiters wake.
#[derive(Debug)]
pub struct SearchTicket {
    cache: Arc<MaskCache>,
    key: MaskKey,
    done: bool,
}

impl SearchTicket {
    /// The key this ticket resolves.
    pub fn key(&self) -> MaskKey {
        self.key
    }

    /// Publishes the search outcome and wakes every waiter.
    pub fn complete(mut self, value: CachedMask) {
        self.done = true;
        let mut inner = self.cache.lock();
        inner.inflight.remove(&self.key);
        self.cache.insert_locked(&mut inner, self.key, value);
        self.cache.resolved.notify_all();
    }
}

impl Drop for SearchTicket {
    fn drop(&mut self) {
        if self.done {
            return;
        }
        // Abandoned (error or panic mid-search): release the key so a
        // waiter can take over, instead of deadlocking the flight group.
        let mut inner = self.cache.lock();
        inner.inflight.remove(&self.key);
        self.cache.resolved.notify_all();
    }
}

impl MaskCache {
    /// Creates a cache retaining at most `capacity` masks (min 1).
    pub fn new(capacity: usize) -> Self {
        MaskCache {
            inner: Mutex::new(Inner::default()),
            resolved: Condvar::new(),
            capacity: capacity.max(1),
            metrics: CacheMetrics::default(),
        }
    }

    /// Like [`Self::new`], but mirrors the counters into `registry` as
    /// `adapt_service_cache_*` metrics. The [`MaskCacheStats`] struct
    /// stays the source of truth; the registry is a read-only mirror.
    pub fn with_registry(capacity: usize, registry: &adapt_obs::Registry) -> Self {
        MaskCache {
            metrics: CacheMetrics::for_registry(registry),
            ..Self::new(capacity)
        }
    }

    /// Resolves `key`: a hit, possibly after waiting for a concurrent
    /// searcher, or a [`SearchTicket`] making the caller the searcher.
    pub fn lookup(cache: &Arc<MaskCache>, key: MaskKey) -> Lookup {
        let mut inner = cache.lock();
        inner.lookups += 1;
        cache.metrics.lookups.inc();
        let mut waited = false;
        loop {
            inner.tick += 1;
            let tick = inner.tick;
            if let Some(entry) = inner.map.get_mut(&key) {
                entry.last_used = tick;
                let value = entry.value;
                inner.hits += 1;
                cache.metrics.hits.inc();
                return Lookup::Hit(value);
            }
            if inner.inflight.insert(key) {
                inner.misses += 1;
                cache.metrics.misses.inc();
                return Lookup::Miss(SearchTicket {
                    cache: Arc::clone(cache),
                    key,
                    done: false,
                });
            }
            // `insert` returned false: someone else is searching this key.
            if !waited {
                waited = true;
                inner.coalesced += 1;
                cache.metrics.singleflight_waits.inc();
            }
            inner = cache
                .resolved
                .wait(inner)
                .unwrap_or_else(|poisoned| poisoned.into_inner());
        }
    }

    /// Inserts or refreshes `key` outside the single-flight protocol
    /// (tests, warm-up). Production paths go through [`Self::lookup`].
    pub fn insert(&self, key: MaskKey, value: CachedMask) {
        let mut inner = self.lock();
        self.insert_locked(&mut inner, key, value);
    }

    /// Peeks at `key` without touching LRU order or counters.
    pub fn peek(&self, key: &MaskKey) -> Option<CachedMask> {
        self.lock().map.get(key).map(|e| e.value)
    }

    /// Drops every entry of `device` with an epoch below `min_epoch`
    /// (drift-triggered invalidation). Returns how many were dropped.
    pub fn invalidate_before(&self, device: DeviceId, min_epoch: u64) -> usize {
        let mut inner = self.lock();
        let before = inner.map.len();
        inner
            .map
            .retain(|k, _| k.device != device || k.epoch >= min_epoch);
        let dropped = before - inner.map.len();
        inner.invalidated += dropped as u64;
        self.metrics.invalidated.add(dropped as u64);
        self.metrics.len.set(inner.map.len() as i64);
        dropped
    }

    /// Current effectiveness counters.
    pub fn stats(&self) -> MaskCacheStats {
        let inner = self.lock();
        MaskCacheStats {
            lookups: inner.lookups,
            hits: inner.hits,
            misses: inner.misses,
            coalesced: inner.coalesced,
            evictions: inner.evictions,
            invalidated: inner.invalidated,
            len: inner.map.len(),
            capacity: self.capacity,
        }
    }

    fn insert_locked(&self, inner: &mut Inner, key: MaskKey, value: CachedMask) {
        inner.tick += 1;
        let tick = inner.tick;
        if inner.map.len() >= self.capacity && !inner.map.contains_key(&key) {
            if let Some(&lru) = inner
                .map
                .iter()
                .min_by_key(|(_, e)| e.last_used)
                .map(|(k, _)| k)
            {
                inner.map.remove(&lru);
                inner.evictions += 1;
                self.metrics.evictions.inc();
            }
        }
        inner.map.insert(
            key,
            Entry {
                value,
                last_used: tick,
            },
        );
        self.metrics.len.set(inner.map.len() as i64);
    }

    fn lock(&self) -> MutexGuard<'_, Inner> {
        // Recover from poisoning: the cache's invariants hold under any
        // interleaving of the (short, panic-free) critical sections, and
        // a worker panic elsewhere must not take the whole service down.
        self.inner
            .lock()
            .unwrap_or_else(|poisoned| poisoned.into_inner())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::thread;

    fn key(epoch: u64, hash: u64) -> MaskKey {
        MaskKey {
            device: DeviceId::Rome,
            epoch,
            circuit_hash: hash,
            protocol: DdProtocol::Xy4,
            decoy: DecoyKind::Seeded { max_seed_qubits: 4 },
        }
    }

    fn mask(bits: u64) -> CachedMask {
        CachedMask {
            mask: DdMask::from_bits(bits, 5),
            decoy_fidelity: 0.9,
            decoy_runs: 20,
            degraded: false,
        }
    }

    #[test]
    fn fingerprint_is_stable_and_key_sensitive() {
        let a = key(0, 42).fingerprint();
        assert_eq!(a, key(0, 42).fingerprint());
        assert_ne!(a, key(1, 42).fingerprint());
        assert_ne!(a, key(0, 43).fingerprint());
        let mut other = key(0, 42);
        other.protocol = DdProtocol::Cpmg;
        assert_ne!(a, other.fingerprint());
    }

    #[test]
    fn lru_evicts_least_recently_used() {
        let cache = Arc::new(MaskCache::new(2));
        cache.insert(key(0, 1), mask(1));
        cache.insert(key(0, 2), mask(2));
        // Touch key 1 so key 2 is the LRU victim.
        assert!(matches!(
            MaskCache::lookup(&cache, key(0, 1)),
            Lookup::Hit(_)
        ));
        cache.insert(key(0, 3), mask(3));
        assert!(cache.peek(&key(0, 1)).is_some());
        assert!(cache.peek(&key(0, 2)).is_none());
        assert_eq!(cache.stats().evictions, 1);
    }

    #[test]
    fn epoch_invalidation_drops_only_stale_entries() {
        let cache = Arc::new(MaskCache::new(8));
        cache.insert(key(0, 1), mask(1));
        cache.insert(key(0, 2), mask(2));
        cache.insert(key(1, 1), mask(3));
        let mut other_dev = key(0, 9);
        other_dev.device = DeviceId::London;
        cache.insert(other_dev, mask(4));

        assert_eq!(cache.invalidate_before(DeviceId::Rome, 1), 2);
        assert!(cache.peek(&key(1, 1)).is_some());
        assert!(cache.peek(&other_dev).is_some(), "other devices untouched");
        assert_eq!(cache.stats().invalidated, 2);
    }

    #[test]
    fn single_flight_hands_out_one_ticket_and_wakes_waiters() {
        let cache = Arc::new(MaskCache::new(8));
        let k = key(0, 7);
        let Lookup::Miss(ticket) = MaskCache::lookup(&cache, k) else {
            panic!("first lookup must miss");
        };
        let waiters: Vec<_> = (0..4)
            .map(|_| {
                let cache = Arc::clone(&cache);
                thread::spawn(move || match MaskCache::lookup(&cache, k) {
                    Lookup::Hit(v) => v,
                    Lookup::Miss(_) => panic!("waiter must not become a searcher"),
                })
            })
            .collect();
        // Give the waiters time to block behind the in-flight key.
        thread::sleep(std::time::Duration::from_millis(30));
        ticket.complete(mask(5));
        for w in waiters {
            assert_eq!(w.join().expect("waiter").mask, mask(5).mask);
        }
        let stats = cache.stats();
        assert_eq!(stats.misses, 1, "exactly one search for the flight group");
        assert_eq!(stats.hits, 4);
    }

    #[test]
    fn abandoned_ticket_promotes_a_waiter_to_searcher() {
        let cache = Arc::new(MaskCache::new(8));
        let k = key(0, 8);
        let Lookup::Miss(ticket) = MaskCache::lookup(&cache, k) else {
            panic!("first lookup must miss");
        };
        let waiter = {
            let cache = Arc::clone(&cache);
            thread::spawn(move || match MaskCache::lookup(&cache, k) {
                Lookup::Miss(t) => {
                    t.complete(mask(9));
                    true
                }
                Lookup::Hit(_) => false,
            })
        };
        thread::sleep(std::time::Duration::from_millis(30));
        drop(ticket); // searcher fails without a result
        assert!(waiter.join().expect("waiter"), "waiter takes over the key");
        assert_eq!(
            cache.peek(&k).expect("resolved by waiter").mask,
            mask(9).mask
        );
        assert_eq!(cache.stats().misses, 2);
    }

    /// Satellite regression: under a storm of concurrent lookups across
    /// overlapping keys — where searchers randomly *abandon* their
    /// tickets (simulating worker errors/panics mid-search) — the
    /// accounting must still balance: every lookup resolves as exactly
    /// one hit or one miss, and the LRU bound holds.
    #[test]
    fn stats_stay_consistent_under_abandoned_ticket_storm() {
        const THREADS: usize = 8;
        const ROUNDS: usize = 60;
        const KEYS: u64 = 12;
        const CAPACITY: usize = 6;

        let registry = adapt_obs::Registry::new();
        let cache = Arc::new(MaskCache::with_registry(CAPACITY, &registry));
        let handles: Vec<_> = (0..THREADS)
            .map(|t| {
                let cache = Arc::clone(&cache);
                thread::spawn(move || {
                    for r in 0..ROUNDS {
                        let k = key(0, ((t * ROUNDS + r) as u64 * 7) % KEYS);
                        match MaskCache::lookup(&cache, k) {
                            Lookup::Hit(_) => {}
                            Lookup::Miss(ticket) => {
                                // Roughly every third searcher abandons its
                                // ticket, forcing waiter promotion.
                                if (t + r) % 3 == 0 {
                                    drop(ticket);
                                } else {
                                    ticket.complete(mask(k.circuit_hash));
                                }
                            }
                        }
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().expect("storm thread");
        }

        let stats = cache.stats();
        assert_eq!(stats.lookups, (THREADS * ROUNDS) as u64);
        assert_eq!(
            stats.hits + stats.misses,
            stats.lookups,
            "every lookup resolves as exactly one hit or miss: {stats:?}"
        );
        assert!(
            stats.len <= CAPACITY,
            "LRU bound violated: {} > {CAPACITY}",
            stats.len
        );
        // The obs mirror must agree with the source-of-truth counters.
        let samples = adapt_obs::parse_prometheus(&registry.render_prometheus()).expect("parse");
        let get = |n: &str| adapt_obs::sample_value(&samples, n).unwrap_or(0.0) as u64;
        assert_eq!(get("adapt_service_cache_lookups_total"), stats.lookups);
        assert_eq!(get("adapt_service_cache_hits_total"), stats.hits);
        assert_eq!(get("adapt_service_cache_misses_total"), stats.misses);
    }
}
