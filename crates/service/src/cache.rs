//! Epoch-keyed mask cache with LRU bounds, single-flight deduplication,
//! a bounded stale store (stale-while-revalidate) and hot-key
//! accounting.
//!
//! ADAPT's value proposition is amortization: a mask search costs ≤ 4·N
//! decoy executions (PAPER §4.3), but the resulting mask stays valid for
//! a whole calibration epoch, so a serving layer should pay the search
//! once per `(device, epoch, circuit, protocol, decoy)` and answer every
//! later request from memory. The [`MaskCache`] implements exactly that
//! contract:
//!
//! - **Key**: [`MaskKey`] — device id, calibration epoch, *compiled*
//!   circuit structural hash, DD protocol and decoy mode. The structural
//!   hash covers the full timed event stream, so two programs share a
//!   mask only when their scheduled circuits are identical on this
//!   device+epoch.
//! - **LRU bounds**: a fixed capacity with least-recently-*used* eviction
//!   (mirroring the [`PlanCache`](machine::PlanCache) idiom one layer
//!   down).
//! - **Epoch invalidation**: when a device drifts to a new calibration
//!   epoch, [`MaskCache::invalidate_before`] removes every entry of older
//!   epochs from the serving map — stale masks must never be served *as
//!   fresh* (§6.4 shows they decay). The removed values move into a
//!   bounded **stale store** keyed by [`StaleKey`] (the epoch-independent
//!   identity of the program), where [`MaskCache::lookup_tiered`] may
//!   serve them explicitly tagged with their age while a background
//!   refiner runs the real search.
//! - **Single-flight**: [`MaskCache::lookup`] returns a [`SearchTicket`]
//!   to exactly one caller per missing key; concurrent requests for the
//!   same key block until that searcher completes (or abandons) instead
//!   of launching duplicate searches. An abandoned ticket (worker error
//!   or panic) wakes the waiters and the next one becomes the searcher.
//!   Stale-capable lookups reuse the same protocol: the *first* stale
//!   serve per key takes the ticket (handing it to the refiner), so a
//!   hot key never stampedes the worker pool with duplicate refines.
//! - **Hot-key accounting**: a bounded ring of recent lookup identities
//!   feeds [`MaskCache::hot_keys`], the top-K input of the proactive
//!   pre-epoch refresh.

use crate::registry::DeviceId;
use adapt::{DdMask, DdProtocol, DecoyKind};
use std::collections::{HashMap, HashSet, VecDeque};
use std::sync::{Arc, Condvar, Mutex, MutexGuard};

/// Default number of masks a [`MaskCache`] retains.
pub const DEFAULT_MASK_CACHE_CAPACITY: usize = 256;

/// Default bound of the superseded-epoch stale store.
pub const DEFAULT_STALE_CAPACITY: usize = 64;

/// Default length of the hot-key accounting ring.
pub const DEFAULT_HOT_RING_CAPACITY: usize = 128;

/// Cache key: everything the chosen mask depends on.
///
/// The request's search *budget* is deliberately absent: the first
/// searcher's budget decides the cached entry, and later requests with a
/// different budget still share it (a mask is a mask — re-searching the
/// same circuit at a different budget would defeat amortization).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct MaskKey {
    /// Target device.
    pub device: DeviceId,
    /// Calibration epoch of the device at request time.
    pub epoch: u64,
    /// [`machine::structural_hash`] of the compiled (timed) circuit.
    ///
    /// Deliberately the *structural* hash, not the machine's
    /// [`machine::routing_key`]: simulator routing (CHP vs state-vector)
    /// is an execution concern keyed inside the machine's own plan cache,
    /// while a mask is a property of the circuit and device alone — the
    /// same mask must be served regardless of which engine scored it.
    pub circuit_hash: u64,
    /// DD protocol the mask will be realized with.
    pub protocol: DdProtocol,
    /// Decoy construction mode used by the search.
    pub decoy: DecoyKind,
}

impl MaskKey {
    /// Stable 64-bit fingerprint, identical across processes and runs.
    ///
    /// Seeds the per-request backend stack: deriving the search seed from
    /// this fingerprint makes a fresh search a pure function of the key,
    /// which is what lets the service promise bit-identical responses
    /// whether a key is served from cache or recomputed.
    pub fn fingerprint(&self) -> u64 {
        let decoy_tag = match self.decoy {
            DecoyKind::Clifford => 1,
            DecoyKind::CnotOnly => 2,
            DecoyKind::Seeded { max_seed_qubits } => 0x100 | max_seed_qubits as u64,
        };
        let protocol_tag = format!("{:?}", self.protocol)
            .bytes()
            .fold(0xcbf2_9ce4_8422_2325u64, |h, b| {
                (h ^ b as u64).wrapping_mul(0x1000_0000_01b3)
            });
        let mut h = 0x9e37_79b9_7f4a_7c15u64;
        for word in [
            self.device.name().len() as u64 ^ protocol_tag,
            self.epoch,
            self.circuit_hash,
            decoy_tag,
        ] {
            h ^= word;
            h = h.wrapping_mul(0xff51_afd7_ed55_8ccd);
            h ^= h >> 33;
            h = h.wrapping_mul(0xc4ce_b9fe_1a85_ec53);
            h ^= h >> 33;
        }
        h
    }

    /// The epoch-independent identity of this key, using `logical_hash`
    /// (see [`logical_hash`]) as the program fingerprint.
    pub fn stale_key(&self, logical_hash: u64) -> StaleKey {
        StaleKey {
            device: self.device,
            logical_hash,
            protocol: self.protocol,
            decoy: self.decoy,
        }
    }

    /// A synthetic stale identity derived from the compiled-circuit hash.
    /// Used by the epoch-agnostic compatibility paths ([`MaskCache::lookup`],
    /// [`MaskCache::insert`]); such entries land in the stale store under
    /// an identity no tiered lookup will request, which is harmless.
    fn synthetic_stale_key(&self) -> StaleKey {
        self.stale_key(self.circuit_hash)
    }
}

/// Epoch-independent identity of a cached program: what a request at a
/// *newer* epoch shares with the superseded entry.
///
/// The compiled-circuit hash in [`MaskKey`] is calibration-dependent
/// (gate durations drift with the epoch), so cross-epoch matching keys
/// on the *logical* program instead: [`logical_hash`] of the submitted
/// circuit, before transpilation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct StaleKey {
    /// Target device.
    pub device: DeviceId,
    /// [`logical_hash`] of the submitted (pre-transpile) circuit.
    pub logical_hash: u64,
    /// DD protocol the mask will be realized with.
    pub protocol: DdProtocol,
    /// Decoy construction mode used by the search.
    pub decoy: DecoyKind,
}

/// Stable FNV-1a fingerprint of a *logical* (pre-transpile) circuit:
/// identical across processes, runs and calibration epochs, which is
/// exactly what cross-epoch stale matching needs. Uses the instruction
/// Debug rendering as the byte stream — deterministic for the closed
/// instruction set, and insensitive to scheduling (the logical circuit
/// has none).
pub fn logical_hash(circuit: &qcirc::Circuit) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    let mut mix = |bytes: &[u8]| {
        for &b in bytes {
            h = (h ^ b as u64).wrapping_mul(0x1000_0000_01b3);
        }
    };
    mix(&(circuit.num_qubits() as u64).to_le_bytes());
    mix(&(circuit.num_clbits() as u64).to_le_bytes());
    for instr in circuit.instructions() {
        mix(format!("{instr:?}").as_bytes());
    }
    h
}

/// A journaled cache mutation, emitted to the installed journal sink in
/// mutation order (the sink runs under the cache lock, so the write-ahead
/// journal's record order always matches the order the cache actually
/// changed in — the property WAL replay correctness rests on).
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum CacheEvent {
    /// A completed search entered the serving map.
    Insert {
        /// The resolved key.
        key: MaskKey,
        /// Its epoch-independent identity.
        stale_key: StaleKey,
        /// The published value.
        value: CachedMask,
    },
    /// Drift invalidation demoted every entry of `device` below
    /// `min_epoch` into the stale store.
    InvalidateBefore {
        /// The device that drifted.
        device: DeviceId,
        /// The new minimum fresh epoch.
        min_epoch: u64,
    },
}

/// The journal sink callback installed by `service::persist`. Must never
/// re-enter the cache: it runs under the cache lock.
pub type JournalSink = Arc<dyn Fn(&CacheEvent) + Send + Sync>;

/// A cached search outcome.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CachedMask {
    /// The selected mask.
    pub mask: DdMask,
    /// Decoy fidelity the selected mask scored during the search.
    pub decoy_fidelity: f64,
    /// Decoy executions the search attempted (≤ 4·N budget accounting).
    pub decoy_runs: usize,
    /// Whether any neighborhood degraded to its all-DD fallback.
    pub degraded: bool,
}

/// Effectiveness counters of a [`MaskCache`].
///
/// Accounting invariant: every lookup call resolves as exactly one hit,
/// one miss, or one stale serve (coalesced waiters eventually resolve
/// too — as a hit when the searcher published, or as the promoted
/// searcher's miss when it abandoned), so at quiescence
/// `hits + misses + stale_served == lookups`.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct MaskCacheStats {
    /// Lookup calls received (counted at entry; a lookup currently
    /// blocked behind an in-flight search is counted here but not yet
    /// in `hits`/`misses`).
    pub lookups: u64,
    /// Lookups answered from the cache.
    pub hits: u64,
    /// Lookups that became a search (one per single-flight group), or
    /// resolved cold without blocking on the fast path.
    pub misses: u64,
    /// Lookups answered from the stale store (superseded epoch, within
    /// the caller's staleness bound).
    pub stale_served: u64,
    /// Lookups that blocked behind an in-flight identical search instead
    /// of duplicating it.
    pub coalesced: u64,
    /// Entries evicted by the LRU bound.
    pub evictions: u64,
    /// Entries dropped from the serving map by epoch invalidation (they
    /// move to the stale store).
    pub invalidated: u64,
    /// Entries currently resident in the serving map.
    pub len: usize,
    /// Maximum resident entries.
    pub capacity: usize,
    /// Entries currently resident in the stale store.
    pub stale_len: usize,
    /// Maximum stale entries.
    pub stale_capacity: usize,
}

impl MaskCacheStats {
    /// Fraction of resolved lookups served without a fresh search.
    /// Coalesced waiters and stale serves count as served-from-cache:
    /// they did not pay for a search.
    pub fn hit_rate(&self) -> f64 {
        let served = self.hits + self.coalesced + self.stale_served;
        let total = served + self.misses;
        if total == 0 {
            0.0
        } else {
            served as f64 / total as f64
        }
    }
}

#[derive(Debug)]
struct Entry {
    value: CachedMask,
    last_used: u64,
    /// Epoch-independent identity, recorded at insert so invalidation
    /// can move the value into the stale store.
    stale_key: StaleKey,
}

#[derive(Debug, Clone, Copy)]
struct StaleEntry {
    value: CachedMask,
    /// Epoch the value was searched at.
    epoch: u64,
    /// Insertion tick, for oldest-first eviction.
    stored: u64,
}

#[derive(Debug, Default)]
struct Inner {
    map: HashMap<MaskKey, Entry>,
    inflight: HashSet<MaskKey>,
    /// Superseded-epoch values, servable within a caller's staleness
    /// bound while a refine search runs.
    stale: HashMap<StaleKey, StaleEntry>,
    /// Recent lookup identities, newest at the back (bounded).
    hot_ring: VecDeque<StaleKey>,
    tick: u64,
    lookups: u64,
    hits: u64,
    misses: u64,
    stale_served: u64,
    coalesced: u64,
    evictions: u64,
    invalidated: u64,
}

/// Observability mirrors of the cache counters (noop unless the cache
/// was built with [`MaskCache::with_registry`]).
#[derive(Default)]
struct CacheMetrics {
    lookups: adapt_obs::Counter,
    hits: adapt_obs::Counter,
    misses: adapt_obs::Counter,
    stale_served: adapt_obs::Counter,
    singleflight_waits: adapt_obs::Counter,
    evictions: adapt_obs::Counter,
    invalidated: adapt_obs::Counter,
    len: adapt_obs::Gauge,
    stale_len: adapt_obs::Gauge,
}

impl CacheMetrics {
    fn for_registry(r: &adapt_obs::Registry) -> Self {
        CacheMetrics {
            lookups: r.counter("adapt_service_cache_lookups_total"),
            hits: r.counter("adapt_service_cache_hits_total"),
            misses: r.counter("adapt_service_cache_misses_total"),
            stale_served: r.counter("adapt_service_cache_stale_served_total"),
            singleflight_waits: r.counter("adapt_service_cache_singleflight_waits_total"),
            evictions: r.counter("adapt_service_cache_evictions_total"),
            invalidated: r.counter("adapt_service_cache_invalidated_total"),
            len: r.gauge("adapt_service_cache_len"),
            stale_len: r.gauge("adapt_service_cache_stale_len"),
        }
    }
}

/// The shared mask cache (see module docs).
pub struct MaskCache {
    inner: Mutex<Inner>,
    /// Signalled when an in-flight search completes or abandons.
    resolved: Condvar,
    capacity: usize,
    stale_capacity: usize,
    hot_ring_capacity: usize,
    metrics: CacheMetrics,
    /// Write-ahead journal sink (see [`CacheEvent`]); `None` until the
    /// persistence layer installs one after recovery.
    journal: Mutex<Option<JournalSink>>,
}

impl std::fmt::Debug for MaskCache {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("MaskCache")
            .field("capacity", &self.capacity)
            .field("stale_capacity", &self.stale_capacity)
            .finish_non_exhaustive()
    }
}

/// Outcome of [`MaskCache::lookup`].
#[derive(Debug)]
pub enum Lookup {
    /// The key is cached (possibly after waiting out an in-flight search
    /// for it).
    Hit(CachedMask),
    /// This caller owns the search for the key. Every concurrent lookup
    /// of the same key now blocks until the ticket is completed or
    /// dropped.
    Miss(SearchTicket),
}

/// Outcome of [`MaskCache::lookup_tiered`] — [`Lookup`] plus the
/// stale-while-revalidate middle rung.
#[derive(Debug)]
pub enum TieredLookup {
    /// The key is cached at the requested epoch (possibly after waiting
    /// out an in-flight search).
    Hit(CachedMask),
    /// A superseded-epoch value within the caller's staleness bound.
    /// `refresh` is `Some` only for the *first* stale serve while no
    /// search is in flight for the key — the caller hands it to the
    /// background refiner; later stale serves of the same key get `None`
    /// (single-flight: the refine is already running or scheduled).
    Stale {
        /// The superseded value.
        value: CachedMask,
        /// How many epochs behind the requested key it is (≥ 1).
        age_epochs: u64,
        /// The refine ticket, for exactly one caller per flight group.
        refresh: Option<SearchTicket>,
    },
    /// This caller owns the search for the key.
    Miss(SearchTicket),
}

/// Outcome of the non-blocking [`MaskCache::lookup_fast`].
#[derive(Debug)]
pub enum FastLookup {
    /// The key is cached at the requested epoch.
    Hit(CachedMask),
    /// A superseded-epoch value within the staleness bound (see
    /// [`TieredLookup::Stale`]).
    Stale {
        /// The superseded value.
        value: CachedMask,
        /// How many epochs behind the requested key it is (≥ 1).
        age_epochs: u64,
        /// The refine ticket, for exactly one caller per flight group.
        refresh: Option<SearchTicket>,
    },
    /// Nothing servable without a search. The ticket is `Some` when this
    /// caller became the searcher (schedule a refine or drop it to
    /// release the key); `None` when a search is already in flight.
    Cold(Option<SearchTicket>),
}

/// Exclusive right (and obligation) to resolve one missing [`MaskKey`].
///
/// Call [`SearchTicket::complete`] with the search outcome; dropping the
/// ticket instead (error paths, panics) releases the key so a blocked
/// waiter can retry as the new searcher. Either way the waiters wake.
#[derive(Debug)]
pub struct SearchTicket {
    cache: Arc<MaskCache>,
    key: MaskKey,
    stale_key: StaleKey,
    done: bool,
}

impl SearchTicket {
    /// The key this ticket resolves.
    pub fn key(&self) -> MaskKey {
        self.key
    }

    /// The epoch-independent identity the resolved entry will carry.
    pub fn stale_key(&self) -> StaleKey {
        self.stale_key
    }

    /// Publishes the search outcome and wakes every waiter. The matching
    /// stale entry, if any, is dropped — the key is fresh again.
    pub fn complete(mut self, value: CachedMask) {
        self.done = true;
        let mut inner = self.cache.lock();
        inner.inflight.remove(&self.key);
        inner.stale.remove(&self.stale_key);
        self.cache.metrics.stale_len.set(inner.stale.len() as i64);
        let stale_key = self.stale_key;
        self.cache
            .insert_locked(&mut inner, self.key, value, stale_key);
        self.cache.emit(CacheEvent::Insert {
            key: self.key,
            stale_key,
            value,
        });
        self.cache.resolved.notify_all();
    }
}

impl Drop for SearchTicket {
    fn drop(&mut self) {
        if self.done {
            return;
        }
        // Abandoned (error or panic mid-search): release the key so a
        // waiter can take over, instead of deadlocking the flight group.
        let mut inner = self.cache.lock();
        inner.inflight.remove(&self.key);
        self.cache.resolved.notify_all();
    }
}

impl MaskCache {
    /// Creates a cache retaining at most `capacity` masks (min 1), with
    /// default stale-store and hot-ring bounds.
    pub fn new(capacity: usize) -> Self {
        MaskCache {
            inner: Mutex::new(Inner::default()),
            resolved: Condvar::new(),
            capacity: capacity.max(1),
            stale_capacity: DEFAULT_STALE_CAPACITY,
            hot_ring_capacity: DEFAULT_HOT_RING_CAPACITY,
            metrics: CacheMetrics::default(),
            journal: Mutex::new(None),
        }
    }

    /// Like [`Self::new`], but mirrors the counters into `registry` as
    /// `adapt_service_cache_*` metrics. The [`MaskCacheStats`] struct
    /// stays the source of truth; the registry is a read-only mirror.
    pub fn with_registry(capacity: usize, registry: &adapt_obs::Registry) -> Self {
        MaskCache {
            metrics: CacheMetrics::for_registry(registry),
            ..Self::new(capacity)
        }
    }

    /// Full-control constructor: serving capacity, stale-store bound and
    /// hot-ring length, with counters mirrored into `registry`.
    pub fn with_tiers(
        capacity: usize,
        stale_capacity: usize,
        hot_ring_capacity: usize,
        registry: &adapt_obs::Registry,
    ) -> Self {
        MaskCache {
            stale_capacity,
            hot_ring_capacity,
            ..Self::with_registry(capacity, registry)
        }
    }

    /// Resolves `key`: a hit, possibly after waiting for a concurrent
    /// searcher, or a [`SearchTicket`] making the caller the searcher.
    ///
    /// Epoch-agnostic compatibility path: equivalent to
    /// [`Self::lookup_tiered`] with a zero staleness bound (it never
    /// serves stale values).
    pub fn lookup(cache: &Arc<MaskCache>, key: MaskKey) -> Lookup {
        match Self::lookup_tiered(cache, key, key.synthetic_stale_key(), 0) {
            TieredLookup::Hit(v) => Lookup::Hit(v),
            TieredLookup::Miss(t) => Lookup::Miss(t),
            TieredLookup::Stale { .. } => {
                unreachable!("zero staleness bound never serves stale")
            }
        }
    }

    /// Resolves `key` through the full ladder: a fresh hit; else a
    /// superseded-epoch value under `stale_key` at most
    /// `max_stale_epochs` behind (served immediately, *without* blocking
    /// behind an in-flight refine); else the single-flight protocol of
    /// [`Self::lookup`].
    pub fn lookup_tiered(
        cache: &Arc<MaskCache>,
        key: MaskKey,
        stale_key: StaleKey,
        max_stale_epochs: u64,
    ) -> TieredLookup {
        let mut inner = cache.lock();
        inner.lookups += 1;
        cache.metrics.lookups.inc();
        cache.record_hot(&mut inner, stale_key);
        let mut waited = false;
        loop {
            inner.tick += 1;
            let tick = inner.tick;
            if let Some(entry) = inner.map.get_mut(&key) {
                entry.last_used = tick;
                let value = entry.value;
                inner.hits += 1;
                cache.metrics.hits.inc();
                return TieredLookup::Hit(value);
            }
            if let Some((value, age)) = stale_within(&inner, &key, &stale_key, max_stale_epochs) {
                inner.stale_served += 1;
                cache.metrics.stale_served.inc();
                // First stale serve per flight group takes the refine
                // ticket; while the refine is in flight, later stale
                // serves answer immediately with no ticket (that is the
                // anti-stampede guarantee).
                let refresh = inner.inflight.insert(key).then(|| SearchTicket {
                    cache: Arc::clone(cache),
                    key,
                    stale_key,
                    done: false,
                });
                return TieredLookup::Stale {
                    value,
                    age_epochs: age,
                    refresh,
                };
            }
            if inner.inflight.insert(key) {
                inner.misses += 1;
                cache.metrics.misses.inc();
                return TieredLookup::Miss(SearchTicket {
                    cache: Arc::clone(cache),
                    key,
                    stale_key,
                    done: false,
                });
            }
            // `insert` returned false: someone else is searching this key.
            if !waited {
                waited = true;
                inner.coalesced += 1;
                cache.metrics.singleflight_waits.inc();
            }
            inner = cache
                .resolved
                .wait(inner)
                .unwrap_or_else(|poisoned| poisoned.into_inner());
        }
    }

    /// The non-blocking ladder for deadline-bound callers: a fresh hit,
    /// a within-bound stale value, or `Cold` — never waits behind an
    /// in-flight search. A `Cold(Some(ticket))` caller became the
    /// searcher (hand the ticket to the refiner, or drop it); a
    /// `Cold(None)` caller found a search already in flight and should
    /// answer from tier 0.
    pub fn lookup_fast(
        cache: &Arc<MaskCache>,
        key: MaskKey,
        stale_key: StaleKey,
        max_stale_epochs: u64,
    ) -> FastLookup {
        let mut inner = cache.lock();
        inner.lookups += 1;
        cache.metrics.lookups.inc();
        cache.record_hot(&mut inner, stale_key);
        inner.tick += 1;
        let tick = inner.tick;
        if let Some(entry) = inner.map.get_mut(&key) {
            entry.last_used = tick;
            let value = entry.value;
            inner.hits += 1;
            cache.metrics.hits.inc();
            return FastLookup::Hit(value);
        }
        if let Some((value, age)) = stale_within(&inner, &key, &stale_key, max_stale_epochs) {
            inner.stale_served += 1;
            cache.metrics.stale_served.inc();
            let refresh = inner.inflight.insert(key).then(|| SearchTicket {
                cache: Arc::clone(cache),
                key,
                stale_key,
                done: false,
            });
            return FastLookup::Stale {
                value,
                age_epochs: age,
                refresh,
            };
        }
        inner.misses += 1;
        cache.metrics.misses.inc();
        let ticket = inner.inflight.insert(key).then(|| SearchTicket {
            cache: Arc::clone(cache),
            key,
            stale_key,
            done: false,
        });
        FastLookup::Cold(ticket)
    }

    /// Tries to become the searcher for `key` without counting a lookup:
    /// `None` when the key is already cached or in flight. The prewarm
    /// path uses this to schedule next-epoch refines without disturbing
    /// the serving counters.
    pub fn try_ticket(
        cache: &Arc<MaskCache>,
        key: MaskKey,
        stale_key: StaleKey,
    ) -> Option<SearchTicket> {
        let mut inner = cache.lock();
        if inner.map.contains_key(&key) {
            return None;
        }
        inner.inflight.insert(key).then(|| SearchTicket {
            cache: Arc::clone(cache),
            key,
            stale_key,
            done: false,
        })
    }

    /// Inserts or refreshes `key` outside the single-flight protocol
    /// (tests, warm-up). Production paths go through the lookup family.
    pub fn insert(&self, key: MaskKey, value: CachedMask) {
        let mut inner = self.lock();
        let stale_key = key.synthetic_stale_key();
        self.insert_locked(&mut inner, key, value, stale_key);
        self.emit(CacheEvent::Insert {
            key,
            stale_key,
            value,
        });
    }

    /// Peeks at `key` without touching LRU order or counters.
    pub fn peek(&self, key: &MaskKey) -> Option<CachedMask> {
        self.lock().map.get(key).map(|e| e.value)
    }

    /// Peeks at the stale store under `stale_key` without counters;
    /// returns the value and the epoch it was searched at.
    pub fn peek_stale(&self, stale_key: &StaleKey) -> Option<(CachedMask, u64)> {
        self.lock().stale.get(stale_key).map(|s| (s.value, s.epoch))
    }

    /// Every resident `(key, value)` of the serving map, in unspecified
    /// order. Test/bench introspection — the tiered harness uses it to
    /// assert that no heuristic or stale answer (zero `decoy_runs`) was
    /// ever cached as a fresh search result.
    pub fn entries(&self) -> Vec<(MaskKey, CachedMask)> {
        self.lock().map.iter().map(|(k, e)| (*k, e.value)).collect()
    }

    /// Removes every serving-map entry of `device` with an epoch below
    /// `min_epoch` (drift-triggered invalidation) and moves the removed
    /// values into the bounded stale store (newest epoch wins per
    /// identity; oldest entries evicted at the bound). Returns how many
    /// map entries were removed.
    pub fn invalidate_before(&self, device: DeviceId, min_epoch: u64) -> usize {
        let mut inner = self.lock();
        inner.tick += 1;
        let tick = inner.tick;
        let stale_cap = self.stale_capacity;
        let mut moved: Vec<(StaleKey, StaleEntry)> = Vec::new();
        inner.map.retain(|k, e| {
            let drop = k.device == device && k.epoch < min_epoch;
            if drop {
                moved.push((
                    e.stale_key,
                    StaleEntry {
                        value: e.value,
                        epoch: k.epoch,
                        stored: tick,
                    },
                ));
            }
            !drop
        });
        let dropped = moved.len();
        if stale_cap > 0 {
            for (sk, se) in moved {
                // Never let an older epoch shadow a newer stale value.
                match inner.stale.get(&sk) {
                    Some(prev) if prev.epoch >= se.epoch => {}
                    _ => {
                        inner.stale.insert(sk, se);
                    }
                }
            }
            Self::evict_stale_over(&mut inner, stale_cap);
        }
        inner.invalidated += dropped as u64;
        self.metrics.invalidated.add(dropped as u64);
        self.metrics.len.set(inner.map.len() as i64);
        self.metrics.stale_len.set(inner.stale.len() as i64);
        // Journaled even when nothing dropped: recovery replays the
        // registry's epoch advance from this record, and an advance on a
        // device with no cached entries must still survive a restart.
        self.emit(CacheEvent::InvalidateBefore { device, min_epoch });
        dropped
    }

    /// Installs (or clears) the write-ahead journal sink. The sink runs
    /// under the cache lock on every insert and invalidation; it must
    /// never re-enter the cache. The persistence layer installs it only
    /// *after* recovery, so restores are never re-journaled.
    pub fn set_journal(&self, sink: Option<JournalSink>) {
        *self
            .journal
            .lock()
            .unwrap_or_else(|poisoned| poisoned.into_inner()) = sink;
    }

    fn emit(&self, ev: CacheEvent) {
        let sink = self
            .journal
            .lock()
            .unwrap_or_else(|poisoned| poisoned.into_inner());
        if let Some(sink) = sink.as_ref() {
            sink(&ev);
        }
    }

    /// Runs `f` on a consistent export of the serving map and stale
    /// store while holding the cache lock, so no mutation (or journal
    /// event) can interleave with the exported state. Both exports are
    /// deterministically ordered — warm by LRU tick, stale by insertion
    /// order — so restoring them in sequence reproduces the eviction
    /// order of the original cache, and two identical runs produce
    /// byte-identical snapshots.
    pub fn with_export<T>(
        &self,
        f: impl FnOnce(&[(MaskKey, StaleKey, CachedMask)], &[(StaleKey, CachedMask, u64)]) -> T,
    ) -> T {
        let inner = self.lock();
        let mut warm: Vec<(u64, (MaskKey, StaleKey, CachedMask))> = inner
            .map
            .iter()
            .map(|(k, e)| (e.last_used, (*k, e.stale_key, e.value)))
            .collect();
        warm.sort_by_key(|&(tick, _)| tick);
        let warm: Vec<_> = warm.into_iter().map(|(_, row)| row).collect();
        type StaleRank = (u64, u64, u64, &'static str, u64);
        let mut stale: Vec<(StaleRank, (StaleKey, CachedMask, u64))> = inner
            .stale
            .iter()
            .map(|(k, s)| {
                (
                    // Entries demoted by one invalidation share a
                    // `stored` tick; the remaining fields break the
                    // tie deterministically.
                    (
                        s.stored,
                        s.epoch,
                        k.logical_hash,
                        k.device.name(),
                        kind_rank(k),
                    ),
                    (*k, s.value, s.epoch),
                )
            })
            .collect();
        stale.sort_by(|a, b| a.0.cmp(&b.0));
        let stale: Vec<_> = stale.into_iter().map(|(_, row)| row).collect();
        let out = f(&warm, &stale);
        drop(inner);
        out
    }

    /// Reinserts a recovered entry into the serving map. Recovery-only:
    /// unlike [`Self::insert`] this never emits a journal event (the
    /// sink is not installed yet, and a restore must not re-journal
    /// itself into the fresh WAL).
    pub fn restore_warm(&self, key: MaskKey, stale_key: StaleKey, value: CachedMask) {
        let mut inner = self.lock();
        self.insert_locked(&mut inner, key, value, stale_key);
    }

    /// Reinserts a recovered (or demoted) entry into the stale store,
    /// honoring the newest-epoch-wins rule and the capacity bound.
    /// Returns whether the value was stored. Recovery-only; never emits
    /// a journal event.
    pub fn restore_stale(&self, key: StaleKey, value: CachedMask, epoch: u64) -> bool {
        if self.stale_capacity == 0 {
            return false;
        }
        let mut inner = self.lock();
        inner.tick += 1;
        let stored = inner.tick;
        match inner.stale.get(&key) {
            Some(prev) if prev.epoch >= epoch => return false,
            _ => {
                inner.stale.insert(
                    key,
                    StaleEntry {
                        value,
                        epoch,
                        stored,
                    },
                );
            }
        }
        Self::evict_stale_over(&mut inner, self.stale_capacity);
        self.metrics.stale_len.set(inner.stale.len() as i64);
        true
    }

    fn evict_stale_over(inner: &mut Inner, cap: usize) {
        while inner.stale.len() > cap {
            if let Some(&oldest) = inner
                .stale
                .iter()
                .min_by_key(|(_, s)| (s.stored, s.epoch))
                .map(|(k, _)| k)
            {
                inner.stale.remove(&oldest);
            } else {
                break;
            }
        }
    }

    /// The top-`k` hottest identities of `device`, by occurrence count in
    /// the bounded lookup ring (ties broken by first appearance, so the
    /// ordering is deterministic for a deterministic request sequence).
    pub fn hot_keys(&self, device: DeviceId, k: usize) -> Vec<StaleKey> {
        let inner = self.lock();
        let mut counts: Vec<(StaleKey, usize, usize)> = Vec::new();
        for (idx, sk) in inner.hot_ring.iter().enumerate() {
            if sk.device != device {
                continue;
            }
            match counts.iter_mut().find(|(key, _, _)| key == sk) {
                Some((_, n, _)) => *n += 1,
                None => counts.push((*sk, 1, idx)),
            }
        }
        counts.sort_by(|a, b| b.1.cmp(&a.1).then(a.2.cmp(&b.2)));
        counts.into_iter().take(k).map(|(sk, _, _)| sk).collect()
    }

    /// Current effectiveness counters.
    pub fn stats(&self) -> MaskCacheStats {
        let inner = self.lock();
        MaskCacheStats {
            lookups: inner.lookups,
            hits: inner.hits,
            misses: inner.misses,
            stale_served: inner.stale_served,
            coalesced: inner.coalesced,
            evictions: inner.evictions,
            invalidated: inner.invalidated,
            len: inner.map.len(),
            capacity: self.capacity,
            stale_len: inner.stale.len(),
            stale_capacity: self.stale_capacity,
        }
    }

    fn record_hot(&self, inner: &mut Inner, stale_key: StaleKey) {
        if self.hot_ring_capacity == 0 {
            return;
        }
        if inner.hot_ring.len() >= self.hot_ring_capacity {
            inner.hot_ring.pop_front();
        }
        inner.hot_ring.push_back(stale_key);
    }

    fn insert_locked(
        &self,
        inner: &mut Inner,
        key: MaskKey,
        value: CachedMask,
        stale_key: StaleKey,
    ) {
        inner.tick += 1;
        let tick = inner.tick;
        if inner.map.len() >= self.capacity && !inner.map.contains_key(&key) {
            if let Some(&lru) = inner
                .map
                .iter()
                .min_by_key(|(_, e)| e.last_used)
                .map(|(k, _)| k)
            {
                inner.map.remove(&lru);
                inner.evictions += 1;
                self.metrics.evictions.inc();
            }
        }
        inner.map.insert(
            key,
            Entry {
                value,
                last_used: tick,
                stale_key,
            },
        );
        self.metrics.len.set(inner.map.len() as i64);
    }

    fn lock(&self) -> MutexGuard<'_, Inner> {
        // Recover from poisoning: the cache's invariants hold under any
        // interleaving of the (short, panic-free) critical sections, and
        // a worker panic elsewhere must not take the whole service down.
        self.inner
            .lock()
            .unwrap_or_else(|poisoned| poisoned.into_inner())
    }
}

/// Deterministic ordering rank of a [`StaleKey`]'s protocol + decoy,
/// used only to break export-sort ties (see [`MaskCache::with_export`]).
fn kind_rank(key: &StaleKey) -> u64 {
    let p = match key.protocol {
        DdProtocol::Xy4 => 0,
        DdProtocol::IbmqDd => 1,
        DdProtocol::Cpmg => 2,
        DdProtocol::Xy8 => 3,
        DdProtocol::Udd { pulses } => 4 + pulses as u64,
    };
    let d = match key.decoy {
        DecoyKind::Clifford => 0,
        DecoyKind::CnotOnly => 1,
        DecoyKind::Seeded { max_seed_qubits } => 2 + max_seed_qubits as u64,
    };
    (p << 32) | (d & 0xFFFF_FFFF)
}

/// The stale value servable for `key` under `stale_key`, if one exists
/// within `max_stale_epochs`, with its age.
fn stale_within(
    inner: &Inner,
    key: &MaskKey,
    stale_key: &StaleKey,
    max_stale_epochs: u64,
) -> Option<(CachedMask, u64)> {
    if max_stale_epochs == 0 {
        return None;
    }
    let s = inner.stale.get(stale_key)?;
    if s.epoch >= key.epoch {
        return None;
    }
    let age = key.epoch - s.epoch;
    (age <= max_stale_epochs).then_some((s.value, age))
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::thread;

    fn key(epoch: u64, hash: u64) -> MaskKey {
        MaskKey {
            device: DeviceId::Rome,
            epoch,
            circuit_hash: hash,
            protocol: DdProtocol::Xy4,
            decoy: DecoyKind::Seeded { max_seed_qubits: 4 },
        }
    }

    fn mask(bits: u64) -> CachedMask {
        CachedMask {
            mask: DdMask::from_bits(bits, 5),
            decoy_fidelity: 0.9,
            decoy_runs: 20,
            degraded: false,
        }
    }

    #[test]
    fn fingerprint_is_stable_and_key_sensitive() {
        let a = key(0, 42).fingerprint();
        assert_eq!(a, key(0, 42).fingerprint());
        assert_ne!(a, key(1, 42).fingerprint());
        assert_ne!(a, key(0, 43).fingerprint());
        let mut other = key(0, 42);
        other.protocol = DdProtocol::Cpmg;
        assert_ne!(a, other.fingerprint());
    }

    #[test]
    fn logical_hash_is_stable_and_circuit_sensitive() {
        let mut a = qcirc::Circuit::new(3);
        a.h(0).cx(0, 1).cx(1, 2).measure_all();
        let mut b = qcirc::Circuit::new(3);
        b.h(0).cx(0, 1).cx(1, 2).measure_all();
        assert_eq!(logical_hash(&a), logical_hash(&b));
        let mut c = qcirc::Circuit::new(3);
        c.h(0).cx(0, 2).cx(1, 2).measure_all();
        assert_ne!(logical_hash(&a), logical_hash(&c));
        let empty4 = qcirc::Circuit::new(4);
        let empty5 = qcirc::Circuit::new(5);
        assert_ne!(logical_hash(&empty4), logical_hash(&empty5));
    }

    #[test]
    fn lru_evicts_least_recently_used() {
        let cache = Arc::new(MaskCache::new(2));
        cache.insert(key(0, 1), mask(1));
        cache.insert(key(0, 2), mask(2));
        // Touch key 1 so key 2 is the LRU victim.
        assert!(matches!(
            MaskCache::lookup(&cache, key(0, 1)),
            Lookup::Hit(_)
        ));
        cache.insert(key(0, 3), mask(3));
        assert!(cache.peek(&key(0, 1)).is_some());
        assert!(cache.peek(&key(0, 2)).is_none());
        assert_eq!(cache.stats().evictions, 1);
    }

    #[test]
    fn epoch_invalidation_drops_only_stale_entries() {
        let cache = Arc::new(MaskCache::new(8));
        cache.insert(key(0, 1), mask(1));
        cache.insert(key(0, 2), mask(2));
        cache.insert(key(1, 1), mask(3));
        let mut other_dev = key(0, 9);
        other_dev.device = DeviceId::London;
        cache.insert(other_dev, mask(4));

        assert_eq!(cache.invalidate_before(DeviceId::Rome, 1), 2);
        assert!(cache.peek(&key(1, 1)).is_some());
        assert!(cache.peek(&other_dev).is_some(), "other devices untouched");
        assert_eq!(cache.stats().invalidated, 2);
    }

    #[test]
    fn single_flight_hands_out_one_ticket_and_wakes_waiters() {
        let cache = Arc::new(MaskCache::new(8));
        let k = key(0, 7);
        let Lookup::Miss(ticket) = MaskCache::lookup(&cache, k) else {
            panic!("first lookup must miss");
        };
        let waiters: Vec<_> = (0..4)
            .map(|_| {
                let cache = Arc::clone(&cache);
                thread::spawn(move || match MaskCache::lookup(&cache, k) {
                    Lookup::Hit(v) => v,
                    Lookup::Miss(_) => panic!("waiter must not become a searcher"),
                })
            })
            .collect();
        // Give the waiters time to block behind the in-flight key.
        thread::sleep(std::time::Duration::from_millis(30));
        ticket.complete(mask(5));
        for w in waiters {
            assert_eq!(w.join().expect("waiter").mask, mask(5).mask);
        }
        let stats = cache.stats();
        assert_eq!(stats.misses, 1, "exactly one search for the flight group");
        assert_eq!(stats.hits, 4);
    }

    #[test]
    fn abandoned_ticket_promotes_a_waiter_to_searcher() {
        let cache = Arc::new(MaskCache::new(8));
        let k = key(0, 8);
        let Lookup::Miss(ticket) = MaskCache::lookup(&cache, k) else {
            panic!("first lookup must miss");
        };
        let waiter = {
            let cache = Arc::clone(&cache);
            thread::spawn(move || match MaskCache::lookup(&cache, k) {
                Lookup::Miss(t) => {
                    t.complete(mask(9));
                    true
                }
                Lookup::Hit(_) => false,
            })
        };
        thread::sleep(std::time::Duration::from_millis(30));
        drop(ticket); // searcher fails without a result
        assert!(waiter.join().expect("waiter"), "waiter takes over the key");
        assert_eq!(
            cache.peek(&k).expect("resolved by waiter").mask,
            mask(9).mask
        );
        assert_eq!(cache.stats().misses, 2);
    }

    /// Satellite regression: under a storm of concurrent lookups across
    /// overlapping keys — where searchers randomly *abandon* their
    /// tickets (simulating worker errors/panics mid-search) — the
    /// accounting must still balance: every lookup resolves as exactly
    /// one hit or one miss, and the LRU bound holds.
    #[test]
    fn stats_stay_consistent_under_abandoned_ticket_storm() {
        const THREADS: usize = 8;
        const ROUNDS: usize = 60;
        const KEYS: u64 = 12;
        const CAPACITY: usize = 6;

        let registry = adapt_obs::Registry::new();
        let cache = Arc::new(MaskCache::with_registry(CAPACITY, &registry));
        let handles: Vec<_> = (0..THREADS)
            .map(|t| {
                let cache = Arc::clone(&cache);
                thread::spawn(move || {
                    for r in 0..ROUNDS {
                        let k = key(0, ((t * ROUNDS + r) as u64 * 7) % KEYS);
                        match MaskCache::lookup(&cache, k) {
                            Lookup::Hit(_) => {}
                            Lookup::Miss(ticket) => {
                                // Roughly every third searcher abandons its
                                // ticket, forcing waiter promotion.
                                if (t + r) % 3 == 0 {
                                    drop(ticket);
                                } else {
                                    ticket.complete(mask(k.circuit_hash));
                                }
                            }
                        }
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().expect("storm thread");
        }

        let stats = cache.stats();
        assert_eq!(stats.lookups, (THREADS * ROUNDS) as u64);
        assert_eq!(
            stats.hits + stats.misses,
            stats.lookups,
            "every lookup resolves as exactly one hit or miss: {stats:?}"
        );
        assert!(
            stats.len <= CAPACITY,
            "LRU bound violated: {} > {CAPACITY}",
            stats.len
        );
        // The obs mirror must agree with the source-of-truth counters.
        let samples = adapt_obs::parse_prometheus(&registry.render_prometheus()).expect("parse");
        let get = |n: &str| adapt_obs::sample_value(&samples, n).unwrap_or(0.0) as u64;
        assert_eq!(get("adapt_service_cache_lookups_total"), stats.lookups);
        assert_eq!(get("adapt_service_cache_hits_total"), stats.hits);
        assert_eq!(get("adapt_service_cache_misses_total"), stats.misses);
    }

    fn stale_key_of(hash: u64) -> StaleKey {
        StaleKey {
            device: DeviceId::Rome,
            logical_hash: hash,
            protocol: DdProtocol::Xy4,
            decoy: DecoyKind::Seeded { max_seed_qubits: 4 },
        }
    }

    /// Insert a value at `epoch` under a real stale identity, via the
    /// tiered single-flight path.
    fn seed_tiered(cache: &Arc<MaskCache>, epoch: u64, hash: u64, value: CachedMask) {
        match MaskCache::lookup_tiered(cache, key(epoch, hash), stale_key_of(hash), 2) {
            TieredLookup::Miss(t) => t.complete(value),
            _ => panic!("seed must miss"),
        }
    }

    #[test]
    fn invalidation_moves_entries_to_the_stale_store_and_lookup_serves_them() {
        let registry = adapt_obs::Registry::new();
        let cache = Arc::new(MaskCache::with_tiers(8, 4, 16, &registry));
        seed_tiered(&cache, 0, 1, mask(3));
        assert_eq!(cache.invalidate_before(DeviceId::Rome, 1), 1);
        assert_eq!(cache.stats().stale_len, 1);

        // Within the bound: a stale serve carrying the refine ticket.
        let k1 = key(1, 99); // new epoch compiles to a new circuit hash
        match MaskCache::lookup_tiered(&cache, k1, stale_key_of(1), 2) {
            TieredLookup::Stale {
                value,
                age_epochs,
                refresh,
            } => {
                assert_eq!(value.mask, mask(3).mask);
                assert_eq!(age_epochs, 1);
                let ticket = refresh.expect("first stale serve takes the ticket");
                // Second stale lookup: served, but no duplicate ticket.
                match MaskCache::lookup_tiered(&cache, k1, stale_key_of(1), 2) {
                    TieredLookup::Stale { refresh: None, .. } => {}
                    other => panic!("expected deduped stale serve, got {other:?}"),
                }
                // The refine completes: the key is fresh, the stale entry gone.
                ticket.complete(mask(7));
            }
            other => panic!("expected stale serve, got {other:?}"),
        }
        assert!(matches!(
            MaskCache::lookup_tiered(&cache, k1, stale_key_of(1), 2),
            TieredLookup::Hit(v) if v.mask == mask(7).mask
        ));
        assert_eq!(cache.stats().stale_len, 0, "upgrade drops the stale entry");
        let stats = cache.stats();
        assert_eq!(
            stats.hits + stats.misses + stats.stale_served,
            stats.lookups,
            "tiered accounting must balance: {stats:?}"
        );
    }

    #[test]
    fn stale_serving_respects_the_age_bound() {
        let registry = adapt_obs::Registry::new();
        let cache = Arc::new(MaskCache::with_tiers(8, 4, 16, &registry));
        seed_tiered(&cache, 0, 1, mask(3));
        cache.invalidate_before(DeviceId::Rome, 1);
        // Age 3 exceeds the bound of 2: cold, caller becomes searcher.
        match MaskCache::lookup_tiered(&cache, key(3, 55), stale_key_of(1), 2) {
            TieredLookup::Miss(t) => drop(t),
            other => panic!("an over-age stale value must not serve: {other:?}"),
        }
        // A zero bound disables stale serving entirely.
        match MaskCache::lookup_tiered(&cache, key(1, 56), stale_key_of(1), 0) {
            TieredLookup::Miss(t) => drop(t),
            other => panic!("zero bound must never serve stale: {other:?}"),
        }
    }

    #[test]
    fn stale_store_is_bounded_oldest_first() {
        let registry = adapt_obs::Registry::new();
        let cache = Arc::new(MaskCache::with_tiers(8, 2, 16, &registry));
        for hash in 0..4u64 {
            seed_tiered(&cache, 0, hash, mask(hash));
        }
        cache.invalidate_before(DeviceId::Rome, 1);
        assert_eq!(cache.stats().stale_len, 2, "stale store holds its bound");
    }

    #[test]
    fn lookup_fast_never_blocks_and_hands_out_one_cold_ticket() {
        let registry = adapt_obs::Registry::new();
        let cache = Arc::new(MaskCache::with_tiers(8, 4, 16, &registry));
        let k = key(0, 5);
        let sk = stale_key_of(5);
        let FastLookup::Cold(Some(ticket)) = MaskCache::lookup_fast(&cache, k, sk, 2) else {
            panic!("cold fast lookup must take the ticket");
        };
        // While the search is in flight, fast lookups stay non-blocking.
        assert!(matches!(
            MaskCache::lookup_fast(&cache, k, sk, 2),
            FastLookup::Cold(None)
        ));
        ticket.complete(mask(9));
        assert!(matches!(
            MaskCache::lookup_fast(&cache, k, sk, 2),
            FastLookup::Hit(v) if v.mask == mask(9).mask
        ));
        let stats = cache.stats();
        assert_eq!(
            stats.hits + stats.misses + stats.stale_served,
            stats.lookups
        );
    }

    #[test]
    fn try_ticket_skips_cached_and_inflight_keys_without_counting() {
        let registry = adapt_obs::Registry::new();
        let cache = Arc::new(MaskCache::with_tiers(8, 4, 16, &registry));
        let k = key(1, 6);
        let sk = stale_key_of(6);
        let t = MaskCache::try_ticket(&cache, k, sk).expect("first taker wins");
        assert!(MaskCache::try_ticket(&cache, k, sk).is_none(), "in flight");
        t.complete(mask(2));
        assert!(MaskCache::try_ticket(&cache, k, sk).is_none(), "cached");
        assert_eq!(cache.stats().lookups, 0, "prewarm path counts no lookups");
    }

    #[test]
    fn hot_keys_ranks_by_frequency_then_first_seen() {
        let registry = adapt_obs::Registry::new();
        let cache = Arc::new(MaskCache::with_tiers(8, 4, 8, &registry));
        let serve =
            |hash: u64| match MaskCache::lookup_tiered(&cache, key(0, hash), stale_key_of(hash), 0)
            {
                TieredLookup::Miss(t) => t.complete(mask(hash)),
                TieredLookup::Hit(_) => {}
                other => panic!("unexpected {other:?}"),
            };
        for hash in [1u64, 2, 1, 3, 1, 2] {
            serve(hash);
        }
        let hot = cache.hot_keys(DeviceId::Rome, 2);
        assert_eq!(
            hot.iter().map(|sk| sk.logical_hash).collect::<Vec<_>>(),
            vec![1, 2]
        );
        assert!(cache.hot_keys(DeviceId::London, 4).is_empty());
        // The ring is bounded: old observations age out.
        for hash in [4u64, 4, 4, 4, 4, 4, 4, 4] {
            serve(hash);
        }
        assert_eq!(cache.hot_keys(DeviceId::Rome, 1)[0].logical_hash, 4);
    }
}
