//! The mask-recommendation service: bounded queue, worker pool,
//! admission control and provenance-carrying responses.
//!
//! # Determinism contract
//!
//! Every fresh search runs on a backend stack built *per request* and
//! seeded purely from the request's [`MaskKey`] fingerprint and the
//! service seed: a fresh [`FaultyBackend`] over a clone of the device's
//! epoch machine, wrapped in a [`ResilientExecutor`]. The search outcome
//! is therefore a pure function of `(service seed, key, budget)` — two
//! services built from the same seed return bit-identical masks and
//! fidelities for the same key, whether the answer comes from cache or a
//! fresh search, and regardless of worker count, queue order or which
//! worker picks the job up.
//!
//! # Failure containment
//!
//! Worker panics are caught per request: the client gets a typed
//! [`ServiceError::Internal`], the panic counter increments, and the
//! worker thread keeps serving. A panicking searcher's
//! [`SearchTicket`](crate::cache::SearchTicket) is released by its Drop
//! impl, so blocked waiters never deadlock — one of them becomes the new
//! searcher.

use crate::breaker::{Admission, BreakerConfig, BreakerState, HealthTracker, Transition};
use crate::cache::{
    logical_hash, CachedMask, FastLookup, MaskCache, MaskCacheStats, MaskKey, SearchTicket,
    StaleKey, TieredLookup,
};
use crate::persist::{PersistConfig, PersistStats, Persister, RecoveryReport};
use crate::registry::{DeviceId, DeviceRegistry};
use crate::sched::TenantScheduler;
use crate::tenancy::{QuotaBook, Tenancy, TenancyConfig, TenantId};
use adapt::decoy::make_decoy;
use adapt::{
    heuristic_mask, Adapt, AdaptConfig, AdaptError, DdConfig, DdMask, DdProtocol, DecoyKind,
    HeuristicConfig, Policy,
};
use machine::{
    Deadline, ExecutionConfig, FaultProfile, FaultyBackend, Machine, ResilientExecutor, RetryPolicy,
};
use std::collections::{BTreeMap, HashMap, VecDeque};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::mpsc::{channel, Receiver, Sender};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};
use transpiler::{transpile, TranspileOptions};

/// Which rungs of the degradation ladder a request may use.
///
/// The ladder (DESIGN §13) orders answers by cost and quality: a cached
/// fresh mask beats a within-bound stale mask beats the calibration-only
/// heuristic beats all-DD. [`TierPolicy::Auto`] walks it by deadline;
/// the pinned policies exist for callers with hard requirements
/// (benchmark baselines want search-only; an interactive explorer may
/// want heuristic-only).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub enum TierPolicy {
    /// Serve from whichever tier the deadline affords: inline search
    /// when the remaining budget is at least the service's
    /// [`TierConfig::min_search_ms`], otherwise a stale or heuristic
    /// answer immediately (scheduling a background refine).
    #[default]
    Auto,
    /// Never search inline *or* in the background for this request:
    /// cache hit, within-bound stale value, or the heuristic answer.
    HeuristicOnly,
    /// Never serve stale or heuristic answers: cache hit or inline
    /// search, exactly the pre-ladder behavior.
    SearchOnly,
}

/// Decoy-execution budget of one mask search.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SearchBudget {
    /// Shots per decoy evaluation.
    pub shots: u64,
    /// Noise trajectories per decoy evaluation.
    pub trajectories: u32,
    /// Localized-search neighborhood size (4 in the paper).
    pub neighborhood: usize,
    /// Which tiers of the degradation ladder this request may use.
    pub tier: TierPolicy,
}

impl Default for SearchBudget {
    fn default() -> Self {
        SearchBudget {
            shots: 256,
            trajectories: 8,
            neighborhood: 4,
            tier: TierPolicy::default(),
        }
    }
}

/// A [`SearchBudget`] the service cannot run a search with.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BudgetError {
    /// `shots == 0`: every decoy evaluation would measure nothing.
    ZeroShots,
    /// `trajectories == 0`: no noise trajectory would ever run.
    ZeroTrajectories,
    /// `neighborhood == 0`: the localized search would sweep no masks.
    ZeroNeighborhood,
}

impl std::fmt::Display for BudgetError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            BudgetError::ZeroShots => {
                write!(
                    f,
                    "search budget has shots = 0: decoys would measure nothing"
                )
            }
            BudgetError::ZeroTrajectories => write!(
                f,
                "search budget has trajectories = 0: no decoy execution would run"
            ),
            BudgetError::ZeroNeighborhood => write!(
                f,
                "search budget has neighborhood = 0: the localized search would sweep no masks"
            ),
        }
    }
}

impl std::error::Error for BudgetError {}

impl SearchBudget {
    /// Rejects budgets no search can run with (mirroring
    /// [`RetryPolicy::validate`]). A [`TierPolicy::HeuristicOnly`]
    /// budget is exempt from the search-parameter checks — it never
    /// searches, so zero decoy parameters are not contradictory for it.
    ///
    /// # Errors
    ///
    /// The first violation found, as a typed [`BudgetError`].
    pub fn validate(&self) -> Result<(), BudgetError> {
        if self.tier == TierPolicy::HeuristicOnly {
            return Ok(());
        }
        if self.shots == 0 {
            return Err(BudgetError::ZeroShots);
        }
        if self.trajectories == 0 {
            return Err(BudgetError::ZeroTrajectories);
        }
        if self.neighborhood == 0 {
            return Err(BudgetError::ZeroNeighborhood);
        }
        Ok(())
    }
}

/// Tuning of the degradation ladder (tiers 0–2). The defaults disable
/// every new behavior — `min_search_ms = 0` means [`TierPolicy::Auto`]
/// always searches inline and `max_stale_epochs = 0` means nothing is
/// ever served stale — so a config that never mentions tiers behaves
/// exactly like the pre-ladder service, bit for bit.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TierConfig {
    /// Minimum remaining deadline (ms) for an [`TierPolicy::Auto`]
    /// request to attempt an inline search; below it the request is
    /// answered from cache/stale/heuristic without blocking. `0`
    /// disables the downgrade entirely.
    pub min_search_ms: u64,
    /// How many epochs behind a superseded cache value may be and still
    /// be served as [`Provenance::StaleServed`]. `0` disables stale
    /// serving.
    pub max_stale_epochs: u64,
    /// Bound of the superseded-epoch stale store.
    pub stale_capacity: usize,
    /// Bound of the background-refine lane; refines past it are dropped
    /// (their single-flight tickets released) rather than queued without
    /// limit.
    pub refine_queue_capacity: usize,
    /// How many workers may run refine searches at once. Refines are
    /// strictly lower priority than client jobs: a worker only picks one
    /// up when the client queue is empty.
    pub refine_concurrency: usize,
    /// Length of the cache's hot-key accounting ring (top-K input of
    /// the proactive pre-epoch refresh).
    pub hot_ring_capacity: usize,
    /// How many hot keys [`MaskService::prewarm_epoch`] re-characterizes
    /// against the next epoch's calibration.
    pub prewarm_top_k: usize,
    /// Thresholds of the tier-0 calibration-only heuristic.
    pub heuristic: HeuristicConfig,
}

impl Default for TierConfig {
    fn default() -> Self {
        TierConfig {
            min_search_ms: 0,
            max_stale_epochs: 0,
            stale_capacity: crate::cache::DEFAULT_STALE_CAPACITY,
            refine_queue_capacity: 8,
            refine_concurrency: 1,
            hot_ring_capacity: crate::cache::DEFAULT_HOT_RING_CAPACITY,
            prewarm_top_k: 4,
            heuristic: HeuristicConfig::default(),
        }
    }
}

impl TierConfig {
    /// Rejects ladder tunings that contradict themselves.
    ///
    /// # Errors
    ///
    /// A description of the first violation found.
    pub fn validate(&self) -> Result<(), String> {
        if self.max_stale_epochs > 0 && self.stale_capacity == 0 {
            return Err(format!(
                "contradictory tier config: max_stale_epochs = {} but the stale store \
                 has capacity 0 — nothing could ever be served stale",
                self.max_stale_epochs
            ));
        }
        if self.prewarm_top_k > 0 && self.hot_ring_capacity == 0 {
            return Err(format!(
                "contradictory tier config: prewarm_top_k = {} but the hot-key ring \
                 has capacity 0 — there would never be a hot key to prewarm",
                self.prewarm_top_k
            ));
        }
        if self.refine_queue_capacity > 0 && self.refine_concurrency == 0 {
            return Err(format!(
                "contradictory tier config: refine_queue_capacity = {} but \
                 refine_concurrency = 0 — queued refines could never run",
                self.refine_queue_capacity
            ));
        }
        self.heuristic
            .validate()
            .map_err(|e| format!("invalid heuristic thresholds: {e}"))
    }
}

/// Service configuration.
#[derive(Debug, Clone)]
pub struct ServiceConfig {
    /// Devices to register (each starts at calibration epoch 0).
    pub devices: Vec<DeviceId>,
    /// Worker threads (min 1).
    pub workers: usize,
    /// Admission bound: requests beyond this queue depth are rejected.
    pub queue_capacity: usize,
    /// Mask-cache capacity (LRU entries).
    pub cache_capacity: usize,
    /// Root seed: devices, searches and fault injection all derive from
    /// it deterministically.
    pub seed: u64,
    /// Fault profile every per-request backend is built with.
    pub fault_profile: FaultProfile,
    /// Retry/backoff policy of the per-request resilient executor.
    pub retry: RetryPolicy,
    /// Decoy construction mode (part of the cache key).
    pub decoy: DecoyKind,
    /// Default budget for [`Request::Execute`]-triggered searches.
    pub default_budget: SearchBudget,
    /// Degradation-ladder tuning (tier 0 heuristic, tier 1
    /// stale-while-revalidate, tier 2 proactive refresh). The default
    /// disables all three — see [`TierConfig`].
    pub tiers: TierConfig,
    /// Per-device circuit breaker. Disabled by default: breaker
    /// decisions couple requests to each other (an open breaker changes
    /// what *other* keys' requests get back), which intentionally trades
    /// the service's pure per-key determinism for failure isolation —
    /// opt in where that trade is wanted (production, the chaos
    /// harness).
    pub breaker: BreakerConfig,
    /// Build request deadlines from charged virtual time only
    /// ([`Deadline::virtual_only`]) instead of wall time
    /// ([`Deadline::within_ms`]). With charged-only deadlines expiry is
    /// a pure function of the seeded fault schedule, so deadline
    /// behaviour replays bit-identically — the mode the chaos harness
    /// and the deterministic tests run in.
    pub virtual_deadlines: bool,
    /// Metrics registry the service publishes `adapt_service_*` metrics
    /// into. Defaults to a fresh private registry, so every service
    /// instance keeps isolated counters (and [`MaskService::stats`] is
    /// exact per instance even with many services in one process); pass
    /// [`adapt_obs::global()`] to export into the process-wide registry
    /// instead. A disabled (noop) registry is replaced with a fresh
    /// private one at start — the service's own accounting must work.
    pub registry: Arc<adapt_obs::Registry>,
    /// Multi-tenant policy: per-tenant fairness weights and token-bucket
    /// admission quotas. The default gives every tenant weight 1 and no
    /// quota, so a config that never mentions tenancy schedules exactly
    /// like a single shared lane (strict class priority and EDF still
    /// apply).
    pub tenancy: TenancyConfig,
    /// Durability: checksummed snapshot + write-ahead journal of the
    /// mask cache (DESIGN §17). Disabled by default; set
    /// [`PersistConfig::dir`] to recover the warm set across restarts.
    pub persist: PersistConfig,
}

impl Default for ServiceConfig {
    fn default() -> Self {
        ServiceConfig {
            devices: vec![DeviceId::Guadalupe],
            workers: 2,
            queue_capacity: 32,
            cache_capacity: crate::cache::DEFAULT_MASK_CACHE_CAPACITY,
            seed: 2021,
            fault_profile: FaultProfile::none(),
            retry: RetryPolicy::default(),
            decoy: DecoyKind::default(),
            default_budget: SearchBudget::default(),
            tiers: TierConfig::default(),
            breaker: BreakerConfig::disabled(),
            virtual_deadlines: false,
            registry: Arc::new(adapt_obs::Registry::new()),
            tenancy: TenancyConfig::default(),
            persist: PersistConfig::default(),
        }
    }
}

impl ServiceConfig {
    /// Rejects configurations the service cannot run with (invalid
    /// retry policy, breaker tuning, default search budget, or
    /// contradictory tier ladder).
    ///
    /// # Errors
    ///
    /// [`ServiceError::InvalidConfig`] naming the first violation.
    pub fn validate(&self) -> Result<(), ServiceError> {
        self.retry
            .validate()
            .map_err(|e| ServiceError::InvalidConfig {
                reason: e.to_string(),
            })?;
        self.breaker
            .validate()
            .map_err(|reason| ServiceError::InvalidConfig { reason })?;
        self.default_budget
            .validate()
            .map_err(|e| ServiceError::InvalidConfig {
                reason: e.to_string(),
            })?;
        self.tiers
            .validate()
            .map_err(|reason| ServiceError::InvalidConfig { reason })?;
        self.tenancy
            .validate()
            .map_err(|reason| ServiceError::InvalidConfig { reason })?;
        Ok(())
    }
}

/// A unit of work submitted to the service.
#[derive(Debug, Clone)]
pub enum Request {
    /// Find (or fetch) the best DD mask for `circuit` on `device`.
    RecommendMask {
        /// Logical program.
        circuit: qcirc::Circuit,
        /// Target device.
        device: DeviceId,
        /// DD protocol the mask will be realized with.
        protocol: DdProtocol,
        /// Search budget (only consulted on a cache miss).
        budget: SearchBudget,
        /// Time budget for the whole request (queue wait included),
        /// `None` for unbounded. An expired deadline is honoured at
        /// every layer: born-expired submissions are rejected without
        /// enqueueing, queued jobs whose deadline lapses are dropped
        /// (counted, not executed), and a search overrunning mid-flight
        /// is cut short into a conservative partial mask.
        deadline_ms: Option<u64>,
        /// Which tenant submitted this and in which priority class it
        /// rides. Drives per-tenant admission quotas and the worker
        /// pool's weighted-fair EDF scheduling; the default is the
        /// anonymous tenant in the standard class.
        tenancy: Tenancy,
    },
    /// Execute `circuit` on `device` under `policy` (ADAPT consults the
    /// mask cache like a recommendation would).
    Execute {
        /// Logical program.
        circuit: qcirc::Circuit,
        /// Target device.
        device: DeviceId,
        /// DD policy to apply.
        policy: Policy,
        /// Time budget for the whole request; see
        /// [`Request::RecommendMask::deadline_ms`].
        deadline_ms: Option<u64>,
        /// Tenant identity and priority class; see
        /// [`Request::RecommendMask::tenancy`].
        tenancy: Tenancy,
    },
}

impl Request {
    /// The device this request targets.
    pub fn device(&self) -> DeviceId {
        match self {
            Request::RecommendMask { device, .. } | Request::Execute { device, .. } => *device,
        }
    }

    /// The request's time budget, if any.
    pub fn deadline_ms(&self) -> Option<u64> {
        match self {
            Request::RecommendMask { deadline_ms, .. } | Request::Execute { deadline_ms, .. } => {
                *deadline_ms
            }
        }
    }

    /// Who submitted the request and how urgently it should be served.
    pub fn tenancy(&self) -> Tenancy {
        match self {
            Request::RecommendMask { tenancy, .. } | Request::Execute { tenancy, .. } => *tenancy,
        }
    }
}

/// How a recommendation was produced.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Provenance {
    /// Served from the mask cache (possibly after coalescing behind a
    /// concurrent identical search).
    CacheHit,
    /// A fresh search ran to completion for this request.
    FreshSearch,
    /// A fresh search ran, but at least one neighborhood degraded to the
    /// conservative all-DD fallback (backend unavailability).
    DegradedAllDd,
    /// The request's deadline expired mid-search: completed
    /// neighborhoods keep their merged bits, the rest fall back to
    /// all-DD. Partial masks are served but never cached — the next
    /// request for the key searches afresh with its own budget.
    PartialSearch,
    /// The device's circuit breaker is open; the backend was not
    /// touched. The mask is the cached one when available, otherwise
    /// the conservative all-DD mask. Never cached.
    BreakerFallback,
    /// The tier-0 calibration-only heuristic answered because the
    /// deadline could not fit a search (or the budget pinned
    /// [`TierPolicy::HeuristicOnly`]). Deterministic, zero decoy runs,
    /// never cached — a background refine upgrades the key when the
    /// tier policy allows.
    Heuristic,
    /// A superseded-epoch cache value within the configured staleness
    /// bound, served while a background refine re-searches the key at
    /// the current epoch. Never cached at the requested epoch.
    StaleServed {
        /// How many epochs behind the current calibration the served
        /// mask is (≥ 1).
        age_epochs: u64,
    },
}

impl std::fmt::Display for Provenance {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Provenance::CacheHit => write!(f, "cache-hit"),
            Provenance::FreshSearch => write!(f, "fresh-search"),
            Provenance::DegradedAllDd => write!(f, "degraded-all-dd"),
            Provenance::PartialSearch => write!(f, "partial-search"),
            Provenance::BreakerFallback => write!(f, "breaker-fallback"),
            Provenance::Heuristic => write!(f, "heuristic"),
            Provenance::StaleServed { age_epochs } => write!(f, "stale-served:{age_epochs}"),
        }
    }
}

/// Per-request wall-clock accounting (microseconds).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Timing {
    /// Time spent queued before a worker picked the request up.
    pub queued_us: u64,
    /// Time the worker spent serving it.
    pub service_us: u64,
}

impl Timing {
    /// Queue + service time.
    pub fn total_us(&self) -> u64 {
        self.queued_us + self.service_us
    }
}

/// A mask recommendation.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Recommendation {
    /// The cache key the request resolved to.
    pub key: MaskKey,
    /// The recommended mask.
    pub mask: DdMask,
    /// Decoy fidelity the mask scored when it was searched.
    pub decoy_fidelity: f64,
    /// Decoy executions the (original) search attempted.
    pub decoy_runs: usize,
    /// How this response was produced.
    pub provenance: Provenance,
    /// Whether the underlying search had degraded neighborhoods (carried
    /// by cache hits too, unlike [`Provenance::DegradedAllDd`] which
    /// marks the searching request itself).
    pub degraded: bool,
    /// Request timing.
    pub timing: Timing,
}

/// A completed execution.
#[derive(Debug, Clone)]
pub struct Execution {
    /// Target device.
    pub device: DeviceId,
    /// Calibration epoch the program ran under.
    pub epoch: u64,
    /// Policy that was applied.
    pub policy: Policy,
    /// Mask the policy settled on.
    pub mask: DdMask,
    /// Program fidelity against the ideal output.
    pub fidelity: f64,
    /// DD pulses inserted into the final program.
    pub pulse_count: usize,
    /// Mask provenance when the policy consulted the cache (ADAPT only).
    pub provenance: Option<Provenance>,
    /// Request timing.
    pub timing: Timing,
}

/// A service response.
#[derive(Debug, Clone)]
pub enum Response {
    /// Answer to [`Request::RecommendMask`].
    Mask(Recommendation),
    /// Answer to [`Request::Execute`].
    Execution(Execution),
}

impl Response {
    /// Request timing, whichever variant.
    pub fn timing(&self) -> Timing {
        match self {
            Response::Mask(r) => r.timing,
            Response::Execution(e) => e.timing,
        }
    }
}

/// Typed service failures.
#[derive(Debug, Clone, PartialEq)]
pub enum ServiceError {
    /// Admission control: the queue is full. Back off for about
    /// `retry_after_ms` and resubmit.
    Rejected {
        /// Queue depth observed at rejection.
        queue_depth: usize,
        /// Suggested client backoff before resubmitting.
        retry_after_ms: u64,
    },
    /// The requested device is not in this service's registry.
    DeviceNotServed(DeviceId),
    /// The request's deadline expired before a full answer could be
    /// produced — at submission (born expired), while queued (dropped
    /// unexecuted), or after service when the answer would have arrived
    /// late and carried no conservative-fallback tag.
    DeadlineExceeded {
        /// Time counted against the budget when the request was given
        /// up on.
        elapsed_ms: u64,
        /// The request's budget.
        budget_ms: u64,
    },
    /// Admission control: the submitting tenant's token-bucket rate
    /// limit is exhausted. The request was not enqueued; back off for
    /// about `retry_after_ms` (when one full token will have refilled)
    /// and resubmit.
    QuotaExhausted {
        /// The rate-limited tenant.
        tenant: TenantId,
        /// Time until the bucket refills one token.
        retry_after_ms: u64,
    },
    /// The device's circuit breaker is open and configured to fail
    /// fast. Back off for about `retry_after_ms`, or retarget.
    DeviceUnhealthy {
        /// The device whose breaker is open.
        device: DeviceId,
        /// Suggested client backoff before resubmitting.
        retry_after_ms: u64,
    },
    /// The service configuration failed validation at start.
    InvalidConfig {
        /// The first violation found.
        reason: String,
    },
    /// The search or execution failed (typed, including
    /// [`adapt::SearchError::TooLarge`] for oversized sweeps).
    Failed(AdaptError),
    /// The service is shutting down and accepts no new work.
    ShuttingDown,
    /// The worker serving this request panicked; the pool survived and
    /// the panic was counted.
    Internal {
        /// Best-effort panic payload.
        reason: String,
    },
    /// The response channel was dropped without an answer (should not
    /// happen while the service is running).
    Lost,
}

impl std::fmt::Display for ServiceError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ServiceError::Rejected {
                queue_depth,
                retry_after_ms,
            } => write!(
                f,
                "rejected: queue full at depth {queue_depth}, retry after ~{retry_after_ms} ms"
            ),
            ServiceError::DeviceNotServed(id) => write!(f, "device {id} is not served"),
            ServiceError::DeadlineExceeded {
                elapsed_ms,
                budget_ms,
            } => write!(
                f,
                "deadline exceeded: {elapsed_ms} ms elapsed against a {budget_ms} ms budget"
            ),
            ServiceError::QuotaExhausted {
                tenant,
                retry_after_ms,
            } => write!(
                f,
                "tenant {tenant} quota exhausted, retry after ~{retry_after_ms} ms"
            ),
            ServiceError::DeviceUnhealthy {
                device,
                retry_after_ms,
            } => write!(
                f,
                "device {device} is unhealthy (breaker open), retry after ~{retry_after_ms} ms"
            ),
            ServiceError::InvalidConfig { reason } => {
                write!(f, "invalid service configuration: {reason}")
            }
            ServiceError::Failed(e) => write!(f, "request failed: {e}"),
            ServiceError::ShuttingDown => write!(f, "service is shutting down"),
            ServiceError::Internal { reason } => write!(f, "internal worker failure: {reason}"),
            ServiceError::Lost => write!(f, "response channel lost"),
        }
    }
}

impl std::error::Error for ServiceError {}

impl From<AdaptError> for ServiceError {
    fn from(e: AdaptError) -> Self {
        ServiceError::Failed(e)
    }
}

/// Service-wide counters (all monotonic since start).
#[derive(Debug, Clone, Copy, Default)]
pub struct ServiceStats {
    /// Requests accepted into the queue.
    pub accepted: u64,
    /// Requests rejected by admission control.
    pub rejected: u64,
    /// Rejections because the queue was full.
    pub rejected_queue: u64,
    /// Rejections because the target device's breaker was open in
    /// fail-fast mode.
    pub rejected_breaker: u64,
    /// Rejections because the request's deadline was already expired at
    /// submission.
    pub rejected_deadline: u64,
    /// Rejections because the submitting tenant's token-bucket quota
    /// was exhausted.
    pub rejected_quota: u64,
    /// Requests completed (ok or typed error).
    pub completed: u64,
    /// Requests answered with a typed error.
    pub failed: u64,
    /// Fresh searches executed (cache misses that ran to completion).
    pub searches: u64,
    /// Worker panics caught (pool kept serving).
    pub worker_panics: u64,
    /// Queued jobs whose deadline expired before a worker reached them
    /// (answered with the typed error, never executed).
    pub deadline_dropped: u64,
    /// Requests answered with [`ServiceError::DeadlineExceeded`]
    /// (dropped-in-queue, interrupted in flight, or finished late with
    /// no conservative-fallback tag).
    pub deadline_exceeded: u64,
    /// Searches cut short by their deadline and served as conservative
    /// partial masks (not cached).
    pub partial_searches: u64,
    /// Requests served the breaker's cached/all-DD fallback mask.
    pub breaker_fallbacks: u64,
    /// Circuit-breaker trips (closed → open).
    pub breaker_trips: u64,
    /// Circuit-breaker recoveries (half-open probe succeeded).
    pub breaker_recoveries: u64,
    /// Requests answered by the tier-0 calibration-only heuristic.
    pub heuristic_served: u64,
    /// Requests answered from the superseded-epoch stale store.
    pub stale_served: u64,
    /// Refine jobs accepted into the background lane.
    pub refines_enqueued: u64,
    /// Refine searches that completed and upgraded their cache entry.
    pub refines_completed: u64,
    /// Refine jobs dropped (lane full or disabled, epoch moved on, or
    /// the search failed); their single-flight tickets were released.
    pub refines_dropped: u64,
    /// Hot keys scheduled for next-epoch characterization by
    /// [`MaskService::prewarm_epoch`].
    pub prewarm_scheduled: u64,
    /// Deepest queue observed at submission.
    pub peak_queue_depth: usize,
}

/// The service's `adapt_service_*` metric handles, resolved once at
/// start. These *are* the service counters — [`MaskService::stats`]
/// reads them back — so the registry they live in is always enabled.
struct Metrics {
    /// Submissions received (accepted + rejected).
    requests: adapt_obs::Counter,
    accepted: adapt_obs::Counter,
    rejected: adapt_obs::Counter,
    rejected_queue: adapt_obs::Counter,
    rejected_breaker: adapt_obs::Counter,
    rejected_deadline: adapt_obs::Counter,
    rejected_quota: adapt_obs::Counter,
    completed: adapt_obs::Counter,
    failed: adapt_obs::Counter,
    searches: adapt_obs::Counter,
    worker_panics: adapt_obs::Counter,
    deadline_dropped: adapt_obs::Counter,
    deadline_exceeded: adapt_obs::Counter,
    partial_searches: adapt_obs::Counter,
    /// Resolved by name from the same registry the [`HealthTracker`]
    /// publishes into, so `stats()` can read the breaker counters back.
    breaker_fallbacks: adapt_obs::Counter,
    breaker_trips: adapt_obs::Counter,
    breaker_recoveries: adapt_obs::Counter,
    heuristic_served: adapt_obs::Counter,
    stale_served: adapt_obs::Counter,
    refines_enqueued: adapt_obs::Counter,
    refines_completed: adapt_obs::Counter,
    refines_dropped: adapt_obs::Counter,
    prewarm_scheduled: adapt_obs::Counter,
    /// Enqueue-to-upgrade latency of completed refines.
    refine_us: adapt_obs::Histogram,
    queue_depth: adapt_obs::Gauge,
    peak_queue_depth: adapt_obs::Gauge,
    queued_us: adapt_obs::Histogram,
    service_us: adapt_obs::Histogram,
    request_us: adapt_obs::Histogram,
    /// Total service time of completed requests, for the backpressure
    /// retry-after estimate.
    service_us_total: adapt_obs::Counter,
    /// Service time and count of requests that actually ran a search
    /// (fresh, degraded, or partial provenance) — the population a
    /// rejected client about to trigger a search belongs to, which is
    /// what the retry-after estimate should be based on. Sub-ms cache
    /// and heuristic hits are excluded so they cannot drag the mean
    /// down (the old bug).
    fresh_service_us_total: adapt_obs::Counter,
    fresh_completed: adapt_obs::Counter,
}

impl Metrics {
    fn for_registry(r: &adapt_obs::Registry) -> Self {
        Metrics {
            requests: r.counter("adapt_service_requests_total"),
            accepted: r.counter("adapt_service_accepted_total"),
            rejected: r.counter("adapt_service_rejected_total"),
            rejected_queue: r.counter("adapt_service_rejected_queue_total"),
            rejected_breaker: r.counter("adapt_service_rejected_breaker_total"),
            rejected_deadline: r.counter("adapt_service_rejected_deadline_total"),
            rejected_quota: r.counter("adapt_service_rejected_quota_total"),
            completed: r.counter("adapt_service_completed_total"),
            failed: r.counter("adapt_service_failed_total"),
            searches: r.counter("adapt_service_searches_total"),
            worker_panics: r.counter("adapt_service_worker_panics_total"),
            deadline_dropped: r.counter("adapt_service_deadline_dropped_total"),
            deadline_exceeded: r.counter("adapt_service_deadline_exceeded_total"),
            partial_searches: r.counter("adapt_service_partial_searches_total"),
            breaker_fallbacks: r.counter("adapt_service_breaker_fallbacks_total"),
            breaker_trips: r.counter("adapt_service_breaker_trips_total"),
            breaker_recoveries: r.counter("adapt_service_breaker_recoveries_total"),
            heuristic_served: r.counter("adapt_service_heuristic_served_total"),
            stale_served: r.counter("adapt_service_stale_served_total"),
            refines_enqueued: r.counter("adapt_service_refines_enqueued_total"),
            refines_completed: r.counter("adapt_service_refines_completed_total"),
            refines_dropped: r.counter("adapt_service_refines_dropped_total"),
            prewarm_scheduled: r.counter("adapt_service_prewarm_scheduled_total"),
            refine_us: r.histogram("adapt_service_refine_us"),
            queue_depth: r.gauge("adapt_service_queue_depth"),
            peak_queue_depth: r.gauge("adapt_service_peak_queue_depth"),
            queued_us: r.histogram("adapt_service_queued_us"),
            service_us: r.histogram("adapt_service_service_us"),
            request_us: r.histogram("adapt_service_request_us"),
            service_us_total: r.counter("adapt_service_service_us_total"),
            fresh_service_us_total: r.counter("adapt_service_fresh_service_us_total"),
            fresh_completed: r.counter("adapt_service_fresh_completed_total"),
        }
    }
}

/// The per-tenant `adapt_service_tenant_*` metrics. Each tenant gets a
/// lazily-created private registry; [`MaskService::render_tenant_metrics`]
/// merges them into one exposition with a `tenant="tN"` label per series
/// (the same `inject_label` machinery the fleet uses for shard labels).
struct TenantMetrics {
    registry: Arc<adapt_obs::Registry>,
    accepted: adapt_obs::Counter,
    rejected_quota: adapt_obs::Counter,
    completed: adapt_obs::Counter,
    deadline_exceeded: adapt_obs::Counter,
    inflight: adapt_obs::Gauge,
    request_us: adapt_obs::Histogram,
}

impl TenantMetrics {
    fn new() -> Self {
        let registry = Arc::new(adapt_obs::Registry::new());
        TenantMetrics {
            accepted: registry.counter("adapt_service_tenant_accepted_total"),
            rejected_quota: registry.counter("adapt_service_tenant_rejected_quota_total"),
            completed: registry.counter("adapt_service_tenant_completed_total"),
            deadline_exceeded: registry.counter("adapt_service_tenant_deadline_exceeded_total"),
            inflight: registry.gauge("adapt_service_tenant_inflight"),
            request_us: registry.histogram("adapt_service_tenant_request_us"),
            registry,
        }
    }
}

struct Job {
    request: Request,
    reply: Sender<Result<Response, ServiceError>>,
    enqueued: Instant,
    deadline: Deadline,
    /// Breaker verdict taken at submission (admission order equals
    /// queue order — decided under the queue lock).
    admission: Admission,
}

/// One queued background-refine search: the single-flight ticket for
/// the target key plus everything the search needs. Dropping the job
/// drops the ticket, releasing the key.
struct RefineJob {
    ticket: SearchTicket,
    circuit: qcirc::Circuit,
    budget: SearchBudget,
    enqueued: Instant,
}

struct QueueState {
    /// The multi-tenant ready queue: strict class priority, weighted-
    /// fair round-robin across tenants within a class, EDF within a
    /// tenant's lane (replaces the old FIFO deque).
    jobs: TenantScheduler<Job>,
    /// Per-tenant token buckets consulted at admission, under this same
    /// lock so accept/reject order equals submission order.
    quotas: QuotaBook,
    /// Low-priority refine lane: a worker only pops from it when `jobs`
    /// is empty and fewer than `refine_concurrency` refines are running.
    refine: VecDeque<RefineJob>,
    /// Refine searches currently executing on workers.
    refine_active: usize,
    /// Chaos hook: a disabled refiner drops incoming and queued refine
    /// jobs (tickets released) instead of running them.
    refiner_enabled: bool,
}

impl QueueState {
    fn new(tenancy: TenancyConfig) -> Self {
        QueueState {
            jobs: TenantScheduler::new(),
            quotas: QuotaBook::new(tenancy),
            refine: VecDeque::new(),
            refine_active: 0,
            refiner_enabled: true,
        }
    }
}

struct Queue {
    state: Mutex<QueueState>,
    available: Condvar,
    /// Signalled whenever the refine lane may have gone idle (empty
    /// deque and nothing executing) — [`MaskService::drain_refines`]
    /// waits on it.
    refine_idle: Condvar,
}

impl Queue {
    fn new(tenancy: TenancyConfig) -> Self {
        Queue {
            state: Mutex::new(QueueState::new(tenancy)),
            available: Condvar::new(),
            refine_idle: Condvar::new(),
        }
    }
}

/// Everything the worker threads share.
struct Shared {
    config: ServiceConfig,
    registry: DeviceRegistry,
    cache: Arc<MaskCache>,
    queue: Queue,
    metrics: Metrics,
    /// The (always enabled) registry backing [`Shared::metrics`].
    obs: Arc<adapt_obs::Registry>,
    /// Per-device circuit breakers.
    health: HealthTracker,
    /// Runtime per-device fault-profile overrides (chaos schedules flip
    /// these mid-run); devices not in the map use the config profile.
    fault_overrides: Mutex<HashMap<DeviceId, FaultProfile>>,
    /// Bounded book of recently served logical programs by their
    /// epoch-independent identity — what [`MaskService::prewarm_epoch`]
    /// re-transpiles hot keys from (a [`StaleKey`] alone cannot rebuild
    /// the circuit).
    programs: Mutex<ProgramBook>,
    /// Lazily-created per-tenant metric sets, merged into one
    /// tenant-labelled exposition by
    /// [`MaskService::render_tenant_metrics`].
    tenant_metrics: Mutex<BTreeMap<TenantId, Arc<TenantMetrics>>>,
    /// Durability engine (`None` when persistence is disabled): journal
    /// sink target, snapshot writer, recovery reporter.
    persist: Option<Arc<Persister>>,
    shutdown: AtomicBool,
}

/// The (lazily-created) metric set of `tenant`.
fn tenant_metrics(shared: &Shared, tenant: TenantId) -> Arc<TenantMetrics> {
    Arc::clone(
        lock(&shared.tenant_metrics)
            .entry(tenant)
            .or_insert_with(|| Arc::new(TenantMetrics::new())),
    )
}

/// Bounded insertion-ordered map of logical programs by [`StaleKey`].
#[derive(Default)]
struct ProgramBook {
    map: HashMap<StaleKey, qcirc::Circuit>,
    order: VecDeque<StaleKey>,
}

impl ProgramBook {
    fn record(&mut self, key: StaleKey, circuit: &qcirc::Circuit, capacity: usize) {
        if capacity == 0 || self.map.contains_key(&key) {
            return;
        }
        self.map.insert(key, circuit.clone());
        self.order.push_back(key);
        while self.map.len() > capacity {
            if let Some(oldest) = self.order.pop_front() {
                self.map.remove(&oldest);
            } else {
                break;
            }
        }
    }

    fn get(&self, key: &StaleKey) -> Option<qcirc::Circuit> {
        self.map.get(key).cloned()
    }
}

/// In-flight response handle returned by [`MaskService::submit`].
#[derive(Debug)]
pub struct Pending {
    rx: Receiver<Result<Response, ServiceError>>,
}

impl Pending {
    /// Blocks until the worker answers.
    pub fn wait(self) -> Result<Response, ServiceError> {
        self.rx.recv().unwrap_or(Err(ServiceError::Lost))
    }
}

/// The long-running mask-recommendation service (see crate docs).
pub struct MaskService {
    shared: Arc<Shared>,
    workers: Vec<JoinHandle<()>>,
    /// Background snapshot thread (`None` when persistence is disabled
    /// or the interval is 0) and its kill-switch.
    persist_thread: Option<JoinHandle<()>>,
    persist_stop: Arc<(Mutex<bool>, Condvar)>,
}

impl std::fmt::Debug for MaskService {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("MaskService")
            .field("workers", &self.workers.len())
            .field("devices", &self.shared.registry.devices())
            .finish_non_exhaustive()
    }
}

impl MaskService {
    /// Builds the registry and starts the worker pool.
    ///
    /// # Panics
    ///
    /// On an invalid configuration; use [`Self::try_start`] to get the
    /// typed [`ServiceError::InvalidConfig`] instead.
    pub fn start(config: ServiceConfig) -> Self {
        match Self::try_start(config) {
            Ok(service) => service,
            Err(e) => panic!("invalid service config: {e}"),
        }
    }

    /// [`Self::start`] with configuration validation surfaced as a
    /// typed error instead of a panic.
    ///
    /// # Errors
    ///
    /// [`ServiceError::InvalidConfig`] when the retry policy or breaker
    /// tuning fails [`ServiceConfig::validate`].
    pub fn try_start(config: ServiceConfig) -> Result<Self, ServiceError> {
        config.validate()?;
        let registry = DeviceRegistry::new(&config.devices, config.seed);
        // The obs registry doubles as the service's own accounting, so a
        // disabled one is swapped for a private enabled registry.
        let obs = if config.registry.is_enabled() {
            Arc::clone(&config.registry)
        } else {
            Arc::new(adapt_obs::Registry::new())
        };
        let cache = Arc::new(MaskCache::with_tiers(
            config.cache_capacity,
            config.tiers.stale_capacity,
            config.tiers.hot_ring_capacity,
            &obs,
        ));
        let health = HealthTracker::new(config.breaker, &config.devices, &obs);
        // Durability: replay snapshot + journal into the fresh cache and
        // registry (quarantining anything that fails validation), then
        // install the journal sink — recovery restores must not journal
        // themselves into the WAL they are compacting.
        let persist = match &config.persist.dir {
            Some(dir) => {
                let p = Persister::new(dir, config.persist.fsync, &obs).map_err(|e| {
                    ServiceError::InvalidConfig {
                        reason: format!("persist dir {}: {e}", dir.display()),
                    }
                })?;
                let p = Arc::new(p);
                p.recover(&cache, &registry)
                    .map_err(|e| ServiceError::Internal {
                        reason: format!("durability recovery failed: {e}"),
                    })?;
                p.install(&cache);
                Some(p)
            }
            None => None,
        };
        let workers = config.workers.max(1);
        let shared = Arc::new(Shared {
            registry,
            cache,
            queue: Queue::new(config.tenancy.clone()),
            metrics: Metrics::for_registry(&obs),
            obs,
            health,
            fault_overrides: Mutex::new(HashMap::new()),
            programs: Mutex::new(ProgramBook::default()),
            tenant_metrics: Mutex::new(BTreeMap::new()),
            persist,
            shutdown: AtomicBool::new(false),
            config,
        });
        let workers = (0..workers)
            .map(|i| {
                let shared = Arc::clone(&shared);
                std::thread::Builder::new()
                    .name(format!("adapt-worker-{i}"))
                    .spawn(move || worker_loop(&shared))
                    .expect("spawn service worker")
            })
            .collect();
        let persist_stop: Arc<(Mutex<bool>, Condvar)> =
            Arc::new((Mutex::new(false), Condvar::new()));
        let interval_ms = shared.config.persist.snapshot_interval_ms;
        let persist_thread = (shared.persist.is_some() && interval_ms > 0).then(|| {
            let shared = Arc::clone(&shared);
            let stop = Arc::clone(&persist_stop);
            std::thread::Builder::new()
                .name("adapt-persist".to_string())
                .spawn(move || persist_loop(&shared, &stop, Duration::from_millis(interval_ms)))
                .expect("spawn persist thread")
        });
        Ok(MaskService {
            shared,
            workers,
            persist_thread,
            persist_stop,
        })
    }

    /// Submits a request, subject to admission control.
    ///
    /// # Errors
    ///
    /// [`ServiceError::Rejected`] when the queue is at capacity (the
    /// request was *not* enqueued — back off and resubmit; the hint is
    /// the larger of the queue-drain estimate and the target device's
    /// breaker-open hint), [`ServiceError::DeadlineExceeded`] when the
    /// request's deadline is already expired at submission (not
    /// enqueued), [`ServiceError::DeviceUnhealthy`] when the device's
    /// breaker is open in fail-fast mode, and
    /// [`ServiceError::ShuttingDown`] after [`Self::shutdown`] began.
    pub fn submit(&self, request: Request) -> Result<Pending, ServiceError> {
        let shared = &self.shared;
        let device = request.device();
        let tenancy = request.tenancy();
        // A budget no search can run with — or a DD protocol whose
        // parameters cannot compose an identity window (an odd UDD pulse
        // count) — is a client bug, answered with the same typed error
        // an invalid config gets at start.
        if let Request::RecommendMask {
            budget, protocol, ..
        } = &request
        {
            budget.validate().map_err(|e| ServiceError::InvalidConfig {
                reason: e.to_string(),
            })?;
            protocol
                .validate()
                .map_err(|e| ServiceError::InvalidConfig {
                    reason: e.to_string(),
                })?;
        }
        let deadline = match request.deadline_ms() {
            Some(b) if shared.config.virtual_deadlines => Deadline::virtual_only(b),
            Some(b) => Deadline::within_ms(b),
            None => Deadline::none(),
        };
        let (tx, rx) = channel();
        {
            let mut state = lock(&shared.queue.state);
            // Checked under the queue lock: shutdown drains the queue
            // while holding it, so a submit can never slip a job in
            // after the drain.
            if shared.shutdown.load(Ordering::SeqCst) {
                return Err(ServiceError::ShuttingDown);
            }
            let depth = state.jobs.len();
            shared.metrics.requests.inc();
            if depth >= shared.config.queue_capacity {
                shared.metrics.rejected.inc();
                shared.metrics.rejected_queue.inc();
                return Err(ServiceError::Rejected {
                    queue_depth: depth,
                    retry_after_ms: self
                        .retry_after_ms(depth)
                        .max(shared.health.retry_hint_ms(device)),
                });
            }
            // A born-expired deadline never earns a queue slot.
            if deadline.check().is_err() {
                shared.metrics.rejected.inc();
                shared.metrics.rejected_deadline.inc();
                shared.metrics.deadline_exceeded.inc();
                return Err(deadline_error(&deadline));
            }
            // The tenant's token bucket is drawn under the queue lock
            // too, so accept/reject order is exactly submission order —
            // what makes quota rejections replay bit-identically in
            // virtual-time mode.
            if let Err(retry_after_ms) = state.quotas.try_take(tenancy.tenant) {
                shared.metrics.rejected.inc();
                shared.metrics.rejected_quota.inc();
                tenant_metrics(shared, tenancy.tenant).rejected_quota.inc();
                return Err(ServiceError::QuotaExhausted {
                    tenant: tenancy.tenant,
                    retry_after_ms,
                });
            }
            // The breaker verdict is taken under the queue lock, so the
            // admission sequence (which drives cooldown counting and
            // probe hand-out) is exactly the accepted-submission order.
            let admission = shared.health.admit(device);
            if let Admission::FailFast { retry_after_ms } = admission {
                shared.metrics.rejected.inc();
                shared.metrics.rejected_breaker.inc();
                return Err(ServiceError::DeviceUnhealthy {
                    device,
                    retry_after_ms,
                });
            }
            let key_us = deadline.edf_key_us();
            state.jobs.push(
                tenancy.tenant,
                tenancy.class,
                key_us,
                Job {
                    request,
                    reply: tx,
                    enqueued: Instant::now(),
                    deadline,
                    admission,
                },
            );
            shared.metrics.queue_depth.set(depth as i64 + 1);
            shared.metrics.peak_queue_depth.set_max(depth as i64 + 1);
        }
        let tm = tenant_metrics(shared, tenancy.tenant);
        tm.accepted.inc();
        tm.inflight.add(1);
        shared.metrics.accepted.inc();
        shared.queue.available.notify_one();
        Ok(Pending { rx })
    }

    /// Submits and waits (convenience for sequential clients).
    ///
    /// # Errors
    ///
    /// See [`Self::submit`] and [`Pending::wait`].
    pub fn call(&self, request: Request) -> Result<Response, ServiceError> {
        self.submit(request)?.wait()
    }

    /// Drifts `device` to its next calibration epoch and invalidates all
    /// cached masks of older epochs. Returns the new epoch.
    ///
    /// # Errors
    ///
    /// [`ServiceError::DeviceNotServed`] for unregistered devices.
    pub fn advance_epoch(&self, device: DeviceId) -> Result<u64, ServiceError> {
        let epoch = self
            .shared
            .registry
            .advance_epoch(device)
            .ok_or(ServiceError::DeviceNotServed(device))?;
        self.shared.cache.invalidate_before(device, epoch);
        Ok(epoch)
    }

    /// Current calibration epoch of `device`.
    pub fn epoch(&self, device: DeviceId) -> Option<u64> {
        self.shared.registry.epoch(device)
    }

    /// Schedules background characterization of `device`'s hottest keys
    /// against its *next* calibration epoch — call right before the
    /// epoch is advanced, so the hot working set is already cached when
    /// [`Self::advance_epoch`] invalidates the current one and drift
    /// never turns into a cold-miss storm. Uses the top
    /// [`TierConfig::prewarm_top_k`] identities of the cache's hot-key
    /// ring whose logical program is still in the program book. Returns
    /// how many refines were scheduled (keys already cached, already in
    /// flight, or with a full refine lane are skipped).
    ///
    /// # Errors
    ///
    /// [`ServiceError::DeviceNotServed`] for unregistered devices.
    pub fn prewarm_epoch(&self, device: DeviceId) -> Result<usize, ServiceError> {
        let shared = &self.shared;
        let (next_epoch, machine) = shared
            .registry
            .peek_next_epoch(device)
            .ok_or(ServiceError::DeviceNotServed(device))?;
        let hot = shared
            .cache
            .hot_keys(device, shared.config.tiers.prewarm_top_k);
        let mut scheduled = 0usize;
        for stale_key in hot {
            let Some(circuit) = lock(&shared.programs).get(&stale_key) else {
                continue;
            };
            let compiled = transpile(&circuit, machine.device(), &TranspileOptions::default());
            let key = MaskKey {
                device,
                epoch: next_epoch,
                circuit_hash: machine::structural_hash(&compiled.timed),
                protocol: stale_key.protocol,
                decoy: stale_key.decoy,
            };
            if let Some(ticket) = MaskCache::try_ticket(&shared.cache, key, stale_key) {
                if enqueue_refine(shared, ticket, circuit, shared.config.default_budget) {
                    scheduled += 1;
                }
            }
        }
        shared.metrics.prewarm_scheduled.add(scheduled as u64);
        Ok(scheduled)
    }

    /// Blocks until the background-refine lane is idle: no queued refine
    /// jobs and none executing. The deterministic harnesses use it as a
    /// barrier between scenario phases, so which refines have landed is
    /// a function of the scenario script rather than of scheduling.
    pub fn drain_refines(&self) {
        let mut state = lock(&self.shared.queue.state);
        while !(state.refine.is_empty() && state.refine_active == 0) {
            state = self
                .shared
                .queue
                .refine_idle
                .wait(state)
                .unwrap_or_else(|poisoned| poisoned.into_inner());
        }
    }

    /// Enables or disables the background-refine lane. Disabling drops
    /// every queued refine job (their single-flight tickets are
    /// released, so blocked or future lookups can re-own the keys) and
    /// makes later enqueues no-ops — the chaos harness kills the lane
    /// mid-run with this and asserts the service degrades to heuristic
    /// answers instead of wedging.
    pub fn set_refiner_enabled(&self, enabled: bool) {
        let dropped = {
            let mut state = lock(&self.shared.queue.state);
            state.refiner_enabled = enabled;
            if enabled {
                Vec::new()
            } else {
                state.refine.drain(..).collect::<Vec<_>>()
            }
        };
        if !dropped.is_empty() {
            self.shared
                .metrics
                .refines_dropped
                .add(dropped.len() as u64);
        }
        drop(dropped); // tickets release outside the queue lock
        self.shared.queue.refine_idle.notify_all();
    }

    /// Service-wide counters.
    pub fn stats(&self) -> ServiceStats {
        let m = &self.shared.metrics;
        ServiceStats {
            accepted: m.accepted.get(),
            rejected: m.rejected.get(),
            rejected_queue: m.rejected_queue.get(),
            rejected_breaker: m.rejected_breaker.get(),
            rejected_deadline: m.rejected_deadline.get(),
            rejected_quota: m.rejected_quota.get(),
            completed: m.completed.get(),
            failed: m.failed.get(),
            searches: m.searches.get(),
            worker_panics: m.worker_panics.get(),
            deadline_dropped: m.deadline_dropped.get(),
            deadline_exceeded: m.deadline_exceeded.get(),
            partial_searches: m.partial_searches.get(),
            breaker_fallbacks: m.breaker_fallbacks.get(),
            breaker_trips: m.breaker_trips.get(),
            breaker_recoveries: m.breaker_recoveries.get(),
            heuristic_served: m.heuristic_served.get(),
            stale_served: m.stale_served.get(),
            refines_enqueued: m.refines_enqueued.get(),
            refines_completed: m.refines_completed.get(),
            refines_dropped: m.refines_dropped.get(),
            prewarm_scheduled: m.prewarm_scheduled.get(),
            peak_queue_depth: m.peak_queue_depth.get().max(0) as usize,
        }
    }

    /// Current breaker state of `device` (`None` for devices this
    /// service does not serve).
    pub fn breaker_state(&self, device: DeviceId) -> Option<BreakerState> {
        self.shared.health.state(device)
    }

    /// The full breaker transition log, in decision order. With a
    /// deterministic load (single client, single worker, seeded faults,
    /// virtual deadlines) two identical runs produce identical logs —
    /// the chaos harness asserts exactly that.
    pub fn breaker_transitions(&self) -> Vec<Transition> {
        self.shared.health.transitions()
    }

    /// Replaces the fault profile that per-request backends for
    /// `device` are built with (the config profile applies where no
    /// override is set). Chaos schedules flip these mid-run to make a
    /// device storm, die, or recover; only requests *submitted after*
    /// the call see the new profile.
    pub fn set_fault_profile(&self, device: DeviceId, profile: FaultProfile) {
        lock(&self.shared.fault_overrides).insert(device, profile);
    }

    /// Removes the fault-profile override of `device`, restoring the
    /// config profile.
    pub fn clear_fault_profile(&self, device: DeviceId) {
        lock(&self.shared.fault_overrides).remove(&device);
    }

    /// The (always enabled) metrics registry this service publishes
    /// `adapt_service_*` metrics into. Render it with
    /// [`adapt_obs::Registry::render_prometheus`] /
    /// [`adapt_obs::Registry::render_json`].
    pub fn metrics_registry(&self) -> Arc<adapt_obs::Registry> {
        Arc::clone(&self.shared.obs)
    }

    /// Mask-cache counters.
    pub fn cache_stats(&self) -> MaskCacheStats {
        self.shared.cache.stats()
    }

    /// Publishes a durability snapshot immediately (also resetting the
    /// journal). The deterministic harnesses use this instead of waiting
    /// out the background interval. Returns the record count.
    ///
    /// # Errors
    ///
    /// [`ServiceError::InvalidConfig`] when persistence is disabled,
    /// [`ServiceError::Internal`] when the write failed (the previous
    /// snapshot, if any, is still published).
    pub fn snapshot_now(&self) -> Result<usize, ServiceError> {
        let Some(p) = &self.shared.persist else {
            return Err(ServiceError::InvalidConfig {
                reason: "persistence is not enabled (PersistConfig::dir is None)".to_string(),
            });
        };
        p.snapshot(&self.shared.cache, &self.shared.registry)
            .map_err(|e| ServiceError::Internal {
                reason: format!("snapshot failed: {e}"),
            })
    }

    /// Persistence counters (`None` when persistence is disabled).
    pub fn persist_stats(&self) -> Option<PersistStats> {
        self.shared.persist.as_ref().map(|p| p.stats())
    }

    /// What startup recovery restored and quarantined (`None` when
    /// persistence is disabled).
    pub fn recovery_report(&self) -> Option<RecoveryReport> {
        self.shared.persist.as_ref().and_then(|p| p.last_recovery())
    }

    /// Stops accepting work, drains the queue with
    /// [`ServiceError::ShuttingDown`] replies, and joins the workers.
    /// Returns the final counters.
    pub fn shutdown(mut self) -> ServiceStats {
        self.shutdown_inner();
        self.stats()
    }

    fn shutdown_inner(&mut self) {
        self.shared.shutdown.store(true, Ordering::SeqCst);
        // Answer queued-but-unserved requests so no client blocks
        // forever, and drop queued refines (tickets released).
        let dropped_refines = {
            let mut state = lock(&self.shared.queue.state);
            for job in state.jobs.drain() {
                tenant_metrics(&self.shared, job.request.tenancy().tenant)
                    .inflight
                    .add(-1);
                let _ = job.reply.send(Err(ServiceError::ShuttingDown));
            }
            self.shared.metrics.queue_depth.set(0);
            state.refine.drain(..).collect::<Vec<_>>()
        };
        self.shared
            .metrics
            .refines_dropped
            .add(dropped_refines.len() as u64);
        drop(dropped_refines);
        self.shared.queue.available.notify_all();
        self.shared.queue.refine_idle.notify_all();
        for w in self.workers.drain(..) {
            let _ = w.join();
        }
        // Durability epilogue, after the workers are gone (no more
        // inserts): stop the background snapshotter, then publish one
        // final snapshot so a clean shutdown recovers the whole warm set.
        {
            let (stop, cvar) = &*self.persist_stop;
            *lock(stop) = true;
            cvar.notify_all();
        }
        if let Some(h) = self.persist_thread.take() {
            let _ = h.join();
        }
        if let Some(p) = &self.shared.persist {
            let _ = p.snapshot(&self.shared.cache, &self.shared.registry);
        }
    }

    /// Advances the virtual quota clock by `ms`: refills every tenant's
    /// token bucket as if `ms` milliseconds of wall time had passed.
    /// Only meaningful with [`TenancyConfig::virtual_time`] set (it is a
    /// no-op otherwise) — the trace-replay harness drives admission
    /// entirely from this, so quota rejections are a pure function of
    /// the replayed schedule.
    pub fn advance_quota_ms(&self, ms: f64) {
        lock(&self.shared.queue.state).quotas.advance_ms(ms);
    }

    /// One Prometheus exposition of every tenant's
    /// `adapt_service_tenant_*` series, each labelled `tenant="tN"` —
    /// the same label-injection machinery the fleet uses for
    /// shard labels. Empty until the first tenant-attributed event.
    pub fn render_tenant_metrics(&self) -> String {
        let parts: Vec<(String, String)> = lock(&self.shared.tenant_metrics)
            .iter()
            .map(|(tenant, tm)| (tenant.to_string(), tm.registry.render_prometheus()))
            .collect();
        adapt_obs::merge_expositions("tenant", &parts)
    }

    /// Depth-proportional backoff hint: the observed mean service time
    /// tells a rejected client roughly when a queue slot frees up.
    fn retry_after_ms(&self, depth: usize) -> u64 {
        let m = &self.shared.metrics;
        let workers = self.shared.config.workers.max(1) as u64;
        retry_estimate_ms(
            depth as u64,
            workers,
            m.fresh_service_us_total.get(),
            m.fresh_completed.get(),
            m.service_us_total.get(),
            m.completed.get(),
        )
    }
}

/// The retry-after estimate behind [`ServiceError::Rejected`]: how long
/// `depth` queued requests take to drain across `workers` workers at the
/// observed mean service time.
///
/// The mean is taken over *search-running* completions only
/// (fresh/degraded/partial provenance). A rejected client is by
/// definition behind a full queue, and what fills queues is search work
/// — averaging in sub-ms cache and heuristic hits (the old behavior)
/// told clients to retry orders of magnitude too early, turning one
/// rejection into a retry storm. Falls back to the all-tier mean before
/// any search has completed, and to 50 ms per request with no data at
/// all.
fn retry_estimate_ms(
    depth: u64,
    workers: u64,
    fresh_us_total: u64,
    fresh_completed: u64,
    all_us_total: u64,
    all_completed: u64,
) -> u64 {
    let mean_us = fresh_us_total
        .checked_div(fresh_completed)
        .or_else(|| all_us_total.checked_div(all_completed))
        .unwrap_or(50_000);
    ((depth * mean_us) / workers.max(1) / 1000).max(1)
}

impl Drop for MaskService {
    fn drop(&mut self) {
        if !self.workers.is_empty() {
            self.shutdown_inner();
        }
    }
}

fn lock<'a, T>(m: &'a Mutex<T>) -> std::sync::MutexGuard<'a, T> {
    m.lock().unwrap_or_else(|poisoned| poisoned.into_inner())
}

enum Work {
    Client(Job),
    Refine(RefineJob),
}

/// Background snapshot loop: publish a snapshot every `interval` until
/// the kill-switch fires. Snapshot I/O errors are counted (in
/// `adapt_service_persist_snapshot_failures_total`) and retried on the
/// next tick — a full disk must degrade durability, not serving.
fn persist_loop(shared: &Arc<Shared>, stop: &Arc<(Mutex<bool>, Condvar)>, interval: Duration) {
    let (flag, cvar) = &**stop;
    let mut stopped = lock(flag);
    loop {
        if *stopped {
            return;
        }
        stopped = cvar
            .wait_timeout(stopped, interval)
            .unwrap_or_else(|poisoned| poisoned.into_inner())
            .0;
        if *stopped {
            return;
        }
        drop(stopped);
        if let Some(p) = &shared.persist {
            let _ = p.snapshot(&shared.cache, &shared.registry);
        }
        stopped = lock(flag);
    }
}

fn worker_loop(shared: &Arc<Shared>) {
    loop {
        let (work, more_work) = {
            let mut state = lock(&shared.queue.state);
            loop {
                if let Some((_tenant, job)) = state.jobs.pop(&shared.config.tenancy) {
                    shared.metrics.queue_depth.set(state.jobs.len() as i64);
                    // Lost-wakeup guard: this worker may have absorbed
                    // two notifications (a submit's and a refine
                    // enqueue's) while it held one wait slot. If
                    // eligible work remains — more client jobs, or a
                    // refine with a free slot — pass the signal on so a
                    // still-parked sibling picks it up.
                    let more = !state.jobs.is_empty()
                        || (state.refine_active < shared.config.tiers.refine_concurrency
                            && !state.refine.is_empty());
                    break (Work::Client(job), more);
                }
                // Refines are strictly lower priority: only an otherwise
                // idle worker picks one up, and at most
                // `refine_concurrency` run at once so a refine burst can
                // never starve the client lane of the whole pool.
                if state.refine_active < shared.config.tiers.refine_concurrency {
                    if let Some(refine) = state.refine.pop_front() {
                        state.refine_active += 1;
                        let more = state.refine_active < shared.config.tiers.refine_concurrency
                            && !state.refine.is_empty();
                        break (Work::Refine(refine), more);
                    }
                }
                if shared.shutdown.load(Ordering::SeqCst) {
                    return;
                }
                state = shared
                    .queue
                    .available
                    .wait(state)
                    .unwrap_or_else(|poisoned| poisoned.into_inner());
            }
        };
        if more_work {
            shared.queue.available.notify_one();
        }
        let job = match work {
            Work::Client(job) => job,
            Work::Refine(refine) => {
                // A panicking refine must not kill the worker: the
                // unwind drops the job (releasing the ticket) and is
                // counted like any other worker panic.
                if catch_unwind(AssertUnwindSafe(|| run_refine(shared, refine))).is_err() {
                    shared.metrics.worker_panics.inc();
                }
                let mut state = lock(&shared.queue.state);
                state.refine_active -= 1;
                let idle = state.refine.is_empty() && state.refine_active == 0;
                drop(state);
                if idle {
                    shared.queue.refine_idle.notify_all();
                }
                // Another queued refine may now be eligible.
                shared.queue.available.notify_one();
                continue;
            }
        };
        let queued_us = job.enqueued.elapsed().as_micros() as u64;
        let device = job.request.device();
        let tm = tenant_metrics(shared, job.request.tenancy().tenant);
        let m = &shared.metrics;
        // A deadline that lapsed while the job sat queued: counted and
        // answered with the typed error, never executed.
        if job.deadline.check().is_err() {
            m.completed.inc();
            m.failed.inc();
            m.deadline_dropped.inc();
            m.deadline_exceeded.inc();
            m.queued_us.record(queued_us);
            tm.completed.inc();
            tm.deadline_exceeded.inc();
            tm.inflight.add(-1);
            tm.request_us.record(queued_us);
            if job.admission == Admission::Probe {
                shared.health.probe_inconclusive(device);
            }
            let _ = job.reply.send(Err(deadline_error(&job.deadline)));
            continue;
        }
        let served = Instant::now();
        let admission = job.admission;
        let deadline = job.deadline.clone();
        let outcome = catch_unwind(AssertUnwindSafe(|| {
            handle_request(shared, job.request, queued_us, &deadline, admission)
        }));
        let service_us = served.elapsed().as_micros() as u64;
        m.completed.inc();
        m.service_us_total.add(service_us);
        m.queued_us.record(queued_us);
        m.service_us.record(service_us);
        m.request_us.record(queued_us + service_us);
        // Health is judged on the raw outcome, before any late-response
        // conversion: breaker transitions then depend only on the seeded
        // search outcomes and the admission order, not on wall-clock
        // luck.
        record_health(shared, device, admission, &outcome);
        let reply = match outcome {
            Ok(result) => {
                let result = finalize_deadline(result, &job.deadline, m);
                if result.is_err() {
                    m.failed.inc();
                }
                result
            }
            Err(payload) => {
                m.worker_panics.inc();
                m.failed.inc();
                let reason = payload
                    .downcast_ref::<&str>()
                    .map(|s| (*s).to_string())
                    .or_else(|| payload.downcast_ref::<String>().cloned())
                    .unwrap_or_else(|| "panic with non-string payload".to_string());
                Err(ServiceError::Internal { reason })
            }
        };
        // Only search-running completions feed the retry-after
        // estimator: a rejected client is waiting behind search work,
        // not behind cache hits (see `retry_estimate_ms`).
        if let Ok(response) = &reply {
            if matches!(
                provenance_of(response),
                Some(
                    Provenance::FreshSearch | Provenance::DegradedAllDd | Provenance::PartialSearch
                )
            ) {
                m.fresh_service_us_total.add(service_us);
                m.fresh_completed.inc();
            }
        }
        tm.completed.inc();
        if matches!(reply, Err(ServiceError::DeadlineExceeded { .. })) {
            tm.deadline_exceeded.inc();
        }
        tm.inflight.add(-1);
        tm.request_us.record(queued_us + service_us);
        // A client that dropped its Pending just doesn't read the answer.
        let _ = job.reply.send(reply);
    }
}

/// The typed deadline error, with the numbers read off the deadline
/// itself.
fn deadline_error(deadline: &Deadline) -> ServiceError {
    ServiceError::DeadlineExceeded {
        elapsed_ms: deadline.elapsed_ms(),
        budget_ms: deadline.budget_ms().unwrap_or(0),
    }
}

/// The provenance a response carries, if any.
fn provenance_of(response: &Response) -> Option<Provenance> {
    match response {
        Response::Mask(r) => Some(r.provenance),
        Response::Execution(e) => e.provenance,
    }
}

/// Feeds one request outcome into the device's breaker. Only
/// backend-touching verdicts count: a fresh search is a success, a
/// degraded or failed one a failure; cache hits, fallbacks and
/// deadline interruptions say nothing about device health. A worker
/// panic counts as a failure (the device's stack brought a worker
/// down).
fn record_health(
    shared: &Shared,
    device: DeviceId,
    admission: Admission,
    outcome: &Result<Result<Response, ServiceError>, Box<dyn std::any::Any + Send>>,
) {
    let verdict: Option<bool> = match outcome {
        Err(_) => Some(true),
        Ok(Ok(response)) => match provenance_of(response) {
            Some(Provenance::FreshSearch) => Some(false),
            Some(Provenance::DegradedAllDd) => Some(true),
            _ => None,
        },
        Ok(Err(ServiceError::Failed(_))) => Some(true),
        Ok(Err(_)) => None,
    };
    match (admission, verdict) {
        (Admission::Probe, Some(failure)) => shared.health.record_probe(device, failure),
        (Admission::Probe, None) => shared.health.probe_inconclusive(device),
        (Admission::Proceed, Some(failure)) => shared.health.record(device, failure),
        _ => {}
    }
}

/// Boundary enforcement of the deadline contract: a response may cross
/// the deadline only if it is itself the deadline outcome — a partial
/// or breaker-fallback mask, or a typed error. Anything else that
/// finished late is converted to [`ServiceError::DeadlineExceeded`], so
/// "no full response after its deadline" holds by construction.
fn finalize_deadline(
    result: Result<Response, ServiceError>,
    deadline: &Deadline,
    metrics: &Metrics,
) -> Result<Response, ServiceError> {
    match result {
        Ok(response) => {
            let conservative = matches!(
                provenance_of(&response),
                Some(
                    Provenance::PartialSearch
                        | Provenance::BreakerFallback
                        | Provenance::Heuristic
                        | Provenance::StaleServed { .. }
                )
            );
            if !conservative && deadline.check().is_err() {
                metrics.deadline_exceeded.inc();
                Err(deadline_error(deadline))
            } else {
                Ok(response)
            }
        }
        // In-flight interruptions surface as the executor's typed error
        // wrapped in Failed; unwrap them to the service-level variant.
        Err(ServiceError::Failed(AdaptError::Exec(e))) if e.is_interruption() => {
            metrics.deadline_exceeded.inc();
            Err(deadline_error(deadline))
        }
        Err(e) => Err(e),
    }
}

fn handle_request(
    shared: &Arc<Shared>,
    request: Request,
    queued_us: u64,
    deadline: &Deadline,
    admission: Admission,
) -> Result<Response, ServiceError> {
    match request {
        Request::RecommendMask {
            circuit,
            device,
            protocol,
            budget,
            ..
        } => {
            let served = Instant::now();
            let (rec, _) = if admission == Admission::Fallback {
                breaker_fallback(shared, &circuit, device, protocol)?
            } else {
                recommend(shared, &circuit, device, protocol, budget, deadline)?
            };
            let timing = Timing {
                queued_us,
                service_us: served.elapsed().as_micros() as u64,
            };
            Ok(Response::Mask(Recommendation { timing, ..rec }))
        }
        Request::Execute {
            circuit,
            device,
            policy,
            ..
        } => {
            // An execution has to touch the backend; there is no
            // conservative mask to serve in its place while the breaker
            // is open.
            if admission == Admission::Fallback {
                return Err(ServiceError::DeviceUnhealthy {
                    device,
                    retry_after_ms: shared.health.retry_hint_ms(device),
                });
            }
            let served = Instant::now();
            let exec = execute(shared, &circuit, device, policy, deadline)?;
            let timing = Timing {
                queued_us,
                service_us: served.elapsed().as_micros() as u64,
            };
            Ok(Response::Execution(Execution { timing, ..exec }))
        }
    }
}

/// Serves a request whose device breaker is open without touching the
/// backend: the cached mask when one exists (any epoch match), the
/// conservative all-DD mask otherwise. Never cached, never counted as a
/// search.
fn breaker_fallback(
    shared: &Arc<Shared>,
    circuit: &qcirc::Circuit,
    device: DeviceId,
    protocol: DdProtocol,
) -> Result<(Recommendation, Machine), ServiceError> {
    let (epoch, machine) = shared
        .registry
        .snapshot(device)
        .ok_or(ServiceError::DeviceNotServed(device))?;
    let compiled = transpile(circuit, machine.device(), &TranspileOptions::default());
    let key = MaskKey {
        device,
        epoch,
        circuit_hash: machine::structural_hash(&compiled.timed),
        protocol,
        decoy: shared.config.decoy,
    };
    // `adapt_service_breaker_fallbacks_total` was already incremented by
    // the tracker when it handed out this Fallback admission.
    let rec = match shared.cache.peek(&key) {
        Some(cached) => Recommendation {
            key,
            mask: cached.mask,
            decoy_fidelity: cached.decoy_fidelity,
            decoy_runs: cached.decoy_runs,
            provenance: Provenance::BreakerFallback,
            degraded: cached.degraded,
            timing: Timing::default(),
        },
        None => Recommendation {
            key,
            mask: DdMask::all(circuit.num_qubits()),
            decoy_fidelity: 0.0,
            decoy_runs: 0,
            provenance: Provenance::BreakerFallback,
            degraded: true,
            timing: Timing::default(),
        },
    };
    Ok((rec, machine))
}

/// Builds the deterministic per-request backend stack for `key` (see the
/// module-level determinism contract). The request's deadline bounds the
/// retry ladder: backoff is clamped to the remaining budget and charged
/// against it, and an expired deadline fails attempts fast with the
/// typed error instead of climbing further.
fn backend_for(
    shared: &Shared,
    machine: Machine,
    device: DeviceId,
    fingerprint: u64,
    deadline: &Deadline,
) -> Adapt {
    let seed = shared.config.seed ^ fingerprint.rotate_left(17);
    let profile = lock(&shared.fault_overrides)
        .get(&device)
        .copied()
        .unwrap_or(shared.config.fault_profile);
    let faulty = FaultyBackend::new(machine, profile, seed);
    let resilient = ResilientExecutor::with_policy(Arc::new(faulty), shared.config.retry)
        .with_deadline(deadline.clone());
    Adapt::with_backend(Arc::new(resilient))
}

fn adapt_config(
    shared: &Shared,
    protocol: DdProtocol,
    budget: SearchBudget,
    fingerprint: u64,
) -> AdaptConfig {
    let exec = ExecutionConfig {
        shots: budget.shots,
        trajectories: budget.trajectories,
        // Workers provide the parallelism; single-threaded trajectories
        // keep each request cheap and trivially deterministic.
        threads: 1,
        seed: shared.config.seed ^ fingerprint,
    };
    AdaptConfig {
        dd: DdConfig::for_protocol(protocol),
        decoy_kind: shared.config.decoy,
        neighborhood: budget.neighborhood.max(1),
        search_exec: exec,
        final_exec: exec,
        ..AdaptConfig::default()
    }
}

/// Accepts `ticket`'s key into the background-refine lane. Returns
/// whether the job was queued; a full or disabled lane (or a shutting-
/// down service) drops the ticket instead — releasing the key — and
/// counts the drop. Never blocks.
fn enqueue_refine(
    shared: &Arc<Shared>,
    ticket: SearchTicket,
    circuit: qcirc::Circuit,
    budget: SearchBudget,
) -> bool {
    let accepted = {
        let mut state = lock(&shared.queue.state);
        if shared.shutdown.load(Ordering::SeqCst)
            || !state.refiner_enabled
            || state.refine.len() >= shared.config.tiers.refine_queue_capacity
        {
            false
        } else {
            state.refine.push_back(RefineJob {
                ticket,
                circuit,
                budget,
                enqueued: Instant::now(),
            });
            true
        }
    };
    if accepted {
        shared.metrics.refines_enqueued.inc();
        shared.queue.available.notify_one();
    } else {
        // The ticket was not moved into a job: it drops when this
        // function returns (after the queue lock is released), which
        // releases the key to future lookups.
        shared.metrics.refines_dropped.inc();
    }
    accepted
}

/// Executes one background refine: a full (deadline-free) search for the
/// ticket's key, publishing the result through the single-flight
/// protocol. The search is seeded exactly like an inline one, so the
/// upgraded cache entry is bit-identical to what a foreground search of
/// the same key and budget would have produced. Skipped (ticket
/// released, drop counted) when the device's epoch has moved past the
/// key — a refine of yesterday's calibration helps nobody.
fn run_refine(shared: &Arc<Shared>, job: RefineJob) {
    let key = job.ticket.key();
    let Some((current_epoch, current_machine)) = shared.registry.snapshot(key.device) else {
        shared.metrics.refines_dropped.inc();
        return;
    };
    // Current-epoch refines (stale-serve upgrades) use the live machine;
    // next-epoch refines (prewarm) characterize against the peeked one.
    let machine = if key.epoch == current_epoch {
        current_machine
    } else {
        match shared.registry.peek_next_epoch(key.device) {
            Some((next, m)) if key.epoch == next => m,
            _ => {
                shared.metrics.refines_dropped.inc();
                return;
            }
        }
    };
    let compiled = transpile(&job.circuit, machine.device(), &TranspileOptions::default());
    let fingerprint = key.fingerprint();
    let deadline = Deadline::none();
    let adapt = backend_for(shared, machine, key.device, fingerprint, &deadline);
    let cfg = adapt_config(shared, key.protocol, job.budget, fingerprint);
    let Ok(decoy) = make_decoy(&compiled.timed, cfg.decoy_kind) else {
        shared.metrics.refines_dropped.inc();
        return;
    };
    match adapt.choose_mask_with_decoy_deadline(
        &compiled,
        &decoy,
        job.circuit.num_qubits(),
        &cfg,
        deadline,
    ) {
        Ok(result) if !result.partial => {
            job.ticket.complete(cached_from(&result));
            shared.metrics.refines_completed.inc();
            shared
                .metrics
                .refine_us
                .record(job.enqueued.elapsed().as_micros() as u64);
        }
        // Failed or (impossibly, with no deadline) partial: release the
        // key by dropping the ticket, count the drop.
        _ => {
            shared.metrics.refines_dropped.inc();
        }
    }
}

/// The cache value a completed search result publishes — shared by the
/// inline and refine paths so both produce identical entries.
fn cached_from(result: &adapt::SearchResult) -> CachedMask {
    let decoy_fidelity = result
        .evaluations
        .iter()
        .filter(|s| s.mask == result.best)
        .map(|s| s.fidelity)
        .next_back()
        .unwrap_or(0.0);
    CachedMask {
        mask: result.best,
        decoy_fidelity,
        decoy_runs: result.decoy_runs(),
        degraded: result.is_degraded(),
    }
}

/// Resolves a recommendation through the cache (single-flight on miss).
/// Returns the recommendation (timing zeroed — the caller stamps it) and
/// the epoch machine, so `execute` can reuse both.
fn recommend(
    shared: &Arc<Shared>,
    circuit: &qcirc::Circuit,
    device: DeviceId,
    protocol: DdProtocol,
    budget: SearchBudget,
    deadline: &Deadline,
) -> Result<(Recommendation, Machine), ServiceError> {
    let (epoch, machine) = shared
        .registry
        .snapshot(device)
        .ok_or(ServiceError::DeviceNotServed(device))?;
    let compiled = transpile(circuit, machine.device(), &TranspileOptions::default());
    let key = MaskKey {
        device,
        epoch,
        circuit_hash: machine::structural_hash(&compiled.timed),
        protocol,
        decoy: shared.config.decoy,
    };
    let tiers = shared.config.tiers;
    let stale_key = key.stale_key(logical_hash(circuit));
    // Remember the logical program under its epoch-independent identity,
    // so a later prewarm of this (hot) key can rebuild the circuit.
    lock(&shared.programs).record(stale_key, circuit, shared.config.cache_capacity);

    // Which rung of the ladder does this request start on? SearchOnly
    // and a comfortably-remaining deadline take the blocking search
    // path; HeuristicOnly and a too-tight deadline take the
    // never-blocking fast path (tier 0 floor).
    let fits_search = deadline
        .remaining_ms()
        .is_none_or(|remaining| remaining >= tiers.min_search_ms);
    let search_path = match budget.tier {
        TierPolicy::SearchOnly => true,
        TierPolicy::HeuristicOnly => false,
        TierPolicy::Auto => fits_search,
    };

    let (cached, provenance) = if search_path {
        // SearchOnly pins pre-ladder semantics: no stale serving at all.
        let max_stale = if budget.tier == TierPolicy::SearchOnly {
            0
        } else {
            tiers.max_stale_epochs
        };
        match MaskCache::lookup_tiered(&shared.cache, key, stale_key, max_stale) {
            TieredLookup::Hit(cached) => (cached, Provenance::CacheHit),
            TieredLookup::Stale {
                value,
                age_epochs,
                refresh,
            } => serve_stale(shared, circuit, budget, value, age_epochs, refresh),
            TieredLookup::Miss(ticket) => search_inline(
                shared,
                circuit,
                &compiled,
                &key,
                machine.clone(),
                budget,
                deadline,
                ticket,
            )?,
        }
    } else {
        match MaskCache::lookup_fast(&shared.cache, key, stale_key, tiers.max_stale_epochs) {
            FastLookup::Hit(cached) => (cached, Provenance::CacheHit),
            FastLookup::Stale {
                value,
                age_epochs,
                refresh,
            } => serve_stale(shared, circuit, budget, value, age_epochs, refresh),
            FastLookup::Cold(ticket) => {
                // Tier 0: answer from calibration alone, instantly. The
                // heuristic mask is served but never cached — only a
                // real search may publish under the key. An Auto caller
                // holding the cold ticket hands it to the refiner so the
                // key upgrades to FreshSearch in the background;
                // HeuristicOnly pinned "no search work", so its ticket
                // drops here, releasing the key.
                if let Some(ticket) = ticket {
                    if budget.tier == TierPolicy::Auto {
                        enqueue_refine(shared, ticket, circuit.clone(), budget);
                    }
                }
                let h = heuristic_mask(
                    &compiled,
                    machine.device(),
                    circuit.num_qubits(),
                    &tiers.heuristic,
                );
                shared.metrics.heuristic_served.inc();
                (
                    CachedMask {
                        mask: h.mask,
                        decoy_fidelity: 0.0,
                        decoy_runs: 0,
                        degraded: false,
                    },
                    Provenance::Heuristic,
                )
            }
        }
    };
    Ok((
        Recommendation {
            key,
            mask: cached.mask,
            decoy_fidelity: cached.decoy_fidelity,
            decoy_runs: cached.decoy_runs,
            provenance,
            degraded: cached.degraded,
            timing: Timing::default(),
        },
        machine,
    ))
}

/// Serves a superseded-epoch value (tier 1). The first serve per flight
/// group carries the refine ticket — hand it to the background lane so
/// the key upgrades to a fresh search; a HeuristicOnly caller pinned "no
/// search work", so its ticket drops, releasing the key.
fn serve_stale(
    shared: &Arc<Shared>,
    circuit: &qcirc::Circuit,
    budget: SearchBudget,
    value: CachedMask,
    age_epochs: u64,
    refresh: Option<SearchTicket>,
) -> (CachedMask, Provenance) {
    if let Some(ticket) = refresh {
        if budget.tier == TierPolicy::HeuristicOnly {
            drop(ticket);
        } else {
            enqueue_refine(shared, ticket, circuit.clone(), budget);
        }
    }
    shared.metrics.stale_served.inc();
    (value, Provenance::StaleServed { age_epochs })
}

/// The inline (blocking) search a request runs when it owns the key's
/// single-flight ticket and its deadline affords one. `machine` must be
/// the epoch snapshot the key was built from.
#[allow(clippy::too_many_arguments)]
fn search_inline(
    shared: &Arc<Shared>,
    circuit: &qcirc::Circuit,
    compiled: &transpiler::TranspiledCircuit,
    key: &MaskKey,
    machine: Machine,
    budget: SearchBudget,
    deadline: &Deadline,
    ticket: SearchTicket,
) -> Result<(CachedMask, Provenance), ServiceError> {
    // This request owns the search. Any failure drops the ticket,
    // releasing the key to coalesced waiters.
    let adapt = backend_for(shared, machine, key.device, key.fingerprint(), deadline);
    let cfg = adapt_config(shared, key.protocol, budget, key.fingerprint());
    let decoy =
        make_decoy(&compiled.timed, cfg.decoy_kind).map_err(|e| ServiceError::Failed(e.into()))?;
    let result = adapt.choose_mask_with_decoy_deadline(
        compiled,
        &decoy,
        circuit.num_qubits(),
        &cfg,
        deadline.clone(),
    )?;
    shared.metrics.searches.inc();
    let cached = cached_from(&result);
    if result.partial {
        // A deadline-truncated mask is served but never cached: dropping
        // the ticket releases the key, so the next request (or a
        // coalesced waiter) searches afresh with its own budget. Caching
        // it would let one tight deadline poison every later request for
        // the key.
        drop(ticket);
        shared.metrics.partial_searches.inc();
        Ok((cached, Provenance::PartialSearch))
    } else {
        ticket.complete(cached);
        let provenance = if cached.degraded {
            Provenance::DegradedAllDd
        } else {
            Provenance::FreshSearch
        };
        Ok((cached, provenance))
    }
}

fn execute(
    shared: &Arc<Shared>,
    circuit: &qcirc::Circuit,
    device: DeviceId,
    policy: Policy,
    deadline: &Deadline,
) -> Result<Execution, ServiceError> {
    let n = circuit.num_qubits();
    let budget = shared.config.default_budget;
    let protocol = DdProtocol::default();
    // ADAPT goes through the cache; the fixed policies skip straight to
    // the final run. Runtime-Best delegates to the framework sweep (its
    // oversized-program rejection surfaces as a typed error here).
    let (mask, provenance, epoch, machine) = match policy {
        Policy::Adapt => {
            let (rec, machine) = recommend(shared, circuit, device, protocol, budget, deadline)?;
            (rec.mask, Some(rec.provenance), rec.key.epoch, machine)
        }
        Policy::NoDd | Policy::AllDd => {
            let (epoch, machine) = shared
                .registry
                .snapshot(device)
                .ok_or(ServiceError::DeviceNotServed(device))?;
            let mask = if policy == Policy::NoDd {
                DdMask::none(n)
            } else {
                DdMask::all(n)
            };
            (mask, None, epoch, machine)
        }
        Policy::RuntimeBest => {
            let (epoch, machine) = shared
                .registry
                .snapshot(device)
                .ok_or(ServiceError::DeviceNotServed(device))?;
            let fingerprint = 0x5EED_0DD5u64 ^ (epoch << 32);
            let adapt = backend_for(shared, machine, device, fingerprint, deadline);
            let cfg = adapt_config(shared, protocol, budget, fingerprint);
            let run = adapt.run_policy(circuit, policy, &cfg)?;
            return Ok(Execution {
                device,
                epoch,
                policy,
                mask: run.mask,
                fidelity: run.fidelity,
                pulse_count: run.pulse_count,
                provenance: None,
                timing: Timing::default(),
            });
        }
    };
    // The final run is seeded from the same key material as the search,
    // so executions are deterministic per (device, epoch, circuit) too.
    let compiled = transpile(circuit, machine.device(), &TranspileOptions::default());
    let key = MaskKey {
        device,
        epoch,
        circuit_hash: machine::structural_hash(&compiled.timed),
        protocol,
        decoy: shared.config.decoy,
    };
    let adapt = backend_for(
        shared,
        machine,
        device,
        key.fingerprint() ^ 0xEC5E_C0DE,
        deadline,
    );
    let cfg = adapt_config(shared, protocol, budget, key.fingerprint());
    let ideal = adapt.ideal_output(circuit)?;
    let (_counts, fidelity, pulse_count) = adapt.run_with_mask(&compiled, &ideal, mask, &cfg)?;
    Ok(Execution {
        device,
        epoch,
        policy,
        mask,
        fidelity,
        pulse_count,
        provenance,
        timing: Timing::default(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The skewed-mix regression the old estimator got wrong: 990
    /// sub-ms cache hits and 10 two-second searches. The all-tier mean
    /// (~20.9 ms) would tell a client behind 8 queued searches to retry
    /// in ~83 ms — two orders of magnitude early. The fresh-tier mean
    /// says ~8 s, which is when a slot actually frees up.
    #[test]
    fn retry_estimate_uses_fresh_tier_mean_under_skewed_mix() {
        let fresh_us = 10 * 2_000_000u64; // 10 searches, 2 s each
        let cache_us = 990 * 900u64; // 990 cache hits, 0.9 ms each
        let est = retry_estimate_ms(8, 2, fresh_us, 10, fresh_us + cache_us, 1000);
        assert_eq!(est, 8_000, "8 searches / 2 workers at 2 s each");
        // The old all-tier estimate for comparison: far too optimistic.
        let old = retry_estimate_ms(8, 2, 0, 0, fresh_us + cache_us, 1000);
        assert!(old < 100, "all-tier mean collapses to {old} ms");
    }

    #[test]
    fn retry_estimate_falls_back_without_fresh_data() {
        // No fresh completions yet: all-tier mean.
        assert_eq!(retry_estimate_ms(4, 1, 0, 0, 400_000, 4), 400);
        // No data at all: 50 ms per queued request.
        assert_eq!(retry_estimate_ms(4, 1, 0, 0, 0, 0), 200);
        // Never zero, and worker count of zero is clamped.
        assert_eq!(retry_estimate_ms(0, 0, 0, 0, 0, 0), 1);
    }

    #[test]
    fn quota_exhausted_display_names_the_tenant() {
        let e = ServiceError::QuotaExhausted {
            tenant: TenantId(9),
            retry_after_ms: 120,
        };
        let s = e.to_string();
        assert!(s.contains("t9") && s.contains("120"), "got: {s}");
    }
}
