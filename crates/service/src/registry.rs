//! Device registry: named hardware presets advancing through seeded
//! calibration epochs.
//!
//! A deployment serves several machines at once, and each machine's
//! calibration drifts: IBMQ-style backends recalibrate roughly daily, and
//! a mask chosen under yesterday's calibration is stale today (PAPER §6.4
//! measures exactly this decay). The registry models that lifecycle with
//! the existing drift machinery — every *epoch* of a device is
//! [`Device::at_calibration_cycle`] of the base preset, so epoch `k` is a
//! pure function of `(preset, seed, k)` and two registries built from the
//! same seed agree bit-for-bit on every epoch's calibration.
//!
//! Each registered device carries a base [`Machine`] per epoch. Lookups
//! hand out *clones* of that machine: clones share the epoch's
//! [`PlanCache`](machine::PlanCache), so every worker serving the same
//! device+epoch reuses the same compiled execution plans. Advancing an
//! epoch swaps in a fresh machine (plans are calibration-dependent, so the
//! old cache must not leak into the new epoch).

use device::{Device, SeedSpawner};
use machine::Machine;
use std::collections::HashMap;
use std::sync::Mutex;

/// A servable hardware preset.
///
/// The closed set keeps registry state `Copy`-keyed and lets workloads
/// name devices in configs and JSON without string plumbing.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum DeviceId {
    /// 16-qubit IBMQ-Guadalupe.
    Guadalupe,
    /// 27-qubit IBMQ-Paris (Falcon).
    Paris,
    /// 27-qubit IBMQ-Toronto (Falcon).
    Toronto,
    /// 5-qubit IBMQ-Rome (line).
    Rome,
    /// 5-qubit IBMQ-London (T).
    London,
}

impl DeviceId {
    /// Every servable preset.
    pub const ALL: [DeviceId; 5] = [
        DeviceId::Guadalupe,
        DeviceId::Paris,
        DeviceId::Toronto,
        DeviceId::Rome,
        DeviceId::London,
    ];

    /// Stable lowercase name (CLI flags, JSON, cache-key provenance).
    pub fn name(self) -> &'static str {
        match self {
            DeviceId::Guadalupe => "guadalupe",
            DeviceId::Paris => "paris",
            DeviceId::Toronto => "toronto",
            DeviceId::Rome => "rome",
            DeviceId::London => "london",
        }
    }

    /// Parses [`Self::name`] back (case-insensitive).
    pub fn by_name(name: &str) -> Option<DeviceId> {
        DeviceId::ALL
            .into_iter()
            .find(|id| id.name().eq_ignore_ascii_case(name))
    }

    /// Builds the epoch-0 device for this preset.
    pub fn build(self, seed: u64) -> Device {
        match self {
            DeviceId::Guadalupe => Device::ibmq_guadalupe(seed),
            DeviceId::Paris => Device::ibmq_paris(seed),
            DeviceId::Toronto => Device::ibmq_toronto(seed),
            DeviceId::Rome => Device::ibmq_rome(seed),
            DeviceId::London => Device::ibmq_london(seed),
        }
    }
}

impl std::fmt::Display for DeviceId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// One registered device at its current calibration epoch.
#[derive(Debug)]
struct EpochState {
    /// Epoch-0 device; every later epoch derives from it.
    base: Device,
    /// Current calibration epoch (0 at registration).
    epoch: u64,
    /// Machine bound to the current epoch's calibration. Clones handed to
    /// workers share its plan cache.
    machine: Machine,
}

/// The set of devices a [`MaskService`](crate::MaskService) serves, each
/// at its own calibration epoch.
#[derive(Debug)]
pub struct DeviceRegistry {
    entries: Mutex<HashMap<DeviceId, EpochState>>,
}

impl DeviceRegistry {
    /// Registers `devices`, each seeded from a stable per-preset stream
    /// derived from `seed` (registration *order* does not affect any
    /// device's calibration).
    pub fn new(devices: &[DeviceId], seed: u64) -> Self {
        let spawner = SeedSpawner::new(seed);
        // FNV-1a of the preset name: a stable u64 label per device, so
        // registration order never shifts any device's seed stream.
        let label = |id: DeviceId| {
            id.name().bytes().fold(0xcbf2_9ce4_8422_2325u64, |h, b| {
                (h ^ b as u64).wrapping_mul(0x1000_0000_01b3)
            })
        };
        let entries = devices
            .iter()
            .map(|&id| {
                let base = id.build(spawner.derive(label(id)));
                let machine = Machine::new(base.clone());
                (
                    id,
                    EpochState {
                        base,
                        epoch: 0,
                        machine,
                    },
                )
            })
            .collect();
        DeviceRegistry {
            entries: Mutex::new(entries),
        }
    }

    /// The registered devices, in stable [`DeviceId::ALL`] order.
    pub fn devices(&self) -> Vec<DeviceId> {
        let entries = self.lock();
        DeviceId::ALL
            .into_iter()
            .filter(|id| entries.contains_key(id))
            .collect()
    }

    /// Current calibration epoch of `id`, or `None` when unregistered.
    pub fn epoch(&self, id: DeviceId) -> Option<u64> {
        self.lock().get(&id).map(|s| s.epoch)
    }

    /// Current `(epoch, machine)` of `id`. The machine is a clone sharing
    /// the epoch's plan cache with every other clone handed out for it.
    pub fn snapshot(&self, id: DeviceId) -> Option<(u64, Machine)> {
        self.lock().get(&id).map(|s| (s.epoch, s.machine.clone()))
    }

    /// Advances `id` to its next calibration epoch: the device drifts via
    /// [`Device::at_calibration_cycle`] and the machine (with its
    /// calibration-dependent plan cache) is rebuilt. Returns the new
    /// epoch, or `None` when unregistered.
    pub fn advance_epoch(&self, id: DeviceId) -> Option<u64> {
        let mut entries = self.lock();
        let state = entries.get_mut(&id)?;
        state.epoch += 1;
        state.machine = Machine::new(state.base.at_calibration_cycle(state.epoch));
        Some(state.epoch)
    }

    /// Builds the machine `id` *will* run at its next calibration epoch,
    /// without advancing anything: epoch `k+1` is a pure function of the
    /// base preset, so proactive pre-epoch refresh can characterize
    /// against tomorrow's calibration today. The returned `(epoch,
    /// machine)` pair matches what [`Self::snapshot`] will report right
    /// after the next [`Self::advance_epoch`] (modulo the plan cache,
    /// which advance rebuilds fresh).
    pub fn peek_next_epoch(&self, id: DeviceId) -> Option<(u64, Machine)> {
        let entries = self.lock();
        let state = entries.get(&id)?;
        let next = state.epoch + 1;
        Some((next, Machine::new(state.base.at_calibration_cycle(next))))
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, HashMap<DeviceId, EpochState>> {
        // A poisoned registry only means a worker died mid-lookup; the
        // map itself is always consistent (mutations are single-write).
        self.entries
            .lock()
            .unwrap_or_else(|poisoned| poisoned.into_inner())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn names_round_trip() {
        for id in DeviceId::ALL {
            assert_eq!(DeviceId::by_name(id.name()), Some(id));
        }
        assert_eq!(DeviceId::by_name("GUADALUPE"), Some(DeviceId::Guadalupe));
        assert_eq!(DeviceId::by_name("andromeda"), None);
    }

    #[test]
    fn epochs_advance_and_drift_deterministically() {
        let reg = DeviceRegistry::new(&[DeviceId::Rome, DeviceId::London], 7);
        assert_eq!(reg.epoch(DeviceId::Rome), Some(0));
        assert_eq!(reg.epoch(DeviceId::Guadalupe), None);
        assert_eq!(reg.advance_epoch(DeviceId::Rome), Some(1));
        assert_eq!(reg.epoch(DeviceId::Rome), Some(1));
        assert_eq!(reg.epoch(DeviceId::London), Some(0));

        // Same seed elsewhere, even with a different device mix, lands on
        // bit-identical calibration at the same epoch.
        let other = DeviceRegistry::new(&[DeviceId::Rome], 7);
        other.advance_epoch(DeviceId::Rome);
        let (e1, m1) = reg.snapshot(DeviceId::Rome).expect("registered");
        let (e2, m2) = other.snapshot(DeviceId::Rome).expect("registered");
        assert_eq!((e1, e2), (1, 1));
        assert_eq!(m1.device().calibration(), m2.device().calibration());
    }

    #[test]
    fn peek_next_epoch_previews_without_advancing() {
        let reg = DeviceRegistry::new(&[DeviceId::Rome], 11);
        let (next, peeked) = reg.peek_next_epoch(DeviceId::Rome).expect("registered");
        assert_eq!(next, 1);
        assert_eq!(reg.epoch(DeviceId::Rome), Some(0), "peek must not advance");
        assert_eq!(reg.advance_epoch(DeviceId::Rome), Some(1));
        let (_, actual) = reg.snapshot(DeviceId::Rome).expect("registered");
        assert_eq!(
            peeked.device().calibration(),
            actual.device().calibration(),
            "the peeked calibration must be the one advance lands on"
        );
        assert_eq!(reg.peek_next_epoch(DeviceId::Guadalupe).map(|p| p.0), None);
    }

    /// Epoch-advance boundary: snapshots racing `at_calibration_cycle`
    /// must always observe a *consistent* pair — the machine's
    /// calibration cycle equals the reported epoch — and epochs must be
    /// monotone per observer. A torn read (old machine with new epoch or
    /// vice versa) would let a worker cache a mask under the wrong key.
    #[test]
    fn snapshot_racing_advance_is_never_torn() {
        use std::sync::atomic::{AtomicBool, Ordering};
        use std::sync::Arc;

        let reg = Arc::new(DeviceRegistry::new(&[DeviceId::Rome], 5));
        let stop = Arc::new(AtomicBool::new(false));
        let readers: Vec<_> = (0..3)
            .map(|_| {
                let reg = Arc::clone(&reg);
                let stop = Arc::clone(&stop);
                std::thread::spawn(move || {
                    let mut last_epoch = 0u64;
                    let mut observed = 0usize;
                    while !stop.load(Ordering::Relaxed) {
                        let (epoch, machine) = reg.snapshot(DeviceId::Rome).expect("registered");
                        assert_eq!(
                            machine.device().calibration().cycle,
                            epoch,
                            "snapshot handed out a machine from a different epoch"
                        );
                        assert!(epoch >= last_epoch, "epochs ran backwards");
                        last_epoch = epoch;
                        observed += 1;
                    }
                    observed
                })
            })
            .collect();
        for _ in 0..25 {
            reg.advance_epoch(DeviceId::Rome);
            std::thread::sleep(std::time::Duration::from_millis(1));
        }
        stop.store(true, Ordering::Relaxed);
        for r in readers {
            assert!(r.join().expect("reader") > 0, "reader observed snapshots");
        }
        assert_eq!(reg.epoch(DeviceId::Rome), Some(25));
    }

    #[test]
    fn snapshot_clones_share_one_plan_cache_per_epoch() {
        let reg = DeviceRegistry::new(&[DeviceId::Rome], 3);
        let (_, a) = reg.snapshot(DeviceId::Rome).expect("registered");
        let (_, b) = reg.snapshot(DeviceId::Rome).expect("registered");
        let mut c = qcirc::Circuit::new(2);
        c.h(0).cx(0, 1).measure_all();
        let cfg = machine::ExecutionConfig {
            shots: 16,
            trajectories: 2,
            seed: 1,
            threads: 1,
        };
        a.execute(&c, &cfg).expect("execute");
        b.execute(&c, &cfg).expect("execute");
        // The second machine's identical circuit hits the first's plan.
        assert!(b.plan_cache_stats().hits >= 1);

        // Advancing the epoch rebuilds the machine: fresh cache.
        reg.advance_epoch(DeviceId::Rome);
        let (_, fresh) = reg.snapshot(DeviceId::Rome).expect("registered");
        let stats = fresh.plan_cache_stats();
        assert_eq!((stats.hits, stats.misses), (0, 0));
    }
}
