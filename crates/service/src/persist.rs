//! Crash-safe durability for the [`MaskCache`] warm set.
//!
//! Every mask in the cache is the product of an expensive adaptive
//! search tied to a calibration epoch, so a process restart that drops
//! the warm set turns into a cold-miss storm (PR 6/9 measured exactly
//! that). This module makes a restart a non-event:
//!
//! - **Snapshot**: a periodic, atomically-published image of the whole
//!   cache (serving map, stale store, and per-device registry epochs) in
//!   a hand-rolled length-prefixed binary format mirroring the
//!   `fleet::wire` codec idiom. Every record is CRC32-checksummed and
//!   version-tagged.
//! - **Write-ahead journal**: an append-only log of the cache mutations
//!   between snapshots — inserts and epoch invalidations — emitted in
//!   mutation order from under the cache lock, so replay reconstructs
//!   the exact pre-crash state.
//! - **Recovery**: replays snapshot + journal. Any record failing
//!   checksum / version / length validation is **quarantined** — typed
//!   [`PersistError`], counted in `adapt_service_persist_*` metrics,
//!   never a panic, never served. Entries whose epoch predates the
//!   registry's current epoch drop into the stale store (the DESIGN §13
//!   staleness contract); current entries come back as warm hits,
//!   bit-identical to pre-crash responses.
//! - **Crash-point injection**: [`CrashPoint`] simulates process death
//!   inside [`atomic_write_with_crash`] (torn temp writes, kills before
//!   rename), and [`StorageFaultPlan`] is a `machine::fault`-style
//!   seeded corruption campaign (truncated tails, bit flips) for the
//!   `crash_chaos` harness.
//!
//! The dependency arrow points `fleet → service`, so this module cannot
//! import `fleet::wire`; instead it exposes its own table-based
//! [`crc32`], which `fleet::wire` reuses for its optional frame-checksum
//! trailer — one CRC implementation across both layers.

use crate::cache::{CachedMask, MaskCache, MaskKey, StaleKey};
use crate::registry::{DeviceId, DeviceRegistry};
use adapt::{DdProtocol, DecoyKind};
use device::SeedSpawner;
use std::fmt;
use std::fs;
use std::io::{self, Write as _};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, MutexGuard};

/// Snapshot file magic: `b"ADSP"` little-endian.
pub const SNAPSHOT_MAGIC: u32 = u32::from_le_bytes(*b"ADSP");

/// Journal file magic: `b"ADWL"` little-endian.
pub const JOURNAL_MAGIC: u32 = u32::from_le_bytes(*b"ADWL");

/// Format version, tagged on the file header and on every record.
pub const PERSIST_VERSION: u8 = 1;

/// Plausibility bound on a single record's body length. A length field
/// above this is treated as framing corruption (a bit flip in the
/// length itself) and quarantines the remainder of the file — past a
/// corrupt length there is no trustworthy record boundary.
pub const MAX_RECORD_BYTES: u32 = 4096;

const SNAPSHOT_FILE: &str = "snapshot.bin";
const JOURNAL_FILE: &str = "journal.wal";

// ---------------------------------------------------------------------------
// CRC32
// ---------------------------------------------------------------------------

/// CRC32 lookup table (IEEE 802.3 reflected polynomial `0xEDB88320`),
/// built at compile time.
const CRC32_TABLE: [u32; 256] = {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut crc = i as u32;
        let mut bit = 0;
        while bit < 8 {
            crc = if crc & 1 != 0 {
                (crc >> 1) ^ 0xEDB8_8320
            } else {
                crc >> 1
            };
            bit += 1;
        }
        table[i] = crc;
        i += 1;
    }
    table
};

/// CRC32 (IEEE) of `bytes`. Shared by the persistence record framing
/// here and the `fleet::wire` frame-checksum trailer.
pub fn crc32(bytes: &[u8]) -> u32 {
    let mut crc = 0xFFFF_FFFFu32;
    for &b in bytes {
        crc = (crc >> 8) ^ CRC32_TABLE[((crc ^ b as u32) & 0xFF) as usize];
    }
    !crc
}

// ---------------------------------------------------------------------------
// Errors
// ---------------------------------------------------------------------------

/// Typed validation failure of one persisted record (or file header).
/// Every variant is a quarantine reason — recovery counts it and moves
/// on; no corrupt input panics or reaches the serving map.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PersistError {
    /// File header magic did not match the expected store type.
    BadMagic {
        /// The magic read from the file.
        got: u32,
        /// The magic this store requires.
        expected: u32,
    },
    /// File or record version is newer than this build understands.
    BadVersion(u8),
    /// Stored CRC32 does not match the record body.
    ChecksumMismatch {
        /// CRC32 stored alongside the record.
        expected: u32,
        /// CRC32 recomputed over the body as read.
        got: u32,
    },
    /// The file ends inside a record (torn write / truncated tail).
    Truncated {
        /// Bytes the record claimed.
        needed: usize,
        /// Bytes actually remaining.
        have: usize,
    },
    /// A record length field exceeds [`MAX_RECORD_BYTES`]; framing is
    /// untrustworthy from this point on.
    Oversize {
        /// The implausible length read.
        len: u32,
    },
    /// Unknown record tag or enum tag inside a record body.
    UnknownTag {
        /// Which field carried the tag.
        what: &'static str,
        /// The unrecognized tag value.
        tag: u8,
    },
    /// A device name that no [`DeviceId`] preset matches, or a device
    /// this registry does not serve.
    BadDevice(String),
    /// Record body was not valid UTF-8 where a string was expected.
    BadUtf8,
    /// Record body had bytes left over after all fields were read.
    TrailingBytes {
        /// Number of unread bytes.
        extra: usize,
    },
}

impl fmt::Display for PersistError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PersistError::BadMagic { got, expected } => {
                write!(f, "bad store magic {got:#010x} (expected {expected:#010x})")
            }
            PersistError::BadVersion(v) => write!(f, "unsupported persist version {v}"),
            PersistError::ChecksumMismatch { expected, got } => {
                write!(
                    f,
                    "record checksum mismatch: stored {expected:#010x}, computed {got:#010x}"
                )
            }
            PersistError::Truncated { needed, have } => {
                write!(f, "truncated record: needed {needed} bytes, have {have}")
            }
            PersistError::Oversize { len } => {
                write!(
                    f,
                    "implausible record length {len} (max {MAX_RECORD_BYTES})"
                )
            }
            PersistError::UnknownTag { what, tag } => write!(f, "unknown {what} tag {tag}"),
            PersistError::BadDevice(name) => write!(f, "unknown or unserved device {name:?}"),
            PersistError::BadUtf8 => write!(f, "invalid utf-8 in record"),
            PersistError::TrailingBytes { extra } => {
                write!(f, "{extra} trailing bytes after record fields")
            }
        }
    }
}

impl std::error::Error for PersistError {}

// ---------------------------------------------------------------------------
// Codec (mirrors the private fleet::wire writer/reader idiom)
// ---------------------------------------------------------------------------

fn put_u8(buf: &mut Vec<u8>, v: u8) {
    buf.push(v);
}

fn put_u32(buf: &mut Vec<u8>, v: u32) {
    buf.extend_from_slice(&v.to_le_bytes());
}

fn put_u64(buf: &mut Vec<u8>, v: u64) {
    buf.extend_from_slice(&v.to_le_bytes());
}

fn put_f64(buf: &mut Vec<u8>, v: f64) {
    buf.extend_from_slice(&v.to_bits().to_le_bytes());
}

fn put_str(buf: &mut Vec<u8>, s: &str) {
    put_u32(buf, s.len() as u32);
    buf.extend_from_slice(s.as_bytes());
}

struct R<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> R<'a> {
    fn new(buf: &'a [u8]) -> Self {
        R { buf, pos: 0 }
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], PersistError> {
        let have = self.buf.len() - self.pos;
        if have < n {
            return Err(PersistError::Truncated { needed: n, have });
        }
        let out = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(out)
    }

    fn u8(&mut self) -> Result<u8, PersistError> {
        Ok(self.take(1)?[0])
    }

    fn u32(&mut self) -> Result<u32, PersistError> {
        let b = self.take(4)?;
        Ok(u32::from_le_bytes([b[0], b[1], b[2], b[3]]))
    }

    fn u64(&mut self) -> Result<u64, PersistError> {
        let b = self.take(8)?;
        let mut a = [0u8; 8];
        a.copy_from_slice(b);
        Ok(u64::from_le_bytes(a))
    }

    fn f64(&mut self) -> Result<f64, PersistError> {
        Ok(f64::from_bits(self.u64()?))
    }

    fn str(&mut self) -> Result<&'a str, PersistError> {
        let len = self.u32()? as usize;
        let b = self.take(len)?;
        std::str::from_utf8(b).map_err(|_| PersistError::BadUtf8)
    }

    fn finish(&self) -> Result<(), PersistError> {
        let extra = self.buf.len() - self.pos;
        if extra != 0 {
            return Err(PersistError::TrailingBytes { extra });
        }
        Ok(())
    }
}

fn put_device(buf: &mut Vec<u8>, d: DeviceId) {
    put_str(buf, d.name());
}

fn get_device(r: &mut R<'_>) -> Result<DeviceId, PersistError> {
    let name = r.str()?;
    DeviceId::by_name(name).ok_or_else(|| PersistError::BadDevice(name.to_string()))
}

fn put_protocol(buf: &mut Vec<u8>, p: DdProtocol) {
    match p {
        DdProtocol::Xy4 => put_u8(buf, 0),
        DdProtocol::IbmqDd => put_u8(buf, 1),
        DdProtocol::Cpmg => put_u8(buf, 2),
        DdProtocol::Xy8 => put_u8(buf, 3),
        DdProtocol::Udd { pulses } => {
            put_u8(buf, 4);
            put_u32(buf, pulses);
        }
    }
}

fn get_protocol(r: &mut R<'_>) -> Result<DdProtocol, PersistError> {
    match r.u8()? {
        0 => Ok(DdProtocol::Xy4),
        1 => Ok(DdProtocol::IbmqDd),
        2 => Ok(DdProtocol::Cpmg),
        3 => Ok(DdProtocol::Xy8),
        4 => Ok(DdProtocol::Udd { pulses: r.u32()? }),
        tag => Err(PersistError::UnknownTag {
            what: "protocol",
            tag,
        }),
    }
}

fn put_decoy(buf: &mut Vec<u8>, d: DecoyKind) {
    match d {
        DecoyKind::Clifford => put_u8(buf, 0),
        DecoyKind::CnotOnly => put_u8(buf, 1),
        DecoyKind::Seeded { max_seed_qubits } => {
            put_u8(buf, 2);
            put_u64(buf, max_seed_qubits as u64);
        }
    }
}

fn get_decoy(r: &mut R<'_>) -> Result<DecoyKind, PersistError> {
    match r.u8()? {
        0 => Ok(DecoyKind::Clifford),
        1 => Ok(DecoyKind::CnotOnly),
        2 => Ok(DecoyKind::Seeded {
            max_seed_qubits: r.u64()? as usize,
        }),
        tag => Err(PersistError::UnknownTag { what: "decoy", tag }),
    }
}

fn put_cached(buf: &mut Vec<u8>, v: &CachedMask) {
    put_u64(buf, v.mask.bits());
    put_u64(buf, v.mask.num_qubits() as u64);
    put_f64(buf, v.decoy_fidelity);
    put_u64(buf, v.decoy_runs as u64);
    put_u8(buf, v.degraded as u8);
}

fn get_cached(r: &mut R<'_>) -> Result<CachedMask, PersistError> {
    let bits = r.u64()?;
    let nq = r.u64()?;
    if nq > 64 {
        return Err(PersistError::UnknownTag {
            what: "mask width",
            tag: 255,
        });
    }
    Ok(CachedMask {
        mask: adapt::DdMask::from_bits(bits, nq as usize),
        decoy_fidelity: r.f64()?,
        decoy_runs: r.u64()? as usize,
        degraded: r.u8()? != 0,
    })
}

// ---------------------------------------------------------------------------
// Records
// ---------------------------------------------------------------------------

const REC_WARM: u8 = 1;
const REC_STALE: u8 = 2;
const REC_EPOCH: u8 = 3;
const REC_INVALIDATE: u8 = 4;

/// One persisted record. Snapshots carry `Epoch` + `Warm` + `Stale`;
/// the journal carries `Warm` (inserts) + `Invalidate` (drift).
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum PersistRecord {
    /// A serving-map entry at its search epoch.
    Warm {
        /// The full cache key.
        key: MaskKey,
        /// Logical-circuit hash, reconstructing the entry's [`StaleKey`].
        logical_hash: u64,
        /// The cached search outcome.
        value: CachedMask,
    },
    /// A stale-store entry (superseded epoch).
    Stale {
        /// Epoch-independent identity.
        key: StaleKey,
        /// The superseded value.
        value: CachedMask,
        /// Epoch the value was searched at.
        epoch: u64,
    },
    /// A device's calibration epoch at snapshot time. Recovery replays
    /// the registry's seeded drift forward to this epoch before
    /// classifying entries.
    Epoch {
        /// The device.
        device: DeviceId,
        /// Its epoch at snapshot time.
        epoch: u64,
    },
    /// A drift invalidation (journal only): entries of `device` below
    /// `min_epoch` were demoted to the stale store.
    Invalidate {
        /// The device that drifted.
        device: DeviceId,
        /// The new minimum fresh epoch.
        min_epoch: u64,
    },
}

/// Encodes `rec` as one framed record: `[len u32][crc32 u32][body]`,
/// where the CRC covers the body and the body starts with the format
/// version and record tag.
pub fn encode_record(rec: &PersistRecord) -> Vec<u8> {
    let mut body = Vec::with_capacity(64);
    put_u8(&mut body, PERSIST_VERSION);
    match rec {
        PersistRecord::Warm {
            key,
            logical_hash,
            value,
        } => {
            put_u8(&mut body, REC_WARM);
            put_device(&mut body, key.device);
            put_u64(&mut body, key.epoch);
            put_u64(&mut body, key.circuit_hash);
            put_protocol(&mut body, key.protocol);
            put_decoy(&mut body, key.decoy);
            put_u64(&mut body, *logical_hash);
            put_cached(&mut body, value);
        }
        PersistRecord::Stale { key, value, epoch } => {
            put_u8(&mut body, REC_STALE);
            put_device(&mut body, key.device);
            put_u64(&mut body, key.logical_hash);
            put_protocol(&mut body, key.protocol);
            put_decoy(&mut body, key.decoy);
            put_cached(&mut body, value);
            put_u64(&mut body, *epoch);
        }
        PersistRecord::Epoch { device, epoch } => {
            put_u8(&mut body, REC_EPOCH);
            put_device(&mut body, *device);
            put_u64(&mut body, *epoch);
        }
        PersistRecord::Invalidate { device, min_epoch } => {
            put_u8(&mut body, REC_INVALIDATE);
            put_device(&mut body, *device);
            put_u64(&mut body, *min_epoch);
        }
    }
    let mut framed = Vec::with_capacity(body.len() + 8);
    put_u32(&mut framed, body.len() as u32);
    put_u32(&mut framed, crc32(&body));
    framed.extend_from_slice(&body);
    framed
}

fn decode_body(body: &[u8]) -> Result<PersistRecord, PersistError> {
    let mut r = R::new(body);
    let version = r.u8()?;
    if version > PERSIST_VERSION {
        return Err(PersistError::BadVersion(version));
    }
    let rec = match r.u8()? {
        REC_WARM => {
            let device = get_device(&mut r)?;
            let epoch = r.u64()?;
            let circuit_hash = r.u64()?;
            let protocol = get_protocol(&mut r)?;
            let decoy = get_decoy(&mut r)?;
            let logical_hash = r.u64()?;
            let value = get_cached(&mut r)?;
            PersistRecord::Warm {
                key: MaskKey {
                    device,
                    epoch,
                    circuit_hash,
                    protocol,
                    decoy,
                },
                logical_hash,
                value,
            }
        }
        REC_STALE => {
            let device = get_device(&mut r)?;
            let logical_hash = r.u64()?;
            let protocol = get_protocol(&mut r)?;
            let decoy = get_decoy(&mut r)?;
            let value = get_cached(&mut r)?;
            let epoch = r.u64()?;
            PersistRecord::Stale {
                key: StaleKey {
                    device,
                    logical_hash,
                    protocol,
                    decoy,
                },
                value,
                epoch,
            }
        }
        REC_EPOCH => PersistRecord::Epoch {
            device: get_device(&mut r)?,
            epoch: r.u64()?,
        },
        REC_INVALIDATE => PersistRecord::Invalidate {
            device: get_device(&mut r)?,
            min_epoch: r.u64()?,
        },
        tag => {
            return Err(PersistError::UnknownTag {
                what: "record",
                tag,
            })
        }
    };
    r.finish()?;
    Ok(rec)
}

/// Decodes a whole store file (header + record stream). Returns every
/// record that validated and every quarantine reason encountered.
///
/// Damage containment: a checksum or body-decode failure quarantines
/// that one record and continues (the length framing is still
/// trustworthy); a truncated or implausible length quarantines the
/// remainder of the file — past a corrupt length there is no record
/// boundary to resynchronize on.
pub fn decode_store(buf: &[u8], expected_magic: u32) -> (Vec<PersistRecord>, Vec<PersistError>) {
    let mut records = Vec::new();
    let mut errors = Vec::new();
    if buf.is_empty() {
        return (records, errors);
    }
    let mut r = R::new(buf);
    let magic = match r.u32() {
        Ok(m) => m,
        Err(e) => {
            errors.push(e);
            return (records, errors);
        }
    };
    if magic != expected_magic {
        errors.push(PersistError::BadMagic {
            got: magic,
            expected: expected_magic,
        });
        return (records, errors);
    }
    match r.u8() {
        Ok(v) if v <= PERSIST_VERSION => {}
        Ok(v) => {
            errors.push(PersistError::BadVersion(v));
            return (records, errors);
        }
        Err(e) => {
            errors.push(e);
            return (records, errors);
        }
    }
    while r.pos < buf.len() {
        let len = match r.u32() {
            Ok(l) => l,
            Err(e) => {
                errors.push(e);
                break;
            }
        };
        if len > MAX_RECORD_BYTES {
            errors.push(PersistError::Oversize { len });
            break;
        }
        let stored_crc = match r.u32() {
            Ok(c) => c,
            Err(e) => {
                errors.push(e);
                break;
            }
        };
        let body = match r.take(len as usize) {
            Ok(b) => b,
            Err(e) => {
                errors.push(e);
                break;
            }
        };
        let computed = crc32(body);
        if computed != stored_crc {
            errors.push(PersistError::ChecksumMismatch {
                expected: stored_crc,
                got: computed,
            });
            continue;
        }
        match decode_body(body) {
            Ok(rec) => records.push(rec),
            Err(e) => errors.push(e),
        }
    }
    (records, errors)
}

// ---------------------------------------------------------------------------
// Atomic publication + crash points
// ---------------------------------------------------------------------------

/// Where [`atomic_write_with_crash`] simulates process death. `None`
/// performs the full write-temp → fsync → rename sequence.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum CrashPoint {
    /// No injected crash.
    #[default]
    None,
    /// Die after writing only `keep` bytes of the temp file (torn
    /// write). The previously published file is untouched.
    MidTempWrite {
        /// Bytes of the payload that reach the temp file.
        keep: usize,
    },
    /// Die after the temp file is complete (and synced) but before the
    /// rename publishes it.
    BeforeRename,
}

/// The temp-file sibling `atomic_write` stages into before renaming.
/// Recovery ignores (and removes) leftovers at this path.
pub fn staging_path(path: &Path) -> PathBuf {
    let mut name = path
        .file_name()
        .map(|n| n.to_os_string())
        .unwrap_or_default();
    name.push(".tmp");
    path.with_file_name(name)
}

/// Atomically publishes `bytes` at `path`: write a temp sibling, fsync
/// it (when `fsync`), rename over the target, then best-effort fsync
/// the directory. Readers never observe a half-written file.
pub fn atomic_write(path: &Path, bytes: &[u8], fsync: bool) -> io::Result<()> {
    atomic_write_with_crash(path, bytes, fsync, CrashPoint::None).map(|_| ())
}

/// [`atomic_write`] with an injected [`CrashPoint`]. Returns `true` when
/// the file was published (renamed), `false` when the simulated crash
/// fired first — in which case the previously published file, if any,
/// is intact and a torn or orphaned temp sibling may remain, exactly as
/// a real kill would leave things.
pub fn atomic_write_with_crash(
    path: &Path,
    bytes: &[u8],
    fsync: bool,
    crash: CrashPoint,
) -> io::Result<bool> {
    let tmp = staging_path(path);
    {
        let mut f = fs::File::create(&tmp)?;
        if let CrashPoint::MidTempWrite { keep } = crash {
            f.write_all(&bytes[..keep.min(bytes.len())])?;
            f.flush()?;
            return Ok(false);
        }
        f.write_all(bytes)?;
        f.flush()?;
        if fsync {
            f.sync_all()?;
        }
    }
    if crash == CrashPoint::BeforeRename {
        return Ok(false);
    }
    fs::rename(&tmp, path)?;
    if fsync {
        if let Some(parent) = path.parent() {
            if let Ok(dir) = fs::File::open(parent) {
                let _ = dir.sync_all();
            }
        }
    }
    Ok(true)
}

// ---------------------------------------------------------------------------
// Seeded storage-fault injection (machine::fault idiom)
// ---------------------------------------------------------------------------

/// Per-class probabilities of seeded storage damage, mirroring
/// `machine::FaultProfile` for the persistence layer.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct StorageFaultProfile {
    /// Probability a write is torn partway through the temp file.
    pub torn_write: f64,
    /// Probability a persisted file loses a fraction of its tail
    /// (truncated append / lost sectors).
    pub truncate_tail: f64,
    /// Probability a random persisted bit flips (media corruption).
    pub bit_flip: f64,
    /// Probability the process dies after the temp file is complete but
    /// before the rename publishes it.
    pub kill_before_rename: f64,
}

impl StorageFaultProfile {
    /// No injected damage.
    pub fn none() -> Self {
        StorageFaultProfile {
            torn_write: 0.0,
            truncate_tail: 0.0,
            bit_flip: 0.0,
            kill_before_rename: 0.0,
        }
    }

    /// Crash-shaped damage: torn writes and unpublished temps dominate.
    pub fn torn() -> Self {
        StorageFaultProfile {
            torn_write: 0.5,
            truncate_tail: 0.25,
            bit_flip: 0.0,
            kill_before_rename: 0.25,
        }
    }

    /// Media-gremlin damage: bit flips on top of crash shapes.
    pub fn gremlin() -> Self {
        StorageFaultProfile {
            torn_write: 0.25,
            truncate_tail: 0.25,
            bit_flip: 0.5,
            kill_before_rename: 0.25,
        }
    }

    /// Parses a profile by name (see [`Self::known_names`]).
    pub fn by_name(name: &str) -> Option<Self> {
        match name {
            "none" => Some(Self::none()),
            "torn" => Some(Self::torn()),
            "gremlin" => Some(Self::gremlin()),
            _ => None,
        }
    }

    /// Every name [`Self::by_name`] accepts.
    pub fn known_names() -> &'static [&'static str] {
        &["none", "torn", "gremlin"]
    }
}

/// The damage drawn for one storage operation.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct StorageFaults {
    /// `Some(keep_fraction)`: tear the write, keeping this fraction of
    /// the payload (in `[0, 1)`).
    pub torn_write: Option<f64>,
    /// `Some(drop_fraction)`: truncate this fraction off the file tail
    /// (in `(0, 0.5]`).
    pub truncate_tail: Option<f64>,
    /// `Some(draw)`: flip bit `draw % (len · 8)` of the file.
    pub bit_flip: Option<u64>,
    /// Die between fsync and rename.
    pub kill_before_rename: bool,
}

impl StorageFaults {
    /// Whether any damage fires for this operation.
    pub fn any(&self) -> bool {
        self.torn_write.is_some()
            || self.truncate_tail.is_some()
            || self.bit_flip.is_some()
            || self.kill_before_rename
    }
}

/// A seeded per-operation storage-damage schedule: `faults_for(op)` is a
/// pure function of `(seed, op)`, so two plans with the same seed injure
/// the same operations identically — the property the `crash_chaos`
/// replay-determinism assertion rests on.
#[derive(Debug)]
pub struct StorageFaultPlan {
    profile: StorageFaultProfile,
    spawner: SeedSpawner,
    next_op: AtomicU64,
}

impl StorageFaultPlan {
    /// Creates a plan drawing from `profile` under `seed`.
    pub fn new(profile: StorageFaultProfile, seed: u64) -> Self {
        StorageFaultPlan {
            profile,
            spawner: SeedSpawner::new(seed),
            next_op: AtomicU64::new(0),
        }
    }

    /// The profile this plan draws from.
    pub fn profile(&self) -> StorageFaultProfile {
        self.profile
    }

    /// Hands out the next operation index (for callers that damage a
    /// stream of files in sequence).
    pub fn next_op(&self) -> u64 {
        self.next_op.fetch_add(1, Ordering::Relaxed)
    }

    /// The damage drawn for operation `op`. Every fault class draws
    /// unconditionally so each class has a fixed position in the stream:
    /// changing one probability never shifts another class's draws.
    pub fn faults_for(&self, op: u64) -> StorageFaults {
        let mut state = self.spawner.derive(op);
        let torn = unit_draw(&mut state);
        let torn_frac = unit_draw(&mut state);
        let trunc = unit_draw(&mut state);
        let trunc_frac = unit_draw(&mut state);
        let flip = unit_draw(&mut state);
        let flip_draw = splitmix64(&mut state);
        let kill = unit_draw(&mut state);
        StorageFaults {
            torn_write: (torn < self.profile.torn_write).then_some(torn_frac),
            truncate_tail: (trunc < self.profile.truncate_tail).then_some(0.05 + 0.45 * trunc_frac),
            bit_flip: (flip < self.profile.bit_flip).then_some(flip_draw),
            kill_before_rename: kill < self.profile.kill_before_rename,
        }
    }
}

/// Tallies of applied storage damage, for harness reporting.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct StorageFaultCounts {
    /// Operations examined.
    pub ops: u64,
    /// Torn writes applied.
    pub torn: u64,
    /// Tail truncations applied.
    pub truncated: u64,
    /// Bits flipped.
    pub flipped: u64,
    /// Kills before rename.
    pub kills: u64,
}

impl StorageFaultCounts {
    /// Records one drawn operation into the tallies.
    pub fn record(&mut self, faults: &StorageFaults) {
        self.ops += 1;
        self.torn += faults.torn_write.is_some() as u64;
        self.truncated += faults.truncate_tail.is_some() as u64;
        self.flipped += faults.bit_flip.is_some() as u64;
        self.kills += faults.kill_before_rename as u64;
    }

    /// Total damage events across all classes.
    pub fn total(&self) -> u64 {
        self.torn + self.truncated + self.flipped + self.kills
    }
}

impl fmt::Display for StorageFaultCounts {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "ops={} torn={} truncated={} flipped={} kills={}",
            self.ops, self.torn, self.truncated, self.flipped, self.kills
        )
    }
}

fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

fn unit_draw(state: &mut u64) -> f64 {
    (splitmix64(state) >> 11) as f64 / (1u64 << 53) as f64
}

/// Truncates `drop_fraction` (clamped to `[0, 1]`) off the tail of the
/// file at `path`, returning how many bytes were removed. Simulates a
/// lost append / torn tail on an already-persisted file.
pub fn truncate_tail(path: &Path, drop_fraction: f64) -> io::Result<u64> {
    let len = fs::metadata(path)?.len();
    let drop = ((len as f64) * drop_fraction.clamp(0.0, 1.0)) as u64;
    let keep = len.saturating_sub(drop.max(1)).min(len);
    let f = fs::OpenOptions::new().write(true).open(path)?;
    f.set_len(keep)?;
    Ok(len - keep)
}

/// Flips one bit of the file at `path` (bit index `draw % (len · 8)`),
/// returning the flipped bit index, or `None` for an empty file.
/// Simulates in-place media corruption.
pub fn flip_bit(path: &Path, draw: u64) -> io::Result<Option<u64>> {
    let mut bytes = fs::read(path)?;
    if bytes.is_empty() {
        return Ok(None);
    }
    let bit = draw % (bytes.len() as u64 * 8);
    bytes[(bit / 8) as usize] ^= 1 << (bit % 8);
    fs::write(path, &bytes)?;
    Ok(Some(bit))
}

// ---------------------------------------------------------------------------
// Configuration
// ---------------------------------------------------------------------------

/// Durability configuration, carried on `ServiceConfig`.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct PersistConfig {
    /// Directory holding `snapshot.bin` + `journal.wal`. `None` (the
    /// default) disables persistence entirely.
    pub dir: Option<PathBuf>,
    /// Interval of the background snapshot thread, in milliseconds.
    /// `0` disables the thread: snapshots then happen only at recovery,
    /// clean shutdown, and explicit `snapshot_now` calls.
    pub snapshot_interval_ms: u64,
    /// Whether to fsync files and directories on publication. Tests and
    /// benches turn this off; production leaves it on.
    pub fsync: bool,
}

impl PersistConfig {
    /// A config persisting into `dir` with production defaults (5 s
    /// snapshot interval, fsync on).
    pub fn at(dir: impl Into<PathBuf>) -> Self {
        PersistConfig {
            dir: Some(dir.into()),
            snapshot_interval_ms: 5_000,
            fsync: true,
        }
    }

    /// Whether persistence is enabled.
    pub fn enabled(&self) -> bool {
        self.dir.is_some()
    }
}

/// Path of the snapshot file inside a persist directory.
pub fn snapshot_path(dir: &Path) -> PathBuf {
    dir.join(SNAPSHOT_FILE)
}

/// Path of the write-ahead journal inside a persist directory.
pub fn journal_path(dir: &Path) -> PathBuf {
    dir.join(JOURNAL_FILE)
}

// ---------------------------------------------------------------------------
// Metrics / reports
// ---------------------------------------------------------------------------

/// Observability mirrors of the persistence counters
/// (`adapt_service_persist_*`).
#[derive(Default)]
struct PersistMetrics {
    snapshots: adapt_obs::Counter,
    snapshot_failures: adapt_obs::Counter,
    snapshot_records: adapt_obs::Counter,
    journal_records: adapt_obs::Counter,
    journal_failures: adapt_obs::Counter,
    recoveries: adapt_obs::Counter,
    recovered_warm: adapt_obs::Counter,
    recovered_stale: adapt_obs::Counter,
    demoted_stale: adapt_obs::Counter,
    quarantined: adapt_obs::Counter,
}

impl PersistMetrics {
    fn for_registry(r: &adapt_obs::Registry) -> Self {
        PersistMetrics {
            snapshots: r.counter("adapt_service_persist_snapshots_total"),
            snapshot_failures: r.counter("adapt_service_persist_snapshot_failures_total"),
            snapshot_records: r.counter("adapt_service_persist_snapshot_records_total"),
            journal_records: r.counter("adapt_service_persist_journal_records_total"),
            journal_failures: r.counter("adapt_service_persist_journal_failures_total"),
            recoveries: r.counter("adapt_service_persist_recoveries_total"),
            recovered_warm: r.counter("adapt_service_persist_recovered_warm_total"),
            recovered_stale: r.counter("adapt_service_persist_recovered_stale_total"),
            demoted_stale: r.counter("adapt_service_persist_demoted_stale_total"),
            quarantined: r.counter("adapt_service_persist_quarantined_total"),
        }
    }
}

/// Readable snapshot of the persistence counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PersistStats {
    /// Snapshots successfully published.
    pub snapshots: u64,
    /// Snapshot attempts that failed with an I/O error.
    pub snapshot_failures: u64,
    /// Records written across all published snapshots.
    pub snapshot_records: u64,
    /// Journal records appended since startup.
    pub journal_records: u64,
    /// Journal appends that failed with an I/O error.
    pub journal_failures: u64,
    /// Recovery passes performed (one per startup with persistence on).
    pub recoveries: u64,
    /// Entries restored into the serving map.
    pub recovered_warm: u64,
    /// Stale-store entries restored.
    pub recovered_stale: u64,
    /// Warm records demoted to the stale store because their epoch
    /// predated the registry (DESIGN §13 staleness contract).
    pub demoted_stale: u64,
    /// Records quarantined by validation (checksum / version / length /
    /// tag / device failures). Never served, never a panic.
    pub quarantined: u64,
}

/// What one recovery pass did, in order of the pipeline: decode →
/// quarantine → epoch replay → classify → restore.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct RecoveryReport {
    /// Entries restored into the serving map at their original epoch.
    pub recovered_warm: usize,
    /// Stale-store entries restored as stale.
    pub recovered_stale: usize,
    /// Warm records whose epoch predated the registry's current epoch,
    /// demoted into the stale store instead of served as fresh.
    pub demoted_stale: usize,
    /// Records (or file regions) quarantined by validation.
    pub quarantined: usize,
    /// Journal records replayed on top of the snapshot.
    pub journal_records: usize,
    /// Registry epoch advances replayed from persisted epoch records.
    pub epoch_advances: u64,
    /// Every quarantine reason, in encounter order.
    pub errors: Vec<PersistError>,
}

// ---------------------------------------------------------------------------
// Persister
// ---------------------------------------------------------------------------

/// The durability engine: owns the persist directory, the open journal
/// handle, and the persistence metrics. `MaskService` drives it —
/// recovery at startup, journal appends from the cache's event sink,
/// periodic + shutdown snapshots.
pub struct Persister {
    dir: PathBuf,
    fsync: bool,
    wal: Mutex<Option<fs::File>>,
    metrics: PersistMetrics,
    report: Mutex<Option<RecoveryReport>>,
}

impl fmt::Debug for Persister {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Persister")
            .field("dir", &self.dir)
            .field("fsync", &self.fsync)
            .finish_non_exhaustive()
    }
}

impl Persister {
    /// Opens (creating if needed) the persist directory and mirrors the
    /// persistence counters into `registry`.
    pub fn new(dir: &Path, fsync: bool, registry: &adapt_obs::Registry) -> io::Result<Self> {
        fs::create_dir_all(dir)?;
        Ok(Persister {
            dir: dir.to_path_buf(),
            fsync,
            wal: Mutex::new(None),
            metrics: PersistMetrics::for_registry(registry),
            report: Mutex::new(None),
        })
    }

    /// The snapshot file this persister publishes.
    pub fn snapshot_file(&self) -> PathBuf {
        snapshot_path(&self.dir)
    }

    /// The journal file this persister appends to.
    pub fn journal_file(&self) -> PathBuf {
        journal_path(&self.dir)
    }

    /// Replays snapshot + journal into `cache` and `registry`,
    /// quarantining everything that fails validation, then compacts:
    /// publishes a fresh snapshot of the recovered state and resets the
    /// journal. Returns what happened; also retrievable later via
    /// [`Self::last_recovery`].
    ///
    /// Must run before [`Self::install`] — restores do not re-journal.
    pub fn recover(
        &self,
        cache: &MaskCache,
        registry: &DeviceRegistry,
    ) -> io::Result<RecoveryReport> {
        let mut report = RecoveryReport::default();
        // A stray temp sibling is a write that never published; the
        // rename never happened, so it holds no committed state.
        let _ = fs::remove_file(staging_path(&self.snapshot_file()));

        let snap_bytes = read_optional(&self.snapshot_file())?;
        let (snap_records, snap_errors) = decode_store(&snap_bytes, SNAPSHOT_MAGIC);
        report.errors.extend(snap_errors);

        let wal_bytes = read_optional(&self.journal_file())?;
        let (wal_records, wal_errors) = decode_store(&wal_bytes, JOURNAL_MAGIC);
        report.journal_records = wal_records.len();
        report.errors.extend(wal_errors);

        for rec in snap_records.iter().chain(wal_records.iter()) {
            self.apply(rec, cache, registry, &mut report);
        }
        report.quarantined = report.errors.len();

        self.metrics.recoveries.inc();
        self.metrics
            .recovered_warm
            .add(report.recovered_warm as u64);
        self.metrics
            .recovered_stale
            .add(report.recovered_stale as u64);
        self.metrics.demoted_stale.add(report.demoted_stale as u64);
        self.metrics.quarantined.add(report.quarantined as u64);

        // Compact: the recovered state becomes the new snapshot and the
        // journal restarts empty (with its open append handle).
        self.snapshot(cache, registry)?;

        *lock(&self.report) = Some(report.clone());
        Ok(report)
    }

    /// The report of the last [`Self::recover`] pass, if any.
    pub fn last_recovery(&self) -> Option<RecoveryReport> {
        lock(&self.report).clone()
    }

    fn apply(
        &self,
        rec: &PersistRecord,
        cache: &MaskCache,
        registry: &DeviceRegistry,
        report: &mut RecoveryReport,
    ) {
        match *rec {
            PersistRecord::Epoch { device, epoch }
            | PersistRecord::Invalidate {
                device,
                min_epoch: epoch,
            } => {
                if registry.epoch(device).is_none() {
                    report
                        .errors
                        .push(PersistError::BadDevice(device.name().to_string()));
                    return;
                }
                // The registry's drift is seeded: advancing to the
                // persisted epoch reproduces the pre-crash machine
                // exactly, which is what keeps recovered responses
                // bit-identical.
                while registry.epoch(device).is_some_and(|e| e < epoch) {
                    if registry.advance_epoch(device).is_none() {
                        break;
                    }
                    report.epoch_advances += 1;
                }
                if matches!(rec, PersistRecord::Invalidate { .. }) {
                    cache.invalidate_before(device, epoch);
                }
            }
            PersistRecord::Warm {
                key,
                logical_hash,
                value,
            } => {
                let Some(current) = registry.epoch(key.device) else {
                    report
                        .errors
                        .push(PersistError::BadDevice(key.device.name().to_string()));
                    return;
                };
                let stale_key = key.stale_key(logical_hash);
                if key.epoch < current {
                    // §13: superseded epochs are never served as fresh.
                    cache.restore_stale(stale_key, value, key.epoch);
                    report.demoted_stale += 1;
                } else {
                    cache.restore_warm(key, stale_key, value);
                    report.recovered_warm += 1;
                }
            }
            PersistRecord::Stale { key, value, epoch } => {
                if registry.epoch(key.device).is_none() {
                    report
                        .errors
                        .push(PersistError::BadDevice(key.device.name().to_string()));
                    return;
                }
                cache.restore_stale(key, value, epoch);
                report.recovered_stale += 1;
            }
        }
    }

    /// Installs the journal sink on `cache`: every insert and epoch
    /// invalidation from now on appends a record to the WAL, in
    /// mutation order (the sink runs under the cache lock).
    pub fn install(self: &Arc<Self>, cache: &MaskCache) {
        let p = Arc::clone(self);
        cache.set_journal(Some(Arc::new(move |ev| p.append_event(ev))));
    }

    fn append_event(&self, ev: &crate::cache::CacheEvent) {
        let rec = match *ev {
            crate::cache::CacheEvent::Insert {
                key,
                stale_key,
                value,
            } => PersistRecord::Warm {
                key,
                logical_hash: stale_key.logical_hash,
                value,
            },
            crate::cache::CacheEvent::InvalidateBefore { device, min_epoch } => {
                PersistRecord::Invalidate { device, min_epoch }
            }
        };
        let bytes = encode_record(&rec);
        let mut wal = lock(&self.wal);
        let Some(f) = wal.as_mut() else { return };
        match f.write_all(&bytes).and_then(|_| f.flush()) {
            Ok(()) => self.metrics.journal_records.inc(),
            Err(_) => self.metrics.journal_failures.inc(),
        }
    }

    /// Publishes a snapshot of the current cache + registry state and
    /// resets the journal. The export runs under the cache lock, so no
    /// journal event can land between the exported state and the
    /// journal reset (which would lose it). Returns the record count.
    pub fn snapshot(&self, cache: &MaskCache, registry: &DeviceRegistry) -> io::Result<usize> {
        let result = self.snapshot_inner(cache, registry, CrashPoint::None);
        match &result {
            Ok(n) => {
                self.metrics.snapshots.inc();
                self.metrics.snapshot_records.add(*n as u64);
            }
            Err(_) => self.metrics.snapshot_failures.inc(),
        }
        result
    }

    /// [`Self::snapshot`] with an injected [`CrashPoint`] — the
    /// `crash_chaos` harness's mid-snapshot-kill scenario. A crashed
    /// snapshot leaves the previous snapshot published and the journal
    /// untouched, and reports a failure rather than a publication.
    pub fn snapshot_with_crash(
        &self,
        cache: &MaskCache,
        registry: &DeviceRegistry,
        crash: CrashPoint,
    ) -> io::Result<usize> {
        if crash == CrashPoint::None {
            return self.snapshot(cache, registry);
        }
        self.snapshot_inner(cache, registry, crash)
    }

    fn snapshot_inner(
        &self,
        cache: &MaskCache,
        registry: &DeviceRegistry,
        crash: CrashPoint,
    ) -> io::Result<usize> {
        let epochs: Vec<(DeviceId, u64)> = registry
            .devices()
            .into_iter()
            .filter_map(|d| registry.epoch(d).map(|e| (d, e)))
            .collect();
        cache.with_export(|warm, stale| {
            let mut buf = Vec::with_capacity(64 * (warm.len() + stale.len() + epochs.len()) + 8);
            put_u32(&mut buf, SNAPSHOT_MAGIC);
            put_u8(&mut buf, PERSIST_VERSION);
            let mut records = 0usize;
            for &(device, epoch) in &epochs {
                buf.extend_from_slice(&encode_record(&PersistRecord::Epoch { device, epoch }));
                records += 1;
            }
            for &(key, stale_key, value) in warm {
                buf.extend_from_slice(&encode_record(&PersistRecord::Warm {
                    key,
                    logical_hash: stale_key.logical_hash,
                    value,
                }));
                records += 1;
            }
            for &(key, value, epoch) in stale {
                buf.extend_from_slice(&encode_record(&PersistRecord::Stale { key, value, epoch }));
                records += 1;
            }
            let published =
                atomic_write_with_crash(&self.snapshot_file(), &buf, self.fsync, crash)?;
            if !published {
                // Simulated crash: the previous snapshot (if any) is
                // still the published truth and the journal still
                // covers everything since it.
                return Err(io::Error::other("snapshot crashed at injected crash point"));
            }
            self.reset_journal()?;
            Ok(records)
        })
    }

    fn reset_journal(&self) -> io::Result<()> {
        let mut wal = lock(&self.wal);
        let mut f = fs::File::create(self.journal_file())?;
        let mut header = Vec::with_capacity(5);
        put_u32(&mut header, JOURNAL_MAGIC);
        put_u8(&mut header, PERSIST_VERSION);
        f.write_all(&header)?;
        f.flush()?;
        if self.fsync {
            f.sync_all()?;
        }
        *wal = Some(f);
        Ok(())
    }

    /// Current persistence counters.
    pub fn stats(&self) -> PersistStats {
        PersistStats {
            snapshots: self.metrics.snapshots.get(),
            snapshot_failures: self.metrics.snapshot_failures.get(),
            snapshot_records: self.metrics.snapshot_records.get(),
            journal_records: self.metrics.journal_records.get(),
            journal_failures: self.metrics.journal_failures.get(),
            recoveries: self.metrics.recoveries.get(),
            recovered_warm: self.metrics.recovered_warm.get(),
            recovered_stale: self.metrics.recovered_stale.get(),
            demoted_stale: self.metrics.demoted_stale.get(),
            quarantined: self.metrics.quarantined.get(),
        }
    }
}

fn read_optional(path: &Path) -> io::Result<Vec<u8>> {
    match fs::read(path) {
        Ok(b) => Ok(b),
        Err(e) if e.kind() == io::ErrorKind::NotFound => Ok(Vec::new()),
        Err(e) => Err(e),
    }
}

fn lock<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(|poisoned| poisoned.into_inner())
}

#[cfg(test)]
mod tests {
    use super::*;
    use adapt::DdMask;
    use std::path::PathBuf;

    fn tmp(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join("adapt_persist_tests").join(name);
        let _ = fs::remove_dir_all(&dir);
        fs::create_dir_all(&dir).expect("create test dir");
        dir
    }

    fn mask(bits: u64) -> DdMask {
        DdMask::from_bits(bits, 5)
    }

    fn cached(bits: u64) -> CachedMask {
        CachedMask {
            mask: mask(bits),
            decoy_fidelity: 0.875,
            decoy_runs: 12,
            degraded: false,
        }
    }

    fn key(epoch: u64, hash: u64) -> MaskKey {
        MaskKey {
            device: DeviceId::Rome,
            epoch,
            circuit_hash: hash,
            protocol: DdProtocol::Xy4,
            decoy: DecoyKind::Seeded { max_seed_qubits: 4 },
        }
    }

    #[test]
    fn crc32_known_vectors() {
        // IEEE CRC32 of "123456789" is the classic check value.
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
    }

    #[test]
    fn record_roundtrip_all_variants() {
        let recs = [
            PersistRecord::Warm {
                key: key(3, 77),
                logical_hash: 991,
                value: cached(0b10110),
            },
            PersistRecord::Stale {
                key: key(3, 77).stale_key(991),
                value: cached(0b1),
                epoch: 2,
            },
            PersistRecord::Epoch {
                device: DeviceId::Guadalupe,
                epoch: 9,
            },
            PersistRecord::Invalidate {
                device: DeviceId::Toronto,
                min_epoch: 4,
            },
        ];
        for rec in &recs {
            let framed = encode_record(rec);
            let mut r = R::new(&framed);
            let len = r.u32().expect("len") as usize;
            let crc = r.u32().expect("crc");
            let body = r.take(len).expect("body");
            assert_eq!(crc, crc32(body));
            assert_eq!(&decode_body(body).expect("decode"), rec);
        }
    }

    #[test]
    fn udd_and_every_decoy_roundtrip() {
        let mut k = key(1, 5);
        k.protocol = DdProtocol::Udd { pulses: 6 };
        for decoy in [
            DecoyKind::Clifford,
            DecoyKind::CnotOnly,
            DecoyKind::Seeded { max_seed_qubits: 3 },
        ] {
            k.decoy = decoy;
            let rec = PersistRecord::Warm {
                key: k,
                logical_hash: 8,
                value: cached(7),
            };
            let framed = encode_record(&rec);
            let (records, errors) = decode_store(
                &{
                    let mut buf = Vec::new();
                    put_u32(&mut buf, SNAPSHOT_MAGIC);
                    put_u8(&mut buf, PERSIST_VERSION);
                    buf.extend_from_slice(&framed);
                    buf
                },
                SNAPSHOT_MAGIC,
            );
            assert!(errors.is_empty(), "{errors:?}");
            assert_eq!(records, vec![rec]);
        }
    }

    fn store_with(records: &[PersistRecord]) -> Vec<u8> {
        let mut buf = Vec::new();
        put_u32(&mut buf, SNAPSHOT_MAGIC);
        put_u8(&mut buf, PERSIST_VERSION);
        for rec in records {
            buf.extend_from_slice(&encode_record(rec));
        }
        buf
    }

    #[test]
    fn bit_flip_quarantines_exactly_one_record() {
        let recs = [
            PersistRecord::Epoch {
                device: DeviceId::Rome,
                epoch: 1,
            },
            PersistRecord::Warm {
                key: key(1, 42),
                logical_hash: 7,
                value: cached(3),
            },
            PersistRecord::Epoch {
                device: DeviceId::Paris,
                epoch: 2,
            },
        ];
        let clean = store_with(&recs);
        // Flip a bit inside the *middle* record's body.
        let first_len = encode_record(&recs[0]).len();
        let mut dirty = clean.clone();
        let target = 5 + first_len + 8 + 3; // header + rec0 + rec1 framing + offset into body
        dirty[target] ^= 0x10;
        let (records, errors) = decode_store(&dirty, SNAPSHOT_MAGIC);
        assert_eq!(records.len(), 2, "the two intact records survive");
        assert_eq!(errors.len(), 1);
        assert!(
            matches!(errors[0], PersistError::ChecksumMismatch { .. }),
            "{errors:?}"
        );
    }

    #[test]
    fn truncated_tail_quarantines_remainder() {
        let recs = [
            PersistRecord::Epoch {
                device: DeviceId::Rome,
                epoch: 1,
            },
            PersistRecord::Warm {
                key: key(1, 42),
                logical_hash: 7,
                value: cached(3),
            },
        ];
        let clean = store_with(&recs);
        let cut = clean.len() - 6;
        let (records, errors) = decode_store(&clean[..cut], SNAPSHOT_MAGIC);
        assert_eq!(records.len(), 1);
        assert!(
            matches!(errors[0], PersistError::Truncated { .. }),
            "{errors:?}"
        );
    }

    #[test]
    fn oversize_length_stops_decode() {
        let mut buf = store_with(&[]);
        put_u32(&mut buf, MAX_RECORD_BYTES + 1);
        put_u32(&mut buf, 0);
        let (records, errors) = decode_store(&buf, SNAPSHOT_MAGIC);
        assert!(records.is_empty());
        assert!(
            matches!(errors[0], PersistError::Oversize { .. }),
            "{errors:?}"
        );
    }

    #[test]
    fn wrong_magic_and_future_version_quarantine_whole_file() {
        let buf = store_with(&[]);
        let (_, errors) = decode_store(&buf, JOURNAL_MAGIC);
        assert!(matches!(errors[0], PersistError::BadMagic { .. }));

        let mut future = store_with(&[]);
        future[4] = PERSIST_VERSION + 1;
        let (_, errors) = decode_store(&future, SNAPSHOT_MAGIC);
        assert!(matches!(errors[0], PersistError::BadVersion(_)));
    }

    #[test]
    fn atomic_write_publishes_and_crash_points_do_not() {
        let dir = tmp("atomic");
        let path = dir.join("x.bin");
        atomic_write(&path, b"first", false).expect("write");
        assert_eq!(fs::read(&path).expect("read"), b"first");

        let published = atomic_write_with_crash(
            &path,
            b"second",
            false,
            CrashPoint::MidTempWrite { keep: 2 },
        )
        .expect("torn");
        assert!(!published);
        assert_eq!(fs::read(&path).expect("read"), b"first", "target intact");
        assert_eq!(fs::read(staging_path(&path)).expect("tmp"), b"se");

        let published = atomic_write_with_crash(&path, b"third", false, CrashPoint::BeforeRename)
            .expect("norename");
        assert!(!published);
        assert_eq!(fs::read(&path).expect("read"), b"first", "target intact");

        atomic_write(&path, b"fourth", false).expect("write");
        assert_eq!(fs::read(&path).expect("read"), b"fourth");
    }

    #[test]
    fn storage_fault_plan_is_deterministic_and_tracks_profile() {
        let a = StorageFaultPlan::new(StorageFaultProfile::gremlin(), 11);
        let b = StorageFaultPlan::new(StorageFaultProfile::gremlin(), 11);
        let mut counts = StorageFaultCounts::default();
        for op in 0..4000 {
            let fa = a.faults_for(op);
            assert_eq!(fa, b.faults_for(op), "same seed, same damage");
            counts.record(&fa);
        }
        let rate = counts.flipped as f64 / counts.ops as f64;
        assert!(
            (rate - 0.5).abs() < 0.05,
            "bit-flip rate {rate} far from 0.5"
        );
        assert!(counts.torn > 0 && counts.truncated > 0 && counts.kills > 0);

        let none = StorageFaultPlan::new(StorageFaultProfile::none(), 11);
        assert!(!none.faults_for(0).any());
    }

    #[test]
    fn storage_profile_names_roundtrip() {
        for name in StorageFaultProfile::known_names() {
            assert!(StorageFaultProfile::by_name(name).is_some(), "{name}");
        }
        assert!(StorageFaultProfile::by_name("nope").is_none());
    }

    #[test]
    fn damage_helpers_injure_files() {
        let dir = tmp("damage");
        let path = dir.join("f.bin");
        fs::write(&path, vec![0u8; 100]).expect("write");
        let removed = truncate_tail(&path, 0.25).expect("truncate");
        assert_eq!(removed, 25);
        assert_eq!(fs::metadata(&path).expect("meta").len(), 75);

        let bit = flip_bit(&path, 9).expect("flip").expect("nonempty");
        assert_eq!(bit, 9);
        let bytes = fs::read(&path).expect("read");
        assert_eq!(bytes[1], 1 << 1);

        fs::write(&path, b"").expect("write");
        assert!(flip_bit(&path, 3).expect("flip").is_none());
    }
}
