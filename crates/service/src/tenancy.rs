//! Multi-tenant identity, priority classes, and per-tenant rate limits.
//!
//! Every [`Request`](crate::Request) carries a [`Tenancy`]: which tenant
//! submitted it and which [`PriorityClass`] it rides in. The service
//! config holds a [`TenancyConfig`] mapping tenants to fairness weights
//! and optional token-bucket quotas; admission consults a [`QuotaBook`]
//! built from that config, and the worker pool's scheduler
//! (`sched::TenantScheduler`) uses the weights for deterministic
//! weighted-fair round-robin within each class.
//!
//! # Clocks
//!
//! Token buckets refill on wall-clock time by default. For deterministic
//! replay (the trace-replay harness, tests) set
//! [`TenancyConfig::virtual_time`] and drive the bucket clock explicitly
//! via [`QuotaBook::advance_ms`] — refill then becomes a pure function
//! of the replayed schedule, so two identical runs reject the exact same
//! requests.

use std::collections::BTreeMap;
use std::fmt;
use std::time::Instant;

/// A tenant identity. Tenant 0 is the anonymous/default tenant that
/// un-labelled requests (and v1 wire peers) fall into.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Default)]
pub struct TenantId(pub u32);

impl fmt::Display for TenantId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "t{}", self.0)
    }
}

/// Strictly-ordered priority classes. The scheduler always serves a
/// higher class before a lower one; the refine lane sits below all
/// three.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Default)]
pub enum PriorityClass {
    /// Latency-sensitive interactive traffic; served first.
    Interactive,
    /// The default class for ordinary requests.
    #[default]
    Standard,
    /// Throughput-oriented background work; served only when the two
    /// classes above are drained.
    Batch,
}

impl PriorityClass {
    /// All classes, highest priority first — the scheduler's scan order.
    pub const ALL: [PriorityClass; 3] = [
        PriorityClass::Interactive,
        PriorityClass::Standard,
        PriorityClass::Batch,
    ];

    /// Dense index for per-class arrays: Interactive = 0, Batch = 2.
    pub fn index(self) -> usize {
        match self {
            PriorityClass::Interactive => 0,
            PriorityClass::Standard => 1,
            PriorityClass::Batch => 2,
        }
    }

    /// Stable lowercase name used in metrics and bench output.
    pub fn name(self) -> &'static str {
        match self {
            PriorityClass::Interactive => "interactive",
            PriorityClass::Standard => "standard",
            PriorityClass::Batch => "batch",
        }
    }
}

impl fmt::Display for PriorityClass {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// Who a request belongs to and how urgently it should be served.
/// Defaults to the anonymous tenant in the standard class, so existing
/// single-tenant callers keep their behavior.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub struct Tenancy {
    /// Owning tenant.
    pub tenant: TenantId,
    /// Priority class within that tenant.
    pub class: PriorityClass,
}

impl Tenancy {
    /// Tenancy for `tenant` in the default (standard) class.
    pub fn tenant(id: u32) -> Self {
        Tenancy {
            tenant: TenantId(id),
            class: PriorityClass::default(),
        }
    }

    /// Tenancy for `tenant` in `class`.
    pub fn with_class(id: u32, class: PriorityClass) -> Self {
        Tenancy {
            tenant: TenantId(id),
            class,
        }
    }
}

/// A token-bucket rate limit: sustained `rate_per_s` with bursts up to
/// `burst` tokens. Each admitted request costs one token.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TenantQuota {
    /// Sustained refill rate, tokens per second.
    pub rate_per_s: f64,
    /// Bucket capacity — the largest burst admitted from a full bucket.
    pub burst: f64,
}

/// Per-tenant scheduling weight and optional admission quota.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TenantSpec {
    /// Weighted-fair share: a tenant with weight `w` gets up to `w`
    /// consecutive dequeues per round-robin turn within its class.
    pub weight: u32,
    /// Admission rate limit; `None` means unlimited.
    pub quota: Option<TenantQuota>,
}

impl Default for TenantSpec {
    fn default() -> Self {
        TenantSpec {
            weight: 1,
            quota: None,
        }
    }
}

/// Tenancy policy for a service: a default spec for unknown tenants
/// plus per-tenant overrides.
#[derive(Debug, Clone, Default)]
pub struct TenancyConfig {
    /// Spec applied to tenants without an explicit entry.
    pub default_spec: TenantSpec,
    /// Per-tenant overrides.
    pub tenants: BTreeMap<TenantId, TenantSpec>,
    /// Refill buckets from an explicitly-advanced virtual clock
    /// ([`QuotaBook::advance_ms`]) instead of wall time — the
    /// determinism mode used by trace replay.
    pub virtual_time: bool,
}

impl TenancyConfig {
    /// The spec governing `tenant` (explicit entry or the default).
    pub fn spec(&self, tenant: TenantId) -> TenantSpec {
        self.tenants
            .get(&tenant)
            .copied()
            .unwrap_or(self.default_spec)
    }

    /// Convenience: the fairness weight for `tenant`.
    pub fn weight(&self, tenant: TenantId) -> u32 {
        self.spec(tenant).weight
    }

    /// Rejects specs the scheduler or bucket math cannot honor: zero
    /// weights (the round-robin turn would serve nothing) and
    /// non-finite or non-positive rates, or bursts below one token
    /// (no single request could ever be admitted).
    ///
    /// # Errors
    ///
    /// A human-readable description of the first invalid spec.
    pub fn validate(&self) -> Result<(), String> {
        let check = |who: &str, spec: &TenantSpec| -> Result<(), String> {
            if spec.weight == 0 {
                return Err(format!("{who}: weight must be >= 1"));
            }
            if let Some(q) = spec.quota {
                if !q.rate_per_s.is_finite() || q.rate_per_s <= 0.0 {
                    return Err(format!(
                        "{who}: quota rate_per_s {} must be finite and > 0",
                        q.rate_per_s
                    ));
                }
                if !q.burst.is_finite() || q.burst < 1.0 {
                    return Err(format!(
                        "{who}: quota burst {} must be finite and >= 1",
                        q.burst
                    ));
                }
            }
            Ok(())
        };
        check("default tenant spec", &self.default_spec)?;
        for (tenant, spec) in &self.tenants {
            check(&format!("tenant {tenant}"), spec)?;
        }
        Ok(())
    }
}

/// One tenant's live token bucket.
#[derive(Debug)]
struct Bucket {
    /// Tokens currently available (fractional between refills).
    tokens: f64,
    /// Wall-clock instant of the last refill (wall mode only).
    last_wall: Instant,
    /// Virtual milliseconds already credited (virtual mode only).
    last_virtual_ms: f64,
}

/// Live admission state: lazily-created token buckets per tenant,
/// refilled from wall or virtual time per the config.
///
/// Callers hold this behind the service queue lock, so the methods take
/// `&mut self` and do no internal locking.
#[derive(Debug)]
pub struct QuotaBook {
    config: TenancyConfig,
    buckets: BTreeMap<TenantId, Bucket>,
    /// The virtual clock, in milliseconds since book creation.
    virtual_now_ms: f64,
}

impl QuotaBook {
    /// A book enforcing `config`. Buckets start full and are created on
    /// a tenant's first request.
    pub fn new(config: TenancyConfig) -> Self {
        QuotaBook {
            config,
            buckets: BTreeMap::new(),
            virtual_now_ms: 0.0,
        }
    }

    /// The governing config.
    pub fn config(&self) -> &TenancyConfig {
        &self.config
    }

    /// Advances the virtual clock by `ms`. No-op in wall mode.
    pub fn advance_ms(&mut self, ms: f64) {
        if ms.is_finite() && ms > 0.0 {
            self.virtual_now_ms += ms;
        }
    }

    /// Takes one token from `tenant`'s bucket.
    ///
    /// # Errors
    ///
    /// `Err(retry_after_ms)` when the bucket is empty: the time until
    /// one full token will have refilled, rounded up, at least 1 ms.
    pub fn try_take(&mut self, tenant: TenantId) -> Result<(), u64> {
        let Some(quota) = self.config.spec(tenant).quota else {
            return Ok(());
        };
        let virtual_time = self.config.virtual_time;
        let virtual_now = self.virtual_now_ms;
        let bucket = self.buckets.entry(tenant).or_insert_with(|| Bucket {
            tokens: quota.burst,
            last_wall: Instant::now(),
            last_virtual_ms: virtual_now,
        });
        let elapsed_ms = if virtual_time {
            let dt = (virtual_now - bucket.last_virtual_ms).max(0.0);
            bucket.last_virtual_ms = virtual_now;
            dt
        } else {
            let now = Instant::now();
            let dt = now.duration_since(bucket.last_wall).as_secs_f64() * 1000.0;
            bucket.last_wall = now;
            dt
        };
        bucket.tokens = (bucket.tokens + elapsed_ms * quota.rate_per_s / 1000.0).min(quota.burst);
        if bucket.tokens >= 1.0 {
            bucket.tokens -= 1.0;
            Ok(())
        } else {
            let deficit = 1.0 - bucket.tokens;
            let retry_ms = (deficit * 1000.0 / quota.rate_per_s).ceil() as u64;
            Err(retry_ms.max(1))
        }
    }

    /// Tokens currently in `tenant`'s bucket without refilling —
    /// `None` if the tenant is unlimited or has never been seen.
    pub fn tokens(&self, tenant: TenantId) -> Option<f64> {
        self.buckets.get(&tenant).map(|b| b.tokens)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn limited(rate_per_s: f64, burst: f64) -> TenancyConfig {
        TenancyConfig {
            default_spec: TenantSpec {
                weight: 1,
                quota: Some(TenantQuota { rate_per_s, burst }),
            },
            tenants: BTreeMap::new(),
            virtual_time: true,
        }
    }

    #[test]
    fn unlimited_tenant_always_admitted() {
        let mut book = QuotaBook::new(TenancyConfig::default());
        for _ in 0..10_000 {
            assert_eq!(book.try_take(TenantId(7)), Ok(()));
        }
    }

    #[test]
    fn burst_then_reject_then_refill() {
        let mut book = QuotaBook::new(limited(10.0, 3.0));
        let t = TenantId(1);
        assert_eq!(book.try_take(t), Ok(()));
        assert_eq!(book.try_take(t), Ok(()));
        assert_eq!(book.try_take(t), Ok(()));
        // Bucket empty; 10/s means one token per 100 ms.
        let retry = book.try_take(t).unwrap_err();
        assert_eq!(retry, 100);
        book.advance_ms(50.0);
        assert_eq!(book.try_take(t).unwrap_err(), 50);
        book.advance_ms(50.0);
        assert_eq!(book.try_take(t), Ok(()));
    }

    #[test]
    fn refill_caps_at_burst() {
        let mut book = QuotaBook::new(limited(1000.0, 2.0));
        let t = TenantId(2);
        assert_eq!(book.try_take(t), Ok(()));
        book.advance_ms(3_600_000.0);
        // An hour refills to the 2-token cap, not 3.6M tokens.
        assert_eq!(book.try_take(t), Ok(()));
        assert_eq!(book.try_take(t), Ok(()));
        assert!(book.try_take(t).is_err());
    }

    #[test]
    fn buckets_are_per_tenant() {
        let mut book = QuotaBook::new(limited(1.0, 1.0));
        assert_eq!(book.try_take(TenantId(1)), Ok(()));
        assert!(book.try_take(TenantId(1)).is_err());
        // Tenant 2's bucket is untouched.
        assert_eq!(book.try_take(TenantId(2)), Ok(()));
    }

    #[test]
    fn virtual_replay_rejects_identically() {
        let run = || {
            let mut book = QuotaBook::new(limited(20.0, 2.0));
            let mut outcomes = Vec::new();
            for step in 0..50u32 {
                book.advance_ms(17.0);
                outcomes.push(book.try_take(TenantId(0)).is_ok());
                if step % 3 == 0 {
                    outcomes.push(book.try_take(TenantId(0)).is_ok());
                }
            }
            outcomes
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn validate_rejects_bad_specs() {
        let mut cfg = TenancyConfig::default();
        cfg.default_spec.weight = 0;
        assert!(cfg.validate().is_err());

        let mut cfg = TenancyConfig::default();
        cfg.tenants.insert(
            TenantId(3),
            TenantSpec {
                weight: 2,
                quota: Some(TenantQuota {
                    rate_per_s: 0.0,
                    burst: 5.0,
                }),
            },
        );
        assert!(cfg.validate().is_err());

        let mut cfg = TenancyConfig::default();
        cfg.tenants.insert(
            TenantId(3),
            TenantSpec {
                weight: 2,
                quota: Some(TenantQuota {
                    rate_per_s: 10.0,
                    burst: 0.5,
                }),
            },
        );
        assert!(cfg.validate().is_err());

        assert!(TenancyConfig::default().validate().is_ok());
    }

    #[test]
    fn class_order_is_strict() {
        assert!(PriorityClass::Interactive < PriorityClass::Standard);
        assert!(PriorityClass::Standard < PriorityClass::Batch);
        assert_eq!(PriorityClass::ALL[0], PriorityClass::Interactive);
        assert_eq!(format!("{}", TenantId(4)), "t4");
        assert_eq!(format!("{}", PriorityClass::Batch), "batch");
    }
}
