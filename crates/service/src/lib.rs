//! # adapt-service — the mask-recommendation serving layer
//!
//! ADAPT (MICRO 2021) finds a per-program DD mask with ≤ 4·N decoy
//! executions, and that mask stays valid for a whole calibration epoch
//! (§6.4). A deployment therefore wants a *service*: search once per
//! `(device, epoch, circuit, protocol, decoy)` and answer every later
//! request from cache until drift invalidates it. This crate is that
//! service, built on the fault/resilience substrate (`machine::fault`,
//! `machine::resilient`) and the compiled-plan cache (`machine::plan`):
//!
//! - [`DeviceRegistry`]: named hardware presets ([`DeviceId`]), each
//!   advancing through seeded calibration epochs via the existing drift
//!   model, handing out [`Machine`](machine::Machine) clones that share
//!   one plan cache per device+epoch.
//! - [`MaskCache`]: LRU-bounded, epoch-keyed, with single-flight
//!   deduplication — K concurrent identical requests trigger exactly one
//!   search.
//! - [`MaskService`]: a bounded request queue served by a worker pool,
//!   with admission control (typed [`ServiceError::Rejected`]
//!   backpressure), per-request panic containment, and responses
//!   carrying mask [`Provenance`] and [`Timing`].
//! - Deadline propagation: a request may carry a `deadline_ms` budget
//!   that is honoured at every layer — born-expired submissions are
//!   rejected, queued jobs whose budget lapses are dropped unexecuted,
//!   and a search overrunning mid-flight stops at its next neighborhood
//!   boundary and serves a conservative partial mask
//!   ([`Provenance::PartialSearch`], never cached).
//! - Per-device circuit breakers ([`HealthTracker`], opt-in via
//!   [`ServiceConfig::breaker`]): a device failing most of its recent
//!   searches trips open, and its requests fail fast
//!   ([`ServiceError::DeviceUnhealthy`]) or get the cached/all-DD
//!   conservative mask ([`Provenance::BreakerFallback`]) until a
//!   half-open probe closes the breaker again.
//! - A three-tier degradation ladder (opt-in via
//!   [`ServiceConfig::tiers`]): requests whose deadline cannot fit a
//!   search are answered instantly from the calibration-only heuristic
//!   ([`Provenance::Heuristic`], `core::heuristic`), superseded-epoch
//!   cache values are served within a staleness bound
//!   ([`Provenance::StaleServed`]) while a bounded low-priority refine
//!   lane re-searches the key in the background, and
//!   [`MaskService::prewarm_epoch`] re-characterizes the hottest keys
//!   against the *next* calibration epoch before drift lands, so an
//!   epoch advance never causes a cold-miss storm. Heuristic and stale
//!   answers are never cached as fresh; per-request
//!   [`SearchBudget::tier`] ([`TierPolicy`]) pins a request to
//!   heuristic-only or search-only when auto laddering is unwanted.
//! - Multi-tenant scheduling (opt-in via [`ServiceConfig::tenancy`]):
//!   every request carries a [`Tenancy`] (tenant id + strictly-ordered
//!   [`PriorityClass`]), admission draws per-tenant token buckets
//!   (typed [`ServiceError::QuotaExhausted`] with a refill hint), and
//!   the worker pool serves a deadline-aware ready queue
//!   ([`sched::TenantScheduler`]) — strict class priority, weighted-
//!   fair round-robin across tenants within a class, EDF within a
//!   tenant's lane, with the refine lane strictly below all classes.
//!   Per-tenant `adapt_service_tenant_*` metrics merge into one
//!   `tenant`-labelled exposition via
//!   [`MaskService::render_tenant_metrics`].
//! - Durability (opt-in via [`ServiceConfig::persist`]): the warm set
//!   survives restarts through a CRC32-checksummed snapshot plus a
//!   write-ahead journal ([`persist`]). Recovery quarantines corrupt
//!   records (typed [`PersistError`], counted, never a panic), demotes
//!   superseded-epoch entries to the stale store, and serves the rest
//!   bit-identically to pre-crash responses; a background snapshot
//!   thread with a kill-switch and write-temp-fsync-rename atomicity
//!   keeps the on-disk image fresh, and a `machine::fault`-style seeded
//!   storage-fault injector ([`persist::StorageFaultPlan`]) backs the
//!   `crash_chaos` harness.
//!
//! Responses are deterministic: for one service seed, the answer for a
//! given [`MaskKey`] is bit-identical whether it comes from a fresh
//! search or the cache, regardless of concurrency (see the determinism
//! contract in [`service`]).
//!
//! # Example
//!
//! ```
//! use adapt_service::{DeviceId, MaskService, Request, SearchBudget, ServiceConfig};
//! use adapt::DdProtocol;
//!
//! let service = MaskService::start(ServiceConfig {
//!     devices: vec![DeviceId::Rome],
//!     workers: 2,
//!     ..ServiceConfig::default()
//! });
//! let mut c = qcirc::Circuit::new(3);
//! c.h(0).cx(0, 1).cx(1, 2).measure_all();
//! let budget = SearchBudget {
//!     shots: 64,
//!     trajectories: 2,
//!     ..SearchBudget::default()
//! };
//! let first = service
//!     .call(Request::RecommendMask {
//!         circuit: c.clone(),
//!         device: DeviceId::Rome,
//!         protocol: DdProtocol::Xy4,
//!         budget,
//!         deadline_ms: None,
//!         tenancy: Default::default(),
//!     })
//!     .expect("recommend");
//! # let _ = first;
//! ```

#![warn(missing_docs)]
#![cfg_attr(not(test), deny(clippy::unwrap_used))]

pub mod breaker;
pub mod cache;
pub mod persist;
pub mod registry;
pub mod sched;
pub mod service;
pub mod tenancy;

pub use breaker::{
    Admission, BreakerConfig, BreakerFallback, BreakerState, HealthTracker, Transition,
};
pub use cache::{
    logical_hash, CacheEvent, CachedMask, FastLookup, Lookup, MaskCache, MaskCacheStats, MaskKey,
    SearchTicket, StaleKey, TieredLookup,
};
pub use persist::{
    CrashPoint, PersistConfig, PersistError, PersistStats, Persister, RecoveryReport,
    StorageFaultCounts, StorageFaultPlan, StorageFaultProfile,
};
pub use registry::{DeviceId, DeviceRegistry};
pub use sched::TenantScheduler;
pub use service::{
    BudgetError, Execution, MaskService, Pending, Provenance, Recommendation, Request, Response,
    SearchBudget, ServiceConfig, ServiceError, ServiceStats, TierConfig, TierPolicy, Timing,
};
pub use tenancy::{
    PriorityClass, QuotaBook, Tenancy, TenancyConfig, TenantId, TenantQuota, TenantSpec,
};
