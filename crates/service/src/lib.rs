//! # adapt-service — the mask-recommendation serving layer
//!
//! ADAPT (MICRO 2021) finds a per-program DD mask with ≤ 4·N decoy
//! executions, and that mask stays valid for a whole calibration epoch
//! (§6.4). A deployment therefore wants a *service*: search once per
//! `(device, epoch, circuit, protocol, decoy)` and answer every later
//! request from cache until drift invalidates it. This crate is that
//! service, built on the fault/resilience substrate (`machine::fault`,
//! `machine::resilient`) and the compiled-plan cache (`machine::plan`):
//!
//! - [`DeviceRegistry`]: named hardware presets ([`DeviceId`]), each
//!   advancing through seeded calibration epochs via the existing drift
//!   model, handing out [`Machine`](machine::Machine) clones that share
//!   one plan cache per device+epoch.
//! - [`MaskCache`]: LRU-bounded, epoch-keyed, with single-flight
//!   deduplication — K concurrent identical requests trigger exactly one
//!   search.
//! - [`MaskService`]: a bounded request queue served by a worker pool,
//!   with admission control (typed [`ServiceError::Rejected`]
//!   backpressure), per-request panic containment, and responses
//!   carrying mask [`Provenance`] and [`Timing`].
//!
//! Responses are deterministic: for one service seed, the answer for a
//! given [`MaskKey`] is bit-identical whether it comes from a fresh
//! search or the cache, regardless of concurrency (see the determinism
//! contract in [`service`]).
//!
//! # Example
//!
//! ```
//! use adapt_service::{DeviceId, MaskService, Request, SearchBudget, ServiceConfig};
//! use adapt::DdProtocol;
//!
//! let service = MaskService::start(ServiceConfig {
//!     devices: vec![DeviceId::Rome],
//!     workers: 2,
//!     ..ServiceConfig::default()
//! });
//! let mut c = qcirc::Circuit::new(3);
//! c.h(0).cx(0, 1).cx(1, 2).measure_all();
//! let budget = SearchBudget { shots: 64, trajectories: 2, neighborhood: 4 };
//! let first = service
//!     .call(Request::RecommendMask {
//!         circuit: c.clone(),
//!         device: DeviceId::Rome,
//!         protocol: DdProtocol::Xy4,
//!         budget,
//!     })
//!     .expect("recommend");
//! # let _ = first;
//! ```

#![warn(missing_docs)]
#![cfg_attr(not(test), deny(clippy::unwrap_used))]

pub mod cache;
pub mod registry;
pub mod service;

pub use cache::{CachedMask, Lookup, MaskCache, MaskCacheStats, MaskKey, SearchTicket};
pub use registry::{DeviceId, DeviceRegistry};
pub use service::{
    Execution, MaskService, Pending, Provenance, Recommendation, Request, Response, SearchBudget,
    ServiceConfig, ServiceError, ServiceStats, Timing,
};
