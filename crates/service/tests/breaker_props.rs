//! Property tests over the circuit-breaker state machine: an
//! all-success outcome stream can never trip a breaker, and any finite
//! failure burst is always recovered from within the probe budget once
//! the device is healthy again. Every scenario is a pure function of
//! the printed inputs, so a failing case replays exactly.

use adapt_service::{
    Admission, BreakerConfig, BreakerFallback, BreakerState, DeviceId, HealthTracker,
};
use proptest::prelude::*;

fn tracker(config: BreakerConfig) -> HealthTracker {
    HealthTracker::new(config, &[DeviceId::Rome], &adapt_obs::Registry::new())
}

/// Valid enabled configs. The failure threshold stays strictly positive:
/// a zero threshold is the (valid, pathological) "trip on any full
/// window" tuning, for which no-trip-on-success does not hold.
fn config_strategy() -> impl Strategy<Value = BreakerConfig> {
    (1usize..24, 0.05f64..1.0, 1u64..12, 1u64..2_000, 0.0f64..1.0).prop_map(
        |(window, failure_threshold, cooldown_requests, open_retry_hint_ms, min_frac)| {
            // min_samples uniform over [1, window] via a fraction, since
            // this proptest fork has no dependent (flat-mapped) ranges.
            let min_samples = 1 + ((window - 1) as f64 * min_frac) as usize;
            BreakerConfig {
                enabled: true,
                window,
                failure_threshold,
                min_samples,
                cooldown_requests,
                open_retry_hint_ms,
                fallback: BreakerFallback::ConservativeMask,
            }
        },
    )
}

/// One healthy round-trip: admit, and answer whatever slot was handed
/// out with a success.
fn healthy_step(t: &HealthTracker, dev: DeviceId) {
    match t.admit(dev) {
        Admission::Proceed => t.record(dev, false),
        Admission::Probe => t.record_probe(dev, false),
        Admission::Fallback | Admission::FailFast { .. } => {}
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    #[test]
    fn all_success_traffic_never_trips(config in config_strategy(), n in 0usize..256) {
        prop_assert!(config.validate().is_ok());
        let t = tracker(config);
        let dev = DeviceId::Rome;
        for _ in 0..n {
            prop_assert_eq!(t.admit(dev), Admission::Proceed);
            t.record(dev, false);
        }
        prop_assert_eq!(t.state(dev), Some(BreakerState::Closed));
        prop_assert!(t.transitions().is_empty());
    }

    #[test]
    fn finite_failure_burst_always_returns_to_closed(
        config in config_strategy(),
        burst in 1usize..128,
    ) {
        let t = tracker(config);
        let dev = DeviceId::Rome;
        // The sick phase: every admitted request fails, every probe
        // fails. Outcomes are always recorded in the same step, so no
        // probe slot is ever left dangling.
        for _ in 0..burst {
            match t.admit(dev) {
                Admission::Proceed => t.record(dev, true),
                Admission::Probe => t.record_probe(dev, true),
                Admission::Fallback | Admission::FailFast { .. } => {}
            }
        }
        // The device heals. From any reachable state the breaker must
        // close within the probe budget: at most `cooldown_requests`
        // denials to earn the half-open probe, plus the probe itself.
        let budget = config.cooldown_requests as usize + 2;
        let mut steps = 0usize;
        while t.state(dev) != Some(BreakerState::Closed) {
            prop_assert!(
                steps < budget,
                "breaker still {:?} after {} healthy admissions (budget {})",
                t.state(dev),
                steps,
                budget
            );
            healthy_step(&t, dev);
            steps += 1;
        }
        // And it stays closed under further healthy traffic.
        for _ in 0..config.window {
            healthy_step(&t, dev);
        }
        prop_assert_eq!(t.state(dev), Some(BreakerState::Closed));
    }
}
