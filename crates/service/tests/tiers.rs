//! Degradation-ladder contracts: tier-0 heuristic answers under tight
//! deadlines, tier-1 stale-while-revalidate with background upgrade,
//! single-flight refine dedup, "never cached as fresh" for heuristic
//! and stale responses, and budget/tier-config validation.

use adapt::DdProtocol;
use adapt_service::{
    DeviceId, MaskService, Provenance, Request, Response, SearchBudget, ServiceConfig,
    ServiceError, TierConfig, TierPolicy,
};

fn budget(tier: TierPolicy) -> SearchBudget {
    SearchBudget {
        shots: 64,
        trajectories: 2,
        neighborhood: 4,
        tier,
    }
}

/// A ladder-enabled service: virtual deadlines (so expiry is
/// schedule-pure), a 10-minute search floor (every bounded deadline is
/// "too tight", forcing tier 0/1), and a 2-epoch staleness bound.
fn tiered_service(devices: Vec<DeviceId>) -> MaskService {
    MaskService::start(ServiceConfig {
        devices,
        workers: 2,
        queue_capacity: 64,
        cache_capacity: 32,
        seed: 2021,
        virtual_deadlines: true,
        tiers: TierConfig {
            min_search_ms: 600_000,
            max_stale_epochs: 2,
            ..TierConfig::default()
        },
        ..ServiceConfig::default()
    })
}

fn ghz(n: usize) -> qcirc::Circuit {
    let mut c = qcirc::Circuit::new(n);
    c.h(0);
    for q in 1..n as u32 {
        c.cx(q - 1, q);
    }
    c.measure_all();
    c
}

fn recommend(
    circuit: &qcirc::Circuit,
    device: DeviceId,
    tier: TierPolicy,
    deadline_ms: Option<u64>,
) -> Request {
    Request::RecommendMask {
        circuit: circuit.clone(),
        device,
        protocol: DdProtocol::Xy4,
        budget: budget(tier),
        deadline_ms,
        tenancy: Default::default(),
    }
}

fn unwrap_mask(r: Response) -> adapt_service::Recommendation {
    match r {
        Response::Mask(rec) => rec,
        Response::Execution(_) => panic!("expected a mask response"),
    }
}

#[test]
fn tight_deadline_on_cold_cache_gets_a_heuristic_answer_then_upgrades() {
    let svc = tiered_service(vec![DeviceId::Rome]);
    let circuit = ghz(4);

    // Cold key, 50 ms deadline, 600 s search floor: tier 0 answers.
    let rec = unwrap_mask(
        svc.call(recommend(
            &circuit,
            DeviceId::Rome,
            TierPolicy::Auto,
            Some(50),
        ))
        .expect("heuristic answer"),
    );
    assert_eq!(rec.provenance, Provenance::Heuristic);
    assert_eq!(rec.decoy_runs, 0, "tier 0 runs no decoys");
    assert_eq!(rec.mask.num_qubits(), 4);

    // The cold ticket went to the background refiner: once drained, the
    // key is cached with a *real* search result.
    svc.drain_refines();
    let warm = unwrap_mask(
        svc.call(recommend(
            &circuit,
            DeviceId::Rome,
            TierPolicy::Auto,
            Some(50),
        ))
        .expect("upgraded answer"),
    );
    assert_eq!(warm.provenance, Provenance::CacheHit);
    assert!(warm.decoy_runs > 0, "the upgrade came from a real search");

    let stats = svc.stats();
    assert_eq!(stats.heuristic_served, 1);
    assert_eq!(stats.refines_completed, 1);
    assert_eq!(stats.searches, 0, "no inline search ever ran");
    assert_eq!(stats.worker_panics, 0);

    // The refined entry must be bit-identical to what an unbounded
    // inline search of the same key+budget would produce.
    let svc2 = tiered_service(vec![DeviceId::Rome]);
    let fresh = unwrap_mask(
        svc2.call(recommend(&circuit, DeviceId::Rome, TierPolicy::Auto, None))
            .expect("inline search"),
    );
    assert_eq!(fresh.provenance, Provenance::FreshSearch);
    assert_eq!(fresh.mask, warm.mask);
    assert_eq!(
        fresh.decoy_fidelity.to_bits(),
        warm.decoy_fidelity.to_bits()
    );
}

#[test]
fn heuristic_and_stale_answers_are_never_cached_as_fresh() {
    let svc = tiered_service(vec![DeviceId::Rome]);
    let circuit = ghz(4);

    // Tier-0 answer: nothing may land in the serving map from it.
    let rec = unwrap_mask(
        svc.call(recommend(
            &circuit,
            DeviceId::Rome,
            TierPolicy::HeuristicOnly,
            Some(50),
        ))
        .expect("heuristic answer"),
    );
    assert_eq!(rec.provenance, Provenance::Heuristic);
    assert_eq!(svc.cache_stats().len, 0, "heuristic answers are not cached");

    // Warm the key for real, advance the epoch, serve stale: the stale
    // value must not be re-cached at the new epoch either.
    let fresh = unwrap_mask(
        svc.call(recommend(&circuit, DeviceId::Rome, TierPolicy::Auto, None))
            .expect("fresh search"),
    );
    assert_eq!(fresh.provenance, Provenance::FreshSearch);
    svc.set_refiner_enabled(false); // keep the refine from completing
    svc.advance_epoch(DeviceId::Rome).expect("advance");
    let stale = unwrap_mask(
        svc.call(recommend(
            &circuit,
            DeviceId::Rome,
            TierPolicy::Auto,
            Some(50),
        ))
        .expect("stale answer"),
    );
    assert_eq!(stale.provenance, Provenance::StaleServed { age_epochs: 1 });
    assert_eq!(stale.mask, fresh.mask, "stale serves the superseded mask");
    assert_eq!(
        svc.cache_stats().len,
        0,
        "the stale value must not reappear in the serving map"
    );
}

#[test]
fn stale_is_served_within_bound_and_refused_beyond_it() {
    let svc = tiered_service(vec![DeviceId::Rome]);
    let circuit = ghz(4);
    unwrap_mask(
        svc.call(recommend(&circuit, DeviceId::Rome, TierPolicy::Auto, None))
            .expect("warm the key"),
    );
    svc.set_refiner_enabled(false);

    // Ages 1 and 2 are inside the bound.
    for age in 1..=2u64 {
        svc.advance_epoch(DeviceId::Rome).expect("advance");
        let rec = unwrap_mask(
            svc.call(recommend(
                &circuit,
                DeviceId::Rome,
                TierPolicy::Auto,
                Some(50),
            ))
            .expect("stale answer"),
        );
        assert_eq!(rec.provenance, Provenance::StaleServed { age_epochs: age });
    }

    // Age 3 exceeds max_stale_epochs = 2: the ladder falls to tier 0.
    svc.advance_epoch(DeviceId::Rome).expect("advance");
    let rec = unwrap_mask(
        svc.call(recommend(
            &circuit,
            DeviceId::Rome,
            TierPolicy::Auto,
            Some(50),
        ))
        .expect("heuristic answer"),
    );
    assert_eq!(rec.provenance, Provenance::Heuristic);
    assert_eq!(svc.stats().stale_served, 2);
}

#[test]
fn a_hot_stale_key_schedules_exactly_one_refine() {
    let svc = tiered_service(vec![DeviceId::Rome]);
    let circuit = ghz(4);
    unwrap_mask(
        svc.call(recommend(&circuit, DeviceId::Rome, TierPolicy::Auto, None))
            .expect("warm the key"),
    );
    svc.advance_epoch(DeviceId::Rome).expect("advance");

    // A burst of tight-deadline requests for the now-stale key: all are
    // served stale, and the single-flight ticket ensures only one
    // refine job is enqueued for the flight group.
    let pending: Vec<_> = (0..6)
        .map(|_| {
            svc.submit(recommend(
                &circuit,
                DeviceId::Rome,
                TierPolicy::Auto,
                Some(250),
            ))
            .expect("queue has room")
        })
        .collect();
    for p in pending {
        let rec = unwrap_mask(p.wait().expect("stale answer"));
        assert!(
            matches!(
                rec.provenance,
                Provenance::StaleServed { age_epochs: 1 } | Provenance::CacheHit
            ),
            "got {:?}",
            rec.provenance
        );
    }
    svc.drain_refines();
    let stats = svc.stats();
    assert_eq!(
        stats.refines_enqueued, 1,
        "single-flight must dedupe the refine stampede: {stats:?}"
    );
    assert_eq!(stats.refines_completed, 1);

    // After the refine lands, the key serves as a plain hit.
    let rec = unwrap_mask(
        svc.call(recommend(
            &circuit,
            DeviceId::Rome,
            TierPolicy::Auto,
            Some(250),
        ))
        .expect("hit"),
    );
    assert_eq!(rec.provenance, Provenance::CacheHit);
}

#[test]
fn search_only_tier_never_serves_stale_or_heuristic() {
    let svc = tiered_service(vec![DeviceId::Rome]);
    let circuit = ghz(4);
    unwrap_mask(
        svc.call(recommend(&circuit, DeviceId::Rome, TierPolicy::Auto, None))
            .expect("warm the key"),
    );
    svc.set_refiner_enabled(false);
    svc.advance_epoch(DeviceId::Rome).expect("advance");

    // SearchOnly with no deadline: a full fresh search at the new epoch,
    // even though a within-bound stale value exists.
    let rec = unwrap_mask(
        svc.call(recommend(
            &circuit,
            DeviceId::Rome,
            TierPolicy::SearchOnly,
            None,
        ))
        .expect("fresh search"),
    );
    assert_eq!(rec.provenance, Provenance::FreshSearch);
    assert_eq!(svc.stats().stale_served, 0);
    assert_eq!(svc.stats().heuristic_served, 0);
}

#[test]
fn prewarm_makes_an_epoch_advance_a_non_event_for_hot_keys() {
    let svc = tiered_service(vec![DeviceId::Rome]);
    let circuit = ghz(4);
    // Make the key hot at epoch 0.
    for _ in 0..3 {
        unwrap_mask(
            svc.call(recommend(&circuit, DeviceId::Rome, TierPolicy::Auto, None))
                .expect("warm the key"),
        );
    }
    // Characterize it against epoch 1 before drift lands.
    let scheduled = svc.prewarm_epoch(DeviceId::Rome).expect("prewarm");
    assert_eq!(scheduled, 1);
    svc.drain_refines();
    svc.advance_epoch(DeviceId::Rome).expect("advance");

    // The very first post-advance request hits — no stale, no heuristic,
    // no cold miss.
    let rec = unwrap_mask(
        svc.call(recommend(
            &circuit,
            DeviceId::Rome,
            TierPolicy::Auto,
            Some(50),
        ))
        .expect("prewarmed hit"),
    );
    assert_eq!(rec.provenance, Provenance::CacheHit);
    assert!(rec.decoy_runs > 0, "the prewarmed entry is a real search");
    let stats = svc.stats();
    assert_eq!(stats.prewarm_scheduled, 1);
    assert_eq!(stats.refines_completed, 1);
    assert_eq!(stats.heuristic_served, 0);
    assert_eq!(stats.stale_served, 0);
}

#[test]
fn killing_the_refiner_degrades_gracefully_instead_of_wedging() {
    let svc = tiered_service(vec![DeviceId::Rome]);
    let circuit = ghz(4);
    svc.set_refiner_enabled(false);

    // Cold + tight deadline with a dead refiner: heuristic answer, the
    // refine is dropped (ticket released), and drain returns instantly.
    let rec = unwrap_mask(
        svc.call(recommend(
            &circuit,
            DeviceId::Rome,
            TierPolicy::Auto,
            Some(50),
        ))
        .expect("heuristic answer"),
    );
    assert_eq!(rec.provenance, Provenance::Heuristic);
    svc.drain_refines();
    let stats = svc.stats();
    assert_eq!(stats.refines_enqueued, 0);
    assert!(stats.refines_dropped >= 1);

    // Re-enabling the lane restores upgrades: the key is not wedged by
    // the dropped ticket.
    svc.set_refiner_enabled(true);
    let rec = unwrap_mask(
        svc.call(recommend(
            &circuit,
            DeviceId::Rome,
            TierPolicy::Auto,
            Some(50),
        ))
        .expect("heuristic again"),
    );
    assert_eq!(rec.provenance, Provenance::Heuristic);
    svc.drain_refines();
    assert_eq!(svc.stats().refines_completed, 1);
    let rec = unwrap_mask(
        svc.call(recommend(
            &circuit,
            DeviceId::Rome,
            TierPolicy::Auto,
            Some(50),
        ))
        .expect("upgraded"),
    );
    assert_eq!(rec.provenance, Provenance::CacheHit);
}

#[test]
fn zero_budgets_are_rejected_with_a_typed_error() {
    // Config-level: a service cannot start with an unusable default.
    let bad = ServiceConfig {
        default_budget: SearchBudget {
            trajectories: 0,
            ..SearchBudget::default()
        },
        ..ServiceConfig::default()
    };
    match MaskService::try_start(bad) {
        Err(ServiceError::InvalidConfig { reason }) => {
            assert!(reason.contains("trajectories"), "got: {reason}")
        }
        other => panic!("expected InvalidConfig, got {other:?}"),
    }

    // Contradictory tier config is rejected the same way.
    let bad = ServiceConfig {
        tiers: TierConfig {
            max_stale_epochs: 2,
            stale_capacity: 0,
            ..TierConfig::default()
        },
        ..ServiceConfig::default()
    };
    match MaskService::try_start(bad) {
        Err(ServiceError::InvalidConfig { reason }) => {
            assert!(reason.contains("contradictory"), "got: {reason}")
        }
        other => panic!("expected InvalidConfig, got {other:?}"),
    }

    // Request-level: a zero-shot budget is bounced at submit.
    let svc = tiered_service(vec![DeviceId::Rome]);
    let err = svc
        .submit(recommend(&ghz(3), DeviceId::Rome, TierPolicy::Auto, None))
        .and_then(|p| p.wait().map(|_| ()))
        .and(
            svc.submit(Request::RecommendMask {
                circuit: ghz(3),
                device: DeviceId::Rome,
                protocol: DdProtocol::Xy4,
                budget: SearchBudget {
                    shots: 0,
                    ..SearchBudget::default()
                },
                deadline_ms: None,
                tenancy: Default::default(),
            })
            .map(|_| ()),
        )
        .expect_err("zero shots must be rejected");
    assert!(matches!(err, ServiceError::InvalidConfig { .. }));

    // But a HeuristicOnly budget with zero search parameters is fine —
    // it never searches. (A cold key: ghz(5) was not warmed above.)
    let rec = unwrap_mask(
        svc.call(Request::RecommendMask {
            circuit: ghz(5),
            device: DeviceId::Rome,
            protocol: DdProtocol::Xy4,
            budget: SearchBudget {
                shots: 0,
                trajectories: 0,
                neighborhood: 0,
                tier: TierPolicy::HeuristicOnly,
            },
            deadline_ms: Some(50),
            tenancy: Default::default(),
        })
        .expect("heuristic-only answer"),
    );
    assert_eq!(rec.provenance, Provenance::Heuristic);
}
