//! Concurrency contracts of the mask service: single-flight
//! deduplication, drift-triggered epoch invalidation, and bit-identical
//! cache-hit vs fresh-search responses under one seed.

use adapt::DdProtocol;
use adapt_service::{
    DeviceId, MaskService, Provenance, Request, Response, SearchBudget, ServiceConfig, TierPolicy,
};
use machine::FaultProfile;

fn small_budget() -> SearchBudget {
    SearchBudget {
        shots: 64,
        trajectories: 2,
        neighborhood: 4,
        tier: TierPolicy::default(),
    }
}

fn service(devices: Vec<DeviceId>, workers: usize, profile: FaultProfile) -> MaskService {
    MaskService::start(ServiceConfig {
        devices,
        workers,
        queue_capacity: 64,
        cache_capacity: 32,
        seed: 2021,
        fault_profile: profile,
        ..ServiceConfig::default()
    })
}

fn ghz(n: usize) -> qcirc::Circuit {
    let mut c = qcirc::Circuit::new(n);
    c.h(0);
    for q in 1..n as u32 {
        c.cx(q - 1, q);
    }
    c.measure_all();
    c
}

fn recommend(circuit: &qcirc::Circuit, device: DeviceId) -> Request {
    Request::RecommendMask {
        circuit: circuit.clone(),
        device,
        protocol: DdProtocol::Xy4,
        budget: small_budget(),
        deadline_ms: None,
        tenancy: Default::default(),
    }
}

fn unwrap_mask(r: Response) -> adapt_service::Recommendation {
    match r {
        Response::Mask(rec) => rec,
        Response::Execution(_) => panic!("expected a mask response"),
    }
}

#[test]
fn k_concurrent_identical_requests_trigger_exactly_one_search() {
    const K: usize = 8;
    let svc = service(vec![DeviceId::Rome], 4, FaultProfile::none());
    let circuit = ghz(4);

    // Burst-submit K identical requests before waiting on any reply, so
    // several workers race on the same key.
    let pending: Vec<_> = (0..K)
        .map(|_| {
            svc.submit(recommend(&circuit, DeviceId::Rome))
                .expect("queue has room for the burst")
        })
        .collect();
    let recs: Vec<_> = pending
        .into_iter()
        .map(|p| unwrap_mask(p.wait().expect("recommendation")))
        .collect();

    let stats = svc.stats();
    let cache = svc.cache_stats();
    assert_eq!(
        stats.searches, 1,
        "K identical requests must share one search"
    );
    assert_eq!(cache.misses, 1);
    assert_eq!(cache.hits, K as u64 - 1);
    assert_eq!(stats.worker_panics, 0);

    // Exactly one response is the searcher's; the rest are cache hits,
    // and every response carries the identical mask.
    let fresh = recs
        .iter()
        .filter(|r| r.provenance != Provenance::CacheHit)
        .count();
    assert_eq!(fresh, 1);
    for r in &recs {
        assert_eq!(r.mask, recs[0].mask);
        assert_eq!(r.decoy_fidelity.to_bits(), recs[0].decoy_fidelity.to_bits());
        assert_eq!(r.key, recs[0].key);
    }
}

#[test]
fn drift_tick_invalidates_the_epoch_and_forces_a_fresh_search() {
    let svc = service(vec![DeviceId::Rome], 2, FaultProfile::none());
    let circuit = ghz(4);

    let first = unwrap_mask(
        svc.call(recommend(&circuit, DeviceId::Rome))
            .expect("first"),
    );
    assert_eq!(first.provenance, Provenance::FreshSearch);
    assert_eq!(first.key.epoch, 0);
    let second = unwrap_mask(
        svc.call(recommend(&circuit, DeviceId::Rome))
            .expect("second"),
    );
    assert_eq!(second.provenance, Provenance::CacheHit);

    assert_eq!(svc.advance_epoch(DeviceId::Rome), Ok(1));
    assert_eq!(svc.cache_stats().invalidated, 1, "epoch-0 entry dropped");

    let third = unwrap_mask(
        svc.call(recommend(&circuit, DeviceId::Rome))
            .expect("third"),
    );
    assert_eq!(
        third.provenance,
        Provenance::FreshSearch,
        "stale mask must not be served"
    );
    assert_eq!(third.key.epoch, 1);
    assert_eq!(svc.stats().searches, 2);
}

#[test]
fn cache_hit_and_fresh_search_are_bit_identical_at_one_seed() {
    // Run under fault injection: determinism must survive retries,
    // truncation and drift, not just the happy path.
    let circuit = ghz(4);

    // Service A answers the key twice: fresh, then cached.
    let a = service(vec![DeviceId::Rome], 2, FaultProfile::flaky());
    let a_fresh = unwrap_mask(
        a.call(recommend(&circuit, DeviceId::Rome))
            .expect("a fresh"),
    );
    let a_hit = unwrap_mask(a.call(recommend(&circuit, DeviceId::Rome)).expect("a hit"));
    assert_eq!(a_fresh.provenance, Provenance::FreshSearch);
    assert_eq!(a_hit.provenance, Provenance::CacheHit);

    // Service B (same seed, fresh process-state) answers it cold.
    let b = service(vec![DeviceId::Rome], 3, FaultProfile::flaky());
    let b_fresh = unwrap_mask(
        b.call(recommend(&circuit, DeviceId::Rome))
            .expect("b fresh"),
    );
    assert_eq!(b_fresh.provenance, Provenance::FreshSearch);

    for other in [&a_hit, &b_fresh] {
        assert_eq!(
            a_fresh.key, other.key,
            "same circuit+device must key identically"
        );
        assert_eq!(a_fresh.mask, other.mask, "mask must be bit-identical");
        assert_eq!(
            a_fresh.decoy_fidelity.to_bits(),
            other.decoy_fidelity.to_bits(),
            "fidelity must be bit-identical"
        );
        assert_eq!(a_fresh.decoy_runs, other.decoy_runs);
    }
}

#[test]
fn queue_overflow_rejects_with_typed_backpressure() {
    // One worker and a tiny queue: the burst must overflow.
    let svc = MaskService::start(ServiceConfig {
        devices: vec![DeviceId::Rome],
        workers: 1,
        queue_capacity: 2,
        cache_capacity: 8,
        seed: 5,
        fault_profile: FaultProfile::none(),
        ..ServiceConfig::default()
    });
    // Distinct circuits so nothing coalesces and every job costs a search.
    let circuits: Vec<_> = (2..=5).map(ghz).collect();
    let mut accepted = Vec::new();
    let mut rejected = 0usize;
    for c in circuits.iter().cycle().take(12) {
        match svc.submit(recommend(c, DeviceId::Rome)) {
            Ok(p) => accepted.push(p),
            Err(adapt_service::ServiceError::Rejected {
                queue_depth,
                retry_after_ms,
            }) => {
                assert_eq!(queue_depth, 2);
                assert!(retry_after_ms >= 1);
                rejected += 1;
            }
            Err(e) => panic!("unexpected submit error: {e}"),
        }
    }
    assert!(rejected > 0, "a 12-deep burst must overflow a 2-slot queue");
    assert_eq!(svc.stats().rejected, rejected as u64);
    for p in accepted {
        p.wait().expect("accepted requests complete");
    }
    assert_eq!(svc.stats().worker_panics, 0);
}

#[test]
fn worker_panic_is_contained_and_the_pool_keeps_serving() {
    // One worker: if the panic killed the thread — or poisoned a shared
    // lock into a panic cascade — the follow-up request could never
    // complete.
    let svc = service(vec![DeviceId::Rome], 1, FaultProfile::none());

    // A 9-qubit program cannot be laid out on 5-qubit Rome; the
    // transpiler asserts, which panics the worker mid-request.
    let err = svc
        .call(recommend(&ghz(9), DeviceId::Rome))
        .expect_err("oversized program must fail");
    assert!(
        matches!(err, adapt_service::ServiceError::Internal { .. }),
        "panic must surface as a typed Internal error, got {err:?}"
    );

    let stats = svc.stats();
    assert_eq!(stats.worker_panics, 1);
    assert_eq!(stats.failed, 1);

    // The same worker thread must still serve the next request.
    let rec = unwrap_mask(
        svc.call(recommend(&ghz(4), DeviceId::Rome))
            .expect("pool must survive the panic"),
    );
    assert_eq!(rec.provenance, Provenance::FreshSearch);
    let stats = svc.stats();
    assert_eq!(stats.worker_panics, 1, "no further panics");
    assert_eq!(stats.completed, 2);
    assert_eq!(stats.failed, 1);
}

#[test]
fn per_service_registries_keep_stats_isolated_and_exportable() {
    // Two services in one process: counters must not bleed between them
    // (each config defaults to a fresh private registry), and each
    // service's registry must render its own numbers.
    let a = service(vec![DeviceId::Rome], 2, FaultProfile::none());
    let b = service(vec![DeviceId::Rome], 2, FaultProfile::none());

    let circuit = ghz(4);
    unwrap_mask(a.call(recommend(&circuit, DeviceId::Rome)).expect("a"));
    unwrap_mask(a.call(recommend(&circuit, DeviceId::Rome)).expect("a hit"));
    assert_eq!(a.stats().accepted, 2);
    assert_eq!(b.stats().accepted, 0, "b's counters must stay untouched");

    let samples = adapt_obs::parse_prometheus(&a.metrics_registry().render_prometheus())
        .expect("exposition parses");
    let get = |n: &str| adapt_obs::sample_value(&samples, n).unwrap_or(0.0) as u64;
    assert_eq!(get("adapt_service_requests_total"), 2);
    assert_eq!(get("adapt_service_searches_total"), 1);
    assert_eq!(get("adapt_service_cache_hits_total"), 1);
    assert_eq!(get("adapt_service_cache_lookups_total"), 2);
    let stats = a.cache_stats();
    assert_eq!(stats.hits + stats.misses, stats.lookups);
}
