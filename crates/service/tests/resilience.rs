//! Deadline-propagation and circuit-breaker behaviour of the service:
//! born-expired submissions, queue-lapsed drops, mid-search partial
//! masks, breaker trip/fallback/probe/recovery, and config validation.

use adapt::{DdMask, DdProtocol};
use adapt_service::{
    BreakerConfig, BreakerFallback, BreakerState, DeviceId, MaskService, Provenance, Request,
    Response, SearchBudget, ServiceConfig, ServiceError, TierPolicy,
};
use machine::{FaultProfile, RetryPolicy};

fn ghz(n: u32) -> qcirc::Circuit {
    let mut c = qcirc::Circuit::new(n as usize);
    c.h(0);
    for q in 0..n - 1 {
        c.cx(q, q + 1);
    }
    c.measure_all();
    c
}

/// A distinct circuit per tag (distinct structural hash → distinct
/// cache key → every request runs a fresh search). The tag is applied
/// as an X-gate bitmask — single X per qubit, so the transpiler cannot
/// cancel them into a collision.
fn tagged(n: u32, tag: usize) -> qcirc::Circuit {
    let mut c = qcirc::Circuit::new(n as usize);
    for q in 0..n {
        if tag & (1 << q) != 0 {
            c.x(q);
        }
    }
    c.h(0);
    for q in 0..n - 1 {
        c.cx(q, q + 1);
    }
    c.measure_all();
    c
}

fn small_budget() -> SearchBudget {
    SearchBudget {
        shots: 64,
        trajectories: 2,
        neighborhood: 4,
        tier: TierPolicy::default(),
    }
}

fn recommend(circuit: qcirc::Circuit, device: DeviceId, deadline_ms: Option<u64>) -> Request {
    Request::RecommendMask {
        circuit,
        device,
        protocol: DdProtocol::Xy4,
        budget: small_budget(),
        deadline_ms,
        tenancy: Default::default(),
    }
}

fn unwrap_mask(r: Response) -> adapt_service::Recommendation {
    match r {
        Response::Mask(rec) => rec,
        other => panic!("expected a mask response, got {other:?}"),
    }
}

/// A device whose every job fails: retries exhaust, searches degrade to
/// the conservative all-DD mask, and the breaker sees failures.
fn dead_profile() -> FaultProfile {
    FaultProfile {
        transient_failure: 1.0,
        ..FaultProfile::none()
    }
}

#[test]
fn born_expired_submission_is_rejected_without_enqueue() {
    let svc = MaskService::start(ServiceConfig {
        devices: vec![DeviceId::Rome],
        workers: 1,
        ..ServiceConfig::default()
    });
    let err = svc
        .submit(recommend(ghz(3), DeviceId::Rome, Some(0)))
        .expect_err("a zero budget is expired at submission");
    assert!(
        matches!(err, ServiceError::DeadlineExceeded { budget_ms: 0, .. }),
        "expected the typed deadline error, got {err:?}"
    );
    let stats = svc.shutdown();
    assert_eq!(stats.accepted, 0, "the job must never have been enqueued");
    assert_eq!(stats.rejected, 1);
    assert_eq!(stats.rejected_deadline, 1);
    assert_eq!(stats.deadline_dropped, 0);
    assert_eq!(stats.searches, 0);
}

#[test]
fn deadline_lapsing_in_queue_drops_the_job_uncounted_unexecuted() {
    let svc = MaskService::start(ServiceConfig {
        devices: vec![DeviceId::Guadalupe],
        workers: 1,
        ..ServiceConfig::default()
    });
    // The slow job occupies the single worker for several milliseconds
    // (a fresh 8-qubit search on the 16-qubit device); the 1 ms job
    // behind it expires queued.
    let slow = svc
        .submit(recommend(ghz(8), DeviceId::Guadalupe, None))
        .expect("submit slow");
    // Wait for the worker to take the slow job: the scheduler is
    // deadline-aware now, so a tight-deadline job submitted while the
    // slow one is still *queued* would (correctly) jump ahead of it
    // and run instead of expiring behind it.
    let depth = svc.metrics_registry().gauge("adapt_service_queue_depth");
    while depth.get() > 0 {
        std::thread::yield_now();
    }
    let doomed = svc
        .submit(recommend(ghz(4), DeviceId::Guadalupe, Some(1)))
        .expect("accepted at submission — not yet expired");
    assert!(slow.wait().is_ok(), "the slow job itself succeeds");
    let err = doomed.wait().expect_err("expired while queued");
    assert!(
        matches!(err, ServiceError::DeadlineExceeded { budget_ms: 1, .. }),
        "expected the typed deadline error, got {err:?}"
    );
    let stats = svc.shutdown();
    assert_eq!(stats.deadline_dropped, 1);
    assert_eq!(
        stats.searches, 1,
        "the dropped job must not have run its search"
    );
}

#[test]
fn deadline_mid_search_serves_a_conservative_partial_mask_and_skips_the_cache() {
    let svc = MaskService::start(ServiceConfig {
        devices: vec![DeviceId::Guadalupe],
        workers: 1,
        ..ServiceConfig::default()
    });
    // Generous enough to be dequeued and start searching, far too tight
    // for the full search (hundreds of decoy simulations).
    let circuit = ghz(7);
    let budget = SearchBudget {
        shots: 256,
        trajectories: 8,
        neighborhood: 4,
        tier: TierPolicy::default(),
    };
    let rec = unwrap_mask(
        svc.call(Request::RecommendMask {
            circuit: circuit.clone(),
            device: DeviceId::Guadalupe,
            protocol: DdProtocol::Xy4,
            budget,
            deadline_ms: Some(5),
            tenancy: Default::default(),
        })
        .expect("a mid-search expiry serves the conservative partial mask"),
    );
    assert_eq!(rec.provenance, Provenance::PartialSearch);
    assert!(rec.degraded, "unvisited neighborhoods are all-DD");
    // Partial masks are never cached: the same key searches afresh.
    let retry = unwrap_mask(
        svc.call(Request::RecommendMask {
            circuit,
            device: DeviceId::Guadalupe,
            protocol: DdProtocol::Xy4,
            budget,
            deadline_ms: None,
            tenancy: Default::default(),
        })
        .expect("unbounded retry"),
    );
    assert_ne!(
        retry.provenance,
        Provenance::CacheHit,
        "the partial result must not have been cached"
    );
    let stats = svc.shutdown();
    assert_eq!(stats.partial_searches, 1);
    assert_eq!(stats.searches, 2);
}

#[test]
fn breaker_trips_serves_conservative_fallback_and_recovers_via_probe() {
    let svc = MaskService::start(ServiceConfig {
        devices: vec![DeviceId::Rome],
        workers: 1,
        breaker: BreakerConfig {
            window: 4,
            min_samples: 2,
            failure_threshold: 1.0,
            cooldown_requests: 2,
            fallback: BreakerFallback::ConservativeMask,
            ..BreakerConfig::enabled()
        },
        ..ServiceConfig::default()
    });
    svc.set_fault_profile(DeviceId::Rome, dead_profile());
    // Two fully-degraded searches fill min_samples and trip the breaker.
    for tag in 0..2 {
        let rec = unwrap_mask(
            svc.call(recommend(tagged(4, tag), DeviceId::Rome, None))
                .expect("degraded ok"),
        );
        assert_eq!(rec.provenance, Provenance::DegradedAllDd);
    }
    assert_eq!(svc.breaker_state(DeviceId::Rome), Some(BreakerState::Open));
    // First denied admission: the conservative fallback, backend
    // untouched (searches counter must not move).
    let rec = unwrap_mask(
        svc.call(recommend(tagged(4, 2), DeviceId::Rome, None))
            .expect("fallback ok"),
    );
    assert_eq!(rec.provenance, Provenance::BreakerFallback);
    assert_eq!(
        rec.mask,
        DdMask::all(4),
        "nothing cached for this key, so the fallback is all-DD"
    );
    assert_eq!(rec.decoy_runs, 0);
    // Heal the device; the second denied admission converts into the
    // half-open probe, which runs for real, succeeds, and closes.
    svc.clear_fault_profile(DeviceId::Rome);
    let rec = unwrap_mask(
        svc.call(recommend(tagged(4, 3), DeviceId::Rome, None))
            .expect("probe ok"),
    );
    assert_eq!(rec.provenance, Provenance::FreshSearch);
    assert_eq!(
        svc.breaker_state(DeviceId::Rome),
        Some(BreakerState::Closed)
    );
    let transitions: Vec<_> = svc.breaker_transitions().iter().map(|t| t.to).collect();
    assert_eq!(
        transitions,
        vec![
            BreakerState::Open,
            BreakerState::HalfOpen,
            BreakerState::Closed
        ]
    );
    let stats = svc.shutdown();
    assert_eq!(stats.breaker_trips, 1);
    assert_eq!(stats.breaker_recoveries, 1);
    assert_eq!(stats.breaker_fallbacks, 1);
    assert_eq!(stats.searches, 3, "the fallback never touched the backend");
}

#[test]
fn open_breaker_in_fail_fast_mode_rejects_at_submission() {
    let svc = MaskService::start(ServiceConfig {
        devices: vec![DeviceId::Rome],
        workers: 1,
        breaker: BreakerConfig {
            window: 4,
            min_samples: 1,
            failure_threshold: 1.0,
            cooldown_requests: 100,
            open_retry_hint_ms: 321,
            fallback: BreakerFallback::FailFast,
            ..BreakerConfig::enabled()
        },
        ..ServiceConfig::default()
    });
    svc.set_fault_profile(DeviceId::Rome, dead_profile());
    let rec = unwrap_mask(
        svc.call(recommend(tagged(4, 0), DeviceId::Rome, None))
            .expect("degraded ok"),
    );
    assert_eq!(rec.provenance, Provenance::DegradedAllDd);
    assert_eq!(svc.breaker_state(DeviceId::Rome), Some(BreakerState::Open));
    let err = svc
        .submit(recommend(tagged(4, 1), DeviceId::Rome, None))
        .expect_err("open breaker fails fast at submission");
    assert_eq!(
        err,
        ServiceError::DeviceUnhealthy {
            device: DeviceId::Rome,
            retry_after_ms: 321
        }
    );
    let stats = svc.shutdown();
    assert_eq!(stats.rejected_breaker, 1);
    assert_eq!(stats.searches, 1);
}

#[test]
fn invalid_configs_surface_typed_errors_instead_of_panics() {
    let bad_retry = ServiceConfig {
        retry: RetryPolicy {
            max_attempts: 0,
            ..RetryPolicy::default()
        },
        ..ServiceConfig::default()
    };
    assert!(matches!(
        MaskService::try_start(bad_retry),
        Err(ServiceError::InvalidConfig { .. })
    ));
    let bad_breaker = ServiceConfig {
        breaker: BreakerConfig {
            window: 0,
            ..BreakerConfig::enabled()
        },
        ..ServiceConfig::default()
    };
    assert!(matches!(
        MaskService::try_start(bad_breaker),
        Err(ServiceError::InvalidConfig { .. })
    ));
    // A disabled breaker never validates its tuning: it cannot act.
    let disabled = ServiceConfig {
        breaker: BreakerConfig {
            window: 0,
            ..BreakerConfig::disabled()
        },
        ..ServiceConfig::default()
    };
    let svc = MaskService::try_start(disabled).expect("disabled breaker tuning is ignored");
    svc.shutdown();
}
