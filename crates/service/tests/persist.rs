//! Durability contracts at the service boundary (DESIGN.md §17):
//! warm-set restarts serve bit-identical responses, registry epochs
//! replay from the snapshot, corruption quarantines instead of
//! panicking, and recovered entries still obey the staleness ladder —
//! the stale-store capacity bound and the
//! `hits + misses + stale_served == lookups` accounting invariant.

use std::path::{Path, PathBuf};
use std::sync::Arc;

use adapt::{DdMask, DdProtocol, DecoyKind};
use adapt_service::cache::TieredLookup;
use adapt_service::persist::{journal_path, snapshot_path};
use adapt_service::{
    CachedMask, DeviceId, DeviceRegistry, MaskCache, MaskKey, MaskService, PersistConfig,
    Persister, Provenance, Request, Response, SearchBudget, ServiceConfig,
};

fn tmp(name: &str) -> PathBuf {
    let dir = std::env::temp_dir()
        .join("adapt_persist_integration")
        .join(name);
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn persist_service(dir: &Path, devices: Vec<DeviceId>) -> MaskService {
    MaskService::start(ServiceConfig {
        devices,
        workers: 2,
        queue_capacity: 64,
        cache_capacity: 32,
        seed: 2021,
        persist: PersistConfig {
            // Long interval: snapshots in these tests come from
            // `snapshot_now` / shutdown, not the background thread.
            snapshot_interval_ms: 600_000,
            ..PersistConfig::at(dir.to_path_buf())
        },
        ..ServiceConfig::default()
    })
}

fn tagged(tag: u32) -> qcirc::Circuit {
    let mut c = qcirc::Circuit::new(5);
    c.h(0);
    for q in 1..5u32 {
        c.cx(q - 1, q);
    }
    // Distinct structure per tag so every circuit is its own cache key.
    for q in 0..5u32 {
        match (tag >> (2 * q)) & 3 {
            1 => {
                c.x(q);
            }
            2 => {
                c.z(q);
            }
            3 => {
                c.x(q);
                c.z(q);
            }
            _ => {}
        }
    }
    c.measure_all();
    c
}

fn budget() -> SearchBudget {
    SearchBudget {
        shots: 32,
        trajectories: 2,
        neighborhood: 4,
        ..SearchBudget::default()
    }
}

fn recommend(service: &MaskService, tag: u32) -> adapt_service::Recommendation {
    match service
        .call(Request::RecommendMask {
            circuit: tagged(tag),
            device: DeviceId::Rome,
            protocol: DdProtocol::Xy4,
            budget: budget(),
            deadline_ms: None,
            tenancy: Default::default(),
        })
        .expect("recommend")
    {
        Response::Mask(r) => r,
        other => panic!("expected mask response, got {other:?}"),
    }
}

#[test]
fn warm_set_survives_restart_with_bit_identical_responses() {
    let dir = tmp("warm_restart");
    const K: u32 = 4;

    let service = persist_service(&dir, vec![DeviceId::Rome]);
    let before: Vec<(DdMask, f64, usize)> = (0..K)
        .map(|t| {
            let r = recommend(&service, t);
            (r.mask, r.decoy_fidelity, r.decoy_runs)
        })
        .collect();
    service.shutdown();
    assert!(snapshot_path(&dir).exists(), "shutdown writes a snapshot");

    let service = persist_service(&dir, vec![DeviceId::Rome]);
    let report = service.recovery_report().expect("recovery ran");
    assert_eq!(report.recovered_warm, K as usize);
    assert_eq!(report.quarantined, 0);
    for (t, (mask, fidelity, runs)) in before.iter().enumerate() {
        let r = recommend(&service, t as u32);
        assert_eq!(
            r.provenance,
            Provenance::CacheHit,
            "recovered entry {t} must serve from cache"
        );
        assert_eq!(&r.mask, mask, "mask for circuit {t} changed across restart");
        assert_eq!(r.decoy_fidelity.to_bits(), fidelity.to_bits());
        assert_eq!(r.decoy_runs, *runs);
    }
    service.shutdown();
}

#[test]
fn registry_epochs_replay_and_superseded_entries_demote_to_stale() {
    let dir = tmp("epoch_replay");

    let service = persist_service(&dir, vec![DeviceId::Rome]);
    let _ = recommend(&service, 0);
    let _ = recommend(&service, 1);
    // Two calibration drifts: the warm entries demote to the stale
    // store pre-shutdown, and the snapshot records both advances.
    service.advance_epoch(DeviceId::Rome).expect("advance");
    service.advance_epoch(DeviceId::Rome).expect("advance");
    let epoch_before = service.epoch(DeviceId::Rome).expect("epoch");
    assert_eq!(epoch_before, 2);
    service.shutdown();

    let service = persist_service(&dir, vec![DeviceId::Rome]);
    assert_eq!(
        service.epoch(DeviceId::Rome),
        Some(epoch_before),
        "registry epoch must replay from the snapshot"
    );
    let report = service.recovery_report().expect("recovery ran");
    assert!(
        report.recovered_stale + report.demoted_stale >= 1,
        "superseded entries must land in the stale store: {report:?}"
    );
    assert_eq!(report.epoch_advances, 2);
    assert_eq!(report.quarantined, 0);
    service.shutdown();
}

#[test]
fn corrupted_snapshot_record_is_quarantined_not_fatal() {
    let dir = tmp("quarantine");
    const K: u32 = 3;

    let service = persist_service(&dir, vec![DeviceId::Rome]);
    for t in 0..K {
        let _ = recommend(&service, t);
    }
    service.shutdown();

    // Flip one bit inside the last record's body (the snapshot lays out
    // epoch records first, then warm entries, so the tail is a warm
    // record). Its CRC fails; everything before it must survive.
    let path = snapshot_path(&dir);
    let mut bytes = std::fs::read(&path).expect("read snapshot");
    let last = bytes.len() - 1;
    bytes[last] ^= 0x10;
    std::fs::write(&path, &bytes).expect("re-write corrupted snapshot");

    let service = persist_service(&dir, vec![DeviceId::Rome]);
    let report = service.recovery_report().expect("recovery ran");
    assert_eq!(report.quarantined, 1, "exactly one record fails its CRC");
    assert_eq!(report.recovered_warm, K as usize - 1);
    // The service keeps serving: survivors from cache, the quarantined
    // key by a fresh search that is bit-identical (determinism
    // contract) to the pre-crash answer.
    for t in 0..K {
        let r = recommend(&service, t);
        assert!(
            matches!(
                r.provenance,
                Provenance::CacheHit | Provenance::FreshSearch | Provenance::DegradedAllDd
            ),
            "unexpected provenance for {t}: {:?}",
            r.provenance
        );
    }
    service.shutdown();
}

#[test]
fn snapshot_now_requires_persistence_to_be_enabled() {
    let service = MaskService::start(ServiceConfig {
        devices: vec![DeviceId::Rome],
        workers: 1,
        ..ServiceConfig::default()
    });
    assert!(service.persist_stats().is_none());
    assert!(service.recovery_report().is_none());
    let err = service.snapshot_now().expect_err("persistence disabled");
    assert!(
        err.to_string().contains("persistence is not enabled"),
        "unexpected error: {err}"
    );
    service.shutdown();
}

/// Reloaded-then-demoted entries obey the stale-store capacity bound,
/// and the cache accounting invariant holds across the whole
/// recover → demote → lookup cycle.
#[test]
fn invalidate_after_recovery_respects_stale_bound_and_accounting() {
    let dir = tmp("demote_bound");
    let obs = adapt_obs::Registry::new();
    let registry = DeviceRegistry::new(&[DeviceId::Rome], 7);
    let cache = Arc::new(MaskCache::with_tiers(16, 2, 8, &obs));

    let key = |hash: u64| MaskKey {
        device: DeviceId::Rome,
        epoch: 0,
        circuit_hash: hash,
        protocol: DdProtocol::Xy4,
        decoy: DecoyKind::Clifford,
    };
    let value = |bits: u64| CachedMask {
        mask: DdMask::from_bits(bits, 5),
        decoy_fidelity: 0.75,
        decoy_runs: 8,
        degraded: false,
    };
    for h in 0..4u64 {
        cache.insert(key(h), value(h + 1));
    }
    let persister = Persister::new(&dir, false, &obs).expect("persister");
    let records = persister.snapshot(&cache, &registry).expect("snapshot");
    assert_eq!(records, 1 + 4, "one epoch record plus four warm entries");

    // Fresh process: recover, then drift demotes every reloaded entry.
    let obs2 = adapt_obs::Registry::new();
    let registry2 = DeviceRegistry::new(&[DeviceId::Rome], 7);
    let cache2 = Arc::new(MaskCache::with_tiers(16, 2, 8, &obs2));
    let persister2 = Persister::new(&dir, false, &obs2).expect("persister");
    let report = persister2.recover(&cache2, &registry2).expect("recover");
    assert_eq!(report.recovered_warm, 4);
    assert_eq!(report.quarantined, 0);

    let demoted = cache2.invalidate_before(DeviceId::Rome, 1);
    assert_eq!(demoted, 4);
    let stats = cache2.stats();
    assert!(
        stats.stale_len <= stats.stale_capacity,
        "stale store over capacity: {} > {}",
        stats.stale_len,
        stats.stale_capacity
    );
    assert_eq!(stats.stale_capacity, 2);

    // Exercise all three lookup outcomes against the recovered cache.
    // Stale serve: a demoted survivor within the staleness bound.
    let mut stale_served = 0;
    for h in 0..4u64 {
        let k1 = MaskKey { epoch: 1, ..key(h) };
        // `insert` records the synthetic stale identity
        // `stale_key(circuit_hash)`, so the epoch-1 request matches the
        // demoted entry through the same key.
        match MaskCache::lookup_tiered(&cache2, k1, k1.stale_key(h), 2) {
            TieredLookup::Stale {
                value: v, refresh, ..
            } => {
                stale_served += 1;
                assert_eq!(v.mask, value(h + 1).mask);
                // Play the background refiner: publish the value at the
                // requested epoch so the key warms up.
                refresh
                    .expect("first stale serve owns the refine")
                    .complete(v);
            }
            TieredLookup::Miss(ticket) => ticket.complete(value(h + 1)),
            TieredLookup::Hit(_) => panic!("epoch-1 key cannot be warm yet"),
        }
    }
    assert!(
        stale_served >= 1,
        "bounded stale store must still serve survivors"
    );
    // Hit: the completed searches above are warm at epoch 1 now.
    for h in 0..4u64 {
        let k1 = MaskKey { epoch: 1, ..key(h) };
        match MaskCache::lookup(&cache2, k1) {
            adapt_service::Lookup::Hit(v) => assert_eq!(v.mask, value(h + 1).mask),
            adapt_service::Lookup::Miss(_) => panic!("epoch-1 key {h} must be warm"),
        }
    }

    let stats = cache2.stats();
    assert_eq!(
        stats.hits + stats.misses + stats.stale_served,
        stats.lookups,
        "accounting invariant broken: {stats:?}"
    );
    assert!(stats.stale_len <= stats.stale_capacity);
    let _ = journal_path(&dir);
}
