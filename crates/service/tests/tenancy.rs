//! Multi-tenant scheduling end to end: property tests over the
//! weighted-fair / EDF discipline, token-bucket admission through the
//! full service, the UDD config-time rejection, and a concurrency
//! stress that would deadlock under the old lost-wakeup condvar
//! protocol.

use adapt::DdProtocol;
use adapt_service::{
    DeviceId, MaskService, PriorityClass, Provenance, Request, Response, SearchBudget,
    ServiceConfig, ServiceError, Tenancy, TenancyConfig, TenantId, TenantQuota, TenantScheduler,
    TenantSpec, TierConfig, TierPolicy,
};
use proptest::prelude::*;
use std::sync::Arc;

fn small_circuit(tag: usize) -> qcirc::Circuit {
    let mut c = qcirc::Circuit::new(4);
    for q in 0..4 {
        if tag & (1 << q) != 0 {
            c.x(q);
        }
    }
    c.h(0).cx(0, 1).cx(1, 2).measure_all();
    c
}

fn ladder_config(tenancy: TenancyConfig) -> ServiceConfig {
    ServiceConfig {
        devices: vec![DeviceId::Rome],
        workers: 2,
        queue_capacity: 256,
        seed: 7,
        virtual_deadlines: true,
        // No finite deadline fits a search: deadline-carrying requests
        // answer instantly from the heuristic tier.
        tiers: TierConfig {
            min_search_ms: 600_000,
            max_stale_epochs: 2,
            ..TierConfig::default()
        },
        tenancy,
        ..ServiceConfig::default()
    }
}

fn request(tag: usize, tenancy: Tenancy, tier: TierPolicy, deadline_ms: Option<u64>) -> Request {
    Request::RecommendMask {
        circuit: small_circuit(tag),
        device: DeviceId::Rome,
        protocol: DdProtocol::Xy4,
        budget: SearchBudget {
            shots: 32,
            trajectories: 1,
            neighborhood: 2,
            tier,
        },
        deadline_ms,
        tenancy,
    }
}

// --- scheduler properties ---------------------------------------------------

/// A scenario: per-tenant weight and backlog size, all in one class.
fn scenario_strategy() -> impl Strategy<Value = Vec<(u32, usize)>> {
    prop::collection::vec((1u32..5, 1usize..12), 1..6)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// Starvation-freedom: while a tenant stays backlogged, the number
    /// of consecutive dequeues granted to *other* tenants never exceeds
    /// the sum of the other tenants' weights — every backlogged tenant
    /// is reached within one full ring turn.
    #[test]
    fn weighted_fair_round_robin_never_starves(scenario in scenario_strategy()) {
        let mut config = TenancyConfig::default();
        let mut sched = TenantScheduler::new();
        let total_weight: u32 = scenario.iter().map(|(w, _)| *w).sum();
        let mut remaining = vec![0usize; scenario.len()];
        for (i, &(weight, backlog)) in scenario.iter().enumerate() {
            config.tenants.insert(
                TenantId(i as u32),
                TenantSpec { weight, quota: None },
            );
            for j in 0..backlog {
                sched.push(TenantId(i as u32), PriorityClass::Standard, j as u64, (i, j));
            }
            remaining[i] = backlog;
        }
        let mut gap = vec![0u32; scenario.len()];
        while let Some((tenant, _)) = sched.pop(&config) {
            let t = tenant.0 as usize;
            remaining[t] -= 1;
            gap[t] = 0;
            for (i, g) in gap.iter_mut().enumerate() {
                if i != t && remaining[i] > 0 {
                    *g += 1;
                    let bound = total_weight - scenario[i].0;
                    prop_assert!(
                        *g <= bound,
                        "tenant {i} (weight {}) waited {} dequeues, bound {bound}",
                        scenario[i].0,
                        *g
                    );
                }
            }
        }
        prop_assert!(remaining.iter().all(|&r| r == 0), "everything drains");
    }

    /// EDF with a deterministic tie-break: a single tenant's lane pops
    /// in exactly (key, submission order) — i.e. a stable sort by key —
    /// and two schedulers fed the same pushes agree item for item.
    #[test]
    fn edf_pops_are_a_stable_sort_by_deadline(keys in prop::collection::vec(0u64..8, 0..40)) {
        let mut a = TenantScheduler::new();
        let mut b = TenantScheduler::new();
        for (i, &k) in keys.iter().enumerate() {
            a.push(TenantId(0), PriorityClass::Standard, k, i);
            b.push(TenantId(0), PriorityClass::Standard, k, i);
        }
        let config = TenancyConfig::default();
        let mut expected: Vec<(u64, usize)> = keys.iter().copied().zip(0..).collect();
        expected.sort_by_key(|&(k, _)| k); // stable: ties keep submit order
        let popped_a: Vec<usize> =
            std::iter::from_fn(|| a.pop(&config).map(|(_, i)| i)).collect();
        let popped_b: Vec<usize> =
            std::iter::from_fn(|| b.pop(&config).map(|(_, i)| i)).collect();
        let want: Vec<usize> = expected.into_iter().map(|(_, i)| i).collect();
        prop_assert_eq!(&popped_a, &want, "EDF must be a stable sort by key");
        prop_assert_eq!(popped_a, popped_b, "identical pushes give identical schedules");
    }
}

// --- quota admission through the full service -------------------------------

#[test]
fn quota_rejections_and_virtual_refill_through_the_service() {
    let mut tenancy = TenancyConfig {
        virtual_time: true,
        ..TenancyConfig::default()
    };
    tenancy.tenants.insert(
        TenantId(3),
        TenantSpec {
            weight: 1,
            quota: Some(TenantQuota {
                rate_per_s: 10.0,
                burst: 2.0,
            }),
        },
    );
    let svc = MaskService::start(ladder_config(tenancy));
    let metered = Tenancy::with_class(3, PriorityClass::Interactive);
    let call = |svc: &MaskService, tag: usize| {
        svc.call(request(tag, metered, TierPolicy::HeuristicOnly, Some(250)))
    };

    // Burst of 2 admitted, the rest rejected with a refill hint.
    assert!(call(&svc, 1).is_ok());
    assert!(call(&svc, 2).is_ok());
    for tag in 3..5 {
        match call(&svc, tag) {
            Err(ServiceError::QuotaExhausted {
                tenant,
                retry_after_ms,
            }) => {
                assert_eq!(tenant, TenantId(3));
                assert_eq!(retry_after_ms, 100, "1 token at 10/s is 100 ms away");
            }
            other => panic!("expected quota rejection, got {other:?}"),
        }
    }
    // An unmetered tenant is untouched by tenant 3's empty bucket.
    assert!(svc
        .call(request(
            9,
            Tenancy::tenant(4),
            TierPolicy::HeuristicOnly,
            Some(250)
        ))
        .is_ok());

    // Virtual time refills deterministically: +100 ms buys one token.
    svc.advance_quota_ms(100.0);
    assert!(call(&svc, 5).is_ok());
    assert!(matches!(
        call(&svc, 6),
        Err(ServiceError::QuotaExhausted { .. })
    ));

    let exposition = svc.render_tenant_metrics();
    for needle in [
        "adapt_service_tenant_rejected_quota_total",
        "tenant=\"t3\"",
        "tenant=\"t4\"",
    ] {
        assert!(
            exposition.contains(needle),
            "missing {needle} in:\n{exposition}"
        );
    }
    let stats = svc.shutdown();
    assert_eq!(stats.rejected_quota, 3);
    assert_eq!(stats.accepted, 4);
}

// --- config-time validation -------------------------------------------------

#[test]
fn odd_udd_pulse_count_is_rejected_at_submission() {
    let svc = MaskService::start(ladder_config(TenancyConfig::default()));
    let result = svc.call(Request::RecommendMask {
        circuit: small_circuit(1),
        device: DeviceId::Rome,
        protocol: DdProtocol::Udd { pulses: 5 },
        budget: SearchBudget::default(),
        deadline_ms: None,
        tenancy: Tenancy::default(),
    });
    match result {
        Err(ServiceError::InvalidConfig { reason }) => {
            assert!(
                reason.contains("odd"),
                "reason should name the defect: {reason}"
            );
        }
        other => panic!("odd UDD must be a typed config error, got {other:?}"),
    }
    // The even count passes the same gate (and rides the inline path).
    let ok = svc.call(Request::RecommendMask {
        circuit: small_circuit(1),
        device: DeviceId::Rome,
        protocol: DdProtocol::Udd { pulses: 4 },
        budget: SearchBudget {
            shots: 32,
            trajectories: 1,
            neighborhood: 2,
            tier: TierPolicy::Auto,
        },
        deadline_ms: None,
        tenancy: Tenancy::default(),
    });
    assert!(ok.is_ok(), "even UDD request must be served: {ok:?}");
    let stats = svc.shutdown();
    assert_eq!(
        stats.worker_panics, 0,
        "validation happens before any worker"
    );
}

#[test]
fn invalid_tenancy_config_fails_startup() {
    let mut tenancy = TenancyConfig::default();
    tenancy.tenants.insert(
        TenantId(0),
        TenantSpec {
            weight: 0,
            quota: None,
        },
    );
    match MaskService::try_start(ladder_config(tenancy)) {
        Err(ServiceError::InvalidConfig { reason }) => {
            assert!(
                reason.contains("weight"),
                "reason names the field: {reason}"
            );
        }
        other => panic!("zero weight must fail validation, got {other:?}"),
    }
}

// --- condvar stress ----------------------------------------------------------

/// Hammers the queue from many submitters while the heuristic tier
/// schedules background refines on the same worker pool. Every call
/// must complete: under the old protocol a worker could consume the
/// only pending notification and then park with client jobs still
/// queued (lost wakeup) once refine work and client work interleaved.
#[test]
fn concurrent_submitters_never_lose_a_wakeup() {
    let svc = Arc::new(MaskService::start(ladder_config(TenancyConfig::default())));
    let submitters = 4;
    let per_thread = 40;
    let handles: Vec<_> = (0..submitters)
        .map(|t| {
            let svc = Arc::clone(&svc);
            std::thread::spawn(move || {
                for i in 0..per_thread {
                    // A small hot set so refine single-flight dedups and
                    // most answers race a pending refine.
                    let tag = (t + i) % 6;
                    let class = PriorityClass::ALL[(t + i) % 3];
                    let tenancy = Tenancy::with_class(t as u32, class);
                    let rec = svc
                        .call(request(tag, tenancy, TierPolicy::Auto, Some(250)))
                        .expect("stress call completes");
                    match rec {
                        Response::Mask(rec) => assert!(matches!(
                            rec.provenance,
                            Provenance::Heuristic | Provenance::CacheHit
                        )),
                        other => panic!("unexpected response {other:?}"),
                    }
                }
            })
        })
        .collect();
    for h in handles {
        h.join().expect("submitter thread");
    }
    svc.drain_refines();
    let svc = Arc::into_inner(svc).expect("all submitters joined");
    let stats = svc.shutdown();
    assert_eq!(stats.worker_panics, 0);
    assert_eq!(
        stats.completed,
        (submitters * per_thread) as u64,
        "every submitted job is answered"
    );
}
