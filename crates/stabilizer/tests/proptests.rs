//! Property tests: the CHP tableau and the Heisenberg propagator agree
//! with the dense simulator on arbitrary generated circuits.

use proptest::prelude::*;
use qcirc::{Circuit, Gate};
use stab::heisenberg::{expectation, Pauli};

#[derive(Debug, Clone, Copy)]
enum CliffOp {
    One(u8, u8),
    Two(u8, u8, u8),
}

fn arb_cliff(n: u8) -> impl Strategy<Value = CliffOp> {
    let one = (0u8..9, 0..n).prop_map(|(g, q)| CliffOp::One(g, q));
    let two = (0u8..2, 0..n, 1..n).prop_map(move |(g, a, d)| CliffOp::Two(g, a, (a + d) % n));
    prop_oneof![2 => one, 1 => two]
}

fn build(n: u8, ops: &[CliffOp], seeds: &[(u8, f64)]) -> Circuit {
    let mut c = Circuit::new(n as usize);
    let one_gates = [
        Gate::H,
        Gate::S,
        Gate::Sdg,
        Gate::X,
        Gate::Y,
        Gate::Z,
        Gate::SX,
        Gate::SXdg,
        Gate::I,
    ];
    let mid = ops.len() / 2;
    for (i, op) in ops.iter().enumerate() {
        if i == mid {
            for &(q, t) in seeds {
                c.rz(t, (q % n) as u32);
            }
        }
        match *op {
            CliffOp::One(g, q) => {
                c.gate(one_gates[g as usize], &[q as u32]);
            }
            CliffOp::Two(g, a, b) => {
                if g == 0 {
                    c.cx(a as u32, b as u32);
                } else {
                    c.cz(a as u32, b as u32);
                }
            }
        }
    }
    c
}

fn dense_parity(c: &Circuit, qubits: &[u32]) -> f64 {
    let sv = statevec::run_ideal(c).expect("small");
    sv.probabilities()
        .iter()
        .enumerate()
        .map(|(idx, p)| {
            let parity = qubits.iter().map(|&q| (idx >> q & 1) as u32).sum::<u32>() & 1;
            if parity == 1 {
                -p
            } else {
                *p
            }
        })
        .sum()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn chp_exact_distribution_matches_dense(
        ops in proptest::collection::vec(arb_cliff(4), 1..40)
    ) {
        let mut c = build(4, &ops, &[]);
        c.measure_all();
        let chp = stab::exact_distribution(&c).expect("Clifford");
        let dense = statevec::ideal_distribution(&c).expect("small");
        prop_assert_eq!(chp.len(), dense.len());
        for (k, v) in &dense {
            let w = chp.get(k).copied().unwrap_or(0.0);
            prop_assert!((v - w).abs() < 1e-9, "outcome {}: {} vs {}", k, v, w);
        }
    }

    #[test]
    fn heisenberg_expectations_match_dense_with_seeds(
        ops in proptest::collection::vec(arb_cliff(4), 2..35),
        s1 in (0u8..4, 0.05..1.5f64),
        s2 in (0u8..4, 0.05..1.5f64),
        mask in 1u8..16,
    ) {
        let c = build(4, &ops, &[s1, s2]);
        let qs: Vec<u32> = (0..4u32).filter(|q| mask >> q & 1 == 1).collect();
        let e = expectation(&c, Pauli::z_on(4, &qs)).expect("supported gates");
        let d = dense_parity(&c, &qs);
        prop_assert!((e - d).abs() < 1e-8, "Z_{:?}: {} vs {}", qs, e, d);
    }

    #[test]
    fn heisenberg_distribution_is_a_distribution(
        ops in proptest::collection::vec(arb_cliff(3), 2..30),
        s1 in (0u8..3, 0.05..1.5f64),
    ) {
        let mut c = build(3, &ops, &[s1]);
        c.measure_all();
        let d = stab::heisenberg::output_distribution(&c).expect("supported");
        let total: f64 = d.values().sum();
        prop_assert!((total - 1.0).abs() < 1e-9);
        let dense = statevec::ideal_distribution(&c).expect("small");
        for (k, v) in &dense {
            let w = d.get(k).copied().unwrap_or(0.0);
            prop_assert!((v - w).abs() < 1e-8);
        }
    }

    #[test]
    fn noisy_engines_agree_on_clifford_circuits(
        ops in proptest::collection::vec(arb_cliff(3), 1..25),
        seed in 1u64..1000,
    ) {
        // Cross-engine equivalence under noise: a random Clifford circuit
        // executed through the full machine stack with Pauli-expressible
        // channels (gate depolarizing + readout flips) must yield the same
        // outcome distribution whether the router picks the CHP tableau or
        // the state-vector engine is forced. Both are exact samplers of
        // the same channel, so the distributions agree up to Monte-Carlo
        // error; total-variation distance is the comparison metric.
        use device::Device;
        use machine::{EnginePolicy, ExecutionConfig, Machine, NoiseToggles};

        let mut c = build(3, &ops, &[]);
        c.measure_all();
        let toggles = NoiseToggles {
            gate_err: true,
            readout_err: true,
            idle_coherent: false,
            idle_crosstalk: false,
            idle_floor: false,
            coherent_twirl: true,
        };
        let cfg = ExecutionConfig {
            shots: 4096,
            trajectories: 512,
            seed,
            threads: 1,
        };
        let dev = Device::ibmq_rome(5);
        let chp = Machine::with_toggles(dev.clone(), toggles);
        let dense = Machine::with_toggles(dev, toggles)
            .with_engine_policy(EnginePolicy::ForceStateVector);
        let a = chp.execute(&c, &cfg).expect("chp run");
        let b = dense.execute(&c, &cfg).expect("dense run");
        prop_assert!(chp.engine_stats().chp_executions > 0, "router must pick CHP");
        prop_assert!(dense.engine_stats().statevec_executions > 0);

        let total = a.total() as f64;
        let tvd: f64 = (0..8u64)
            .map(|k| (a.get(k) as f64 - b.get(k) as f64).abs() / total)
            .sum::<f64>()
            / 2.0;
        prop_assert!(tvd < 0.2, "TVD between engines too large: {tvd:.4}");
    }

    #[test]
    fn tableau_measurement_marginals_match_dense(
        ops in proptest::collection::vec(arb_cliff(3), 1..25),
        q in 0u32..3,
    ) {
        // The probability that qubit q reads 1 on the tableau (averaged
        // over its exact branch structure) equals the dense marginal.
        let mut c = build(3, &ops, &[]);
        c.measure(q, 0);
        let chp = stab::exact_distribution(&c).expect("Clifford");
        let p1_chp = chp.get(&1).copied().unwrap_or(0.0);
        let sv = statevec::run_ideal(&c).expect("small");
        let p1_dense = sv.prob_one(q as usize).expect("in range");
        prop_assert!((p1_chp - p1_dense).abs() < 1e-9);
    }
}
