//! Extended stabilizer simulation by Heisenberg-picture Pauli propagation.
//!
//! Plays the role of Qiskit's *extended stabilizer* simulator in the ADAPT
//! paper (§4.2.3): computing the ideal output of a Seeded Clifford Decoy
//! Circuit — a Clifford circuit containing a handful of non-Clifford
//! **diagonal** rotations (the SDC seeds are RZ gates) — without dense
//! 2^n state storage.
//!
//! The method: for each measured-qubit parity operator `Z_T`, back-
//! propagate it through the circuit. Clifford gates map a Pauli to a
//! single Pauli; a non-Clifford `RZ(θ)` splits any anticommuting Pauli
//! into two weighted Paulis (`X → cosθ·X − sinθ·Y` about the Z axis), so
//! a circuit with `s` seeds yields at most `2^s` terms per observable —
//! the same stabilizer-rank bound as low-rank CH decompositions, but with
//! no global-phase bookkeeping to get wrong. Expectations `⟨0|P|0⟩` are
//! then trivial, and the output distribution over `m` measured qubits is
//! recovered from the `2^m` parity expectations by a Walsh–Hadamard
//! transform.

use qcirc::{Circuit, Gate, OpKind};
use std::collections::BTreeMap;
use std::f64::consts::FRAC_PI_2;

/// A signed Pauli string `(-1)^{r} · i^{k} · Π X^{x_j} Z^{z_j}` with the
/// phase folded into a single power of `i` (`phase` ∈ Z₄).
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Pauli {
    x: Vec<u64>,
    z: Vec<u64>,
    /// Exponent of `i` (mod 4).
    phase: u8,
}

impl Pauli {
    /// The identity Pauli over `n` qubits.
    pub fn identity(n: usize) -> Self {
        let words = n.div_ceil(64);
        Pauli {
            x: vec![0; words],
            z: vec![0; words],
            phase: 0,
        }
    }

    /// `Z_T`: Z on every qubit in `qubits`.
    pub fn z_on(n: usize, qubits: &[u32]) -> Self {
        let mut p = Pauli::identity(n);
        for &q in qubits {
            p.set_z(q as usize, true);
        }
        p
    }

    fn get(v: &[u64], i: usize) -> bool {
        v[i / 64] >> (i % 64) & 1 == 1
    }

    fn set(v: &mut [u64], i: usize, on: bool) {
        if on {
            v[i / 64] |= 1 << (i % 64);
        } else {
            v[i / 64] &= !(1 << (i % 64));
        }
    }

    /// X component on qubit `i`.
    pub fn x_bit(&self, i: usize) -> bool {
        Self::get(&self.x, i)
    }

    /// Z component on qubit `i`.
    pub fn z_bit(&self, i: usize) -> bool {
        Self::get(&self.z, i)
    }

    fn set_x(&mut self, i: usize, on: bool) {
        Self::set(&mut self.x, i, on);
    }

    fn set_z(&mut self, i: usize, on: bool) {
        Self::set(&mut self.z, i, on);
    }

    /// Phase exponent of `i` (mod 4).
    pub fn phase(&self) -> u8 {
        self.phase
    }

    fn add_phase(&mut self, k: i32) {
        self.phase = ((self.phase as i32 + k).rem_euclid(4)) as u8;
    }

    /// True when the string is diagonal (no X component anywhere).
    pub fn is_diagonal(&self) -> bool {
        self.x.iter().all(|&w| w == 0)
    }

    /// `⟨0…0| P |0…0⟩`: 0 unless diagonal; otherwise `i^{phase}` (which is
    /// ±1 for any Hermitian propagated observable).
    pub fn vacuum_expectation(&self) -> f64 {
        if !self.is_diagonal() {
            return 0.0;
        }
        match self.phase {
            0 => 1.0,
            2 => -1.0,
            _ => 0.0, // imaginary phases cancel in Hermitian combinations
        }
    }

    /// Applies the *inverse-direction* conjugation `P ← U† P U` for a
    /// Clifford gate `U` — wait, backward propagation through a circuit
    /// `U_k … U_1` transforms the observable as `P ← U_k† … (P) … U_k`
    /// gate by gate from the END of the circuit; each step conjugates by
    /// one gate: `P ← U† P U`.
    ///
    /// # Panics
    ///
    /// Panics when the gate is not Clifford (callers branch RZ explicitly).
    pub fn conjugate_by(&mut self, gate: Gate, qubits: &[usize]) {
        match gate {
            Gate::I => {}
            Gate::X => {
                // X† Z X = −Z.
                if self.z_bit(qubits[0]) {
                    self.add_phase(2);
                }
            }
            Gate::Z => {
                if self.x_bit(qubits[0]) {
                    self.add_phase(2);
                }
            }
            Gate::Y => {
                if self.x_bit(qubits[0]) ^ self.z_bit(qubits[0]) {
                    self.add_phase(2);
                }
            }
            Gate::H => {
                let q = qubits[0];
                let (x, z) = (self.x_bit(q), self.z_bit(q));
                // H X H = Z, H Z H = X, H Y H = −Y.
                if x && z {
                    self.add_phase(2);
                }
                self.set_x(q, z);
                self.set_z(q, x);
            }
            Gate::S => {
                // S† X S = −Y = i³·XZ and S† (XZ) S = i³·X: the Z bit
                // toggles and the phase gains i³ whenever X is present.
                let q = qubits[0];
                if self.x_bit(q) {
                    let z = self.z_bit(q);
                    self.set_z(q, !z);
                    self.add_phase(3);
                }
            }
            Gate::Sdg => {
                // S X S† = Y = i·XZ: same toggle with phase i.
                let q = qubits[0];
                if self.x_bit(q) {
                    let z = self.z_bit(q);
                    self.set_z(q, !z);
                    self.add_phase(1);
                }
            }
            Gate::SX => {
                // SX = H S H ⇒ conjugation composes.
                self.conjugate_by(Gate::H, qubits);
                self.conjugate_by(Gate::S, qubits);
                self.conjugate_by(Gate::H, qubits);
            }
            Gate::SXdg => {
                self.conjugate_by(Gate::H, qubits);
                self.conjugate_by(Gate::Sdg, qubits);
                self.conjugate_by(Gate::H, qubits);
            }
            Gate::CX => {
                let (c, t) = (qubits[0], qubits[1]);
                // CX† X_c CX = X_c X_t; CX† Z_t CX = Z_c Z_t. In the
                // literal X^x Z^z encoding (unlike the tableau's
                // Y-convention) the reordering to canonical form never
                // crosses an X with a Z of the same qubit, so no phase.
                let (xc, zc) = (self.x_bit(c), self.z_bit(c));
                let (xt, zt) = (self.x_bit(t), self.z_bit(t));
                self.set_x(t, xt ^ xc);
                self.set_z(c, zc ^ zt);
                let _ = (zt, xt);
            }
            Gate::CZ => {
                let (a, b) = (qubits[0], qubits[1]);
                self.conjugate_by(Gate::H, &[b]);
                self.conjugate_by(Gate::CX, &[a, b]);
                self.conjugate_by(Gate::H, &[b]);
            }
            Gate::Swap => {
                let (a, b) = (qubits[0], qubits[1]);
                self.conjugate_by(Gate::CX, &[a, b]);
                self.conjugate_by(Gate::CX, &[b, a]);
                self.conjugate_by(Gate::CX, &[a, b]);
            }
            g => panic!("conjugate_by called with non-Clifford gate {g}"),
        }
    }
}

/// A weighted sum of Pauli strings (the propagated observable).
#[derive(Debug, Clone)]
pub struct PauliSum {
    n: usize,
    terms: BTreeMap<(Vec<u64>, Vec<u64>, u8), f64>,
}

impl PauliSum {
    /// A single Pauli with unit weight.
    pub fn from_pauli(n: usize, p: Pauli) -> Self {
        let mut terms = BTreeMap::new();
        terms.insert((p.x, p.z, p.phase), 1.0);
        PauliSum { n, terms }
    }

    /// Number of live terms.
    pub fn len(&self) -> usize {
        self.terms.len()
    }

    /// True when no terms remain.
    pub fn is_empty(&self) -> bool {
        self.terms.is_empty()
    }

    fn insert(&mut self, p: Pauli, w: f64) {
        if w.abs() < 1e-15 {
            return;
        }
        // Fold i^2 into the weight so ±P merge.
        let (key_phase, weight) = match p.phase {
            0 => (0, w),
            2 => (0, -w),
            1 => (1, w),
            3 => (1, -w),
            _ => unreachable!("phase is mod 4"),
        };
        let key = (p.x, p.z, key_phase);
        let entry = self.terms.entry(key.clone()).or_insert(0.0);
        *entry += weight;
        if entry.abs() < 1e-15 {
            self.terms.remove(&key);
        }
    }

    /// Conjugates every term by a Clifford gate.
    pub fn conjugate_clifford(&mut self, gate: Gate, qubits: &[usize]) {
        let old = std::mem::take(&mut self.terms);
        for ((x, z, phase), w) in old {
            let mut p = Pauli { x, z, phase };
            p.conjugate_by(gate, qubits);
            self.insert(p, w);
        }
    }

    /// Conjugates by `RZ(θ)` on qubit `q`: terms commuting with `Z_q`
    /// pass through; anticommuting terms rotate about Z, branching in two.
    pub fn conjugate_rz(&mut self, theta: f64, q: usize) {
        let old = std::mem::take(&mut self.terms);
        for ((x, z, phase), w) in old {
            let p = Pauli { x, z, phase };
            if !p.x_bit(q) {
                self.insert(p, w);
                continue;
            }
            // RZ(θ)† X RZ(θ) = cosθ·X − sinθ·Y, and Y rotates likewise;
            // encoded: the rotated partner toggles the Z bit with an i
            // bookkeeping phase fixed by the dense-conjugation tests.
            let mut partner = p.clone();
            let had_z = p.z_bit(q);
            partner.set_z(q, !had_z);
            // X → X·cos + (iXZ)·sin·(−i)·…: Y = i·X·Z ⇒ ±Y carries i.
            if had_z {
                // Y → cosθ·Y + sinθ·X: partner is X, derived from Y = iXZ.
                partner.add_phase(3);
                self.insert(p, w * theta.cos());
                self.insert(partner, w * theta.sin());
            } else {
                // X → cosθ·X − sinθ·Y with Y = i·X·Z.
                partner.add_phase(1);
                self.insert(p, w * theta.cos());
                self.insert(partner, -w * theta.sin());
            }
        }
    }

    /// `⟨0…0| (sum) |0…0⟩`.
    pub fn vacuum_expectation(&self) -> f64 {
        self.terms
            .iter()
            .map(|((x, z, phase), w)| {
                let p = Pauli {
                    x: x.clone(),
                    z: z.clone(),
                    phase: *phase,
                };
                w * p.vacuum_expectation()
            })
            .sum()
    }

    /// Number of qubits.
    pub fn num_qubits(&self) -> usize {
        self.n
    }

    /// Debug view: `(x_bits, z_bits, phase, weight)` per term (first word
    /// of each mask only — diagnostics for ≤64-qubit states).
    pub fn debug_terms(&self) -> Vec<(u64, u64, u8, f64)> {
        self.terms
            .iter()
            .map(|((x, z, p), w)| (x[0], z[0], *p, *w))
            .collect()
    }
}

/// Error raised for gates the propagator cannot handle.
#[derive(Debug, Clone, PartialEq)]
pub struct UnsupportedGate(pub Gate);

impl std::fmt::Display for UnsupportedGate {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "gate {} is neither Clifford nor a diagonal rotation",
            self.0
        )
    }
}

impl std::error::Error for UnsupportedGate {}

fn is_clifford_angle(theta: f64) -> bool {
    let r = theta.rem_euclid(FRAC_PI_2);
    r < 1e-9 || FRAC_PI_2 - r < 1e-9
}

/// Computes `⟨0…0| U† (observable) U |0…0⟩` for a circuit of Clifford
/// gates plus non-Clifford **diagonal** rotations (RZ/P at arbitrary
/// angles), by backward Pauli propagation.
///
/// Measurements, resets, delays and barriers are ignored (the observable
/// is evaluated on the pre-measurement state).
///
/// # Errors
///
/// Returns [`UnsupportedGate`] for non-Clifford, non-diagonal gates (e.g.
/// `RY(0.3)`); run such circuits through the transpiler first.
pub fn expectation(circuit: &Circuit, observable: Pauli) -> Result<f64, UnsupportedGate> {
    let mut sum = PauliSum::from_pauli(circuit.num_qubits(), observable);
    for instr in circuit.iter().rev() {
        let OpKind::Gate(g) = &instr.kind else {
            continue;
        };
        let qs: Vec<usize> = instr.qubits.iter().map(|q| q.index()).collect();
        match g {
            Gate::RZ(t) | Gate::P(t) if !is_clifford_angle(*t) => {
                // P(θ) = RZ(θ) up to global phase, which cancels in
                // conjugation.
                sum.conjugate_rz(*t, qs[0]);
            }
            Gate::T => sum.conjugate_rz(std::f64::consts::FRAC_PI_4, qs[0]),
            Gate::Tdg => sum.conjugate_rz(-std::f64::consts::FRAC_PI_4, qs[0]),
            Gate::RZ(t) | Gate::P(t) => {
                // Clifford angle: apply as the exact named gate.
                let quarters = ((*t / FRAC_PI_2).round() as i64).rem_euclid(4);
                match quarters {
                    0 => {}
                    1 => sum.conjugate_clifford(Gate::S, &qs),
                    2 => sum.conjugate_clifford(Gate::Z, &qs),
                    3 => sum.conjugate_clifford(Gate::Sdg, &qs),
                    _ => unreachable!("rem_euclid(4)"),
                }
            }
            g if g.is_clifford() => sum.conjugate_clifford(*g, &qs),
            other => return Err(UnsupportedGate(*other)),
        }
    }
    Ok(sum.vacuum_expectation())
}

/// Exact output distribution over the circuit's measured qubits via
/// parity expectations + Walsh–Hadamard inversion:
/// `p(x) = 2^{−m} Σ_T (−1)^{x·T} ⟨Z_T⟩`.
///
/// Supports up to [`MAX_MEASURED`] measured qubits (the transform is
/// exponential in the *measured* count, not the register size — a
/// 100-qubit SDC measuring 12 qubits is fine).
///
/// # Errors
///
/// Returns [`UnsupportedGate`] for unsupported gates.
///
/// # Panics
///
/// Panics when more than [`MAX_MEASURED`] qubits are measured.
pub fn output_distribution(circuit: &Circuit) -> Result<BTreeMap<u64, f64>, UnsupportedGate> {
    // measured qubit -> clbit.
    let mut measured: Vec<(u32, usize)> = Vec::new();
    for instr in circuit.iter() {
        if let OpKind::Measure(c) = &instr.kind {
            measured.push((instr.qubits[0].index() as u32, c.index()));
        }
    }
    let m = measured.len();
    assert!(
        m <= MAX_MEASURED,
        "{m} measured qubits exceeds the 2^m parity transform limit"
    );
    let n = circuit.num_qubits();
    // Parity expectations E[T].
    let mut e = vec![0.0f64; 1 << m];
    for (t_idx, e_t) in e.iter_mut().enumerate() {
        let qubits: Vec<u32> = measured
            .iter()
            .enumerate()
            .filter(|(j, _)| t_idx >> j & 1 == 1)
            .map(|(_, &(q, _))| q)
            .collect();
        *e_t = expectation(circuit, Pauli::z_on(n, &qubits))?;
    }
    // p over measured-qubit patterns y (bit j of y = measured[j]).
    let mut dist = BTreeMap::new();
    let scale = 1.0 / (1u64 << m) as f64;
    for y in 0..(1u64 << m) {
        let mut p = 0.0;
        for (t_idx, &e_t) in e.iter().enumerate() {
            let parity = (y & t_idx as u64).count_ones() & 1;
            p += if parity == 1 { -e_t } else { e_t };
        }
        let p = p * scale;
        if p > 1e-12 {
            // Map to clbit pattern.
            let mut outcome = 0u64;
            for (j, &(_, c)) in measured.iter().enumerate() {
                if y >> j & 1 == 1 {
                    outcome |= 1 << c;
                }
            }
            *dist.entry(outcome).or_insert(0.0) += p;
        }
    }
    Ok(dist)
}

/// Upper bound on measured qubits for [`output_distribution`].
pub const MAX_MEASURED: usize = 20;

#[cfg(test)]
mod tests {
    use super::*;
    use qcirc::math::{Mat2, C64};
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    /// Dense reference: conjugate a one-qubit Pauli by a gate and compare
    /// entry-wise against the bit-level rules.
    fn pauli1_matrix(p: &Pauli) -> Mat2 {
        let x = Gate::X.unitary1().unwrap();
        let z = Gate::Z.unitary1().unwrap();
        let mut m = Mat2::identity();
        if p.x_bit(0) {
            m = m * x;
        }
        if p.z_bit(0) {
            m = m * z;
        }
        let phase = C64::cis(std::f64::consts::FRAC_PI_2 * p.phase() as f64);
        m.scale(phase)
    }

    #[test]
    fn single_qubit_conjugation_matches_dense_algebra() {
        let gates = [
            Gate::X,
            Gate::Y,
            Gate::Z,
            Gate::H,
            Gate::S,
            Gate::Sdg,
            Gate::SX,
            Gate::SXdg,
        ];
        for g in gates {
            let u = g.unitary1().unwrap();
            for (x, z) in [(true, false), (false, true), (true, true)] {
                let mut p = Pauli::identity(1);
                p.set_x(0, x);
                p.set_z(0, z);
                let dense_before = pauli1_matrix(&p);
                let expected = u.dagger() * dense_before * u;
                p.conjugate_by(g, &[0]);
                let dense_after = pauli1_matrix(&p);
                assert!(
                    dense_after.approx_eq(&expected, 1e-9),
                    "{g:?} on (x={x},z={z}): got\n{dense_after}expected\n{expected}"
                );
            }
        }
    }

    /// Reference expectation via the dense simulator.
    fn dense_expectation(c: &Circuit, qubits: &[u32]) -> f64 {
        let sv = statevec::run_ideal(c).expect("dense");
        let probs = sv.probabilities();
        let mut e = 0.0;
        for (idx, p) in probs.iter().enumerate() {
            let parity = qubits.iter().map(|&q| (idx >> q & 1) as u32).sum::<u32>() & 1;
            e += if parity == 1 { -p } else { *p };
        }
        e
    }

    fn random_supported_circuit(n: usize, depth: usize, seeds: usize, rng_seed: u64) -> Circuit {
        let mut rng = StdRng::seed_from_u64(rng_seed);
        let mut c = Circuit::new(n);
        let cliffords = [
            Gate::H,
            Gate::S,
            Gate::Sdg,
            Gate::X,
            Gate::Y,
            Gate::Z,
            Gate::SX,
        ];
        let mut placed_seeds = 0;
        for d in 0..depth {
            if rng.gen::<f64>() < 0.3 && n >= 2 {
                let a = rng.gen_range(0..n as u32);
                let mut b = rng.gen_range(0..n as u32);
                while b == a {
                    b = rng.gen_range(0..n as u32);
                }
                if rng.gen::<bool>() {
                    c.cx(a, b);
                } else {
                    c.cz(a, b);
                }
            } else if placed_seeds < seeds && d > 2 && rng.gen::<f64>() < 0.25 {
                c.rz(rng.gen_range(0.1..1.4), rng.gen_range(0..n as u32));
                placed_seeds += 1;
            } else {
                let g = cliffords[rng.gen_range(0..cliffords.len())];
                c.gate(g, &[rng.gen_range(0..n as u32)]);
            }
        }
        c
    }

    #[test]
    fn clifford_expectations_match_dense() {
        for seed in 0..20 {
            let n = 2 + (seed as usize) % 4;
            let c = random_supported_circuit(n, 25, 0, seed);
            for _ in 0..3 {
                let mut rng = StdRng::seed_from_u64(seed * 7 + 1);
                let qs: Vec<u32> = (0..n as u32).filter(|_| rng.gen::<bool>()).collect();
                let e = expectation(&c, Pauli::z_on(n, &qs)).unwrap();
                let d = dense_expectation(&c, &qs);
                assert!((e - d).abs() < 1e-9, "seed {seed}, Z_{qs:?}: {e} vs {d}");
            }
        }
    }

    #[test]
    fn seeded_expectations_match_dense() {
        for seed in 0..20 {
            let n = 2 + (seed as usize) % 4;
            let c = random_supported_circuit(n, 30, 3, 100 + seed);
            let qs: Vec<u32> = (0..n as u32).collect();
            let e = expectation(&c, Pauli::z_on(n, &qs)).unwrap();
            let d = dense_expectation(&c, &qs);
            assert!((e - d).abs() < 1e-9, "seed {seed}: {e} vs {d}");
        }
    }

    #[test]
    fn distribution_matches_dense_on_seeded_circuits() {
        for seed in 0..10 {
            let n = 3 + (seed as usize) % 3;
            let mut c = random_supported_circuit(n, 30, 4, 200 + seed);
            c.measure_all();
            let heis = output_distribution(&c).unwrap();
            let dense = statevec::ideal_distribution(&c).unwrap();
            for (k, v) in &dense {
                let w = heis.get(k).copied().unwrap_or(0.0);
                assert!((v - w).abs() < 1e-9, "seed {seed}, outcome {k}: {v} vs {w}");
            }
            let total: f64 = heis.values().sum();
            assert!((total - 1.0).abs() < 1e-9);
        }
    }

    #[test]
    fn branching_is_bounded_by_seed_count() {
        let n = 4;
        let c = random_supported_circuit(n, 40, 3, 999);
        let mut sum = PauliSum::from_pauli(n, Pauli::z_on(n, &[0, 1, 2, 3]));
        let mut rz_seen = 0;
        for instr in c.iter().rev() {
            if let OpKind::Gate(g) = &instr.kind {
                let qs: Vec<usize> = instr.qubits.iter().map(|q| q.index()).collect();
                match g {
                    Gate::RZ(t) if !is_clifford_angle(*t) => {
                        sum.conjugate_rz(*t, qs[0]);
                        rz_seen += 1;
                    }
                    Gate::RZ(t) => {
                        let _ = t;
                    }
                    g if g.is_clifford() => sum.conjugate_clifford(*g, &qs),
                    _ => {}
                }
            }
            assert!(
                sum.len() <= 1 << rz_seen,
                "terms {} exceed 2^{rz_seen}",
                sum.len()
            );
        }
    }

    #[test]
    fn large_register_with_few_measured_qubits() {
        // 80-qubit GHZ-like circuit with 2 seeds, measuring 6 qubits:
        // far beyond dense reach, cheap here.
        let n = 80;
        let mut c = Circuit::new(n);
        c.h(0);
        for q in 0..(n - 1) as u32 {
            c.cx(q, q + 1);
        }
        c.rz(0.7, 3);
        c.rz(0.4, 40);
        for q in 0..6u32 {
            c.measure(q, q);
        }
        let d = output_distribution(&c).unwrap();
        let total: f64 = d.values().sum();
        assert!((total - 1.0).abs() < 1e-9);
        // GHZ parity: only 000000 and 111111 have weight (the diagonal
        // seeds only add phases, which single-basis measurement ignores
        // for a GHZ state's diagonal density terms... weight stays on the
        // two GHZ branches).
        assert!(d.get(&0b000000).copied().unwrap_or(0.0) > 0.49);
        assert!(d.get(&0b111111).copied().unwrap_or(0.0) > 0.49);
    }

    #[test]
    fn rejects_non_diagonal_non_clifford() {
        let mut c = Circuit::new(1);
        c.ry(0.3, 0);
        let err = expectation(&c, Pauli::z_on(1, &[0])).unwrap_err();
        assert_eq!(err.0, Gate::RY(0.3));
    }

    #[test]
    fn t_gate_is_handled_as_diagonal() {
        // T = P(π/4): non-Clifford diagonal → branches.
        let mut c = Circuit::new(1);
        c.h(0).t(0).h(0).measure(0, 0);
        let d = output_distribution(&c).unwrap();
        let dense = statevec::ideal_distribution(&c).unwrap();
        for (k, v) in &dense {
            assert!((v - d.get(k).copied().unwrap_or(0.0)).abs() < 1e-9);
        }
    }
}
