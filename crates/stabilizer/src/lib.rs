//! # stab — stabilizer-circuit simulators
//!
//! Classical simulation of Clifford(-dominated) circuits, the engine behind
//! ADAPT's decoy circuits:
//!
//! - [`chp`]: the Aaronson–Gottesman CHP tableau simulator for pure Clifford
//!   circuits (Clifford Decoy Circuits), with exact output distributions and
//!   shot sampling;
//! - [`heisenberg`]: an extended stabilizer simulator handling a bounded
//!   number of non-Clifford *diagonal* gates (the Seeded Decoy Circuits'
//!   RZ seeds) by backward Pauli propagation with 2^seeds branching — the
//!   same stabilizer-rank bound as the low-rank decompositions of Bravyi
//!   et al. (Quantum 3, 181), evaluated in the Heisenberg picture.
//!
//! # Examples
//!
//! ```
//! use qcirc::Circuit;
//!
//! let mut c = Circuit::new(2);
//! c.h(0).cx(0, 1).measure_all();
//! let dist = stab::chp::exact_distribution(&c).unwrap();
//! assert_eq!(dist.len(), 2);
//! ```

#![warn(missing_docs)]

pub mod chp;
pub mod heisenberg;

pub use chp::{exact_distribution, sample_counts, Tableau};
