//! Aaronson–Gottesman CHP stabilizer tableau simulator.
//!
//! Simulates Clifford circuits (CX, CZ, SWAP, H, S, S†, X, Y, Z, √X, √X†)
//! in polynomial time and space — the engine behind ADAPT's Clifford Decoy
//! Circuits, whose ideal outputs must be classically computable
//! (Insight #1, §4.2 of the paper).
//!
//! The tableau follows Aaronson & Gottesman, *Improved simulation of
//! stabilizer circuits* (PRA 70, 052328): `2n` rows of X/Z bit-vectors plus
//! a sign bit; rows `0..n` are destabilizers, rows `n..2n` stabilizers.

use qcirc::{Circuit, Counts, Gate, OpKind};
use rand::Rng;
use std::collections::BTreeMap;

/// Bit-packed binary vector.
#[derive(Debug, Clone, PartialEq, Eq)]
struct BitVec {
    words: Vec<u64>,
}

impl BitVec {
    fn zeros(n: usize) -> Self {
        BitVec {
            words: vec![0; n.div_ceil(64)],
        }
    }

    #[inline]
    fn get(&self, i: usize) -> bool {
        self.words[i / 64] >> (i % 64) & 1 == 1
    }

    #[inline]
    fn set(&mut self, i: usize, v: bool) {
        let w = &mut self.words[i / 64];
        if v {
            *w |= 1 << (i % 64);
        } else {
            *w &= !(1 << (i % 64));
        }
    }

    #[inline]
    fn xor_in(&mut self, other: &BitVec) {
        for (a, b) in self.words.iter_mut().zip(&other.words) {
            *a ^= b;
        }
    }
}

/// One Pauli row of the tableau: (-1)^sign · ⊗ X^x Z^z.
#[derive(Debug, Clone, PartialEq, Eq)]
struct PauliRow {
    x: BitVec,
    z: BitVec,
    sign: bool,
}

impl PauliRow {
    fn identity(n: usize) -> Self {
        PauliRow {
            x: BitVec::zeros(n),
            z: BitVec::zeros(n),
            sign: false,
        }
    }
}

/// The outcome of measuring a qubit on a stabilizer state.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MeasureKind {
    /// The outcome was determined by the state.
    Deterministic(bool),
    /// The outcome was uniformly random; the recorded bit was sampled.
    Random(bool),
}

impl MeasureKind {
    /// The measured bit.
    pub fn bit(self) -> bool {
        match self {
            MeasureKind::Deterministic(b) | MeasureKind::Random(b) => b,
        }
    }
}

/// Error raised when a non-Clifford instruction reaches the simulator.
#[derive(Debug, Clone, PartialEq)]
pub struct NonCliffordError {
    /// The offending gate.
    pub gate: Gate,
}

impl std::fmt::Display for NonCliffordError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "gate {} is not Clifford-simulable", self.gate)
    }
}

impl std::error::Error for NonCliffordError {}

/// A stabilizer state over `n` qubits, initially `|0…0⟩`.
///
/// # Examples
///
/// ```
/// use stab::chp::Tableau;
/// use rand::SeedableRng;
///
/// let mut t = Tableau::new(2);
/// t.h(0);
/// t.cx(0, 1);
/// let mut rng = rand::rngs::StdRng::seed_from_u64(1);
/// let a = t.measure(0, &mut rng).bit();
/// let b = t.measure(1, &mut rng).bit();
/// assert_eq!(a, b); // Bell pair: perfectly correlated
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Tableau {
    n: usize,
    /// Rows 0..n destabilizers, n..2n stabilizers.
    rows: Vec<PauliRow>,
}

impl Tableau {
    /// Creates the `|0…0⟩` state: stabilizers `Z_i`, destabilizers `X_i`.
    pub fn new(n: usize) -> Self {
        let mut rows = vec![PauliRow::identity(n); 2 * n];
        for i in 0..n {
            rows[i].x.set(i, true); // destabilizer X_i
            rows[n + i].z.set(i, true); // stabilizer Z_i
        }
        Tableau { n, rows }
    }

    /// Number of qubits.
    pub fn num_qubits(&self) -> usize {
        self.n
    }

    /// Hadamard on qubit `q`.
    pub fn h(&mut self, q: usize) {
        for row in &mut self.rows {
            let (xq, zq) = (row.x.get(q), row.z.get(q));
            row.sign ^= xq & zq;
            row.x.set(q, zq);
            row.z.set(q, xq);
        }
    }

    /// Phase gate S on qubit `q`.
    pub fn s(&mut self, q: usize) {
        for row in &mut self.rows {
            let (xq, zq) = (row.x.get(q), row.z.get(q));
            row.sign ^= xq & zq;
            row.z.set(q, xq ^ zq);
        }
    }

    /// S† on qubit `q` (S·S·S).
    pub fn sdg(&mut self, q: usize) {
        self.s(q);
        self.s(q);
        self.s(q);
    }

    /// Pauli-Z on `q` (S²).
    pub fn z(&mut self, q: usize) {
        for row in &mut self.rows {
            row.sign ^= row.x.get(q);
        }
    }

    /// Pauli-X on `q`.
    pub fn x(&mut self, q: usize) {
        for row in &mut self.rows {
            row.sign ^= row.z.get(q);
        }
    }

    /// Pauli-Y on `q`.
    pub fn y(&mut self, q: usize) {
        for row in &mut self.rows {
            row.sign ^= row.x.get(q) ^ row.z.get(q);
        }
    }

    /// √X on `q` (H·S·H, exactly equal as matrices).
    pub fn sx(&mut self, q: usize) {
        self.h(q);
        self.s(q);
        self.h(q);
    }

    /// √X† on `q`.
    pub fn sxdg(&mut self, q: usize) {
        self.h(q);
        self.sdg(q);
        self.h(q);
    }

    /// CNOT with control `a`, target `b`.
    ///
    /// # Panics
    ///
    /// Panics in debug builds when `a == b`.
    pub fn cx(&mut self, a: usize, b: usize) {
        debug_assert_ne!(a, b);
        for row in &mut self.rows {
            let (xa, za) = (row.x.get(a), row.z.get(a));
            let (xb, zb) = (row.x.get(b), row.z.get(b));
            row.sign ^= xa & zb & (xb ^ za ^ true);
            row.x.set(b, xb ^ xa);
            row.z.set(a, za ^ zb);
        }
    }

    /// CZ on `a`, `b` (H on target conjugating CX).
    pub fn cz(&mut self, a: usize, b: usize) {
        self.h(b);
        self.cx(a, b);
        self.h(b);
    }

    /// SWAP via three CNOTs.
    pub fn swap(&mut self, a: usize, b: usize) {
        self.cx(a, b);
        self.cx(b, a);
        self.cx(a, b);
    }

    /// Applies a Clifford gate by name.
    ///
    /// # Errors
    ///
    /// Returns [`NonCliffordError`] for gates outside the Clifford group
    /// (including parameterized rotations — decoy circuits replace those
    /// before simulation).
    pub fn apply_gate(&mut self, gate: Gate, qubits: &[usize]) -> Result<(), NonCliffordError> {
        match gate {
            Gate::I => {}
            Gate::X => self.x(qubits[0]),
            Gate::Y => self.y(qubits[0]),
            Gate::Z => self.z(qubits[0]),
            Gate::H => self.h(qubits[0]),
            Gate::S => self.s(qubits[0]),
            Gate::Sdg => self.sdg(qubits[0]),
            Gate::SX => self.sx(qubits[0]),
            Gate::SXdg => self.sxdg(qubits[0]),
            Gate::CX => self.cx(qubits[0], qubits[1]),
            Gate::CZ => self.cz(qubits[0], qubits[1]),
            Gate::Swap => self.swap(qubits[0], qubits[1]),
            g => return Err(NonCliffordError { gate: g }),
        }
        Ok(())
    }

    /// Phase exponent contribution of multiplying Pauli terms, the `g`
    /// function of Aaronson–Gottesman: returns the exponent of `i`
    /// (mod 4, in {-1, 0, 1}) when `X^{x1}Z^{z1}` multiplies `X^{x2}Z^{z2}`.
    #[inline]
    fn g(x1: bool, z1: bool, x2: bool, z2: bool) -> i32 {
        match (x1, z1) {
            (false, false) => 0,
            (true, true) => (z2 as i32) - (x2 as i32),
            (true, false) => (z2 as i32) * (2 * (x2 as i32) - 1),
            (false, true) => (x2 as i32) * (1 - 2 * (z2 as i32)),
        }
    }

    /// Row multiplication: row[h] ← row[i] · row[h] with phase tracking.
    ///
    /// Only meaningful when the two rows commute (the product of commuting
    /// Pauli strings is again a ±1-signed Pauli string). Stabilizer rows
    /// always satisfy this; destabilizer signs are irrelevant to the
    /// algorithm, so callers may rowsum them regardless.
    fn rowsum(&mut self, h: usize, i: usize) {
        let n = self.n;
        let mut scratch = self.rows[h].clone();
        Self::row_mul_into(&mut scratch, &self.rows[i], n);
        self.rows[h] = scratch;
    }

    /// `scratch ← other · scratch` with Aaronson–Gottesman phase tracking.
    fn row_mul_into(scratch: &mut PauliRow, other: &PauliRow, n: usize) {
        let mut phase = 2 * (scratch.sign as i32) + 2 * (other.sign as i32);
        for q in 0..n {
            phase += Self::g(
                other.x.get(q),
                other.z.get(q),
                scratch.x.get(q),
                scratch.z.get(q),
            );
        }
        scratch.x.xor_in(&other.x);
        scratch.z.xor_in(&other.z);
        scratch.sign = phase.rem_euclid(4) == 2;
    }

    /// Measures qubit `q` in the computational basis, collapsing the state.
    pub fn measure<R: Rng + ?Sized>(&mut self, q: usize, rng: &mut R) -> MeasureKind {
        self.measure_with(q, || rng.gen::<bool>())
    }

    /// Measures qubit `q`, forcing random outcomes to `forced` — used to
    /// enumerate branches when computing exact distributions.
    pub fn measure_forced(&mut self, q: usize, forced: bool) -> MeasureKind {
        self.measure_with(q, || forced)
    }

    fn measure_with<F: FnOnce() -> bool>(&mut self, q: usize, sample: F) -> MeasureKind {
        let n = self.n;
        // Find a stabilizer row with X on q (outcome random) if any.
        let p = (n..2 * n).find(|&r| self.rows[r].x.get(q));
        if let Some(p) = p {
            let outcome = sample();
            // All other rows with X_q get multiplied by row p. Row p−n is
            // skipped: it is overwritten with row p below, and its product
            // with row p would carry an imaginary phase (they anticommute).
            for r in 0..2 * n {
                if r != p && r != p - n && self.rows[r].x.get(q) {
                    self.rowsum(r, p);
                }
            }
            // Destabilizer p-n becomes old stabilizer p; stabilizer p
            // becomes ±Z_q.
            self.rows[p - n] = self.rows[p].clone();
            let row = &mut self.rows[p];
            row.x = BitVec::zeros(n);
            row.z = BitVec::zeros(n);
            row.z.set(q, true);
            row.sign = outcome;
            MeasureKind::Random(outcome)
        } else {
            // Deterministic: the outcome sign is carried by the product of
            // the stabilizers whose destabilizer partner has X on q
            // (Aaronson–Gottesman's scratch row 2n).
            let mut scratch = PauliRow::identity(n);
            for i in 0..n {
                if self.rows[i].x.get(q) {
                    Self::row_mul_into(&mut scratch, &self.rows[n + i], n);
                }
            }
            MeasureKind::Deterministic(scratch.sign)
        }
    }

    /// The deterministic value of qubit `q` if its measurement outcome is
    /// fixed by the state, otherwise `None`. Does not modify the state.
    pub fn peek_deterministic(&self, q: usize) -> Option<bool> {
        let n = self.n;
        if (n..2 * n).any(|r| self.rows[r].x.get(q)) {
            return None;
        }
        let mut clone = self.clone();
        match clone.measure_forced(q, false) {
            MeasureKind::Deterministic(b) => Some(b),
            MeasureKind::Random(_) => unreachable!("checked no X on q"),
        }
    }

    /// Runs all Clifford instructions of a circuit, recording measurements
    /// into a classical-bit accumulator.
    ///
    /// # Errors
    ///
    /// Returns [`NonCliffordError`] on the first non-Clifford gate.
    pub fn run_circuit<R: Rng + ?Sized>(
        &mut self,
        circuit: &Circuit,
        clbits: &mut u64,
        rng: &mut R,
    ) -> Result<(), NonCliffordError> {
        for instr in circuit.iter() {
            match &instr.kind {
                OpKind::Gate(g) => {
                    let qs: Vec<usize> = instr.qubits.iter().map(|q| q.index()).collect();
                    self.apply_gate(*g, &qs)?;
                }
                OpKind::Measure(c) => {
                    let bit = self.measure(instr.qubits[0].index(), rng).bit();
                    if bit {
                        *clbits |= 1 << c.index();
                    } else {
                        *clbits &= !(1 << c.index());
                    }
                }
                OpKind::Reset => {
                    let q = instr.qubits[0].index();
                    if self.measure(q, rng).bit() {
                        self.x(q);
                    }
                }
                OpKind::Delay(_) | OpKind::Barrier => {}
            }
        }
        Ok(())
    }

    /// True when the circuit contains only Clifford gates (and
    /// measure/reset/delay/barrier).
    pub fn is_simulable(circuit: &Circuit) -> bool {
        circuit.iter().all(|i| match &i.kind {
            OpKind::Gate(g) => g.is_clifford(),
            _ => true,
        })
    }
}

/// Samples `shots` outcomes of a Clifford circuit.
///
/// Each shot replays the circuit on a fresh tableau (mid-circuit
/// measurement and reset therefore behave correctly).
///
/// # Errors
///
/// Returns [`NonCliffordError`] when the circuit contains a non-Clifford
/// gate.
pub fn sample_counts<R: Rng + ?Sized>(
    circuit: &Circuit,
    shots: u64,
    rng: &mut R,
) -> Result<Counts, NonCliffordError> {
    let mut counts = Counts::new(circuit.num_clbits());
    for _ in 0..shots {
        let mut t = Tableau::new(circuit.num_qubits());
        let mut clbits = 0u64;
        t.run_circuit(circuit, &mut clbits, rng)?;
        counts.record(clbits);
    }
    Ok(counts)
}

/// Computes the **exact** output distribution of a measurement-terminated
/// Clifford circuit by branching on every random measurement.
///
/// The output of a Clifford circuit is uniform over an affine subspace, so
/// the number of branches is `2^r` with `r` ≤ number of measured qubits.
///
/// # Errors
///
/// Returns [`NonCliffordError`] when the circuit contains a non-Clifford
/// gate.
///
/// # Panics
///
/// Panics when more than 24 random measurements would need branching
/// (2^24 branches) — decoy circuits in this stack measure ≤ ~16 qubits.
pub fn exact_distribution(circuit: &Circuit) -> Result<BTreeMap<u64, f64>, NonCliffordError> {
    // Split the circuit into its unitary prefix and its measurements.
    let mut t = Tableau::new(circuit.num_qubits());
    let mut measures: Vec<(usize, usize)> = Vec::new(); // (qubit, clbit)
    for instr in circuit.iter() {
        match &instr.kind {
            OpKind::Gate(g) => {
                let qs: Vec<usize> = instr.qubits.iter().map(|q| q.index()).collect();
                t.apply_gate(*g, &qs)?;
            }
            OpKind::Measure(c) => measures.push((instr.qubits[0].index(), c.index())),
            OpKind::Reset => {
                // Reset before any measurement is fine to apply eagerly with
                // a forced outcome branch — but a reset collapses state
                // randomly. Treat reset-on-random as both branches giving
                // the same post-state (|0⟩), so forcing false is exact.
                let q = instr.qubits[0].index();
                if t.measure_forced(q, false).bit() {
                    t.x(q);
                }
            }
            OpKind::Delay(_) | OpKind::Barrier => {}
        }
    }
    let mut dist = BTreeMap::new();
    let mut stack: Vec<(Tableau, usize, u64, f64)> = vec![(t, 0, 0u64, 1.0)];
    let mut branches = 0usize;
    while let Some((mut state, idx, clbits, prob)) = stack.pop() {
        if idx == measures.len() {
            *dist.entry(clbits).or_insert(0.0) += prob;
            continue;
        }
        let (q, c) = measures[idx];
        match state.peek_deterministic(q) {
            Some(bit) => {
                let _ = state.measure_forced(q, bit);
                let new_bits = if bit { clbits | 1 << c } else { clbits };
                stack.push((state, idx + 1, new_bits, prob));
            }
            None => {
                branches += 1;
                assert!(
                    branches < (1 << 24),
                    "exact_distribution: too many random-measurement branches"
                );
                let mut zero = state.clone();
                let _ = zero.measure_forced(q, false);
                stack.push((zero, idx + 1, clbits, prob / 2.0));
                let _ = state.measure_forced(q, true);
                stack.push((state, idx + 1, clbits | 1 << c, prob / 2.0));
            }
        }
    }
    Ok(dist)
}

#[cfg(test)]
mod tests {
    use super::*;
    use qcirc::Circuit;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn rng() -> StdRng {
        StdRng::seed_from_u64(0xC4F)
    }

    #[test]
    fn zero_state_measures_zero() {
        let mut t = Tableau::new(4);
        let mut r = rng();
        for q in 0..4 {
            let m = t.measure(q, &mut r);
            assert_eq!(m, MeasureKind::Deterministic(false));
        }
    }

    #[test]
    fn x_flips_measurement() {
        let mut t = Tableau::new(2);
        t.x(1);
        let mut r = rng();
        assert!(!t.measure(0, &mut r).bit());
        assert!(t.measure(1, &mut r).bit());
    }

    #[test]
    fn hadamard_measurement_random_then_sticky() {
        let mut r = rng();
        let mut saw = [false; 2];
        for _ in 0..50 {
            let mut t = Tableau::new(1);
            t.h(0);
            let m1 = t.measure(0, &mut r);
            assert!(matches!(m1, MeasureKind::Random(_)));
            let m2 = t.measure(0, &mut r);
            assert!(matches!(m2, MeasureKind::Deterministic(_)));
            assert_eq!(m1.bit(), m2.bit());
            saw[m1.bit() as usize] = true;
        }
        assert!(saw[0] && saw[1], "both outcomes should occur");
    }

    #[test]
    fn bell_pair_correlations() {
        let mut r = rng();
        for _ in 0..50 {
            let mut t = Tableau::new(2);
            t.h(0);
            t.cx(0, 1);
            let a = t.measure(0, &mut r).bit();
            let b = t.measure(1, &mut r).bit();
            assert_eq!(a, b);
        }
    }

    #[test]
    fn ghz_all_equal() {
        let mut r = rng();
        for _ in 0..30 {
            let mut t = Tableau::new(5);
            t.h(0);
            for q in 0..4 {
                t.cx(q, q + 1);
            }
            let bits: Vec<bool> = (0..5).map(|q| t.measure(q, &mut r).bit()).collect();
            assert!(bits.iter().all(|&b| b == bits[0]));
        }
    }

    #[test]
    fn z_phase_visible_through_h_basis() {
        // H Z H = X: |0⟩ → |1⟩.
        let mut t = Tableau::new(1);
        t.h(0);
        t.z(0);
        t.h(0);
        let mut r = rng();
        assert_eq!(t.measure(0, &mut r), MeasureKind::Deterministic(true));
    }

    #[test]
    fn s_gates_compose_to_z() {
        let mut t = Tableau::new(1);
        t.h(0);
        t.s(0);
        t.s(0);
        t.h(0);
        let mut r = rng();
        assert_eq!(t.measure(0, &mut r), MeasureKind::Deterministic(true));
    }

    #[test]
    fn sdg_inverts_s() {
        let mut t = Tableau::new(1);
        t.h(0);
        t.s(0);
        t.sdg(0);
        t.h(0);
        let mut r = rng();
        assert_eq!(t.measure(0, &mut r), MeasureKind::Deterministic(false));
    }

    #[test]
    fn sx_squared_is_x() {
        let mut t = Tableau::new(1);
        t.sx(0);
        t.sx(0);
        let mut r = rng();
        assert_eq!(t.measure(0, &mut r), MeasureKind::Deterministic(true));
    }

    #[test]
    fn y_is_xz_up_to_phase() {
        // Y|0⟩ = i|1⟩ → measures 1 deterministically.
        let mut t = Tableau::new(1);
        t.y(0);
        let mut r = rng();
        assert_eq!(t.measure(0, &mut r), MeasureKind::Deterministic(true));
    }

    #[test]
    fn swap_moves_excitation() {
        let mut t = Tableau::new(3);
        t.x(0);
        t.swap(0, 2);
        let mut r = rng();
        assert!(!t.measure(0, &mut r).bit());
        assert!(t.measure(2, &mut r).bit());
    }

    #[test]
    fn cz_creates_phase_kickback() {
        // H(0) H(1) CZ H(1): CZ in |+⟩|+⟩ then H maps to CX behaviour.
        let mut t = Tableau::new(2);
        t.x(0);
        t.h(1);
        t.cz(0, 1);
        t.h(1);
        // q0=1 so CZ→(after H conj)=CX flips q1.
        let mut r = rng();
        assert_eq!(t.measure(1, &mut r), MeasureKind::Deterministic(true));
    }

    #[test]
    fn non_clifford_rejected() {
        let mut t = Tableau::new(1);
        let err = t.apply_gate(Gate::T, &[0]).unwrap_err();
        assert_eq!(err.gate, Gate::T);
        let mut c = Circuit::new(1);
        c.t(0);
        assert!(!Tableau::is_simulable(&c));
        c = Circuit::new(1);
        c.h(0).s(0);
        assert!(Tableau::is_simulable(&c));
    }

    #[test]
    fn exact_distribution_bell() {
        let mut c = Circuit::new(2);
        c.h(0).cx(0, 1).measure_all();
        let d = exact_distribution(&c).unwrap();
        assert_eq!(d.len(), 2);
        assert!((d[&0b00] - 0.5).abs() < 1e-12);
        assert!((d[&0b11] - 0.5).abs() < 1e-12);
    }

    #[test]
    fn exact_distribution_deterministic_circuit() {
        let mut c = Circuit::new(3);
        c.x(0).x(2).measure_all();
        let d = exact_distribution(&c).unwrap();
        assert_eq!(d.len(), 1);
        assert!((d[&0b101] - 1.0).abs() < 1e-12);
    }

    #[test]
    fn exact_distribution_uniform_over_subspace() {
        // H on both qubits: uniform over 4 outcomes.
        let mut c = Circuit::new(2);
        c.h(0).h(1).measure_all();
        let d = exact_distribution(&c).unwrap();
        assert_eq!(d.len(), 4);
        for p in d.values() {
            assert!((p - 0.25).abs() < 1e-12);
        }
    }

    #[test]
    fn sample_counts_matches_exact() {
        let mut c = Circuit::new(3);
        c.h(0).cx(0, 1).cx(1, 2).measure_all();
        let exact = exact_distribution(&c).unwrap();
        let counts = sample_counts(&c, 4000, &mut rng()).unwrap();
        for (&outcome, &p) in &exact {
            let emp = counts.probability(outcome);
            assert!((emp - p).abs() < 0.05, "outcome {outcome}: {emp} vs {p}");
        }
    }

    #[test]
    fn matches_statevector_on_random_clifford_circuits() {
        use rand::seq::SliceRandom;
        let gates1 = [
            Gate::H,
            Gate::S,
            Gate::Sdg,
            Gate::X,
            Gate::Y,
            Gate::Z,
            Gate::SX,
        ];
        let mut r = rng();
        for trial in 0..25 {
            let n = 3 + trial % 3;
            let mut c = Circuit::new(n);
            for _ in 0..20 {
                if r.gen::<f64>() < 0.4 && n >= 2 {
                    let a = r.gen_range(0..n as u32);
                    let mut b = r.gen_range(0..n as u32);
                    while b == a {
                        b = r.gen_range(0..n as u32);
                    }
                    if r.gen::<bool>() {
                        c.cx(a, b);
                    } else {
                        c.cz(a, b);
                    }
                } else {
                    let g = *gates1.choose(&mut r).unwrap();
                    c.gate(g, &[r.gen_range(0..n as u32)]);
                }
            }
            c.measure_all();
            let exact = exact_distribution(&c).unwrap();
            let sv = statevec_reference(&c);
            assert_eq!(exact.len(), sv.len(), "support mismatch on trial {trial}");
            for (k, p) in &exact {
                let q = sv.get(k).copied().unwrap_or(0.0);
                assert!(
                    (p - q).abs() < 1e-9,
                    "trial {trial} outcome {k}: {p} vs {q}"
                );
            }
        }
    }

    fn statevec_reference(c: &Circuit) -> BTreeMap<u64, f64> {
        statevec::ideal_distribution(c).unwrap()
    }

    #[test]
    fn reset_in_run_circuit() {
        let mut c = Circuit::new(1);
        c.h(0);
        c.push(qcirc::Instruction {
            kind: OpKind::Reset,
            qubits: vec![qcirc::Qubit::new(0)],
        });
        c.measure(0, 0);
        let counts = sample_counts(&c, 200, &mut rng()).unwrap();
        assert_eq!(counts.get(0), 200);
    }

    #[test]
    fn peek_deterministic_does_not_mutate() {
        let mut t = Tableau::new(2);
        t.h(0);
        t.cx(0, 1);
        let before = t.clone();
        assert_eq!(t.peek_deterministic(0), None);
        assert_eq!(t, before);
        let mut t2 = Tableau::new(1);
        t2.x(0);
        assert_eq!(t2.peek_deterministic(0), Some(true));
    }

    #[test]
    fn large_register_smoke() {
        // 100-qubit GHZ: the scalability CDCs rely on.
        let n = 100;
        let mut t = Tableau::new(n);
        t.h(0);
        for q in 0..n - 1 {
            t.cx(q, q + 1);
        }
        let mut r = rng();
        let first = t.measure(0, &mut r).bit();
        for q in 1..n {
            assert_eq!(t.measure(q, &mut r).bit(), first);
        }
    }
}
