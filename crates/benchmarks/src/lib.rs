//! # benchmarks — NISQ workload generators
//!
//! The quantum programs of the ADAPT evaluation (Table 4): Bernstein–
//! Vazirani, Quantum Fourier Transform, QAOA (MaxCut), a ripple adder and
//! Quantum Phase Estimation — plus the single-qubit characterization
//! probes of §3 (free evolution vs DD, with and without concurrent
//! CNOTs).
//!
//! All generators produce logical [`Circuit`]s ready for the transpiler;
//! inputs are chosen so every benchmark has a classically-known ideal
//! output (the QFT benchmarks apply the *inverse* QFT to a synthesized
//! phase state, so the correct answer is a single basis state).
//!
//! # Examples
//!
//! ```
//! use benchmarks::{bernstein_vazirani, qft_bench};
//!
//! let bv = bernstein_vazirani(5, 0b1011);
//! assert_eq!(bv.num_qubits(), 5);
//! let dist = statevec::ideal_distribution(&bv).unwrap();
//! assert!((dist[&0b1011] - 1.0).abs() < 1e-9); // answer is the secret
//!
//! let qft = qft_bench(4, 6);
//! let dist = statevec::ideal_distribution(&qft).unwrap();
//! assert!((dist[&6] - 1.0).abs() < 1e-9); // peaked at k
//! ```

#![warn(missing_docs)]

pub mod characterization;
pub mod suite;

pub use suite::{paper_suite, table1_suite, BenchmarkSpec};

use qcirc::Circuit;
use std::f64::consts::PI;

/// Bernstein–Vazirani over `n` qubits (qubit `n−1` is the ancilla); the
/// measured answer is `secret` deterministically.
///
/// # Panics
///
/// Panics when `n < 2` or the secret does not fit in `n−1` bits.
pub fn bernstein_vazirani(n: usize, secret: u64) -> Circuit {
    assert!(n >= 2, "BV needs a data qubit and an ancilla");
    let data = (n - 1) as u32;
    assert!(
        secret < (1 << data),
        "secret {secret:#b} does not fit in {data} bits"
    );
    let mut c = Circuit::new(n);
    let anc = data;
    c.x(anc).h(anc);
    for q in 0..data {
        c.h(q);
    }
    for q in 0..data {
        if secret >> q & 1 == 1 {
            c.cx(q, anc);
        }
    }
    for q in 0..data {
        c.h(q);
    }
    for q in 0..data {
        c.measure(q, q);
    }
    c
}

/// Controlled phase gate `CP(λ)` on (control, target) via the standard
/// {P, CX} decomposition.
pub fn cp(c: &mut Circuit, lambda: f64, a: u32, b: u32) {
    c.p(lambda / 2.0, a);
    c.cx(a, b);
    c.p(-lambda / 2.0, b);
    c.cx(a, b);
    c.p(lambda / 2.0, b);
}

/// In-place quantum Fourier transform on qubits `0..n` (no terminal
/// qubit-reversal SWAPs; bit order is handled by the callers).
pub fn qft_rotations(c: &mut Circuit, n: u32, inverse: bool) {
    let sign = if inverse { -1.0 } else { 1.0 };
    if inverse {
        for i in 0..n {
            c.h(i);
            for j in (i + 1)..n {
                cp(c, sign * PI / (1u64 << (j - i)) as f64, j, i);
            }
        }
    } else {
        for i in (0..n).rev() {
            for j in (i + 1)..n {
                cp(c, sign * PI / (1u64 << (j - i)) as f64, j, i);
            }
            c.h(i);
        }
    }
}

/// QFT benchmark with a deterministic answer: synthesizes the Fourier
/// phase state of `k` (H layer + phase ramps), then applies the inverse
/// QFT, so the ideal measurement outcome is exactly `k`.
///
/// Different `k` values play the role of the paper's A/B input-state
/// variants (QFT-6A vs QFT-6B etc.).
///
/// # Panics
///
/// Panics when `k` does not fit in `n` bits.
pub fn qft_bench(n: usize, k: u64) -> Circuit {
    assert!(k < (1u64 << n), "k={k} does not fit in {n} bits");
    let n32 = n as u32;
    let mut c = Circuit::new(n);
    // Phase state: (1/√2^n) Σ_x e^{2πi k x / 2^n} |x⟩, with x read in the
    // same bit order the inverse QFT expects.
    for q in 0..n32 {
        c.h(q);
        // Bit-reversed phase assignment matches the swap-free inverse QFT.
        let angle = 2.0 * PI * (k as f64) * (1u64 << (n32 - 1 - q)) as f64 / (1u64 << n) as f64;
        c.p(angle, q);
    }
    qft_rotations(&mut c, n32, true);
    c.measure_all();
    c
}

/// One-layer QAOA for MaxCut on the given edge list: `H` wall, a
/// `ZZ(2γ)` block per edge, an `RX(2β)` mixer, measurement.
pub fn qaoa_maxcut(
    n: usize,
    edges: &[(u32, u32)],
    gamma: f64,
    beta: f64,
    layers: usize,
) -> Circuit {
    let mut c = Circuit::new(n);
    for q in 0..n as u32 {
        c.h(q);
    }
    for _ in 0..layers {
        for &(a, b) in edges {
            c.cx(a, b);
            c.rz(2.0 * gamma, b);
            c.cx(a, b);
        }
        for q in 0..n as u32 {
            c.rx(2.0 * beta, q);
        }
    }
    c.measure_all();
    c
}

/// Ring graph `0–1–…–(n−1)–0`.
pub fn ring_edges(n: usize) -> Vec<(u32, u32)> {
    (0..n as u32).map(|i| (i, (i + 1) % n as u32)).collect()
}

/// Denser deterministic graph: the ring plus chords at stride 2.
pub fn chorded_edges(n: usize) -> Vec<(u32, u32)> {
    let mut e = ring_edges(n);
    for i in (0..n as u32).step_by(2) {
        let j = (i + 2) % n as u32;
        let key = (i.min(j), i.max(j));
        if i != j && !e.contains(&key) && !e.contains(&(key.1, key.0)) {
            e.push(key);
        }
    }
    e
}

/// Toffoli (CCX) via the textbook Clifford+T decomposition (controls
/// `a`, `b`; target `c`).
pub fn toffoli(circ: &mut Circuit, a: u32, b: u32, c: u32) {
    circ.h(c);
    circ.cx(b, c);
    circ.tdg(c);
    circ.cx(a, c);
    circ.t(c);
    circ.cx(b, c);
    circ.tdg(c);
    circ.cx(a, c);
    circ.t(b);
    circ.t(c);
    circ.h(c);
    circ.cx(a, b);
    circ.t(a);
    circ.tdg(b);
    circ.cx(a, b);
}

/// 4-qubit full adder computing `cin + a + b`: the sum lands on qubit 2,
/// the carry on qubit 3. Inputs are baked in with X gates so the ideal
/// output is deterministic.
///
/// Layout: q0 = a, q1 = b, q2 = cin/sum, q3 = carry-out.
pub fn adder4(a_in: bool, b_in: bool, cin: bool) -> Circuit {
    let mut c = Circuit::new(4);
    if a_in {
        c.x(0);
    }
    if b_in {
        c.x(1);
    }
    if cin {
        c.x(2);
    }
    // carry-out accumulates majority(a, b, cin)
    toffoli(&mut c, 0, 1, 3);
    c.cx(0, 1);
    toffoli(&mut c, 1, 2, 3);
    // sum = a ⊕ b ⊕ cin
    c.cx(1, 2);
    // restore b
    c.cx(0, 1);
    c.measure_all();
    c
}

/// GHZ state preparation over `n` qubits: H then a CNOT chain. Output is
/// an even mixture of all-zeros and all-ones — a standard entanglement
/// witness workload (extension beyond the paper's Table 4).
pub fn ghz(n: usize) -> Circuit {
    let mut c = Circuit::new(n);
    c.h(0);
    for q in 0..(n - 1) as u32 {
        c.cx(q, q + 1);
    }
    c.measure_all();
    c
}

/// Multi-controlled Z on all of `controls` plus `target`, decomposed via
/// a Toffoli ladder onto `ancillas` (which must be clean and disjoint).
fn mcz(c: &mut Circuit, controls: &[u32], target: u32, ancillas: &[u32]) {
    match controls.len() {
        0 => {
            c.z(target);
        }
        1 => {
            c.cz(controls[0], target);
        }
        _ => {
            assert!(
                ancillas.len() + 1 >= controls.len(),
                "need {} ancillas for {} controls",
                controls.len() - 1,
                controls.len()
            );
            // AND-accumulate controls into ancillas.
            toffoli(c, controls[0], controls[1], ancillas[0]);
            for (i, &ctl) in controls[2..].iter().enumerate() {
                toffoli(c, ctl, ancillas[i], ancillas[i + 1]);
            }
            let top = ancillas[controls.len() - 2];
            c.cz(top, target);
            // Uncompute.
            for (i, &ctl) in controls[2..].iter().enumerate().rev() {
                toffoli(c, ctl, ancillas[i], ancillas[i + 1]);
            }
            toffoli(c, controls[0], controls[1], ancillas[0]);
        }
    }
}

/// Grover search over `n` data qubits for the marked element `target`,
/// running the optimal ⌊π/4·√2ⁿ⌋ iterations; the ideal output is sharply
/// peaked at `target` (extension beyond the paper's Table 4).
///
/// For `n ≥ 3` data qubits the oracle/diffuser multi-controlled-Z uses
/// `n − 2` ancilla qubits appended after the data register.
///
/// # Panics
///
/// Panics when `target` does not fit in `n` bits or `n < 2`.
pub fn grover(n: usize, target: u64) -> Circuit {
    assert!(n >= 2, "Grover needs at least 2 data qubits");
    assert!(target < (1u64 << n), "target does not fit in {n} bits");
    let ancillas: Vec<u32> = if n > 2 {
        (n as u32..(2 * n - 2) as u32).collect()
    } else {
        Vec::new()
    };
    let total = n + ancillas.len();
    let mut c = Circuit::new(total);
    for q in 0..n as u32 {
        c.h(q);
    }
    let iterations = ((std::f64::consts::FRAC_PI_4) * ((1u64 << n) as f64).sqrt()).floor() as usize;
    let controls: Vec<u32> = (0..(n - 1) as u32).collect();
    let last = (n - 1) as u32;
    for _ in 0..iterations.max(1) {
        // Oracle: phase-flip |target⟩ — conjugate an n-controlled Z by X
        // on the zero bits of the target.
        for q in 0..n as u32 {
            if target >> q & 1 == 0 {
                c.x(q);
            }
        }
        mcz(&mut c, &controls, last, &ancillas);
        for q in 0..n as u32 {
            if target >> q & 1 == 0 {
                c.x(q);
            }
        }
        // Diffuser: reflection about the mean.
        for q in 0..n as u32 {
            c.h(q);
            c.x(q);
        }
        mcz(&mut c, &controls, last, &ancillas);
        for q in 0..n as u32 {
            c.x(q);
            c.h(q);
        }
    }
    for q in 0..n as u32 {
        c.measure(q, q);
    }
    c
}

/// Quantum phase estimation with `n−1` counting qubits reading out the
/// phase of `P(2π·phase_num/2^{n−1})` applied to the `|1⟩` eigenstate on
/// qubit `n−1`. The ideal answer is `phase_num` on the counting register.
///
/// # Panics
///
/// Panics when `n < 2` or `phase_num` does not fit in the counting
/// register.
pub fn qpe(n: usize, phase_num: u64) -> Circuit {
    assert!(n >= 2);
    let counting = (n - 1) as u32;
    assert!(phase_num < (1 << counting));
    let phase = 2.0 * PI * phase_num as f64 / (1u64 << counting) as f64;
    let mut c = Circuit::new(n);
    let eigen = counting;
    c.x(eigen); // |1⟩ eigenstate of P(φ)
    for q in 0..counting {
        c.h(q);
    }
    for q in 0..counting {
        // controlled-P(φ·2^{n−1−q}): bit-reversed to match the swap-free
        // inverse QFT that follows.
        let angle = phase * (1u64 << (counting - 1 - q)) as f64;
        cp(&mut c, angle, q, eigen);
    }
    qft_rotations(&mut c, counting, true);
    for q in 0..counting {
        c.measure(q, q);
    }
    c
}

#[cfg(test)]
mod tests {
    use super::*;
    use statevec::ideal_distribution;

    #[test]
    fn bv_answers_its_secret() {
        for (n, secret) in [(4, 0b101u64), (6, 0b11011), (8, 0b1010101)] {
            let c = bernstein_vazirani(n, secret);
            let d = ideal_distribution(&c).unwrap();
            assert_eq!(d.len(), 1, "BV must be deterministic");
            assert!((d[&secret] - 1.0).abs() < 1e-9);
        }
    }

    #[test]
    #[should_panic(expected = "does not fit")]
    fn bv_rejects_oversized_secret() {
        bernstein_vazirani(3, 0b100);
    }

    #[test]
    fn qft_bench_peaks_at_k() {
        for n in [3usize, 4, 5, 6] {
            for k in [0u64, 1, (1 << n) - 1, (1 << n) / 3] {
                let c = qft_bench(n, k);
                let d = ideal_distribution(&c).unwrap();
                let p = d.get(&k).copied().unwrap_or(0.0);
                assert!(p > 1.0 - 1e-9, "qft_bench({n},{k}) p={p}");
            }
        }
    }

    #[test]
    fn qft_forward_then_inverse_is_identity() {
        let mut c = Circuit::new(4);
        c.x(0).x(2); // little-endian |0101⟩ = index 5
        qft_rotations(&mut c, 4, false);
        qft_rotations(&mut c, 4, true);
        c.measure_all();
        let d = ideal_distribution(&c).unwrap();
        assert!((d[&0b0101] - 1.0).abs() < 1e-9);
    }

    #[test]
    fn cp_matches_diagonal_phase() {
        // CP(λ) adds e^{iλ} only on |11⟩; read the phase off the
        // superposition amplitudes directly.
        use qcirc::math::C64;
        let lambda = 1.234;
        let mut c = Circuit::new(2);
        c.x(1);
        c.h(0);
        cp(&mut c, lambda, 0, 1);
        let sv = statevec::run_ideal(&c).unwrap();
        let a01 = sv.amplitude(0b10); // q1=1, q0=0
        let a11 = sv.amplitude(0b11);
        let ratio = a11 / a01;
        assert!(ratio.approx_eq(C64::cis(lambda), 1e-9), "ratio {ratio}");
    }

    #[test]
    fn qaoa_distribution_favors_maxcut_solutions() {
        // Ring of 4: optimal cuts are the alternating colorings 0101/1010.
        let c = qaoa_maxcut(4, &ring_edges(4), 0.4, 0.7, 1);
        let d = ideal_distribution(&c).unwrap();
        let p_best =
            d.get(&0b0101).copied().unwrap_or(0.0) + d.get(&0b1010).copied().unwrap_or(0.0);
        assert!(p_best > 2.0 / 16.0, "maxcut states underweighted: {p_best}");
    }

    #[test]
    fn qaoa_output_normalized_and_symmetric() {
        let c = qaoa_maxcut(5, &ring_edges(5), 0.7, 0.2, 2);
        let d = ideal_distribution(&c).unwrap();
        let total: f64 = d.values().sum();
        assert!((total - 1.0).abs() < 1e-9);
        // Z2 symmetry of MaxCut: p(x) = p(~x).
        for (&k, &p) in &d {
            let flipped = !k & 0b11111;
            let q = d.get(&flipped).copied().unwrap_or(0.0);
            assert!((p - q).abs() < 1e-9, "asymmetry at {k}");
        }
    }

    #[test]
    fn toffoli_truth_table() {
        for a in [false, true] {
            for b in [false, true] {
                let mut c = Circuit::new(3);
                if a {
                    c.x(0);
                }
                if b {
                    c.x(1);
                }
                toffoli(&mut c, 0, 1, 2);
                c.measure_all();
                let d = ideal_distribution(&c).unwrap();
                let expected = (a as u64) | (b as u64) << 1 | ((a && b) as u64) << 2;
                assert!(
                    (d.get(&expected).copied().unwrap_or(0.0) - 1.0).abs() < 1e-9,
                    "a={a} b={b}: {d:?}"
                );
            }
        }
    }

    #[test]
    fn adder_truth_table() {
        for a in [false, true] {
            for b in [false, true] {
                for cin in [false, true] {
                    let c = adder4(a, b, cin);
                    let d = ideal_distribution(&c).unwrap();
                    assert_eq!(d.len(), 1, "adder must be deterministic");
                    let (&out, _) = d.iter().next().unwrap();
                    let sum = out >> 2 & 1;
                    let carry = out >> 3 & 1;
                    let total = a as u64 + b as u64 + cin as u64;
                    assert_eq!(sum, total & 1, "sum wrong for {a}{b}{cin}");
                    assert_eq!(carry, total >> 1, "carry wrong for {a}{b}{cin}");
                }
            }
        }
    }

    #[test]
    fn qpe_recovers_phase() {
        for phase_num in [1u64, 5, 11] {
            let c = qpe(5, phase_num);
            let d = ideal_distribution(&c).unwrap();
            let p = d.get(&phase_num).copied().unwrap_or(0.0);
            assert!(p > 1.0 - 1e-9, "qpe(5,{phase_num}): p={p}");
        }
    }

    #[test]
    fn ghz_is_an_even_cat_state() {
        for n in [2usize, 5, 8] {
            let d = ideal_distribution(&ghz(n)).unwrap();
            assert_eq!(d.len(), 2);
            assert!((d[&0] - 0.5).abs() < 1e-9);
            assert!((d[&((1u64 << n) - 1)] - 0.5).abs() < 1e-9);
        }
    }

    #[test]
    fn grover_peaks_at_marked_element() {
        for (n, target) in [(2usize, 0b10u64), (3, 0b101), (4, 0b0110)] {
            let c = grover(n, target);
            let d = ideal_distribution(&c).unwrap();
            let p = d.get(&target).copied().unwrap_or(0.0);
            // Optimal iteration count: ≥ 0.8 success for n ≥ 2 (n = 2 hits
            // exactly 1.0).
            assert!(p > 0.8, "grover({n},{target}): p = {p}");
            // And far above uniform.
            assert!(p > 3.0 / (1 << n) as f64);
        }
    }

    #[test]
    fn grover_ancillas_return_clean() {
        // Ancillas must uncompute: the joint distribution over all wires
        // puts no mass on any outcome with an ancilla bit set.
        let c = grover(4, 0b1011);
        let sv = statevec::run_ideal(&c).unwrap();
        for (idx, p) in sv.probabilities().into_iter().enumerate() {
            if idx >> 4 != 0 {
                assert!(p < 1e-9, "ancilla left dirty at index {idx}: {p}");
            }
        }
    }

    #[test]
    fn graph_generators_are_well_formed() {
        let ring = ring_edges(6);
        assert_eq!(ring.len(), 6);
        let chorded = chorded_edges(8);
        assert!(chorded.len() > 8);
        for &(a, b) in &chorded {
            assert_ne!(a, b);
            assert!(a < 8 && b < 8);
        }
    }
}
