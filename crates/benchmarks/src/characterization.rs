//! Single-qubit characterization probes of §3 and §6.4.
//!
//! These circuits quantify idling errors directly: a probe qubit is
//! rotated into an arbitrary state with `RY(θ)`, left to evolve over an
//! idle window (optionally while CNOTs hammer a nearby link), rotated
//! back with `RY(−θ)`, and measured. A perfect machine always reads 0;
//! the survival probability of 0 is the probe fidelity the paper plots
//! in Figs. 4–6 and 16.
//!
//! DD insertion into the probe window is left to `adapt::dd::insert_dd`
//! (the probes just create the idle structure), except for
//! [`probe_with_inline_dd`], which bakes the pulse sequence in for
//! device-level experiments that bypass the framework.

use qcirc::{Circuit, Gate};

/// The probe circuit of Fig. 4(a): `RY(θ)` → idle → `RY(−θ)` → measure,
/// on qubit `probe` of an `n`-qubit register.
pub fn idle_probe(n: usize, probe: u32, theta: f64, idle_ns: f64) -> Circuit {
    let mut c = Circuit::new(n);
    c.ry(theta, probe);
    c.delay(idle_ns, probe);
    c.ry(-theta, probe);
    c.measure(probe, 0);
    c
}

/// Fig. 4(d): the probe idles while `repetitions` CNOTs run back-to-back
/// on the (`link_a`, `link_b`) pair. A barrier aligns the unwind rotation
/// after the CNOT burst so the probe's idle window spans the crosstalk.
pub fn idle_probe_with_cnots(
    n: usize,
    probe: u32,
    theta: f64,
    link_a: u32,
    link_b: u32,
    repetitions: usize,
) -> Circuit {
    let mut c = Circuit::new(n);
    c.ry(theta, probe);
    // Pin the preparation before the CNOT burst: without this barrier an
    // ALAP scheduler would slide the RY right up against the unwind,
    // leaving the probe in |0⟩ (dephasing-insensitive) during the burst.
    c.barrier(&[probe, link_a, link_b]);
    for _ in 0..repetitions {
        c.cx(link_a, link_b);
    }
    c.barrier(&[probe, link_a, link_b]);
    c.ry(-theta, probe);
    c.measure(probe, 0);
    c
}

/// Which pulse train [`probe_with_inline_dd`] bakes into the idle window.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum InlineDd {
    /// No pulses: free evolution.
    Free,
    /// Continuous XY4 with the given per-pulse slot (pulse + buffer), ns.
    Xy4 {
        /// Pulse-to-pulse slot duration in nanoseconds.
        slot_ns: f64,
    },
    /// Two X pulses evenly placed (IBMQ-DD / Eq. 4), given pulse length.
    IbmqDd {
        /// Pulse duration in nanoseconds.
        pulse_ns: f64,
    },
}

/// A probe with the DD sequence written directly into the circuit via
/// explicit delays — reproducing the device-level experiments of
/// Fig. 4(b)/(e) and Fig. 16 without going through the scheduler.
pub fn probe_with_inline_dd(
    n: usize,
    probe: u32,
    theta: f64,
    idle_ns: f64,
    dd: InlineDd,
) -> Circuit {
    let mut c = Circuit::new(n);
    c.ry(theta, probe);
    match dd {
        InlineDd::Free => {
            c.delay(idle_ns, probe);
        }
        InlineDd::Xy4 { slot_ns } => {
            let reps = (idle_ns / (4.0 * slot_ns)).floor().max(0.0) as usize;
            let mut used = 0.0;
            for _ in 0..reps {
                for g in [Gate::X, Gate::Y, Gate::X, Gate::Y] {
                    c.gate(g, &[probe]);
                    // The slot includes the pulse itself; the rest idles.
                    c.delay(slot_ns - 35.0, probe);
                    used += slot_ns;
                }
            }
            if idle_ns - used > 0.0 {
                c.delay(idle_ns - used, probe);
            }
        }
        InlineDd::IbmqDd { pulse_ns } => {
            let tau4 = (idle_ns - 2.0 * pulse_ns) / 4.0;
            c.delay(tau4, probe);
            c.x(probe);
            c.delay(2.0 * tau4, probe);
            c.x(probe);
            c.delay(tau4, probe);
        }
    }
    c.ry(-theta, probe);
    c.measure(probe, 0);
    c
}

/// The θ grid of §3.2: five initial states spanning `[0, π]`.
pub fn theta_grid(count: usize) -> Vec<f64> {
    (0..count)
        .map(|i| std::f64::consts::PI * i as f64 / (count.max(2) - 1) as f64)
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use statevec::ideal_distribution;

    #[test]
    fn probe_is_identity_noise_free() {
        for theta in theta_grid(5) {
            let c = idle_probe(3, 1, theta, 5000.0);
            let d = ideal_distribution(&c).unwrap();
            assert!((d.get(&0).copied().unwrap_or(0.0) - 1.0).abs() < 1e-9);
        }
    }

    #[test]
    fn probe_with_cnots_is_identity_noise_free() {
        let c = idle_probe_with_cnots(4, 0, 1.1, 1, 2, 6);
        let d = ideal_distribution(&c).unwrap();
        assert!((d.get(&0).copied().unwrap_or(0.0) - 1.0).abs() < 1e-9);
    }

    #[test]
    fn inline_dd_is_identity_noise_free() {
        for dd in [
            InlineDd::Free,
            InlineDd::Xy4 { slot_ns: 45.0 },
            InlineDd::IbmqDd { pulse_ns: 35.0 },
        ] {
            let c = probe_with_inline_dd(2, 0, 0.8, 2000.0, dd);
            let d = ideal_distribution(&c).unwrap();
            assert!(
                (d.get(&0).copied().unwrap_or(0.0) - 1.0).abs() < 1e-9,
                "{dd:?} breaks identity"
            );
        }
    }

    #[test]
    fn xy4_inline_pulse_count_scales_with_idle() {
        let short = probe_with_inline_dd(1, 0, 0.5, 500.0, InlineDd::Xy4 { slot_ns: 45.0 });
        let long = probe_with_inline_dd(1, 0, 0.5, 5000.0, InlineDd::Xy4 { slot_ns: 45.0 });
        let count = |c: &Circuit| {
            c.iter()
                .filter(|i| matches!(i.as_gate(), Some(Gate::X | Gate::Y)))
                .count()
        };
        assert!(count(&long) > 4 * count(&short));
    }

    #[test]
    fn theta_grid_spans_zero_to_pi() {
        let g = theta_grid(5);
        assert_eq!(g.len(), 5);
        assert!(g[0].abs() < 1e-12);
        assert!((g[4] - std::f64::consts::PI).abs() < 1e-12);
    }
}
