//! The paper's benchmark suites.
//!
//! [`paper_suite`] mirrors Table 4 (BV-7/8, QFT-6A/6B/7A/7B,
//! QAOA-8A/8B/10A/10B, QPEA-5); [`table1_suite`] provides the three
//! 5-qubit-class programs of Table 1 (QFT-5, QAOA-5, Adder).

use crate::{adder4, bernstein_vazirani, chorded_edges, qaoa_maxcut, qft_bench, qpe, ring_edges};
use qcirc::Circuit;

/// A named benchmark instance.
#[derive(Debug, Clone)]
pub struct BenchmarkSpec {
    /// Paper name, e.g. "QFT-6A".
    pub name: &'static str,
    /// Number of program qubits.
    pub num_qubits: usize,
    /// The logical circuit.
    pub circuit: Circuit,
}

impl BenchmarkSpec {
    fn new(name: &'static str, circuit: Circuit) -> Self {
        BenchmarkSpec {
            name,
            num_qubits: circuit.num_qubits(),
            circuit,
        }
    }
}

/// The Table 4 suite used in Figs. 13–15.
///
/// A/B variants differ by input state (QFT) or problem graph and angles
/// (QAOA), exactly as the paper uses them to test decoy robustness across
/// state evolutions.
pub fn paper_suite() -> Vec<BenchmarkSpec> {
    vec![
        BenchmarkSpec::new("BV-7", bernstein_vazirani(7, 0b101101)),
        BenchmarkSpec::new("BV-8", bernstein_vazirani(8, 0b1110101)),
        BenchmarkSpec::new("QFT-6A", qft_bench(6, 5)),
        BenchmarkSpec::new("QFT-6B", qft_bench(6, 42)),
        BenchmarkSpec::new("QFT-7A", qft_bench(7, 19)),
        BenchmarkSpec::new("QFT-7B", qft_bench(7, 97)),
        BenchmarkSpec::new("QAOA-8A", qaoa_maxcut(8, &ring_edges(8), 0.4, 0.7, 1)),
        BenchmarkSpec::new("QAOA-8B", qaoa_maxcut(8, &chorded_edges(8), 0.55, 0.6, 1)),
        BenchmarkSpec::new("QAOA-10A", qaoa_maxcut(10, &ring_edges(10), 0.4, 0.7, 1)),
        BenchmarkSpec::new(
            "QAOA-10B",
            qaoa_maxcut(10, &chorded_edges(10), 0.5, 0.55, 2),
        ),
        BenchmarkSpec::new("QPEA-5", qpe(5, 5)),
    ]
}

/// The Table 1 programs (5-qubit class, run on IBMQ-Rome in the paper).
pub fn table1_suite() -> Vec<BenchmarkSpec> {
    vec![
        BenchmarkSpec::new("QFT-5", qft_bench(5, 11)),
        BenchmarkSpec::new("QAOA-5", qaoa_maxcut(5, &ring_edges(5), 0.4, 0.7, 1)),
        BenchmarkSpec::new("Adder", adder4(true, true, false)),
    ]
}

/// Looks a benchmark up by its paper name in both suites.
pub fn by_name(name: &str) -> Option<BenchmarkSpec> {
    paper_suite()
        .into_iter()
        .chain(table1_suite())
        .find(|b| b.name == name)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_suite_matches_table4_sizes() {
        let suite = paper_suite();
        assert_eq!(suite.len(), 11);
        let sizes: Vec<(&str, usize)> = suite.iter().map(|b| (b.name, b.num_qubits)).collect();
        assert!(sizes.contains(&("BV-7", 7)));
        assert!(sizes.contains(&("BV-8", 8)));
        assert!(sizes.contains(&("QFT-6A", 6)));
        assert!(sizes.contains(&("QFT-7B", 7)));
        assert!(sizes.contains(&("QAOA-8A", 8)));
        assert!(sizes.contains(&("QAOA-10B", 10)));
        assert!(sizes.contains(&("QPEA-5", 5)));
    }

    #[test]
    fn every_benchmark_has_computable_ideal_output() {
        for b in paper_suite().into_iter().chain(table1_suite()) {
            let d = statevec::ideal_distribution(&b.circuit).unwrap();
            let total: f64 = d.values().sum();
            assert!((total - 1.0).abs() < 1e-9, "{} not normalized", b.name);
        }
    }

    #[test]
    fn a_b_variants_differ() {
        let suite = paper_suite();
        let get = |name: &str| {
            suite
                .iter()
                .find(|b| b.name == name)
                .map(|b| b.circuit.clone())
                .expect("benchmark exists")
        };
        assert_ne!(get("QFT-6A"), get("QFT-6B"));
        assert_ne!(get("QAOA-8A"), get("QAOA-8B"));
    }

    #[test]
    fn by_name_finds_both_suites() {
        assert!(by_name("BV-7").is_some());
        assert!(by_name("QFT-5").is_some());
        assert!(by_name("NOPE-3").is_none());
    }
}
