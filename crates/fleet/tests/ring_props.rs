//! Property tests over the rendezvous hash ring.
//!
//! Pinned properties:
//!
//! 1. **Exact monotone movement.** On a single shard *join*, the set of
//!    keys that change owner is exactly the set the new shard owns
//!    afterwards; on a single *leave*, exactly the set the leaver owned
//!    before. No collateral remaps, ever — this is deterministic, not
//!    statistical.
//! 2. **⌈K/N⌉ movement bound.** Over K keys routed across N shards, a
//!    single join/leave remaps at most ⌈K/N⌉ keys (N counted on the
//!    smaller ring side, where each shard's expected share is largest).
//!    The per-shard key count concentrates tightly around K/N for
//!    K ≫ N, so with K = 16384 and N ≤ 8 the bound holds with ~5σ
//!    headroom; the fixed proptest seeds make the run reproducible
//!    either way.
//! 3. **Insertion-order independence.** Two rings over the same shard
//!    set — built in different orders — route every key identically.

use adapt_fleet::ring::{Ring, ShardId};
use proptest::prelude::*;
use std::collections::HashSet;

/// Keys per case: large enough that per-shard loads concentrate well
/// inside the ⌈K/N⌉ ceiling.
const K: u64 = 16_384;

/// Derives a pseudo-random but case-deterministic key stream: the
/// properties must hold for any keys, so an arbitrary seeded stream is
/// as good as an enumerated one and much cheaper to shrink.
fn keys(salt: u64) -> impl Iterator<Item = u64> {
    (0..K).map(move |i| {
        let mut x = salt
            .wrapping_mul(0x9e37_79b9_7f4a_7c15)
            .wrapping_add(i.wrapping_mul(0xd134_2543_de82_ef95));
        x ^= x >> 32;
        x = x.wrapping_mul(0xff51_afd7_ed55_8ccd);
        x ^ (x >> 33)
    })
}

fn shard_set(n: usize) -> Vec<ShardId> {
    // Non-contiguous ids: nothing in the ring may depend on density.
    (0..n as u32).map(|i| ShardId(i * 7 + 1)).collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn single_join_moves_exactly_the_new_shards_keys(n in 1usize..8, salt in 0u64..1_000_000) {
        let before = Ring::new(shard_set(n));
        let joiner = ShardId(997);
        let mut after = before.clone();
        prop_assert!(after.add(joiner));

        let mut moved = 0u64;
        for key in keys(salt) {
            let old = before.owner(key).unwrap();
            let new = after.owner(key).unwrap();
            if old != new {
                // Exact monotonicity: a key only moves TO the joiner.
                prop_assert_eq!(new, joiner);
                moved += 1;
            }
        }
        // ⌈K/N⌉ bound with N the smaller (before) ring size: the
        // joiner takes ≈ K/(N+1) keys in expectation, comfortably
        // under the K/N ceiling (gap K/(N(N+1)) ≈ 7σ at N = 7).
        let n_small = n as u64;
        prop_assert!(
            moved <= K.div_ceil(n_small),
            "join moved {} of {} keys, bound {}", moved, K, K.div_ceil(n_small)
        );
    }

    #[test]
    fn single_leave_moves_exactly_the_leavers_keys(n in 2usize..9, salt in 0u64..1_000_000) {
        let before = Ring::new(shard_set(n));
        let leaver = before.shards()[n / 2];
        let mut after = before.clone();
        prop_assert!(after.remove(leaver));

        let mut moved = 0u64;
        for key in keys(salt) {
            let old = before.owner(key).unwrap();
            let new = after.owner(key).unwrap();
            if old == leaver {
                // Its keys must move (it is gone) ...
                prop_assert!(new != leaver);
                moved += 1;
            } else {
                // ... and nobody else's may.
                prop_assert_eq!(old, new);
            }
        }
        // Same ⌈K/N⌉ bound, N again the smaller (after) ring size: the
        // leaver owned ≈ K/(N+1) keys, under the K/N ceiling.
        let n_small = (n - 1) as u64;
        prop_assert!(
            moved <= K.div_ceil(n_small),
            "leave moved {} of {} keys, bound {}", moved, K, K.div_ceil(n_small)
        );
    }

    #[test]
    fn routing_is_insertion_order_independent(n in 1usize..9, rot in 0usize..9, salt in 0u64..1_000_000) {
        let shards = shard_set(n);
        let forward = Ring::new(shards.iter().copied());
        // Reversed and rotated build orders of the same set.
        let reversed = Ring::new(shards.iter().rev().copied());
        let rotated = {
            let mut r = shards.clone();
            r.rotate_left(rot % n.max(1));
            Ring::new(r)
        };
        for key in keys(salt).take(2_048) {
            let owner = forward.owner(key);
            prop_assert_eq!(owner, reversed.owner(key));
            prop_assert_eq!(owner, rotated.owner(key));
        }
    }

    #[test]
    fn incremental_and_batch_construction_agree(n in 1usize..9, salt in 0u64..1_000_000) {
        let shards = shard_set(n);
        let batch = Ring::new(shards.iter().copied());
        let mut incremental = Ring::new([]);
        for &s in shards.iter().rev() {
            incremental.add(s);
        }
        prop_assert_eq!(&batch, &incremental);
        for key in keys(salt).take(1_024) {
            prop_assert_eq!(batch.owner(key), incremental.owner(key));
        }
    }

    #[test]
    fn failover_equals_ring_without_the_dead_shard(n in 2usize..9, salt in 0u64..1_000_000) {
        // The router's reroute rule — owner among live shards — must
        // equal what a ring that never contained the dead shard says.
        let ring = Ring::new(shard_set(n));
        let dead = ring.shards()[0];
        let live: Vec<ShardId> = ring.shards().iter().copied().filter(|&s| s != dead).collect();
        let shrunk = Ring::new(live.iter().copied());
        for key in keys(salt).take(2_048) {
            prop_assert_eq!(
                Ring::owner_among(key, live.iter().copied()),
                shrunk.owner(key)
            );
        }
    }
}

#[test]
fn load_is_roughly_balanced_across_four_shards() {
    // Not a property test: one seeded check that rendezvous hashing
    // spreads keys evenly enough that the ⌈K/N⌉ margin above is real.
    let ring = Ring::new(shard_set(4));
    let mut counts = std::collections::BTreeMap::new();
    for key in keys(7) {
        *counts.entry(ring.owner(key).unwrap()).or_insert(0u64) += 1;
    }
    let ideal = K / 4;
    for (&shard, &count) in &counts {
        assert!(
            count.abs_diff(ideal) < ideal / 5,
            "{shard} owns {count} keys, ideal {ideal}"
        );
    }
    let distinct: HashSet<_> = counts.keys().collect();
    assert_eq!(distinct.len(), 4);
}
