//! Wire-codec fidelity: every [`ServiceError`] variant — and every
//! error type reachable through [`ServiceError::Failed`] — round-trips
//! encode → decode loss-free.
//!
//! Coverage is pinned by *exhaustive matches*: each error enum has a
//! `variant_index` function whose `match` has no wildcard arm, so
//! adding a variant upstream breaks this file at compile time, and the
//! tests assert the sample sets hit every index. A new variant can
//! therefore never silently fall through to a generic code — the codec
//! and the samples must both be extended before the workspace builds
//! again.

use adapt::decoy::DecoyError;
use adapt::{AdaptError, DdMask, DdProtocol, DecoyKind, Policy, SearchError};
use adapt_fleet::wire::{
    decode_error, decode_request, decode_response, encode_error, encode_request, encode_response,
};
use adapt_service::{
    DeviceId, Execution, MaskKey, Provenance, Recommendation, Request, Response, SearchBudget,
    ServiceError, TenantId, TierPolicy, Timing,
};
use machine::{ExecError, WireDeadline};
use statevec::SimError;
use transpiler::ScheduleError;

// --- exhaustiveness pins (no wildcard arms!) -------------------------------

const SERVICE_ERROR_VARIANTS: usize = 10;
fn service_error_index(e: &ServiceError) -> usize {
    match e {
        ServiceError::Rejected { .. } => 0,
        ServiceError::DeviceNotServed(_) => 1,
        ServiceError::DeadlineExceeded { .. } => 2,
        ServiceError::DeviceUnhealthy { .. } => 3,
        ServiceError::InvalidConfig { .. } => 4,
        ServiceError::Failed(_) => 5,
        ServiceError::ShuttingDown => 6,
        ServiceError::Internal { .. } => 7,
        ServiceError::Lost => 8,
        ServiceError::QuotaExhausted { .. } => 9,
    }
}

const EXEC_ERROR_VARIANTS: usize = 8;
fn exec_error_index(e: &ExecError) -> usize {
    match e {
        ExecError::TooManyActiveQubits { .. } => 0,
        ExecError::Sim(_) => 1,
        ExecError::Schedule(_) => 2,
        ExecError::JobFailed { .. } => 3,
        ExecError::Timeout { .. } => 4,
        ExecError::RetriesExhausted { .. } => 5,
        ExecError::DeadlineExceeded { .. } => 6,
        ExecError::Cancelled => 7,
    }
}

const ADAPT_ERROR_VARIANTS: usize = 4;
fn adapt_error_index(e: &AdaptError) -> usize {
    match e {
        AdaptError::Exec(_) => 0,
        AdaptError::Decoy(_) => 1,
        AdaptError::Sim(_) => 2,
        AdaptError::Search(_) => 3,
    }
}

const SIM_ERROR_VARIANTS: usize = 3;
fn sim_error_index(e: &SimError) -> usize {
    match e {
        SimError::TooManyQubits { .. } => 0,
        SimError::QubitOutOfRange { .. } => 1,
        SimError::InvalidAmplitudes => 2,
    }
}

const SCHEDULE_ERROR_VARIANTS: usize = 2;
fn schedule_error_index(e: &ScheduleError) -> usize {
    match e {
        ScheduleError::NonFiniteTime { .. } => 0,
        ScheduleError::NegativeDuration { .. } => 1,
    }
}

const DECOY_ERROR_VARIANTS: usize = 2;
fn decoy_error_index(e: &DecoyError) -> usize {
    match e {
        DecoyError::UnsupportedGate(_) => 0,
        DecoyError::Sim(_) => 1,
    }
}

const SEARCH_ERROR_VARIANTS: usize = 2;
fn search_error_index(e: &SearchError) -> usize {
    match e {
        SearchError::TooLarge { .. } => 0,
        SearchError::Exec(_) => 1,
    }
}

const PROVENANCE_VARIANTS: usize = 7;
fn provenance_index(p: &Provenance) -> usize {
    match p {
        Provenance::CacheHit => 0,
        Provenance::FreshSearch => 1,
        Provenance::DegradedAllDd => 2,
        Provenance::PartialSearch => 3,
        Provenance::BreakerFallback => 4,
        Provenance::Heuristic => 5,
        Provenance::StaleServed { .. } => 6,
    }
}

// --- sample sets ------------------------------------------------------------

fn sim_error_samples() -> Vec<SimError> {
    vec![
        SimError::TooManyQubits {
            requested: 40,
            limit: 26,
        },
        SimError::QubitOutOfRange {
            qubit: 17,
            num_qubits: 16,
        },
        SimError::InvalidAmplitudes,
    ]
}

fn schedule_error_samples() -> Vec<ScheduleError> {
    vec![
        ScheduleError::NonFiniteTime {
            event: 3,
            start_ns: 12.5,
            end_ns: f64::INFINITY,
        },
        ScheduleError::NegativeDuration {
            event: 9,
            start_ns: 100.0,
            end_ns: 50.0,
        },
    ]
}

fn exec_error_samples() -> Vec<ExecError> {
    let mut samples = vec![
        ExecError::TooManyActiveQubits {
            active: 30,
            limit: 26,
        },
        ExecError::JobFailed {
            job: 41,
            reason: "injected: control-electronics glitch".to_string(),
        },
        ExecError::Timeout {
            job: 7,
            budget_ms: 250,
        },
        // Recursive payload: a retry loop that exhausted on a nested
        // transient failure.
        ExecError::RetriesExhausted {
            attempts: 4,
            last: Box::new(ExecError::RetriesExhausted {
                attempts: 2,
                last: Box::new(ExecError::JobFailed {
                    job: 3,
                    reason: "flaky".to_string(),
                }),
            }),
        },
        ExecError::DeadlineExceeded {
            elapsed_ms: 260,
            budget_ms: 250,
        },
        ExecError::Cancelled,
    ];
    samples.extend(sim_error_samples().into_iter().map(ExecError::Sim));
    samples.extend(
        schedule_error_samples()
            .into_iter()
            .map(ExecError::Schedule),
    );
    samples
}

fn decoy_error_samples() -> Vec<DecoyError> {
    let mut samples = vec![
        DecoyError::UnsupportedGate(qcirc::Gate::T),
        DecoyError::UnsupportedGate(qcirc::Gate::RZ(0.718281828)),
        DecoyError::UnsupportedGate(qcirc::Gate::U(0.1, -2.5, 3.25)),
    ];
    samples.extend(sim_error_samples().into_iter().map(DecoyError::Sim));
    samples
}

fn search_error_samples() -> Vec<SearchError> {
    let mut samples = vec![SearchError::TooLarge {
        qubits: 24,
        limit: 16,
    }];
    samples.extend(exec_error_samples().into_iter().map(SearchError::Exec));
    samples
}

fn adapt_error_samples() -> Vec<AdaptError> {
    let mut samples = Vec::new();
    samples.extend(exec_error_samples().into_iter().map(AdaptError::Exec));
    samples.extend(decoy_error_samples().into_iter().map(AdaptError::Decoy));
    samples.extend(sim_error_samples().into_iter().map(AdaptError::Sim));
    samples.extend(search_error_samples().into_iter().map(AdaptError::Search));
    samples
}

fn service_error_samples() -> Vec<ServiceError> {
    let mut samples = vec![
        ServiceError::Rejected {
            queue_depth: 32,
            retry_after_ms: 40,
        },
        ServiceError::DeviceNotServed(DeviceId::London),
        ServiceError::DeadlineExceeded {
            elapsed_ms: 251,
            budget_ms: 250,
        },
        ServiceError::DeviceUnhealthy {
            device: DeviceId::Toronto,
            retry_after_ms: 500,
        },
        ServiceError::InvalidConfig {
            reason: "retry policy has max_attempts = 0".to_string(),
        },
        ServiceError::ShuttingDown,
        ServiceError::Internal {
            reason: "worker panicked: index out of bounds".to_string(),
        },
        ServiceError::Lost,
        ServiceError::QuotaExhausted {
            tenant: TenantId(17),
            retry_after_ms: 125,
        },
    ];
    samples.extend(adapt_error_samples().into_iter().map(ServiceError::Failed));
    samples
}

fn assert_covers(name: &str, indices: &[usize], variants: usize) {
    let mut seen = vec![false; variants];
    for &i in indices {
        seen[i] = true;
    }
    for (i, s) in seen.iter().enumerate() {
        assert!(*s, "{name}: no sample for variant index {i}");
    }
}

// --- the fidelity tests -----------------------------------------------------

#[test]
fn every_service_error_variant_round_trips_loss_free() {
    let samples = service_error_samples();
    assert_covers(
        "ServiceError",
        &samples.iter().map(service_error_index).collect::<Vec<_>>(),
        SERVICE_ERROR_VARIANTS,
    );
    for original in &samples {
        let decoded = decode_error(&encode_error(original)).unwrap();
        assert_eq!(&decoded, original, "lossy round-trip for {original}");
    }
}

#[test]
fn every_nested_error_enum_is_fully_sampled() {
    // The nested taxonomies all travel inside ServiceError::Failed;
    // pin that the sample sets exercise every variant of each.
    assert_covers(
        "ExecError",
        &exec_error_samples()
            .iter()
            .map(exec_error_index)
            .collect::<Vec<_>>(),
        EXEC_ERROR_VARIANTS,
    );
    assert_covers(
        "AdaptError",
        &adapt_error_samples()
            .iter()
            .map(adapt_error_index)
            .collect::<Vec<_>>(),
        ADAPT_ERROR_VARIANTS,
    );
    assert_covers(
        "SimError",
        &sim_error_samples()
            .iter()
            .map(sim_error_index)
            .collect::<Vec<_>>(),
        SIM_ERROR_VARIANTS,
    );
    assert_covers(
        "ScheduleError",
        &schedule_error_samples()
            .iter()
            .map(schedule_error_index)
            .collect::<Vec<_>>(),
        SCHEDULE_ERROR_VARIANTS,
    );
    assert_covers(
        "DecoyError",
        &decoy_error_samples()
            .iter()
            .map(decoy_error_index)
            .collect::<Vec<_>>(),
        DECOY_ERROR_VARIANTS,
    );
    assert_covers(
        "SearchError",
        &search_error_samples()
            .iter()
            .map(search_error_index)
            .collect::<Vec<_>>(),
        SEARCH_ERROR_VARIANTS,
    );
}

#[test]
fn nan_float_payloads_survive_bit_exactly() {
    // NaN != NaN, so PartialEq cannot certify this case; re-encoding
    // the decoded value and comparing bytes can. f64 payloads travel as
    // raw IEEE-754 bits, so even a NaN's exact bit pattern survives.
    let nan_error = ServiceError::Failed(AdaptError::Exec(ExecError::Schedule(
        ScheduleError::NonFiniteTime {
            event: 0,
            start_ns: f64::NAN,
            end_ns: f64::NEG_INFINITY,
        },
    )));
    let bytes = encode_error(&nan_error);
    let decoded = decode_error(&bytes).unwrap();
    assert_eq!(encode_error(&decoded), bytes);
}

#[test]
fn every_provenance_variant_round_trips_in_responses() {
    let provenances = [
        Provenance::CacheHit,
        Provenance::FreshSearch,
        Provenance::DegradedAllDd,
        Provenance::PartialSearch,
        Provenance::BreakerFallback,
        Provenance::Heuristic,
        Provenance::StaleServed { age_epochs: 3 },
    ];
    assert_covers(
        "Provenance",
        &provenances.iter().map(provenance_index).collect::<Vec<_>>(),
        PROVENANCE_VARIANTS,
    );
    for (i, &provenance) in provenances.iter().enumerate() {
        let response = Response::Mask(Recommendation {
            key: MaskKey {
                device: DeviceId::Guadalupe,
                epoch: 5,
                circuit_hash: 0xfeed_f00d_dead_beef,
                protocol: DdProtocol::Udd { pulses: 6 },
                decoy: DecoyKind::Seeded { max_seed_qubits: 2 },
            },
            mask: DdMask::from_bits(0b1011, 4),
            decoy_fidelity: 0.987654321,
            decoy_runs: 19,
            provenance,
            degraded: i % 2 == 0,
            timing: Timing {
                queued_us: 120,
                service_us: 4_567,
            },
        });
        let decoded = decode_response(&encode_response(&response)).unwrap();
        match (&response, &decoded) {
            (Response::Mask(a), Response::Mask(b)) => assert_eq!(a, b),
            _ => panic!("variant changed in flight"),
        }
    }
}

#[test]
fn execution_responses_round_trip() {
    for provenance in [None, Some(Provenance::CacheHit)] {
        let response = Response::Execution(Execution {
            device: DeviceId::Paris,
            epoch: 2,
            policy: Policy::Adapt,
            mask: DdMask::from_bits(0b0110, 4),
            fidelity: 0.875,
            pulse_count: 14,
            provenance,
            timing: Timing {
                queued_us: 9,
                service_us: 210,
            },
        });
        let decoded = decode_response(&encode_response(&response)).unwrap();
        match (&response, &decoded) {
            (Response::Execution(a), Response::Execution(b)) => {
                assert_eq!(a.device, b.device);
                assert_eq!(a.epoch, b.epoch);
                assert_eq!(a.policy, b.policy);
                assert_eq!(a.mask, b.mask);
                assert_eq!(a.fidelity.to_bits(), b.fidelity.to_bits());
                assert_eq!(a.pulse_count, b.pulse_count);
                assert_eq!(a.provenance, b.provenance);
                assert_eq!(a.timing, b.timing);
            }
            _ => panic!("variant changed in flight"),
        }
    }
}

#[test]
fn requests_round_trip_including_circuit_and_deadline() {
    let circuit = benchmarks::ghz(4);
    for (request, wire) in [
        (
            Request::RecommendMask {
                circuit: circuit.clone(),
                device: DeviceId::Rome,
                protocol: DdProtocol::Cpmg,
                budget: SearchBudget {
                    shots: 128,
                    trajectories: 4,
                    neighborhood: 4,
                    tier: TierPolicy::SearchOnly,
                },
                deadline_ms: None,
                tenancy: Default::default(),
            },
            WireDeadline {
                budget_ms: Some(400),
                elapsed_ms: 150,
            },
        ),
        (
            Request::Execute {
                circuit: circuit.clone(),
                device: DeviceId::Guadalupe,
                policy: Policy::RuntimeBest,
                deadline_ms: None,
                tenancy: Default::default(),
            },
            WireDeadline::unbounded(),
        ),
    ] {
        let payload = encode_request(&request, wire);
        let (decoded, deadline) = decode_request(&payload).unwrap();
        assert_eq!(deadline, wire);
        assert_eq!(decoded.deadline_ms(), wire.remaining_ms());
        match (&request, &decoded) {
            (
                Request::RecommendMask {
                    circuit: c1,
                    device: d1,
                    protocol: p1,
                    budget: b1,
                    ..
                },
                Request::RecommendMask {
                    circuit: c2,
                    device: d2,
                    protocol: p2,
                    budget: b2,
                    ..
                },
            ) => {
                assert_eq!(d1, d2);
                assert_eq!(p1, p2);
                assert_eq!(b1, b2);
                // The circuit's structural identity survives the QASM
                // hop — the property routing and caching key on.
                assert_eq!(
                    adapt_service::logical_hash(c1),
                    adapt_service::logical_hash(c2)
                );
            }
            (
                Request::Execute {
                    circuit: c1,
                    device: d1,
                    policy: p1,
                    ..
                },
                Request::Execute {
                    circuit: c2,
                    device: d2,
                    policy: p2,
                    ..
                },
            ) => {
                assert_eq!(d1, d2);
                assert_eq!(p1, p2);
                assert_eq!(
                    adapt_service::logical_hash(c1),
                    adapt_service::logical_hash(c2)
                );
            }
            _ => panic!("request variant changed in flight"),
        }
    }
}

// --- checksummed frames (FLAG_CHECKSUM trailer) ----------------------------

mod checksum_frames {
    use adapt_fleet::wire::{
        read_frame, write_frame, FrameError, FrameKind, WireError, FLAG_CHECKSUM, HEADER_BYTES,
        MAGIC, VERSION,
    };

    fn checksummed_frame(payload: &[u8]) -> Vec<u8> {
        let mut buf = Vec::new();
        write_frame(&mut buf, FrameKind::Request, FLAG_CHECKSUM, payload).unwrap();
        buf
    }

    #[test]
    fn checksummed_frame_round_trips_and_reports_stripped_length() {
        let payload = b"adaptive dynamical decoupling";
        let buf = checksummed_frame(payload);
        // The trailer is counted in the declared length on the wire...
        assert_eq!(buf.len(), HEADER_BYTES + payload.len() + 4);
        let (head, got) = read_frame(&mut buf.as_slice(), 1024).unwrap();
        // ...but the returned header reports the stripped payload.
        assert_eq!(head.len as usize, payload.len());
        assert_eq!(head.flags & FLAG_CHECKSUM, FLAG_CHECKSUM);
        assert_eq!(got, payload);
    }

    #[test]
    fn every_payload_bit_flip_is_a_typed_checksum_mismatch() {
        let payload = b"mask-cache fill for epoch 3";
        let clean = checksummed_frame(payload);
        for byte in 0..payload.len() {
            for bit in 0..8 {
                let mut buf = clean.clone();
                buf[HEADER_BYTES + byte] ^= 1 << bit;
                match read_frame(&mut buf.as_slice(), 1024) {
                    Err(FrameError::Wire(WireError::ChecksumMismatch { expected, got })) => {
                        assert_ne!(expected, got);
                    }
                    other => {
                        panic!("flip byte {byte} bit {bit}: want ChecksumMismatch, got {other:?}")
                    }
                }
            }
        }
    }

    #[test]
    fn trailer_bit_flips_are_also_checksum_mismatches() {
        let payload = b"trailer under test";
        let clean = checksummed_frame(payload);
        let trailer_start = HEADER_BYTES + payload.len();
        for byte in trailer_start..clean.len() {
            let mut buf = clean.clone();
            buf[byte] ^= 0x40;
            match read_frame(&mut buf.as_slice(), 1024) {
                Err(FrameError::Wire(WireError::ChecksumMismatch { .. })) => {}
                other => panic!("trailer flip at {byte}: want ChecksumMismatch, got {other:?}"),
            }
        }
    }

    #[test]
    fn checksum_flag_with_room_for_no_trailer_is_unexpected_eof() {
        // Hand-roll a frame that claims FLAG_CHECKSUM but whose declared
        // length cannot even hold the 4-byte trailer.
        let mut buf = Vec::new();
        buf.extend_from_slice(&MAGIC.to_le_bytes());
        buf.push(VERSION);
        buf.push(FrameKind::Request as u8);
        buf.push(FLAG_CHECKSUM);
        buf.push(0);
        buf.extend_from_slice(&2u32.to_le_bytes());
        buf.extend_from_slice(&[0xAA, 0xBB]);
        match read_frame(&mut buf.as_slice(), 1024) {
            Err(FrameError::Wire(WireError::UnexpectedEof { needed: 4, have: 2 })) => {}
            other => panic!("want UnexpectedEof {{4, 2}}, got {other:?}"),
        }
    }

    #[test]
    fn unchecksummed_frames_from_older_peers_still_decode() {
        // A MIN_VERSION peer never sets FLAG_CHECKSUM; corruption is not
        // detected (that is the pre-v2-flag contract) but clean frames
        // must keep decoding unchanged.
        let payload = b"legacy peer";
        let mut buf = Vec::new();
        write_frame(&mut buf, FrameKind::Response, 0, payload).unwrap();
        assert_eq!(buf.len(), HEADER_BYTES + payload.len());
        let (head, got) = read_frame(&mut buf.as_slice(), 1024).unwrap();
        assert_eq!(head.flags & FLAG_CHECKSUM, 0);
        assert_eq!(got, payload);
    }
}
