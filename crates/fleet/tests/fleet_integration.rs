//! End-to-end fleet tests: real sockets, two shards, one router.
//!
//! Everything here leans on the fleet determinism contract — all shards
//! run the same service seed, so a response is a pure function of
//! `(seed, key, budget)` and rerouting may change *where* an answer is
//! computed but never *what* it is.

use adapt::DdProtocol;
use adapt_fleet::ring::route_key;
use adapt_fleet::{
    FleetMap, FleetRouter, Ring, RouterConfig, ShardClient, ShardConfig, ShardId, ShardServer,
    ShardState,
};
use adapt_service::{
    logical_hash, DeviceId, Request, Response, SearchBudget, ServiceConfig, ServiceError,
    TierPolicy,
};
use machine::WireDeadline;

const SEED: u64 = 1117;
const SHARD_IDS: [ShardId; 2] = [ShardId(1), ShardId(8)];

/// GHZ prefixed with a per-qubit X bitmask: distinct `tag` → distinct
/// structural hash, so every tag is its own cache key and ring key.
fn tagged(n: u32, tag: usize) -> qcirc::Circuit {
    let mut c = qcirc::Circuit::new(n as usize);
    for q in 0..n {
        if tag & (1 << q) != 0 {
            c.x(q);
        }
    }
    c.h(0);
    for q in 0..n - 1 {
        c.cx(q, q + 1);
    }
    c.measure_all();
    c
}

fn request(tag: usize) -> Request {
    Request::RecommendMask {
        circuit: tagged(3, tag),
        device: DeviceId::Guadalupe,
        protocol: DdProtocol::Cpmg,
        budget: SearchBudget {
            shots: 32,
            trajectories: 2,
            neighborhood: 2,
            tier: TierPolicy::default(),
        },
        deadline_ms: None,
        tenancy: Default::default(),
    }
}

fn ring_key(req: &Request) -> u64 {
    match req {
        Request::RecommendMask {
            circuit, device, ..
        }
        | Request::Execute {
            circuit, device, ..
        } => route_key(*device, logical_hash(circuit)),
    }
}

fn service_config() -> ServiceConfig {
    ServiceConfig {
        devices: vec![DeviceId::Guadalupe],
        workers: 1,
        seed: SEED,
        virtual_deadlines: true,
        ..ServiceConfig::default()
    }
}

fn start_shard(shard: ShardId, ring: &Ring, map: &FleetMap) -> ShardServer {
    ShardServer::start(ShardConfig {
        shard,
        service: service_config(),
        max_frame_bytes: 1 << 20,
        fleet: Some((ring.clone(), map.clone())),
    })
    .expect("shard starts")
}

fn start_fleet() -> (Vec<ShardServer>, Ring, FleetMap) {
    let ring = Ring::new(SHARD_IDS);
    let map = FleetMap::new();
    let shards = SHARD_IDS
        .iter()
        .map(|&s| start_shard(s, &ring, &map))
        .collect();
    (shards, ring, map)
}

/// The semantic identity of a mask response: everything except
/// wall-clock timing, which legitimately differs between shards.
fn mask_digest(response: &Response) -> String {
    match response {
        Response::Mask(r) => format!(
            "{:?}|{:?}|{:016x}|{}|{:?}",
            r.key,
            r.mask,
            r.decoy_fidelity.to_bits(),
            r.decoy_runs,
            r.provenance
        ),
        Response::Execution(_) => panic!("expected a mask recommendation"),
    }
}

fn metric_value(exposition: &str, name: &str) -> u64 {
    exposition
        .lines()
        .find(|l| l.starts_with(name) && !l.starts_with('#'))
        .and_then(|l| l.rsplit(' ').next())
        .and_then(|v| v.parse().ok())
        .unwrap_or_else(|| panic!("metric {name} missing"))
}

#[test]
fn forwarding_lands_keys_on_their_ring_owner_with_identical_answers() {
    let (shards, ring, _map) = start_fleet();

    // Find a tag owned by each shard so both directions get exercised.
    let mut covered = 0u32;
    for tag in 0..16 {
        let req = request(tag);
        let owner = ring.owner(ring_key(&req)).unwrap();
        let non_owner = shards.iter().find(|s| s.shard() != owner).unwrap();
        let owner_server = shards.iter().find(|s| s.shard() == owner).unwrap();

        // Enter through the WRONG shard: the frame must take the
        // forwarding hop and come back with the owner's answer.
        let mut entry = ShardClient::new(non_owner.addr());
        let via_forward = entry
            .call(&req, WireDeadline::unbounded())
            .expect("forwarded call succeeds");

        // The same request straight at the owner must answer
        // identically (now as a cache hit on the same instance).
        let mut direct = ShardClient::new(owner_server.addr());
        let via_owner = direct
            .call(&req, WireDeadline::unbounded())
            .expect("direct call succeeds");

        match (&via_forward, &via_owner) {
            (Response::Mask(f), Response::Mask(o)) => {
                assert_eq!(f.key, o.key);
                assert_eq!(f.mask, o.mask);
                assert_eq!(f.decoy_fidelity.to_bits(), o.decoy_fidelity.to_bits());
            }
            _ => panic!("expected mask recommendations"),
        }
        covered |= 1 << SHARD_IDS.iter().position(|&s| s == owner).unwrap();
        if covered == 0b11 && tag >= 3 {
            break;
        }
    }
    assert_eq!(covered, 0b11, "tags 0..16 never covered both shards");

    // Every entry through a non-owner counts a forward on that shard.
    let total_forwards: u64 = shards
        .iter()
        .map(|s| {
            let mut c = ShardClient::new(s.addr());
            metric_value(&c.metrics().unwrap(), "adapt_fleet_forwards_total")
        })
        .sum();
    assert!(
        total_forwards >= 4,
        "expected forwards, saw {total_forwards}"
    );

    for shard in shards {
        let report = shard.stop();
        assert_eq!(report.stats.worker_panics, 0);
    }
}

#[test]
fn router_reroutes_deterministically_across_kill_and_restart() {
    let (mut shards, ring, map) = start_fleet();
    let endpoints: Vec<_> = shards.iter().map(|s| (s.shard(), s.addr())).collect();
    let router = FleetRouter::new(
        RouterConfig {
            failure_threshold: 1,
            cooldown_requests: 4,
            max_attempts: 2,
        },
        &endpoints,
    );

    // A key owned by the shard we are about to kill.
    let victim = shards[0].shard();
    let tag = (0..64)
        .find(|&t| ring.owner(ring_key(&request(t))).unwrap() == victim)
        .expect("some tag lands on the victim");
    let req = request(tag);

    let steady = router.call(req.clone()).expect("steady call");
    assert_eq!(steady.shard, victim);
    assert!(!steady.rerouted);
    let steady_digest = mask_digest(&steady.response);

    // Kill the owner. The router must fail over to the surviving shard
    // and — same seed — get the bit-identical semantic answer.
    let report = shards.remove(0).stop();
    assert_eq!(report.stats.worker_panics, 0);
    let failover = router.call(req.clone()).expect("failover call");
    assert_eq!(failover.shard, shards[0].shard());
    assert!(failover.rerouted);
    assert_eq!(mask_digest(&failover.response), steady_digest);

    // One transport failure (threshold 1) opened the victim's breaker:
    // the next call skips it without paying a connection attempt.
    let state = router
        .shard_states()
        .into_iter()
        .find(|&(s, _)| s == victim)
        .unwrap()
        .1;
    assert!(matches!(state, ShardState::Open { .. }), "got {state:?}");
    let again = router.call(req.clone()).expect("fail-fast call");
    assert!(again.rerouted);

    // Restart the shard under the same identity and seed, re-point the
    // router: ownership must return, with the same answer as ever.
    let reborn = start_shard(victim, &ring, &map);
    router.set_endpoint(victim, reborn.addr());
    shards.insert(0, reborn);
    let recovered = router.call(req).expect("post-restart call");
    assert_eq!(recovered.shard, victim);
    assert!(!recovered.rerouted);
    assert_eq!(mask_digest(&recovered.response), steady_digest);

    for shard in shards {
        assert_eq!(shard.stop().stats.worker_panics, 0);
    }
}

#[test]
fn fleet_metrics_merge_with_per_shard_labels() {
    let (shards, _ring, _map) = start_fleet();
    let endpoints: Vec<_> = shards.iter().map(|s| (s.shard(), s.addr())).collect();
    let router = FleetRouter::new(RouterConfig::default(), &endpoints);
    router.call(request(5)).expect("one routed call");

    let doc = router.metrics();
    for label in ["shard=\"1\"", "shard=\"8\"", "shard=\"router\""] {
        assert!(doc.contains(label), "missing {label} in:\n{doc}");
    }
    assert!(doc.contains("adapt_service_accepted_total{shard=\"1\"}"));
    assert!(doc.contains("adapt_fleet_router_routed_total{shard=\"router\"} 1"));
    // Merging must not duplicate TYPE headers per shard.
    let type_lines = doc
        .lines()
        .filter(|l| l.starts_with("# TYPE adapt_fleet_frames_total "))
        .count();
    assert_eq!(type_lines, 1);

    for shard in shards {
        shard.stop();
    }
}

#[test]
fn born_expired_wire_deadline_is_rejected_typed_not_served() {
    let (shards, _ring, _map) = start_fleet();
    let mut client = ShardClient::new(shards[0].addr());

    // 40 ms granted upstream, 40 ms already spent: the deadline crosses
    // the wire as Some(0) remaining and must be refused at admission —
    // never silently reinterpreted as unbounded.
    let spent = WireDeadline {
        budget_ms: Some(40),
        elapsed_ms: 40,
    };
    match client.call(&request(9), spent) {
        Err(adapt_fleet::ClientError::Service(ServiceError::DeadlineExceeded { .. })) => {}
        other => panic!("expected a typed deadline rejection, got {other:?}"),
    }

    for shard in shards {
        shard.stop();
    }
}
