//! Blocking wire client for one shard.

use crate::wire::{self, FrameError, FrameKind, WireError, DEFAULT_MAX_FRAME_BYTES};
use adapt_service::{Request, Response, ServiceError};
use machine::WireDeadline;
use std::net::{SocketAddr, TcpStream};
use std::time::Duration;

/// What a client call can fail with, separated by layer: transport
/// failures are the router's signal to reroute, service errors are the
/// shard's *answer* and must not be retried blindly.
#[derive(Debug)]
pub enum ClientError {
    /// The TCP connection failed (connect, read, write, or peer reset).
    /// The shard may be dead — rerouting territory.
    Transport(std::io::Error),
    /// Bytes arrived but were not a valid frame — a protocol bug or
    /// version skew, not a reroutable outage.
    Wire(WireError),
    /// The shard answered with a typed service error.
    Service(ServiceError),
}

impl std::fmt::Display for ClientError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ClientError::Transport(e) => write!(f, "shard transport failed: {e}"),
            ClientError::Wire(e) => write!(f, "shard protocol violation: {e}"),
            ClientError::Service(e) => write!(f, "shard answered with an error: {e}"),
        }
    }
}

impl std::error::Error for ClientError {}

impl From<FrameError> for ClientError {
    fn from(e: FrameError) -> Self {
        match e {
            FrameError::Io(e) => ClientError::Transport(e),
            FrameError::Wire(e) => ClientError::Wire(e),
        }
    }
}

/// A blocking client holding one connection to one shard, reconnecting
/// lazily after transport failures.
#[derive(Debug)]
pub struct ShardClient {
    addr: SocketAddr,
    stream: Option<TcpStream>,
    max_frame: u32,
    connect_timeout: Duration,
}

impl ShardClient {
    /// A client for the shard at `addr`. No connection is made until
    /// the first call.
    pub fn new(addr: SocketAddr) -> Self {
        ShardClient {
            addr,
            stream: None,
            max_frame: DEFAULT_MAX_FRAME_BYTES,
            connect_timeout: Duration::from_millis(500),
        }
    }

    /// The shard address this client dials.
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    fn connected(&mut self) -> Result<&mut TcpStream, ClientError> {
        if self.stream.is_none() {
            let stream = TcpStream::connect_timeout(&self.addr, self.connect_timeout)
                .map_err(ClientError::Transport)?;
            stream.set_nodelay(true).map_err(ClientError::Transport)?;
            self.stream = Some(stream);
        }
        Ok(self.stream.as_mut().expect("just connected"))
    }

    fn roundtrip(
        &mut self,
        kind: FrameKind,
        payload: &[u8],
    ) -> Result<(FrameKind, Vec<u8>), ClientError> {
        let max_frame = self.max_frame;
        let result = (|| {
            let stream = self.connected()?;
            wire::write_frame(stream, kind, wire::FLAG_CHECKSUM, payload)
                .map_err(ClientError::Transport)?;
            let (header, body) = wire::read_frame(stream, max_frame)?;
            Ok((header.kind, body))
        })();
        if matches!(result, Err(ClientError::Transport(_))) {
            // Poison the connection so the next call redials.
            self.stream = None;
        }
        result
    }

    /// Sends a request with its in-band deadline and blocks for the
    /// answer.
    ///
    /// # Errors
    ///
    /// [`ClientError::Transport`] when the shard is unreachable,
    /// [`ClientError::Wire`] on protocol violations, and
    /// [`ClientError::Service`] when the shard answers with a typed
    /// [`ServiceError`].
    pub fn call(
        &mut self,
        request: &Request,
        deadline: WireDeadline,
    ) -> Result<Response, ClientError> {
        let payload = wire::encode_request(request, deadline);
        let (kind, body) = self.roundtrip(FrameKind::Request, &payload)?;
        match kind {
            FrameKind::Response => wire::decode_response(&body).map_err(ClientError::Wire),
            FrameKind::Error => Err(ClientError::Service(
                wire::decode_error(&body).map_err(ClientError::Wire)?,
            )),
            other => Err(ClientError::Wire(WireError::UnknownTag {
                what: "reply kind",
                tag: other as u8,
            })),
        }
    }

    /// Fetches the shard's Prometheus exposition.
    ///
    /// # Errors
    ///
    /// Same layering as [`Self::call`].
    pub fn metrics(&mut self) -> Result<String, ClientError> {
        let (kind, body) = self.roundtrip(FrameKind::MetricsRequest, &[])?;
        match kind {
            FrameKind::MetricsResponse => {
                String::from_utf8(body).map_err(|_| ClientError::Wire(WireError::BadUtf8))
            }
            FrameKind::Error => Err(ClientError::Service(
                wire::decode_error(&body).map_err(ClientError::Wire)?,
            )),
            other => Err(ClientError::Wire(WireError::UnknownTag {
                what: "reply kind",
                tag: other as u8,
            })),
        }
    }
}
