//! `adapt-fleet`: horizontal scale-out for the mask-recommendation
//! service.
//!
//! A single [`adapt_service::MaskService`] is an in-process worker pool;
//! this crate turns N of them into one fleet:
//!
//! - [`wire`] — a small, versioned, length-prefixed binary protocol over
//!   TCP. Requests, responses and every [`adapt_service::ServiceError`]
//!   variant map 1:1 onto typed frames (loss-free, pinned by an
//!   exhaustive round-trip test), and the request deadline crosses the
//!   wire in-band as a [`machine::WireDeadline`] (total budget + time
//!   already spent upstream), so deadline propagation keeps working
//!   across hops.
//! - [`ring`] — a rendezvous (highest-random-weight) hash ring mapping
//!   `(device, logical circuit hash)` route keys onto shard ids.
//!   Insertion-order independent, and exactly monotone under single
//!   join/leave: the only keys that remap are the ones the joining
//!   (leaving) shard owns.
//! - [`server`] — [`server::ShardServer`] fronts one `MaskService` with
//!   the wire protocol, and forwards requests for keys it does not own
//!   to the owning shard (cross-shard cache fill), so the owner's
//!   in-process single-flight stays the *fleet-wide* single-flight: one
//!   search per key, no matter which shard a client hits.
//! - [`client`] — a blocking wire client with reconnect.
//! - [`router`] — [`router::FleetRouter`] routes each request to its
//!   ring owner, keeps a per-shard transport breaker (consecutive
//!   connection failures open it; a request-count cooldown closes it
//!   through a half-open probe), fails fast over open shards by
//!   rerouting to the next shard in the key's deterministic preference
//!   order, and aggregates every shard's Prometheus exposition into one
//!   fleet document with per-shard labels
//!   ([`adapt_obs::merge_expositions`]).
//!
//! # Determinism across the fleet
//!
//! Every shard is configured with the *same* service seed, so a
//! response is a pure function of `(seed, key, budget)` regardless of
//! which shard serves it. Rerouting around a dead shard therefore
//! changes *where* a key is answered but never *what* the answer is —
//! the property the fleet chaos harness pins with per-shard replay
//! digests.

#![warn(missing_docs)]

pub mod client;
pub mod ring;
pub mod router;
pub mod server;
pub mod wire;

pub use client::{ClientError, ShardClient};
pub use ring::{route_key, Ring, ShardId};
pub use router::{FleetError, FleetRouter, RoutedResponse, RouterConfig, ShardState};
pub use server::{FleetMap, ShardConfig, ShardReport, ShardServer};
pub use wire::{FrameHeader, FrameKind, WireError, FLAG_CHECKSUM, FLAG_FORWARDED, MAGIC, VERSION};
