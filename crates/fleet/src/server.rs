//! One shard of the fleet: a [`MaskService`] behind the wire protocol.
//!
//! A [`ShardServer`] owns a TCP listener on loopback, one handler
//! thread per connection, and the service instance itself. Incoming
//! [`FrameKind::Request`] frames are decoded, checked against the
//! fleet's hash ring, and either served locally or — when the key
//! belongs to another shard — *forwarded* to the owner over a fresh
//! connection, with the response relayed back verbatim.
//!
//! # Cross-shard single-flight
//!
//! The mask cache's single-flight ticket dedups concurrent searches for
//! one key *within* a service instance. Forwarding extends that to the
//! fleet: because every shard routes a key to the same ring owner, all
//! concurrent requests for a key — wherever they enter — land in one
//! instance and coalesce behind one search. A forwarded frame carries
//! [`FLAG_FORWARDED`] and is always served locally by the receiver, so
//! a stale ring view can cost one extra hop but never a forwarding
//! cycle (and never a duplicate search: the hop still ends at exactly
//! one instance per key).

use crate::ring::{route_key, Ring, ShardId};
use crate::wire::{
    self, FrameError, FrameKind, WireError, DEFAULT_MAX_FRAME_BYTES, FLAG_CHECKSUM, FLAG_FORWARDED,
};
use adapt_service::{
    logical_hash, MaskService, Request, ServiceConfig, ServiceError, ServiceStats,
};
use std::collections::HashMap;
use std::io::ErrorKind;
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex, RwLock};
use std::thread::JoinHandle;
use std::time::Duration;

/// The fleet's shared shard → address directory. Servers consult it to
/// forward misrouted keys to their owner; the chaos harness updates it
/// as shards die and restart (a restarted shard keeps its [`ShardId`]
/// but gets a fresh ephemeral port).
#[derive(Debug, Clone, Default)]
pub struct FleetMap {
    inner: Arc<RwLock<HashMap<ShardId, SocketAddr>>>,
}

impl FleetMap {
    /// An empty directory.
    pub fn new() -> Self {
        Self::default()
    }

    /// Registers (or re-registers) a shard's address.
    pub fn set(&self, shard: ShardId, addr: SocketAddr) {
        self.inner
            .write()
            .unwrap_or_else(|e| e.into_inner())
            .insert(shard, addr);
    }

    /// Removes a shard (a kill the rest of the fleet should see).
    pub fn remove(&self, shard: ShardId) {
        self.inner
            .write()
            .unwrap_or_else(|e| e.into_inner())
            .remove(&shard);
    }

    /// The shard's current address, if registered.
    pub fn get(&self, shard: ShardId) -> Option<SocketAddr> {
        self.inner
            .read()
            .unwrap_or_else(|e| e.into_inner())
            .get(&shard)
            .copied()
    }
}

/// Configuration of one shard server.
#[derive(Debug, Clone)]
pub struct ShardConfig {
    /// This shard's stable identity in the ring.
    pub shard: ShardId,
    /// The wrapped service's configuration. For fleet-deterministic
    /// answers every shard must carry the *same* seed (responses are a
    /// pure function of `(seed, key, budget)`).
    pub service: ServiceConfig,
    /// Upper bound on accepted frame payloads.
    pub max_frame_bytes: u32,
    /// The fleet ring this shard checks key ownership against, plus the
    /// shared address directory for forwarding. `None` disables
    /// forwarding (single-shard deployments).
    pub fleet: Option<(Ring, FleetMap)>,
}

impl ShardConfig {
    /// A standalone (non-forwarding) shard over `service`.
    pub fn standalone(shard: ShardId, service: ServiceConfig) -> Self {
        ShardConfig {
            shard,
            service,
            max_frame_bytes: DEFAULT_MAX_FRAME_BYTES,
            fleet: None,
        }
    }
}

/// What a stopped shard leaves behind.
#[derive(Debug, Clone)]
pub struct ShardReport {
    /// The shard's identity.
    pub shard: ShardId,
    /// The address it was serving on.
    pub addr: SocketAddr,
    /// Final service statistics (worker panics included).
    pub stats: ServiceStats,
}

struct ServerShared {
    shard: ShardId,
    stop: AtomicBool,
    service: MaskService,
    max_frame: u32,
    fleet: Option<(Ring, FleetMap)>,
    // Live connection streams, kept so `stop` can shut them down and
    // unblock their handler threads mid-read.
    conns: Mutex<Vec<TcpStream>>,
    frames_total: adapt_obs::Counter,
    forwards_total: adapt_obs::Counter,
    forward_failures_total: adapt_obs::Counter,
    wire_errors_total: adapt_obs::Counter,
}

/// A running shard: listener + handler threads + the wrapped service.
pub struct ShardServer {
    shared: Arc<ServerShared>,
    addr: SocketAddr,
    accept: Option<JoinHandle<Vec<JoinHandle<()>>>>,
}

impl ShardServer {
    /// Binds a loopback listener on an ephemeral port and starts
    /// serving. Registers the address in the fleet map when one is
    /// configured.
    ///
    /// # Errors
    ///
    /// [`ServiceError::InvalidConfig`] when the wrapped service rejects
    /// its configuration; `Internal` when the socket cannot be bound.
    pub fn start(config: ShardConfig) -> Result<ShardServer, ServiceError> {
        let listener = TcpListener::bind(("127.0.0.1", 0)).map_err(|e| ServiceError::Internal {
            reason: format!("bind failed: {e}"),
        })?;
        listener
            .set_nonblocking(true)
            .map_err(|e| ServiceError::Internal {
                reason: format!("set_nonblocking failed: {e}"),
            })?;
        let addr = listener.local_addr().map_err(|e| ServiceError::Internal {
            reason: format!("local_addr failed: {e}"),
        })?;
        let service = MaskService::try_start(config.service)?;
        let registry = service.metrics_registry();
        let shared = Arc::new(ServerShared {
            shard: config.shard,
            stop: AtomicBool::new(false),
            service,
            max_frame: config.max_frame_bytes,
            fleet: config.fleet,
            conns: Mutex::new(Vec::new()),
            frames_total: registry.counter("adapt_fleet_frames_total"),
            forwards_total: registry.counter("adapt_fleet_forwards_total"),
            forward_failures_total: registry.counter("adapt_fleet_forward_failures_total"),
            wire_errors_total: registry.counter("adapt_fleet_wire_errors_total"),
        });
        if let Some((_, map)) = &shared.fleet {
            map.set(config.shard, addr);
        }
        let accept_shared = Arc::clone(&shared);
        let accept = std::thread::Builder::new()
            .name(format!("{}-accept", config.shard))
            .spawn(move || accept_loop(listener, accept_shared))
            .map_err(|e| ServiceError::Internal {
                reason: format!("spawn failed: {e}"),
            })?;
        Ok(ShardServer {
            shared,
            addr,
            accept: Some(accept),
        })
    }

    /// The address clients dial.
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// This shard's identity.
    pub fn shard(&self) -> ShardId {
        self.shared.shard
    }

    /// Direct handle onto the wrapped service (the harness advances
    /// epochs and reads stats through it).
    pub fn service(&self) -> &MaskService {
        &self.shared.service
    }

    /// Stops the shard: shuts every live connection down (in-flight
    /// requests get a transport error at the client, like a real kill),
    /// joins all threads, shuts the service down and reports its final
    /// stats. Deregisters from the fleet map.
    pub fn stop(mut self) -> ShardReport {
        self.shared.stop.store(true, Ordering::SeqCst);
        for conn in self
            .shared
            .conns
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .drain(..)
        {
            let _ = conn.shutdown(std::net::Shutdown::Both);
        }
        if let Some(accept) = self.accept.take() {
            if let Ok(handlers) = accept.join() {
                for h in handlers {
                    let _ = h.join();
                }
            }
        }
        if let Some((_, map)) = &self.shared.fleet {
            map.remove(self.shared.shard);
        }
        let shared = Arc::try_unwrap(self.shared)
            .unwrap_or_else(|_| panic!("shard handler threads still hold the server state"));
        let stats = shared.service.shutdown();
        ShardReport {
            shard: shared.shard,
            addr: self.addr,
            stats,
        }
    }
}

fn accept_loop(listener: TcpListener, shared: Arc<ServerShared>) -> Vec<JoinHandle<()>> {
    let mut handlers = Vec::new();
    while !shared.stop.load(Ordering::SeqCst) {
        match listener.accept() {
            Ok((stream, _)) => {
                let _ = stream.set_read_timeout(Some(Duration::from_millis(25)));
                let _ = stream.set_nodelay(true);
                if let Ok(clone) = stream.try_clone() {
                    shared
                        .conns
                        .lock()
                        .unwrap_or_else(|e| e.into_inner())
                        .push(clone);
                }
                let conn_shared = Arc::clone(&shared);
                if let Ok(h) = std::thread::Builder::new()
                    .name(format!("{}-conn", shared.shard))
                    .spawn(move || handle_connection(stream, conn_shared))
                {
                    handlers.push(h);
                }
            }
            Err(e) if e.kind() == ErrorKind::WouldBlock => {
                std::thread::sleep(Duration::from_millis(2));
            }
            Err(_) => break,
        }
    }
    handlers
}

/// Whether a read error is the idle-poll timeout rather than a real
/// failure. Both kinds appear across platforms.
fn is_poll_timeout(e: &std::io::Error) -> bool {
    matches!(e.kind(), ErrorKind::WouldBlock | ErrorKind::TimedOut)
}

fn handle_connection(mut stream: TcpStream, shared: Arc<ServerShared>) {
    loop {
        if shared.stop.load(Ordering::SeqCst) {
            return;
        }
        let (header, payload) = match wire::read_frame(&mut stream, shared.max_frame) {
            Ok(frame) => frame,
            Err(FrameError::Io(e)) if is_poll_timeout(&e) => continue,
            Err(FrameError::Io(_)) => return, // peer hung up / kill
            Err(FrameError::Wire(e)) => {
                // A malformed frame leaves the stream unsynchronized:
                // answer with a typed error and drop the connection.
                shared.wire_errors_total.inc();
                let err = ServiceError::Internal {
                    reason: format!("wire: {e}"),
                };
                let _ = wire::write_frame(
                    &mut stream,
                    FrameKind::Error,
                    FLAG_CHECKSUM,
                    &wire::encode_error(&err),
                );
                return;
            }
        };
        shared.frames_total.inc();
        match header.kind {
            FrameKind::Request => {
                let forwarded = header.flags & FLAG_FORWARDED != 0;
                serve_request(&mut stream, &shared, &payload, forwarded);
            }
            FrameKind::MetricsRequest => {
                let text = shared.service.metrics_registry().render_prometheus();
                if wire::write_frame(
                    &mut stream,
                    FrameKind::MetricsResponse,
                    FLAG_CHECKSUM,
                    text.as_bytes(),
                )
                .is_err()
                {
                    return;
                }
            }
            // Response frames arriving at a server are protocol misuse.
            FrameKind::Response | FrameKind::Error | FrameKind::MetricsResponse => {
                shared.wire_errors_total.inc();
                let err = ServiceError::Internal {
                    reason: format!("unexpected client frame {:?}", header.kind),
                };
                let _ = wire::write_frame(
                    &mut stream,
                    FrameKind::Error,
                    FLAG_CHECKSUM,
                    &wire::encode_error(&err),
                );
                return;
            }
        }
    }
}

/// Serve one request frame: decode, decide ownership, forward or answer
/// locally, write exactly one Response/Error frame back.
fn serve_request(stream: &mut TcpStream, shared: &ServerShared, payload: &[u8], forwarded: bool) {
    let request = match wire::decode_request(payload) {
        Ok((request, _deadline)) => request,
        Err(e) => {
            shared.wire_errors_total.inc();
            let err = ServiceError::Internal {
                reason: format!("wire: {e}"),
            };
            let _ = wire::write_frame(
                stream,
                FrameKind::Error,
                FLAG_CHECKSUM,
                &wire::encode_error(&err),
            );
            return;
        }
    };

    // Ownership check: a key we don't own is forwarded to its owner —
    // unless this frame already took that hop (FLAG_FORWARDED), in
    // which case we are the authority the sender chose and must answer.
    if !forwarded {
        if let Some((ring, map)) = &shared.fleet {
            let key = match &request {
                Request::RecommendMask {
                    circuit, device, ..
                }
                | Request::Execute {
                    circuit, device, ..
                } => route_key(*device, logical_hash(circuit)),
            };
            if let Some(owner) = ring.owner(key) {
                if owner != shared.shard {
                    if let Some(owner_addr) = map.get(owner) {
                        match forward(owner_addr, payload, shared.max_frame) {
                            Ok((kind, body)) => {
                                shared.forwards_total.inc();
                                let _ = wire::write_frame(stream, kind, FLAG_CHECKSUM, &body);
                                return;
                            }
                            Err(_) => {
                                // Owner unreachable: serve locally (the
                                // answer is seed-deterministic anyway;
                                // only cache locality is lost).
                                shared.forward_failures_total.inc();
                            }
                        }
                    } else {
                        shared.forward_failures_total.inc();
                    }
                }
            }
        }
    }

    match shared.service.call(request) {
        Ok(response) => {
            let _ = wire::write_frame(
                stream,
                FrameKind::Response,
                0,
                &wire::encode_response(&response),
            );
        }
        Err(err) => {
            let _ = wire::write_frame(
                stream,
                FrameKind::Error,
                FLAG_CHECKSUM,
                &wire::encode_error(&err),
            );
        }
    }
}

/// One forwarding hop: replay the raw request payload at the owner with
/// [`FLAG_FORWARDED`] set, return its raw answer frame.
fn forward(
    owner: SocketAddr,
    payload: &[u8],
    max_frame: u32,
) -> Result<(FrameKind, Vec<u8>), FrameError> {
    let mut stream = TcpStream::connect_timeout(&owner, Duration::from_millis(500))?;
    stream.set_nodelay(true)?;
    wire::write_frame(
        &mut stream,
        FrameKind::Request,
        FLAG_FORWARDED | FLAG_CHECKSUM,
        payload,
    )?;
    let (header, body) = wire::read_frame(&mut stream, max_frame)?;
    match header.kind {
        FrameKind::Response | FrameKind::Error => Ok((header.kind, body)),
        other => Err(WireError::UnknownTag {
            what: "forwarded reply kind",
            tag: other as u8,
        }
        .into()),
    }
}
