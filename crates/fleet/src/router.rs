//! The fleet router: ring-based request routing with per-shard
//! transport breakers, deterministic failover, and fleet-wide metrics
//! aggregation.
//!
//! Each request's route key gets a deterministic preference order over
//! shards from the rendezvous ring ([`crate::ring::Ring::ranked`]).
//! The router walks that order: shards whose breaker is open are
//! skipped without a connection attempt (fail-fast), transport failures
//! count against the shard and open its breaker after a threshold, and
//! the first live shard answers. Because the order is a pure function
//! of the key and the set of open breakers changes only on observed
//! failures, *rerouting is deterministic*: while shard S is down, every
//! key S owned is served by exactly the shard
//! `owner_among(key, live \ {S})` — the same shard a ring without S
//! would name.
//!
//! Breaker cooldown is counted in *routed requests*, not wall time, so
//! failover schedules replay identically run-to-run.

use crate::client::{ClientError, ShardClient};
use crate::ring::{route_key, Ring, ShardId};
use adapt_service::{logical_hash, Request, Response, ServiceError};
use machine::WireDeadline;
use std::collections::BTreeMap;
use std::net::SocketAddr;
use std::sync::{Arc, Mutex, RwLock};

/// Router tuning.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RouterConfig {
    /// Consecutive transport failures that open a shard's breaker.
    pub failure_threshold: u32,
    /// Routed requests that must skip an open shard before it is
    /// probed again (request-count cooldown: deterministic, no clocks).
    pub cooldown_requests: u32,
    /// Maximum shards tried per request before giving up.
    pub max_attempts: u32,
}

impl Default for RouterConfig {
    fn default() -> Self {
        RouterConfig {
            failure_threshold: 3,
            cooldown_requests: 64,
            max_attempts: 3,
        }
    }
}

/// A shard's breaker state as the router sees it.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ShardState {
    /// Healthy: requests flow.
    Closed,
    /// Failing: skipped without a connection attempt for the remaining
    /// cooldown requests.
    Open {
        /// Routed requests left before the next probe.
        cooldown_left: u32,
    },
    /// Cooldown elapsed: the next request owning this shard probes it.
    HalfOpen,
}

#[derive(Debug)]
struct Health {
    consecutive_failures: u32,
    state: ShardState,
}

struct Slot {
    addr: RwLock<SocketAddr>,
    /// Idle connection pool: popped per call, pushed back on success,
    /// dropped on failure. Callers never block on another call's
    /// network round-trip.
    pool: Mutex<Vec<ShardClient>>,
    health: Mutex<Health>,
}

impl Slot {
    fn new(addr: SocketAddr) -> Self {
        Slot {
            addr: RwLock::new(addr),
            pool: Mutex::new(Vec::new()),
            health: Mutex::new(Health {
                consecutive_failures: 0,
                state: ShardState::Closed,
            }),
        }
    }
}

/// A successful routed call: the answer plus where it came from.
#[derive(Debug)]
pub struct RoutedResponse {
    /// The shard's answer.
    pub response: Response,
    /// The shard that served it.
    pub shard: ShardId,
    /// Whether the serving shard differs from the key's ring owner
    /// (failover took effect).
    pub rerouted: bool,
}

/// Typed routing failures.
#[derive(Debug)]
pub enum FleetError {
    /// The router has no shards at all.
    NoShards,
    /// Every attempted shard failed at the transport/protocol layer;
    /// the last failure is attached.
    AllShardsDown {
        /// Shards attempted (or skipped fail-fast) before giving up.
        attempts: u32,
        /// The final transport/protocol failure.
        last: ClientError,
    },
    /// A shard answered with a typed service error (authoritative — not
    /// retried elsewhere: the answer would be identical by the fleet
    /// determinism contract, except for shard-local admission errors
    /// the caller may back off and resubmit on).
    Service(ServiceError),
}

impl std::fmt::Display for FleetError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FleetError::NoShards => write!(f, "fleet router has no shards"),
            FleetError::AllShardsDown { attempts, last } => {
                write!(f, "all shards down after {attempts} attempts: {last}")
            }
            FleetError::Service(e) => write!(f, "{e}"),
        }
    }
}

impl std::error::Error for FleetError {}

/// The fleet-facing request entry point. Cloneable across client
/// threads ([`Arc`] inside).
#[derive(Clone)]
pub struct FleetRouter {
    inner: Arc<RouterInner>,
}

struct RouterInner {
    ring: Ring,
    cfg: RouterConfig,
    slots: BTreeMap<ShardId, Slot>,
    registry: Arc<adapt_obs::Registry>,
    routed_total: adapt_obs::Counter,
    rerouted_total: adapt_obs::Counter,
    failfast_skips_total: adapt_obs::Counter,
    breaker_opens_total: adapt_obs::Counter,
}

impl FleetRouter {
    /// A router over the given shard endpoints.
    pub fn new(cfg: RouterConfig, endpoints: &[(ShardId, SocketAddr)]) -> Self {
        let registry = Arc::new(adapt_obs::Registry::new());
        let slots: BTreeMap<ShardId, Slot> = endpoints
            .iter()
            .map(|&(shard, addr)| (shard, Slot::new(addr)))
            .collect();
        let ring = Ring::new(slots.keys().copied());
        FleetRouter {
            inner: Arc::new(RouterInner {
                ring,
                cfg,
                routed_total: registry.counter("adapt_fleet_router_routed_total"),
                rerouted_total: registry.counter("adapt_fleet_router_rerouted_total"),
                failfast_skips_total: registry.counter("adapt_fleet_router_failfast_skips_total"),
                breaker_opens_total: registry.counter("adapt_fleet_router_breaker_opens_total"),
                slots,
                registry,
            }),
        }
    }

    /// The ring the router hashes over.
    pub fn ring(&self) -> &Ring {
        &self.inner.ring
    }

    /// The router's own metrics registry (routed/rerouted/fail-fast
    /// counters).
    pub fn registry(&self) -> Arc<adapt_obs::Registry> {
        Arc::clone(&self.inner.registry)
    }

    /// Re-points a shard at a new address (a restart) and resets its
    /// breaker to closed. Unknown shards are ignored — the ring is
    /// fixed at construction; restarts keep identities.
    pub fn set_endpoint(&self, shard: ShardId, addr: SocketAddr) {
        if let Some(slot) = self.inner.slots.get(&shard) {
            *slot.addr.write().unwrap_or_else(|e| e.into_inner()) = addr;
            slot.pool.lock().unwrap_or_else(|e| e.into_inner()).clear();
            let mut health = slot.health.lock().unwrap_or_else(|e| e.into_inner());
            health.consecutive_failures = 0;
            health.state = ShardState::Closed;
        }
    }

    /// Current breaker state per shard.
    pub fn shard_states(&self) -> Vec<(ShardId, ShardState)> {
        self.inner
            .slots
            .iter()
            .map(|(&shard, slot)| {
                (
                    shard,
                    slot.health.lock().unwrap_or_else(|e| e.into_inner()).state,
                )
            })
            .collect()
    }

    /// Routes one request: deterministic shard preference order,
    /// fail-fast over open breakers, at most
    /// [`RouterConfig::max_attempts`] live attempts.
    ///
    /// # Errors
    ///
    /// [`FleetError::Service`] relays the serving shard's typed error;
    /// [`FleetError::AllShardsDown`] means no shard could be reached.
    pub fn call(&self, request: Request) -> Result<RoutedResponse, FleetError> {
        let deadline = WireDeadline::fresh(request.deadline_ms());
        self.call_with_deadline(request, deadline)
    }

    /// [`Self::call`] with an explicit in-band deadline (carrying
    /// upstream spend across this hop).
    ///
    /// # Errors
    ///
    /// See [`Self::call`].
    pub fn call_with_deadline(
        &self,
        request: Request,
        deadline: WireDeadline,
    ) -> Result<RoutedResponse, FleetError> {
        let inner = &self.inner;
        if inner.slots.is_empty() {
            return Err(FleetError::NoShards);
        }
        inner.routed_total.inc();
        let key = match &request {
            Request::RecommendMask {
                circuit, device, ..
            }
            | Request::Execute {
                circuit, device, ..
            } => route_key(*device, logical_hash(circuit)),
        };
        let ranked = inner.ring.ranked(key);
        let owner = ranked[0];
        let mut attempts = 0u32;
        let mut last: Option<ClientError> = None;
        for shard in ranked {
            if attempts >= inner.cfg.max_attempts {
                break;
            }
            let slot = inner.slots.get(&shard).expect("ring matches slots");
            if !self.admit(slot) {
                inner.failfast_skips_total.inc();
                continue;
            }
            attempts += 1;
            match self.try_shard(slot, &request, deadline) {
                Ok(response) => {
                    self.record_success(slot);
                    if shard != owner {
                        inner.rerouted_total.inc();
                    }
                    return Ok(RoutedResponse {
                        response,
                        shard,
                        rerouted: shard != owner,
                    });
                }
                Err(ClientError::Service(e)) => {
                    // The shard answered; its typed error is the
                    // answer. It also proves the transport works.
                    self.record_success(slot);
                    return Err(FleetError::Service(e));
                }
                Err(e) => {
                    self.record_failure(slot);
                    last = Some(e);
                }
            }
        }
        Err(FleetError::AllShardsDown {
            attempts,
            last: last.unwrap_or_else(|| {
                ClientError::Transport(std::io::Error::new(
                    std::io::ErrorKind::NotConnected,
                    "every shard skipped fail-fast",
                ))
            }),
        })
    }

    /// Breaker admission for one shard. Open shards burn one unit of
    /// their request-count cooldown per skip; at zero they go half-open
    /// and admit a single probe.
    fn admit(&self, slot: &Slot) -> bool {
        let mut health = slot.health.lock().unwrap_or_else(|e| e.into_inner());
        match health.state {
            ShardState::Closed | ShardState::HalfOpen => true,
            ShardState::Open { cooldown_left } => {
                if cooldown_left <= 1 {
                    health.state = ShardState::HalfOpen;
                } else {
                    health.state = ShardState::Open {
                        cooldown_left: cooldown_left - 1,
                    };
                }
                false
            }
        }
    }

    fn try_shard(
        &self,
        slot: &Slot,
        request: &Request,
        deadline: WireDeadline,
    ) -> Result<Response, ClientError> {
        let addr = *slot.addr.read().unwrap_or_else(|e| e.into_inner());
        let mut client = slot
            .pool
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .pop()
            .filter(|c| c.addr() == addr)
            .unwrap_or_else(|| ShardClient::new(addr));
        let result = client.call(request, deadline);
        match &result {
            Ok(_) | Err(ClientError::Service(_)) => {
                slot.pool
                    .lock()
                    .unwrap_or_else(|e| e.into_inner())
                    .push(client);
            }
            Err(_) => drop(client),
        }
        result
    }

    fn record_success(&self, slot: &Slot) {
        let mut health = slot.health.lock().unwrap_or_else(|e| e.into_inner());
        health.consecutive_failures = 0;
        health.state = ShardState::Closed;
    }

    fn record_failure(&self, slot: &Slot) {
        let mut health = slot.health.lock().unwrap_or_else(|e| e.into_inner());
        health.consecutive_failures += 1;
        let reopen = match health.state {
            // A failed half-open probe re-opens immediately.
            ShardState::HalfOpen => true,
            ShardState::Closed => health.consecutive_failures >= self.inner.cfg.failure_threshold,
            ShardState::Open { .. } => false,
        };
        if reopen {
            health.state = ShardState::Open {
                cooldown_left: self.inner.cfg.cooldown_requests,
            };
            self.inner.breaker_opens_total.inc();
        }
    }

    /// Scrapes every reachable shard's exposition and merges them into
    /// one fleet document with per-shard `shard="N"` labels (see
    /// [`adapt_obs::merge_expositions`]). The router's own counters are
    /// appended under `shard="router"`. Unreachable shards are skipped.
    pub fn metrics(&self) -> String {
        let mut parts = Vec::new();
        for (&shard, slot) in &self.inner.slots {
            let addr = *slot.addr.read().unwrap_or_else(|e| e.into_inner());
            let mut client = ShardClient::new(addr);
            if let Ok(text) = client.metrics() {
                parts.push((shard.0.to_string(), text));
            }
        }
        parts.push((
            "router".to_string(),
            self.inner.registry.render_prometheus(),
        ));
        adapt_obs::merge_expositions("shard", &parts)
    }
}
