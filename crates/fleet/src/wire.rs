//! The fleet wire protocol: a small, versioned, length-prefixed binary
//! framing over TCP.
//!
//! # Frame layout
//!
//! ```text
//! offset  size  field
//! 0       4     magic       0x4144464C ("ADFL"), little-endian u32
//! 4       1     version     protocol version (2; peers ≥ MIN_VERSION accepted)
//! 5       1     kind        frame type (FrameKind)
//! 6       1     flags       bit 0: FORWARDED; bit 1: CHECKSUM trailer
//! 7       1     reserved    must be 0
//! 8       4     length      payload length in bytes, little-endian
//! 12      len   payload     kind-specific body
//! ```
//!
//! With [`FLAG_CHECKSUM`] set, the declared length covers the payload
//! *plus* a 4-byte CRC32 trailer (the `adapt_service::persist` CRC —
//! one implementation across the durability and wire layers);
//! [`read_frame`] verifies and strips the trailer, turning in-flight
//! corruption into a typed [`WireError::ChecksumMismatch`] instead of a
//! garbled payload. The flag is opt-in per sender, so `MIN_VERSION`
//! peers that never set it are unaffected.
//!
//! # Versioning and extensions
//!
//! Version 2 appends an *extension block* to the request payload after
//! the fixed fields: a `u8` extension count, then per extension a `u8`
//! tag, a `u32` byte length, and that many bytes. Decoders skip
//! extensions with unknown tags by their length — new in-band fields
//! (tenancy today) ride through old-but-v2-aware peers untouched — and
//! a payload that ends before any extension block (a v1 sender) decodes
//! with default values for every extension. This is the one place the
//! protocol is deliberately tolerant; unknown *enum tags* inside known
//! fields are still typed errors (below).
//!
//! All integers are little-endian; `f64` payloads travel as their exact
//! IEEE-754 bit pattern (`to_bits`/`from_bits` — loss-free, including
//! NaN and infinities inside error payloads). Strings and circuits are
//! length-prefixed UTF-8; circuits travel as their OpenQASM rendering,
//! which `qcirc::qasm` round-trips exactly.
//!
//! Enums are encoded as a `u8` tag plus variant payload. Decoders
//! reject unknown tags with a typed [`WireError::UnknownTag`] rather
//! than guessing — a version bump is the upgrade path, silent
//! misdecodes are not. The exhaustive-match tests in
//! `tests/wire_roundtrip.rs` pin that every [`ServiceError`] variant
//! (and every error nested inside [`ServiceError::Failed`]) survives
//! encode → decode loss-free.
//!
//! The request deadline crosses the wire in-band as a
//! [`machine::WireDeadline`] — total budget plus time already counted
//! upstream — so a hop never resets the clock: the receiving shard
//! serves within `budget − upstream_elapsed`.

use adapt::decoy::DecoyError;
use adapt::{AdaptError, DdMask, DdProtocol, DecoyKind, Policy, SearchError};
use adapt_service::{
    DeviceId, Execution, MaskKey, PriorityClass, Provenance, Recommendation, Request, Response,
    SearchBudget, ServiceError, Tenancy, TenantId, TierPolicy, Timing,
};
use machine::{ExecError, WireDeadline, WIRE_DEADLINE_BYTES};
use qcirc::Gate;
use statevec::SimError;
use std::io::{Read, Write};
use transpiler::ScheduleError;

/// Frame magic: "ADFL" as a little-endian u32.
pub const MAGIC: u32 = 0x4144_464c;
/// Current protocol version. Version 2 added the request extension
/// block (tenancy in-band); v1 frames are still accepted and decode
/// with default tenancy.
pub const VERSION: u8 = 2;
/// Oldest protocol version this build still accepts.
pub const MIN_VERSION: u8 = 1;
/// Fixed frame-header size in bytes.
pub const HEADER_BYTES: usize = 12;
/// Default cap on payload size; larger frames are rejected before
/// allocation.
pub const DEFAULT_MAX_FRAME_BYTES: u32 = 8 << 20;
/// Flag bit: this request was forwarded by a non-owning shard and must
/// be served locally (never re-forwarded), breaking forwarding cycles.
pub const FLAG_FORWARDED: u8 = 0x01;
/// Flag bit: the payload carries a 4-byte CRC32 trailer (included in
/// the declared length). Senders opt in per frame; v1 peers never set
/// it and decode unchanged.
pub const FLAG_CHECKSUM: u8 = 0x02;

/// Frame types.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[repr(u8)]
pub enum FrameKind {
    /// A service request ([`Request`] + [`WireDeadline`]).
    Request = 0x01,
    /// A successful service response ([`Response`]).
    Response = 0x02,
    /// A typed failure ([`ServiceError`]).
    Error = 0x03,
    /// Ask the shard for its Prometheus exposition (empty payload).
    MetricsRequest = 0x10,
    /// The exposition text (UTF-8).
    MetricsResponse = 0x11,
}

impl FrameKind {
    fn from_u8(b: u8) -> Result<Self, WireError> {
        Ok(match b {
            0x01 => FrameKind::Request,
            0x02 => FrameKind::Response,
            0x03 => FrameKind::Error,
            0x10 => FrameKind::MetricsRequest,
            0x11 => FrameKind::MetricsResponse,
            other => return Err(WireError::UnknownFrame(other)),
        })
    }
}

/// A decoded frame header.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FrameHeader {
    /// Frame type.
    pub kind: FrameKind,
    /// Flag bits ([`FLAG_FORWARDED`]).
    pub flags: u8,
    /// Payload length in bytes.
    pub len: u32,
}

/// Typed wire-level failures: framing, versioning, and codec errors.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum WireError {
    /// The buffer ended before the field did.
    UnexpectedEof {
        /// Bytes the field needed.
        needed: usize,
        /// Bytes left in the buffer.
        have: usize,
    },
    /// The frame did not start with [`MAGIC`].
    BadMagic(u32),
    /// The peer speaks a different protocol version.
    BadVersion(u8),
    /// Unknown frame type byte.
    UnknownFrame(u8),
    /// An enum tag no decoder for this version knows.
    UnknownTag {
        /// Which enum the tag belongs to.
        what: &'static str,
        /// The offending tag byte.
        tag: u8,
    },
    /// A device name with no [`DeviceId`].
    BadDevice(String),
    /// The circuit payload failed to parse back from QASM.
    BadCircuit(String),
    /// A string field was not valid UTF-8.
    BadUtf8,
    /// The payload length exceeds the configured frame cap.
    Oversize {
        /// Declared payload length.
        len: u32,
        /// The cap it exceeded.
        max: u32,
    },
    /// The payload had bytes left after the last field.
    TrailingBytes {
        /// How many bytes were left over.
        extra: usize,
    },
    /// A 16-byte deadline field was malformed.
    BadDeadline,
    /// The payload's CRC32 trailer did not match its content — the
    /// frame was corrupted in flight.
    ChecksumMismatch {
        /// CRC32 the sender appended.
        expected: u32,
        /// CRC32 recomputed over the payload as received.
        got: u32,
    },
}

impl std::fmt::Display for WireError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            WireError::UnexpectedEof { needed, have } => {
                write!(
                    f,
                    "unexpected end of payload: needed {needed} bytes, {have} left"
                )
            }
            WireError::BadMagic(m) => write!(f, "bad frame magic {m:#010x}"),
            WireError::BadVersion(v) => write!(f, "unsupported protocol version {v}"),
            WireError::UnknownFrame(k) => write!(f, "unknown frame type {k:#04x}"),
            WireError::UnknownTag { what, tag } => write!(f, "unknown {what} tag {tag}"),
            WireError::BadDevice(name) => write!(f, "unknown device {name:?}"),
            WireError::BadCircuit(e) => write!(f, "circuit payload rejected: {e}"),
            WireError::BadUtf8 => write!(f, "string payload is not valid UTF-8"),
            WireError::Oversize { len, max } => {
                write!(f, "frame payload of {len} bytes exceeds the {max}-byte cap")
            }
            WireError::TrailingBytes { extra } => {
                write!(f, "{extra} trailing bytes after the last field")
            }
            WireError::BadDeadline => write!(f, "malformed in-band deadline"),
            WireError::ChecksumMismatch { expected, got } => write!(
                f,
                "payload checksum mismatch: sender {expected:#010x}, received {got:#010x}"
            ),
        }
    }
}

impl std::error::Error for WireError {}

// ---------------------------------------------------------------------------
// Primitive writer / reader
// ---------------------------------------------------------------------------

/// Append-only payload builder.
#[derive(Debug, Default)]
struct W {
    buf: Vec<u8>,
}

impl W {
    fn u8(&mut self, v: u8) {
        self.buf.push(v);
    }
    fn u32(&mut self, v: u32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }
    fn u64(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }
    fn f64(&mut self, v: f64) {
        self.u64(v.to_bits());
    }
    fn boolean(&mut self, v: bool) {
        self.u8(v as u8);
    }
    fn str(&mut self, s: &str) {
        self.u32(s.len() as u32);
        self.buf.extend_from_slice(s.as_bytes());
    }
}

/// Cursor over a received payload.
struct R<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> R<'a> {
    fn new(buf: &'a [u8]) -> Self {
        R { buf, pos: 0 }
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], WireError> {
        let have = self.buf.len() - self.pos;
        if have < n {
            return Err(WireError::UnexpectedEof { needed: n, have });
        }
        let s = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(s)
    }

    fn u8(&mut self) -> Result<u8, WireError> {
        Ok(self.take(1)?[0])
    }
    fn u32(&mut self) -> Result<u32, WireError> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().unwrap()))
    }
    fn u64(&mut self) -> Result<u64, WireError> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }
    fn f64(&mut self) -> Result<f64, WireError> {
        Ok(f64::from_bits(self.u64()?))
    }
    fn boolean(&mut self) -> Result<bool, WireError> {
        Ok(self.u8()? != 0)
    }
    fn str(&mut self) -> Result<String, WireError> {
        let len = self.u32()? as usize;
        let bytes = self.take(len)?;
        String::from_utf8(bytes.to_vec()).map_err(|_| WireError::BadUtf8)
    }

    /// Whether any bytes remain — how decoders detect an optional
    /// trailing extension block.
    fn has_remaining(&self) -> bool {
        self.pos < self.buf.len()
    }

    /// Consume and discard `n` bytes (an unknown extension's payload).
    fn skip(&mut self, n: usize) -> Result<(), WireError> {
        self.take(n).map(|_| ())
    }

    /// Rejects payloads with unconsumed bytes — a framing bug upstream.
    fn finish(self) -> Result<(), WireError> {
        let extra = self.buf.len() - self.pos;
        if extra != 0 {
            return Err(WireError::TrailingBytes { extra });
        }
        Ok(())
    }
}

// ---------------------------------------------------------------------------
// Domain codecs
// ---------------------------------------------------------------------------

fn put_device(w: &mut W, d: DeviceId) {
    w.str(d.name());
}

fn get_device(r: &mut R) -> Result<DeviceId, WireError> {
    let name = r.str()?;
    DeviceId::by_name(&name).ok_or(WireError::BadDevice(name))
}

fn put_protocol(w: &mut W, p: DdProtocol) {
    match p {
        DdProtocol::Xy4 => w.u8(0),
        DdProtocol::IbmqDd => w.u8(1),
        DdProtocol::Cpmg => w.u8(2),
        DdProtocol::Xy8 => w.u8(3),
        DdProtocol::Udd { pulses } => {
            w.u8(4);
            w.u32(pulses);
        }
    }
}

fn get_protocol(r: &mut R) -> Result<DdProtocol, WireError> {
    Ok(match r.u8()? {
        0 => DdProtocol::Xy4,
        1 => DdProtocol::IbmqDd,
        2 => DdProtocol::Cpmg,
        3 => DdProtocol::Xy8,
        4 => DdProtocol::Udd { pulses: r.u32()? },
        tag => {
            return Err(WireError::UnknownTag {
                what: "DdProtocol",
                tag,
            })
        }
    })
}

/// Request-extension tag: tenancy (u32 tenant id + u8 priority class).
const EXT_TENANCY: u8 = 1;

/// The tenancy extension body (not the tag/length envelope).
fn put_tenancy_body(w: &mut W, t: Tenancy) {
    w.u32(t.tenant.0);
    w.u8(match t.class {
        PriorityClass::Interactive => 0,
        PriorityClass::Standard => 1,
        PriorityClass::Batch => 2,
    });
}

fn get_tenancy_body(r: &mut R) -> Result<Tenancy, WireError> {
    let tenant = TenantId(r.u32()?);
    let class = match r.u8()? {
        0 => PriorityClass::Interactive,
        1 => PriorityClass::Standard,
        2 => PriorityClass::Batch,
        tag => {
            return Err(WireError::UnknownTag {
                what: "PriorityClass",
                tag,
            })
        }
    };
    Ok(Tenancy { tenant, class })
}

fn put_decoy_kind(w: &mut W, d: DecoyKind) {
    match d {
        DecoyKind::Clifford => w.u8(0),
        DecoyKind::CnotOnly => w.u8(1),
        DecoyKind::Seeded { max_seed_qubits } => {
            w.u8(2);
            w.u64(max_seed_qubits as u64);
        }
    }
}

fn get_decoy_kind(r: &mut R) -> Result<DecoyKind, WireError> {
    Ok(match r.u8()? {
        0 => DecoyKind::Clifford,
        1 => DecoyKind::CnotOnly,
        2 => DecoyKind::Seeded {
            max_seed_qubits: r.u64()? as usize,
        },
        tag => {
            return Err(WireError::UnknownTag {
                what: "DecoyKind",
                tag,
            })
        }
    })
}

fn put_tier(w: &mut W, t: TierPolicy) {
    w.u8(match t {
        TierPolicy::Auto => 0,
        TierPolicy::HeuristicOnly => 1,
        TierPolicy::SearchOnly => 2,
    });
}

fn get_tier(r: &mut R) -> Result<TierPolicy, WireError> {
    Ok(match r.u8()? {
        0 => TierPolicy::Auto,
        1 => TierPolicy::HeuristicOnly,
        2 => TierPolicy::SearchOnly,
        tag => {
            return Err(WireError::UnknownTag {
                what: "TierPolicy",
                tag,
            })
        }
    })
}

fn put_budget(w: &mut W, b: &SearchBudget) {
    w.u64(b.shots);
    w.u32(b.trajectories);
    w.u64(b.neighborhood as u64);
    put_tier(w, b.tier);
}

fn get_budget(r: &mut R) -> Result<SearchBudget, WireError> {
    Ok(SearchBudget {
        shots: r.u64()?,
        trajectories: r.u32()?,
        neighborhood: r.u64()? as usize,
        tier: get_tier(r)?,
    })
}

fn put_policy(w: &mut W, p: Policy) {
    w.u8(match p {
        Policy::NoDd => 0,
        Policy::AllDd => 1,
        Policy::Adapt => 2,
        Policy::RuntimeBest => 3,
    });
}

fn get_policy(r: &mut R) -> Result<Policy, WireError> {
    Ok(match r.u8()? {
        0 => Policy::NoDd,
        1 => Policy::AllDd,
        2 => Policy::Adapt,
        3 => Policy::RuntimeBest,
        tag => {
            return Err(WireError::UnknownTag {
                what: "Policy",
                tag,
            })
        }
    })
}

fn put_mask(w: &mut W, m: DdMask) {
    w.u64(m.bits());
    w.u64(m.num_qubits() as u64);
}

fn get_mask(r: &mut R) -> Result<DdMask, WireError> {
    let bits = r.u64()?;
    let n = r.u64()? as usize;
    Ok(DdMask::from_bits(bits, n))
}

fn put_provenance(w: &mut W, p: Provenance) {
    match p {
        Provenance::CacheHit => w.u8(0),
        Provenance::FreshSearch => w.u8(1),
        Provenance::DegradedAllDd => w.u8(2),
        Provenance::PartialSearch => w.u8(3),
        Provenance::BreakerFallback => w.u8(4),
        Provenance::Heuristic => w.u8(5),
        Provenance::StaleServed { age_epochs } => {
            w.u8(6);
            w.u64(age_epochs);
        }
    }
}

fn get_provenance(r: &mut R) -> Result<Provenance, WireError> {
    Ok(match r.u8()? {
        0 => Provenance::CacheHit,
        1 => Provenance::FreshSearch,
        2 => Provenance::DegradedAllDd,
        3 => Provenance::PartialSearch,
        4 => Provenance::BreakerFallback,
        5 => Provenance::Heuristic,
        6 => Provenance::StaleServed {
            age_epochs: r.u64()?,
        },
        tag => {
            return Err(WireError::UnknownTag {
                what: "Provenance",
                tag,
            })
        }
    })
}

fn put_timing(w: &mut W, t: Timing) {
    w.u64(t.queued_us);
    w.u64(t.service_us);
}

fn get_timing(r: &mut R) -> Result<Timing, WireError> {
    Ok(Timing {
        queued_us: r.u64()?,
        service_us: r.u64()?,
    })
}

fn put_mask_key(w: &mut W, k: &MaskKey) {
    put_device(w, k.device);
    w.u64(k.epoch);
    w.u64(k.circuit_hash);
    put_protocol(w, k.protocol);
    put_decoy_kind(w, k.decoy);
}

fn get_mask_key(r: &mut R) -> Result<MaskKey, WireError> {
    Ok(MaskKey {
        device: get_device(r)?,
        epoch: r.u64()?,
        circuit_hash: r.u64()?,
        protocol: get_protocol(r)?,
        decoy: get_decoy_kind(r)?,
    })
}

fn put_deadline(w: &mut W, d: WireDeadline) {
    w.buf.extend_from_slice(&d.encode());
}

fn get_deadline(r: &mut R) -> Result<WireDeadline, WireError> {
    let bytes = r.take(WIRE_DEADLINE_BYTES)?;
    WireDeadline::decode(bytes).ok_or(WireError::BadDeadline)
}

// --- error taxonomy ---------------------------------------------------------

fn put_gate(w: &mut W, g: Gate) {
    match g {
        Gate::I => w.u8(0),
        Gate::X => w.u8(1),
        Gate::Y => w.u8(2),
        Gate::Z => w.u8(3),
        Gate::H => w.u8(4),
        Gate::S => w.u8(5),
        Gate::Sdg => w.u8(6),
        Gate::T => w.u8(7),
        Gate::Tdg => w.u8(8),
        Gate::SX => w.u8(9),
        Gate::SXdg => w.u8(10),
        Gate::RX(a) => {
            w.u8(11);
            w.f64(a);
        }
        Gate::RY(a) => {
            w.u8(12);
            w.f64(a);
        }
        Gate::RZ(a) => {
            w.u8(13);
            w.f64(a);
        }
        Gate::P(a) => {
            w.u8(14);
            w.f64(a);
        }
        Gate::U(t, p, l) => {
            w.u8(15);
            w.f64(t);
            w.f64(p);
            w.f64(l);
        }
        Gate::CX => w.u8(16),
        Gate::CZ => w.u8(17),
        Gate::Swap => w.u8(18),
    }
}

fn get_gate(r: &mut R) -> Result<Gate, WireError> {
    Ok(match r.u8()? {
        0 => Gate::I,
        1 => Gate::X,
        2 => Gate::Y,
        3 => Gate::Z,
        4 => Gate::H,
        5 => Gate::S,
        6 => Gate::Sdg,
        7 => Gate::T,
        8 => Gate::Tdg,
        9 => Gate::SX,
        10 => Gate::SXdg,
        11 => Gate::RX(r.f64()?),
        12 => Gate::RY(r.f64()?),
        13 => Gate::RZ(r.f64()?),
        14 => Gate::P(r.f64()?),
        15 => Gate::U(r.f64()?, r.f64()?, r.f64()?),
        16 => Gate::CX,
        17 => Gate::CZ,
        18 => Gate::Swap,
        tag => return Err(WireError::UnknownTag { what: "Gate", tag }),
    })
}

fn put_sim_error(w: &mut W, e: &SimError) {
    match e {
        SimError::TooManyQubits { requested, limit } => {
            w.u8(0);
            w.u64(*requested as u64);
            w.u64(*limit as u64);
        }
        SimError::QubitOutOfRange { qubit, num_qubits } => {
            w.u8(1);
            w.u64(*qubit as u64);
            w.u64(*num_qubits as u64);
        }
        SimError::InvalidAmplitudes => w.u8(2),
    }
}

fn get_sim_error(r: &mut R) -> Result<SimError, WireError> {
    Ok(match r.u8()? {
        0 => SimError::TooManyQubits {
            requested: r.u64()? as usize,
            limit: r.u64()? as usize,
        },
        1 => SimError::QubitOutOfRange {
            qubit: r.u64()? as usize,
            num_qubits: r.u64()? as usize,
        },
        2 => SimError::InvalidAmplitudes,
        tag => {
            return Err(WireError::UnknownTag {
                what: "SimError",
                tag,
            })
        }
    })
}

fn put_schedule_error(w: &mut W, e: &ScheduleError) {
    match e {
        ScheduleError::NonFiniteTime {
            event,
            start_ns,
            end_ns,
        } => {
            w.u8(0);
            w.u64(*event as u64);
            w.f64(*start_ns);
            w.f64(*end_ns);
        }
        ScheduleError::NegativeDuration {
            event,
            start_ns,
            end_ns,
        } => {
            w.u8(1);
            w.u64(*event as u64);
            w.f64(*start_ns);
            w.f64(*end_ns);
        }
    }
}

fn get_schedule_error(r: &mut R) -> Result<ScheduleError, WireError> {
    Ok(match r.u8()? {
        0 => ScheduleError::NonFiniteTime {
            event: r.u64()? as usize,
            start_ns: r.f64()?,
            end_ns: r.f64()?,
        },
        1 => ScheduleError::NegativeDuration {
            event: r.u64()? as usize,
            start_ns: r.f64()?,
            end_ns: r.f64()?,
        },
        tag => {
            return Err(WireError::UnknownTag {
                what: "ScheduleError",
                tag,
            })
        }
    })
}

fn put_exec_error(w: &mut W, e: &ExecError) {
    match e {
        ExecError::TooManyActiveQubits { active, limit } => {
            w.u8(0);
            w.u64(*active as u64);
            w.u64(*limit as u64);
        }
        ExecError::Sim(s) => {
            w.u8(1);
            put_sim_error(w, s);
        }
        ExecError::Schedule(s) => {
            w.u8(2);
            put_schedule_error(w, s);
        }
        ExecError::JobFailed { job, reason } => {
            w.u8(3);
            w.u64(*job);
            w.str(reason);
        }
        ExecError::Timeout { job, budget_ms } => {
            w.u8(4);
            w.u64(*job);
            w.u64(*budget_ms);
        }
        ExecError::RetriesExhausted { attempts, last } => {
            w.u8(5);
            w.u32(*attempts);
            put_exec_error(w, last);
        }
        ExecError::DeadlineExceeded {
            elapsed_ms,
            budget_ms,
        } => {
            w.u8(6);
            w.u64(*elapsed_ms);
            w.u64(*budget_ms);
        }
        ExecError::Cancelled => w.u8(7),
    }
}

fn get_exec_error(r: &mut R) -> Result<ExecError, WireError> {
    Ok(match r.u8()? {
        0 => ExecError::TooManyActiveQubits {
            active: r.u64()? as usize,
            limit: r.u64()? as usize,
        },
        1 => ExecError::Sim(get_sim_error(r)?),
        2 => ExecError::Schedule(get_schedule_error(r)?),
        3 => ExecError::JobFailed {
            job: r.u64()?,
            reason: r.str()?,
        },
        4 => ExecError::Timeout {
            job: r.u64()?,
            budget_ms: r.u64()?,
        },
        5 => ExecError::RetriesExhausted {
            attempts: r.u32()?,
            last: Box::new(get_exec_error(r)?),
        },
        6 => ExecError::DeadlineExceeded {
            elapsed_ms: r.u64()?,
            budget_ms: r.u64()?,
        },
        7 => ExecError::Cancelled,
        tag => {
            return Err(WireError::UnknownTag {
                what: "ExecError",
                tag,
            })
        }
    })
}

fn put_decoy_error(w: &mut W, e: &DecoyError) {
    match e {
        DecoyError::UnsupportedGate(g) => {
            w.u8(0);
            put_gate(w, *g);
        }
        DecoyError::Sim(s) => {
            w.u8(1);
            put_sim_error(w, s);
        }
    }
}

fn get_decoy_error(r: &mut R) -> Result<DecoyError, WireError> {
    Ok(match r.u8()? {
        0 => DecoyError::UnsupportedGate(get_gate(r)?),
        1 => DecoyError::Sim(get_sim_error(r)?),
        tag => {
            return Err(WireError::UnknownTag {
                what: "DecoyError",
                tag,
            })
        }
    })
}

fn put_search_error(w: &mut W, e: &SearchError) {
    match e {
        SearchError::TooLarge { qubits, limit } => {
            w.u8(0);
            w.u64(*qubits as u64);
            w.u64(*limit as u64);
        }
        SearchError::Exec(x) => {
            w.u8(1);
            put_exec_error(w, x);
        }
    }
}

fn get_search_error(r: &mut R) -> Result<SearchError, WireError> {
    Ok(match r.u8()? {
        0 => SearchError::TooLarge {
            qubits: r.u64()? as usize,
            limit: r.u64()? as usize,
        },
        1 => SearchError::Exec(get_exec_error(r)?),
        tag => {
            return Err(WireError::UnknownTag {
                what: "SearchError",
                tag,
            })
        }
    })
}

fn put_adapt_error(w: &mut W, e: &AdaptError) {
    match e {
        AdaptError::Exec(x) => {
            w.u8(0);
            put_exec_error(w, x);
        }
        AdaptError::Decoy(d) => {
            w.u8(1);
            put_decoy_error(w, d);
        }
        AdaptError::Sim(s) => {
            w.u8(2);
            put_sim_error(w, s);
        }
        AdaptError::Search(s) => {
            w.u8(3);
            put_search_error(w, s);
        }
    }
}

fn get_adapt_error(r: &mut R) -> Result<AdaptError, WireError> {
    Ok(match r.u8()? {
        0 => AdaptError::Exec(get_exec_error(r)?),
        1 => AdaptError::Decoy(get_decoy_error(r)?),
        2 => AdaptError::Sim(get_sim_error(r)?),
        3 => AdaptError::Search(get_search_error(r)?),
        tag => {
            return Err(WireError::UnknownTag {
                what: "AdaptError",
                tag,
            })
        }
    })
}

fn put_service_error(w: &mut W, e: &ServiceError) {
    match e {
        ServiceError::Rejected {
            queue_depth,
            retry_after_ms,
        } => {
            w.u8(0);
            w.u64(*queue_depth as u64);
            w.u64(*retry_after_ms);
        }
        ServiceError::DeviceNotServed(d) => {
            w.u8(1);
            put_device(w, *d);
        }
        ServiceError::DeadlineExceeded {
            elapsed_ms,
            budget_ms,
        } => {
            w.u8(2);
            w.u64(*elapsed_ms);
            w.u64(*budget_ms);
        }
        ServiceError::DeviceUnhealthy {
            device,
            retry_after_ms,
        } => {
            w.u8(3);
            put_device(w, *device);
            w.u64(*retry_after_ms);
        }
        ServiceError::InvalidConfig { reason } => {
            w.u8(4);
            w.str(reason);
        }
        ServiceError::Failed(e) => {
            w.u8(5);
            put_adapt_error(w, e);
        }
        ServiceError::ShuttingDown => w.u8(6),
        ServiceError::Internal { reason } => {
            w.u8(7);
            w.str(reason);
        }
        ServiceError::Lost => w.u8(8),
        ServiceError::QuotaExhausted {
            tenant,
            retry_after_ms,
        } => {
            w.u8(9);
            w.u32(tenant.0);
            w.u64(*retry_after_ms);
        }
    }
}

fn get_service_error(r: &mut R) -> Result<ServiceError, WireError> {
    Ok(match r.u8()? {
        0 => ServiceError::Rejected {
            queue_depth: r.u64()? as usize,
            retry_after_ms: r.u64()?,
        },
        1 => ServiceError::DeviceNotServed(get_device(r)?),
        2 => ServiceError::DeadlineExceeded {
            elapsed_ms: r.u64()?,
            budget_ms: r.u64()?,
        },
        3 => ServiceError::DeviceUnhealthy {
            device: get_device(r)?,
            retry_after_ms: r.u64()?,
        },
        4 => ServiceError::InvalidConfig { reason: r.str()? },
        5 => ServiceError::Failed(get_adapt_error(r)?),
        6 => ServiceError::ShuttingDown,
        7 => ServiceError::Internal { reason: r.str()? },
        8 => ServiceError::Lost,
        9 => ServiceError::QuotaExhausted {
            tenant: TenantId(r.u32()?),
            retry_after_ms: r.u64()?,
        },
        tag => {
            return Err(WireError::UnknownTag {
                what: "ServiceError",
                tag,
            })
        }
    })
}

// ---------------------------------------------------------------------------
// Top-level payload codecs
// ---------------------------------------------------------------------------

/// Encode a request payload: the request body plus the in-band deadline.
///
/// The `deadline_ms` field *inside* the [`Request`] is not sent — the
/// [`WireDeadline`] is authoritative on the wire (it carries upstream
/// spend, which a bare `deadline_ms` cannot).
pub fn encode_request(req: &Request, deadline: WireDeadline) -> Vec<u8> {
    let mut w = W::default();
    put_deadline(&mut w, deadline);
    match req {
        Request::RecommendMask {
            circuit,
            device,
            protocol,
            budget,
            ..
        } => {
            w.u8(0);
            put_device(&mut w, *device);
            put_protocol(&mut w, *protocol);
            put_budget(&mut w, budget);
            w.str(&qcirc::qasm::to_qasm(circuit));
        }
        Request::Execute {
            circuit,
            device,
            policy,
            ..
        } => {
            w.u8(1);
            put_device(&mut w, *device);
            put_policy(&mut w, *policy);
            w.str(&qcirc::qasm::to_qasm(circuit));
        }
    }
    // Version-2 extension block (see module docs): count, then
    // tag/length-prefixed bodies. Tenancy is the only extension today.
    w.u8(1);
    w.u8(EXT_TENANCY);
    let mut body = W::default();
    put_tenancy_body(&mut body, req.tenancy());
    w.u32(body.buf.len() as u32);
    w.buf.extend_from_slice(&body.buf);
    w.buf
}

/// Decode a request payload into a service [`Request`] plus the in-band
/// deadline. The returned request's `deadline_ms` is already set to the
/// *remaining* budget (`budget − upstream elapsed`), so handing it
/// straight to [`adapt_service::MaskService::submit`] continues the
/// upstream clock; a born-expired deadline arrives as `Some(0)` and is
/// rejected by the service's admission check, not silently un-bounded.
///
/// # Errors
///
/// Any [`WireError`] the payload triggers, including trailing bytes.
pub fn decode_request(payload: &[u8]) -> Result<(Request, WireDeadline), WireError> {
    let mut r = R::new(payload);
    let deadline = get_deadline(&mut r)?;
    let remaining = deadline.remaining_ms();
    let tag = r.u8()?;
    let mut body = match tag {
        0 => {
            let device = get_device(&mut r)?;
            let protocol = get_protocol(&mut r)?;
            let budget = get_budget(&mut r)?;
            let qasm = r.str()?;
            let circuit =
                qcirc::qasm::from_qasm(&qasm).map_err(|e| WireError::BadCircuit(e.to_string()))?;
            Request::RecommendMask {
                circuit,
                device,
                protocol,
                budget,
                deadline_ms: remaining,
                tenancy: Tenancy::default(),
            }
        }
        1 => {
            let device = get_device(&mut r)?;
            let policy = get_policy(&mut r)?;
            let qasm = r.str()?;
            let circuit =
                qcirc::qasm::from_qasm(&qasm).map_err(|e| WireError::BadCircuit(e.to_string()))?;
            Request::Execute {
                circuit,
                device,
                policy,
                deadline_ms: remaining,
                tenancy: Tenancy::default(),
            }
        }
        tag => {
            return Err(WireError::UnknownTag {
                what: "Request",
                tag,
            })
        }
    };
    // Optional extension block: absent on a v1 payload (defaults
    // already in place), present on v2. Unknown extension tags are
    // skipped by their declared length; a known extension with a bad
    // body is still a typed error.
    if r.has_remaining() {
        let count = r.u8()?;
        for _ in 0..count {
            let ext = r.u8()?;
            let len = r.u32()? as usize;
            match ext {
                EXT_TENANCY => {
                    let bytes = r.take(len)?;
                    let mut er = R::new(bytes);
                    let tenancy = get_tenancy_body(&mut er)?;
                    er.finish()?;
                    match &mut body {
                        Request::RecommendMask { tenancy: t, .. }
                        | Request::Execute { tenancy: t, .. } => *t = tenancy,
                    }
                }
                _ => r.skip(len)?,
            }
        }
    }
    r.finish()?;
    Ok((body, deadline))
}

/// Encode a successful response payload.
pub fn encode_response(resp: &Response) -> Vec<u8> {
    let mut w = W::default();
    match resp {
        Response::Mask(rec) => {
            w.u8(0);
            put_mask_key(&mut w, &rec.key);
            put_mask(&mut w, rec.mask);
            w.f64(rec.decoy_fidelity);
            w.u64(rec.decoy_runs as u64);
            put_provenance(&mut w, rec.provenance);
            w.boolean(rec.degraded);
            put_timing(&mut w, rec.timing);
        }
        Response::Execution(exec) => {
            w.u8(1);
            put_device(&mut w, exec.device);
            w.u64(exec.epoch);
            put_policy(&mut w, exec.policy);
            put_mask(&mut w, exec.mask);
            w.f64(exec.fidelity);
            w.u64(exec.pulse_count as u64);
            match exec.provenance {
                None => w.boolean(false),
                Some(p) => {
                    w.boolean(true);
                    put_provenance(&mut w, p);
                }
            }
            put_timing(&mut w, exec.timing);
        }
    }
    w.buf
}

/// Decode a response payload.
///
/// # Errors
///
/// Any [`WireError`] the payload triggers, including trailing bytes.
pub fn decode_response(payload: &[u8]) -> Result<Response, WireError> {
    let mut r = R::new(payload);
    let resp = match r.u8()? {
        0 => Response::Mask(Recommendation {
            key: get_mask_key(&mut r)?,
            mask: get_mask(&mut r)?,
            decoy_fidelity: r.f64()?,
            decoy_runs: r.u64()? as usize,
            provenance: get_provenance(&mut r)?,
            degraded: r.boolean()?,
            timing: get_timing(&mut r)?,
        }),
        1 => Response::Execution(Execution {
            device: get_device(&mut r)?,
            epoch: r.u64()?,
            policy: get_policy(&mut r)?,
            mask: get_mask(&mut r)?,
            fidelity: r.f64()?,
            pulse_count: r.u64()? as usize,
            provenance: if r.boolean()? {
                Some(get_provenance(&mut r)?)
            } else {
                None
            },
            timing: get_timing(&mut r)?,
        }),
        tag => {
            return Err(WireError::UnknownTag {
                what: "Response",
                tag,
            })
        }
    };
    r.finish()?;
    Ok(resp)
}

/// Encode a typed service error payload.
pub fn encode_error(err: &ServiceError) -> Vec<u8> {
    let mut w = W::default();
    put_service_error(&mut w, err);
    w.buf
}

/// Decode a typed service error payload.
///
/// # Errors
///
/// Any [`WireError`] the payload triggers, including trailing bytes.
pub fn decode_error(payload: &[u8]) -> Result<ServiceError, WireError> {
    let mut r = R::new(payload);
    let e = get_service_error(&mut r)?;
    r.finish()?;
    Ok(e)
}

// ---------------------------------------------------------------------------
// Frame I/O
// ---------------------------------------------------------------------------

/// Transport-or-codec failure while reading a frame.
#[derive(Debug)]
pub enum FrameError {
    /// The underlying stream failed.
    Io(std::io::Error),
    /// The bytes arrived but were not a valid frame.
    Wire(WireError),
}

impl std::fmt::Display for FrameError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FrameError::Io(e) => write!(f, "frame i/o failed: {e}"),
            FrameError::Wire(e) => write!(f, "bad frame: {e}"),
        }
    }
}

impl std::error::Error for FrameError {}

impl From<std::io::Error> for FrameError {
    fn from(e: std::io::Error) -> Self {
        FrameError::Io(e)
    }
}

impl From<WireError> for FrameError {
    fn from(e: WireError) -> Self {
        FrameError::Wire(e)
    }
}

/// Write one frame (header + payload) to `stream`. With
/// [`FLAG_CHECKSUM`] in `flags`, a CRC32 trailer is appended (and
/// counted in the declared length) so the receiver can detect in-flight
/// corruption.
///
/// # Errors
///
/// Propagates stream write failures.
pub fn write_frame(
    stream: &mut impl Write,
    kind: FrameKind,
    flags: u8,
    payload: &[u8],
) -> std::io::Result<()> {
    let checksummed = flags & FLAG_CHECKSUM != 0;
    let len = payload.len() as u32 + if checksummed { 4 } else { 0 };
    let mut head = [0u8; HEADER_BYTES];
    head[0..4].copy_from_slice(&MAGIC.to_le_bytes());
    head[4] = VERSION;
    head[5] = kind as u8;
    head[6] = flags;
    head[7] = 0;
    head[8..12].copy_from_slice(&len.to_le_bytes());
    stream.write_all(&head)?;
    stream.write_all(payload)?;
    if checksummed {
        stream.write_all(&adapt_service::persist::crc32(payload).to_le_bytes())?;
    }
    stream.flush()
}

/// Read one frame from `stream`, rejecting bad magic/version and
/// payloads over `max_payload` before allocating them.
///
/// # Errors
///
/// [`FrameError::Io`] on stream failures (including clean EOF),
/// [`FrameError::Wire`] on framing violations.
pub fn read_frame(
    stream: &mut impl Read,
    max_payload: u32,
) -> Result<(FrameHeader, Vec<u8>), FrameError> {
    let mut head = [0u8; HEADER_BYTES];
    stream.read_exact(&mut head)?;
    let magic = u32::from_le_bytes(head[0..4].try_into().unwrap());
    if magic != MAGIC {
        return Err(WireError::BadMagic(magic).into());
    }
    if !(MIN_VERSION..=VERSION).contains(&head[4]) {
        return Err(WireError::BadVersion(head[4]).into());
    }
    let kind = FrameKind::from_u8(head[5])?;
    let flags = head[6];
    let len = u32::from_le_bytes(head[8..12].try_into().unwrap());
    if len > max_payload {
        return Err(WireError::Oversize {
            len,
            max: max_payload,
        }
        .into());
    }
    let mut payload = vec![0u8; len as usize];
    stream.read_exact(&mut payload)?;
    if flags & FLAG_CHECKSUM != 0 {
        if payload.len() < 4 {
            return Err(WireError::UnexpectedEof {
                needed: 4,
                have: payload.len(),
            }
            .into());
        }
        let trailer = payload.split_off(payload.len() - 4);
        let expected = u32::from_le_bytes([trailer[0], trailer[1], trailer[2], trailer[3]]);
        let got = adapt_service::persist::crc32(&payload);
        if got != expected {
            return Err(WireError::ChecksumMismatch { expected, got }.into());
        }
    }
    // `len` reports the payload as returned (trailer verified + stripped).
    let len = payload.len() as u32;
    Ok((FrameHeader { kind, flags, len }, payload))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn frame_header_round_trips_over_a_buffer() {
        let mut buf = Vec::new();
        write_frame(&mut buf, FrameKind::Request, FLAG_FORWARDED, b"abc").unwrap();
        assert_eq!(buf.len(), HEADER_BYTES + 3);
        let (head, payload) = read_frame(&mut buf.as_slice(), 1024).unwrap();
        assert_eq!(head.kind, FrameKind::Request);
        assert_eq!(head.flags, FLAG_FORWARDED);
        assert_eq!(payload, b"abc");
    }

    #[test]
    fn bad_magic_and_version_are_rejected() {
        let mut buf = Vec::new();
        write_frame(&mut buf, FrameKind::Response, 0, b"").unwrap();
        let mut wrong_magic = buf.clone();
        wrong_magic[0] ^= 0xff;
        assert!(matches!(
            read_frame(&mut wrong_magic.as_slice(), 1024),
            Err(FrameError::Wire(WireError::BadMagic(_)))
        ));
        let mut wrong_version = buf.clone();
        wrong_version[4] = 99;
        assert!(matches!(
            read_frame(&mut wrong_version.as_slice(), 1024),
            Err(FrameError::Wire(WireError::BadVersion(99)))
        ));
    }

    #[test]
    fn oversize_payload_is_rejected_before_allocation() {
        let mut buf = Vec::new();
        write_frame(&mut buf, FrameKind::Request, 0, &[0u8; 64]).unwrap();
        assert!(matches!(
            read_frame(&mut buf.as_slice(), 16),
            Err(FrameError::Wire(WireError::Oversize { len: 64, max: 16 }))
        ));
    }

    #[test]
    fn trailing_bytes_are_a_typed_error() {
        let mut payload = encode_error(&ServiceError::Lost);
        payload.push(0);
        assert_eq!(
            decode_error(&payload),
            Err(WireError::TrailingBytes { extra: 1 })
        );
    }

    #[test]
    fn unknown_tags_are_typed_not_guessed() {
        assert_eq!(
            decode_error(&[250]),
            Err(WireError::UnknownTag {
                what: "ServiceError",
                tag: 250
            })
        );
    }

    #[test]
    fn request_deadline_is_remaining_budget_on_arrival() {
        let circuit = {
            let mut c = qcirc::Circuit::new(2);
            c.h(0).cx(0, 1);
            c
        };
        let req = Request::RecommendMask {
            circuit,
            device: DeviceId::Guadalupe,
            protocol: DdProtocol::Xy4,
            budget: SearchBudget::default(),
            deadline_ms: None,
            tenancy: Default::default(),
        };
        let wire = WireDeadline {
            budget_ms: Some(200),
            elapsed_ms: 60,
        };
        let payload = encode_request(&req, wire);
        let (decoded, deadline) = decode_request(&payload).unwrap();
        assert_eq!(deadline, wire);
        assert_eq!(decoded.deadline_ms(), Some(140));
    }

    fn tenancy_request(tenancy: Tenancy) -> Request {
        let mut c = qcirc::Circuit::new(2);
        c.h(0).cx(0, 1);
        Request::RecommendMask {
            circuit: c,
            device: DeviceId::Rome,
            protocol: DdProtocol::Xy4,
            budget: SearchBudget::default(),
            deadline_ms: None,
            tenancy,
        }
    }

    #[test]
    fn tenancy_rides_the_extension_block() {
        for tenancy in [
            Tenancy::default(),
            Tenancy::with_class(7, PriorityClass::Interactive),
            Tenancy::with_class(u32::MAX, PriorityClass::Batch),
        ] {
            let payload = encode_request(&tenancy_request(tenancy), WireDeadline::unbounded());
            let (decoded, _) = decode_request(&payload).unwrap();
            assert_eq!(decoded.tenancy(), tenancy);
        }
    }

    #[test]
    fn v1_payload_without_extensions_decodes_with_default_tenancy() {
        // A v1 sender's payload ends right after the qasm string. Build
        // one by truncating a v2 payload at its extension block: the
        // block is the last 1 + 1 + 4 + 5 bytes (count, tag, len, body).
        let tenancy = Tenancy::with_class(3, PriorityClass::Interactive);
        let payload = encode_request(&tenancy_request(tenancy), WireDeadline::unbounded());
        let v1 = &payload[..payload.len() - 11];
        let (decoded, _) = decode_request(v1).unwrap();
        assert_eq!(decoded.tenancy(), Tenancy::default());
    }

    #[test]
    fn unknown_extension_tags_are_skipped_not_fatal() {
        let tenancy = Tenancy::with_class(5, PriorityClass::Batch);
        let mut payload = encode_request(&tenancy_request(tenancy), WireDeadline::unbounded());
        // Rewrite the count to 2 and append an unknown extension
        // (tag 200, 3 opaque bytes) a future version might send.
        let count_at = payload.len() - 11;
        payload[count_at] = 2;
        payload.push(200);
        payload.extend_from_slice(&3u32.to_le_bytes());
        payload.extend_from_slice(&[0xde, 0xad, 0xbe]);
        let (decoded, _) = decode_request(&payload).unwrap();
        assert_eq!(decoded.tenancy(), tenancy, "known ext still decoded");
    }

    #[test]
    fn quota_exhausted_round_trips() {
        let e = ServiceError::QuotaExhausted {
            tenant: TenantId(42),
            retry_after_ms: 250,
        };
        let payload = encode_error(&e);
        assert_eq!(decode_error(&payload).unwrap(), e);
    }

    #[test]
    fn v1_frames_are_still_accepted() {
        let mut buf = Vec::new();
        write_frame(&mut buf, FrameKind::Request, 0, b"abc").unwrap();
        buf[4] = 1; // a v1 peer's header
        let (head, payload) = read_frame(&mut buf.as_slice(), 1024).unwrap();
        assert_eq!(head.kind, FrameKind::Request);
        assert_eq!(payload, b"abc");
        buf[4] = 0; // below MIN_VERSION: rejected
        assert!(matches!(
            read_frame(&mut buf.as_slice(), 1024),
            Err(FrameError::Wire(WireError::BadVersion(0)))
        ));
    }
}
