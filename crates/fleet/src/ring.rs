//! Rendezvous (highest-random-weight) hashing of route keys onto
//! shards.
//!
//! Every `(key, shard)` pair gets a pseudo-random 64-bit weight from a
//! splitmix64 mix; a key is owned by the shard with the highest weight.
//! Two properties fall out of the construction, both pinned by the
//! property tests in `tests/ring_props.rs`:
//!
//! - **Order independence.** Ownership depends only on the *set* of
//!   shards (the argmax over a set), never on insertion order.
//! - **Exact minimal movement.** When one shard joins, the only keys
//!   that move are the ones the new shard now wins; when one leaves,
//!   the only keys that move are the ones it owned. In expectation a
//!   join/leave of one among N remaps K/N of K keys — the classic
//!   consistent-hashing bound.
//!
//! Weights also give each key a full deterministic *preference order*
//! over shards ([`Ring::ranked`]): the failover order the router walks
//! when the owner is down. Rerouting around a dead shard is therefore
//! exactly "owner among the live subset" — deterministic, and identical
//! to what a ring built without the dead shard would compute.

use adapt_service::DeviceId;

/// A shard's identity in the fleet. Stable across restarts: a shard
/// that dies and comes back keeps its id (and thus its key ownership).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct ShardId(pub u32);

impl std::fmt::Display for ShardId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "shard-{}", self.0)
    }
}

/// splitmix64 finalizer: the standard 64-bit avalanche mix.
fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    let mut z = x;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// The 64-bit route key for a request: the target device mixed with the
/// structural (`adapt_service::logical_hash`) hash of the circuit.
/// Epoch is deliberately *not* part of the key — a device's keys stay
/// on their shard across calibration epochs, so the owning shard's
/// cache keeps its history (and its stale-serve ladder) through drift.
pub fn route_key(device: DeviceId, logical_hash: u64) -> u64 {
    // FNV-1a over the stable device name, then avalanche together with
    // the circuit hash.
    let dev = device
        .name()
        .bytes()
        .fold(0xcbf2_9ce4_8422_2325u64, |h, b| {
            (h ^ b as u64).wrapping_mul(0x0000_0100_0000_01b3)
        });
    splitmix64(dev ^ splitmix64(logical_hash))
}

/// The pseudo-random weight of `(key, shard)` — the rendezvous score.
fn weight(key: u64, shard: ShardId) -> u64 {
    splitmix64(key ^ splitmix64(0x5bd1_e995 ^ u64::from(shard.0)))
}

/// A rendezvous-hash ring: the set of shards a fleet routes across.
///
/// # Examples
///
/// ```
/// use adapt_fleet::ring::{Ring, ShardId};
///
/// let ring = Ring::new([ShardId(0), ShardId(1), ShardId(2)]);
/// let owner = ring.owner(42).unwrap();
/// // Ownership is a function of the shard *set*: insertion order is
/// // irrelevant.
/// let same = Ring::new([ShardId(2), ShardId(0), ShardId(1)]);
/// assert_eq!(same.owner(42), Some(owner));
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Ring {
    /// Sorted, deduplicated shard set.
    shards: Vec<ShardId>,
}

impl Ring {
    /// A ring over the given shards (duplicates collapsed).
    pub fn new<I: IntoIterator<Item = ShardId>>(shards: I) -> Self {
        let mut shards: Vec<ShardId> = shards.into_iter().collect();
        shards.sort_unstable();
        shards.dedup();
        Ring { shards }
    }

    /// Adds a shard; `false` if it was already present.
    pub fn add(&mut self, shard: ShardId) -> bool {
        match self.shards.binary_search(&shard) {
            Ok(_) => false,
            Err(pos) => {
                self.shards.insert(pos, shard);
                true
            }
        }
    }

    /// Removes a shard; `false` if it was not present.
    pub fn remove(&mut self, shard: ShardId) -> bool {
        match self.shards.binary_search(&shard) {
            Ok(pos) => {
                self.shards.remove(pos);
                true
            }
            Err(_) => false,
        }
    }

    /// Whether the shard is in the ring.
    pub fn contains(&self, shard: ShardId) -> bool {
        self.shards.binary_search(&shard).is_ok()
    }

    /// Number of shards.
    pub fn len(&self) -> usize {
        self.shards.len()
    }

    /// Whether the ring is empty.
    pub fn is_empty(&self) -> bool {
        self.shards.is_empty()
    }

    /// The shard set, ascending.
    pub fn shards(&self) -> &[ShardId] {
        &self.shards
    }

    /// The shard owning `key`: the rendezvous argmax over the ring.
    /// `None` on an empty ring. Ties (vanishingly rare with 64-bit
    /// weights) break toward the lower shard id, deterministically.
    pub fn owner(&self, key: u64) -> Option<ShardId> {
        Self::owner_among(key, self.shards.iter().copied())
    }

    /// The owner of `key` among an arbitrary subset of shards — what
    /// failover routing computes when some shards are down. For any
    /// subset S, `owner_among(key, S)` equals `Ring::new(S).owner(key)`.
    pub fn owner_among<I: IntoIterator<Item = ShardId>>(key: u64, shards: I) -> Option<ShardId> {
        shards
            .into_iter()
            .max_by_key(|&s| (weight(key, s), std::cmp::Reverse(s)))
    }

    /// Every shard ranked by descending weight for `key`: the key's
    /// deterministic failover order. `ranked(key)[0]` is the owner; a
    /// router that walks this list skipping dead shards lands exactly
    /// where `owner_among(key, live)` points.
    pub fn ranked(&self, key: u64) -> Vec<ShardId> {
        let mut ranked = self.shards.clone();
        ranked.sort_by_key(|&s| (std::cmp::Reverse(weight(key, s)), s));
        ranked
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_ring_owns_nothing() {
        let ring = Ring::new([]);
        assert!(ring.is_empty());
        assert_eq!(ring.owner(7), None);
        assert!(ring.ranked(7).is_empty());
    }

    #[test]
    fn single_shard_owns_everything() {
        let ring = Ring::new([ShardId(3)]);
        for key in 0..64u64 {
            assert_eq!(ring.owner(key), Some(ShardId(3)));
        }
    }

    #[test]
    fn duplicates_collapse() {
        let ring = Ring::new([ShardId(1), ShardId(1), ShardId(0)]);
        assert_eq!(ring.shards(), &[ShardId(0), ShardId(1)]);
    }

    #[test]
    fn ranked_head_is_owner_and_tail_is_live_subset_owner() {
        let ring = Ring::new((0..5).map(ShardId));
        for key in 0..256u64 {
            let ranked = ring.ranked(key);
            assert_eq!(ranked.len(), 5);
            assert_eq!(Some(ranked[0]), ring.owner(key));
            // Skipping the owner, the next-ranked shard is the owner
            // among the remaining set — the failover invariant.
            let live: Vec<ShardId> = ring
                .shards()
                .iter()
                .copied()
                .filter(|&s| s != ranked[0])
                .collect();
            assert_eq!(
                Some(ranked[1]),
                Ring::owner_among(key, live.iter().copied())
            );
        }
    }

    #[test]
    fn route_key_separates_devices() {
        // Same circuit hash on different devices must not collapse to
        // one route key (devices spread across shards).
        let h = 0xdead_beefu64;
        let keys: Vec<u64> = DeviceId::ALL.iter().map(|&d| route_key(d, h)).collect();
        let mut dedup = keys.clone();
        dedup.sort_unstable();
        dedup.dedup();
        assert_eq!(dedup.len(), keys.len());
    }
}
