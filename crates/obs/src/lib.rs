//! `adapt-obs`: a lightweight, dependency-free metrics + tracing facade.
//!
//! The crates in this workspace each grew their own ad-hoc counters
//! (plan-cache stats, resilient-executor fault stats, service request
//! counters). This crate gives them one vocabulary:
//!
//! - [`Counter`] — monotonically increasing `u64`
//! - [`Gauge`] — signed instantaneous value (queue depth, cache size)
//! - [`Histogram`] — fixed-bucket latency histogram in microseconds
//! - [`SpanTimer`] — RAII scope timer recording into a histogram
//!   (see the [`span!`] macro)
//!
//! all owned by a [`Registry`]. The hot path is a single atomic
//! add/store on a pre-resolved handle — registration (name lookup)
//! happens once, recording never takes a lock. A [`Registry::noop`]
//! registry hands out inert handles so overhead can be measured and
//! bounded against a true baseline.
//!
//! Naming convention: `adapt_<crate>_<name>`, e.g.
//! `adapt_service_requests_total`, `adapt_machine_plan_cache_hits_total`.
//!
//! **Determinism contract:** metrics are observational only. Nothing in
//! the seeded execution path may read a metric back and branch on it;
//! registries collect, render ([`Registry::render_prometheus`] /
//! [`Registry::render_json`]) and nothing else.

use std::collections::BTreeMap;
use std::fmt;
use std::sync::atomic::{AtomicI64, AtomicU64, Ordering};
use std::sync::{Arc, Mutex, OnceLock};
use std::time::Instant;

// ---------------------------------------------------------------------------
// Percentiles (nearest-rank)
// ---------------------------------------------------------------------------

/// Nearest-rank percentile of an **ascending-sorted** sample.
///
/// For `q ∈ (0, 1]` the nearest-rank definition takes the element at
/// rank `⌈q·n⌉` (1-based); `q = 0` maps to the minimum. An empty sample
/// yields `0.0` rather than panicking (an all-rejected load-test run
/// produces no latencies).
///
/// ```
/// use adapt_obs::percentile;
/// assert_eq!(percentile(&[], 0.5), 0.0);
/// assert_eq!(percentile(&[7], 0.99), 7.0);
/// // n=2: p50 is the FIRST element under nearest-rank (rank ⌈0.5·2⌉ = 1),
/// // where midpoint-rounding index math would wrongly pick the second.
/// assert_eq!(percentile(&[10, 20], 0.5), 10.0);
/// ```
pub fn percentile(sorted: &[u64], q: f64) -> f64 {
    let n = sorted.len() as u64;
    if n == 0 {
        return 0.0;
    }
    sorted[(nearest_rank(q, n) - 1) as usize] as f64
}

/// 1-based nearest rank `⌈q·n⌉` clamped into `[1, n]`, so `q = 0` and
/// floating-point spill at `q = 1` both stay in range. The single
/// definition behind every percentile in the suite ([`percentile`],
/// [`Histogram::percentile_us`], the bench harness reports): keeping one
/// copy is what guarantees `percentile(samples, q) <=
/// hist.percentile_us(q)` can be asserted across layers.
///
/// `n` must be nonzero; callers handle the empty-sample case themselves
/// (their zero-value conventions differ).
pub fn nearest_rank(q: f64, n: u64) -> u64 {
    debug_assert!(n > 0, "nearest_rank is undefined for an empty sample");
    let q = q.clamp(0.0, 1.0);
    ((q * n as f64).ceil() as u64).clamp(1, n.max(1))
}

// ---------------------------------------------------------------------------
// Counter
// ---------------------------------------------------------------------------

/// Monotonic counter handle. Cloning shares the underlying cell; a
/// handle from [`Registry::noop`] ignores writes and reads 0.
#[derive(Clone, Default)]
pub struct Counter(Option<Arc<AtomicU64>>);

impl Counter {
    /// An inert counter, useful as a default before wiring a registry.
    pub fn noop() -> Self {
        Counter(None)
    }

    #[inline]
    pub fn inc(&self) {
        self.add(1);
    }

    #[inline]
    pub fn add(&self, n: u64) {
        if let Some(c) = &self.0 {
            c.fetch_add(n, Ordering::Relaxed);
        }
    }

    pub fn get(&self) -> u64 {
        self.0.as_ref().map_or(0, |c| c.load(Ordering::Relaxed))
    }
}

// ---------------------------------------------------------------------------
// Gauge
// ---------------------------------------------------------------------------

/// Instantaneous signed value (queue depth, cache length, peak marks).
#[derive(Clone, Default)]
pub struct Gauge(Option<Arc<AtomicI64>>);

impl Gauge {
    pub fn noop() -> Self {
        Gauge(None)
    }

    #[inline]
    pub fn set(&self, v: i64) {
        if let Some(g) = &self.0 {
            g.store(v, Ordering::Relaxed);
        }
    }

    #[inline]
    pub fn add(&self, n: i64) {
        if let Some(g) = &self.0 {
            g.fetch_add(n, Ordering::Relaxed);
        }
    }

    #[inline]
    pub fn inc(&self) {
        self.add(1);
    }

    #[inline]
    pub fn dec(&self) {
        self.add(-1);
    }

    /// Raise the gauge to `v` if `v` is larger (high-water marks).
    #[inline]
    pub fn set_max(&self, v: i64) {
        if let Some(g) = &self.0 {
            g.fetch_max(v, Ordering::Relaxed);
        }
    }

    pub fn get(&self) -> i64 {
        self.0.as_ref().map_or(0, |g| g.load(Ordering::Relaxed))
    }
}

// ---------------------------------------------------------------------------
// Histogram
// ---------------------------------------------------------------------------

/// Default latency buckets in microseconds: 50µs … 5s.
pub const DEFAULT_BUCKETS_US: &[u64] = &[
    50, 100, 250, 500, 1_000, 2_500, 5_000, 10_000, 25_000, 50_000, 100_000, 250_000, 500_000,
    1_000_000, 2_500_000, 5_000_000,
];

struct HistogramCore {
    /// Upper bounds (inclusive) of the finite buckets, ascending.
    bounds: Vec<u64>,
    /// One count per finite bucket plus a trailing +Inf bucket.
    counts: Vec<AtomicU64>,
    sum: AtomicU64,
    count: AtomicU64,
}

/// Fixed-bucket latency histogram recording microsecond samples.
#[derive(Clone, Default)]
pub struct Histogram(Option<Arc<HistogramCore>>);

impl Histogram {
    pub fn noop() -> Self {
        Histogram(None)
    }

    /// Record one sample (microseconds): two relaxed atomic adds plus a
    /// branchless bucket search over a small fixed array.
    #[inline]
    pub fn record(&self, us: u64) {
        if let Some(h) = &self.0 {
            let idx = h.bounds.partition_point(|&b| b < us);
            h.counts[idx].fetch_add(1, Ordering::Relaxed);
            h.sum.fetch_add(us, Ordering::Relaxed);
            h.count.fetch_add(1, Ordering::Relaxed);
        }
    }

    /// Start a scope timer; the elapsed time is recorded on drop.
    pub fn time(&self) -> SpanTimer {
        SpanTimer {
            hist: self.clone(),
            start: Instant::now(),
        }
    }

    pub fn count(&self) -> u64 {
        self.0
            .as_ref()
            .map_or(0, |h| h.count.load(Ordering::Relaxed))
    }

    /// Sum of recorded samples, microseconds.
    pub fn sum_us(&self) -> u64 {
        self.0.as_ref().map_or(0, |h| h.sum.load(Ordering::Relaxed))
    }

    /// Nearest-rank percentile resolved to the upper bound of the
    /// bucket holding that rank — an upper estimate consistent with the
    /// exact-sample [`percentile`] (`percentile(samples, q) <=
    /// hist.percentile_us(q)` always holds for the same samples).
    /// Returns `f64::INFINITY` when the rank lands in the overflow
    /// bucket and `0.0` when the histogram is empty.
    pub fn percentile_us(&self, q: f64) -> f64 {
        let Some(h) = &self.0 else { return 0.0 };
        let total = h.count.load(Ordering::Relaxed);
        if total == 0 {
            return 0.0;
        }
        let rank = nearest_rank(q, total);
        let mut seen = 0u64;
        for (i, c) in h.counts.iter().enumerate() {
            seen += c.load(Ordering::Relaxed);
            if seen >= rank {
                return h.bounds.get(i).map_or(f64::INFINITY, |&b| b as f64);
            }
        }
        f64::INFINITY
    }
}

/// RAII scope timer returned by [`Histogram::time`] / the [`span!`]
/// macro. Records elapsed microseconds into its histogram on drop.
pub struct SpanTimer {
    hist: Histogram,
    start: Instant,
}

impl SpanTimer {
    /// Elapsed time so far, without stopping the timer.
    pub fn elapsed_us(&self) -> u64 {
        self.start.elapsed().as_micros() as u64
    }
}

impl Drop for SpanTimer {
    fn drop(&mut self) {
        let us = self.start.elapsed().as_micros() as u64;
        self.hist.record(us);
    }
}

/// Scoped timer: `let _span = span!(hist);` or
/// `let _span = span!(registry, "adapt_core_neighborhood_us");`
/// records the scope's wall time into the histogram when the guard
/// drops.
#[macro_export]
macro_rules! span {
    ($registry:expr, $name:expr) => {
        $registry.histogram($name).time()
    };
    ($hist:expr) => {
        $hist.time()
    };
}

// ---------------------------------------------------------------------------
// Registry
// ---------------------------------------------------------------------------

#[derive(Default)]
struct Inner {
    counters: BTreeMap<String, Arc<AtomicU64>>,
    gauges: BTreeMap<String, Arc<AtomicI64>>,
    histograms: BTreeMap<String, Arc<HistogramCore>>,
}

/// Named-metric registry. Registration takes a short-lived lock; the
/// returned handles record lock-free. A disabled (`noop`) registry
/// hands out inert handles and renders an empty document.
pub struct Registry {
    inner: Mutex<Inner>,
    enabled: bool,
}

impl fmt::Debug for Registry {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Registry")
            .field("enabled", &self.enabled)
            .finish()
    }
}

impl Default for Registry {
    fn default() -> Self {
        Self::new()
    }
}

impl Registry {
    pub fn new() -> Self {
        Registry {
            inner: Mutex::new(Inner::default()),
            enabled: true,
        }
    }

    /// A registry whose handles do nothing — the baseline for overhead
    /// measurements and the default for components run without
    /// observability wired up.
    pub fn noop() -> Self {
        Registry {
            inner: Mutex::new(Inner::default()),
            enabled: false,
        }
    }

    pub fn is_enabled(&self) -> bool {
        self.enabled
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, Inner> {
        // Metric maps are append-only and always valid; recover from
        // poisoning rather than cascading a panic.
        self.inner.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Get or register the counter `name`.
    pub fn counter(&self, name: &str) -> Counter {
        if !self.enabled {
            return Counter::noop();
        }
        let mut inner = self.lock();
        let cell = inner
            .counters
            .entry(name.to_string())
            .or_insert_with(|| Arc::new(AtomicU64::new(0)))
            .clone();
        Counter(Some(cell))
    }

    /// Get or register the gauge `name`.
    pub fn gauge(&self, name: &str) -> Gauge {
        if !self.enabled {
            return Gauge::noop();
        }
        let mut inner = self.lock();
        let cell = inner
            .gauges
            .entry(name.to_string())
            .or_insert_with(|| Arc::new(AtomicI64::new(0)))
            .clone();
        Gauge(Some(cell))
    }

    /// Get or register the histogram `name` with [`DEFAULT_BUCKETS_US`].
    pub fn histogram(&self, name: &str) -> Histogram {
        self.histogram_with_buckets(name, DEFAULT_BUCKETS_US)
    }

    /// Get or register the histogram `name` with explicit bucket upper
    /// bounds (ascending, microseconds). Bounds are fixed at first
    /// registration; later calls reuse the existing buckets.
    pub fn histogram_with_buckets(&self, name: &str, bounds_us: &[u64]) -> Histogram {
        if !self.enabled {
            return Histogram::noop();
        }
        debug_assert!(bounds_us.windows(2).all(|w| w[0] < w[1]));
        let mut inner = self.lock();
        let core = inner
            .histograms
            .entry(name.to_string())
            .or_insert_with(|| {
                Arc::new(HistogramCore {
                    bounds: bounds_us.to_vec(),
                    counts: (0..=bounds_us.len()).map(|_| AtomicU64::new(0)).collect(),
                    sum: AtomicU64::new(0),
                    count: AtomicU64::new(0),
                })
            })
            .clone();
        Histogram(Some(core))
    }

    /// Render every metric in Prometheus text exposition format.
    pub fn render_prometheus(&self) -> String {
        let inner = self.lock();
        let mut out = String::new();
        for (name, c) in &inner.counters {
            out.push_str(&format!("# TYPE {name} counter\n"));
            out.push_str(&format!("{name} {}\n", c.load(Ordering::Relaxed)));
        }
        for (name, g) in &inner.gauges {
            out.push_str(&format!("# TYPE {name} gauge\n"));
            out.push_str(&format!("{name} {}\n", g.load(Ordering::Relaxed)));
        }
        for (name, h) in &inner.histograms {
            out.push_str(&format!("# TYPE {name} histogram\n"));
            let mut cumulative = 0u64;
            for (i, count) in h.counts.iter().enumerate() {
                cumulative += count.load(Ordering::Relaxed);
                let le = h
                    .bounds
                    .get(i)
                    .map_or_else(|| "+Inf".to_string(), |b| b.to_string());
                out.push_str(&format!("{name}_bucket{{le=\"{le}\"}} {cumulative}\n"));
            }
            out.push_str(&format!("{name}_sum {}\n", h.sum.load(Ordering::Relaxed)));
            out.push_str(&format!(
                "{name}_count {}\n",
                h.count.load(Ordering::Relaxed)
            ));
        }
        out
    }

    /// Render every metric as a JSON object (hand-rolled; names are
    /// `[a-z0-9_]` by convention so no escaping is required).
    pub fn render_json(&self) -> String {
        let inner = self.lock();
        let mut parts = Vec::new();
        let mut counters = Vec::new();
        for (name, c) in &inner.counters {
            counters.push(format!("\"{name}\":{}", c.load(Ordering::Relaxed)));
        }
        parts.push(format!("\"counters\":{{{}}}", counters.join(",")));
        let mut gauges = Vec::new();
        for (name, g) in &inner.gauges {
            gauges.push(format!("\"{name}\":{}", g.load(Ordering::Relaxed)));
        }
        parts.push(format!("\"gauges\":{{{}}}", gauges.join(",")));
        let mut hists = Vec::new();
        for (name, h) in &inner.histograms {
            let buckets: Vec<String> = h
                .counts
                .iter()
                .enumerate()
                .map(|(i, c)| {
                    let le = h
                        .bounds
                        .get(i)
                        .map_or_else(|| "\"+Inf\"".to_string(), |b| b.to_string());
                    format!("[{le},{}]", c.load(Ordering::Relaxed))
                })
                .collect();
            hists.push(format!(
                "\"{name}\":{{\"sum_us\":{},\"count\":{},\"buckets\":[{}]}}",
                h.sum.load(Ordering::Relaxed),
                h.count.load(Ordering::Relaxed),
                buckets.join(",")
            ));
        }
        parts.push(format!("\"histograms\":{{{}}}", hists.join(",")));
        format!("{{{}}}", parts.join(","))
    }
}

/// Parse a Prometheus text exposition into `(sample_name, value)`
/// pairs (labels kept as part of the name). Returns an error naming
/// the first malformed line — the `metrics-smoke` CI gate uses this to
/// assert the exposition stays well formed.
pub fn parse_prometheus(text: &str) -> Result<Vec<(String, f64)>, String> {
    let mut samples = Vec::new();
    for (lineno, line) in text.lines().enumerate() {
        let line = line.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        // `name{labels} value` or `name value`; the value is the text
        // after the last space.
        let Some((name, value)) = line.rsplit_once(' ') else {
            return Err(format!("line {}: no value in {line:?}", lineno + 1));
        };
        let value: f64 = value
            .parse()
            .map_err(|e| format!("line {}: bad value {value:?}: {e}", lineno + 1))?;
        if name.is_empty() {
            return Err(format!("line {}: empty metric name", lineno + 1));
        }
        samples.push((name.to_string(), value));
    }
    Ok(samples)
}

/// Look up a parsed sample by exact name.
pub fn sample_value(samples: &[(String, f64)], name: &str) -> Option<f64> {
    samples.iter().find(|(n, _)| n == name).map(|(_, v)| *v)
}

// ---------------------------------------------------------------------------
// Exposition merging (fleet aggregation)
// ---------------------------------------------------------------------------

/// Re-render a Prometheus exposition with `key="value"` added as the
/// first label of every sample line. Comment lines (`# TYPE`, `# HELP`)
/// pass through untouched; existing labels (histogram `le`) are kept
/// after the injected one.
///
/// This is the per-instance half of fleet aggregation: each shard's
/// samples gain a `shard="N"` label, so identical metric names from
/// many registries stop colliding when the documents are merged.
pub fn inject_label(exposition: &str, key: &str, value: &str) -> String {
    let mut out = String::with_capacity(exposition.len() + 64);
    for line in exposition.lines() {
        let trimmed = line.trim_end();
        if trimmed.is_empty() || trimmed.starts_with('#') {
            out.push_str(trimmed);
            out.push('\n');
            continue;
        }
        let Some((name_part, value_part)) = trimmed.rsplit_once(' ') else {
            // Not a sample line; preserve rather than drop.
            out.push_str(trimmed);
            out.push('\n');
            continue;
        };
        if let Some((name, rest)) = name_part.split_once('{') {
            // `name{existing...} value` → `name{key="v",existing...} value`
            out.push_str(&format!("{name}{{{key}=\"{value}\",{rest} {value_part}\n"));
        } else {
            out.push_str(&format!("{name_part}{{{key}=\"{value}\"}} {value_part}\n"));
        }
    }
    out
}

/// Merge several Prometheus expositions into one document. Each part is
/// `(label_value, exposition)`: its samples gain `label_key="label_value"`
/// (see [`inject_label`]) and metric families are grouped so every
/// `# TYPE` line appears exactly once, with the member samples from all
/// parts underneath it in part order. Families are emitted in sorted
/// name order, matching [`Registry::render_prometheus`]'s deterministic
/// per-registry ordering.
///
/// Label values should be distinct per part (shard ids); a repeated
/// value is not an error but yields indistinguishable duplicate samples.
pub fn merge_expositions(label_key: &str, parts: &[(String, String)]) -> String {
    // family name → (TYPE comment line, sample lines from all parts)
    let mut families: BTreeMap<String, (String, Vec<String>)> = BTreeMap::new();
    for (label_value, exposition) in parts {
        let labeled = inject_label(exposition, label_key, label_value);
        let mut current: Option<String> = None;
        for line in labeled.lines() {
            if line.is_empty() {
                continue;
            }
            if let Some(rest) = line.strip_prefix("# TYPE ") {
                let family = rest.split(' ').next().unwrap_or(rest).to_string();
                families
                    .entry(family.clone())
                    .or_insert_with(|| (line.to_string(), Vec::new()));
                current = Some(family);
                continue;
            }
            if line.starts_with('#') {
                continue; // HELP and friends: dropped in the merged view.
            }
            // A sample line. Attribute it to the family the enclosing
            // TYPE block declared; a stray untyped sample gets its own
            // family keyed (and sorted) by its metric name.
            let family = current
                .clone()
                .unwrap_or_else(|| line.split(['{', ' ']).next().unwrap_or(line).to_string());
            families
                .entry(family)
                .or_insert_with(|| (String::new(), Vec::new()))
                .1
                .push(line.to_string());
        }
    }
    let mut out = String::new();
    for (_, (type_line, samples)) in families {
        if !type_line.is_empty() {
            out.push_str(&type_line);
            out.push('\n');
        }
        for s in samples {
            out.push_str(&s);
            out.push('\n');
        }
    }
    out
}

// ---------------------------------------------------------------------------
// Global registry
// ---------------------------------------------------------------------------

static GLOBAL: OnceLock<Arc<Registry>> = OnceLock::new();

/// The process-wide registry. Library crates (machine, core) record
/// here; components that need isolated accounting (one service per
/// test, a replay service) take an explicit `Arc<Registry>` instead.
pub fn global() -> Arc<Registry> {
    GLOBAL.get_or_init(|| Arc::new(Registry::new())).clone()
}

// ---------------------------------------------------------------------------
// Tests
// ---------------------------------------------------------------------------

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn render_prometheus_ordering_is_pinned() {
        // The exposition is a deterministic function of registry
        // contents: counters first, then gauges, then histograms, each
        // section in BTreeMap (lexicographic) name order. Fleet merging
        // relies on this — pin the exact bytes.
        let r = Registry::new();
        r.counter("b_requests_total").add(3);
        r.counter("a_errors_total").inc();
        r.gauge("z_depth").set(7);
        let h = r.histogram_with_buckets("m_latency_us", &[10, 100]);
        h.record(5);
        h.record(50);
        h.record(5000);
        let expected = "\
# TYPE a_errors_total counter\n\
a_errors_total 1\n\
# TYPE b_requests_total counter\n\
b_requests_total 3\n\
# TYPE z_depth gauge\n\
z_depth 7\n\
# TYPE m_latency_us histogram\n\
m_latency_us_bucket{le=\"10\"} 1\n\
m_latency_us_bucket{le=\"100\"} 2\n\
m_latency_us_bucket{le=\"+Inf\"} 3\n\
m_latency_us_sum 5055\n\
m_latency_us_count 3\n";
        assert_eq!(r.render_prometheus(), expected);
    }

    #[test]
    fn inject_label_rewrites_bare_and_labeled_samples() {
        let text = "# TYPE a counter\na 1\n# TYPE h histogram\nh_bucket{le=\"10\"} 2\nh_sum 9\nh_count 2\n";
        let labeled = inject_label(text, "shard", "3");
        assert_eq!(
            labeled,
            "# TYPE a counter\n\
             a{shard=\"3\"} 1\n\
             # TYPE h histogram\n\
             h_bucket{shard=\"3\",le=\"10\"} 2\n\
             h_sum{shard=\"3\"} 9\n\
             h_count{shard=\"3\"} 2\n"
        );
        // The labeled document still parses.
        let samples = parse_prometheus(&labeled).unwrap();
        assert_eq!(sample_value(&samples, "a{shard=\"3\"}"), Some(1.0));
    }

    #[test]
    fn merge_expositions_dedups_type_lines_and_keeps_part_order() {
        let r0 = Registry::new();
        r0.counter("adapt_requests_total").add(5);
        r0.gauge("adapt_queue_depth").set(2);
        let r1 = Registry::new();
        r1.counter("adapt_requests_total").add(7);
        r1.counter("adapt_forwards_total").inc();
        let merged = merge_expositions(
            "shard",
            &[
                ("0".to_string(), r0.render_prometheus()),
                ("1".to_string(), r1.render_prometheus()),
            ],
        );
        // One TYPE line per family, families sorted, same-name samples
        // from both shards disambiguated by label, shard order stable.
        assert_eq!(
            merged,
            "# TYPE adapt_forwards_total counter\n\
             adapt_forwards_total{shard=\"1\"} 1\n\
             # TYPE adapt_queue_depth gauge\n\
             adapt_queue_depth{shard=\"0\"} 2\n\
             # TYPE adapt_requests_total counter\n\
             adapt_requests_total{shard=\"0\"} 5\n\
             adapt_requests_total{shard=\"1\"} 7\n"
        );
        assert!(parse_prometheus(&merged).is_ok());
    }

    #[test]
    fn percentile_empty_is_zero_not_panic() {
        assert_eq!(percentile(&[], 0.0), 0.0);
        assert_eq!(percentile(&[], 0.5), 0.0);
        assert_eq!(percentile(&[], 0.99), 0.0);
    }

    #[test]
    fn percentile_singleton_is_the_element_at_every_q() {
        for q in [0.0, 0.01, 0.5, 0.99, 1.0] {
            assert_eq!(percentile(&[42], q), 42.0);
        }
    }

    #[test]
    fn percentile_n2_uses_nearest_rank_not_midpoint_rounding() {
        // rank ⌈0.5·2⌉ = 1 → the FIRST element; the old
        // `((n-1) as f64 * q).round()` indexing picked the second.
        assert_eq!(percentile(&[10, 20], 0.5), 10.0);
        assert_eq!(percentile(&[10, 20], 0.51), 20.0);
        assert_eq!(percentile(&[10, 20], 0.99), 20.0);
        assert_eq!(percentile(&[10, 20], 0.0), 10.0);
        assert_eq!(percentile(&[10, 20], 1.0), 20.0);
    }

    #[test]
    fn percentile_n100_matches_textbook_ranks() {
        let v: Vec<u64> = (1..=100).collect();
        assert_eq!(percentile(&v, 0.50), 50.0);
        assert_eq!(percentile(&v, 0.99), 99.0);
        assert_eq!(percentile(&v, 0.999), 100.0);
        assert_eq!(percentile(&v, 1.0), 100.0);
        assert_eq!(percentile(&v, 0.0), 1.0);
        assert_eq!(percentile(&v, 0.01), 1.0);
    }

    #[test]
    fn nearest_rank_is_the_single_shared_definition() {
        // The exact-sample and histogram percentiles both defer to
        // `nearest_rank`; spot-check the rank math at the edges the
        // n=0/1/2/100 tests above pin down behaviorally.
        assert_eq!(nearest_rank(0.0, 1), 1);
        assert_eq!(nearest_rank(1.0, 1), 1);
        assert_eq!(nearest_rank(0.5, 2), 1);
        assert_eq!(nearest_rank(0.51, 2), 2);
        assert_eq!(nearest_rank(0.99, 100), 99);
        assert_eq!(nearest_rank(0.999, 100), 100);
        // Out-of-range q clamps instead of panicking or escaping [1, n].
        assert_eq!(nearest_rank(-3.0, 10), 1);
        assert_eq!(nearest_rank(7.0, 10), 10);
    }

    #[test]
    fn counter_and_gauge_round_trip() {
        let r = Registry::new();
        let c = r.counter("adapt_test_total");
        c.inc();
        c.add(4);
        assert_eq!(c.get(), 5);
        // Same name → same cell.
        assert_eq!(r.counter("adapt_test_total").get(), 5);

        let g = r.gauge("adapt_test_depth");
        g.inc();
        g.inc();
        g.dec();
        assert_eq!(g.get(), 1);
        g.set_max(10);
        g.set_max(3);
        assert_eq!(g.get(), 10);
    }

    #[test]
    fn noop_registry_records_nothing() {
        let r = Registry::noop();
        let c = r.counter("adapt_test_total");
        c.add(100);
        assert_eq!(c.get(), 0);
        let h = r.histogram("adapt_test_us");
        h.record(1_000);
        assert_eq!(h.count(), 0);
        assert_eq!(h.percentile_us(0.5), 0.0);
        assert!(r.render_prometheus().is_empty());
    }

    #[test]
    fn histogram_buckets_and_percentiles() {
        let r = Registry::new();
        let h = r.histogram_with_buckets("adapt_test_us", &[10, 100, 1_000]);
        for us in [5, 50, 500, 5_000] {
            h.record(us);
        }
        assert_eq!(h.count(), 4);
        assert_eq!(h.sum_us(), 5_555);
        // Ranks 1..4 land in buckets ≤10, ≤100, ≤1000, +Inf.
        assert_eq!(h.percentile_us(0.25), 10.0);
        assert_eq!(h.percentile_us(0.5), 100.0);
        assert_eq!(h.percentile_us(0.75), 1_000.0);
        assert!(h.percentile_us(0.99).is_infinite());
        // The histogram estimate upper-bounds the exact sample value.
        let exact = [5u64, 50, 500, 5_000];
        for q in [0.25, 0.5, 0.75, 0.99] {
            assert!(percentile(&exact, q) <= h.percentile_us(q));
        }
    }

    #[test]
    fn span_timer_records_on_drop() {
        let r = Registry::new();
        let h = r.histogram("adapt_test_span_us");
        {
            let _span = span!(h);
            std::hint::black_box(0u64);
        }
        {
            let _span = span!(r, "adapt_test_span_us");
        }
        assert_eq!(h.count(), 2);
    }

    #[test]
    fn prometheus_render_parses_and_exposes_values() {
        let r = Registry::new();
        r.counter("adapt_test_requests_total").add(7);
        r.gauge("adapt_test_queue_depth").set(3);
        let h = r.histogram_with_buckets("adapt_test_us", &[10, 100]);
        h.record(5);
        h.record(50);
        h.record(500);

        let text = r.render_prometheus();
        let samples = parse_prometheus(&text).expect("well-formed exposition");
        assert_eq!(
            sample_value(&samples, "adapt_test_requests_total"),
            Some(7.0)
        );
        assert_eq!(sample_value(&samples, "adapt_test_queue_depth"), Some(3.0));
        assert_eq!(
            sample_value(&samples, "adapt_test_us_bucket{le=\"10\"}"),
            Some(1.0)
        );
        assert_eq!(
            sample_value(&samples, "adapt_test_us_bucket{le=\"100\"}"),
            Some(2.0)
        );
        assert_eq!(
            sample_value(&samples, "adapt_test_us_bucket{le=\"+Inf\"}"),
            Some(3.0)
        );
        assert_eq!(sample_value(&samples, "adapt_test_us_count"), Some(3.0));
        assert_eq!(sample_value(&samples, "adapt_test_us_sum"), Some(555.0));
    }

    #[test]
    fn json_render_is_valid_enough_to_eyeball() {
        let r = Registry::new();
        r.counter("adapt_test_total").inc();
        r.histogram_with_buckets("adapt_test_us", &[10]).record(3);
        let json = r.render_json();
        assert!(json.starts_with('{') && json.ends_with('}'));
        assert!(json.contains("\"adapt_test_total\":1"));
        assert!(json.contains("\"sum_us\":3"));
        assert!(json.contains("[\"+Inf\",0]"));
    }

    #[test]
    fn parse_prometheus_rejects_garbage() {
        assert!(parse_prometheus("adapt_x 1\nnot-a-sample\n").is_err());
        assert!(parse_prometheus("adapt_x notanumber\n").is_err());
        assert!(parse_prometheus("# comment only\n").unwrap().is_empty());
    }

    #[test]
    fn global_registry_is_shared() {
        let c = global().counter("adapt_obs_selftest_total");
        c.inc();
        assert!(global().counter("adapt_obs_selftest_total").get() >= 1);
    }
}
