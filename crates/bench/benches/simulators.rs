//! Criterion benchmarks of the simulation substrates: dense state-vector
//! gate throughput, CHP tableau sampling at application and scalability
//! sizes (the Table 2 "SimTime" axis), and Heisenberg-propagation
//! expectations as the seed count grows.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use qcirc::{Circuit, Gate};
use rand::rngs::StdRng;
use rand::SeedableRng;
use statevec::StateVector;
use std::hint::black_box;

fn ghz_clifford(n: usize) -> Circuit {
    let mut c = Circuit::new(n);
    c.h(0);
    for q in 0..(n - 1) as u32 {
        c.cx(q, q + 1);
    }
    for q in 0..n.min(64) as u32 {
        c.measure(q, q);
    }
    c
}

fn bench_statevec(c: &mut Criterion) {
    let mut group = c.benchmark_group("statevec");
    for &n in &[10usize, 14, 18] {
        group.bench_with_input(BenchmarkId::new("layer_1q", n), &n, |b, &n| {
            let h = Gate::H.unitary1().expect("1q");
            let mut sv = StateVector::new(n);
            b.iter(|| {
                for q in 0..n {
                    sv.apply1(black_box(&h), q).expect("in range");
                }
            });
        });
        group.bench_with_input(BenchmarkId::new("layer_2q", n), &n, |b, &n| {
            let cx = Gate::CX.unitary2().expect("2q");
            let mut sv = StateVector::new(n);
            b.iter(|| {
                for q in 0..n - 1 {
                    sv.apply2(black_box(&cx), q, q + 1).expect("in range");
                }
            });
        });
    }
    group.finish();
}

fn bench_chp(c: &mut Criterion) {
    let mut group = c.benchmark_group("chp");
    group.sample_size(20);
    for &n in &[27usize, 64, 100] {
        let circuit = ghz_clifford(n);
        group.bench_with_input(BenchmarkId::new("sample_100_shots", n), &n, |b, _| {
            let mut rng = StdRng::seed_from_u64(7);
            b.iter(|| black_box(stab::sample_counts(&circuit, 100, &mut rng).expect("Clifford")));
        });
        group.bench_with_input(BenchmarkId::new("exact_distribution", n), &n, |b, _| {
            b.iter(|| black_box(stab::exact_distribution(&circuit).expect("Clifford")));
        });
    }
    group.finish();
}

fn bench_heisenberg(c: &mut Criterion) {
    let mut group = c.benchmark_group("heisenberg");
    group.sample_size(20);
    for &seeds in &[0usize, 2, 4, 6] {
        // 40-qubit circuit, beyond dense reach, with `seeds` branch points.
        let n = 40usize;
        let mut circuit = Circuit::new(n);
        circuit.h(0);
        for q in 0..(n - 1) as u32 {
            circuit.cx(q, q + 1);
        }
        for s in 0..seeds {
            circuit.rz(0.3 + s as f64 * 0.2, (s * 5) as u32);
        }
        for q in 0..8u32 {
            circuit.measure(q, q);
        }
        group.bench_with_input(
            BenchmarkId::new("distribution_8_measured", seeds),
            &seeds,
            |b, _| {
                b.iter(|| {
                    black_box(stab::heisenberg::output_distribution(&circuit).expect("supported"))
                });
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_statevec, bench_chp, bench_heisenberg);
criterion_main!(benches);
