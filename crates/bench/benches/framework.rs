//! Criterion benchmarks of the ADAPT framework itself: decoy
//! construction, DD insertion, one noisy trajectory execution, and a
//! single decoy-scoring step of the localized search.

use adapt::dd::{insert_dd, DdConfig, DdMask, DdProtocol};
use adapt::decoy::{make_decoy, DecoyKind};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use device::Device;
use machine::{ExecutionConfig, Machine};
use std::hint::black_box;
use transpiler::{transpile, TranspileOptions};

fn bench_decoy(c: &mut Criterion) {
    let mut group = c.benchmark_group("decoy");
    let dev = Device::ibmq_toronto(5);
    let t = transpile(
        &benchmarks::qft_bench(6, 42),
        &dev,
        &TranspileOptions::default(),
    );
    for (name, kind) in [
        ("cdc", DecoyKind::Clifford),
        ("cnot_only", DecoyKind::CnotOnly),
        ("sdc4", DecoyKind::Seeded { max_seed_qubits: 4 }),
    ] {
        group.bench_function(BenchmarkId::new("make_qft6", name), |b| {
            b.iter(|| black_box(make_decoy(black_box(&t.timed), kind).expect("decoy")));
        });
    }
    group.finish();
}

fn bench_dd_insertion(c: &mut Criterion) {
    let mut group = c.benchmark_group("dd_insert");
    let dev = Device::ibmq_toronto(5);
    let t = transpile(
        &benchmarks::qft_bench(6, 42),
        &dev,
        &TranspileOptions::default(),
    );
    let wires = adapt::dd::mask_to_wires(DdMask::all(6), &t.initial_layout);
    for protocol in [DdProtocol::Xy4, DdProtocol::IbmqDd, DdProtocol::Cpmg] {
        group.bench_function(BenchmarkId::new("qft6_all", protocol.to_string()), |b| {
            b.iter(|| {
                black_box(insert_dd(
                    black_box(&t.timed),
                    &dev,
                    &wires,
                    &DdConfig::for_protocol(protocol),
                ))
            });
        });
    }
    group.finish();
}

fn bench_execution(c: &mut Criterion) {
    let mut group = c.benchmark_group("machine");
    group.sample_size(10);
    let dev = Device::ibmq_toronto(5);
    let machine = Machine::new(dev.clone());
    for name in ["BV-7", "QFT-6A"] {
        let bench = benchmarks::suite::by_name(name).expect("known");
        let t = transpile(&bench.circuit, &dev, &TranspileOptions::default());
        group.bench_function(BenchmarkId::new("8_trajectories", name), |b| {
            b.iter(|| {
                black_box(
                    machine
                        .execute_timed(
                            &t.timed,
                            &ExecutionConfig {
                                shots: 256,
                                trajectories: 8,
                                seed: 1,
                                threads: 1,
                            },
                        )
                        .expect("execution"),
                )
            });
        });
    }
    group.finish();
}

criterion_group!(benches, bench_decoy, bench_dd_insertion, bench_execution);
criterion_main!(benches);
