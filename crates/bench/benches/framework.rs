//! Criterion benchmarks of the ADAPT framework itself: decoy
//! construction, DD insertion, one noisy trajectory execution, and the
//! full localized mask search serial vs batched (worker threads score a
//! neighborhood's masks in parallel).

use adapt::dd::{insert_dd, DdConfig, DdMask, DdProtocol};
use adapt::decoy::{make_decoy, DecoyKind};
use adapt::search::{localized_search, SearchContext};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use device::Device;
use machine::{ExecutionConfig, Machine};
use std::hint::black_box;
use transpiler::{transpile, TranspileOptions};

fn bench_decoy(c: &mut Criterion) {
    let mut group = c.benchmark_group("decoy");
    let dev = Device::ibmq_toronto(5);
    let t = transpile(
        &benchmarks::qft_bench(6, 42),
        &dev,
        &TranspileOptions::default(),
    );
    for (name, kind) in [
        ("cdc", DecoyKind::Clifford),
        ("cnot_only", DecoyKind::CnotOnly),
        ("sdc4", DecoyKind::Seeded { max_seed_qubits: 4 }),
    ] {
        group.bench_function(BenchmarkId::new("make_qft6", name), |b| {
            b.iter(|| black_box(make_decoy(black_box(&t.timed), kind).expect("decoy")));
        });
    }
    group.finish();
}

fn bench_dd_insertion(c: &mut Criterion) {
    let mut group = c.benchmark_group("dd_insert");
    let dev = Device::ibmq_toronto(5);
    let t = transpile(
        &benchmarks::qft_bench(6, 42),
        &dev,
        &TranspileOptions::default(),
    );
    let wires = adapt::dd::mask_to_wires(DdMask::all(6), &t.initial_layout);
    for protocol in [DdProtocol::Xy4, DdProtocol::IbmqDd, DdProtocol::Cpmg] {
        group.bench_function(BenchmarkId::new("qft6_all", protocol.to_string()), |b| {
            b.iter(|| {
                black_box(insert_dd(
                    black_box(&t.timed),
                    &dev,
                    &wires,
                    &DdConfig::for_protocol(protocol),
                ))
            });
        });
    }
    group.finish();
}

fn bench_execution(c: &mut Criterion) {
    let mut group = c.benchmark_group("machine");
    group.sample_size(10);
    let dev = Device::ibmq_toronto(5);
    let machine = Machine::new(dev.clone());
    for name in ["BV-7", "QFT-6A"] {
        let bench = benchmarks::suite::by_name(name).expect("known");
        let t = transpile(&bench.circuit, &dev, &TranspileOptions::default());
        group.bench_function(BenchmarkId::new("8_trajectories", name), |b| {
            b.iter(|| {
                black_box(
                    machine
                        .execute_timed(
                            &t.timed,
                            &ExecutionConfig {
                                shots: 256,
                                trajectories: 8,
                                seed: 1,
                                threads: 1,
                            },
                        )
                        .expect("execution"),
                )
            });
        });
    }
    group.finish();
}

/// Localized mask search on the 16-wire IBMQ-Guadalupe (QFT-8 program,
/// 2 neighborhoods of 4 → 32 decoy executions per search), serial vs
/// batched. With the batch path each neighborhood's 16 masks go down as
/// one submission and the machine scores them on worker threads; on a
/// multi-core host the `threads/4` line is expected to run ≥2× faster
/// than `threads/1` while returning bit-identical results (see the
/// determinism property test). The program is QFT-8 rather than QFT-16
/// because XY4 pads the 16-qubit schedule with ~52k pulses, pushing one
/// decoy execution to ~a minute — unusable as a benchmark iteration.
fn bench_search(c: &mut Criterion) {
    let mut group = c.benchmark_group("search");
    group.sample_size(10);
    let n = 8usize;
    let dev = Device::ibmq_guadalupe(7);
    let machine = Machine::new(dev.clone());
    let t = transpile(
        &benchmarks::qft_bench(n, 42),
        &dev,
        &TranspileOptions::default(),
    );
    let decoy = make_decoy(&t.timed, DecoyKind::Seeded { max_seed_qubits: 4 }).expect("decoy");
    let order: Vec<u32> = (0..n as u32).collect();
    for threads in [1usize, 4] {
        let ctx = SearchContext::new(
            &machine,
            dev.clone(),
            &decoy,
            &t.initial_layout,
            DdConfig::for_protocol(DdProtocol::Xy4),
            ExecutionConfig {
                shots: 128,
                trajectories: 4,
                seed: 11,
                threads,
            },
            n,
        );
        group.bench_function(BenchmarkId::new("localized_qft8_guadalupe", threads), |b| {
            b.iter(|| black_box(localized_search(&ctx, &order, 4, true).expect("search")));
        });
    }
    group.finish();
}

/// Recording cost of the observability facade, enabled vs noop. The
/// `search` group above runs with instrumentation live (its inner loops
/// increment `adapt_search_*`/`adapt_machine_*` metrics), so these
/// numbers document what that instrumentation adds per operation: a
/// handful of relaxed atomic ops, nanoseconds against search iterations
/// measured in milliseconds.
fn bench_obs(c: &mut Criterion) {
    let mut group = c.benchmark_group("obs");
    for (name, registry) in [
        ("enabled", adapt_obs::Registry::new()),
        ("noop", adapt_obs::Registry::noop()),
    ] {
        let counter = registry.counter("bench_ops_total");
        let hist = registry.histogram("bench_us");
        group.bench_function(BenchmarkId::new("counter_inc", name), |b| {
            b.iter(|| counter.inc());
        });
        group.bench_function(BenchmarkId::new("histogram_record", name), |b| {
            let mut i = 0u64;
            b.iter(|| {
                i = i.wrapping_add(997);
                hist.record(black_box(i % 4096));
            });
        });
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_decoy,
    bench_dd_insertion,
    bench_execution,
    bench_search,
    bench_obs
);
criterion_main!(benches);
