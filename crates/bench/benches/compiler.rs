//! Criterion benchmarks of the transpiler pipeline: decomposition,
//! routing/layout, peephole optimization and scheduling on the paper's
//! workloads and machines.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use device::Device;
use std::hint::black_box;
use transpiler::{transpile, TranspileOptions};

fn bench_transpile(c: &mut Criterion) {
    let mut group = c.benchmark_group("transpile");
    group.sample_size(30);
    let toronto = Device::ibmq_toronto(3);
    for bench in benchmarks::paper_suite() {
        if !matches!(bench.name, "BV-8" | "QFT-7A" | "QAOA-10B") {
            continue;
        }
        group.bench_with_input(
            BenchmarkId::new("toronto", bench.name),
            &bench,
            |b, bench| {
                b.iter(|| {
                    black_box(transpile(
                        black_box(&bench.circuit),
                        &toronto,
                        &TranspileOptions::default(),
                    ))
                });
            },
        );
    }
    group.finish();
}

fn bench_passes(c: &mut Criterion) {
    let mut group = c.benchmark_group("passes");
    let qft = benchmarks::qft_bench(7, 19);
    group.bench_function("decompose_qft7", |b| {
        b.iter(|| black_box(transpiler::decompose_circuit(black_box(&qft))));
    });
    let decomposed = transpiler::decompose_circuit(&qft);
    group.bench_function("optimize_qft7", |b| {
        b.iter(|| black_box(transpiler::optimize_circuit(black_box(&decomposed))));
    });
    let dev = Device::ibmq_toronto(3);
    group.bench_function("noise_adaptive_layout_qft7", |b| {
        b.iter(|| black_box(transpiler::noise_adaptive_layout(&decomposed, &dev)));
    });
    let t = transpile(&qft, &dev, &TranspileOptions::default());
    group.bench_function("gst_build_qft7", |b| {
        b.iter(|| black_box(adapt::GateSequenceTable::build(&t.timed)));
    });
    group.finish();
}

criterion_group!(benches, bench_transpile, bench_passes);
criterion_main!(benches);
