//! Shared experiment infrastructure: budgets, policy sweeps, and the
//! Runtime-Best oracle with a bounded mask budget.

use adapt::{Adapt, AdaptConfig, DdMask, DdProtocol, Policy};
use benchmarks::BenchmarkSpec;
use device::{Device, SeedSpawner};
use machine::{ExecutionConfig, Machine};
use std::path::PathBuf;

/// Experiment-wide budget knobs. `quick` mode cuts shots/trajectories and
/// oracle sweeps so the full suite finishes on a laptop-class core; the
/// full mode matches the budgets recorded in EXPERIMENTS.md.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ExperimentCfg {
    /// Master seed for the whole experiment.
    pub seed: u64,
    /// Reduced-budget mode.
    pub quick: bool,
}

impl ExperimentCfg {
    /// Reads `--quick` and `--seed N` from the command line.
    pub fn from_args() -> Self {
        let mut cfg = ExperimentCfg {
            seed: 2021,
            quick: false,
        };
        let mut args = std::env::args().skip(1);
        while let Some(a) = args.next() {
            match a.as_str() {
                "--quick" => cfg.quick = true,
                "--seed" => {
                    cfg.seed = args
                        .next()
                        .and_then(|s| s.parse().ok())
                        .expect("--seed needs an integer");
                }
                other => panic!("unknown argument {other:?} (expected --quick / --seed N)"),
            }
        }
        cfg
    }

    /// Where CSVs land.
    pub fn out_dir(&self) -> PathBuf {
        PathBuf::from("results")
    }

    /// Execution budget for characterization probes (small circuits).
    pub fn probe_exec(&self, seed: u64) -> ExecutionConfig {
        if self.quick {
            ExecutionConfig {
                shots: 600,
                trajectories: 30,
                seed,
                threads: 0,
            }
        } else {
            ExecutionConfig {
                shots: 2000,
                trajectories: 100,
                seed,
                threads: 0,
            }
        }
    }

    /// Framework configuration for application-level experiments.
    pub fn adapt_cfg(&self, protocol: DdProtocol, seed: u64) -> AdaptConfig {
        let spawner = SeedSpawner::new(seed);
        let (s_shots, s_traj, f_shots, f_traj) = if self.quick {
            (768, 24, 1536, 48)
        } else {
            (2048, 48, 6144, 96)
        };
        AdaptConfig {
            dd: adapt::DdConfig::for_protocol(protocol),
            search_exec: ExecutionConfig {
                shots: s_shots,
                trajectories: s_traj,
                seed: spawner.derive(1),
                threads: 0,
            },
            final_exec: ExecutionConfig {
                shots: f_shots,
                trajectories: f_traj,
                seed: spawner.derive(2),
                threads: 0,
            },
            ..Default::default()
        }
    }

    /// Cap on Runtime-Best oracle candidates: exhaustive up to this many
    /// masks, random-sampled beyond (the paper sweeps exhaustively on
    /// hardware; we bound the sweep and note it in EXPERIMENTS.md).
    pub fn oracle_budget(&self) -> usize {
        if self.quick {
            32
        } else {
            96
        }
    }
}

/// Relative fidelities of the four policies for one benchmark.
#[derive(Debug, Clone)]
pub struct BenchResult {
    /// Benchmark name.
    pub name: String,
    /// Absolute baseline fidelity (No-DD).
    pub baseline: f64,
    /// All-DD fidelity relative to baseline.
    pub all_dd_rel: f64,
    /// ADAPT fidelity relative to baseline.
    pub adapt_rel: f64,
    /// Runtime-Best fidelity relative to baseline (`None` when skipped).
    pub runtime_best_rel: Option<f64>,
    /// Mask ADAPT chose.
    pub adapt_mask: String,
    /// Decoy executions ADAPT spent.
    pub adapt_search_runs: usize,
}

/// Runs No-DD / All-DD / ADAPT (and optionally a bounded Runtime-Best
/// oracle) for one benchmark on one device.
///
/// # Panics
///
/// Panics on framework errors — experiments are expected to run on valid
/// configurations.
pub fn policy_sweep(
    device: &Device,
    bench: &BenchmarkSpec,
    protocol: DdProtocol,
    cfg: &ExperimentCfg,
    with_oracle: bool,
) -> BenchResult {
    let spawner = SeedSpawner::new(cfg.seed ^ hash_name(bench.name));
    let adapt = Adapt::new(Machine::new(device.clone()));
    let acfg = cfg.adapt_cfg(protocol, spawner.derive(7));

    let no_dd = adapt
        .run_policy(&bench.circuit, Policy::NoDd, &acfg)
        .expect("No-DD run");
    let all_dd = adapt
        .run_policy(&bench.circuit, Policy::AllDd, &acfg)
        .expect("All-DD run");
    let ad = adapt
        .run_policy(&bench.circuit, Policy::Adapt, &acfg)
        .expect("ADAPT run");

    let baseline = no_dd.fidelity.max(1e-4);
    let runtime_best_rel = with_oracle.then(|| {
        oracle_best(&adapt, bench, &acfg, cfg.oracle_budget(), spawner.derive(9)) / baseline
    });

    BenchResult {
        name: bench.name.to_string(),
        baseline: no_dd.fidelity,
        all_dd_rel: all_dd.fidelity / baseline,
        adapt_rel: ad.fidelity / baseline,
        runtime_best_rel,
        adapt_mask: ad.mask.to_string(),
        adapt_search_runs: ad.search_runs,
    }
}

/// Bounded Runtime-Best oracle: sweeps all masks when `2^n ≤ budget`,
/// otherwise a seeded random sample (always including none/all). Returns
/// the best *final-budget* fidelity achieved.
pub fn oracle_best(
    adapt: &Adapt,
    bench: &BenchmarkSpec,
    acfg: &AdaptConfig,
    budget: usize,
    seed: u64,
) -> f64 {
    use rand::Rng;
    let n = bench.circuit.num_qubits();
    let compiled = adapt.compile(&bench.circuit, acfg);
    let ideal = adapt.ideal_output(&bench.circuit).expect("ideal output");
    let masks: Vec<DdMask> = if n <= 16 && (1usize << n) <= budget {
        DdMask::enumerate_all(n)
    } else {
        let mut rng = SeedSpawner::new(seed).rng();
        let mut masks = vec![DdMask::none(n), DdMask::all(n)];
        while masks.len() < budget {
            let bits: u64 = rng.gen();
            let m = DdMask::from_bits(bits, n);
            if !masks.contains(&m) {
                masks.push(m);
            }
        }
        masks
    };
    // Scoring uses the (cheaper) search budget, like ADAPT's own search.
    let score_cfg = AdaptConfig {
        final_exec: acfg.search_exec,
        ..*acfg
    };
    let mut best = f64::MIN;
    let mut best_mask = DdMask::none(n);
    for m in masks {
        let (_, f, _) = adapt
            .run_with_mask(&compiled, &ideal, m, &score_cfg)
            .expect("oracle run");
        if f > best {
            best = f;
            best_mask = m;
        }
    }
    // Re-run the winner at final budget for a fair comparison.
    let (_, f, _) = adapt
        .run_with_mask(&compiled, &ideal, best_mask, acfg)
        .expect("oracle final run");
    f
}

fn hash_name(name: &str) -> u64 {
    name.bytes()
        .fold(0xcbf2_9ce4_8422_2325u64, |h, b| {
            (h ^ b as u64).wrapping_mul(0x1000_0000_01b3)
        })
}

#[cfg(test)]
mod tests {
    use super::*;
    use benchmarks::suite::by_name;

    #[test]
    fn quick_sweep_produces_sane_numbers() {
        let cfg = ExperimentCfg {
            seed: 1,
            quick: true,
        };
        let dev = Device::ibmq_guadalupe(cfg.seed);
        let bench = by_name("QFT-5").unwrap();
        let r = policy_sweep(&dev, &bench, DdProtocol::Xy4, &cfg, false);
        assert!(r.baseline > 0.0 && r.baseline <= 1.0);
        assert!(r.all_dd_rel > 0.0);
        assert!(r.adapt_rel > 0.0);
        assert!(r.adapt_search_runs <= 4 * 5 + 3);
        assert_eq!(r.adapt_mask.len(), 5);
    }

    #[test]
    fn hash_name_distinguishes() {
        assert_ne!(hash_name("BV-7"), hash_name("BV-8"));
    }
}
