//! Shared experiment infrastructure: budgets, policy sweeps, and the
//! Runtime-Best oracle with a bounded mask budget.

use adapt::{Adapt, AdaptConfig, DdMask, DdProtocol, Policy};
use benchmarks::BenchmarkSpec;
use device::{Device, SeedSpawner};
use machine::{
    ExecutionConfig, FaultProfile, FaultStats, FaultyBackend, Machine, ResilientExecutor,
    RetryPolicy,
};
use std::path::PathBuf;
use std::sync::{Arc, Mutex};

/// Experiment-wide budget knobs. `quick` mode cuts shots/trajectories and
/// oracle sweeps so the full suite finishes on a laptop-class core; the
/// full mode matches the budgets recorded in EXPERIMENTS.md.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ExperimentCfg {
    /// Master seed for the whole experiment.
    pub seed: u64,
    /// Reduced-budget mode.
    pub quick: bool,
    /// Resume from checkpoint files left by a killed run.
    pub resume: bool,
    /// Fault-injection profile backends run under.
    pub fault_profile: FaultProfile,
    /// Name of the fault profile (for manifests and summaries).
    pub fault_name: &'static str,
}

impl ExperimentCfg {
    /// CLI usage, printed on argument errors.
    pub const USAGE: &'static str =
        "usage: <experiment> [--quick] [--seed N] [--resume] [--faults none|flaky|lossy|brutal]\n\
        \n\
        --quick          reduced shot/trajectory budgets (laptop-scale pass)\n\
        --seed N         master seed for the whole experiment (default 2021)\n\
        --resume         skip datapoints recorded in results/*.partial.csv checkpoints\n\
        --faults NAME    run backends under a seeded fault-injection profile";

    /// Defaults for a given seed: full budgets, no resume, no faults.
    pub fn new(seed: u64, quick: bool) -> Self {
        ExperimentCfg {
            seed,
            quick,
            resume: false,
            fault_profile: FaultProfile::none(),
            fault_name: "none",
        }
    }

    /// Parses command-line style arguments (without the program name).
    ///
    /// # Errors
    ///
    /// Returns a human-readable message for unknown flags or bad values.
    pub fn parse<I: IntoIterator<Item = String>>(args: I) -> Result<Self, String> {
        let mut cfg = ExperimentCfg::new(2021, false);
        let mut args = args.into_iter();
        while let Some(a) = args.next() {
            match a.as_str() {
                "--quick" => cfg.quick = true,
                "--resume" => cfg.resume = true,
                "--seed" => {
                    let v = args.next().ok_or("--seed needs an integer argument")?;
                    cfg.seed = v
                        .parse()
                        .map_err(|_| format!("--seed needs an integer, got {v:?}"))?;
                }
                "--faults" => {
                    let v = args.next().ok_or("--faults needs a profile name")?;
                    let profile = FaultProfile::by_name(&v).ok_or_else(|| {
                        format!(
                            "unknown fault profile {v:?} (expected one of: {})",
                            FaultProfile::known_names().join(", ")
                        )
                    })?;
                    cfg.fault_profile = profile;
                    cfg.fault_name = FaultProfile::known_names()
                        .iter()
                        .find(|n| **n == v)
                        .expect("profile name just resolved");
                }
                other => return Err(format!("unknown argument {other:?}")),
            }
        }
        Ok(cfg)
    }

    /// Reads the flags from the process command line; prints usage and
    /// exits with status 2 on errors instead of panicking.
    pub fn from_args() -> Self {
        match Self::parse(std::env::args().skip(1)) {
            Ok(cfg) => cfg,
            Err(msg) => {
                eprintln!("error: {msg}\n{}", Self::USAGE);
                std::process::exit(2);
            }
        }
    }

    /// Whether fault injection is active.
    pub fn faults_enabled(&self) -> bool {
        self.fault_name != "none"
    }

    /// Where CSVs land.
    pub fn out_dir(&self) -> PathBuf {
        PathBuf::from("results")
    }

    /// Execution budget for characterization probes (small circuits).
    pub fn probe_exec(&self, seed: u64) -> ExecutionConfig {
        if self.quick {
            ExecutionConfig {
                shots: 600,
                trajectories: 30,
                seed,
                threads: 0,
            }
        } else {
            ExecutionConfig {
                shots: 2000,
                trajectories: 100,
                seed,
                threads: 0,
            }
        }
    }

    /// Framework configuration for application-level experiments.
    pub fn adapt_cfg(&self, protocol: DdProtocol, seed: u64) -> AdaptConfig {
        let spawner = SeedSpawner::new(seed);
        let (s_shots, s_traj, f_shots, f_traj) = if self.quick {
            (768, 24, 1536, 48)
        } else {
            (2048, 48, 6144, 96)
        };
        AdaptConfig {
            dd: adapt::DdConfig::for_protocol(protocol),
            search_exec: ExecutionConfig {
                shots: s_shots,
                trajectories: s_traj,
                seed: spawner.derive(1),
                threads: 0,
            },
            final_exec: ExecutionConfig {
                shots: f_shots,
                trajectories: f_traj,
                seed: spawner.derive(2),
                threads: 0,
            },
            ..Default::default()
        }
    }

    /// Cap on Runtime-Best oracle candidates: exhaustive up to this many
    /// masks, random-sampled beyond (the paper sweeps exhaustively on
    /// hardware; we bound the sweep and note it in EXPERIMENTS.md).
    pub fn oracle_budget(&self) -> usize {
        if self.quick {
            32
        } else {
            96
        }
    }
}

/// Running totals of backend faults and retries across a whole suite
/// invocation, printed by `all_experiments` at the end of a faulty run.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct SuiteFaultSummary {
    /// Policy sweeps that executed under fault injection.
    pub sweeps: u64,
    /// Search neighborhoods that degraded to the all-DD fallback.
    pub degraded_groups: u64,
    /// Accumulated retry-layer statistics.
    pub stats: FaultStats,
}

impl std::fmt::Display for SuiteFaultSummary {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(
            f,
            "{} faulty policy sweeps, {} neighborhoods degraded to all-DD",
            self.sweeps, self.degraded_groups
        )?;
        write!(f, "retry layer: {}", self.stats)
    }
}

static SUITE_FAULTS: Mutex<Option<SuiteFaultSummary>> = Mutex::new(None);

/// Folds one sweep's retry statistics and degradation count into the
/// process-wide summary.
pub fn note_fault_stats(stats: FaultStats, degraded_groups: u64) {
    let mut guard = SUITE_FAULTS.lock().expect("fault summary lock");
    let s = guard.get_or_insert_with(SuiteFaultSummary::default);
    s.sweeps += 1;
    s.degraded_groups += degraded_groups;
    s.stats.requests += stats.requests;
    s.stats.attempts += stats.attempts;
    s.stats.transient_errors += stats.transient_errors;
    s.stats.dropout_discards += stats.dropout_discards;
    s.stats.partial_batches += stats.partial_batches;
    s.stats.partial_accepted += stats.partial_accepted;
    s.stats.exhausted += stats.exhausted;
    s.stats.stale_batches += stats.stale_batches;
    s.stats.total_backoff_ms += stats.total_backoff_ms;
}

/// The process-wide fault summary, if any sweep ran with faults enabled.
pub fn suite_fault_summary() -> Option<SuiteFaultSummary> {
    *SUITE_FAULTS.lock().expect("fault summary lock")
}

/// Builds the execution stack for one sweep: a pristine machine when
/// faults are off, otherwise a seeded [`FaultyBackend`] behind a
/// [`ResilientExecutor`] (returned too, for stats collection).
pub fn make_adapt(
    device: &Device,
    cfg: &ExperimentCfg,
    seed: u64,
) -> (Adapt, Option<Arc<ResilientExecutor>>) {
    let machine = Machine::new(device.clone());
    if !cfg.faults_enabled() {
        return (Adapt::new(machine), None);
    }
    let faulty = FaultyBackend::new(machine, cfg.fault_profile, seed);
    // Experiments are long: give the retry loop a little extra headroom
    // over the library default so a whole-suite run rarely exhausts.
    let policy = RetryPolicy {
        max_attempts: 6,
        ..RetryPolicy::default()
    };
    let exec = Arc::new(ResilientExecutor::with_policy(Arc::new(faulty), policy));
    (Adapt::with_backend(exec.clone()), Some(exec))
}

/// Relative fidelities of the four policies for one benchmark.
#[derive(Debug, Clone)]
pub struct BenchResult {
    /// Benchmark name.
    pub name: String,
    /// Absolute baseline fidelity (No-DD).
    pub baseline: f64,
    /// All-DD fidelity relative to baseline.
    pub all_dd_rel: f64,
    /// ADAPT fidelity relative to baseline.
    pub adapt_rel: f64,
    /// Runtime-Best fidelity relative to baseline (`None` when skipped).
    pub runtime_best_rel: Option<f64>,
    /// Mask ADAPT chose.
    pub adapt_mask: String,
    /// Decoy executions ADAPT spent.
    pub adapt_search_runs: usize,
    /// Search neighborhoods that degraded to all-DD (0 on healthy
    /// backends).
    pub degraded_groups: usize,
}

/// Runs No-DD / All-DD / ADAPT (and optionally a bounded Runtime-Best
/// oracle) for one benchmark on one device.
///
/// # Panics
///
/// Panics on framework errors — experiments are expected to run on valid
/// configurations.
pub fn policy_sweep(
    device: &Device,
    bench: &BenchmarkSpec,
    protocol: DdProtocol,
    cfg: &ExperimentCfg,
    with_oracle: bool,
) -> BenchResult {
    let spawner = SeedSpawner::new(cfg.seed ^ hash_name(bench.name));
    let (adapt, resilient) = make_adapt(device, cfg, spawner.derive(11));
    let acfg = cfg.adapt_cfg(protocol, spawner.derive(7));

    let no_dd = adapt
        .run_policy(&bench.circuit, Policy::NoDd, &acfg)
        .expect("No-DD run");
    let all_dd = adapt
        .run_policy(&bench.circuit, Policy::AllDd, &acfg)
        .expect("All-DD run");
    let ad = adapt
        .run_policy(&bench.circuit, Policy::Adapt, &acfg)
        .expect("ADAPT run");
    for g in &ad.degraded {
        println!("    [degraded] {}: {g}", bench.name);
    }

    let baseline = no_dd.fidelity.max(1e-4);
    let runtime_best_rel = with_oracle.then(|| {
        oracle_best(&adapt, bench, &acfg, cfg.oracle_budget(), spawner.derive(9)) / baseline
    });

    if let Some(exec) = resilient {
        note_fault_stats(exec.stats(), ad.degraded.len() as u64);
    }

    BenchResult {
        name: bench.name.to_string(),
        baseline: no_dd.fidelity,
        all_dd_rel: all_dd.fidelity / baseline,
        adapt_rel: ad.fidelity / baseline,
        runtime_best_rel,
        adapt_mask: ad.mask.to_string(),
        adapt_search_runs: ad.search_runs,
        degraded_groups: ad.degraded.len(),
    }
}

/// Bounded Runtime-Best oracle: sweeps all masks when `2^n ≤ budget`,
/// otherwise a seeded random sample (always including none/all). Returns
/// the best *final-budget* fidelity achieved.
pub fn oracle_best(
    adapt: &Adapt,
    bench: &BenchmarkSpec,
    acfg: &AdaptConfig,
    budget: usize,
    seed: u64,
) -> f64 {
    use rand::Rng;
    let n = bench.circuit.num_qubits();
    let compiled = adapt.compile(&bench.circuit, acfg);
    let ideal = adapt.ideal_output(&bench.circuit).expect("ideal output");
    let masks: Vec<DdMask> = if n <= 16 && (1usize << n) <= budget {
        DdMask::enumerate_all(n)
    } else {
        let mut rng = SeedSpawner::new(seed).rng();
        let mut masks = vec![DdMask::none(n), DdMask::all(n)];
        while masks.len() < budget {
            let bits: u64 = rng.gen();
            let m = DdMask::from_bits(bits, n);
            if !masks.contains(&m) {
                masks.push(m);
            }
        }
        masks
    };
    // Scoring uses the (cheaper) search budget, like ADAPT's own search.
    let score_cfg = AdaptConfig {
        final_exec: acfg.search_exec,
        ..*acfg
    };
    let mut best = f64::MIN;
    let mut best_mask = DdMask::none(n);
    for m in masks {
        let (_, f, _) = adapt
            .run_with_mask(&compiled, &ideal, m, &score_cfg)
            .expect("oracle run");
        if f > best {
            best = f;
            best_mask = m;
        }
    }
    // Re-run the winner at final budget for a fair comparison.
    let (_, f, _) = adapt
        .run_with_mask(&compiled, &ideal, best_mask, acfg)
        .expect("oracle final run");
    f
}

fn hash_name(name: &str) -> u64 {
    name.bytes().fold(0xcbf2_9ce4_8422_2325u64, |h, b| {
        (h ^ b as u64).wrapping_mul(0x1000_0000_01b3)
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use benchmarks::suite::by_name;

    #[test]
    fn quick_sweep_produces_sane_numbers() {
        let cfg = ExperimentCfg::new(1, true);
        let dev = Device::ibmq_guadalupe(cfg.seed);
        let bench = by_name("QFT-5").unwrap();
        let r = policy_sweep(&dev, &bench, DdProtocol::Xy4, &cfg, false);
        assert!(r.baseline > 0.0 && r.baseline <= 1.0);
        assert!(r.all_dd_rel > 0.0);
        assert!(r.adapt_rel > 0.0);
        assert!(r.adapt_search_runs <= 4 * 5 + 3);
        assert_eq!(r.adapt_mask.len(), 5);
    }

    #[test]
    fn hash_name_distinguishes() {
        assert_ne!(hash_name("BV-7"), hash_name("BV-8"));
    }

    fn parse(args: &[&str]) -> Result<ExperimentCfg, String> {
        ExperimentCfg::parse(args.iter().map(|s| s.to_string()))
    }

    #[test]
    fn parse_accepts_all_flags() {
        let cfg = parse(&["--quick", "--seed", "99", "--resume", "--faults", "lossy"]).unwrap();
        assert!(cfg.quick);
        assert!(cfg.resume);
        assert_eq!(cfg.seed, 99);
        assert_eq!(cfg.fault_name, "lossy");
        assert!(cfg.faults_enabled());
        assert_eq!(cfg.fault_profile, machine::FaultProfile::lossy());
    }

    #[test]
    fn parse_defaults_are_clean() {
        let cfg = parse(&[]).unwrap();
        assert_eq!(cfg.seed, 2021);
        assert!(!cfg.quick && !cfg.resume && !cfg.faults_enabled());
    }

    #[test]
    fn parse_rejects_bad_input_with_messages() {
        assert!(parse(&["--wat"]).unwrap_err().contains("unknown argument"));
        assert!(parse(&["--seed"]).unwrap_err().contains("--seed"));
        assert!(parse(&["--seed", "abc"]).unwrap_err().contains("integer"));
        let e = parse(&["--faults", "cosmic"]).unwrap_err();
        assert!(e.contains("cosmic") && e.contains("lossy"), "{e}");
    }

    #[test]
    fn faulty_sweep_completes_and_reports() {
        // ≥10% transient failures plus a mid-search staleness event: the
        // sweep must complete without panicking and the summary must see
        // retry activity.
        let mut cfg = ExperimentCfg::new(3, true);
        cfg.fault_profile = machine::FaultProfile::lossy();
        cfg.fault_name = "lossy";
        let dev = Device::ibmq_guadalupe(cfg.seed);
        let bench = by_name("QFT-5").unwrap();
        let r = policy_sweep(&dev, &bench, DdProtocol::Xy4, &cfg, false);
        assert!(r.baseline > 0.0 && r.baseline <= 1.0);
        assert!(r.adapt_rel > 0.0);
        let summary = suite_fault_summary().expect("faulty sweep recorded stats");
        assert!(summary.sweeps >= 1);
        assert!(summary.stats.requests > 0);
        assert!(summary.stats.attempts >= summary.stats.requests);
    }

    #[test]
    fn faulty_sweep_fidelity_close_to_clean_at_same_seed() {
        // The resilient stack retries transient failures and tops up
        // truncated batches under derived seeds, so fidelity stays close
        // to (not necessarily identical to) the fault-free run.
        let clean_cfg = ExperimentCfg::new(3, true);
        let mut faulty_cfg = clean_cfg;
        faulty_cfg.fault_profile = machine::FaultProfile::lossy();
        faulty_cfg.fault_name = "lossy";
        let dev = Device::ibmq_toronto(clean_cfg.seed);
        let bench = by_name("QFT-6A").unwrap();
        let clean = policy_sweep(&dev, &bench, DdProtocol::Xy4, &clean_cfg, false);
        let faulty = policy_sweep(&dev, &bench, DdProtocol::Xy4, &faulty_cfg, false);
        let d_base = (faulty.baseline - clean.baseline).abs();
        assert!(
            d_base < 0.05,
            "faulty baseline {} vs clean {}",
            faulty.baseline,
            clean.baseline
        );
        let d_all = (faulty.all_dd_rel * faulty.baseline.max(1e-4)
            - clean.all_dd_rel * clean.baseline.max(1e-4))
        .abs();
        assert!(d_all < 0.05, "All-DD fidelity drifted {d_all} under faults");
        // ADAPT may pick a different mask when neighborhoods degrade to
        // the all-DD fallback; the requirement is that faults never cost
        // more than 5 fidelity points against the fault-free run.
        let clean_adapt = clean.adapt_rel * clean.baseline.max(1e-4);
        let faulty_adapt = faulty.adapt_rel * faulty.baseline.max(1e-4);
        assert!(
            faulty_adapt >= clean_adapt - 0.05,
            "faulty ADAPT fidelity {faulty_adapt} vs clean {clean_adapt}"
        );
    }
}
