//! Result emission: terminal tables and CSV files under `results/`.

use std::fmt::Write as _;
use std::fs;
use std::io;
use std::path::{Path, PathBuf};

/// A simple fixed-column terminal table.
///
/// # Examples
///
/// ```
/// use bench_harness::Table;
/// let mut t = Table::new(&["bench", "fidelity"]);
/// t.row(&["BV-7", "0.62"]);
/// let s = t.render();
/// assert!(s.contains("BV-7"));
/// ```
#[derive(Debug, Clone)]
pub struct Table {
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates a table with the given column headers.
    pub fn new(header: &[&str]) -> Self {
        Table {
            header: header.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row (must match the header width).
    ///
    /// # Panics
    ///
    /// Panics on column-count mismatch.
    pub fn row(&mut self, cells: &[&str]) -> &mut Self {
        assert_eq!(cells.len(), self.header.len(), "column count mismatch");
        self.rows
            .push(cells.iter().map(|s| s.to_string()).collect());
        self
    }

    /// Appends a row of already-owned cells.
    ///
    /// # Panics
    ///
    /// Panics on column-count mismatch.
    pub fn row_owned(&mut self, cells: Vec<String>) -> &mut Self {
        assert_eq!(cells.len(), self.header.len(), "column count mismatch");
        self.rows.push(cells);
        self
    }

    /// Renders with aligned columns.
    pub fn render(&self) -> String {
        let ncols = self.header.len();
        let mut widths: Vec<usize> = self.header.iter().map(|h| h.len()).collect();
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate() {
                widths[i] = widths[i].max(cell.len());
            }
        }
        let mut out = String::new();
        let fmt_row = |cells: &[String], widths: &[usize], out: &mut String| {
            for (i, cell) in cells.iter().enumerate() {
                let _ = write!(out, "{:<width$}", cell, width = widths[i] + 2);
            }
            out.push('\n');
        };
        fmt_row(&self.header, &widths, &mut out);
        let total: usize = widths.iter().map(|w| w + 2).sum::<usize>();
        out.push_str(&"-".repeat(total.min(120)));
        out.push('\n');
        for row in &self.rows {
            fmt_row(row, &widths, &mut out);
        }
        let _ = ncols;
        out
    }

    /// Prints the rendered table to stdout.
    pub fn print(&self) {
        print!("{}", self.render());
    }
}

/// A CSV file accumulating under `results/`.
#[derive(Debug)]
pub struct Csv {
    path: PathBuf,
    buffer: String,
}

impl Csv {
    /// Opens a CSV named `results/<name>.csv` with the given header.
    pub fn create(out_dir: &Path, name: &str, header: &[&str]) -> Self {
        let path = out_dir.join(format!("{name}.csv"));
        let mut buffer = String::new();
        let _ = writeln!(buffer, "{}", header.join(","));
        Csv { path, buffer }
    }

    /// Appends a record.
    pub fn row(&mut self, cells: &[String]) {
        let _ = writeln!(self.buffer, "{}", cells.join(","));
    }

    /// Appends a record of display-able values.
    pub fn rowd(&mut self, cells: &[&dyn std::fmt::Display]) {
        let cells: Vec<String> = cells.iter().map(|c| c.to_string()).collect();
        self.row(&cells);
    }

    /// Writes the file to disk.
    ///
    /// # Errors
    ///
    /// Propagates I/O failures.
    pub fn flush(&self) -> io::Result<()> {
        if let Some(parent) = self.path.parent() {
            fs::create_dir_all(parent)?;
        }
        fs::write(&self.path, &self.buffer)?;
        println!("  wrote {}", self.path.display());
        Ok(())
    }
}

/// Renders a sparse text histogram for terminal output (used by the
/// distribution figures).
pub fn text_histogram(values: &[f64], lo: f64, hi: f64, bins: usize) -> String {
    let mut counts = vec![0usize; bins];
    for &v in values {
        let t = ((v - lo) / (hi - lo)).clamp(0.0, 1.0 - 1e-12);
        counts[(t * bins as f64) as usize] += 1;
    }
    let max = counts.iter().copied().max().unwrap_or(1).max(1);
    let mut out = String::new();
    for (i, &c) in counts.iter().enumerate() {
        let bl = lo + (hi - lo) * i as f64 / bins as f64;
        let bh = lo + (hi - lo) * (i + 1) as f64 / bins as f64;
        let bar = "#".repeat((c * 50).div_ceil(max).min(50));
        let _ = writeln!(out, "  [{bl:6.2},{bh:6.2})  {c:5}  {bar}");
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_aligns_and_contains_rows() {
        let mut t = Table::new(&["a", "bench"]);
        t.row(&["1", "x"]).row(&["22", "yy"]);
        let s = t.render();
        assert!(s.contains("bench"));
        assert!(s.lines().count() >= 4);
    }

    #[test]
    #[should_panic(expected = "column count mismatch")]
    fn table_rejects_bad_rows() {
        Table::new(&["a"]).row(&["1", "2"]);
    }

    #[test]
    fn csv_writes_and_flushes() {
        let dir = std::env::temp_dir().join("adapt_csv_test");
        let mut csv = Csv::create(&dir, "t", &["x", "y"]);
        csv.row(&["1".into(), "2".into()]);
        csv.rowd(&[&3, &4.5]);
        csv.flush().unwrap();
        let content = std::fs::read_to_string(dir.join("t.csv")).unwrap();
        assert!(content.starts_with("x,y\n1,2\n3,4.5\n"));
    }

    #[test]
    fn histogram_buckets_values() {
        let s = text_histogram(&[0.1, 0.1, 0.9], 0.0, 1.0, 2);
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines.len(), 2);
        assert!(lines[0].contains("2"));
        assert!(lines[1].contains("1"));
    }
}
