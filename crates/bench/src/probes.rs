//! Helpers for the single-qubit characterization experiments (§3, §6.4):
//! schedule an idle-probe circuit, optionally splice a DD sequence into
//! the probe's idle window, execute, and report the survival probability
//! of the correct (all-zeros) outcome.

use adapt::dd::{insert_dd, DdConfig, DdProtocol};
use machine::{ExecutionConfig, Machine};
use qcirc::Circuit;
use transpiler::{decompose_circuit, schedule, SchedulePolicy};

/// DD treatment of a probe's idle window.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ProbeDd {
    /// Free evolution.
    Free,
    /// Framework-inserted sequence of the given protocol.
    Protocol(DdProtocol),
}

/// Runs a characterization circuit on the machine and returns the
/// probability of the ideal outcome `0` (probe fidelity).
///
/// The circuit is decomposed and ASAP-scheduled (ASAP keeps the prepared
/// state exposed during the idle window); for [`ProbeDd::Protocol`], the
/// configured DD sequence is inserted into every eligible idle window of
/// `probe_wire` before execution.
///
/// # Panics
///
/// Panics on executor errors (probe circuits are tiny and valid).
pub fn probe_fidelity(
    machine: &Machine,
    circuit: &Circuit,
    probe_wire: u32,
    dd: ProbeDd,
    exec: &ExecutionConfig,
) -> f64 {
    let physical = decompose_circuit(circuit);
    let timed = schedule(&physical, machine.device(), SchedulePolicy::Asap);
    let timed = match dd {
        ProbeDd::Free => timed,
        ProbeDd::Protocol(p) => {
            insert_dd(
                &timed,
                machine.device(),
                &[probe_wire],
                &DdConfig::for_protocol(p),
            )
            .timed
        }
    };
    let counts = machine
        .execute_timed(&timed, exec)
        .expect("probe execution");
    counts.probability(0)
}

/// Like [`probe_fidelity`] but with an explicit DD configuration (used by
/// the Fig. 16 standalone protocol comparison, which disables the
/// conservative window segmenting).
pub fn probe_fidelity_with(
    machine: &Machine,
    circuit: &Circuit,
    probe_wire: u32,
    dd: DdConfig,
    exec: &ExecutionConfig,
) -> f64 {
    let physical = decompose_circuit(circuit);
    let timed = schedule(&physical, machine.device(), SchedulePolicy::Asap);
    let timed = insert_dd(&timed, machine.device(), &[probe_wire], &dd).timed;
    let counts = machine
        .execute_timed(&timed, exec)
        .expect("probe execution");
    counts.probability(0)
}

#[cfg(test)]
mod tests {
    use super::*;
    use benchmarks::characterization::idle_probe;
    use device::Device;

    #[test]
    fn dd_probe_beats_free_probe_on_long_idle() {
        let machine = Machine::new(Device::ibmq_london(3));
        let c = idle_probe(5, 0, std::f64::consts::FRAC_PI_2, 12_000.0);
        let exec = ExecutionConfig {
            shots: 1500,
            trajectories: 60,
            seed: 9,
            threads: 1,
        };
        let free = probe_fidelity(&machine, &c, 0, ProbeDd::Free, &exec);
        let dd = probe_fidelity(&machine, &c, 0, ProbeDd::Protocol(DdProtocol::Xy4), &exec);
        assert!(dd > free, "XY4 {dd} must beat free {free} at 12µs idle");
    }
}
