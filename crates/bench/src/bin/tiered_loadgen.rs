//! Tiered-loadgen harness (see the experiments module docs). Exits
//! nonzero when any provenance variant goes unexercised, the 250 ms
//! cohort misses its 99% within-deadline SLO, a worker panics, a
//! heuristic or stale answer is mistaken for a fresh search result, or
//! two identical seeded runs diverge.
fn main() {
    let cfg = bench_harness::runner::ExperimentCfg::from_args();
    bench_harness::experiments::tiered_loadgen::run(&cfg);
}
