//! Regenerates the paper's table5 (see the experiments module docs).
fn main() {
    let cfg = bench_harness::runner::ExperimentCfg::from_args();
    bench_harness::experiments::table5::run(&cfg);
}
