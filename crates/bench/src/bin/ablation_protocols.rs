//! Regenerates the DD-protocol-zoo ablation.
fn main() {
    let cfg = bench_harness::runner::ExperimentCfg::from_args();
    bench_harness::experiments::ablation_protocols::run(&cfg);
}
