//! Mask-service load generation (see the experiments module docs).
//! Exits nonzero when a worker panics, the cache hit rate is ≤ 50%, or
//! cache-hit and fresh-search responses diverge for any key.
fn main() {
    let cfg = bench_harness::runner::ExperimentCfg::from_args();
    bench_harness::experiments::service_loadgen::run(&cfg);
}
