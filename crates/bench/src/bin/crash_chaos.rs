//! Crash-chaos harness (see the experiments module docs). Exits
//! nonzero when a recovery panics, injected storage corruption is not
//! quarantined exactly, a post-recovery response diverges from the
//! undamaged reference, the warm-restart hit rate falls below 90%, or
//! the seeded storm replay is not bit-identical.
fn main() {
    let cfg = bench_harness::runner::ExperimentCfg::from_args();
    bench_harness::experiments::crash_chaos::run(&cfg);
}
