//! Runs the entire experiment suite in order, regenerating every table
//! and figure of the paper plus the ablations. Pass `--quick` for a
//! reduced-budget pass.
use bench_harness::experiments as ex;

fn main() {
    let cfg = bench_harness::runner::ExperimentCfg::from_args();
    let t0 = std::time::Instant::now();
    println!("ADAPT experiment suite (seed {}, quick={})", cfg.seed, cfg.quick);
    ex::table1::run(&cfg);
    ex::fig03::run(&cfg);
    ex::fig04::run(&cfg);
    ex::fig05::run(&cfg);
    ex::fig06::run(&cfg);
    ex::fig08::run(&cfg);
    ex::fig09::run(&cfg);
    ex::table2::run(&cfg);
    ex::fig13::run(&cfg);
    ex::fig14::run(&cfg);
    ex::fig15::run(&cfg);
    ex::table5::run(&cfg);
    ex::fig16::run(&cfg);
    ex::ablation_noise::run(&cfg);
    ex::ablation_search::run(&cfg);
    ex::ablation_protocols::run(&cfg);
    ex::ablation_decoy::run(&cfg);
    println!("\nfull suite completed in {:.1} minutes", t0.elapsed().as_secs_f64() / 60.0);
}
