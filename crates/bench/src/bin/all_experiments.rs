//! Runs the entire experiment suite in order, regenerating every table
//! and figure of the paper plus the ablations. Pass `--quick` for a
//! reduced-budget pass, `--faults <profile>` to run the backends under
//! seeded fault injection, and `--resume` to continue a killed run from
//! its `results/*.partial.csv` checkpoints.
use bench_harness::experiments as ex;

fn main() {
    let cfg = bench_harness::runner::ExperimentCfg::from_args();
    let t0 = std::time::Instant::now();
    println!(
        "ADAPT experiment suite (seed {}, quick={}, faults={}, resume={})",
        cfg.seed, cfg.quick, cfg.fault_name, cfg.resume
    );
    ex::table1::run(&cfg);
    ex::fig03::run(&cfg);
    ex::fig04::run(&cfg);
    ex::fig05::run(&cfg);
    ex::fig06::run(&cfg);
    ex::fig08::run(&cfg);
    ex::fig09::run(&cfg);
    ex::table2::run(&cfg);
    ex::fig13::run(&cfg);
    ex::fig14::run(&cfg);
    ex::fig15::run(&cfg);
    ex::table5::run(&cfg);
    ex::fig16::run(&cfg);
    ex::ablation_noise::run(&cfg);
    ex::ablation_search::run(&cfg);
    ex::ablation_protocols::run(&cfg);
    ex::ablation_decoy::run(&cfg);
    if let Some(summary) = bench_harness::runner::suite_fault_summary() {
        println!("\n== fault/retry summary ==\n{summary}");
    }
    println!(
        "\nfull suite completed in {:.1} minutes",
        t0.elapsed().as_secs_f64() / 60.0
    );
}
