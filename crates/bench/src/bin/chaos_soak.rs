//! Chaos-soak harness (see the experiments module docs). Exits nonzero
//! when a worker panics, a response escapes its deadline untagged, the
//! flapping device's breaker fails to trip and recover, the dead
//! device's breaker is not open at the end, healthy-device p99 exceeds
//! 2× the no-chaos baseline, or two identical runs diverge.
fn main() {
    let cfg = bench_harness::runner::ExperimentCfg::from_args();
    bench_harness::experiments::chaos_soak::run(&cfg);
}
