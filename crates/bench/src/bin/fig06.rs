//! Regenerates the paper's Figure 06 (see the experiments module docs).
fn main() {
    let cfg = bench_harness::runner::ExperimentCfg::from_args();
    bench_harness::experiments::fig06::run(&cfg);
}
