//! Regenerates the paper's Figure 09 (see the experiments module docs).
fn main() {
    let cfg = bench_harness::runner::ExperimentCfg::from_args();
    bench_harness::experiments::fig09::run(&cfg);
}
