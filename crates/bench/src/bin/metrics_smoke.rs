//! CI smoke check of the observability layer.
//!
//! Two assertions, both cheap enough for every CI run:
//!
//! 1. **Recording stays cheap**: incrementing a counter and recording a
//!    histogram sample on an enabled registry must cost nanoseconds —
//!    bounded against the no-op registry baseline — so instrumentation
//!    can sit on hot paths (plan-cache lookups, per-execution timing)
//!    without showing up in the `search` benchmarks.
//! 2. **The pipeline is wired**: one small recommendation driven through
//!    the full stack (service → search → resilient executor → machine)
//!    must leave non-zero `adapt_service_*`, `adapt_search_*` and
//!    `adapt_machine_*` counters in the global registry, and the
//!    Prometheus exposition must parse.
//!
//! Exits nonzero (panics) when either property breaks.

use adapt_obs::{parse_prometheus, sample_value, Registry};
use std::time::Instant;

fn main() {
    overhead();
    workload();
    println!("metrics smoke: ok");
}

/// Bounds the per-op recording cost of an enabled registry against the
/// no-op baseline. The bound is deliberately generous (hundreds of
/// nanoseconds of headroom on an atomics-only path) so the check never
/// flakes on loaded CI machines while still catching an accidental
/// lock or allocation on the hot path.
fn overhead() {
    const OPS: u64 = 1_000_000;
    let time_ops = |registry: &Registry| {
        let ops = registry.counter("smoke_ops_total");
        let lat = registry.histogram("smoke_us");
        let t0 = Instant::now();
        for i in 0..OPS {
            ops.inc();
            lat.record(i % 4096);
        }
        t0.elapsed().as_nanos() as f64 / OPS as f64
    };
    let real = Registry::new();
    let noop = Registry::noop();
    time_ops(&real); // warm-up
    let real_ns = time_ops(&real);
    let noop_ns = time_ops(&noop);
    println!("  overhead: {real_ns:.1} ns/op enabled vs {noop_ns:.1} ns/op noop");
    assert!(
        real_ns - noop_ns < 250.0,
        "recording must stay within 250 ns/op of the noop baseline \
         (got {real_ns:.1} vs {noop_ns:.1}) — did a lock or allocation \
         land on the hot path?"
    );
}

/// Drives one recommendation through the full stack and checks that
/// every instrumented layer recorded into the global registry.
fn workload() {
    use adapt_service::{DeviceId, MaskService, Request, SearchBudget, ServiceConfig, TierPolicy};
    let svc = MaskService::start(ServiceConfig {
        devices: vec![DeviceId::Rome],
        workers: 2,
        registry: adapt_obs::global(),
        ..ServiceConfig::default()
    });
    let mut circuit = qcirc::Circuit::new(3);
    circuit.h(0).cx(0, 1).cx(1, 2).measure_all();
    svc.call(Request::RecommendMask {
        circuit,
        device: DeviceId::Rome,
        protocol: adapt::DdProtocol::Xy4,
        budget: SearchBudget {
            shots: 64,
            trajectories: 2,
            neighborhood: 4,
            tier: TierPolicy::default(),
        },
        deadline_ms: None,
        tenancy: Default::default(),
    })
    .expect("recommendation");

    let prom = adapt_obs::global().render_prometheus();
    let samples = parse_prometheus(&prom).expect("exposition must parse");
    for name in [
        "adapt_service_requests_total",
        "adapt_service_searches_total",
        "adapt_service_cache_lookups_total",
        "adapt_search_searches_total",
        "adapt_search_decoy_runs_scored_total",
        "adapt_machine_executions_total",
        "adapt_machine_retry_requests_total",
    ] {
        let v = sample_value(&samples, name).unwrap_or(0.0);
        assert!(v > 0.0, "{name} must be non-zero, exposition:\n{prom}");
    }
    println!(
        "  workload: {} series exported, adapt_service_requests_total = {}",
        samples.len(),
        sample_value(&samples, "adapt_service_requests_total").unwrap_or(0.0)
    );
}
