//! Plan-cache effectiveness and mask-scoring throughput smoke check
//! (see the experiments module docs). Exits nonzero when the plan cache
//! records no hits or batched scoring diverges from serial.
fn main() {
    let cfg = bench_harness::runner::ExperimentCfg::from_args();
    bench_harness::experiments::search_perf::run(&cfg);
}
