//! Regenerates the paper's ablation_decoy (see the experiments module docs).
fn main() {
    let cfg = bench_harness::runner::ExperimentCfg::from_args();
    bench_harness::experiments::ablation_decoy::run(&cfg);
}
