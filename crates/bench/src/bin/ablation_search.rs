//! Regenerates the paper's ablation_search (see the experiments module docs).
fn main() {
    let cfg = bench_harness::runner::ExperimentCfg::from_args();
    bench_harness::experiments::ablation_search::run(&cfg);
}
