//! Fleet chaos harness (see the experiments module docs). Exits
//! nonzero when a shard worker panics, a reroute is non-deterministic,
//! a failover or replay response diverges from the seeded answer, the
//! healthy shard's p99 exceeds 2× steady state during a kill, or — in
//! full mode — the 4-shard scaling factor falls below 2.5×.
fn main() {
    let cfg = bench_harness::runner::ExperimentCfg::from_args();
    bench_harness::experiments::fleet_chaos::run(&cfg);
}
