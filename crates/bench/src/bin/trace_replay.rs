//! Trace-replay harness (see the experiments module docs). Exits
//! nonzero when the interactive class misses its 99% SLO, quota
//! rejections fail to fire (or hit a quota-free tenant), the minority
//! tenant's p99 degrades more than 2x under a 10:1 flood, equal-weight
//! tenants diverge more than 1.5x in throughput, a worker panics, or
//! two identical seeded runs diverge.
fn main() {
    let cfg = bench_harness::runner::ExperimentCfg::from_args();
    bench_harness::experiments::trace_replay::run(&cfg);
}
