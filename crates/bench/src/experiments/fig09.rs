//! **Fig. 9** — Correlation between the fidelity of the real 4-qubit
//! Adder and its decoy circuit across all 16 DD masks on IBMQ-Guadalupe
//! (the paper reports Spearman ρ ≈ 0.78).

use crate::report::{Csv, Table};
use crate::runner::ExperimentCfg;
use adapt::decoy::{make_decoy, DecoyKind};
use adapt::search::SearchContext;
use adapt::{metrics, Adapt, DdMask};
use benchmarks::adder4;
use device::{Device, SeedSpawner};
use machine::Machine;

/// Runs the experiment.
pub fn run(cfg: &ExperimentCfg) {
    println!("\n== Fig 9: real vs decoy fidelity across 16 masks, Adder on Guadalupe ==");
    let spawner = SeedSpawner::new(cfg.seed ^ 0xF169);
    let dev = Device::ibmq_guadalupe(cfg.seed);
    let machine = Machine::new(dev);
    let adapt = Adapt::new(machine.clone());
    let acfg = cfg.adapt_cfg(adapt::DdProtocol::Xy4, spawner.derive(5));

    // Mask-to-mask fidelity differences on the 4-qubit adder are a few
    // percent; resolving their ranking (the paper's ρ = 0.78) needs more
    // statistics than the generic search budget.
    let acfg = adapt::AdaptConfig {
        search_exec: machine::ExecutionConfig {
            shots: if cfg.quick { 1024 } else { 4096 },
            trajectories: if cfg.quick { 32 } else { 96 },
            ..acfg.search_exec
        },
        ..acfg
    };
    let circuit = adder4(true, true, false);
    let compiled = adapt.compile(&circuit, &acfg);
    let ideal = adapt.ideal_output(&circuit).expect("ideal");
    let decoy =
        make_decoy(&compiled.timed, DecoyKind::Seeded { max_seed_qubits: 4 }).expect("decoy");
    // Two decoy sweeps: one sharing the execution seed with the real
    // sweep (on hardware, decoy and real circuits run back-to-back inside
    // one calibration window and see the same slow-noise environment —
    // the trajectory seed stream is this model's slow environment), and
    // one with independent seeds (the pessimistic bound where the machine
    // drifted between the sweeps). The paper's ρ = 0.78 sits between.
    let ctx = SearchContext::new(
        &machine,
        machine.device().clone(),
        &decoy,
        &compiled.initial_layout,
        acfg.dd,
        acfg.search_exec,
        4,
    );
    let ctx_drifted = SearchContext::new(
        &machine,
        machine.device().clone(),
        &decoy,
        &compiled.initial_layout,
        acfg.dd,
        machine::ExecutionConfig {
            seed: acfg.search_exec.seed ^ 0x5EED_DEC0,
            ..acfg.search_exec
        },
        4,
    );
    let sweep_cfg = adapt::AdaptConfig {
        final_exec: acfg.search_exec,
        ..acfg
    };

    let mut table = Table::new(&["mask", "real", "decoy", "decoy (drifted)"]);
    let mut csv = Csv::create(
        &cfg.out_dir(),
        "fig09",
        &["mask", "real", "decoy_shared", "decoy_drifted"],
    );
    // Both decoy sweeps go down as single batched submissions; the real
    // sweep stays serial because it re-scores against the ideal output.
    let masks = DdMask::enumerate_all(4);
    let dec: Vec<f64> = ctx
        .score_batch(&masks)
        .into_iter()
        .map(|r| r.expect("decoy run").fidelity)
        .collect();
    let dec_drift: Vec<f64> = ctx_drifted
        .score_batch(&masks)
        .into_iter()
        .map(|r| r.expect("decoy run").fidelity)
        .collect();
    let mut real = Vec::new();
    for (i, &mask) in masks.iter().enumerate() {
        let (_, f_real, _) = adapt
            .run_with_mask(&compiled, &ideal, mask, &sweep_cfg)
            .expect("real run");
        let (f_decoy, f_drift) = (dec[i], dec_drift[i]);
        real.push(f_real);
        table.row_owned(vec![
            mask.to_string(),
            format!("{f_real:.3}"),
            format!("{f_decoy:.3}"),
            format!("{f_drift:.3}"),
        ]);
        csv.rowd(&[&mask.to_string(), &f_real, &f_decoy, &f_drift]);
    }
    table.print();
    let rho = metrics::spearman(&real, &dec);
    let rho_drift = metrics::spearman(&real, &dec_drift);
    println!(
        "  Spearman (real vs decoy): same-window {rho:.2}, drifted {rho_drift:.2}  (paper: 0.78)"
    );
    csv.flush().expect("write fig09.csv");
}
