//! **Ablation: decoy construction** — CDC vs CNOT-only vs SDC with
//! varying seed budgets: correlation with the real circuit and entropy of
//! the decoy's ideal output (§4.2.3's motivation for seeding).

use crate::report::{Csv, Table};
use crate::runner::ExperimentCfg;
use adapt::decoy::{make_decoy, DecoyKind};
use adapt::search::SearchContext;
use adapt::{metrics, Adapt, DdMask};
use benchmarks::suite::by_name;
use device::{Device, SeedSpawner};
use machine::Machine;

/// Runs the ablation.
pub fn run(cfg: &ExperimentCfg) {
    println!("\n== Ablation: decoy kinds (QFT-6A on Paris) ==");
    let spawner = SeedSpawner::new(cfg.seed ^ 0xAB1C);
    let dev = Device::ibmq_paris(cfg.seed);
    let machine = Machine::new(dev);
    let adapt = Adapt::new(machine.clone());
    let bench = by_name("QFT-6A").expect("QFT-6A exists");
    let acfg = cfg.adapt_cfg(adapt::DdProtocol::Xy4, spawner.derive(1));
    let compiled = adapt.compile(&bench.circuit, &acfg);
    let ideal = adapt.ideal_output(&bench.circuit).expect("ideal");

    // Real-circuit fidelity per mask (reference ranking).
    let masks = DdMask::enumerate_all(6);
    let sweep_cfg = adapt::AdaptConfig {
        final_exec: acfg.search_exec,
        ..acfg
    };
    let real: Vec<f64> = masks
        .iter()
        .map(|&m| {
            adapt
                .run_with_mask(&compiled, &ideal, m, &sweep_cfg)
                .expect("real run")
                .1
        })
        .collect();

    let kinds = [
        ("CDC (all Clifford)", DecoyKind::Clifford),
        ("CNOT-only", DecoyKind::CnotOnly),
        ("SDC, 2 seeds", DecoyKind::Seeded { max_seed_qubits: 2 }),
        ("SDC, 4 seeds", DecoyKind::Seeded { max_seed_qubits: 4 }),
        ("SDC, 6 seeds", DecoyKind::Seeded { max_seed_qubits: 6 }),
    ];
    let mut table = Table::new(&["decoy", "spearman", "output entropy (bits)", "seeds kept"]);
    let mut csv = Csv::create(
        &cfg.out_dir(),
        "ablation_decoy",
        &["decoy", "spearman", "entropy_bits", "non_clifford"],
    );
    for (label, kind) in kinds {
        let decoy = make_decoy(&compiled.timed, kind).expect("decoy");
        let ctx = SearchContext::new(
            &machine,
            machine.device().clone(),
            &decoy,
            &compiled.initial_layout,
            acfg.dd,
            // Decorrelate decoy noise realizations from the real sweeps.
            machine::ExecutionConfig {
                seed: acfg.search_exec.seed ^ 0x5EED_DEC0,
                ..acfg.search_exec
            },
            6,
        );
        let scores: Vec<f64> = ctx
            .score_batch(&masks)
            .into_iter()
            .map(|r| r.expect("decoy run").fidelity)
            .collect();
        let rho = metrics::spearman(&real, &scores);
        let entropy = metrics::entropy_bits(&decoy.ideal);
        table.row_owned(vec![
            label.to_string(),
            format!("{rho:.2}"),
            format!("{entropy:.2}"),
            decoy.non_clifford_count.to_string(),
        ]);
        csv.rowd(&[&label, &rho, &entropy, &decoy.non_clifford_count]);
    }
    table.print();
    csv.flush().expect("write ablation_decoy.csv");
}
