//! **Crash chaos** — kills, corrupts, and restarts the durable mask
//! service (`adapt_service::persist`, DESIGN.md §17) and checks the
//! §17 recovery contract end to end:
//!
//! 1. **Clean restart.** A persisted service serves a tagged key pool,
//!    shuts down (final snapshot), and restarts from disk: every key
//!    must come back as a cache hit with a bit-identical response, and
//!    the warm-restart hit rate must be ≥ 90%.
//! 2. **Drift restart.** Calibration epochs advance before the
//!    shutdown: the reborn registry must replay to the same epoch and
//!    the superseded entries must land in the stale store, never be
//!    served as fresh.
//! 3. **Corruption storm.** Repeated rounds of seeded storage damage
//!    ([`StorageFaultPlan`] — tail truncation, bit flips, torn
//!    publishes, stray staging temps) are applied to the snapshot and
//!    journal of a cleanly shut-down service. Every recovery must
//!    quarantine the injected corruption (typed, counted, zero panics)
//!    and the reborn service must answer the whole key pool
//!    bit-identically to the undamaged reference — lost entries
//!    re-search to the same seeded answer.
//! 4. **Mid-snapshot kill.** Snapshots killed between temp write and
//!    rename (both crash points) must leave the previous snapshot
//!    published and fully recoverable.
//! 5. **Fleet restart.** A persisted shard is killed abruptly
//!    (`ShardServer::stop`) and restarted under its old identity with
//!    the same persist directory: wire responses must be cache hits,
//!    bit-identical to pre-kill answers.
//! 6. **Replay.** The whole corruption storm runs a second time from
//!    scratch under the same seed: damage schedule, quarantine counts,
//!    and the full response log must match the first run exactly.
//!
//! Zero worker panics are tolerated anywhere. Results land in
//! `results/BENCH_crash.json` (`zero_panics`, `corruption_quarantined`,
//! `replay_bit_identical`, `warm_restart_hit_rate` are the keys CI
//! greps for).

use crate::runner::ExperimentCfg;
use adapt::DdProtocol;
use adapt_fleet::{FleetRouter, RouterConfig, ShardConfig, ShardId, ShardServer};
use adapt_service::persist::{
    decode_store, flip_bit, journal_path, snapshot_path, staging_path, truncate_tail, CrashPoint,
    Persister, StorageFaultCounts, StorageFaultPlan, StorageFaultProfile, JOURNAL_MAGIC,
    SNAPSHOT_MAGIC,
};
use adapt_service::{
    DeviceId, DeviceRegistry, MaskCache, MaskService, PersistConfig, Provenance, Request, Response,
    SearchBudget, ServiceConfig,
};
use std::path::{Path, PathBuf};
use std::sync::Arc;

const QUBITS: u32 = 5;
const DEVICE: DeviceId = DeviceId::Rome;

/// GHZ prefixed with a per-qubit {I, X, Z, XZ} stamp drawn from two tag
/// bits (the `fleet_chaos` workload shape): structurally distinct
/// Clifford circuits, one cache key each.
fn tagged(tag: usize) -> qcirc::Circuit {
    let mut c = qcirc::Circuit::new(QUBITS as usize);
    for q in 0..QUBITS {
        match (tag >> (2 * q)) & 3 {
            1 => {
                c.x(q);
            }
            2 => {
                c.z(q);
            }
            3 => {
                c.x(q);
                c.z(q);
            }
            _ => {}
        }
    }
    c.h(0);
    for q in 0..QUBITS - 1 {
        c.cx(q, q + 1);
    }
    c.measure_all();
    c
}

fn budget() -> SearchBudget {
    SearchBudget {
        shots: 32,
        trajectories: 2,
        neighborhood: 4,
        ..SearchBudget::default()
    }
}

fn request(tag: usize) -> Request {
    Request::RecommendMask {
        circuit: tagged(tag),
        device: DEVICE,
        protocol: DdProtocol::Xy4,
        budget: budget(),
        deadline_ms: None,
        tenancy: Default::default(),
    }
}

/// A durable single-device service over `dir`. The snapshot interval is
/// long and fsync off: snapshots in this harness come from shutdown and
/// explicit calls, so every on-disk state is schedule-pure.
fn service_config(cfg: &ExperimentCfg, dir: &Path) -> ServiceConfig {
    ServiceConfig {
        devices: vec![DEVICE],
        workers: 2,
        queue_capacity: 64,
        cache_capacity: 64,
        seed: cfg.seed,
        default_budget: budget(),
        persist: PersistConfig {
            snapshot_interval_ms: 600_000,
            fsync: false,
            ..PersistConfig::at(dir)
        },
        ..ServiceConfig::default()
    }
}

/// Wall-clock-free identity of a response (the `fleet_chaos` digest
/// shape): what must replay bit-identically across restarts.
fn digest(tag: usize, response: &Response) -> String {
    match response {
        Response::Mask(r) => format!(
            "{tag}|{:?}|{:?}|{:016x}|{}",
            r.provenance,
            r.mask,
            r.decoy_fidelity.to_bits(),
            r.decoy_runs
        ),
        Response::Execution(_) => panic!("workload is RecommendMask-only"),
    }
}

/// Digest with provenance masked out: equal for a cache hit and the
/// fresh search that would replace it (the §17 bit-identity contract).
fn semantic(d: &str) -> String {
    let mut parts: Vec<&str> = d.split('|').collect();
    parts.remove(1);
    parts.join("|")
}

fn fresh_dir(name: &str, seed: u64) -> PathBuf {
    let dir = std::env::temp_dir()
        .join("adapt_crash_chaos")
        .join(format!("{name}_{seed:016x}"));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn call_mask(svc: &MaskService, tag: usize) -> Response {
    svc.call(request(tag)).expect("recommendation")
}

// ---------------------------------------------------------------------------
// Phase 1+2: clean restart, drift restart
// ---------------------------------------------------------------------------

struct CleanRestart {
    digests: Vec<String>,
    hit_rate: f64,
    worker_panics: u64,
}

fn clean_restart(cfg: &ExperimentCfg, keys: usize) -> CleanRestart {
    let dir = fresh_dir("clean", cfg.seed);
    let svc = MaskService::start(service_config(cfg, &dir));
    let before: Vec<String> = (0..keys).map(|t| digest(t, &call_mask(&svc, t))).collect();
    let mut panics = svc.shutdown().worker_panics;

    let reborn = MaskService::start(service_config(cfg, &dir));
    let report = reborn.recovery_report().expect("recovery ran");
    assert_eq!(report.quarantined, 0, "clean restart must not quarantine");
    let mut hits = 0usize;
    let after: Vec<String> = (0..keys)
        .map(|t| {
            let resp = call_mask(&reborn, t);
            if let Response::Mask(r) = &resp {
                hits += usize::from(r.provenance == Provenance::CacheHit);
            }
            digest(t, &resp)
        })
        .collect();
    panics += reborn.shutdown().worker_panics;

    // Pre-kill digests say FreshSearch, post-restart ones CacheHit; the
    // semantic payload (mask, fidelity bits, decoy runs) must be equal.
    for (b, a) in before.iter().zip(&after) {
        assert_eq!(semantic(b), semantic(a), "clean restart changed a response");
    }
    let hit_rate = hits as f64 / keys as f64;
    assert!(
        hit_rate >= 0.9,
        "clean shutdown must recover >=90% of the warm set, got {hit_rate:.2}"
    );
    CleanRestart {
        digests: before,
        hit_rate,
        worker_panics: panics,
    }
}

fn drift_restart(cfg: &ExperimentCfg, keys: usize) -> u64 {
    let dir = fresh_dir("drift", cfg.seed);
    let svc = MaskService::start(service_config(cfg, &dir));
    for t in 0..keys {
        let _ = call_mask(&svc, t);
    }
    svc.advance_epoch(DEVICE).expect("advance");
    svc.advance_epoch(DEVICE).expect("advance");
    let epoch = svc.epoch(DEVICE).expect("epoch");
    let mut panics = svc.shutdown().worker_panics;

    let reborn = MaskService::start(service_config(cfg, &dir));
    let report = reborn.recovery_report().expect("recovery ran");
    assert_eq!(
        reborn.epoch(DEVICE),
        Some(epoch),
        "registry epoch must replay from the snapshot"
    );
    assert_eq!(report.epoch_advances, 2);
    assert_eq!(report.quarantined, 0);
    assert!(
        report.recovered_stale + report.demoted_stale >= 1,
        "superseded entries must recover as stale, not fresh: {report:?}"
    );
    assert_eq!(report.recovered_warm, 0, "epoch-0 entries served as fresh");
    // Current-epoch requests still answer (fresh searches at epoch 2).
    let _ = call_mask(&reborn, 0);
    let stats = reborn.cache_stats();
    assert_eq!(
        stats.hits + stats.misses + stats.stale_served,
        stats.lookups,
        "cache accounting broken after drift recovery: {stats:?}"
    );
    panics += reborn.shutdown().worker_panics;
    panics
}

// ---------------------------------------------------------------------------
// Phase 3 (+6 when run twice): corruption storm
// ---------------------------------------------------------------------------

struct StormOutcome {
    rounds: usize,
    damage: StorageFaultCounts,
    quarantined: usize,
    /// Full response log across all rounds — the replay unit.
    log: Vec<String>,
    worker_panics: u64,
}

/// One storm: per round, warm + cleanly shut down a durable service,
/// apply the seeded damage the plan draws for the round's snapshot and
/// journal ops, restart, and serve the whole pool again.
fn corruption_storm(
    cfg: &ExperimentCfg,
    keys: usize,
    rounds: usize,
    reference: &[String],
) -> StormOutcome {
    let plan = StorageFaultPlan::new(StorageFaultProfile::gremlin(), cfg.seed ^ 0xC4A5_4CA0);
    let mut out = StormOutcome {
        rounds,
        damage: StorageFaultCounts::default(),
        quarantined: 0,
        log: Vec::new(),
        worker_panics: 0,
    };
    for round in 0..rounds {
        let dir = fresh_dir(&format!("storm_{round}"), cfg.seed);
        let svc = MaskService::start(service_config(cfg, &dir));
        for t in 0..keys {
            let _ = call_mask(&svc, t);
        }
        out.worker_panics += svc.shutdown().worker_panics;

        // Seeded damage, one plan op per persisted file. Torn publishes
        // truncate the published file to the kept fraction; kills leave
        // a stray truncated staging temp for recovery to sweep.
        let mut predicted = 0usize;
        for (file, magic) in [
            (snapshot_path(&dir), SNAPSHOT_MAGIC),
            (journal_path(&dir), JOURNAL_MAGIC),
        ] {
            let faults = plan.faults_for(plan.next_op());
            out.damage.record(&faults);
            if let Some(keep) = faults.torn_write {
                truncate_tail(&file, 1.0 - keep).expect("torn publish");
            }
            if let Some(frac) = faults.truncate_tail {
                truncate_tail(&file, frac).expect("truncate tail");
            }
            if let Some(draw) = faults.bit_flip {
                let _ = flip_bit(&file, draw).expect("flip bit");
            }
            if faults.kill_before_rename {
                let bytes = std::fs::read(&file).expect("read for staging");
                let half = bytes.len() / 2;
                std::fs::write(staging_path(&file), &bytes[..half]).expect("stray temp");
            }
            // Decode the damaged bytes with the store codec itself: the
            // recovery pass must quarantine *exactly* these regions —
            // 100% of the injected corruption, nothing phantom.
            let (_, errors) =
                decode_store(&std::fs::read(&file).expect("read damaged file"), magic);
            predicted += errors.len();
        }

        let reborn = MaskService::start(service_config(cfg, &dir));
        let report = reborn.recovery_report().expect("recovery ran");
        out.quarantined += report.quarantined;
        assert_eq!(
            report.quarantined, predicted,
            "round {round}: recovery must quarantine exactly the injected \
             corruption: {report:?}"
        );
        assert!(
            !staging_path(&snapshot_path(&dir)).exists(),
            "stray temp survived"
        );
        // Recovered-or-researched, every answer matches the undamaged
        // reference bit for bit.
        for (t, undamaged) in reference.iter().enumerate().take(keys) {
            let d = digest(t, &call_mask(&reborn, t));
            assert_eq!(
                semantic(&d),
                semantic(undamaged),
                "round {round}: response diverged after corruption recovery"
            );
            out.log.push(d);
        }
        out.worker_panics += reborn.shutdown().worker_panics;
        let _ = std::fs::remove_dir_all(&dir);
    }
    assert!(
        out.damage.total() > 0,
        "the gremlin profile must injure at least one round (ops={})",
        out.damage.ops
    );
    assert!(
        out.quarantined > 0,
        "the storm must exercise the quarantine path ({})",
        out.damage
    );
    out
}

// ---------------------------------------------------------------------------
// Phase 4: mid-snapshot kills
// ---------------------------------------------------------------------------

/// Kills a snapshot at both crash points and proves the previously
/// published snapshot stays the recoverable truth. Returns the number
/// of kill points exercised.
fn mid_snapshot_kill(cfg: &ExperimentCfg, keys: usize) -> usize {
    use adapt::{DdMask, DecoyKind};
    use adapt_service::{CachedMask, MaskKey};

    let dir = fresh_dir("midkill", cfg.seed);
    let obs = adapt_obs::Registry::new();
    let registry = DeviceRegistry::new(&[DEVICE], cfg.seed);
    let cache = Arc::new(MaskCache::with_registry(64, &obs));
    for t in 0..keys as u64 {
        cache.insert(
            MaskKey {
                device: DEVICE,
                epoch: 0,
                circuit_hash: t,
                protocol: DdProtocol::Xy4,
                decoy: DecoyKind::Clifford,
            },
            CachedMask {
                mask: DdMask::from_bits(t + 1, QUBITS as usize),
                decoy_fidelity: 0.5 + t as f64 / 100.0,
                decoy_runs: 4,
                degraded: false,
            },
        );
    }
    let persister = Persister::new(&dir, false, &obs).expect("persister");
    persister
        .snapshot(&cache, &registry)
        .expect("clean snapshot");
    let published = std::fs::read(snapshot_path(&dir)).expect("read snapshot");

    let kill_points = [
        CrashPoint::MidTempWrite { keep: 32 },
        CrashPoint::BeforeRename,
    ];
    for &crash in &kill_points {
        persister
            .snapshot_with_crash(&cache, &registry, crash)
            .expect_err("injected kill must fail the snapshot");
        assert_eq!(
            std::fs::read(snapshot_path(&dir)).expect("read snapshot"),
            published,
            "{crash:?} must not disturb the published snapshot"
        );
    }

    // The untouched snapshot recovers completely in a fresh process.
    let obs2 = adapt_obs::Registry::new();
    let registry2 = DeviceRegistry::new(&[DEVICE], cfg.seed);
    let cache2 = Arc::new(MaskCache::with_registry(64, &obs2));
    let persister2 = Persister::new(&dir, false, &obs2).expect("persister");
    let report = persister2.recover(&cache2, &registry2).expect("recover");
    assert_eq!(report.recovered_warm, keys);
    assert_eq!(report.quarantined, 0);
    let _ = std::fs::remove_dir_all(&dir);
    kill_points.len()
}

// ---------------------------------------------------------------------------
// Phase 5: fleet warm restart
// ---------------------------------------------------------------------------

struct FleetRestart {
    keys: usize,
    warm_hits: usize,
    worker_panics: u64,
}

/// A persisted shard killed abruptly and reborn under its old identity
/// and persist directory: wire answers must be warm and bit-identical.
fn fleet_restart(cfg: &ExperimentCfg, keys: usize) -> FleetRestart {
    let dir = fresh_dir("fleet", cfg.seed);
    let shard_id = ShardId(11);
    let start = |cfg: &ExperimentCfg| {
        ShardServer::start(ShardConfig {
            shard: shard_id,
            service: service_config(cfg, &dir),
            max_frame_bytes: 1 << 20,
            fleet: None,
        })
        .expect("shard starts")
    };
    let shard = start(cfg);
    let router = FleetRouter::new(RouterConfig::default(), &[(shard_id, shard.addr())]);
    let before: Vec<String> = (0..keys)
        .map(|t| digest(t, &router.call(request(t)).expect("warm call").response))
        .collect();
    // Abrupt stop: sockets die like a crash; the final snapshot is the
    // service's shutdown path, same as a SIGTERM drain.
    let report = shard.stop();
    let mut panics = report.stats.worker_panics;

    let reborn = start(cfg);
    router.set_endpoint(shard_id, reborn.addr());
    let mut warm_hits = 0usize;
    for (t, b) in before.iter().enumerate() {
        let routed = router.call(request(t)).expect("post-restart call");
        if let Response::Mask(r) = &routed.response {
            warm_hits += usize::from(r.provenance == Provenance::CacheHit);
        }
        assert_eq!(
            semantic(&digest(t, &routed.response)),
            semantic(b),
            "fleet restart changed the answer for tag {t}"
        );
    }
    panics += reborn.stop().stats.worker_panics;
    assert!(
        warm_hits * 10 >= keys * 9,
        "fleet warm restart must serve >=90% from the recovered cache: {warm_hits}/{keys}"
    );
    let _ = std::fs::remove_dir_all(&dir);
    FleetRestart {
        keys,
        warm_hits,
        worker_panics: panics,
    }
}

// ---------------------------------------------------------------------------
// Driver
// ---------------------------------------------------------------------------

/// Runs the crash-chaos harness and writes `results/BENCH_crash.json`.
///
/// # Panics
///
/// Panics (failing the CI job) on any violated §17 invariant: a worker
/// panic, a quarantine miss on injected corruption, a response that is
/// not bit-identical after recovery, a warm-restart hit rate below 90%,
/// or a storm replay divergence.
pub fn run(cfg: &ExperimentCfg) {
    println!("\n== Crash chaos: durable mask service under kill/corrupt/restart ==");
    let keys = if cfg.quick { 6 } else { 12 };
    let rounds = if cfg.quick { 4 } else { 8 };
    let mut worker_panics = 0u64;

    println!("  phase 1: clean shutdown -> warm restart ({keys} keys)");
    let clean = clean_restart(cfg, keys);
    worker_panics += clean.worker_panics;
    println!(
        "    warm restart hit rate {:.0}%, responses bit-identical",
        clean.hit_rate * 100.0
    );

    println!("  phase 2: drift -> restart (epoch replay, stale demotion)");
    worker_panics += drift_restart(cfg, keys.min(4));
    println!("    epochs replayed, superseded entries demoted to stale");

    println!("  phase 3: corruption storm ({rounds} rounds, gremlin profile)");
    let storm = corruption_storm(cfg, keys, rounds, &clean.digests);
    worker_panics += storm.worker_panics;
    println!(
        "    damage {}; {} record(s) quarantined, all answers bit-identical",
        storm.damage, storm.quarantined
    );

    println!("  phase 4: mid-snapshot kills (both crash points)");
    let kill_points = mid_snapshot_kill(cfg, keys.min(5));
    println!("    {kill_points} kill points left the published snapshot intact");

    println!("  phase 5: fleet shard kill -> warm restart");
    let fleet = fleet_restart(cfg, keys.min(6));
    worker_panics += fleet.worker_panics;
    println!(
        "    {}/{} wire answers warm after rebirth, all bit-identical",
        fleet.warm_hits, fleet.keys
    );

    println!("  phase 6: storm replay (same seed, from scratch)");
    let replay = corruption_storm(cfg, keys, rounds, &clean.digests);
    worker_panics += replay.worker_panics;
    assert_eq!(storm.damage, replay.damage, "damage schedule must replay");
    assert_eq!(
        storm.quarantined, replay.quarantined,
        "quarantine counts must replay"
    );
    assert_eq!(storm.log, replay.log, "storm response log must replay");
    println!(
        "    {} responses across {} rounds replayed bit-identically",
        replay.log.len(),
        replay.rounds
    );

    assert_eq!(worker_panics, 0, "a service worker panicked");
    write_json(cfg, &clean, &storm, kill_points, &fleet, worker_panics);
}

fn write_json(
    cfg: &ExperimentCfg,
    clean: &CleanRestart,
    storm: &StormOutcome,
    kill_points: usize,
    fleet: &FleetRestart,
    worker_panics: u64,
) {
    let out_dir = cfg.out_dir();
    std::fs::create_dir_all(&out_dir).expect("create results dir");
    let json = format!(
        "{{\n  \"schema\": 1,\n  \"quick\": {},\n  \"seed\": {},\n  \
         \"zero_panics\": {},\n  \
         \"warm_restart_hit_rate\": {:.4},\n  \
         \"clean_restart\": {{ \"keys\": {}, \"bit_identical\": true }},\n  \
         \"corruption\": {{ \"rounds\": {}, \"ops\": {}, \"torn\": {}, \"truncated\": {}, \
         \"flipped\": {}, \"stray_temps\": {}, \"quarantined_records\": {}, \
         \"corruption_quarantined\": true, \"answers_bit_identical\": true }},\n  \
         \"mid_snapshot_kill_points_survived\": {kill_points},\n  \
         \"fleet_restart\": {{ \"keys\": {}, \"warm_hits\": {}, \"bit_identical\": true }},\n  \
         \"replay\": {{ \"replay_bit_identical\": true, \"responses\": {} }}\n}}\n",
        cfg.quick,
        cfg.seed,
        worker_panics == 0,
        clean.hit_rate,
        clean.digests.len(),
        storm.rounds,
        storm.damage.ops,
        storm.damage.torn,
        storm.damage.truncated,
        storm.damage.flipped,
        storm.damage.kills,
        storm.quarantined,
        fleet.keys,
        fleet.warm_hits,
        storm.log.len(),
    );
    let path = out_dir.join("BENCH_crash.json");
    std::fs::write(&path, json).expect("write BENCH_crash.json");
    println!("  wrote {}", path.display());
}
