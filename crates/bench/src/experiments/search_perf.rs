//! **Search performance smoke** — exercises the compiled-plan cache, the
//! simulator-routing layer, and the batched mask-scoring path end to end,
//! and records throughput numbers for the perf trajectory.
//!
//! Runs the localized ADAPT search on IBMQ-Guadalupe twice on one
//! machine using a fully Clifford decoy, so every scored candidate routes
//! to the CHP stabilizer engine — the configuration that makes
//! double-digit masks/s possible. The second pass must be served from the
//! plan cache (the binary fails loudly when the hit counter stays at
//! zero, so CI catches a regression in the routing-keyed cache). A
//! scoring step then runs one neighborhood's 16 masks serially and as one
//! batch on the CHP path (bit-identity checked), re-scores the same masks
//! through a seeded decoy on the state-vector engine for the routing
//! split, and writes `results/BENCH_search.json` (schema 2).
//!
//! In full (non-`--quick`) mode the binary asserts the performance
//! contract from the roadmap: batched CHP scoring sustains ≥ 10 masks/s
//! on QFT-10, and at least one decoy execution actually routed to CHP.

use crate::runner::ExperimentCfg;
use adapt::decoy::{make_decoy, DecoyKind};
use adapt::search::{localized_search, SearchContext};
use adapt::{DdConfig, DdMask, DdProtocol};
use device::Device;
use machine::{ExecutionConfig, Machine};
use std::time::Instant;
use transpiler::{transpile, TranspileOptions};

/// Minimum batched CHP throughput (masks/s) asserted in full mode.
const FULL_MODE_MASKS_PER_S_FLOOR: f64 = 10.0;

/// Runs the smoke check and writes `results/BENCH_search.json`.
///
/// # Panics
///
/// Panics (failing the CI job) when the second search records no plan
/// cache hits, when batched scoring diverges from serial scoring, when no
/// execution routed to the CHP engine, or — in full mode — when batched
/// CHP scoring falls below [`FULL_MODE_MASKS_PER_S_FLOOR`].
pub fn run(cfg: &ExperimentCfg) {
    println!("\n== Search perf: plan cache + engine routing + scoring throughput ==");
    // Guadalupe's 16-wire topology. QFT-10 is the headline configuration
    // recorded in EXPERIMENTS.md; quick mode drops to QFT-8 so the smoke
    // suite stays laptop-sized.
    let n = if cfg.quick { 8usize } else { 10 };
    let dev = Device::ibmq_guadalupe(cfg.seed);
    let machine = Machine::new(dev.clone());
    let t = transpile(
        &benchmarks::qft_bench(n, 42),
        &dev,
        &TranspileOptions::default(),
    );
    // The headline decoy is fully Clifford: DD insertion only adds X/Y
    // pulses, so every candidate mask stays CHP-eligible.
    let cdc = make_decoy(&t.timed, DecoyKind::Clifford).expect("clifford decoy");
    assert!(cdc.is_clifford(), "CDC must be CHP-eligible");
    // The seeded decoy keeps non-Clifford phases → dense engine.
    let sdc = make_decoy(&t.timed, DecoyKind::Seeded { max_seed_qubits: 4 }).expect("seeded decoy");
    assert!(!sdc.is_clifford(), "SDC must exercise the dense engine");
    let (shots, trajectories) = if cfg.quick { (128, 4) } else { (256, 8) };
    let exec = |threads: usize| ExecutionConfig {
        shots,
        trajectories,
        seed: cfg.seed ^ 0x5EED_DEC0,
        threads,
    };
    let ctx = |decoy, threads: usize| {
        SearchContext::new(
            &machine,
            dev.clone(),
            decoy,
            &t.initial_layout,
            DdConfig::for_protocol(DdProtocol::Xy4),
            exec(threads),
            n,
        )
    };

    // Two identical searches on one machine: the first populates the
    // plan cache, the second must hit it for every decoy circuit.
    let order: Vec<u32> = (0..n as u32).collect();
    let serial_ctx = ctx(&cdc, 1);
    let t0 = Instant::now();
    let first = localized_search(&serial_ctx, &order, 4, true).expect("first search");
    let first_ms = t0.elapsed().as_secs_f64() * 1000.0;
    let after_first = machine.plan_cache_stats();
    let t0 = Instant::now();
    let second = localized_search(&serial_ctx, &order, 4, true).expect("second search");
    let second_ms = t0.elapsed().as_secs_f64() * 1000.0;
    let stats = machine.plan_cache_stats();
    assert_eq!(first.best, second.best, "repeated search must be stable");
    println!(
        "  search: first {first_ms:.0} ms ({} compilations), second {second_ms:.0} ms, \
         cache {}/{} hits ({:.0}%)",
        after_first.misses,
        stats.hits,
        stats.hits + stats.misses,
        stats.hit_rate() * 100.0
    );
    assert!(
        stats.hits > after_first.hits,
        "second search recorded no plan-cache hits: {stats:?}"
    );

    // Mask-scoring throughput on the CHP path: one neighborhood's 16
    // masks, serial vs batched submission. The results must be
    // bit-identical however the thread budget is split.
    let masks: Vec<DdMask> = (0u64..16).map(|bits| DdMask::from_bits(bits, n)).collect();
    let t0 = Instant::now();
    let serial: Vec<_> = masks
        .iter()
        .map(|&m| serial_ctx.score(m).expect("serial score"))
        .collect();
    let serial_ms = t0.elapsed().as_secs_f64() * 1000.0;
    let host_threads = std::thread::available_parallelism().map_or(1, |p| p.get());
    let batched_ctx = ctx(&cdc, host_threads.max(4));
    let t0 = Instant::now();
    let batched: Vec<_> = batched_ctx
        .score_batch(&masks)
        .into_iter()
        .map(|r| r.expect("batched score"))
        .collect();
    let batched_ms = t0.elapsed().as_secs_f64() * 1000.0;
    for (s, b) in serial.iter().zip(&batched) {
        assert_eq!(s.mask, b.mask);
        assert_eq!(
            s.fidelity.to_bits(),
            b.fidelity.to_bits(),
            "batched scoring diverged from serial on mask {}",
            s.mask
        );
    }
    // The batch layout actually used, read back from the engine counters
    // rather than assumed from the host — this is what the report records.
    let engines_after_chp = machine.engine_stats();
    let batch_workers = engines_after_chp.last_batch_workers;
    let batch_job_threads = engines_after_chp.last_batch_job_threads;
    let per_s = |ms: f64| masks.len() as f64 / (ms / 1000.0).max(1e-9);
    let chp_serial_per_s = per_s(serial_ms);
    let chp_batched_per_s = per_s(batched_ms);
    println!(
        "  chp scoring: serial {serial_ms:.0} ms ({chp_serial_per_s:.1} masks/s), \
         batched {batched_ms:.0} ms ({chp_batched_per_s:.1} masks/s, \
         {batch_workers} workers x {batch_job_threads} threads), bit-identical"
    );

    // The same masks through the seeded decoy: non-Clifford phases force
    // the state-vector engine, giving the CHP-vs-dense routing split.
    let dense_ctx = ctx(&sdc, host_threads.max(4));
    let t0 = Instant::now();
    let dense: Vec<_> = dense_ctx
        .score_batch(&masks)
        .into_iter()
        .map(|r| r.expect("dense score"))
        .collect();
    let dense_ms = t0.elapsed().as_secs_f64() * 1000.0;
    assert_eq!(dense.len(), masks.len());
    let dense_per_s = per_s(dense_ms);
    let engines = machine.engine_stats();
    println!(
        "  statevector scoring: batched {dense_ms:.0} ms ({dense_per_s:.1} masks/s); \
         engine split: {} chp / {} statevector executions",
        engines.chp_executions, engines.statevec_executions
    );
    assert!(
        engines.chp_executions > 0,
        "no decoy execution routed to CHP: {engines:?}"
    );
    assert!(
        engines.statevec_executions > 0,
        "seeded decoy never reached the state-vector engine: {engines:?}"
    );
    if !cfg.quick {
        assert!(
            chp_batched_per_s >= FULL_MODE_MASKS_PER_S_FLOOR,
            "batched CHP scoring below the {FULL_MODE_MASKS_PER_S_FLOOR} masks/s floor: \
             {chp_batched_per_s:.1} masks/s"
        );
        println!("  floor: {chp_batched_per_s:.1} masks/s >= {FULL_MODE_MASKS_PER_S_FLOOR} OK");
    }

    let out_dir = cfg.out_dir();
    std::fs::create_dir_all(&out_dir).expect("create results dir");
    let json = format!(
        "{{\n  \"schema\": 2,\n  \"device\": \"{}\",\n  \"benchmark\": \"QFT-{n}\",\n  \
         \"shots\": {shots},\n  \"trajectories\": {trajectories},\n  \"host_threads\": {host_threads},\n  \
         \"batch\": {{ \"workers\": {batch_workers}, \"job_threads\": {batch_job_threads} }},\n  \
         \"engines\": {{ \"chp_executions\": {}, \"statevec_executions\": {} }},\n  \
         \"search\": {{ \"decoy\": \"clifford\", \"engine\": \"chp\", \"first_ms\": {first_ms:.1}, \
         \"second_ms\": {second_ms:.1}, \"decoy_runs\": {}, \"cache\": {{ \"hits\": {}, \
         \"misses\": {}, \"evictions\": {}, \"hit_rate\": {:.4} }} }},\n  \
         \"mask_scoring\": {{ \"masks\": {}, \"chp\": {{ \"serial_ms\": {serial_ms:.1}, \
         \"batched_ms\": {batched_ms:.1}, \"serial_masks_per_s\": {chp_serial_per_s:.2}, \
         \"batched_masks_per_s\": {chp_batched_per_s:.2}, \"bit_identical\": true }}, \
         \"statevector\": {{ \"batched_ms\": {dense_ms:.1}, \
         \"batched_masks_per_s\": {dense_per_s:.2} }} }}\n}}\n",
        dev.name(),
        engines.chp_executions,
        engines.statevec_executions,
        first.decoy_runs(),
        stats.hits,
        stats.misses,
        stats.evictions,
        stats.hit_rate(),
        masks.len(),
    );
    let path = out_dir.join("BENCH_search.json");
    std::fs::write(&path, json).expect("write BENCH_search.json");
    println!("  wrote {}", path.display());
}
