//! **Search performance smoke** — exercises the compiled-plan cache and
//! the batched mask-scoring path end to end, and records throughput
//! numbers for the perf trajectory.
//!
//! Runs the localized ADAPT search on IBMQ-Guadalupe twice on one
//! machine: the second pass must be served from the plan cache (the
//! binary fails loudly when the hit counter stays at zero, so CI catches
//! a regression in the structural hash or the cache keying). A separate
//! step scores one neighborhood's 16 masks serially and as one batch,
//! checks bit-identity, and writes `results/BENCH_search.json`.

use crate::runner::ExperimentCfg;
use adapt::decoy::{make_decoy, DecoyKind};
use adapt::search::{localized_search, SearchContext};
use adapt::{DdConfig, DdMask, DdProtocol};
use device::Device;
use machine::{ExecutionConfig, Machine};
use std::time::Instant;
use transpiler::{transpile, TranspileOptions};

/// Runs the smoke check and writes `results/BENCH_search.json`.
///
/// # Panics
///
/// Panics (failing the CI job) when the second search records no plan
/// cache hits, or when batched scoring diverges from serial scoring.
pub fn run(cfg: &ExperimentCfg) {
    println!("\n== Search perf: plan-cache effectiveness + mask-scoring throughput ==");
    // Guadalupe's 16-wire topology, with a program sized so one decoy
    // execution stays in the tens-of-milliseconds range (XY4 pads long
    // schedules with tens of thousands of pulses; QFT-16's decoy runs
    // take ~a minute each, far past smoke-job budgets).
    let n = if cfg.quick { 8usize } else { 10 };
    let dev = Device::ibmq_guadalupe(cfg.seed);
    let machine = Machine::new(dev.clone());
    let t = transpile(
        &benchmarks::qft_bench(n, 42),
        &dev,
        &TranspileOptions::default(),
    );
    let decoy = make_decoy(&t.timed, DecoyKind::Seeded { max_seed_qubits: 4 }).expect("decoy");
    let (shots, trajectories) = if cfg.quick { (128, 4) } else { (256, 8) };
    let exec = |threads: usize| ExecutionConfig {
        shots,
        trajectories,
        seed: cfg.seed ^ 0x5EED_DEC0,
        threads,
    };
    let ctx = |threads: usize| {
        SearchContext::new(
            &machine,
            dev.clone(),
            &decoy,
            &t.initial_layout,
            DdConfig::for_protocol(DdProtocol::Xy4),
            exec(threads),
            n,
        )
    };

    // Two identical searches on one machine: the first populates the
    // plan cache, the second must hit it for every decoy circuit.
    let order: Vec<u32> = (0..n as u32).collect();
    let serial_ctx = ctx(1);
    let t0 = Instant::now();
    let first = localized_search(&serial_ctx, &order, 4, true).expect("first search");
    let first_ms = t0.elapsed().as_secs_f64() * 1000.0;
    let after_first = machine.plan_cache_stats();
    let t0 = Instant::now();
    let second = localized_search(&serial_ctx, &order, 4, true).expect("second search");
    let second_ms = t0.elapsed().as_secs_f64() * 1000.0;
    let stats = machine.plan_cache_stats();
    assert_eq!(first.best, second.best, "repeated search must be stable");
    println!(
        "  search: first {first_ms:.0} ms ({} compilations), second {second_ms:.0} ms, \
         cache {}/{} hits ({:.0}%)",
        after_first.misses,
        stats.hits,
        stats.hits + stats.misses,
        stats.hit_rate() * 100.0
    );
    assert!(
        stats.hits > after_first.hits,
        "second search recorded no plan-cache hits: {stats:?}"
    );

    // Mask-scoring throughput: one neighborhood's 16 masks, serial vs
    // batched submission. The results must be bit-identical.
    let masks: Vec<DdMask> = (0u64..16).map(|bits| DdMask::from_bits(bits, n)).collect();
    let t0 = Instant::now();
    let serial: Vec<_> = masks
        .iter()
        .map(|&m| serial_ctx.score(m).expect("serial score"))
        .collect();
    let serial_ms = t0.elapsed().as_secs_f64() * 1000.0;
    let host_threads = std::thread::available_parallelism().map_or(1, |p| p.get());
    let batched_ctx = ctx(host_threads.max(4));
    let t0 = Instant::now();
    let batched: Vec<_> = batched_ctx
        .score_batch(&masks)
        .into_iter()
        .map(|r| r.expect("batched score"))
        .collect();
    let batched_ms = t0.elapsed().as_secs_f64() * 1000.0;
    for (s, b) in serial.iter().zip(&batched) {
        assert_eq!(s.mask, b.mask);
        assert_eq!(
            s.fidelity.to_bits(),
            b.fidelity.to_bits(),
            "batched scoring diverged from serial on mask {}",
            s.mask
        );
    }
    let per_s = |ms: f64| masks.len() as f64 / (ms / 1000.0).max(1e-9);
    println!(
        "  scoring: serial {serial_ms:.0} ms ({:.1} masks/s), batched {batched_ms:.0} ms \
         ({:.1} masks/s, {host_threads} host threads), bit-identical",
        per_s(serial_ms),
        per_s(batched_ms)
    );

    let out_dir = cfg.out_dir();
    std::fs::create_dir_all(&out_dir).expect("create results dir");
    let json = format!(
        "{{\n  \"schema\": 1,\n  \"device\": \"{}\",\n  \"benchmark\": \"QFT-{n}\",\n  \
         \"shots\": {shots},\n  \"trajectories\": {trajectories},\n  \"host_threads\": {host_threads},\n  \
         \"search\": {{ \"first_ms\": {first_ms:.1}, \"second_ms\": {second_ms:.1}, \
         \"decoy_runs\": {}, \"cache\": {{ \"hits\": {}, \"misses\": {}, \"evictions\": {}, \
         \"hit_rate\": {:.4} }} }},\n  \
         \"mask_scoring\": {{ \"masks\": {}, \"serial_ms\": {serial_ms:.1}, \
         \"batched_ms\": {batched_ms:.1}, \"serial_masks_per_s\": {:.2}, \
         \"batched_masks_per_s\": {:.2}, \"bit_identical\": true }}\n}}\n",
        dev.name(),
        first.decoy_runs(),
        stats.hits,
        stats.misses,
        stats.evictions,
        stats.hit_rate(),
        masks.len(),
        per_s(serial_ms),
        per_s(batched_ms),
    );
    let path = out_dir.join("BENCH_search.json");
    std::fs::write(&path, json).expect("write BENCH_search.json");
    println!("  wrote {}", path.display());
}
