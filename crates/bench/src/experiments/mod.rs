//! One module per table/figure of the ADAPT paper, plus ablations.
//!
//! Every module exposes `run(&ExperimentCfg)`: it prints the paper-style
//! rows to stdout and writes a CSV into `results/`. The
//! `all_experiments` binary chains them in order.

pub mod ablation_decoy;
pub mod ablation_protocols;
pub mod ablation_noise;
pub mod ablation_search;
pub mod fig03;
pub mod fig04;
pub mod fig05;
pub mod fig06;
pub mod fig08;
pub mod fig09;
pub mod fig13;
pub mod fig14;
pub mod fig15;
pub mod fig16;
pub mod table1;
pub mod table2;
pub mod table5;

use crate::report::{Csv, Table};
use crate::runner::{policy_sweep, ExperimentCfg};
use adapt::DdProtocol;
use device::Device;

/// Shared driver for the Fig. 13/14/15-style policy comparisons: runs the
/// four policies per benchmark, prints relative fidelities, and writes
/// `results/<stem>.csv`.
pub fn policy_figure(
    cfg: &ExperimentCfg,
    device: &Device,
    names: &[&str],
    protocol: DdProtocol,
    with_oracle: bool,
    stem: &str,
) {
    let mut table = Table::new(&[
        "benchmark", "baseline", "All-DD", "ADAPT", "Runtime-Best", "ADAPT mask", "decoys",
    ]);
    let mut csv = Csv::create(&cfg.out_dir(), stem, &[
        "benchmark", "protocol", "baseline", "all_dd_rel", "adapt_rel", "runtime_best_rel",
        "adapt_mask", "decoy_runs",
    ]);
    let mut all_rels = Vec::new();
    let mut adapt_rels = Vec::new();
    let mut rb_rels = Vec::new();
    for name in names {
        let bench = benchmarks::suite::by_name(name).expect("known benchmark");
        let r = policy_sweep(device, &bench, protocol, cfg, with_oracle);
        all_rels.push(r.all_dd_rel);
        adapt_rels.push(r.adapt_rel);
        if let Some(rb) = r.runtime_best_rel {
            rb_rels.push(rb);
        }
        table.row_owned(vec![
            r.name.clone(),
            format!("{:.3}", r.baseline),
            format!("{:.2}x", r.all_dd_rel),
            format!("{:.2}x", r.adapt_rel),
            r.runtime_best_rel
                .map(|v| format!("{v:.2}x"))
                .unwrap_or_else(|| "-".into()),
            r.adapt_mask.clone(),
            r.adapt_search_runs.to_string(),
        ]);
        csv.row(&[
            r.name.clone(),
            protocol.to_string(),
            format!("{:.4}", r.baseline),
            format!("{:.4}", r.all_dd_rel),
            format!("{:.4}", r.adapt_rel),
            r.runtime_best_rel
                .map(|v| format!("{v:.4}"))
                .unwrap_or_default(),
            r.adapt_mask,
            r.adapt_search_runs.to_string(),
        ]);
    }
    use adapt::metrics::geomean;
    table.row_owned(vec![
        "GMean".into(),
        String::new(),
        format!("{:.2}x", geomean(&all_rels)),
        format!("{:.2}x", geomean(&adapt_rels)),
        if rb_rels.is_empty() {
            "-".into()
        } else {
            format!("{:.2}x", geomean(&rb_rels))
        },
        String::new(),
        String::new(),
    ]);
    table.print();
    csv.flush().expect("write policy figure csv");
}
