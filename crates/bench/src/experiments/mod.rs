//! One module per table/figure of the ADAPT paper, plus ablations.
//!
//! Every module exposes `run(&ExperimentCfg)`: it prints the paper-style
//! rows to stdout and writes a CSV into `results/`. The
//! `all_experiments` binary chains them in order.

pub mod ablation_decoy;
pub mod ablation_noise;
pub mod ablation_protocols;
pub mod ablation_search;
pub mod chaos_soak;
pub mod crash_chaos;
pub mod fig03;
pub mod fig04;
pub mod fig05;
pub mod fig06;
pub mod fig08;
pub mod fig09;
pub mod fig13;
pub mod fig14;
pub mod fig15;
pub mod fig16;
pub mod fleet_chaos;
pub mod search_perf;
pub mod service_loadgen;
pub mod table1;
pub mod table2;
pub mod table5;
pub mod tiered_loadgen;
pub mod trace_replay;

use crate::checkpoint::{config_hash, Checkpoint};
use crate::report::Table;
use crate::runner::{policy_sweep, ExperimentCfg};
use adapt::DdProtocol;
use device::Device;

/// Shared driver for the Fig. 13/14/15-style policy comparisons: runs the
/// four policies per benchmark, prints relative fidelities, and writes
/// `results/<stem>.csv`.
///
/// Datapoints stream to a [`Checkpoint`] as they complete: a killed run
/// leaves `results/<stem>.partial.csv` + manifest behind, and re-running
/// with `--resume` skips every completed benchmark.
pub fn policy_figure(
    cfg: &ExperimentCfg,
    device: &Device,
    names: &[&str],
    protocol: DdProtocol,
    with_oracle: bool,
    stem: &str,
) {
    let header = [
        "benchmark",
        "protocol",
        "baseline",
        "all_dd_rel",
        "adapt_rel",
        "runtime_best_rel",
        "adapt_mask",
        "decoy_runs",
        "degraded_groups",
    ];
    let cfg_hash = config_hash(&[
        &cfg.quick.to_string(),
        &protocol.to_string(),
        &names.join("+"),
        &with_oracle.to_string(),
        cfg.fault_name,
    ]);
    let mut ck = Checkpoint::open(
        &cfg.out_dir(),
        stem,
        &header,
        cfg.seed,
        cfg_hash,
        cfg.resume,
    )
    .expect("open experiment checkpoint");
    if ck.resumed_rows() > 0 {
        println!(
            "  (resume: {} of {} datapoints already complete)",
            ck.resumed_rows(),
            names.len()
        );
    }
    for name in names {
        if ck.is_done(name) {
            continue;
        }
        let bench = benchmarks::suite::by_name(name).expect("known benchmark");
        let r = policy_sweep(device, &bench, protocol, cfg, with_oracle);
        ck.record(
            name,
            vec![
                r.name.clone(),
                protocol.to_string(),
                format!("{:.4}", r.baseline),
                format!("{:.4}", r.all_dd_rel),
                format!("{:.4}", r.adapt_rel),
                r.runtime_best_rel
                    .map(|v| format!("{v:.4}"))
                    .unwrap_or_default(),
                r.adapt_mask,
                r.adapt_search_runs.to_string(),
                r.degraded_groups.to_string(),
            ],
        )
        .expect("stream datapoint to checkpoint");
    }

    // Render the table (and summary geomeans) from the checkpoint rows so
    // resumed datapoints appear exactly like freshly computed ones.
    let mut table = Table::new(&[
        "benchmark",
        "baseline",
        "All-DD",
        "ADAPT",
        "Runtime-Best",
        "ADAPT mask",
        "decoys",
    ]);
    let mut all_rels = Vec::new();
    let mut adapt_rels = Vec::new();
    let mut rb_rels = Vec::new();
    for (_, cells) in ck.rows() {
        let baseline: f64 = cells[2].parse().unwrap_or(0.0);
        let all_dd: f64 = cells[3].parse().unwrap_or(0.0);
        let adapt_rel: f64 = cells[4].parse().unwrap_or(0.0);
        all_rels.push(all_dd);
        adapt_rels.push(adapt_rel);
        if let Ok(rb) = cells[5].parse::<f64>() {
            rb_rels.push(rb);
        }
        table.row_owned(vec![
            cells[0].clone(),
            format!("{baseline:.3}"),
            format!("{all_dd:.2}x"),
            format!("{adapt_rel:.2}x"),
            if cells[5].is_empty() {
                "-".into()
            } else {
                format!("{:.2}x", cells[5].parse::<f64>().unwrap_or(0.0))
            },
            cells[6].clone(),
            cells[7].clone(),
        ]);
    }
    use adapt::metrics::geomean;
    table.row_owned(vec![
        "GMean".into(),
        String::new(),
        format!("{:.2}x", geomean(&all_rels)),
        format!("{:.2}x", geomean(&adapt_rels)),
        if rb_rels.is_empty() {
            "-".into()
        } else {
            format!("{:.2}x", geomean(&rb_rels))
        },
        String::new(),
        String::new(),
    ]);
    table.print();
    ck.finalize().expect("write policy figure csv");
}
