//! **Chaos soak** — drives the mask service through a seeded fault
//! schedule and proves the PR-5 resilience invariants hold end to end.
//!
//! Three devices play fixed roles for the whole soak:
//!
//! * **Guadalupe** stays healthy — the control group. Its requests cycle
//!   a small circuit pool (so the cache is exercised), a mid-run drift
//!   tick invalidates its epoch, and a sprinkle of generous virtual
//!   deadlines rides along without ever expiring.
//! * **Toronto** flaps: sick (every backend job fails) for the first
//!   quarter of the run, healthy for the second, sick again for the
//!   third, healthy to the end. Its breaker must trip during each sick
//!   window and be closed again — via a successful half-open probe —
//!   by the end.
//! * **Rome** is permanently dead (`transient_failure: 1.0`). Its
//!   breaker must trip and still be open when the soak ends; denied
//!   admissions are served the conservative all-DD fallback, and probe
//!   requests carrying tight virtual deadlines are cut short into
//!   partial (uncached) masks.
//!
//! Deadlines run in the service's `virtual_deadlines` mode and requests
//! are submitted strictly sequentially, so expiry — and therefore every
//! breaker decision — is a pure function of the seeded schedule: the
//! whole chaos phase is replayed a second time and the two transition
//! logs, response digests and counter sets must match exactly.
//!
//! Asserted invariants (the binary exits nonzero when any fails):
//!
//! 1. zero worker panics and no untyped (`Internal`) errors anywhere;
//! 2. the deadline contract: every typed deadline error the client saw
//!    is accounted by `deadline_exceeded`, partial masks by
//!    `partial_searches`, fallbacks by `breaker_fallbacks` — and each
//!    path fired at least once;
//! 3. Toronto trips and recovers (final state closed), Rome trips and
//!    stays open, Guadalupe's breaker never moves;
//! 4. healthy-device p99 during chaos stays within 2× the no-chaos
//!    baseline (plus a 5 ms epsilon for scheduling noise on
//!    millisecond-scale latencies);
//! 5. two identical chaos runs are bit-identical (transitions, response
//!    digests, counters).
//!
//! A fourth phase soaks the PR-6 degradation ladder: a tiered service
//! warms four hot keys, drifts an epoch so stale-while-revalidate serves
//! superseded masks while the refine lane re-searches them, then has its
//! refiner lane killed mid-run (`set_refiner_enabled(false)`) and drifts
//! past the staleness bound — requests must degrade stale → heuristic
//! without a panic or a wedge, and the whole phase must replay
//! bit-identically.
//!
//! Results land in `results/BENCH_chaos.json`.

use crate::runner::ExperimentCfg;
use adapt::DdProtocol;
use adapt_service::{
    BreakerConfig, BreakerFallback, BreakerState, DeviceId, MaskService, Provenance, Request,
    Response, SearchBudget, ServiceConfig, ServiceError, ServiceStats, TierConfig, TierPolicy,
};
use machine::FaultProfile;
use std::path::Path;

/// One scheduled request of the soak.
struct Tick {
    device: DeviceId,
    circuit: qcirc::Circuit,
    deadline_ms: Option<u64>,
}

/// Everything one phase run produces, for invariants and determinism
/// comparison.
struct PhaseReport {
    /// Client-observed latencies (µs, sorted) for Guadalupe responses.
    guad_latencies_us: Vec<u64>,
    /// One line per Ok response: `device provenance mask fidelity-bits`.
    /// Wall-clock timings are excluded, so two seeded runs must agree.
    digest: Vec<String>,
    /// Breaker transition log, rendered.
    transitions: Vec<String>,
    /// Final per-device breaker states.
    final_states: Vec<(DeviceId, Option<BreakerState>)>,
    stats: ServiceStats,
    /// Typed errors the client saw, by class.
    err_deadline: u64,
    err_unhealthy: u64,
    err_failed: u64,
    err_rejected: u64,
    /// Ok responses by provenance class.
    ok_partial: u64,
    ok_fallback: u64,
}

const DEVICES: [DeviceId; 3] = [DeviceId::Guadalupe, DeviceId::Toronto, DeviceId::Rome];

/// GHZ prefixed with a per-qubit X bitmask: distinct `tag` → distinct
/// structural hash (single X per qubit, so the transpiler cannot cancel
/// pairs back into a collision).
fn tagged(n: u32, tag: usize) -> qcirc::Circuit {
    let mut c = qcirc::Circuit::new(n as usize);
    for q in 0..n {
        if tag & (1 << q) != 0 {
            c.x(q);
        }
    }
    c.h(0);
    for q in 0..n - 1 {
        c.cx(q, q + 1);
    }
    c.measure_all();
    c
}

/// A device whose every backend job fails: searches degrade to all-DD,
/// the breaker sees failures, and retry backoff charges virtual time.
fn dead_profile() -> FaultProfile {
    FaultProfile {
        transient_failure: 1.0,
        ..FaultProfile::none()
    }
}

fn budget(cfg: &ExperimentCfg) -> SearchBudget {
    if cfg.quick {
        SearchBudget {
            shots: 64,
            trajectories: 2,
            neighborhood: 4,
            tier: TierPolicy::default(),
        }
    } else {
        SearchBudget {
            shots: 128,
            trajectories: 4,
            neighborhood: 4,
            tier: TierPolicy::default(),
        }
    }
}

fn service_config(cfg: &ExperimentCfg) -> ServiceConfig {
    ServiceConfig {
        devices: DEVICES.to_vec(),
        workers: 2,
        queue_capacity: 8,
        cache_capacity: 64,
        seed: cfg.seed,
        fault_profile: cfg.fault_profile,
        default_budget: budget(cfg),
        // Expiry as a pure function of the seeded schedule: two
        // identical runs cancel at identical points.
        virtual_deadlines: true,
        breaker: BreakerConfig {
            window: 8,
            min_samples: 4,
            failure_threshold: 0.5,
            cooldown_requests: 2,
            open_retry_hint_ms: 200,
            fallback: BreakerFallback::ConservativeMask,
            ..BreakerConfig::enabled()
        },
        ..ServiceConfig::default()
    }
}

/// The deterministic request schedule: tick t targets Guadalupe on
/// even ticks, Toronto on `t % 4 == 1`, Rome on `t % 4 == 3`.
fn build_schedule(total: usize) -> Vec<Tick> {
    // Four hot Guadalupe keys — cache hits dominate, like production.
    let guad_pool = [1usize, 2, 4, 8];
    let mut guad_idx = 0usize;
    let mut toronto_idx = 0usize;
    let mut rome_idx = 0usize;
    (0..total)
        .map(|t| match t % 4 {
            1 => {
                let idx = toronto_idx;
                toronto_idx += 1;
                Tick {
                    device: DeviceId::Toronto,
                    // Distinct key per request: sick-phase outcomes must
                    // reach the backend (cache hits are inconclusive to
                    // the breaker).
                    circuit: tagged(5, idx % 32),
                    deadline_ms: None,
                }
            }
            3 => {
                let idx = rome_idx;
                rome_idx += 1;
                Tick {
                    device: DeviceId::Rome,
                    circuit: tagged(5, idx % 32),
                    // After the trip (the first four requests feed it),
                    // every fourth request carries a budget far below
                    // one retry ladder (base backoff 10 ms): a probe
                    // drawing it is cut short into a partial mask.
                    deadline_ms: (idx >= 4 && idx % 4 == 1).then_some(8),
                }
            }
            _ => {
                let idx = guad_idx;
                guad_idx += 1;
                Tick {
                    device: DeviceId::Guadalupe,
                    circuit: tagged(6, guad_pool[idx % guad_pool.len()]),
                    // One born-expired submission (typed rejection, never
                    // enqueued) and a sprinkle of generous deadlines that
                    // a healthy device never comes close to.
                    deadline_ms: match idx {
                        2 => Some(0),
                        i if i % 5 == 3 => Some(100),
                        _ => None,
                    },
                }
            }
        })
        .collect()
}

/// Toronto's availability at tick `t`: sick in the first and third
/// quarters of the run, healthy otherwise.
fn toronto_sick(t: usize, total: usize) -> bool {
    t < total / 4 || (total / 2..3 * total / 4).contains(&t)
}

/// Runs one phase over `plan`. `chaos: false` replays only the
/// Guadalupe ticks with no fault overrides (the latency baseline);
/// `chaos: true` runs the full schedule with Rome dead throughout and
/// Toronto flapping.
fn run_phase(cfg: &ExperimentCfg, plan: &[Tick], chaos: bool) -> PhaseReport {
    let svc = MaskService::start(service_config(cfg));
    if chaos {
        svc.set_fault_profile(DeviceId::Rome, dead_profile());
    }
    let total = plan.len();
    let mut toronto_was_sick = false;
    let mut report = PhaseReport {
        guad_latencies_us: Vec::new(),
        digest: Vec::new(),
        transitions: Vec::new(),
        final_states: Vec::new(),
        stats: ServiceStats::default(),
        err_deadline: 0,
        err_unhealthy: 0,
        err_failed: 0,
        err_rejected: 0,
        ok_partial: 0,
        ok_fallback: 0,
    };
    for (t, tick) in plan.iter().enumerate() {
        if !chaos && tick.device != DeviceId::Guadalupe {
            continue;
        }
        if chaos && tick.device == DeviceId::Toronto {
            let sick = toronto_sick(t, total);
            if sick != toronto_was_sick {
                if sick {
                    svc.set_fault_profile(DeviceId::Toronto, dead_profile());
                } else {
                    svc.clear_fault_profile(DeviceId::Toronto);
                }
                toronto_was_sick = sick;
            }
        }
        if t == total / 2 {
            // Mid-run calibration drift on the healthy device, in both
            // phases so the latency comparison stays apples-to-apples.
            svc.advance_epoch(DeviceId::Guadalupe)
                .expect("guadalupe is registered");
        }
        // Strictly sequential submission: the admission order — and
        // with it every breaker decision — is the schedule order.
        let result = svc.call(Request::RecommendMask {
            circuit: tick.circuit.clone(),
            device: tick.device,
            protocol: DdProtocol::Xy4,
            budget: budget(cfg),
            deadline_ms: tick.deadline_ms,
            tenancy: Default::default(),
        });
        match result {
            Ok(Response::Mask(rec)) => {
                if tick.device == DeviceId::Guadalupe {
                    report.guad_latencies_us.push(rec.timing.total_us());
                }
                match rec.provenance {
                    Provenance::PartialSearch => report.ok_partial += 1,
                    Provenance::BreakerFallback => report.ok_fallback += 1,
                    _ => {}
                }
                report.digest.push(format!(
                    "{} {} {} {:016x}",
                    tick.device.name(),
                    rec.provenance,
                    rec.mask,
                    rec.decoy_fidelity.to_bits()
                ));
            }
            Ok(Response::Execution(_)) => unreachable!("recommendations return masks"),
            Err(ServiceError::DeadlineExceeded { .. }) => report.err_deadline += 1,
            Err(ServiceError::DeviceUnhealthy { .. }) => report.err_unhealthy += 1,
            Err(ServiceError::Failed(_)) => report.err_failed += 1,
            Err(ServiceError::Rejected { .. }) => report.err_rejected += 1,
            Err(e) => panic!("untyped error escaped the service at tick {t}: {e}"),
        }
    }
    report.transitions = svc
        .breaker_transitions()
        .iter()
        .map(|tr| tr.to_string())
        .collect();
    report.final_states = DEVICES.iter().map(|&d| (d, svc.breaker_state(d))).collect();
    report.stats = svc.shutdown();
    report.guad_latencies_us.sort_unstable();
    report
}

/// What one tiered-ladder phase run produces, for invariants and
/// determinism comparison (wall-clock excluded throughout).
struct TieredReport {
    /// One line per response: `step provenance mask fidelity-bits`.
    digest: Vec<String>,
    stats: ServiceStats,
}

/// Phase D: the degradation-ladder soak. Four hot Guadalupe keys are
/// warmed, an epoch advance turns them stale (served within the bound
/// while the refine lane upgrades them), the refiner is killed mid-run,
/// and two further drifts push the stale copies past the bound so
/// requests fall through to the instant heuristic. Tight deadlines run
/// in virtual mode, so every tier decision is schedule-pure.
fn run_tiered_phase(cfg: &ExperimentCfg) -> TieredReport {
    let svc = MaskService::start(ServiceConfig {
        tiers: TierConfig {
            // A deadline below this cannot fit a search; deadline-free
            // requests search as usual.
            min_search_ms: 1_000,
            max_stale_epochs: 2,
            ..TierConfig::default()
        },
        ..service_config(cfg)
    });
    let circuits: Vec<qcirc::Circuit> = [1usize, 2, 4, 8].iter().map(|&t| tagged(6, t)).collect();
    let mut report = TieredReport {
        digest: Vec::new(),
        stats: ServiceStats::default(),
    };
    let mut ask = |svc: &MaskService, step: &str, c: &qcirc::Circuit, deadline_ms: Option<u64>| {
        let rec = match svc.call(Request::RecommendMask {
            circuit: c.clone(),
            device: DeviceId::Guadalupe,
            protocol: DdProtocol::Xy4,
            budget: budget(cfg),
            deadline_ms,
            tenancy: Default::default(),
        }) {
            Ok(Response::Mask(rec)) => rec,
            other => panic!("tiered phase {step}: unexpected response {other:?}"),
        };
        report.digest.push(format!(
            "{step} {} {} {:016x}",
            rec.provenance,
            rec.mask,
            rec.decoy_fidelity.to_bits()
        ));
        rec.provenance
    };

    // D1: warm the hot set — four fresh searches.
    for c in &circuits {
        assert_eq!(ask(&svc, "warm", c, None), Provenance::FreshSearch);
    }
    // D2: drift lands. Stale copies serve instantly within the bound
    // while the refine lane re-searches each key in the background.
    svc.advance_epoch(DeviceId::Guadalupe)
        .expect("guadalupe is registered");
    for c in &circuits {
        assert!(
            matches!(
                ask(&svc, "stale", c, None),
                Provenance::StaleServed { age_epochs: 1 }
            ),
            "superseded entries within the bound must serve stale"
        );
    }
    svc.drain_refines();
    for c in &circuits {
        assert_eq!(
            ask(&svc, "refined", c, None),
            Provenance::CacheHit,
            "the refine lane must have upgraded every stale key"
        );
    }
    // D3: kill the refiner lane mid-run, then drift again. Stale serving
    // must keep working; the refresh attempts are dropped, not wedged.
    svc.set_refiner_enabled(false);
    svc.advance_epoch(DeviceId::Guadalupe)
        .expect("guadalupe is registered");
    for c in &circuits {
        assert!(
            matches!(
                ask(&svc, "unrefreshed", c, None),
                Provenance::StaleServed { age_epochs: 1 }
            ),
            "a dead refiner must not stop stale serving"
        );
    }
    // D4: two more drifts push the stale copies past the bound. A tight
    // (virtual) deadline cannot fit a search, so the ladder bottoms out
    // at the instant heuristic.
    for _ in 0..2 {
        svc.advance_epoch(DeviceId::Guadalupe)
            .expect("guadalupe is registered");
    }
    for c in &circuits {
        assert_eq!(
            ask(&svc, "floor", c, Some(100)),
            Provenance::Heuristic,
            "past the staleness bound, a tight deadline must get the heuristic"
        );
    }
    report.stats = svc.shutdown();
    report
}

/// Phase D invariants: the ladder degraded in order, nothing panicked,
/// and the counters account every step.
fn check_tiered_invariants(report: &TieredReport) {
    let stats = &report.stats;
    assert_eq!(stats.worker_panics, 0, "tiered soak must not panic");
    assert_eq!(report.digest.len(), 20, "4 keys × 5 steps");
    assert_eq!(stats.stale_served, 8, "D2 + D3 each serve 4 stale answers");
    assert_eq!(stats.heuristic_served, 4, "D4 serves 4 heuristic answers");
    assert_eq!(
        stats.refines_completed, 4,
        "the live refiner must upgrade all 4 hot keys"
    );
    assert!(
        stats.refines_dropped >= 4,
        "the killed refiner must drop refresh attempts, not queue them: {stats:?}"
    );
}

fn state_of(report: &PhaseReport, device: DeviceId) -> Option<BreakerState> {
    report
        .final_states
        .iter()
        .find(|(d, _)| *d == device)
        .and_then(|(_, s)| *s)
}

/// Closed→open trips of one device, read off the transition log.
fn trips_of(report: &PhaseReport, device: DeviceId) -> usize {
    let needle = format!("{}: closed -> open", device.name());
    report
        .transitions
        .iter()
        .filter(|t| t.contains(&needle))
        .count()
}

/// Runs the soak and writes `results/BENCH_chaos.json`.
///
/// # Panics
///
/// Panics (failing the CI job) when any invariant in the module docs
/// does not hold.
pub fn run(cfg: &ExperimentCfg) {
    println!("\n== Chaos soak: deadlines + circuit breakers under a seeded fault schedule ==");
    let total = if cfg.quick { 64 } else { 128 };
    let plan = build_schedule(total);

    println!(
        "  phase A: no-chaos baseline ({} guadalupe requests)",
        plan.iter()
            .filter(|t| t.device == DeviceId::Guadalupe)
            .count()
    );
    let baseline = run_phase(cfg, &plan, false);
    assert_eq!(baseline.stats.worker_panics, 0, "baseline must not panic");
    assert!(
        baseline.transitions.is_empty(),
        "no breaker may move without chaos: {:?}",
        baseline.transitions
    );

    println!("  phase B: chaos soak ({total} requests, rome dead, toronto flapping)");
    let chaos = run_phase(cfg, &plan, true);
    check_invariants(&baseline, &chaos);

    println!("  phase C: determinism replay (identical seed and schedule)");
    let replay = run_phase(cfg, &plan, true);
    assert_eq!(
        chaos.transitions, replay.transitions,
        "breaker transitions must be reproducible across identical runs"
    );
    assert_eq!(
        chaos.digest, replay.digest,
        "responses must be bit-identical across identical runs"
    );
    assert_eq!(
        (
            chaos.stats.deadline_exceeded,
            chaos.stats.partial_searches,
            chaos.stats.breaker_fallbacks,
            chaos.stats.breaker_trips,
            chaos.stats.breaker_recoveries,
            chaos.stats.searches
        ),
        (
            replay.stats.deadline_exceeded,
            replay.stats.partial_searches,
            replay.stats.breaker_fallbacks,
            replay.stats.breaker_trips,
            replay.stats.breaker_recoveries,
            replay.stats.searches
        ),
        "counters must be reproducible across identical runs"
    );

    let base_p99 = adapt_obs::percentile(&baseline.guad_latencies_us, 0.99);
    let chaos_p99 = adapt_obs::percentile(&chaos.guad_latencies_us, 0.99);
    println!(
        "  guadalupe p99: {:.1} ms baseline vs {:.1} ms under chaos; \
         toronto trips {} (final {:?}), rome trips {} (final {:?})",
        base_p99 / 1000.0,
        chaos_p99 / 1000.0,
        trips_of(&chaos, DeviceId::Toronto),
        state_of(&chaos, DeviceId::Toronto),
        trips_of(&chaos, DeviceId::Rome),
        state_of(&chaos, DeviceId::Rome),
    );
    println!(
        "  {} transitions, {} partial masks, {} fallbacks, {} deadline errors, 0 panics",
        chaos.transitions.len(),
        chaos.stats.partial_searches,
        chaos.stats.breaker_fallbacks,
        chaos.stats.deadline_exceeded,
    );

    println!("  phase D: refiner-kill tiered soak (stale-while-revalidate under drift)");
    let tiered = run_tiered_phase(cfg);
    check_tiered_invariants(&tiered);
    let tiered_replay = run_tiered_phase(cfg);
    assert_eq!(
        tiered.digest, tiered_replay.digest,
        "tiered responses must be bit-identical across identical runs"
    );
    assert_eq!(
        (
            tiered.stats.stale_served,
            tiered.stats.heuristic_served,
            tiered.stats.refines_completed,
            tiered.stats.refines_dropped,
            tiered.stats.searches
        ),
        (
            tiered_replay.stats.stale_served,
            tiered_replay.stats.heuristic_served,
            tiered_replay.stats.refines_completed,
            tiered_replay.stats.refines_dropped,
            tiered_replay.stats.searches
        ),
        "tiered counters must be reproducible across identical runs"
    );
    println!(
        "  ladder: {} stale served, {} refined, {} heuristic, {} refresh drops after the kill",
        tiered.stats.stale_served,
        tiered.stats.refines_completed,
        tiered.stats.heuristic_served,
        tiered.stats.refines_dropped,
    );

    write_json(cfg, &cfg.out_dir(), total, &baseline, &chaos, &tiered);
}

/// The soak invariants (module docs, items 1–4).
fn check_invariants(baseline: &PhaseReport, chaos: &PhaseReport) {
    let stats = &chaos.stats;
    // 1. Nothing panicked, nothing escaped untyped (untyped errors
    //    already panicked inside run_phase).
    assert_eq!(stats.worker_panics, 0, "workers must survive the soak");

    // 2. Deadline contract. Every typed deadline error the client saw
    //    is in the counter and vice versa — a response that slipped out
    //    past its deadline without the conservative tag would break
    //    this accounting (the service converts it before replying).
    assert_eq!(
        chaos.err_deadline, stats.deadline_exceeded,
        "every deadline expiry must surface as exactly one typed error"
    );
    assert_eq!(chaos.ok_partial, stats.partial_searches);
    assert_eq!(chaos.ok_fallback, stats.breaker_fallbacks);
    assert!(
        stats.rejected_deadline >= 1,
        "the born-expired submission must be rejected without enqueue"
    );
    assert!(
        stats.partial_searches >= 1,
        "a deadline-cut probe must serve a partial conservative mask"
    );
    assert!(
        stats.breaker_fallbacks >= 1,
        "open breakers must serve the conservative fallback"
    );

    // 3. Breaker trajectories per role.
    assert!(
        trips_of(chaos, DeviceId::Toronto) >= 1,
        "the flapping device must trip at least once: {:?}",
        chaos.transitions
    );
    assert_eq!(
        state_of(chaos, DeviceId::Toronto),
        Some(BreakerState::Closed),
        "the flapping device must recover by the end: {:?}",
        chaos.transitions
    );
    assert!(stats.breaker_recoveries >= 1, "recovery requires a probe");
    assert!(
        trips_of(chaos, DeviceId::Rome) >= 1,
        "the dead device must trip: {:?}",
        chaos.transitions
    );
    assert_eq!(
        state_of(chaos, DeviceId::Rome),
        Some(BreakerState::Open),
        "the dead device's breaker must still be open at the end"
    );
    assert!(
        !chaos
            .transitions
            .iter()
            .any(|t| t.contains(DeviceId::Guadalupe.name())),
        "the healthy device's breaker must never move: {:?}",
        chaos.transitions
    );

    // 4. The sick devices must not drag the healthy one down. The 5 ms
    //    epsilon absorbs scheduler noise on millisecond-scale samples.
    let base_p99 = adapt_obs::percentile(&baseline.guad_latencies_us, 0.99);
    let chaos_p99 = adapt_obs::percentile(&chaos.guad_latencies_us, 0.99);
    assert!(
        chaos_p99 <= 2.0 * base_p99 + 5_000.0,
        "healthy-device p99 degraded under chaos: {:.1} ms vs {:.1} ms baseline",
        chaos_p99 / 1000.0,
        base_p99 / 1000.0
    );
}

fn write_json(
    cfg: &ExperimentCfg,
    out_dir: &Path,
    total: usize,
    baseline: &PhaseReport,
    chaos: &PhaseReport,
    tiered: &TieredReport,
) {
    std::fs::create_dir_all(out_dir).expect("create results dir");
    let pct = |v: &[u64], q: f64| adapt_obs::percentile(v, q) / 1000.0;
    let stats = &chaos.stats;
    let transitions: Vec<String> = chaos
        .transitions
        .iter()
        .map(|t| format!("\"{t}\""))
        .collect();
    let states: Vec<String> = chaos
        .final_states
        .iter()
        .map(|(d, s)| {
            format!(
                "\"{}\": \"{}\"",
                d.name(),
                s.map(|s| s.to_string()).unwrap_or_default()
            )
        })
        .collect();
    let json = format!(
        "{{\n  \"schema\": 1,\n  \"quick\": {},\n  \"seed\": {},\n  \"faults\": \"{}\",\n  \
         \"ticks\": {total},\n  \
         \"baseline_guadalupe_ms\": {{ \"p50\": {:.2}, \"p99\": {:.2} }},\n  \
         \"chaos_guadalupe_ms\": {{ \"p50\": {:.2}, \"p99\": {:.2} }},\n  \
         \"requests\": {{ \"accepted\": {}, \"completed\": {}, \"searches\": {}, \
         \"rejected_deadline\": {}, \"rejected_breaker\": {}, \"rejected_queue\": {} }},\n  \
         \"deadlines\": {{ \"exceeded\": {}, \"dropped_in_queue\": {}, \"partial_searches\": {} }},\n  \
         \"breaker\": {{ \"trips\": {}, \"recoveries\": {}, \"fallbacks\": {}, \
         \"toronto_trips\": {}, \"rome_trips\": {} }},\n  \
         \"final_breaker_states\": {{ {} }},\n  \
         \"transitions\": [{}],\n  \
         \"tiered\": {{ \"stale_served\": {}, \"refines_completed\": {}, \
         \"refines_dropped\": {}, \"heuristic_served\": {}, \"responses\": {} }},\n  \
         \"worker_panics\": {},\n  \"deterministic_replay\": true\n}}\n",
        cfg.quick,
        cfg.seed,
        cfg.fault_name,
        pct(&baseline.guad_latencies_us, 0.50),
        pct(&baseline.guad_latencies_us, 0.99),
        pct(&chaos.guad_latencies_us, 0.50),
        pct(&chaos.guad_latencies_us, 0.99),
        stats.accepted,
        stats.completed,
        stats.searches,
        stats.rejected_deadline,
        stats.rejected_breaker,
        stats.rejected_queue,
        stats.deadline_exceeded,
        stats.deadline_dropped,
        stats.partial_searches,
        stats.breaker_trips,
        stats.breaker_recoveries,
        stats.breaker_fallbacks,
        trips_of(chaos, DeviceId::Toronto),
        trips_of(chaos, DeviceId::Rome),
        states.join(", "),
        transitions.join(", "),
        tiered.stats.stale_served,
        tiered.stats.refines_completed,
        tiered.stats.refines_dropped,
        tiered.stats.heuristic_served,
        tiered.digest.len(),
        stats.worker_panics,
    );
    let path = out_dir.join("BENCH_chaos.json");
    std::fs::write(&path, json).expect("write BENCH_chaos.json");
    println!("  wrote {}", path.display());
}
