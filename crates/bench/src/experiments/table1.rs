//! **Table 1** — Idling times for programs on IBMQ-Rome: program latency,
//! per-qubit idle fraction, and fidelity without DD vs DD-on-all.

use crate::report::{Csv, Table};
use crate::runner::ExperimentCfg;
use adapt::{Adapt, Policy};
use benchmarks::table1_suite;
use device::{Device, SeedSpawner};
use machine::Machine;

/// Runs the experiment.
pub fn run(cfg: &ExperimentCfg) {
    println!("\n== Table 1: idling times and DD impact on IBMQ-Rome ==");
    let spawner = SeedSpawner::new(cfg.seed ^ 0x7AB1);
    let dev = Device::ibmq_rome(cfg.seed);
    let adapt = Adapt::new(Machine::new(dev));
    let acfg = cfg.adapt_cfg(adapt::DdProtocol::Xy4, spawner.derive(1));

    let mut table = Table::new(&[
        "Workload",
        "Latency(us)",
        "Q0%",
        "Q1%",
        "Q2%",
        "Q3%",
        "Q4%",
        "NoDD",
        "AllDD",
    ]);
    let mut csv = Csv::create(
        &cfg.out_dir(),
        "table1",
        &[
            "workload",
            "latency_us",
            "idle_q0",
            "idle_q1",
            "idle_q2",
            "idle_q3",
            "idle_q4",
            "fid_no_dd",
            "fid_all_dd",
        ],
    );

    for bench in table1_suite() {
        let compiled = adapt.compile(&bench.circuit, &acfg);
        let latency_us = compiled.timed.total_ns() / 1000.0;
        // Idle fraction of each program qubit on its physical wire.
        let idle: Vec<f64> = (0..5)
            .map(|p| {
                if p < bench.num_qubits {
                    let wire = compiled.initial_layout.phys_of(p as u32);
                    compiled.timed.idle_fraction(wire)
                } else {
                    f64::NAN
                }
            })
            .collect();
        let no_dd = adapt
            .run_policy(&bench.circuit, Policy::NoDd, &acfg)
            .expect("NoDD");
        let all_dd = adapt
            .run_policy(&bench.circuit, Policy::AllDd, &acfg)
            .expect("AllDD");

        let pct = |f: f64| {
            if f.is_nan() {
                "-".to_string()
            } else {
                format!("{:.0}", f * 100.0)
            }
        };
        table.row_owned(vec![
            bench.name.to_string(),
            format!("{latency_us:.1}"),
            pct(idle[0]),
            pct(idle[1]),
            pct(idle[2]),
            pct(idle[3]),
            pct(idle[4]),
            format!("{:.2}", no_dd.fidelity),
            format!("{:.2}", all_dd.fidelity),
        ]);
        csv.row(&[
            bench.name.to_string(),
            format!("{latency_us:.3}"),
            format!("{:.4}", idle[0]),
            format!("{:.4}", idle[1]),
            format!("{:.4}", idle[2]),
            format!("{:.4}", idle[3]),
            format!("{:.4}", idle[4]),
            format!("{:.4}", no_dd.fidelity),
            format!("{:.4}", all_dd.fidelity),
        ]);
    }
    table.print();
    csv.flush().expect("write table1.csv");
}
