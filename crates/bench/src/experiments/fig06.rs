//! **Fig. 6** — Relative fidelity of one spectator qubit against one
//! active link across calibration cycles: DD that helps in one cycle can
//! hurt in the next.

use crate::probes::{probe_fidelity, ProbeDd};
use crate::report::{Csv, Table};
use crate::runner::ExperimentCfg;
use adapt::DdProtocol;
use benchmarks::characterization::{idle_probe_with_cnots, theta_grid};
use device::{Device, SeedSpawner};
use machine::Machine;

/// Runs the experiment.
pub fn run(cfg: &ExperimentCfg) {
    println!("\n== Fig 6: DD effectiveness across calibration cycles (Toronto) ==");
    let spawner = SeedSpawner::new(cfg.seed ^ 0xF166);
    let base = Device::ibmq_toronto(cfg.seed);
    // The paper studies Qubit-12 against Link 17-18; use that pair when it
    // couples in our calibration, otherwise fall back to qubit 12's
    // strongest link so the plot is informative.
    let q = 12u32;
    let paper_link = base
        .topology()
        .link_between(17, 18)
        .expect("17-18 is a Toronto link");
    let link = if base.calibration().crosstalk(q, paper_link).abs() > 0.05 {
        paper_link
    } else {
        base.calibration()
            .crosstalk_on(q)
            .into_iter()
            .max_by(|a, b| a.1.abs().partial_cmp(&b.1.abs()).expect("finite"))
            .map(|(l, _)| l)
            .unwrap_or(paper_link)
    };
    let (a, b) = base.topology().link_endpoints(link);
    println!("  spectator q{q}, active link {a}-{b}");

    let thetas = theta_grid(if cfg.quick { 5 } else { 9 });
    let mut table = Table::new(&["theta", "cycle-1 rel", "cycle-2 rel"]);
    let mut csv = Csv::create(
        &cfg.out_dir(),
        "fig06",
        &["theta", "cycle", "free", "dd", "relative"],
    );
    let mut rows: Vec<Vec<String>> = thetas.iter().map(|t| vec![format!("{t:.2}")]).collect();
    for cycle in 0..2u64 {
        let dev = base.at_calibration_cycle(cycle);
        println!(
            "  cycle {}: chi(q{q}, {a}-{b}) = {:+.2} rad/us",
            cycle + 1,
            dev.calibration().crosstalk(q, link)
        );
        let machine = Machine::new(dev.clone());
        let reps = (8000.0 / dev.link(link).dur_ns).round() as usize;
        for (ti, &theta) in thetas.iter().enumerate() {
            let c = idle_probe_with_cnots(27, q, theta, a, b, reps);
            let exec = cfg.probe_exec(spawner.derive(cycle * 100 + ti as u64));
            let free = probe_fidelity(&machine, &c, q, ProbeDd::Free, &exec);
            let dd = probe_fidelity(&machine, &c, q, ProbeDd::Protocol(DdProtocol::Xy4), &exec);
            let rel = dd / free.max(1e-6);
            rows[ti].push(format!("{rel:.2}x"));
            csv.rowd(&[&theta, &cycle, &free, &dd, &rel]);
        }
    }
    for row in rows {
        table.row_owned(row);
    }
    table.print();
    csv.flush().expect("write fig06.csv");
}
