//! **Service load generation** — drives the `adapt-service` worker pool
//! with a seeded open-loop workload and records serving metrics.
//!
//! The workload mixes small paper benchmarks over a skewed device
//! population (Guadalupe-heavy, like a popular production backend),
//! interleaves a minority of `Execute` requests among the
//! `RecommendMask` traffic, and fires one calibration-drift tick
//! mid-run so epoch invalidation is exercised under load. Requests are
//! submitted in bursts against a deliberately small queue, so admission
//! control (typed `Rejected` backpressure) triggers too.
//!
//! After the run, every distinct cache key is replayed against a *fresh*
//! service built from the same seed: responses must be bit-identical to
//! the originals whether they were served from cache or fresh search
//! (the service's determinism contract). The binary fails loudly when
//! any worker panicked, the cache hit rate lands at or below 50%, or a
//! replayed key diverges. Metrics land in `results/BENCH_service.json`,
//! and the process-wide observability registry (service, mask-cache,
//! plan-cache, search and resilient-executor metrics in one document) is
//! rendered to `results/BENCH_service_metrics.prom` / `.json`.
//!
//! The main service publishes into [`adapt_obs::global()`]; the
//! bit-identity replay service keeps the default private registry so its
//! traffic does not pollute the exported counters.

use crate::runner::ExperimentCfg;
use adapt::DdProtocol;
use adapt_service::{
    DeviceId, MaskKey, MaskService, PersistConfig, Provenance, Request, Response, SearchBudget,
    ServiceConfig, ServiceError, TierPolicy,
};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::collections::HashMap;
use std::time::Instant;

/// One observed answer for a cache key, for bit-identity auditing.
#[derive(Clone, Copy, PartialEq)]
struct Observed {
    mask: adapt::DdMask,
    fidelity_bits: u64,
    bench: usize,
    device: DeviceId,
}

fn service_config(cfg: &ExperimentCfg, budget: SearchBudget) -> ServiceConfig {
    ServiceConfig {
        devices: vec![DeviceId::Guadalupe, DeviceId::Toronto, DeviceId::Rome],
        workers: 4,
        // Smaller than a submission burst: workers that fall behind make
        // admission control visible in the rejection metrics.
        queue_capacity: 6,
        cache_capacity: 64,
        seed: cfg.seed,
        fault_profile: cfg.fault_profile,
        default_budget: budget,
        ..ServiceConfig::default()
    }
}

/// Runs the load generation and writes `results/BENCH_service.json`.
///
/// # Panics
///
/// Panics (failing the CI job) when a worker panics, the cache hit rate
/// is ≤ 50%, a response for one key diverges within the run, or the
/// fresh-service replay is not bit-identical to the original responses.
pub fn run(cfg: &ExperimentCfg) {
    println!("\n== Service loadgen: skewed open-loop workload on the mask service ==");
    let budget = if cfg.quick {
        SearchBudget {
            shots: 64,
            trajectories: 2,
            neighborhood: 4,
            tier: TierPolicy::default(),
        }
    } else {
        SearchBudget {
            shots: 128,
            trajectories: 4,
            neighborhood: 4,
            tier: TierPolicy::default(),
        }
    };
    let total_requests: usize = if cfg.quick { 72 } else { 200 };
    let burst = 8;
    let benches = benchmarks::suite::table1_suite();
    // The main service exports into the process-wide registry, alongside
    // the machine/search metrics its backends record there.
    let svc = MaskService::start(ServiceConfig {
        registry: adapt_obs::global(),
        ..service_config(cfg, budget)
    });
    // Client-observed end-to-end latency, mirrored into the registry so
    // the JSON percentiles below and the exposition describe the same
    // samples.
    let client_hist = adapt_obs::global().histogram("adapt_loadgen_client_request_us");

    // Skewed device popularity: one hot device dominates, so the cache
    // concentrates where the traffic is.
    let pick_device = |r: f64| {
        if r < 0.70 {
            DeviceId::Guadalupe
        } else if r < 0.90 {
            DeviceId::Toronto
        } else {
            DeviceId::Rome
        }
    };

    let mut rng = StdRng::seed_from_u64(cfg.seed ^ 0x10AD_6E4E);
    let mut latencies_us: Vec<u64> = Vec::with_capacity(total_requests);
    // Time-to-first-usable-response: wall-clock from the first submit to
    // the first Ok the client sees. On a cold cache this is dominated by
    // the first search, so it is the number a deployment's cold-start
    // SLO actually constrains.
    let mut ttfur_us: Option<u64> = None;
    let mut observed: HashMap<MaskKey, Observed> = HashMap::new();
    let mut rejected = 0usize;
    let mut failed = 0usize;
    let mut executions = 0usize;
    let drift_at = total_requests * 3 / 5;
    let mut drifted = false;
    let t0 = Instant::now();

    let mut submitted = 0usize;
    while submitted < total_requests {
        if !drifted && submitted >= drift_at {
            // Mid-run calibration drift on the hot device: every cached
            // Guadalupe mask of epoch 0 must be invalidated under load.
            let epoch = svc
                .advance_epoch(DeviceId::Guadalupe)
                .expect("guadalupe is registered");
            println!("  drift tick: guadalupe -> epoch {epoch}");
            drifted = true;
        }
        let n = burst.min(total_requests - submitted);
        let mut pending = Vec::with_capacity(n);
        for _ in 0..n {
            let device = pick_device(rng.gen::<f64>());
            let bench = rng.gen_range(0..benches.len());
            let circuit = benches[bench].circuit.clone();
            let request = if rng.gen_bool(0.15) {
                let policy = if rng.gen_bool(0.5) {
                    adapt::Policy::Adapt
                } else {
                    adapt::Policy::AllDd
                };
                Request::Execute {
                    circuit,
                    device,
                    policy,
                    deadline_ms: None,
                    tenancy: Default::default(),
                }
            } else {
                Request::RecommendMask {
                    circuit,
                    device,
                    protocol: DdProtocol::Xy4,
                    budget,
                    deadline_ms: None,
                    tenancy: Default::default(),
                }
            };
            submitted += 1;
            match svc.submit(request) {
                Ok(p) => pending.push((p, bench, device)),
                Err(ServiceError::Rejected { .. }) => rejected += 1,
                Err(e) => panic!("unexpected submit error: {e}"),
            }
        }
        for (p, bench, device) in pending {
            match p.wait() {
                Ok(resp) => {
                    ttfur_us.get_or_insert_with(|| t0.elapsed().as_micros() as u64);
                    latencies_us.push(resp.timing().total_us());
                    client_hist.record(resp.timing().total_us());
                    match resp {
                        Response::Mask(rec) => {
                            audit(
                                &mut observed,
                                rec.key,
                                rec.mask,
                                rec.decoy_fidelity,
                                bench,
                                device,
                            );
                        }
                        Response::Execution(_) => executions += 1,
                    }
                }
                Err(ServiceError::Failed(_)) => failed += 1,
                Err(e) => panic!("unexpected response error: {e}"),
            }
        }
    }
    let elapsed = t0.elapsed().as_secs_f64();

    let stats = svc.stats();
    let cache = svc.cache_stats();
    let served = latencies_us.len();
    latencies_us.sort_unstable();
    // Nearest-rank percentiles. The old `((len-1)*q).round()` indexing
    // was off by one sample: at n=2 it reported the maximum as the
    // median, and at n=100 it read p50 from the 51st sample.
    let pct = |q: f64| -> f64 { adapt_obs::percentile(&latencies_us, q) / 1000.0 };
    let throughput = served as f64 / elapsed.max(1e-9);
    let ttfur_ms = ttfur_us.unwrap_or(0) as f64 / 1000.0;
    // Cold-miss storm: requests that piled up behind another caller's
    // in-flight search for the same key (single-flight coalescing). Each
    // one would have been a redundant ~80 s search without dedup.
    let cold_miss_storm = cache.coalesced;
    println!(
        "  {served} served / {rejected} rejected / {failed} failed in {elapsed:.1} s \
         ({throughput:.1} req/s), p50 {:.1} ms, p99 {:.1} ms, \
         first usable answer after {ttfur_ms:.1} ms",
        pct(0.50),
        pct(0.99)
    );
    println!(
        "  cache: {} hits + {} coalesced / {} misses ({:.0}% hit rate), \
         {} invalidated, {} evicted; {} searches, {} worker panics",
        cache.hits,
        cache.coalesced,
        cache.misses,
        cache.hit_rate() * 100.0,
        cache.invalidated,
        cache.evictions,
        stats.searches,
        stats.worker_panics
    );
    assert_eq!(stats.worker_panics, 0, "worker pool must survive the run");
    assert!(
        cache.hit_rate() > 0.5,
        "skewed workload must be cache-dominated: {cache:?}"
    );

    // Replay every distinct key against a fresh same-seed service: the
    // bit-identity contract says cache hits and fresh searches agree.
    let replayed = replay_bit_identity(cfg, budget, &benches, &observed);
    println!("  bit-identity: {replayed} keys replayed on a fresh service, all identical");

    // Warm-restart drill: the durable counterpart of the cold-miss
    // storm — how much of the storm a persisted cache absorbs.
    let warm_restart = warm_restart_hit_rate(cfg, budget, &benches, &observed);
    println!(
        "  warm restart: {:.0}% of distinct keys served from the recovered cache",
        warm_restart * 100.0
    );

    let out_dir = cfg.out_dir();
    std::fs::create_dir_all(&out_dir).expect("create results dir");
    let json = format!(
        "{{\n  \"schema\": 1,\n  \"faults\": \"{}\",\n  \"quick\": {},\n  \"workers\": 4,\n  \
         \"devices\": [\"guadalupe\", \"toronto\", \"rome\"],\n  \
         \"requests\": {{ \"submitted\": {total_requests}, \"served\": {served}, \
         \"rejected\": {rejected}, \"failed\": {failed}, \"executions\": {executions} }},\n  \
         \"throughput_rps\": {throughput:.2},\n  \
         \"latency_ms\": {{ \"p50\": {:.2}, \"p99\": {:.2} }},\n  \
         \"fleet_baseline\": {{ \"shards\": 1, \"requests\": {served}, \
         \"throughput_rps\": {throughput:.2}, \
         \"latency_ms\": {{ \"p50\": {:.2}, \"p99\": {:.2} }} }},\n  \
         \"time_to_first_usable_ms\": {ttfur_ms:.2},\n  \
         \"cold_miss_storm\": {cold_miss_storm},\n  \
         \"warm_restart_hit_rate\": {warm_restart:.4},\n  \
         \"rejection_rate\": {:.4},\n  \
         \"cache\": {{ \"hits\": {}, \"misses\": {}, \"coalesced\": {}, \"evictions\": {}, \
         \"invalidated\": {}, \"hit_rate\": {:.4} }},\n  \
         \"searches\": {},\n  \"worker_panics\": {},\n  \
         \"bit_identical_keys\": {replayed}\n}}\n",
        cfg.fault_name,
        cfg.quick,
        pct(0.50),
        pct(0.99),
        // The `fleet_baseline` block repeats the single-instance numbers
        // in the exact schema of `BENCH_fleet.json`'s scaling entries,
        // so the two files compose into one 1→N-shard curve.
        pct(0.50),
        pct(0.99),
        rejected as f64 / total_requests as f64,
        cache.hits,
        cache.misses,
        cache.coalesced,
        cache.evictions,
        cache.invalidated,
        cache.hit_rate(),
        stats.searches,
        stats.worker_panics,
    );
    let path = out_dir.join("BENCH_service.json");
    std::fs::write(&path, json).expect("write BENCH_service.json");
    println!("  wrote {}", path.display());

    render_registry(&out_dir, &latencies_us, &client_hist);
}

/// Renders the process-wide registry — service, mask-cache, plan-cache,
/// search and resilient-executor metrics in one document — and
/// sanity-checks the exposition before writing it next to the benchmark
/// JSON.
///
/// # Panics
///
/// Panics when the exposition does not parse, a core counter that the
/// run must have driven is zero, or the registry histogram disagrees
/// with the exact sample percentiles (the bucket upper bound may
/// over-estimate but never under-report).
fn render_registry(
    out_dir: &std::path::Path,
    latencies_us: &[u64],
    client_hist: &adapt_obs::Histogram,
) {
    let registry = adapt_obs::global();
    let prom = registry.render_prometheus();
    let samples = adapt_obs::parse_prometheus(&prom).expect("exposition must parse");
    let get = |name: &str| adapt_obs::sample_value(&samples, name).unwrap_or(0.0);
    for name in [
        "adapt_service_requests_total",
        "adapt_service_searches_total",
        "adapt_service_cache_lookups_total",
        "adapt_search_searches_total",
        "adapt_search_decoy_runs_scored_total",
        "adapt_machine_executions_total",
        "adapt_machine_plan_cache_misses_total",
        "adapt_machine_retry_requests_total",
    ] {
        assert!(
            get(name) > 0.0,
            "the loadgen run must have driven {name}, exposition:\n{prom}"
        );
    }
    for q in [0.50, 0.99] {
        let exact = adapt_obs::percentile(latencies_us, q);
        let bucket = client_hist.percentile_us(q);
        assert!(
            exact <= bucket,
            "registry histogram p{} ({bucket} µs) under-reports the exact \
             sample percentile ({exact} µs)",
            q * 100.0
        );
    }
    let prom_path = out_dir.join("BENCH_service_metrics.prom");
    std::fs::write(&prom_path, &prom).expect("write metrics exposition");
    let json_path = out_dir.join("BENCH_service_metrics.json");
    std::fs::write(&json_path, registry.render_json()).expect("write metrics json");
    println!(
        "  wrote {} and {} ({} series)",
        prom_path.display(),
        json_path.display(),
        samples.len()
    );
}

/// Records one recommendation, asserting in-run consistency per key.
fn audit(
    observed: &mut HashMap<MaskKey, Observed>,
    key: MaskKey,
    mask: adapt::DdMask,
    fidelity: f64,
    bench: usize,
    device: DeviceId,
) {
    let entry = Observed {
        mask,
        fidelity_bits: fidelity.to_bits(),
        bench,
        device,
    };
    if let Some(prev) = observed.insert(key, entry) {
        assert!(
            prev == entry,
            "responses diverged within the run for key {key:?}"
        );
    }
}

/// Replays every observed key on a cold same-seed service and checks
/// bit-identity. Returns the number of keys replayed.
fn replay_bit_identity(
    cfg: &ExperimentCfg,
    budget: SearchBudget,
    benches: &[benchmarks::BenchmarkSpec],
    observed: &HashMap<MaskKey, Observed>,
) -> usize {
    let fresh = MaskService::start(service_config(cfg, budget));
    // Epochs only move forward, so replay epoch 0 keys first, then tick
    // each drifted device and replay its epoch 1 keys, and so on.
    let max_epoch = observed.keys().map(|k| k.epoch).max().unwrap_or(0);
    let mut replayed = 0usize;
    for epoch in 0..=max_epoch {
        if epoch > 0 {
            for device in [DeviceId::Guadalupe, DeviceId::Toronto, DeviceId::Rome] {
                if observed
                    .keys()
                    .any(|k| k.device == device && k.epoch >= epoch)
                {
                    fresh.advance_epoch(device).expect("device registered");
                }
            }
        }
        for (key, prev) in observed.iter().filter(|(k, _)| k.epoch == epoch) {
            let resp = fresh
                .call(Request::RecommendMask {
                    circuit: benches[prev.bench].circuit.clone(),
                    device: prev.device,
                    protocol: key.protocol,
                    budget,
                    deadline_ms: None,
                    tenancy: Default::default(),
                })
                .expect("replay recommendation");
            let Response::Mask(rec) = resp else {
                panic!("replay returned a non-mask response");
            };
            assert_eq!(rec.key, *key, "replayed key mismatch (registry drifted?)");
            assert_eq!(rec.mask, prev.mask, "mask not bit-identical on replay");
            assert_eq!(
                rec.decoy_fidelity.to_bits(),
                prev.fidelity_bits,
                "fidelity not bit-identical on replay"
            );
            replayed += 1;
        }
    }
    let stats = fresh.stats();
    assert_eq!(stats.worker_panics, 0, "replay service must not panic");
    // A cold service answers each distinct key with one fresh search, so
    // comparing against the original run covers cache-hit vs
    // fresh-search equality in both directions.
    assert_eq!(
        stats.searches as usize, replayed,
        "replay must search every key once"
    );
    replayed
}

/// Warm-restart drill, the durable counterpart of `cold_miss_storm`: a
/// same-seed service with persistence enabled answers every distinct
/// `(benchmark, device, protocol)` pair once, shuts down cleanly (final
/// snapshot), and restarts from disk. Returns the fraction of those
/// pairs the reborn service serves straight from the recovered cache —
/// each one a cold-start search the durable warm set absorbed.
///
/// # Panics
///
/// Panics when the reborn service recovers less than 90% of the keys
/// the warm pass actually cached (the DESIGN.md §17 clean-shutdown
/// floor).
fn warm_restart_hit_rate(
    cfg: &ExperimentCfg,
    budget: SearchBudget,
    benches: &[benchmarks::BenchmarkSpec],
    observed: &HashMap<MaskKey, Observed>,
) -> f64 {
    let mut pairs: Vec<(usize, DeviceId, DdProtocol)> = Vec::new();
    let mut seen = std::collections::HashSet::new();
    for (key, prev) in observed {
        if seen.insert((prev.bench, prev.device, key.protocol)) {
            pairs.push((prev.bench, prev.device, key.protocol));
        }
    }
    pairs.sort_by_key(|&(bench, device, _)| (bench, device as u8));

    let dir = std::env::temp_dir().join(format!("adapt_loadgen_warm_restart_{:016x}", cfg.seed));
    let _ = std::fs::remove_dir_all(&dir);
    let durable = || {
        MaskService::start(ServiceConfig {
            persist: PersistConfig {
                // Snapshots come from the shutdown path only, so the
                // on-disk state is a pure function of the schedule.
                snapshot_interval_ms: 600_000,
                fsync: false,
                ..PersistConfig::at(dir.clone())
            },
            ..service_config(cfg, budget)
        })
    };
    let call = |svc: &MaskService, (bench, device, protocol): (usize, DeviceId, DdProtocol)| {
        svc.call(Request::RecommendMask {
            circuit: benches[bench].circuit.clone(),
            device,
            protocol,
            budget,
            deadline_ms: None,
            tenancy: Default::default(),
        })
    };

    // Warm pass at epoch 0 (no drift): only answers the cache actually
    // stores count toward the recovery denominator — under an injected
    // fault profile some searches fail or degrade to uncached masks.
    let warm = durable();
    let warmed: Vec<(usize, DeviceId, DdProtocol)> = pairs
        .iter()
        .copied()
        .filter(|&p| match call(&warm, p) {
            Ok(Response::Mask(rec)) => matches!(
                rec.provenance,
                Provenance::CacheHit | Provenance::FreshSearch | Provenance::DegradedAllDd
            ),
            _ => false,
        })
        .collect();
    let stats = warm.shutdown();
    assert_eq!(stats.worker_panics, 0, "warm pass must not panic");

    let reborn = durable();
    let report = reborn
        .recovery_report()
        .expect("persistence enabled for the drill");
    let hits = warmed
        .iter()
        .filter(|&&p| {
            matches!(
                call(&reborn, p),
                Ok(Response::Mask(rec)) if rec.provenance == Provenance::CacheHit
            )
        })
        .count();
    let stats = reborn.shutdown();
    assert_eq!(stats.worker_panics, 0, "reborn service must not panic");
    let _ = std::fs::remove_dir_all(&dir);

    let rate = hits as f64 / warmed.len().max(1) as f64;
    assert!(
        rate >= 0.9,
        "clean shutdown must recover >=90% of the warm set: {hits}/{} (report {report:?})",
        warmed.len()
    );
    rate
}
