//! **Ablation: DD protocol zoo** — the paper's XY4/IBMQ-DD pair plus the
//! CPMG, XY8 and UDD extensions, compared on the Fig. 16 probe and at the
//! application level (QFT-6A, ADAPT policy).

use crate::probes::probe_fidelity_with;
use crate::report::{Csv, Table};
use crate::runner::ExperimentCfg;
use adapt::{Adapt, AdaptConfig, DdConfig, DdProtocol, Policy};
use benchmarks::characterization::idle_probe_with_cnots;
use benchmarks::suite::by_name;
use device::{Device, SeedSpawner};
use machine::Machine;

const PROTOCOLS: [DdProtocol; 5] = [
    DdProtocol::Xy4,
    DdProtocol::Xy8,
    DdProtocol::IbmqDd,
    DdProtocol::Cpmg,
    DdProtocol::Udd { pulses: 8 },
];

/// Runs the ablation.
pub fn run(cfg: &ExperimentCfg) {
    println!("\n== Ablation: DD protocol zoo (XY4 / XY8 / IBMQ-DD / CPMG / UDD-8) ==");
    let spawner = SeedSpawner::new(cfg.seed ^ 0xAB1D);
    let dev = Device::ibmq_guadalupe(cfg.seed);
    let machine = Machine::new(dev.clone());
    let (probe, link) = super::fig04::strongest_pair(&dev);
    let (a, b) = dev.topology().link_endpoints(link);
    println!("  probe q{probe} vs CNOTs on {a}-{b}");

    let mut table = Table::new(&["idle(us)", "XY4", "XY8", "IBMQ-DD", "CPMG", "UDD-8"]);
    let mut csv = Csv::create(
        &cfg.out_dir(),
        "ablation_protocols",
        &["idle_us", "xy4", "xy8", "ibmq_dd", "cpmg", "udd8"],
    );
    for (ti, idle_us) in [2.0f64, 8.0, 16.0].into_iter().enumerate() {
        let reps = (idle_us * 1000.0 / dev.link(link).dur_ns).round().max(1.0) as usize;
        let c = idle_probe_with_cnots(16, probe, std::f64::consts::FRAC_PI_2, a, b, reps);
        let exec = cfg.probe_exec(spawner.derive(ti as u64));
        let mut row = vec![format!("{idle_us:.0}")];
        let mut record = vec![format!("{idle_us}")];
        for protocol in PROTOCOLS {
            let dd = DdConfig {
                protocol,
                // Standalone comparison (no conservative segmenting).
                segment_ns: f64::INFINITY,
                ..DdConfig::default()
            };
            let f = probe_fidelity_with(&machine, &c, probe, dd, &exec);
            row.push(format!("{f:.3}"));
            record.push(format!("{f:.4}"));
        }
        table.row_owned(row);
        csv.row(&record);
    }
    table.print();

    println!("\n-- application level: QFT-6A under ADAPT per protocol --");
    let bench = by_name("QFT-6A").expect("QFT-6A exists");
    let adapt = Adapt::new(machine);
    let mut table = Table::new(&["protocol", "ADAPT fidelity", "mask", "pulses"]);
    let mut csv2 = Csv::create(
        &cfg.out_dir(),
        "ablation_protocols_app",
        &["protocol", "fidelity", "mask", "pulses"],
    );
    for protocol in PROTOCOLS {
        let acfg = AdaptConfig {
            dd: DdConfig::for_protocol(protocol),
            ..cfg.adapt_cfg(protocol, spawner.derive(50))
        };
        let run = adapt
            .run_policy(&bench.circuit, Policy::Adapt, &acfg)
            .expect("adapt run");
        table.row_owned(vec![
            protocol.to_string(),
            format!("{:.3}", run.fidelity),
            run.mask.to_string(),
            run.pulse_count.to_string(),
        ]);
        csv2.rowd(&[
            &protocol.to_string(),
            &run.fidelity,
            &run.mask,
            &run.pulse_count,
        ]);
    }
    table.print();
    csv.flush().expect("write ablation_protocols.csv");
    csv2.flush().expect("write ablation_protocols_app.csv");
}
