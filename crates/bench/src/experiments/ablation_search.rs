//! **Ablation: search parameters** — neighborhood size and the top-2
//! conservative merge (§4.3 design choices) versus achieved fidelity and
//! decoy budget.

use crate::report::{Csv, Table};
use crate::runner::ExperimentCfg;
use adapt::{Adapt, AdaptConfig, Policy};
use benchmarks::suite::by_name;
use device::{Device, SeedSpawner};
use machine::Machine;

/// Runs the ablation.
pub fn run(cfg: &ExperimentCfg) {
    println!("\n== Ablation: localized-search neighborhood and top-2 merge (QFT-6B, Toronto) ==");
    let spawner = SeedSpawner::new(cfg.seed ^ 0xAB1B);
    let dev = Device::ibmq_toronto(cfg.seed);
    let bench = by_name("QFT-6B").expect("QFT-6B exists");
    let adapt = Adapt::new(Machine::new(dev));
    let base = cfg.adapt_cfg(adapt::DdProtocol::Xy4, spawner.derive(1));

    let mut table = Table::new(&[
        "neighborhood",
        "top-2 merge",
        "fidelity",
        "mask",
        "decoy runs",
    ]);
    let mut csv = Csv::create(
        &cfg.out_dir(),
        "ablation_search",
        &["neighborhood", "top2", "fidelity", "mask", "decoy_runs"],
    );
    for neighborhood in [1usize, 2, 4, 6] {
        for top2 in [false, true] {
            let acfg = AdaptConfig {
                neighborhood,
                top2_merge: top2,
                ..base
            };
            let run = adapt
                .run_policy(&bench.circuit, Policy::Adapt, &acfg)
                .expect("adapt run");
            table.row_owned(vec![
                neighborhood.to_string(),
                top2.to_string(),
                format!("{:.3}", run.fidelity),
                run.mask.to_string(),
                run.search_runs.to_string(),
            ]);
            csv.rowd(&[
                &neighborhood,
                &top2,
                &run.fidelity,
                &run.mask,
                &run.search_runs,
            ]);
        }
    }
    table.print();
    csv.flush().expect("write ablation_search.csv");
}
