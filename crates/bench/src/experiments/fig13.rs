//! **Fig. 13** — Relative fidelity of All-DD / ADAPT / Runtime-Best over
//! the full benchmark suite on 27-qubit IBMQ-Toronto, for both the XY4
//! and IBMQ-DD protocols.

use crate::runner::ExperimentCfg;
use adapt::DdProtocol;
use device::Device;

/// Runs the experiment.
pub fn run(cfg: &ExperimentCfg) {
    let dev = Device::ibmq_toronto(cfg.seed);
    let names: Vec<&str> = if cfg.quick {
        vec!["BV-7", "QFT-6A", "QFT-6B", "QAOA-8A", "QPEA-5"]
    } else {
        benchmarks::paper_suite().iter().map(|b| b.name).collect()
    };
    for protocol in [DdProtocol::Xy4, DdProtocol::IbmqDd] {
        println!("\n== Fig 13: policies on IBMQ-Toronto, {protocol} ==");
        super::policy_figure(
            cfg,
            &dev,
            &names,
            protocol,
            true,
            &format!("fig13_{protocol}"),
        );
    }
}
